package giant

// End-to-end sharding equivalence: for any Shards count, a full build is
// byte-identical to the 1-shard path, and a day-by-day ingest replay
// produces the same node/edge sets (IDs may differ — the per-shard deltas
// merge in shard order). Run with -race to exercise the shard-parallel
// mining and diff paths.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"giant/internal/delta"
	"giant/internal/ontology"
)

// setFingerprint renders an ontology's node and edge sets (including
// last-seen days) in a canonical ID-independent order.
func setFingerprint(t *testing.T, o *ontology.Ontology) string {
	t.Helper()
	var lines []string
	for _, n := range o.Nodes() {
		aliases := append([]string(nil), n.Aliases...)
		sort.Strings(aliases)
		lines = append(lines, fmt.Sprintf("node|%s|%s|%v|%s|%s|%d|%d|%d",
			n.Type, n.Phrase, aliases, n.Trigger, n.Location, n.Day, n.FirstSeenDay, n.LastSeenDay))
	}
	for _, e := range o.Edges() {
		src, ok1 := o.Get(e.Src)
		dst, ok2 := o.Get(e.Dst)
		if !ok1 || !ok2 {
			t.Fatalf("dangling edge %+v", e)
		}
		lines = append(lines, fmt.Sprintf("edge|%s|%s|%s|%s|%s|%.6f",
			src.Type, src.Phrase, e.Type, dst.Type, dst.Phrase, e.Weight))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// assertShardPartition checks the sharded snapshot's invariants: every
// union node home in exactly one shard and the union of per-shard edges
// (phrase-keyed) equal to the union snapshot's edge set.
func assertShardPartition(t *testing.T, ss *ontology.ShardedSnapshot) {
	t.Helper()
	union := ss.Union()
	homes := 0
	seen := map[string]bool{}
	for s := 0; s < ss.NumShards(); s++ {
		for _, n := range ss.HomeNodes(s) {
			key := n.Type.String() + "|" + n.Phrase
			if seen[key] {
				t.Fatalf("node %s home in two shards", key)
			}
			seen[key] = true
			homes++
		}
	}
	if homes != union.NodeCount() {
		t.Fatalf("home nodes %d != union nodes %d", homes, union.NodeCount())
	}
	edgeSet := func(s *ontology.Snapshot) map[string]bool {
		out := map[string]bool{}
		for _, e := range s.Edges() {
			src, _ := s.Get(e.Src)
			dst, _ := s.Get(e.Dst)
			out[fmt.Sprintf("%s|%s|%s|%s|%s|%.6f", src.Type, src.Phrase, e.Type, dst.Type, dst.Phrase, e.Weight)] = true
		}
		return out
	}
	merged := map[string]bool{}
	for s := 0; s < ss.NumShards(); s++ {
		for k := range edgeSet(ss.Shard(s)) {
			merged[k] = true
		}
	}
	want := edgeSet(union)
	if len(merged) != len(want) {
		t.Fatalf("merged shard edges %d != union edges %d", len(merged), len(want))
	}
	for k := range want {
		if !merged[k] {
			t.Fatalf("union edge %s missing from every shard", k)
		}
	}
}

// TestShardedBuildEquivalence: the full build is byte-identical for every
// shard count, and the sharded projection partitions it exactly.
func TestShardedBuildEquivalence(t *testing.T) {
	cfg := equivalenceConfig()
	base := fullSystem(t, cfg)
	want := ontologyJSON(t, base.Ontology)
	for _, k := range []int{2, 4} {
		c := cfg
		c.Shards = k
		sys, err := Build(c)
		if err != nil {
			t.Fatalf("Build shards=%d: %v", k, err)
		}
		if sys.Sharding == nil || sys.Sharding.K() != k {
			t.Fatalf("shards=%d: shard assignment missing", k)
		}
		if !bytes.Equal(ontologyJSON(t, sys.Ontology), want) {
			t.Fatalf("shards=%d build is not byte-identical to the 1-shard build", k)
		}
		ss, err := sys.ShardedSnapshot()
		if err != nil {
			t.Fatalf("ShardedSnapshot: %v", err)
		}
		if ss.NumShards() != k {
			t.Fatalf("sharded snapshot has %d shards, want %d", ss.NumShards(), k)
		}
		assertShardPartition(t, ss)
	}
}

// TestShardedIngestReplayEquivalence: replaying the corpus day by day
// through IngestSharded yields the same node/edge sets as the 1-shard
// Ingest replay, for Shards in {2, 4}, with per-shard publication staying
// a real partition at every step.
func TestShardedIngestReplayEquivalence(t *testing.T) {
	cfg := equivalenceConfig()
	full := fullSystem(t, cfg)
	maxDay := maxRecordDay(full)
	if maxDay < 2 {
		t.Fatalf("log too shallow for a split: max day %d", maxDay)
	}
	splitDay := maxDay / 2

	ref, _, _ := incrementalCase(t, cfg, splitDay, maxDay)
	want := setFingerprint(t, ref.Ontology)

	for _, k := range []int{2, 4} {
		c := cfg
		c.Shards = k
		inc, err := BuildUpToDay(c, splitDay)
		if err != nil {
			t.Fatalf("BuildUpToDay shards=%d: %v", k, err)
		}
		var last *ontology.ShardedSnapshot
		for day := splitDay + 1; day <= maxDay; day++ {
			batch := delta.Batch{Day: day}
			for _, r := range full.Log.Records {
				if r.Day == day {
					batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: r.Clicks, Day: r.Day})
				}
			}
			ss, d, touched, err := inc.IngestSharded(batch)
			if err != nil {
				t.Fatalf("IngestSharded shards=%d day %d: %v", k, day, err)
			}
			if len(touched) != k || ss.NumShards() != k {
				t.Fatalf("shards=%d day %d: touched=%v", k, day, touched)
			}
			if d.Empty() && anyTouched(touched) {
				t.Fatalf("shards=%d day %d: empty delta touched shards %v", k, day, touched)
			}
			last = ss
		}
		if got := setFingerprint(t, inc.Ontology); got != want {
			t.Fatalf("shards=%d ingest replay diverges from the 1-shard replay", k)
		}
		assertShardPartition(t, last)
	}
}

func anyTouched(touched []bool) bool {
	for _, b := range touched {
		if b {
			return true
		}
	}
	return false
}
