package giant

// Tests for the incremental-update path: System.Ingest over day-sliced
// batches must reproduce a full batch rebuild over the union corpus for
// every cluster neighbourhood the batches did not touch, deltas must be
// race-clean while earlier generations keep serving readers, and TTL decay
// must retire stale events.

import (
	"reflect"
	"sync"
	"testing"

	"giant/internal/delta"
	"giant/internal/ontology"
)

// TestMineSeedsMatchesMine pins the delta miner's contract: restricted to
// the full seed set, MineSeeds is byte-identical to the batch Mine pass.
func TestMineSeedsMatchesMine(t *testing.T) {
	sys := builtSystem(t)
	all := sys.Miner.Mine(sys.Click)
	seeded := sys.Miner.MineSeeds(sys.Click, sys.Click.Queries())
	if !reflect.DeepEqual(all, seeded) {
		t.Fatalf("MineSeeds over every seed diverges from Mine: %d vs %d attentions", len(all), len(seeded))
	}
}

// incrementalCase replays the full corpus in two phases: a batch build
// over days <= splitDay, then one Ingest per remaining day. It returns the
// incremental system plus the union of re-mined seeds across batches.
func incrementalCase(t *testing.T, cfg Config, splitDay, maxDay int) (*System, map[string]bool, []*ontology.Snapshot) {
	t.Helper()
	full := fullSystem(t, cfg)
	inc, err := BuildUpToDay(cfg, splitDay)
	if err != nil {
		t.Fatalf("BuildUpToDay: %v", err)
	}
	affected := map[string]bool{}
	var gens []*ontology.Snapshot
	for day := splitDay + 1; day <= maxDay; day++ {
		batch := delta.Batch{Day: day}
		for _, r := range full.Log.Records {
			if r.Day == day {
				batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: r.Clicks, Day: r.Day})
			}
		}
		snap, d, err := inc.Ingest(batch)
		if err != nil {
			t.Fatalf("Ingest day %d: %v", day, err)
		}
		for _, s := range d.Seeds {
			affected[s] = true
		}
		gens = append(gens, snap)
	}
	return inc, affected, gens
}

var (
	fullOnce sync.Once
	fullSys  *System
	fullErr  error
)

// fullSystem builds the reference full-rebuild system once (it is the
// expensive part of these tests).
func fullSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	fullOnce.Do(func() { fullSys, fullErr = Build(cfg) })
	if fullErr != nil {
		t.Fatalf("Build: %v", fullErr)
	}
	return fullSys
}

func equivalenceConfig() Config {
	cfg := TinyConfig()
	// No TTL decay: equivalence is judged against a rebuild that never
	// retires anything.
	cfg.Update = delta.Policy{EventTTL: 0, ConceptTTL: 0, TopicTTL: 0}
	return cfg
}

func maxRecordDay(sys *System) int {
	max := 0
	for _, r := range sys.Log.Records {
		if r.Day > max {
			max = r.Day
		}
	}
	return max
}

type nodeKey struct {
	Type   ontology.NodeType
	Phrase string
}

func nodeSet(o *ontology.Ontology) map[nodeKey]ontology.Node {
	out := map[nodeKey]ontology.Node{}
	for _, n := range o.Nodes() {
		out[nodeKey{n.Type, n.Phrase}] = n
	}
	return out
}

type edgeKey struct {
	Src, Dst nodeKey
	Type     ontology.EdgeType
}

func edgeSet(o *ontology.Ontology) map[edgeKey]float64 {
	out := map[edgeKey]float64{}
	for _, e := range o.Edges() {
		src, _ := o.Get(e.Src)
		dst, _ := o.Get(e.Dst)
		out[edgeKey{nodeKey{src.Type, src.Phrase}, nodeKey{dst.Type, dst.Phrase}, e.Type}] = e.Weight
	}
	return out
}

// changedRegion computes the phrase set whose mining or linking could
// legitimately differ between the incremental and full paths: attentions
// mined from an affected seed in either system, every alias (global
// normalization may merge across batch boundaries the incremental path
// cannot see), and — transitively — derived parents and topics whose
// child sets include a changed phrase.
func changedRegion(full, inc *System, affected map[string]bool) map[string]bool {
	changed := map[string]bool{}
	mark := func(sys *System) {
		for i := range sys.Mined {
			m := &sys.Mined[i]
			if affected[m.Seed] {
				changed[m.Phrase] = true
				for _, a := range m.Aliases {
					changed[a] = true
				}
			}
		}
	}
	mark(full)
	mark(inc)
	for _, sys := range []*System{full, inc} {
		for _, n := range sys.Ontology.Nodes() {
			if len(n.Aliases) > 0 {
				changed[n.Phrase] = true
				for _, a := range n.Aliases {
					changed[a] = true
				}
			}
		}
	}
	// Propagate to structural parents (CSD-derived concepts, CPD topics)
	// until a fixpoint: their existence and child sets depend on the
	// changed phrases.
	for _, sys := range []*System{full, inc} {
		for {
			grew := false
			for _, e := range sys.Ontology.Edges() {
				src, _ := sys.Ontology.Get(e.Src)
				dst, _ := sys.Ontology.Get(e.Dst)
				if changed[dst.Phrase] && !changed[src.Phrase] &&
					(src.Type == ontology.Concept || src.Type == ontology.Topic) {
					changed[src.Phrase] = true
					grew = true
				}
			}
			if !grew {
				break
			}
		}
	}
	return changed
}

func TestIncrementalMatchesFullRebuild(t *testing.T) {
	cfg := equivalenceConfig()
	full := fullSystem(t, cfg)
	maxDay := maxRecordDay(full)
	if maxDay < 2 {
		t.Fatalf("log too shallow for a split: max day %d", maxDay)
	}
	splitDay := maxDay / 2
	inc, affected, _ := incrementalCase(t, cfg, splitDay, maxDay)

	changed := changedRegion(full, inc, affected)
	fullNodes, incNodes := nodeSet(full.Ontology), nodeSet(inc.Ontology)

	// Unchanged-region node equivalence, both directions.
	checked := 0
	for k := range fullNodes {
		if changed[k.Phrase] {
			continue
		}
		if _, ok := incNodes[k]; !ok {
			t.Errorf("full rebuild has unchanged-region node %v %q; incremental lost it", k.Type, k.Phrase)
		}
		checked++
	}
	for k := range incNodes {
		if changed[k.Phrase] {
			continue
		}
		if _, ok := fullNodes[k]; !ok {
			t.Errorf("incremental invented unchanged-region node %v %q", k.Type, k.Phrase)
		}
	}
	if checked == 0 {
		t.Fatal("changed region swallowed every node; equivalence test is vacuous")
	}

	// Unchanged-region edge equivalence (both endpoints unchanged),
	// including weights — re-weighting must converge to the batch value.
	fullEdges, incEdges := edgeSet(full.Ontology), edgeSet(inc.Ontology)
	checkedEdges := 0
	for k, w := range fullEdges {
		if changed[k.Src.Phrase] || changed[k.Dst.Phrase] {
			continue
		}
		iw, ok := incEdges[k]
		if !ok {
			t.Errorf("incremental lost unchanged-region edge %v", k)
			continue
		}
		if iw != w {
			t.Errorf("edge %v weight: full %v, incremental %v", k, w, iw)
		}
		checkedEdges++
	}
	for k := range incEdges {
		if changed[k.Src.Phrase] || changed[k.Dst.Phrase] {
			continue
		}
		if _, ok := fullEdges[k]; !ok {
			t.Errorf("incremental invented unchanged-region edge %v", k)
		}
	}
	if checkedEdges == 0 {
		t.Fatal("no unchanged-region edges compared; equivalence test is vacuous")
	}
	t.Logf("equivalence: %d unchanged nodes, %d unchanged edges compared (%d phrases in changed region)",
		checked, checkedEdges, len(changed))

	// The incremental result stays a DAG and keeps serving invariants.
	if inc.Ontology.HasCycleIsA() {
		t.Fatal("incremental ontology has an isA cycle")
	}
}

// TestConceptContextIsStableAcrossIngest pins the copy-on-write contract
// a serving tier relies on: the map ConceptContext hands out must never
// be mutated by later Ingest calls (request handlers read it without
// locks).
func TestConceptContextIsStableAcrossIngest(t *testing.T) {
	cfg := equivalenceConfig()
	full := fullSystem(t, cfg)
	maxDay := maxRecordDay(full)
	inc, err := BuildUpToDay(cfg, maxDay/2)
	if err != nil {
		t.Fatalf("BuildUpToDay: %v", err)
	}
	served := inc.ConceptContext()
	before := len(served)
	batch := delta.Batch{Day: maxDay}
	for _, r := range full.Log.Records {
		if r.Day > maxDay/2 {
			batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: r.Clicks, Day: r.Day})
		}
	}
	if _, _, err := inc.Ingest(batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if len(served) != before {
		t.Fatalf("handed-out concept context mutated by Ingest: %d -> %d entries", before, len(served))
	}
	if len(inc.ConceptContext()) <= before {
		t.Fatalf("fresh ConceptContext should have grown past %d entries", before)
	}
}

// TestIngestRejectsBadBatchAtomically pins the all-or-nothing contract: a
// batch with an invalid click must leave the click graph, corpus and
// ontology byte-identical so a corrected retry cannot double-count.
func TestIngestRejectsBadBatchAtomically(t *testing.T) {
	cfg := equivalenceConfig()
	sys, err := BuildUpToDay(cfg, 0)
	if err != nil {
		t.Fatalf("BuildUpToDay: %v", err)
	}
	docsBefore := len(sys.Log.Docs)
	recordsBefore := len(sys.Log.Records)
	queriesBefore := sys.Click.NumQueries()
	nodesBefore := sys.Ontology.NodeCount()
	bad := delta.Batch{Day: 5,
		Docs:   []delta.Doc{{ID: -1, Title: "new doc", Category: 0, Day: 5}},
		Clicks: []delta.Click{{Query: "fine query", DocID: -1, Clicks: 1}, {Query: "broken", DocID: 999999, Clicks: 1}},
	}
	if _, _, err := sys.Ingest(bad); err == nil {
		t.Fatal("bad batch accepted")
	}
	if len(sys.Log.Docs) != docsBefore || len(sys.Log.Records) != recordsBefore ||
		sys.Click.NumQueries() != queriesBefore || sys.Ontology.NodeCount() != nodesBefore {
		t.Fatalf("rejected batch left state half-applied: docs %d->%d, records %d->%d, queries %d->%d, nodes %d->%d",
			docsBefore, len(sys.Log.Docs), recordsBefore, len(sys.Log.Records),
			queriesBefore, sys.Click.NumQueries(), nodesBefore, sys.Ontology.NodeCount())
	}
}

// TestIngestConcurrentReaders hammers earlier generations with readers
// while later batches are ingested: snapshots are immutable, so this must
// be race-clean (run under -race) and every lookup must keep answering.
func TestIngestConcurrentReaders(t *testing.T) {
	cfg := equivalenceConfig()
	full := fullSystem(t, cfg)
	maxDay := maxRecordDay(full)
	splitDay := maxDay / 2

	inc, err := BuildUpToDay(cfg, splitDay)
	if err != nil {
		t.Fatalf("BuildUpToDay: %v", err)
	}
	first := inc.Snapshot()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, id := range first.IDsOfType(ontology.Concept) {
					n := first.At(id)
					if _, ok := first.Find(n.Type, n.Phrase); !ok {
						t.Error("snapshot lookup failed mid-ingest")
						return
					}
				}
			}
		}()
	}
	for day := splitDay + 1; day <= maxDay; day++ {
		batch := delta.Batch{Day: day}
		for _, r := range full.Log.Records {
			if r.Day == day {
				batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: r.Clicks, Day: r.Day})
			}
		}
		if _, _, err := inc.Ingest(batch); err != nil {
			t.Fatalf("Ingest day %d: %v", day, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestIngestTTLRetirement checks per-type decay: an event not re-observed
// within its TTL retires (with its incident edges) while long-lived types
// survive.
func TestIngestTTLRetirement(t *testing.T) {
	cfg := equivalenceConfig()
	cfg.Update = delta.Policy{EventTTL: 2}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	events := sys.Ontology.NodeCount(ontology.Event)
	concepts := sys.Ontology.NodeCount(ontology.Concept)
	if events == 0 {
		t.Skip("no events mined at tiny scale")
	}
	// An empty far-future batch: no new clicks, so every event's last-seen
	// day is far behind the batch day.
	farFuture := maxRecordDay(sys) + 100
	snap, d, err := sys.Ingest(delta.Batch{Day: farFuture})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if len(d.Retire) == 0 {
		t.Fatal("no retirements despite expired TTLs")
	}
	if got := snap.NodeCount(ontology.Event); got != 0 {
		t.Fatalf("expected all %d events retired, %d remain", events, got)
	}
	if got := snap.NodeCount(ontology.Concept); got != concepts {
		t.Fatalf("concepts must not decay (ConceptTTL=0): had %d, now %d", concepts, got)
	}
	// Retired nodes take their edges with them.
	for _, e := range snap.Edges() {
		src, _ := snap.Get(e.Src)
		dst, _ := snap.Get(e.Dst)
		if src.Type == ontology.Event || dst.Type == ontology.Event {
			t.Fatalf("edge to retired event survived: %v -> %v", src.Phrase, dst.Phrase)
		}
	}
}
