package giant

// Incremental ontology maintenance over the public facade: System.Ingest
// feeds a batch of new documents and click records through delta mining
// (internal/delta) and adopts the resulting generation, so an online tier
// can keep the served ontology fresh without ever re-running the full
// batch pipeline.

import (
	"fmt"

	"giant/internal/core"
	"giant/internal/delta"
	"giant/internal/linking"
	"giant/internal/ontology"
	"giant/internal/synth"
)

// Ingest applies one incremental update batch: it extends the click graph
// with the batch's documents and clicks, re-runs Algorithm-1 mining over
// the affected cluster neighbourhood only, diffs the result against the
// current ontology into an explicit delta (adds, re-weights, touches,
// TTL retirements per Config.Update), and applies it. The system's
// working ontology advances to the new generation and the applied
// snapshot is returned, ready for atomic hot-swap into a serving tier.
//
// Batch documents may be brand new (ID == -1 or the next free ID) or
// reference documents the system already knows (same ID and title —
// useful when a click batch lands on an existing corpus). Clicks
// reference known documents by ID, or this batch's documents positionally
// with negative IDs: -1 is the batch's first doc, -2 its second, and so
// on — so a self-contained batch never needs to guess assigned IDs.
//
// Ingest is safe for concurrent callers (they serialize) but must not
// race with direct mutation of the System's fields.
func (sys *System) Ingest(batch delta.Batch) (*ontology.Snapshot, *delta.Delta, error) {
	sys.ingestMu.Lock()
	defer sys.ingestMu.Unlock()

	seeds, day, err := sys.applyBatchLocked(batch)
	if err != nil {
		return nil, nil, err
	}
	mined := sys.Miner.MineSeeds(sys.Click, seeds)

	cur := sys.Ontology.Snapshot()
	d := delta.Compute(cur, mined, seeds, day, sys.updatePolicy(), sys.deltaSource())
	next, err := delta.Apply(cur, d)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.adoptGenerationLocked(next, mined, d.Retire); err != nil {
		return nil, nil, err
	}
	// The cached sharded projection (if any) no longer matches the union;
	// the next ShardedSnapshot call re-derives it.
	sys.sharded = nil
	return next, d, nil
}

// IngestSharded is Ingest for a sharded deployment (Cfg.Shards > 1): the
// batch's affected seeds are re-mined once, the delta is computed
// shard-parallel (delta.ComputeSharded over the click graph's current
// shard assignment) and applied per shard, re-deriving only the touched
// projections. It returns the advanced sharded snapshot, the merged delta
// and the touched-shard flags — the serving tier bumps only the touched
// shards' generations. The resulting union node/edge sets are equivalent
// to Ingest's for the same batch sequence.
func (sys *System) IngestSharded(batch delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
	sys.ingestMu.Lock()
	defer sys.ingestMu.Unlock()

	cur, err := sys.shardedLocked()
	if err != nil {
		return nil, nil, nil, err
	}
	seeds, day, err := sys.applyBatchLocked(batch)
	if err != nil {
		return nil, nil, nil, err
	}
	k := sys.Cfg.shards()
	// Recompute the shard assignment on the extended graph: the batch's
	// clicks may have bridged components (the merged component lands on
	// one deterministic shard).
	sys.Sharding = sys.Click.ShardAssignment(k)
	mined := sys.Miner.MineSeeds(sys.Click, seeds)

	deltas := delta.ComputeSharded(cur.Union(), mined, seeds, day, sys.updatePolicy(), sys.deltaSource(), sys.Sharding.Of, k)
	next, merged, touched, err := delta.ApplySharded(cur, deltas)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := sys.adoptGenerationLocked(next.Union(), mined, merged.Retire); err != nil {
		return nil, nil, nil, err
	}
	sys.sharded = next
	sys.shardedFrom = sys.Ontology
	return next, merged, touched, nil
}

// applyBatchLocked validates one update batch and, only when it is valid
// as a whole, extends the corpus, the click stream and the click graph,
// returning the affected seed queries to re-mine and the batch day.
// Caller holds ingestMu.
func (sys *System) applyBatchLocked(batch delta.Batch) ([]string, int, error) {
	day := batch.EffectiveDay()

	// Validation pass: plan every doc and resolve every click BEFORE any
	// shared state mutates, so an invalid batch is rejected whole — a
	// validation error never leaves the click graph or the corpus
	// half-updated and a corrected retry cannot double-count. (An
	// internal delta-pipeline failure further down is a bug, not a batch
	// problem; it is surfaced without ErrInvalidBatch so callers do not
	// blind-retry it.)
	nextID := len(sys.Log.Docs)
	batchDocIDs := make([]int, 0, len(batch.Docs)) // batch position -> final doc ID
	isNewDoc := make([]bool, 0, len(batch.Docs))
	for i := range batch.Docs {
		bd := &batch.Docs[i]
		switch {
		case bd.ID >= 0 && bd.ID < len(sys.Log.Docs):
			if sys.Log.Docs[bd.ID].Title != bd.Title {
				return nil, 0, fmt.Errorf("giant: ingest: doc ID %d collides with existing %q: %w", bd.ID, sys.Log.Docs[bd.ID].Title, delta.ErrInvalidBatch)
			}
			batchDocIDs = append(batchDocIDs, bd.ID)
			isNewDoc = append(isNewDoc, false)
		case bd.ID < 0 || bd.ID == nextID:
			batchDocIDs = append(batchDocIDs, nextID)
			isNewDoc = append(isNewDoc, true)
			nextID++
		default:
			return nil, 0, fmt.Errorf("giant: ingest: doc ID %d is not contiguous (next free ID is %d; use -1 to auto-assign): %w", bd.ID, nextID, delta.ErrInvalidBatch)
		}
	}
	clicks := append([]delta.Click(nil), batch.Clicks...)
	for i := range clicks {
		c := &clicks[i]
		if c.DocID < 0 {
			idx := -c.DocID - 1
			if idx >= len(batchDocIDs) {
				return nil, 0, fmt.Errorf("giant: ingest: click references batch doc #%d but the batch has %d docs: %w", idx, len(batchDocIDs), delta.ErrInvalidBatch)
			}
			c.DocID = batchDocIDs[idx]
		}
		if c.DocID >= nextID {
			return nil, 0, fmt.Errorf("giant: ingest: click references unknown doc %d: %w", c.DocID, delta.ErrInvalidBatch)
		}
		if c.Day == 0 {
			c.Day = day
		}
	}

	// Apply pass: adopt the new documents, then extend the click graph and
	// the log's click stream.
	for i := range batch.Docs {
		if !isNewDoc[i] {
			continue
		}
		bd := &batch.Docs[i]
		ents := make([]int, 0, len(bd.Entities))
		for _, name := range bd.Entities {
			if e, ok := sys.World.EntityByName(name); ok {
				ents = append(ents, e.ID)
			}
		}
		sys.Log.Docs = append(sys.Log.Docs, synth.Doc{
			ID: batchDocIDs[i], Title: bd.Title, Content: bd.Content, Category: bd.Category,
			Entities: ents, Day: bd.Day, ConceptID: -1, EventID: -1,
		})
	}
	queries := make([]string, 0, len(clicks))
	seenQ := map[string]bool{}
	touchedDocs := map[int]bool{}
	for _, c := range clicks {
		sys.Click.Add(c.Query, c.DocID, sys.Log.Docs[c.DocID].Title, c.Clicks, c.Day)
		sys.Log.Records = append(sys.Log.Records, synth.Record{Query: c.Query, DocID: c.DocID, Clicks: c.Clicks, Day: c.Day})
		if !seenQ[c.Query] {
			seenQ[c.Query] = true
			queries = append(queries, c.Query)
		}
		touchedDocs[c.DocID] = true
	}
	for _, id := range batchDocIDs {
		touchedDocs[id] = true
	}
	docIDs := make([]int, 0, len(touchedDocs))
	for id := range touchedDocs {
		docIDs = append(docIDs, id)
	}

	// The affected cluster neighbourhood: only these seeds are re-mined.
	return sys.Click.AffectedQueries(queries, docIDs, sys.Miner.Walk.Steps), day, nil
}

// adoptGenerationLocked advances the system's working ontology to the
// applied snapshot and refreshes the §4 application builders' bookkeeping
// (taggers, story trees): concept contexts, newly mined attentions, and
// retired records. The concept-context map is replaced copy-on-write —
// maps handed out by ConceptContext (e.g. to request handlers in a serving
// tier) are never mutated. Caller holds ingestMu.
func (sys *System) adoptGenerationLocked(next *ontology.Snapshot, mined []core.Mined, retires []delta.Ref) error {
	adopted, err := ontology.FromSnapshot(next)
	if err != nil {
		return fmt.Errorf("giant: ingest: adopt generation: %w", err)
	}
	sys.Ontology = adopted

	ctx := make(map[string][]string, len(sys.conceptContext)+len(mined))
	for k, v := range sys.conceptContext {
		ctx[k] = v
	}
	known := map[string]bool{}
	for i := range sys.Mined {
		known[sys.Mined[i].Phrase] = true
	}
	for i := range mined {
		m := &mined[i]
		// Record under the CANONICAL node phrase: a mined phrase that
		// alias-resolved to an existing node must refresh that node's
		// records, not create dead alias-keyed entries no tagger reads.
		typ := ontology.Concept
		if m.IsEvent {
			typ = ontology.Event
		}
		canonical := m.Phrase
		if id, ok := next.Lookup(typ, m.Phrase); ok {
			canonical = next.At(id).Phrase
		} else if id, ok := next.LookupAlias(typ, m.Phrase); ok {
			canonical = next.At(id).Phrase
		} else {
			continue // not adopted into this generation
		}
		if !m.IsEvent {
			ctx[canonical] = sys.Click.TopTitlesFor(m.Seed, 5)
		}
		if !known[canonical] {
			known[canonical] = true
			mc := *m
			mc.Phrase = canonical
			sys.Mined = append(sys.Mined, mc)
		}
	}
	if len(retires) > 0 {
		// Retirement is typed: an event aging out must not purge a
		// same-phrase concept's records (they are distinct nodes).
		retiredEvent, retiredConcept := map[string]bool{}, map[string]bool{}
		for _, r := range retires {
			switch r.Type {
			case ontology.Event:
				retiredEvent[r.Phrase] = true
			case ontology.Concept:
				retiredConcept[r.Phrase] = true
			}
		}
		kept := sys.Mined[:0]
		for i := range sys.Mined {
			m := &sys.Mined[i]
			if (m.IsEvent && retiredEvent[m.Phrase]) || (!m.IsEvent && retiredConcept[m.Phrase]) {
				continue
			}
			kept = append(kept, *m)
		}
		sys.Mined = kept
		for p := range retiredConcept {
			delete(ctx, p)
		}
	}
	sys.conceptContext = ctx
	return nil
}

// updatePolicy resolves the effective incremental policy, defaulting the
// linking thresholds to the batch build's configuration.
func (sys *System) updatePolicy() delta.Policy {
	pol := sys.Cfg.Update
	if pol.CategoryDelta == 0 {
		pol.CategoryDelta = sys.Cfg.CategoryDelta
	}
	if pol.SuffixMinFreq == 0 {
		pol.SuffixMinFreq = sys.Cfg.SuffixMinFreq
	}
	return pol
}

// deltaSource adapts the system's world, corpus and trained classifiers to
// the delta package's linking callbacks.
func (sys *System) deltaSource() delta.Source {
	w := sys.World
	docOK := func(docID int) bool { return docID >= 0 && docID < len(sys.Log.Docs) }
	return delta.Source{
		Lexicon:     w.Lexicon,
		Parallelism: sys.Cfg.parallelism(),
		DocCategory: func(docID int) (int, bool) {
			if !docOK(docID) {
				return 0, false
			}
			return sys.Log.Docs[docID].Category, true
		},
		CategoryPhrase: func(cat int) (string, bool) {
			if cat < 0 || cat >= len(w.Categories) {
				return "", false
			}
			return w.Categories[cat].Name, true
		},
		DocEntities: func(docID int) []string {
			if !docOK(docID) {
				return nil
			}
			ids := sys.Log.Docs[docID].Entities
			out := make([]string, 0, len(ids))
			for _, id := range ids {
				if id >= 0 && id < len(w.Entities) {
					out = append(out, w.Entities[id].Name)
				}
			}
			return out
		},
		DocContent: func(docID int) string {
			if !docOK(docID) {
				return ""
			}
			return sys.Log.Docs[docID].Content
		},
		AcceptConceptEntity: func(concept, entity, context string) bool {
			if sys.CEClf == nil {
				return true
			}
			ex := linking.CEExample{Concept: concept, Entity: entity, Context: context, CoClicks: 2}
			return sys.CEClf.Predict(&ex)
		},
		ResolveEntity: func(tok string) (string, bool) {
			return entityNameOfToken(w, tok), true
		},
	}
}
