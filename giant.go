// Package giant is the public facade of this reproduction of "GIANT:
// Scalable Creation of a Web-scale Ontology" (SIGMOD 2020). It wires the
// full pipeline end to end: generate (or ingest) a search click log, train
// GCTSP-Net on automatically constructed datasets, mine attention phrases
// from the click graph (Algorithm 1), link them into the Attention Ontology
// (§3.2), and expose the applications of §4 — document tagging, story-tree
// formation and query understanding.
//
// Quick start:
//
//	sys, err := giant.Build(giant.DefaultConfig())
//	...
//	stats := sys.Ontology.ComputeStats()
//	tags := sys.ConceptTagger().TagConcepts(&tagging.Document{...})
//
// For online serving, System.Snapshot freezes the built ontology into an
// immutable, lock-free ontology.Snapshot that internal/serve (and the
// giantd command) expose over HTTP; see docs/ARCHITECTURE.md for the
// offline-build vs. online-serve dataflow.
package giant

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"giant/internal/clickgraph"
	"giant/internal/core"
	"giant/internal/delta"
	"giant/internal/linking"
	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/par"
	"giant/internal/phrase"
	"giant/internal/queryund"
	"giant/internal/storytree"
	"giant/internal/synth"
	"giant/internal/tagging"
)

// Config controls the end-to-end build.
type Config struct {
	World synth.Config
	Log   synth.LogConfig
	// TrainConcepts / TrainEvents are dataset sizes for GCTSP-Net training.
	TrainConcepts int
	TrainEvents   int
	GCTSP         core.Options
	// CategoryDelta is δg for attention-category isA edges (paper 0.3).
	CategoryDelta float64
	// SuffixMinFreq is the CSD support threshold.
	SuffixMinFreq int
	// PatternMinFreq / PatternMinSearch are the CPD thresholds.
	PatternMinFreq   int
	PatternMinSearch int
	Seed             int64
	// Parallelism bounds the worker pools used by the mining and assembly
	// stages; <= 0 means runtime.GOMAXPROCS(0). The built ontology is
	// identical for every value — parallel shards are merged in a
	// deterministic order before anything is committed.
	Parallelism int
	// Shards partitions the click graph and the ontology K ways: mining
	// and delta ingest run shard-parallel, and System.ShardedSnapshot /
	// System.IngestSharded publish per-shard ontology projections for the
	// sharded serving tier. <= 1 (the default) is the legacy single-shard
	// path with byte-identical output; for any K the built ontology is
	// identical and the ingested node/edge sets are equivalent — sharding
	// changes scheduling and the unit of publication, never results.
	Shards int
	// Update is the incremental-maintenance policy (per-type TTL decay and
	// linking thresholds) applied by System.Ingest. Zero-valued threshold
	// fields fall back to this config's batch thresholds.
	Update delta.Policy
}

// parallelism resolves the effective worker count.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// shards resolves the effective shard count.
func (c Config) shards() int {
	if c.Shards > 1 {
		return c.Shards
	}
	return 1
}

// DefaultConfig is a laptop-scale end-to-end configuration.
func DefaultConfig() Config {
	return Config{
		World:            synth.DefaultConfig(),
		Log:              synth.DefaultLogConfig(),
		TrainConcepts:    240,
		TrainEvents:      200,
		GCTSP:            core.Options{Epochs: 6, Fallback: true},
		CategoryDelta:    0.3,
		SuffixMinFreq:    3,
		PatternMinFreq:   2,
		PatternMinSearch: 2,
		Seed:             42,
		Shards:           1,
		Update:           delta.DefaultPolicy(),
	}
}

// TinyConfig is a fast configuration for tests.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.World = synth.TinyConfig()
	cfg.Log = synth.LogConfig{Seed: 5, QueriesPerAspect: 3, DocsPerAspect: 3, MaxClicks: 20, NumSessions: 80}
	cfg.TrainConcepts = 40
	cfg.TrainEvents = 40
	cfg.GCTSP = core.Options{Epochs: 4, Layers: 3, Fallback: true}
	return cfg
}

// System is a fully built GIANT instance.
type System struct {
	Cfg      Config
	World    *synth.World
	Log      *synth.Log
	Click    *clickgraph.Graph
	Miner    *core.Miner
	Mined    []core.Mined
	Ontology *ontology.Ontology
	CEClf    *linking.CEClassifier
	Embedder *linking.EntityEmbedder
	// Sharding is the click graph's shard assignment when Cfg.Shards > 1
	// (recomputed per ingest batch: new clicks can merge components).
	Sharding *clickgraph.Sharding

	conceptContext map[string][]string       // concept phrase -> top titles
	sharded        *ontology.ShardedSnapshot // cached sharded projection of Ontology
	shardedFrom    *ontology.Ontology        // the Ontology value sharded was derived from
	ingestMu       sync.Mutex                // serializes System.Ingest/IngestSharded

	// Checkpoint baseline: corpus/click-stream high-water marks at the end
	// of the deterministic seed build. Everything at or below them is
	// reproducible by re-running Build with the same Config, so
	// CheckpointState ships only the suffix past them (see checkpoint.go).
	seedDocs int
	seedRecs int
}

// Build runs the whole pipeline.
func Build(cfg Config) (*System, error) {
	return BuildUpToDay(cfg, -1)
}

// BuildUpToDay is Build with the click stream truncated: only click
// records with Day <= day reach the click graph and the mining stage
// (day < 0 means all). The generated world, document corpus and session
// stream are untouched — they model the pre-existing knowledge the
// pipeline links against. Later days arrive incrementally through
// System.Ingest, which is how the delta-vs-full-rebuild equivalence tests
// replay a corpus batch by batch.
func BuildUpToDay(cfg Config, day int) (*System, error) {
	sys := &System{Cfg: cfg}
	sys.World = synth.GenWorld(cfg.World)
	sys.Log = sys.World.GenerateLog(cfg.Log)
	if day >= 0 {
		kept := make([]synth.Record, 0, len(sys.Log.Records))
		for _, r := range sys.Log.Records {
			if r.Day <= day {
				kept = append(kept, r)
			}
		}
		sys.Log.Records = kept
	}

	// Click graph.
	sys.Click = clickgraph.New()
	for _, r := range sys.Log.Records {
		doc := sys.Log.Docs[r.DocID]
		sys.Click.Add(r.Query, r.DocID, doc.Title, r.Clicks, r.Day)
	}

	// GCTSP-Net training on automatically constructed datasets. The phrase
	// extractor and the key-element recognizer are independent models over
	// independent datasets, so the two training runs — the pipeline's
	// dominant cost — proceed concurrently; each run is itself sequential
	// and seeded, so the trained weights are identical for any Parallelism.
	lex := sys.World.Lexicon
	conceptTrain := sys.World.ConceptExamples(cfg.TrainConcepts, cfg.Seed+1)
	eventTrain := sys.World.EventExamples(cfg.TrainEvents, cfg.Seed+2)
	phraseModel := core.NewPhraseModel(lex, cfg.GCTSP)
	keyModel := core.NewKeyElementModel(lex, cfg.GCTSP)
	if err := par.RunStages(cfg.parallelism(),
		func() error {
			phraseModel.Train(append(append([]synth.MiningExample{}, conceptTrain...), eventTrain...))
			return nil
		},
		func() error { keyModel.Train(eventTrain); return nil },
	); err != nil {
		return nil, fmt.Errorf("giant: train GCTSP-Net: %w", err)
	}
	sys.Miner = core.NewMiner(phraseModel, keyModel, lex)
	sys.Miner.Parallelism = cfg.parallelism()

	// Algorithm 1: mine attentions. With Shards > 1, the cluster walks are
	// partitioned by the click graph's shard assignment (connected
	// clusters never straddle shards); the mined output is identical.
	if k := cfg.shards(); k > 1 {
		sys.Sharding = sys.Click.ShardAssignment(k)
		sys.Mined = sys.Miner.MineSharded(sys.Click, sys.Sharding)
	} else {
		sys.Mined = sys.Miner.Mine(sys.Click)
	}

	// Assemble ontology.
	if err := sys.assemble(); err != nil {
		return nil, fmt.Errorf("giant: assemble ontology: %w", err)
	}
	sys.seedDocs = len(sys.Log.Docs)
	sys.seedRecs = len(sys.Log.Records)
	return sys, nil
}

// assemble builds the Attention Ontology from the mined attentions (§3.2).
func (sys *System) assemble() error {
	o := ontology.New()
	cfg := sys.Cfg
	w := sys.World

	// Categories: the pre-defined hierarchy.
	catSpecs := make([]ontology.NodeSpec, len(w.Categories))
	for i, c := range w.Categories {
		catSpecs[i] = ontology.NodeSpec{Type: ontology.Category, Phrase: c.Name}
	}
	catNode := o.AddNodes(catSpecs)
	catEdgeBatch := make([]ontology.Edge, 0, len(w.Categories))
	for i, c := range w.Categories {
		if c.Parent >= 0 {
			catEdgeBatch = append(catEdgeBatch, ontology.Edge{Src: catNode[c.Parent], Dst: catNode[i], Type: ontology.IsA, Weight: 1})
		}
	}
	if err := o.AddEdges(catEdgeBatch); err != nil {
		return err
	}
	// Entities: the pre-existing knowledge-base inventory (the paper links
	// against an existing entity catalogue; here the generative world plays
	// that role).
	entSpecs := make([]ontology.NodeSpec, len(w.Entities))
	for i, e := range w.Entities {
		entSpecs[i] = ontology.NodeSpec{Type: ontology.Entity, Phrase: e.Name}
	}
	o.AddNodes(entSpecs)

	// Mined concepts and events.
	sys.conceptContext = map[string][]string{}
	var conceptPhrases, eventPhrases []string
	dayOf := map[string]int{}
	for i := range sys.Mined {
		m := &sys.Mined[i]
		typ := ontology.Concept
		if m.IsEvent {
			typ = ontology.Event
		}
		id := o.AddNodeAt(typ, m.Phrase, maxDay(m.Day, 0))
		for _, a := range m.Aliases {
			o.AddAlias(id, a)
		}
		dayOf[m.Phrase] = m.Day
		if m.IsEvent {
			o.SetEventAttrs(id, m.Trigger, m.Location, m.Day)
			eventPhrases = append(eventPhrases, m.Phrase)
		} else {
			conceptPhrases = append(conceptPhrases, m.Phrase)
			sys.conceptContext[m.Phrase] = sys.Click.TopTitlesFor(m.Seed, 5)
		}
	}

	// Attention derivation: CSD parents for concepts.
	derived := phrase.CommonSuffixDiscovery(conceptPhrases, cfg.SuffixMinFreq, w.Lexicon)
	for _, d := range derived {
		pid := o.AddNode(ontology.Concept, d.Phrase)
		for _, child := range d.Children {
			if cn, ok := o.Find(ontology.Concept, child); ok {
				if err := o.AddEdge(pid, cn.ID, ontology.IsA, 1); err != nil {
					return err
				}
			}
		}
		conceptPhrases = append(conceptPhrases, d.Phrase)
	}
	// CPD topics from events.
	cpdEvents := sys.eventsForCPD()
	topics := phrase.CommonPatternDiscovery(cpdEvents, cfg.PatternMinFreq, cfg.PatternMinSearch)
	topicMembers := map[string][]string{}
	for _, t := range topics {
		tid := o.AddNode(ontology.Topic, t.Phrase)
		topicMembers[t.Phrase] = t.Children
		for _, child := range t.Children {
			if en, ok := o.Find(ontology.Event, child); ok {
				if err := o.AddEdge(tid, en.ID, ontology.IsA, 1); err != nil {
					return err
				}
			}
		}
	}

	// Collect topic phrases in sorted order so concept-topic involve edges
	// are discovered deterministically across runs (the map iteration here
	// used to leak Go's random map order into the edge list).
	topicPhrases := make([]string, 0, len(topicMembers))
	for t := range topicMembers {
		topicPhrases = append(topicPhrases, t)
	}
	sort.Strings(topicPhrases)

	// The linking stages below are data-independent: each only reads state
	// frozen above (mined attentions, phrase lists, the click log and world).
	// Fan them out over the configured worker budget, then commit their edge
	// proposals to the ontology in a single deterministic pass.
	var (
		catEdges     []linking.CategoryEdge
		suffixPairs  []linking.PhrasePair
		containPairs []linking.PhrasePair
		involvePairs []linking.PhrasePair
		ceLinks      []phrasePair
		evLinks      []phrasePair
		corrPairs    [][2]string
	)
	if err := par.RunStages(cfg.parallelism(),
		func() error { catEdges = sys.attentionCategoryEdges(); return nil },
		func() error { suffixPairs = linking.SuffixIsAEdges(conceptPhrases); return nil },
		func() error { containPairs = linking.ContainmentIsAEdges(eventPhrases); return nil },
		func() error {
			involvePairs = linking.ConceptTopicInvolveEdges(conceptPhrases, topicPhrases)
			return nil
		},
		func() error { ceLinks = sys.conceptEntityLinks(); return nil },
		func() error { evLinks = sys.eventEntityLinks(); return nil },
		func() error { corrPairs = sys.entityCorrelatePairs(); return nil },
	); err != nil {
		return err
	}

	// Commit pass: resolve phrases to node IDs and batch-insert each edge
	// group in the same order the sequential pipeline used.
	var batch []ontology.Edge
	for _, e := range catEdges {
		n, ok := o.FindAny(e.Phrase)
		if !ok || e.Category >= len(catNode) {
			continue
		}
		batch = append(batch, ontology.Edge{Src: catNode[e.Category], Dst: n.ID, Type: ontology.IsA, Weight: e.P})
	}
	for _, pr := range suffixPairs {
		p, ok1 := o.Find(ontology.Concept, pr.Parent)
		c, ok2 := o.Find(ontology.Concept, pr.Child)
		if ok1 && ok2 {
			batch = append(batch, ontology.Edge{Src: p.ID, Dst: c.ID, Type: ontology.IsA, Weight: 1})
		}
	}
	for _, pr := range containPairs {
		p, ok1 := o.Find(ontology.Event, pr.Parent)
		c, ok2 := o.Find(ontology.Event, pr.Child)
		if ok1 && ok2 {
			batch = append(batch, ontology.Edge{Src: p.ID, Dst: c.ID, Type: ontology.IsA, Weight: 1})
		}
	}
	for _, pr := range involvePairs {
		t, ok1 := o.Find(ontology.Topic, pr.Parent)
		c, ok2 := o.Find(ontology.Concept, pr.Child)
		if ok1 && ok2 {
			batch = append(batch, ontology.Edge{Src: t.ID, Dst: c.ID, Type: ontology.Involve, Weight: 1})
		}
	}
	for _, pr := range ceLinks {
		cn, ok1 := o.Find(ontology.Concept, pr.parent)
		en, ok2 := o.Find(ontology.Entity, pr.child)
		if ok1 && ok2 {
			batch = append(batch, ontology.Edge{Src: cn.ID, Dst: en.ID, Type: ontology.IsA, Weight: 1})
		}
	}
	for _, pr := range evLinks {
		en, ok1 := o.Find(ontology.Event, pr.parent)
		ent, ok2 := o.Find(ontology.Entity, pr.child)
		if ok1 && ok2 {
			batch = append(batch, ontology.Edge{Src: en.ID, Dst: ent.ID, Type: ontology.Involve, Weight: 1})
		}
	}
	for _, p := range corrPairs {
		a, ok1 := o.Find(ontology.Entity, p[0])
		b, ok2 := o.Find(ontology.Entity, p[1])
		if ok1 && ok2 {
			// Correlate is symmetric; store one canonical direction.
			batch = append(batch, ontology.Edge{Src: a.ID, Dst: b.ID, Type: ontology.Correlate, Weight: 1})
		}
	}
	if err := o.AddEdges(batch); err != nil {
		return err
	}

	// Concept-concept correlate (the §3.2 extension the paper defers):
	// concepts sharing a large fraction of instances correlate.
	instances := map[string][]string{}
	for _, c := range o.Nodes(ontology.Concept) {
		for _, ch := range o.Children(c.ID, ontology.IsA) {
			if ch.Type == ontology.Entity {
				instances[c.Phrase] = append(instances[c.Phrase], ch.Phrase)
			}
		}
	}
	for _, pr := range linking.ConceptCorrelateEdges(instances, 0.5) {
		a, ok1 := o.Find(ontology.Concept, pr.Parent)
		b, ok2 := o.Find(ontology.Concept, pr.Child)
		if ok1 && ok2 {
			_ = o.AddEdge(a.ID, b.ID, ontology.Correlate, 1)
		}
	}

	sys.Ontology = o
	return nil
}

// eventsForCPD converts mined events into the CPD input view, mapping
// recognized entity tokens to their concept via the world's lexicon-es...
// (at mining time we only know surface tokens; the entity's concept comes
// from the already-established concept-entity candidates, here the class
// plural discovered via alignment of categories).
func (sys *System) eventsForCPD() []phrase.EventForCPD {
	var out []phrase.EventForCPD
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent {
			continue
		}
		toks := nlp.Tokenize(m.Phrase)
		spans := map[int]string{}
		for ti, t := range toks {
			for _, entTok := range m.Entities {
				if t != entTok {
					continue
				}
				if ent, ok := sys.World.EntityByName(entityNameOfToken(sys.World, t)); ok {
					// Most fine-grained common concept ancestor: the class
					// noun (shared by all the entity's concepts).
					spans[ti] = sys.World.Classes[ent.Class].Noun
				}
			}
		}
		out = append(out, phrase.EventForCPD{
			Tokens:      toks,
			EntitySpans: spans,
			SearchCount: len(m.Queries),
		})
	}
	return out
}

// entityNameOfToken resolves a single token to the full entity name
// containing it (entity names are multi-token).
func entityNameOfToken(w *synth.World, tok string) string {
	for _, e := range w.Entities {
		for _, t := range nlp.Tokenize(e.Name) {
			if t == tok {
				return e.Name
			}
		}
	}
	return tok
}

// phrasePair is an edge proposal between two phrases, resolved to node IDs
// at commit time.
type phrasePair struct {
	parent, child string
}

// attentionCategoryEdges estimates P(g|p) over the clicked docs of each mined
// attention (pure compute).
func (sys *System) attentionCategoryEdges() []linking.CategoryEdge {
	byCat := map[string]map[int]int{}
	for i := range sys.Mined {
		m := &sys.Mined[i]
		cats := map[int]int{}
		for _, docID := range m.DocIDs {
			if docID >= 0 && docID < len(sys.Log.Docs) {
				cats[sys.Log.Docs[docID].Category]++
			}
		}
		byCat[m.Phrase] = cats
	}
	return linking.AttentionCategoryEdges(byCat, sys.Cfg.CategoryDelta)
}

// conceptEntityLinks trains the Fig. 4 classifier from session data and
// returns the accepted concept-entity pairs observed in clicked documents
// (pure compute; the ontology is untouched until the commit pass).
func (sys *System) conceptEntityLinks() []phrasePair {
	// Automatic dataset construction.
	var positives []linking.CEExample
	entityNames := make([]string, 0, len(sys.World.Entities))
	for _, e := range sys.World.Entities {
		entityNames = append(entityNames, e.Name)
	}
	for _, sess := range sys.Log.Sessions {
		if len(sess.Queries) < 2 {
			continue
		}
		conceptQ, entityQ := sess.Queries[0], sess.Queries[1]
		// The clicked document after the concept query: any concept doc
		// mentioning the entity.
		ctx := sys.contextMentioning(conceptQ, entityQ)
		if ctx == "" {
			continue
		}
		positives = append(positives, linking.CEExample{
			Concept: conceptQ, Entity: entityQ, Context: ctx,
			ConsecutiveQuery: true, CoClicks: 3,
		})
	}
	dataset := linking.BuildCEDataset(positives, entityNames, sys.Cfg.Seed+7)
	if len(dataset) > 0 {
		sys.CEClf = linking.TrainCEClassifier(dataset, 6, 0.3, sys.Cfg.Seed+8)
	}

	// Candidate links: mined concept × entities mentioned in its docs.
	var out []phrasePair
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if m.IsEvent {
			continue
		}
		seen := map[int]bool{}
		for _, docID := range m.DocIDs {
			if docID < 0 || docID >= len(sys.Log.Docs) {
				continue
			}
			doc := &sys.Log.Docs[docID]
			for _, eid := range doc.Entities {
				if seen[eid] {
					continue
				}
				seen[eid] = true
				entName := sys.World.Entities[eid].Name
				ex := linking.CEExample{
					Concept: m.Phrase, Entity: entName, Context: doc.Content,
					CoClicks: 2,
				}
				if sys.CEClf == nil || sys.CEClf.Predict(&ex) {
					out = append(out, phrasePair{parent: m.Phrase, child: entName})
				}
			}
		}
	}
	return out
}

// eventEntityLinks pairs each mined event with the entities its recognized
// key elements resolve to (pure compute).
func (sys *System) eventEntityLinks() []phrasePair {
	var out []phrasePair
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent {
			continue
		}
		for _, entTok := range m.Entities {
			out = append(out, phrasePair{parent: m.Phrase, child: entityNameOfToken(sys.World, entTok)})
		}
	}
	return out
}

// contextMentioning finds a doc content for the concept query that mentions
// the entity.
func (sys *System) contextMentioning(conceptQ, entity string) string {
	for _, title := range sys.Click.TopTitlesFor(conceptQ, 5) {
		for _, d := range sys.Log.Docs {
			if d.Title != title {
				continue
			}
			if strings.Contains(" "+d.Content+" ", " "+entity+" ") {
				return d.Content
			}
		}
	}
	return ""
}

// entityCorrelatePairs trains embeddings on co-occurrence pairs and returns
// the entity pairs the learned filter accepts (pure compute).
func (sys *System) entityCorrelatePairs() [][2]string {
	var pairs [][2]string
	for _, d := range sys.Log.Docs {
		for i := 0; i < len(d.Entities); i++ {
			for j := i + 1; j < len(d.Entities); j++ {
				a := sys.World.Entities[d.Entities[i]].Name
				b := sys.World.Entities[d.Entities[j]].Name
				if a != b {
					pairs = append(pairs, [2]string{a, b})
				}
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	sys.Embedder = linking.NewEntityEmbedder(16)
	sys.Embedder.Train(pairs)
	// Candidate pairs include random distractors so the learned filter — not
	// the candidate source — decides correlation (keeps Table 2's accuracy
	// measurement meaningful).
	cands := append([][2]string(nil), pairs...)
	nEnt := len(sys.World.Entities)
	for i := 0; i < len(pairs)/2 && nEnt > 1; i++ {
		a := sys.World.Entities[(i*7)%nEnt].Name
		b := sys.World.Entities[(i*13+5)%nEnt].Name
		if a != b {
			cands = append(cands, [2]string{a, b})
		}
	}
	return sys.Embedder.CorrelatePairs(cands)
}

// Snapshot returns an immutable, lock-free snapshot of the built ontology
// for the online serving tier (see internal/serve and cmd/giantd). The
// snapshot shares nothing mutable with the system: later ontology writes
// never disturb its readers.
func (sys *System) Snapshot() *ontology.Snapshot {
	return sys.Ontology.Snapshot()
}

// ShardedSnapshot returns the ontology partitioned into Cfg.Shards
// per-shard projections behind one routing index (see
// ontology.ShardedSnapshot). The projection is cached and advanced
// incrementally by IngestSharded, so repeated calls between ingests are
// free; with Shards <= 1 it wraps the plain snapshot at zero cost.
func (sys *System) ShardedSnapshot() (*ontology.ShardedSnapshot, error) {
	sys.ingestMu.Lock()
	defer sys.ingestMu.Unlock()
	return sys.shardedLocked()
}

// shardedLocked resolves the cached sharded projection, rebuilding it when
// absent, built for a different shard count, or derived from an Ontology
// value that has since been swapped out (Ontology is an exported field —
// giantctl update reassigns it to a loaded base before replaying deltas,
// and a stale projection would silently diff against the wrong world).
// Caller holds ingestMu.
func (sys *System) shardedLocked() (*ontology.ShardedSnapshot, error) {
	k := sys.Cfg.shards()
	if sys.sharded != nil && sys.sharded.NumShards() == k && sys.shardedFrom == sys.Ontology {
		return sys.sharded, nil
	}
	ss, err := ontology.ShardSnapshot(sys.Ontology.Snapshot(), k)
	if err != nil {
		return nil, err
	}
	sys.sharded = ss
	sys.shardedFrom = sys.Ontology
	return ss, nil
}

// ShardProjection returns shard i's serving projection — the boot
// artifact of a per-shard giantd process (see ontology.ShardProjection):
// the shard's standalone snapshot plus its routing identity and the
// local→union node-ID table. Requires Cfg.Shards to cover i.
func (sys *System) ShardProjection(i int) (*ontology.ShardProjection, error) {
	ss, err := sys.ShardedSnapshot()
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= ss.NumShards() {
		return nil, fmt.Errorf("giant: shard %d out of range for %d shards", i, ss.NumShards())
	}
	return ss.Projection(i), nil
}

// ConceptContext returns a copy of the concept phrase -> top clicked
// titles map the build collected, so a serving tier can construct
// context-enriched concept taggers over a snapshot. It is a snapshot in
// time: the caller owns the copy, and later System.Ingest calls never
// mutate it (Ingest replaces the internal map copy-on-write), so it is
// safe to share with concurrent request handlers.
func (sys *System) ConceptContext() map[string][]string {
	out := make(map[string][]string, len(sys.conceptContext))
	for k, v := range sys.conceptContext {
		out[k] = v
	}
	return out
}

// ConceptTagger builds the §4 concept tagger over the built ontology.
func (sys *System) ConceptTagger() *tagging.ConceptTagger {
	return tagging.NewConceptTagger(sys.Ontology, sys.conceptContext)
}

// EventTagger builds the §4 event tagger, training the Duet matcher on
// mined (event, title) pairs.
func (sys *System) EventTagger() *tagging.EventTagger {
	duet := tagging.NewDuet(sys.Cfg.Seed + 9)
	var examples []tagging.DuetExample
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent || len(m.Titles) == 0 {
			continue
		}
		pt := nlp.Tokenize(m.Phrase)
		examples = append(examples, tagging.DuetExample{Phrase: pt, Doc: nlp.Tokenize(m.Titles[0]), Label: true})
		// Negative: unrelated title.
		for j := range sys.Mined {
			if j != i && len(sys.Mined[j].Titles) > 0 {
				examples = append(examples, tagging.DuetExample{Phrase: pt, Doc: nlp.Tokenize(sys.Mined[j].Titles[0]), Label: false})
				break
			}
		}
	}
	duet.Train(examples, 4, 0.05, sys.Cfg.Seed+10)
	return tagging.NewEventTagger(sys.Ontology, duet)
}

// Query builds the §4 query understander.
func (sys *System) Query() *queryund.Understander {
	return queryund.New(sys.Ontology)
}

// StoryTree forms a story tree seeded at the given mined event phrase.
func (sys *System) StoryTree(seedPhrase string) (*storytree.Tree, bool) {
	var seed *storytree.EventNode
	var candidates []*storytree.EventNode
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent {
			continue
		}
		node := &storytree.EventNode{
			Phrase: m.Phrase, Trigger: m.Trigger, Entities: m.Entities,
			Location: m.Location, Day: m.Day, Docs: m.Titles,
		}
		if m.Phrase == seedPhrase {
			seed = node
		}
		candidates = append(candidates, node)
	}
	if seed == nil {
		return nil, false
	}
	enc := storytree.NewBagOfTokensEncoder(16, nil)
	return storytree.Form(seed, candidates, enc, storytree.DefaultOptions()), true
}

func maxDay(d, min int) int {
	if d < min {
		return min
	}
	return d
}
