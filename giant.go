// Package giant is the public facade of this reproduction of "GIANT:
// Scalable Creation of a Web-scale Ontology" (SIGMOD 2020). It wires the
// full pipeline end to end: generate (or ingest) a search click log, train
// GCTSP-Net on automatically constructed datasets, mine attention phrases
// from the click graph (Algorithm 1), link them into the Attention Ontology
// (§3.2), and expose the applications of §4 — document tagging, story-tree
// formation and query understanding.
//
// Quick start:
//
//	sys, err := giant.Build(giant.DefaultConfig())
//	...
//	stats := sys.Ontology.ComputeStats()
//	tags := sys.ConceptTagger().TagConcepts(&tagging.Document{...})
package giant

import (
	"fmt"
	"strings"

	"giant/internal/clickgraph"
	"giant/internal/core"
	"giant/internal/linking"
	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/phrase"
	"giant/internal/queryund"
	"giant/internal/storytree"
	"giant/internal/synth"
	"giant/internal/tagging"
)

// Config controls the end-to-end build.
type Config struct {
	World synth.Config
	Log   synth.LogConfig
	// TrainConcepts / TrainEvents are dataset sizes for GCTSP-Net training.
	TrainConcepts int
	TrainEvents   int
	GCTSP         core.Options
	// CategoryDelta is δg for attention-category isA edges (paper 0.3).
	CategoryDelta float64
	// SuffixMinFreq is the CSD support threshold.
	SuffixMinFreq int
	// PatternMinFreq / PatternMinSearch are the CPD thresholds.
	PatternMinFreq   int
	PatternMinSearch int
	Seed             int64
}

// DefaultConfig is a laptop-scale end-to-end configuration.
func DefaultConfig() Config {
	return Config{
		World:            synth.DefaultConfig(),
		Log:              synth.DefaultLogConfig(),
		TrainConcepts:    240,
		TrainEvents:      200,
		GCTSP:            core.Options{Epochs: 6, Fallback: true},
		CategoryDelta:    0.3,
		SuffixMinFreq:    3,
		PatternMinFreq:   2,
		PatternMinSearch: 2,
		Seed:             42,
	}
}

// TinyConfig is a fast configuration for tests.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.World = synth.TinyConfig()
	cfg.Log = synth.LogConfig{Seed: 5, QueriesPerAspect: 3, DocsPerAspect: 3, MaxClicks: 20, NumSessions: 80}
	cfg.TrainConcepts = 40
	cfg.TrainEvents = 40
	cfg.GCTSP = core.Options{Epochs: 4, Layers: 3, Fallback: true}
	return cfg
}

// System is a fully built GIANT instance.
type System struct {
	Cfg      Config
	World    *synth.World
	Log      *synth.Log
	Click    *clickgraph.Graph
	Miner    *core.Miner
	Mined    []core.Mined
	Ontology *ontology.Ontology
	CEClf    *linking.CEClassifier
	Embedder *linking.EntityEmbedder

	conceptContext map[string][]string // concept phrase -> top titles
}

// Build runs the whole pipeline.
func Build(cfg Config) (*System, error) {
	sys := &System{Cfg: cfg}
	sys.World = synth.GenWorld(cfg.World)
	sys.Log = sys.World.GenerateLog(cfg.Log)

	// Click graph.
	sys.Click = clickgraph.New()
	for _, r := range sys.Log.Records {
		doc := sys.Log.Docs[r.DocID]
		sys.Click.Add(r.Query, r.DocID, doc.Title, r.Clicks, r.Day)
	}

	// GCTSP-Net training on automatically constructed datasets.
	lex := sys.World.Lexicon
	conceptTrain := sys.World.ConceptExamples(cfg.TrainConcepts, cfg.Seed+1)
	eventTrain := sys.World.EventExamples(cfg.TrainEvents, cfg.Seed+2)
	phraseModel := core.NewPhraseModel(lex, cfg.GCTSP)
	phraseModel.Train(append(append([]synth.MiningExample{}, conceptTrain...), eventTrain...))
	keyModel := core.NewKeyElementModel(lex, cfg.GCTSP)
	keyModel.Train(eventTrain)
	sys.Miner = core.NewMiner(phraseModel, keyModel, lex)

	// Algorithm 1: mine attentions.
	sys.Mined = sys.Miner.Mine(sys.Click)

	// Assemble ontology.
	if err := sys.assemble(); err != nil {
		return nil, fmt.Errorf("giant: assemble ontology: %w", err)
	}
	return sys, nil
}

// assemble builds the Attention Ontology from the mined attentions (§3.2).
func (sys *System) assemble() error {
	o := ontology.New()
	cfg := sys.Cfg
	w := sys.World

	// Categories: the pre-defined hierarchy.
	catNode := make([]ontology.NodeID, len(w.Categories))
	for i, c := range w.Categories {
		catNode[i] = o.AddNode(ontology.Category, c.Name)
	}
	for i, c := range w.Categories {
		if c.Parent >= 0 {
			if err := o.AddEdge(catNode[c.Parent], catNode[i], ontology.IsA, 1); err != nil {
				return err
			}
		}
	}
	// Entities: the pre-existing knowledge-base inventory (the paper links
	// against an existing entity catalogue; here the generative world plays
	// that role).
	for _, e := range w.Entities {
		o.AddNode(ontology.Entity, e.Name)
	}

	// Mined concepts and events.
	sys.conceptContext = map[string][]string{}
	var conceptPhrases, eventPhrases []string
	dayOf := map[string]int{}
	for i := range sys.Mined {
		m := &sys.Mined[i]
		typ := ontology.Concept
		if m.IsEvent {
			typ = ontology.Event
		}
		id := o.AddNodeAt(typ, m.Phrase, maxDay(m.Day, 0))
		for _, a := range m.Aliases {
			o.AddAlias(id, a)
		}
		dayOf[m.Phrase] = m.Day
		if m.IsEvent {
			o.SetEventAttrs(id, m.Trigger, m.Location, m.Day)
			eventPhrases = append(eventPhrases, m.Phrase)
		} else {
			conceptPhrases = append(conceptPhrases, m.Phrase)
			sys.conceptContext[m.Phrase] = sys.Click.TopTitlesFor(m.Seed, 5)
		}
	}

	// Attention derivation: CSD parents for concepts.
	derived := phrase.CommonSuffixDiscovery(conceptPhrases, cfg.SuffixMinFreq, w.Lexicon)
	for _, d := range derived {
		pid := o.AddNode(ontology.Concept, d.Phrase)
		for _, child := range d.Children {
			if cn, ok := o.Find(ontology.Concept, child); ok {
				if err := o.AddEdge(pid, cn.ID, ontology.IsA, 1); err != nil {
					return err
				}
			}
		}
		conceptPhrases = append(conceptPhrases, d.Phrase)
	}
	// CPD topics from events.
	cpdEvents := sys.eventsForCPD()
	topics := phrase.CommonPatternDiscovery(cpdEvents, cfg.PatternMinFreq, cfg.PatternMinSearch)
	topicMembers := map[string][]string{}
	for _, t := range topics {
		tid := o.AddNode(ontology.Topic, t.Phrase)
		topicMembers[t.Phrase] = t.Children
		for _, child := range t.Children {
			if en, ok := o.Find(ontology.Event, child); ok {
				if err := o.AddEdge(tid, en.ID, ontology.IsA, 1); err != nil {
					return err
				}
			}
		}
	}

	// Attention-category edges: P(g|p) over clicked docs.
	byCat := map[string]map[int]int{}
	for i := range sys.Mined {
		m := &sys.Mined[i]
		cats := map[int]int{}
		for _, docID := range m.DocIDs {
			if docID >= 0 && docID < len(sys.Log.Docs) {
				cats[sys.Log.Docs[docID].Category]++
			}
		}
		byCat[m.Phrase] = cats
	}
	for _, e := range linking.AttentionCategoryEdges(byCat, cfg.CategoryDelta) {
		n, ok := o.FindAny(e.Phrase)
		if !ok || e.Category >= len(catNode) {
			continue
		}
		if err := o.AddEdge(catNode[e.Category], n.ID, ontology.IsA, e.P); err != nil {
			return err
		}
	}

	// Concept-concept suffix isA.
	for _, pr := range linking.SuffixIsAEdges(conceptPhrases) {
		p, ok1 := o.Find(ontology.Concept, pr.Parent)
		c, ok2 := o.Find(ontology.Concept, pr.Child)
		if ok1 && ok2 {
			if err := o.AddEdge(p.ID, c.ID, ontology.IsA, 1); err != nil {
				return err
			}
		}
	}
	// Event containment isA.
	for _, pr := range linking.ContainmentIsAEdges(eventPhrases) {
		p, ok1 := o.Find(ontology.Event, pr.Parent)
		c, ok2 := o.Find(ontology.Event, pr.Child)
		if ok1 && ok2 {
			if err := o.AddEdge(p.ID, c.ID, ontology.IsA, 1); err != nil {
				return err
			}
		}
	}
	// Concept -> topic involve.
	topicPhrases := make([]string, 0, len(topicMembers))
	for t := range topicMembers {
		topicPhrases = append(topicPhrases, t)
	}
	for _, pr := range linking.ConceptTopicInvolveEdges(conceptPhrases, topicPhrases) {
		t, ok1 := o.Find(ontology.Topic, pr.Parent)
		c, ok2 := o.Find(ontology.Concept, pr.Child)
		if ok1 && ok2 {
			if err := o.AddEdge(t.ID, c.ID, ontology.Involve, 1); err != nil {
				return err
			}
		}
	}

	// Concept-entity isA via the learned classifier.
	if err := sys.linkConceptEntities(o); err != nil {
		return err
	}

	// Event -> entity involve edges from recognized key elements.
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent {
			continue
		}
		en, ok := o.Find(ontology.Event, m.Phrase)
		if !ok {
			continue
		}
		for _, entTok := range m.Entities {
			if ent, ok := sys.findEntityByToken(o, entTok); ok {
				if err := o.AddEdge(en.ID, ent.ID, ontology.Involve, 1); err != nil {
					return err
				}
			}
		}
	}

	// Entity-entity correlate via hinge-loss embeddings.
	sys.linkEntityCorrelates(o)

	// Concept-concept correlate (the §3.2 extension the paper defers):
	// concepts sharing a large fraction of instances correlate.
	instances := map[string][]string{}
	for _, c := range o.Nodes(ontology.Concept) {
		for _, ch := range o.Children(c.ID, ontology.IsA) {
			if ch.Type == ontology.Entity {
				instances[c.Phrase] = append(instances[c.Phrase], ch.Phrase)
			}
		}
	}
	for _, pr := range linking.ConceptCorrelateEdges(instances, 0.5) {
		a, ok1 := o.Find(ontology.Concept, pr.Parent)
		b, ok2 := o.Find(ontology.Concept, pr.Child)
		if ok1 && ok2 {
			_ = o.AddEdge(a.ID, b.ID, ontology.Correlate, 1)
		}
	}

	sys.Ontology = o
	return nil
}

// eventsForCPD converts mined events into the CPD input view, mapping
// recognized entity tokens to their concept via the world's lexicon-es...
// (at mining time we only know surface tokens; the entity's concept comes
// from the already-established concept-entity candidates, here the class
// plural discovered via alignment of categories).
func (sys *System) eventsForCPD() []phrase.EventForCPD {
	var out []phrase.EventForCPD
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent {
			continue
		}
		toks := nlp.Tokenize(m.Phrase)
		spans := map[int]string{}
		for ti, t := range toks {
			for _, entTok := range m.Entities {
				if t != entTok {
					continue
				}
				if ent, ok := sys.World.EntityByName(entityNameOfToken(sys.World, t)); ok {
					// Most fine-grained common concept ancestor: the class
					// noun (shared by all the entity's concepts).
					spans[ti] = sys.World.Classes[ent.Class].Noun
				}
			}
		}
		out = append(out, phrase.EventForCPD{
			Tokens:      toks,
			EntitySpans: spans,
			SearchCount: len(m.Queries),
		})
	}
	return out
}

// entityNameOfToken resolves a single token to the full entity name
// containing it (entity names are multi-token).
func entityNameOfToken(w *synth.World, tok string) string {
	for _, e := range w.Entities {
		for _, t := range nlp.Tokenize(e.Name) {
			if t == tok {
				return e.Name
			}
		}
	}
	return tok
}

func (sys *System) findEntityByToken(o *ontology.Ontology, tok string) (ontology.Node, bool) {
	name := entityNameOfToken(sys.World, tok)
	return o.Find(ontology.Entity, name)
}

// linkConceptEntities trains the Fig. 4 classifier from session data and
// links concept-entity pairs observed in clicked documents.
func (sys *System) linkConceptEntities(o *ontology.Ontology) error {
	// Automatic dataset construction.
	var positives []linking.CEExample
	entityNames := make([]string, 0, len(sys.World.Entities))
	for _, e := range sys.World.Entities {
		entityNames = append(entityNames, e.Name)
	}
	for _, sess := range sys.Log.Sessions {
		if len(sess.Queries) < 2 {
			continue
		}
		conceptQ, entityQ := sess.Queries[0], sess.Queries[1]
		// The clicked document after the concept query: any concept doc
		// mentioning the entity.
		ctx := sys.contextMentioning(conceptQ, entityQ)
		if ctx == "" {
			continue
		}
		positives = append(positives, linking.CEExample{
			Concept: conceptQ, Entity: entityQ, Context: ctx,
			ConsecutiveQuery: true, CoClicks: 3,
		})
	}
	dataset := linking.BuildCEDataset(positives, entityNames, sys.Cfg.Seed+7)
	if len(dataset) > 0 {
		sys.CEClf = linking.TrainCEClassifier(dataset, 6, 0.3, sys.Cfg.Seed+8)
	}

	// Candidate links: mined concept × entities mentioned in its docs.
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if m.IsEvent {
			continue
		}
		cn, ok := o.Find(ontology.Concept, m.Phrase)
		if !ok {
			continue
		}
		seen := map[int]bool{}
		for _, docID := range m.DocIDs {
			if docID < 0 || docID >= len(sys.Log.Docs) {
				continue
			}
			doc := &sys.Log.Docs[docID]
			for _, eid := range doc.Entities {
				if seen[eid] {
					continue
				}
				seen[eid] = true
				entName := sys.World.Entities[eid].Name
				ex := linking.CEExample{
					Concept: m.Phrase, Entity: entName, Context: doc.Content,
					CoClicks: 2,
				}
				if sys.CEClf == nil || sys.CEClf.Predict(&ex) {
					en, _ := o.Find(ontology.Entity, entName)
					if err := o.AddEdge(cn.ID, en.ID, ontology.IsA, 1); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// contextMentioning finds a doc content for the concept query that mentions
// the entity.
func (sys *System) contextMentioning(conceptQ, entity string) string {
	for _, title := range sys.Click.TopTitlesFor(conceptQ, 5) {
		for _, d := range sys.Log.Docs {
			if d.Title != title {
				continue
			}
			if strings.Contains(" "+d.Content+" ", " "+entity+" ") {
				return d.Content
			}
		}
	}
	return ""
}

// linkEntityCorrelates trains embeddings on co-occurrence pairs and adds
// correlate edges.
func (sys *System) linkEntityCorrelates(o *ontology.Ontology) {
	var pairs [][2]string
	for _, d := range sys.Log.Docs {
		for i := 0; i < len(d.Entities); i++ {
			for j := i + 1; j < len(d.Entities); j++ {
				a := sys.World.Entities[d.Entities[i]].Name
				b := sys.World.Entities[d.Entities[j]].Name
				if a != b {
					pairs = append(pairs, [2]string{a, b})
				}
			}
		}
	}
	if len(pairs) == 0 {
		return
	}
	sys.Embedder = linking.NewEntityEmbedder(16)
	sys.Embedder.Train(pairs)
	// Candidate pairs include random distractors so the learned filter — not
	// the candidate source — decides correlation (keeps Table 2's accuracy
	// measurement meaningful).
	cands := append([][2]string(nil), pairs...)
	nEnt := len(sys.World.Entities)
	for i := 0; i < len(pairs)/2 && nEnt > 1; i++ {
		a := sys.World.Entities[(i*7)%nEnt].Name
		b := sys.World.Entities[(i*13+5)%nEnt].Name
		if a != b {
			cands = append(cands, [2]string{a, b})
		}
	}
	for _, p := range sys.Embedder.CorrelatePairs(cands) {
		a, ok1 := o.Find(ontology.Entity, p[0])
		b, ok2 := o.Find(ontology.Entity, p[1])
		if ok1 && ok2 {
			// Correlate is symmetric; store one canonical direction.
			_ = o.AddEdge(a.ID, b.ID, ontology.Correlate, 1)
		}
	}
}

// ConceptTagger builds the §4 concept tagger over the built ontology.
func (sys *System) ConceptTagger() *tagging.ConceptTagger {
	return tagging.NewConceptTagger(sys.Ontology, sys.conceptContext)
}

// EventTagger builds the §4 event tagger, training the Duet matcher on
// mined (event, title) pairs.
func (sys *System) EventTagger() *tagging.EventTagger {
	duet := tagging.NewDuet(sys.Cfg.Seed + 9)
	var examples []tagging.DuetExample
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent || len(m.Titles) == 0 {
			continue
		}
		pt := nlp.Tokenize(m.Phrase)
		examples = append(examples, tagging.DuetExample{Phrase: pt, Doc: nlp.Tokenize(m.Titles[0]), Label: true})
		// Negative: unrelated title.
		for j := range sys.Mined {
			if j != i && len(sys.Mined[j].Titles) > 0 {
				examples = append(examples, tagging.DuetExample{Phrase: pt, Doc: nlp.Tokenize(sys.Mined[j].Titles[0]), Label: false})
				break
			}
		}
	}
	duet.Train(examples, 4, 0.05, sys.Cfg.Seed+10)
	return tagging.NewEventTagger(sys.Ontology, duet)
}

// Query builds the §4 query understander.
func (sys *System) Query() *queryund.Understander {
	return queryund.New(sys.Ontology)
}

// StoryTree forms a story tree seeded at the given mined event phrase.
func (sys *System) StoryTree(seedPhrase string) (*storytree.Tree, bool) {
	var seed *storytree.EventNode
	var candidates []*storytree.EventNode
	for i := range sys.Mined {
		m := &sys.Mined[i]
		if !m.IsEvent {
			continue
		}
		node := &storytree.EventNode{
			Phrase: m.Phrase, Trigger: m.Trigger, Entities: m.Entities,
			Location: m.Location, Day: m.Day, Docs: m.Titles,
		}
		if m.Phrase == seedPhrase {
			seed = node
		}
		candidates = append(candidates, node)
	}
	if seed == nil {
		return nil, false
	}
	enc := storytree.NewBagOfTokensEncoder(16, nil)
	return storytree.Form(seed, candidates, enc, storytree.DefaultOptions()), true
}

func maxDay(d, min int) int {
	if d < min {
		return min
	}
	return d
}
