package giant

// Equivalence and determinism tests for the parallel pipeline: any
// Parallelism value must produce the same ontology, and repeated builds with
// the same seed must be bit-for-bit reproducible. Run with -race to also
// exercise the concurrent mining and assembly paths for data races.

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"giant/internal/ontology"
)

// ontologyFingerprint renders the node and edge multisets in a canonical
// (ID-independent) order.
func ontologyFingerprint(t *testing.T, o *ontology.Ontology) []string {
	t.Helper()
	var lines []string
	for _, n := range o.Nodes() {
		aliases := append([]string(nil), n.Aliases...)
		sort.Strings(aliases)
		lines = append(lines, fmt.Sprintf("node|%s|%s|%v|%s|%s|%d|%d",
			n.Type, n.Phrase, aliases, n.Trigger, n.Location, n.Day, n.FirstSeenDay))
	}
	for _, e := range o.Edges() {
		src, ok1 := o.Get(e.Src)
		dst, ok2 := o.Get(e.Dst)
		if !ok1 || !ok2 {
			t.Fatalf("dangling edge %+v", e)
		}
		lines = append(lines, fmt.Sprintf("edge|%s|%s|%s|%s|%s|%.6f",
			src.Type, src.Phrase, e.Type, dst.Type, dst.Phrase, e.Weight))
	}
	sort.Strings(lines)
	return lines
}

func ontologyJSON(t *testing.T, o *ontology.Ontology) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestParallelBuildEquivalence asserts the parallel miner and assembler
// produce an ontology identical to the sequential path: same node/edge
// multiset and, because merge order is deterministic, the same node IDs and
// serialized bytes.
func TestParallelBuildEquivalence(t *testing.T) {
	cfg := TinyConfig()
	cfg.Parallelism = 1
	seq, err := Build(cfg)
	if err != nil {
		t.Fatalf("sequential Build: %v", err)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		// Force real fan-out even on a single-core runner: the worker pool
		// still interleaves goroutines, which is what -race needs to see.
		workers = 4
	}
	cfg.Parallelism = workers
	par, err := Build(cfg)
	if err != nil {
		t.Fatalf("parallel Build: %v", err)
	}

	seqFP, parFP := ontologyFingerprint(t, seq.Ontology), ontologyFingerprint(t, par.Ontology)
	if len(seqFP) != len(parFP) {
		t.Fatalf("fingerprint sizes differ: sequential %d vs parallel %d", len(seqFP), len(parFP))
	}
	for i := range seqFP {
		if seqFP[i] != parFP[i] {
			t.Fatalf("ontology multisets diverge at entry %d:\n  sequential: %s\n  parallel:   %s", i, seqFP[i], parFP[i])
		}
	}
	if !bytes.Equal(ontologyJSON(t, seq.Ontology), ontologyJSON(t, par.Ontology)) {
		t.Fatal("serialized ontologies differ between Parallelism=1 and parallel build")
	}
	if len(seq.Mined) != len(par.Mined) {
		t.Fatalf("mined counts differ: %d vs %d", len(seq.Mined), len(par.Mined))
	}
	for i := range seq.Mined {
		if seq.Mined[i].Phrase != par.Mined[i].Phrase || seq.Mined[i].Seed != par.Mined[i].Seed {
			t.Fatalf("mined[%d] differs: %q/%q vs %q/%q", i,
				seq.Mined[i].Phrase, seq.Mined[i].Seed, par.Mined[i].Phrase, par.Mined[i].Seed)
		}
	}
}

// TestBuildDeterminism asserts two parallel builds with the same seed are
// bit-for-bit identical — including the stats line giantctl build prints.
func TestBuildDeterminism(t *testing.T) {
	cfg := TinyConfig()
	cfg.Parallelism = runtime.GOMAXPROCS(0) + 3
	a, err := Build(cfg)
	if err != nil {
		t.Fatalf("first Build: %v", err)
	}
	b, err := Build(cfg)
	if err != nil {
		t.Fatalf("second Build: %v", err)
	}
	if !bytes.Equal(ontologyJSON(t, a.Ontology), ontologyJSON(t, b.Ontology)) {
		t.Fatal("two builds with the same seed serialized differently")
	}
	// The giantctl build output line (fmt sorts map keys, so equal stats
	// means equal text).
	sa, sb := a.Ontology.ComputeStats(), b.Ontology.ComputeStats()
	la := fmt.Sprintf("built attention ontology: %v nodes, %v edges", sa.NodesByType, sa.EdgesByType)
	lb := fmt.Sprintf("built attention ontology: %v nodes, %v edges", sb.NodesByType, sb.EdgesByType)
	if la != lb {
		t.Fatalf("giantctl output lines differ:\n  %s\n  %s", la, lb)
	}
}

// TestMinerParallelismKnob checks the plumbing: Build honors the config knob
// and defaults to GOMAXPROCS.
func TestMinerParallelismKnob(t *testing.T) {
	cfg := TinyConfig()
	if got := cfg.parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default parallelism = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	cfg.Parallelism = 3
	if got := cfg.parallelism(); got != 3 {
		t.Fatalf("parallelism = %d, want 3", got)
	}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Miner.Parallelism != 3 {
		t.Fatalf("miner parallelism = %d, want 3", sys.Miner.Parallelism)
	}
}
