package giant

// End-to-end integration tests over the public facade: the full pipeline at
// tiny scale, structural invariants of the built ontology, persistence, and
// each §4 application.

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"giant/internal/ontology"
	"giant/internal/tagging"
)

var (
	sysOnce sync.Once
	sysVal  *System
	sysErr  error
)

func builtSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = Build(TinyConfig())
	})
	if sysErr != nil {
		t.Fatalf("Build: %v", sysErr)
	}
	return sysVal
}

func TestBuildProducesAllNodeTypes(t *testing.T) {
	sys := builtSystem(t)
	st := sys.Ontology.ComputeStats()
	for _, typ := range []string{"category", "concept", "entity", "event"} {
		if st.NodesByType[typ] == 0 {
			t.Fatalf("no %s nodes: %+v", typ, st)
		}
	}
	for _, typ := range []string{"isA", "involve"} {
		if st.EdgesByType[typ] == 0 {
			t.Fatalf("no %s edges: %+v", typ, st)
		}
	}
}

func TestOntologyIsADAG(t *testing.T) {
	sys := builtSystem(t)
	if sys.Ontology.HasCycleIsA() {
		t.Fatal("isA subgraph has a cycle; the AO must be a DAG")
	}
}

func TestMinedPhrasesHaveProvenance(t *testing.T) {
	sys := builtSystem(t)
	if len(sys.Mined) == 0 {
		t.Fatal("nothing mined")
	}
	for _, m := range sys.Mined {
		if m.Phrase == "" || m.Seed == "" {
			t.Fatalf("mined attention missing provenance: %+v", m)
		}
		if len(m.Queries) == 0 || len(m.Titles) == 0 {
			t.Fatalf("mined attention missing cluster: %+v", m)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	sys := builtSystem(t)
	path := filepath.Join(t.TempDir(), "ao.json")
	if err := sys.Ontology.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ontology.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NodeCount() != sys.Ontology.NodeCount() {
		t.Fatalf("nodes: %d != %d", loaded.NodeCount(), sys.Ontology.NodeCount())
	}
	if loaded.EdgeCount() != sys.Ontology.EdgeCount() {
		t.Fatalf("edges: %d != %d", loaded.EdgeCount(), sys.Ontology.EdgeCount())
	}
}

func TestSystemSnapshotMatchesOntology(t *testing.T) {
	sys := builtSystem(t)
	snap := sys.Snapshot()
	if snap.NodeCount() != sys.Ontology.NodeCount() || snap.EdgeCount() != sys.Ontology.EdgeCount() {
		t.Fatalf("snapshot counts: %d/%d, ontology: %d/%d",
			snap.NodeCount(), snap.EdgeCount(), sys.Ontology.NodeCount(), sys.Ontology.EdgeCount())
	}
	for _, n := range sys.Ontology.Nodes() {
		got, ok := snap.Find(n.Type, n.Phrase)
		if !ok || got.ID != n.ID {
			t.Fatalf("snapshot lost node %v %q", n.Type, n.Phrase)
		}
		if len(snap.Children(n.ID, ontology.IsA)) != len(sys.Ontology.Children(n.ID, ontology.IsA)) {
			t.Fatalf("snapshot adjacency differs at %q", n.Phrase)
		}
	}
	// The §4 applications run unchanged over the snapshot through the View
	// interface.
	understander := sys.Query()
	understander.Onto = snap
	for _, r := range sys.Log.Records {
		if c := understander.Conceptualize(r.Query); c != "" {
			return
		}
	}
	t.Fatal("no query conceptualized over the snapshot")
}

func TestConceptTaggerOnLogDocs(t *testing.T) {
	sys := builtSystem(t)
	ct := sys.ConceptTagger()
	tagged := 0
	for i := range sys.Log.Docs {
		d := &sys.Log.Docs[i]
		if d.ConceptID < 0 {
			continue
		}
		ents := make([]string, 0, len(d.Entities))
		for _, id := range d.Entities {
			ents = append(ents, sys.World.Entities[id].Name)
		}
		tags := ct.TagConcepts(&tagging.Document{Title: d.Title, Content: d.Content, Entities: ents})
		if len(tags) > 0 {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("concept tagger tagged nothing")
	}
}

func TestEventTaggerOnLogDocs(t *testing.T) {
	sys := builtSystem(t)
	et := sys.EventTagger()
	tagged := 0
	for i := range sys.Log.Docs {
		d := &sys.Log.Docs[i]
		if d.EventID < 0 {
			continue
		}
		if len(et.TagEvents(&tagging.Document{Title: d.Title, Content: d.Content})) > 0 {
			tagged++
		}
		if tagged > 5 {
			break
		}
	}
	if tagged == 0 {
		t.Fatal("event tagger tagged nothing")
	}
}

func TestQueryUnderstandingEndToEnd(t *testing.T) {
	sys := builtSystem(t)
	u := sys.Query()
	hits := 0
	for _, c := range sys.Ontology.Nodes(ontology.Concept) {
		if u.Conceptualize("best "+c.Phrase) == c.Phrase {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("query conceptualization recovered nothing")
	}
}

func TestStoryTreeEndToEnd(t *testing.T) {
	sys := builtSystem(t)
	var seed string
	for _, m := range sys.Mined {
		if m.IsEvent {
			seed = m.Phrase
			break
		}
	}
	if seed == "" {
		t.Skip("no events mined at tiny scale")
	}
	tree, ok := sys.StoryTree(seed)
	if !ok {
		t.Fatalf("story tree for %q not built", seed)
	}
	var buf bytes.Buffer
	tree.Render(&buf)
	if !strings.Contains(buf.String(), "story:") {
		t.Fatalf("render: %s", buf.String())
	}
	if _, ok := sys.StoryTree("nonexistent event"); ok {
		t.Fatal("story tree for unknown seed should fail")
	}
}

func TestCategoryEdgesPointIntoHierarchy(t *testing.T) {
	sys := builtSystem(t)
	for _, e := range sys.Ontology.Edges(ontology.IsA) {
		src, _ := sys.Ontology.Get(e.Src)
		dst, _ := sys.Ontology.Get(e.Dst)
		if src.Type == ontology.Entity {
			t.Fatalf("entity %q should not be an isA source (instances are destinations)", src.Phrase)
		}
		if dst.Type == ontology.Category && src.Type != ontology.Category {
			t.Fatalf("category %q must not be an isA destination of %s", dst.Phrase, src.Type)
		}
	}
}
