package giant_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus throughput benches for the §5.1 deployment
// numbers and the ablation studies indexed in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The shared environment (world, click log, trained models, built ontology)
// is constructed once and reused; each benchmark measures the cost of
// regenerating its experiment from that environment.

import (
	"fmt"
	"runtime"
	"testing"

	giant "giant"
	"giant/internal/delta"
	"giant/internal/experiments"
	"giant/internal/tagging"
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	scale := experiments.ScaleDefault
	if testing.Short() {
		scale = experiments.ScaleTiny
	}
	env, err := experiments.GetEnv(scale)
	if err != nil {
		b.Fatalf("build environment: %v", err)
	}
	return env
}

func BenchmarkTable1NodeCounts(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(env)
		if len(rows) != 5 {
			b.Fatalf("expected 5 node-type rows, got %d", len(rows))
		}
	}
}

func BenchmarkTable2EdgeStats(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(env)
		if len(rows) != 3 {
			b.Fatalf("expected 3 edge-type rows, got %d", len(rows))
		}
	}
}

func BenchmarkTable3ConceptShowcase(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table3(env, 6)
	}
}

func BenchmarkTable4EventShowcase(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table4(env, 6)
	}
}

func BenchmarkTable5ConceptMining(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5(env)
		reportBest(b, rows, "GCTSP-Net")
	}
}

func BenchmarkTable6EventMining(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table6(env)
		reportBest(b, rows, "GCTSP-Net")
	}
}

func BenchmarkTable7KeyElements(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table7(env)
		if len(rows) != 3 {
			b.Fatalf("expected 3 methods, got %d", len(rows))
		}
		b.ReportMetric(rows[len(rows)-1].Micro, "gctsp-f1micro")
	}
}

func BenchmarkFigure5StoryTree(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure5(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6CTRStrategies(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure6(env)
		if len(series) != 2 {
			b.Fatal("expected 2 strategies")
		}
		b.ReportMetric(series[0].Mean, "allTagsCTR%")
		b.ReportMetric(series[1].Mean, "catEntCTR%")
	}
}

func BenchmarkFigure7CTRByTagType(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure7(env)
		if len(series) != 5 {
			b.Fatal("expected 5 tag types")
		}
		b.ReportMetric(series[0].Mean, "topicCTR%")
		b.ReportMetric(series[4].Mean, "categoryCTR%")
	}
}

// BenchmarkPipelineBuild measures the wall-clock cost of the full pipeline
// (log generation, GCTSP-Net training, Algorithm-1 mining, ontology
// assembly) at Parallelism 1 versus GOMAXPROCS. Compare the two sub-bench
// times to read the speedup; the equivalence test in parallel_test.go proves
// the outputs are identical.
func BenchmarkPipelineBuild(b *testing.B) {
	workers := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workers = append(workers, n)
	} else {
		// Still exercise the pooled path on a single-core runner.
		workers = append(workers, 4)
	}
	for _, p := range workers {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			cfg := giant.DefaultConfig()
			if testing.Short() {
				cfg = giant.TinyConfig()
			}
			cfg.Parallelism = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := giant.Build(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMiningParallelism isolates the Algorithm-1 mining stage (the
// pipeline's hot loop) at worker counts 1, 2, 4, ... up to GOMAXPROCS×2.
func BenchmarkMiningParallelism(b *testing.B) {
	env := benchEnv(b)
	miner := env.Sys.Miner
	orig := miner.Parallelism
	defer func() { miner.Parallelism = orig }()
	for p := 1; p <= 2*runtime.GOMAXPROCS(0); p *= 2 {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			miner.Parallelism = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(miner.Mine(env.Sys.Click)) == 0 {
					b.Fatal("nothing mined")
				}
			}
		})
	}
}

// BenchmarkIngestBatch measures the incremental-update path: one
// click-only batch through delta mining, diff and snapshot apply — the
// cost of keeping the served ontology fresh without a rebuild. Compare
// against BenchmarkPipelineBuild to read the incremental speedup. TTLs
// are disabled so every iteration measures the steady-state touch batch,
// not a one-off mass retirement on the first pass.
func BenchmarkIngestBatch(b *testing.B) {
	cfg := giant.DefaultConfig()
	if testing.Short() {
		cfg = giant.TinyConfig()
	}
	cfg.Update = delta.Policy{EventTTL: 0, ConceptTTL: 0, TopicTTL: 0}
	sys, err := giant.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Re-click a slice of the existing corpus: a steady-state batch where
	// most mined attentions are touches.
	batch := delta.Batch{Day: 64}
	for i, r := range sys.Log.Records {
		if i%16 == 0 {
			batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: 1, Day: 64})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaIngest measures the shard-parallel incremental-update
// path: the same steady-state click batch through 1-shard Ingest versus
// K-shard IngestSharded (shard-parallel delta compute, per-shard apply).
// Output sets are equivalent (see TestShardedIngestReplayEquivalence);
// compare the sub-benchmark times on a multi-core runner to read the
// sharding speedup.
func BenchmarkDeltaIngest(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := giant.DefaultConfig()
			if testing.Short() {
				cfg = giant.TinyConfig()
			}
			cfg.Shards = shards
			cfg.Update = delta.Policy{EventTTL: 0, ConceptTTL: 0, TopicTTL: 0}
			sys, err := giant.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			batch := delta.Batch{Day: 64}
			for i, r := range sys.Log.Records {
				if i%16 == 0 {
					batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: 1, Day: 64})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if shards > 1 {
					if _, _, _, err := sys.IngestSharded(batch); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, _, err := sys.Ingest(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkMiningThroughput(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	mined := 0
	for i := 0; i < b.N; i++ {
		mined += len(env.Sys.Miner.Mine(env.Sys.Click))
	}
	b.ReportMetric(float64(mined)/b.Elapsed().Seconds(), "phrases/s")
}

func BenchmarkTaggingThroughput(b *testing.B) {
	env := benchEnv(b)
	ct := env.Sys.ConceptTagger()
	docs := env.Sys.Log.Docs
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		d := &docs[i%len(docs)]
		ents := make([]string, 0, len(d.Entities))
		for _, id := range d.Entities {
			ents = append(ents, env.World.Entities[id].Name)
		}
		ct.TagConcepts(&tagging.Document{ID: d.ID, Title: d.Title, Content: d.Content, Entities: ents})
		n++
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "docs/s")
}

func BenchmarkDocTaggingPrecision(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The log lists all concept docs before any event doc, so the cap
		// must span both populations.
		p := experiments.DocTaggingPrecision(env, 2000)
		b.ReportMetric(100*p.ConceptPrecision, "concept%")
		b.ReportMetric(100*p.EventPrecision, "event%")
	}
}

func BenchmarkAblationKeepFirstEdge(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationKeepFirstEdge(env)
	}
}

func BenchmarkAblationEdgePreference(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationEdgePreference(env)
	}
}

func BenchmarkAblationATSPvsOrder(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationATSP(env)
	}
}

func BenchmarkAblationRGCNDepth(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationRGCNDepth(env)
	}
}

func BenchmarkAblationFeatures(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.AblationFeatures(env)
	}
}

func reportBest(b *testing.B, rows []experiments.MethodScore, want string) {
	b.Helper()
	bestEM, bestName := -1.0, ""
	for _, r := range rows {
		if r.EM > bestEM {
			bestEM, bestName = r.EM, r.Method
		}
	}
	if bestName != want {
		b.Logf("note: best EM method is %s (%.4f), paper expects %s to win", bestName, bestEM, want)
	}
	b.ReportMetric(bestEM, "bestEM")
}
