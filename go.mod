module giant

go 1.23
