module giant

go 1.24
