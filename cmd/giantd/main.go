// Command giantd serves a built Attention Ontology over JSON-over-HTTP —
// the online tier the GIANT paper deploys against QQ Browser traffic (§4).
//
//	giantctl build -out ao.json       # offline: build the ontology
//	giantd -in ao.json -addr :8080    # online: serve it
//
// With -build instead of -in, giantd runs the offline pipeline itself at
// startup (handy for demos; -tiny shrinks the build) and serves the result,
// keeping the trained event matcher and concept context for richer tagging.
// In -build mode the daemon also accepts live incremental updates: POST a
// delta.Batch of new documents and clicks to /v1/ingest and the affected
// click-graph neighbourhood is re-mined, diffed and hot-swapped in as a
// new snapshot generation while in-flight requests finish on the old one.
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/stats
//	curl 'localhost:8080/v1/query/rewrite?q=best+family+sedans'
//	curl -X POST localhost:8080/v1/reload
//	curl -X POST localhost:8080/v1/ingest -d '{"day":12,"docs":[...],"clicks":[...]}'
//	curl -X POST localhost:8080/v1/rollback
//
// /v1/reload hot-swaps a freshly loaded snapshot (re-reading -in, or
// re-running the -build pipeline); /v1/rollback reverts to the previous
// retained generation (-history bounds the store). With -watch, a
// background updater polls -in for modifications and hot-swaps the new
// file automatically through the same reload path (-watch applies to -in
// mode only). SIGINT/SIGTERM shut the server down gracefully.
//
// With -shards K (> 1) the ontology is partitioned K ways behind one
// routing index: /v1/search scatter-gathers over the shard projections,
// /v1/stats lists per-shard generations, and a live ingest republishes —
// and bumps the generation of — only the shards its delta touched,
// computing the delta shard-parallel. Results are identical to -shards 1;
// only scheduling and the unit of publication change.
//
// Rollback and reload operate on the SERVING tier only: in -build mode
// the in-process mining system keeps its accumulated click graph and
// ontology, so a rollback is a serving-side mitigation — the next
// /v1/ingest still computes its delta from the full ingested history
// (re-publishing what was rolled back), and /v1/reload re-runs the
// pipeline from scratch, dropping live-ingested batches from the served
// snapshot. To discard a bad batch from the mining state itself, restart
// the daemon (or replay the good batches against a fresh -build).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	giant "giant"
	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giantd: ")
	var (
		in      = flag.String("in", "", "ontology JSON path (from giantctl build -out)")
		addr    = flag.String("addr", ":8080", "listen address")
		build   = flag.Bool("build", false, "run the offline pipeline at startup instead of loading -in")
		tiny    = flag.Bool("tiny", false, "with -build: use the tiny configuration")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "LRU response cache entries (negative disables)")
		grace   = flag.Duration("grace", 5*time.Second, "graceful-shutdown drain timeout")
		history = flag.Int("history", ontology.DefaultRetention, "snapshot generations retained for /v1/rollback")
		watch   = flag.Duration("watch", 0, "poll -in for changes at this interval and hot-swap automatically (0 disables)")
		shards  = flag.Int("shards", 1, "partition the ontology K ways: per-shard generations, scatter-gather search, shard-parallel ingest (1 = legacy)")
	)
	flag.Parse()
	if *watch > 0 && (*build || *in == "") {
		log.Printf("warning: -watch only applies when serving a file with -in; ignoring it")
	}
	if err := run(*in, *addr, *build, *tiny, *cache, *grace, *history, *watch, *shards); err != nil {
		log.Fatal(err)
	}
}

func run(in, addr string, build, tiny bool, cache int, grace time.Duration, history int, watch time.Duration, shards int) error {
	opts := serve.Options{CacheSize: cache, History: history}
	var snap *ontology.Snapshot
	var sharded *ontology.ShardedSnapshot // sharded initial state (when -shards > 1)
	switch {
	case build:
		cfg := giant.DefaultConfig()
		if tiny {
			cfg = giant.TinyConfig()
		}
		cfg.Shards = shards
		log.Printf("building ontology (tiny=%v, shards=%d)...", tiny, shards)
		sys, err := giant.Build(cfg)
		if err != nil {
			return err
		}
		snap = sys.Snapshot()
		// Every publish re-reads the system's concept context (a fresh
		// copy), so taggers built after a live ingest see the new
		// concepts' context representations. The callback runs under the
		// serve swap lock, serialized with the ingest path below.
		opts.ConceptContextFn = sys.ConceptContext
		opts.Duet = sys.EventTagger().Duet
		opts.Loader = func() (*ontology.Snapshot, error) {
			rebuilt, err := giant.Build(cfg)
			if err != nil {
				return nil, err
			}
			return rebuilt.Snapshot(), nil
		}
		// Live ingest: System.Ingest serializes internally; the serve
		// layer additionally orders publishes under its swap lock. With
		// -shards > 1 the delta is computed shard-parallel and only the
		// touched shards republish. The initial serving state must come
		// from the System's own projection lineage: IngestSharded
		// advances that lineage, and the server identifies unchanged
		// shards by projection pointer — an independent re-partition
		// would make the first ingest republish every shard.
		if shards > 1 {
			var err error
			if sharded, err = sys.ShardedSnapshot(); err != nil {
				return err
			}
			opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
				next, d, touched, err := sys.IngestSharded(b)
				if err == nil {
					log.Printf("ingested batch: %s", d.Summary())
				}
				return next, d, touched, err
			}
		} else {
			opts.Ingest = func(b delta.Batch) (*ontology.Snapshot, *delta.Delta, error) {
				next, d, err := sys.Ingest(b)
				if err == nil {
					log.Printf("ingested batch: %s", d.Summary())
				}
				return next, d, err
			}
		}
	case in != "":
		var err error
		if snap, err = ontology.LoadSnapshotFile(in); err != nil {
			return err
		}
		opts.Loader = func() (*ontology.Snapshot, error) { return ontology.LoadSnapshotFile(in) }
	default:
		return fmt.Errorf("need -in <ontology.json> or -build (see giantctl build -out)")
	}

	var srv *serve.Server
	if shards > 1 {
		if sharded == nil { // -in mode: partition the loaded snapshot
			var err error
			if sharded, err = ontology.ShardSnapshot(snap, shards); err != nil {
				return err
			}
		}
		srv = serve.NewSharded(sharded, opts)
		log.Printf("serving %s on %s (%d shards)", snap, addr, shards)
	} else {
		srv = serve.New(snap, opts)
		log.Printf("serving %s on %s", snap, addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if watch > 0 && in != "" && !build {
		go watchFile(ctx, in, watch, srv)
	}

	err := serve.Run(ctx, addr, srv.Handler(), grace)
	if err == nil {
		log.Printf("shut down cleanly")
	}
	return err
}

// watchFile is the background updater for file-served deployments: it
// polls the ontology file's modification time and, whenever the offline
// pipeline publishes a new artifact, loads and hot-swaps it through the
// same atomic path /v1/reload uses. Load failures (e.g. a half-written
// file) leave the current generation serving and are retried on the next
// tick.
func watchFile(ctx context.Context, path string, every time.Duration, srv *serve.Server) {
	var lastMod time.Time
	if fi, err := os.Stat(path); err == nil {
		lastMod = fi.ModTime()
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		fi, err := os.Stat(path)
		if err != nil || !fi.ModTime().After(lastMod) {
			continue
		}
		snap, err := ontology.LoadSnapshotFile(path)
		if err != nil {
			log.Printf("watch: %s changed but failed to load (will retry): %v", path, err)
			continue
		}
		gen, err := srv.SwapSnapshot(snap)
		if err != nil {
			// lastMod stays put so the next tick retries the publish.
			log.Printf("watch: %s loaded but failed to publish (will retry): %v", path, err)
			continue
		}
		lastMod = fi.ModTime()
		log.Printf("watch: hot-swapped %s as generation %d", snap, gen)
	}
}
