// Command giantd serves a built Attention Ontology over JSON-over-HTTP —
// the online tier the GIANT paper deploys against QQ Browser traffic (§4).
//
//	giantctl build -out ao.json       # offline: build the ontology
//	giantd -in ao.json -addr :8080    # online: serve it
//
// With -build instead of -in, giantd runs the offline pipeline itself at
// startup (handy for demos; -tiny shrinks the build) and serves the result,
// keeping the trained event matcher and concept context for richer tagging.
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/stats
//	curl 'localhost:8080/v1/query/rewrite?q=best+family+sedans'
//	curl -X POST localhost:8080/v1/reload
//
// /v1/reload hot-swaps a freshly loaded snapshot (re-reading -in, or
// re-running the -build pipeline) while serving continues on the old one.
// SIGINT/SIGTERM shut the server down gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	giant "giant"
	"giant/internal/ontology"
	"giant/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giantd: ")
	var (
		in    = flag.String("in", "", "ontology JSON path (from giantctl build -out)")
		addr  = flag.String("addr", ":8080", "listen address")
		build = flag.Bool("build", false, "run the offline pipeline at startup instead of loading -in")
		tiny  = flag.Bool("tiny", false, "with -build: use the tiny configuration")
		cache = flag.Int("cache", serve.DefaultCacheSize, "LRU response cache entries (negative disables)")
		grace = flag.Duration("grace", 5*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()
	if err := run(*in, *addr, *build, *tiny, *cache, *grace); err != nil {
		log.Fatal(err)
	}
}

func run(in, addr string, build, tiny bool, cache int, grace time.Duration) error {
	opts := serve.Options{CacheSize: cache}
	var snap *ontology.Snapshot
	switch {
	case build:
		cfg := giant.DefaultConfig()
		if tiny {
			cfg = giant.TinyConfig()
		}
		log.Printf("building ontology (tiny=%v)...", tiny)
		sys, err := giant.Build(cfg)
		if err != nil {
			return err
		}
		snap = sys.Snapshot()
		opts.ConceptContext = sys.ConceptContext()
		opts.Duet = sys.EventTagger().Duet
		opts.Loader = func() (*ontology.Snapshot, error) {
			rebuilt, err := giant.Build(cfg)
			if err != nil {
				return nil, err
			}
			return rebuilt.Snapshot(), nil
		}
	case in != "":
		var err error
		if snap, err = ontology.LoadSnapshotFile(in); err != nil {
			return err
		}
		opts.Loader = func() (*ontology.Snapshot, error) { return ontology.LoadSnapshotFile(in) }
	default:
		return fmt.Errorf("need -in <ontology.json> or -build (see giantctl build -out)")
	}

	srv := serve.New(snap, opts)
	log.Printf("serving %s on %s", snap, addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := serve.Run(ctx, addr, srv.Handler(), grace)
	if err == nil {
		log.Printf("shut down cleanly")
	}
	return err
}
