// Command giantd serves a built Attention Ontology over JSON-over-HTTP —
// the online tier the GIANT paper deploys against QQ Browser traffic (§4).
//
//	giantctl build -out ao.json       # offline: build the ontology
//	giantd -in ao.json -addr :8080    # online: serve it
//
// The -in artifact may be JSON or the GIANTBIN binary format (giantctl
// -format binary / giantctl convert); the loader auto-detects by magic.
// Binary artifacts boot in milliseconds, which is what makes -watch
// hot-swaps and rolling restarts cheap at web scale.
//
// With -build instead of -in, giantd runs the offline pipeline itself at
// startup (handy for demos; -tiny shrinks the build) and serves the result,
// keeping the trained event matcher and concept context for richer tagging.
// In -build mode the daemon also accepts live incremental updates: POST a
// delta.Batch of new documents and clicks to /v1/ingest and the affected
// click-graph neighbourhood is re-mined, diffed and hot-swapped in as a
// new snapshot generation while in-flight requests finish on the old one.
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/stats
//	curl 'localhost:8080/v1/query/rewrite?q=best+family+sedans'
//	curl -X POST localhost:8080/v1/reload
//	curl -X POST localhost:8080/v1/ingest -d '{"day":12,"docs":[...],"clicks":[...]}'
//	curl -X POST localhost:8080/v1/rollback
//
// /v1/reload hot-swaps a freshly loaded snapshot (re-reading -in, or
// re-running the -build pipeline); /v1/rollback reverts to the previous
// retained generation (-history bounds the store). With -watch, a
// background updater polls -in for modifications and hot-swaps the new
// file automatically through the same reload path (-watch applies to -in
// mode only). SIGINT/SIGTERM shut the server down gracefully.
//
// With -shards K (> 1) the ontology is partitioned K ways behind one
// routing index: /v1/search scatter-gathers over the shard projections,
// /v1/stats lists per-shard generations, and a live ingest republishes —
// and bumps the generation of — only the shards its delta touched,
// computing the delta shard-parallel. Results are identical to -shards 1;
// only scheduling and the unit of publication change.
//
// With -shard i/k the daemon serves a SINGLE shard of a k-way partition —
// the backend of the multi-process tier (put cmd/giantrouter in front of k
// of these). /healthz and /v1/stats expose the shard id and per-shard
// generation, /v1/search scans only the shard's home nodes, and /v1/node
// resolves only nodes homed on the shard, rendering union node IDs so the
// router can merge responses byte-identically to a single sharded process.
// In -build mode each per-shard daemon runs the full (deterministic)
// mining system and a POSTed /v1/ingest batch — normally broadcast by the
// router — republishes, and bumps the generation of, only this shard when
// the delta touched it. With -in, the artifact may be a per-shard file
// written by `giantctl shard` or a whole-ontology file (the shard's
// projection is then derived at boot).
//
// With -wal DIR (requires -shard i/k and -build) the daemon is a delta-log
// REPLICA: it never accepts direct writes — /v1/ingest and /v1/reload
// answer 503 read_only_replica — and instead tails the shard's append-only
// delta log DIR/shard-i-of-k.wal (written by giantrouter -wal), applying
// each batch through the same deterministic mining pipeline a direct
// ingest would take. Every response carries X-Giant-Wal-Gen with the last
// applied log generation, and GET /v1/wal (?wait=G) exposes — and blocks
// on — apply progress; -replica N names the replica in /healthz and log
// lines. Start N replicas of the same shard against one log and put
// giantrouter -wal in front: reads balance over the caught-up replicas and
// ingest is acknowledged at a quorum of apply confirmations.
//
// Rollback and reload operate on the SERVING tier only: in -build mode
// the in-process mining system keeps its accumulated click graph and
// ontology, so a rollback is a serving-side mitigation — the next
// /v1/ingest still computes its delta from the full ingested history
// (re-publishing what was rolled back), and /v1/reload re-runs the
// pipeline from scratch, dropping live-ingested batches from the served
// snapshot. To discard a bad batch from the mining state itself, restart
// the daemon (or replay the good batches against a fresh -build).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	giant "giant"
	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giantd: ")
	var (
		in      = flag.String("in", "", "ontology artifact path, JSON or binary (from giantctl build -out)")
		addr    = flag.String("addr", ":8080", "listen address")
		build   = flag.Bool("build", false, "run the offline pipeline at startup instead of loading -in")
		tiny    = flag.Bool("tiny", false, "with -build: use the tiny configuration")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "LRU response cache entries (negative disables)")
		grace   = flag.Duration("grace", 5*time.Second, "graceful-shutdown drain timeout")
		history = flag.Int("history", ontology.DefaultRetention, "snapshot generations retained for /v1/rollback")
		watch   = flag.Duration("watch", 0, "poll -in for changes at this interval and hot-swap automatically (0 disables)")
		shards  = flag.Int("shards", 1, "partition the ontology K ways: per-shard generations, scatter-gather search, shard-parallel ingest (1 = legacy)")
		shard   = flag.String("shard", "", "serve a single shard of a k-way partition as i/k (e.g. 0/4): the per-shard backend of cmd/giantrouter")
		walDir  = flag.String("wal", "", "delta-log directory: tail DIR/shard-i-of-k.wal instead of accepting direct writes (requires -shard and -build)")
		replica = flag.Int("replica", 0, "with -wal: this process's replica ordinal, reported in /healthz and log lines")
		ckpt    = flag.Uint64("checkpoint-every", 0, "with -wal: publish a shard checkpoint every N applied log generations, and boot from the newest valid checkpoint (0 disables cadence rolls; POST /v1/checkpoint still forces one)")
	)
	flag.Parse()
	if *watch > 0 && (*build || *in == "") {
		log.Printf("warning: -watch only applies when serving a file with -in; ignoring it")
	}
	if *walDir != "" && *shard == "" {
		log.Fatal("-wal requires -shard i/k (a delta log belongs to one shard)")
	}
	if *walDir != "" && !*build {
		log.Fatal("-wal requires -build (a replica re-mines each batch through its own mining system)")
	}
	if *ckpt > 0 && *walDir == "" {
		log.Printf("warning: -checkpoint-every only applies to delta-log replicas (-wal); ignoring it")
	}
	if err := run(*in, *addr, *build, *tiny, *cache, *grace, *history, *watch, *shards, *shard, *walDir, *replica, *ckpt); err != nil {
		log.Fatal(err)
	}
}

// parseShardSpec parses an "i/k" shard identity. The whole spec must be
// consumed — trailing garbage would silently boot the wrong partition.
func parseShardSpec(spec string) (i, k int, err error) {
	is, ks, found := strings.Cut(spec, "/")
	if !found {
		return 0, 0, fmt.Errorf("invalid -shard %q (want i/k, e.g. 0/4)", spec)
	}
	i, err1 := strconv.Atoi(is)
	k, err2 := strconv.Atoi(ks)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("invalid -shard %q (want i/k, e.g. 0/4)", spec)
	}
	if k < 1 || i < 0 || i >= k {
		return 0, 0, fmt.Errorf("invalid -shard %q: shard index must be in [0,%d)", spec, k)
	}
	return i, k, nil
}

func run(in, addr string, build, tiny bool, cache int, grace time.Duration, history int, watch time.Duration, shards int, shardSpec, walDir string, replica int, ckptEvery uint64) error {
	if shardSpec != "" {
		return runShard(in, addr, build, tiny, cache, grace, history, watch, shards, shardSpec, walDir, replica, ckptEvery)
	}
	opts := serve.Options{CacheSize: cache, History: history}
	var snap *ontology.Snapshot
	var sharded *ontology.ShardedSnapshot // sharded initial state (when -shards > 1)
	switch {
	case build:
		cfg := giant.DefaultConfig()
		if tiny {
			cfg = giant.TinyConfig()
		}
		cfg.Shards = shards
		log.Printf("building ontology (tiny=%v, shards=%d)...", tiny, shards)
		sys, err := giant.Build(cfg)
		if err != nil {
			return err
		}
		snap = sys.Snapshot()
		// Every publish re-reads the system's concept context (a fresh
		// copy), so taggers built after a live ingest see the new
		// concepts' context representations. The callback runs under the
		// serve swap lock, serialized with the ingest path below.
		opts.ConceptContextFn = sys.ConceptContext
		opts.Duet = sys.EventTagger().Duet
		opts.Loader = func() (*ontology.Snapshot, error) {
			rebuilt, err := giant.Build(cfg)
			if err != nil {
				return nil, err
			}
			return rebuilt.Snapshot(), nil
		}
		// Live ingest: System.Ingest serializes internally; the serve
		// layer additionally orders publishes under its swap lock. With
		// -shards > 1 the delta is computed shard-parallel and only the
		// touched shards republish. The initial serving state must come
		// from the System's own projection lineage: IngestSharded
		// advances that lineage, and the server identifies unchanged
		// shards by projection pointer — an independent re-partition
		// would make the first ingest republish every shard.
		if shards > 1 {
			var err error
			if sharded, err = sys.ShardedSnapshot(); err != nil {
				return err
			}
			opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
				next, d, touched, err := sys.IngestSharded(b)
				if err == nil {
					log.Printf("ingested batch: %s", d.Summary())
				}
				return next, d, touched, err
			}
		} else {
			opts.Ingest = func(b delta.Batch) (*ontology.Snapshot, *delta.Delta, error) {
				next, d, err := sys.Ingest(b)
				if err == nil {
					log.Printf("ingested batch: %s", d.Summary())
				}
				return next, d, err
			}
		}
	case in != "":
		var err error
		if snap, err = ontology.LoadSnapshotFile(in); err != nil {
			return err
		}
		opts.Loader = func() (*ontology.Snapshot, error) { return ontology.LoadSnapshotFile(in) }
	default:
		return fmt.Errorf("need -in <ontology artifact> or -build (see giantctl build -out)")
	}

	var srv *serve.Server
	if shards > 1 {
		if sharded == nil { // -in mode: partition the loaded snapshot
			var err error
			if sharded, err = ontology.ShardSnapshot(snap, shards); err != nil {
				return err
			}
		}
		srv = serve.NewSharded(sharded, opts)
		log.Printf("serving %s on %s (%d shards)", snap, addr, shards)
	} else {
		srv = serve.New(snap, opts)
		log.Printf("serving %s on %s", snap, addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if watch > 0 && in != "" && !build {
		go newWatcher(in).run(ctx, watch, snapshotApplier(in, srv))
	}

	err := serve.Run(ctx, addr, srv.Handler(), grace)
	if err == nil {
		log.Printf("shut down cleanly")
	}
	return err
}

// runShard serves a single shard of a k-way partition (-shard i/k): the
// per-shard backend of the multi-process tier.
func runShard(in, addr string, build, tiny bool, cache int, grace time.Duration, history int, watch time.Duration, shards int, shardSpec, walDir string, replica int, ckptEvery uint64) error {
	idx, k, err := parseShardSpec(shardSpec)
	if err != nil {
		return err
	}
	if shards > 1 && shards != k {
		return fmt.Errorf("-shards %d conflicts with -shard %s (the shard count comes from i/k)", shards, shardSpec)
	}
	opts := serve.Options{CacheSize: cache, History: history}
	var proj *ontology.ShardProjection
	switch {
	case build:
		cfg := giant.DefaultConfig()
		if tiny {
			cfg = giant.TinyConfig()
		}
		cfg.Shards = k
		log.Printf("building ontology (tiny=%v) to serve shard %d/%d...", tiny, idx, k)
		sys, err := giant.Build(cfg)
		if err != nil {
			return err
		}
		if proj, err = sys.ShardProjection(idx); err != nil {
			return err
		}
		opts.ConceptContextFn = sys.ConceptContext
		opts.Duet = sys.EventTagger().Duet
		opts.ShardLoader = func() (*ontology.ShardProjection, error) {
			rebuilt, err := giant.Build(cfg)
			if err != nil {
				return nil, err
			}
			return rebuilt.ShardProjection(idx)
		}
		// Live ingest: the router broadcasts every batch to every backend;
		// each backend applies it through its own (deterministic) mining
		// system and republishes — minting a new per-shard generation —
		// only when the delta touched ITS shard.
		opts.ShardIngest = func(b delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
			next, d, touched, err := sys.IngestSharded(b)
			if err != nil {
				return nil, nil, nil, err
			}
			log.Printf("ingested batch: %s", d.Summary())
			return next.Projection(idx), d, touched, nil
		}
		if walDir != "" {
			// Checkpointing: capture pairs the union snapshot with the
			// mining system's post-seed delta state; restore replays both
			// onto the deterministic seed build this process just ran and
			// re-derives the shard's serving projection from the result.
			opts.CheckpointSave = func() (*ontology.Snapshot, []byte, error) {
				state, err := sys.CheckpointState()
				if err != nil {
					return nil, nil, err
				}
				return sys.Snapshot(), state, nil
			}
			opts.CheckpointRestore = func(snap *ontology.Snapshot, state []byte) (*ontology.ShardProjection, error) {
				if err := sys.RestoreCheckpoint(snap, state); err != nil {
					return nil, err
				}
				return sys.ShardProjection(idx)
			}
		}
	case in != "":
		if proj, err = ontology.LoadShardInput(in, idx, k); err != nil {
			return err
		}
		opts.ShardLoader = func() (*ontology.ShardProjection, error) {
			return ontology.LoadShardInput(in, idx, k)
		}
	default:
		return fmt.Errorf("need -in <shard or ontology artifact> or -build (see giantctl shard)")
	}

	// Boot ladder: a replica with a usable checkpoint beside its log boots
	// from the artifact and tails only the suffix past it; anything less
	// falls back to the fresh build + full replay.
	var srv *serve.Server
	var startGen uint64
	if walDir != "" && opts.CheckpointRestore != nil {
		hydrated, walGen, herr := serve.HydrateShard(walDir, idx, k, opts, log.Printf)
		if herr != nil {
			return herr
		}
		if hydrated != nil {
			srv, startGen = hydrated, walGen
			proj = srv.ShardProjection()
		}
	}
	if srv == nil {
		srv = serve.NewShard(proj, opts)
	}
	log.Printf("serving shard %d/%d (%d home nodes, %s) on %s", idx, k, proj.HomeCount, proj.Snap, addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if walDir != "" {
		path := filepath.Join(walDir, fmt.Sprintf("shard-%d-of-%d.wal", idx, k))
		fl, err := serve.NewFollower(srv, serve.FollowerOptions{
			Path:            path,
			Replica:         replica,
			Logf:            log.Printf,
			StartGen:        startGen,
			CheckpointEvery: ckptEvery,
		})
		if err != nil {
			return err
		}
		log.Printf("replica %d tailing delta log %s from generation %d (direct writes disabled)", replica, path, startGen)
		go func() {
			if err := fl.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("wal follower stopped: %v", err)
			}
		}()
	}

	if watch > 0 && in != "" && !build {
		go newWatcher(in).run(ctx, watch, func() (uint64, string, error) {
			p, err := ontology.LoadShardInput(in, idx, k)
			if err != nil {
				return 0, "", err
			}
			gen, err := srv.SwapShard(p)
			return gen, fmt.Sprintf("shard %d/%d %s", p.Shard, p.NumShards, p.Snap), err
		})
	}

	err = serve.Run(ctx, addr, srv.Handler(), grace)
	if err == nil {
		log.Printf("shut down cleanly")
	}
	return err
}

// snapshotApplier is the watch apply step for whole-ontology files: load
// the artifact and hot-swap it through the same atomic path /v1/reload
// uses.
func snapshotApplier(path string, srv *serve.Server) func() (uint64, string, error) {
	return func() (uint64, string, error) {
		snap, err := ontology.LoadSnapshotFile(path)
		if err != nil {
			return 0, "", err
		}
		gen, err := srv.SwapSnapshot(snap)
		return gen, snap.String(), err
	}
}

// watcher is the background updater for file-served deployments: it polls
// the artifact's modification time and, whenever the offline pipeline
// publishes a new version, runs an apply step that loads and atomically
// publishes it.
type watcher struct {
	path    string
	lastMod time.Time
}

// newWatcher snapshots the artifact's current modification time
// synchronously, so versions published after construction — and only
// those — are picked up by run.
func newWatcher(path string) *watcher {
	w := &watcher{path: path}
	if fi, err := os.Stat(path); err == nil {
		w.lastMod = fi.ModTime()
	}
	return w
}

// run polls until ctx is cancelled. A failed apply (e.g. a half-written
// file) leaves the current generation serving and leaves the recorded
// modification time untouched, so the next tick retries; a later
// successful read therefore publishes exactly one new generation no
// matter how many ticks the failure spanned.
func (w *watcher) run(ctx context.Context, every time.Duration, apply func() (uint64, string, error)) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		fi, err := os.Stat(w.path)
		if err != nil || !fi.ModTime().After(w.lastMod) {
			continue
		}
		gen, desc, err := apply()
		if err != nil {
			// lastMod stays put so the next tick retries.
			log.Printf("watch: %s changed but failed to apply (will retry): %v", w.path, err)
			continue
		}
		w.lastMod = fi.ModTime()
		log.Printf("watch: hot-swapped %s as generation %d", desc, gen)
	}
}
