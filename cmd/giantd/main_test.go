package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"giant/internal/ontology"
	"giant/internal/serve"
)

func watchOntology(n int) *ontology.Snapshot {
	o := ontology.New()
	for i := 0; i < n; i++ {
		o.AddNode(ontology.Concept, fmt.Sprintf("concept %d", i))
	}
	return o.Snapshot()
}

// waitForGen polls the server until it serves the wanted generation.
func waitForGen(t *testing.T, srv *serve.Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Generation() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("generation = %d, want %d", srv.Generation(), want)
}

// TestWatchPathRetriesTransientFailure covers the -watch retry path: a
// changed file that fails to load (half-written artifact) must leave the
// current generation serving and be retried on later ticks — without
// advancing the recorded modification time — so that a later successful
// read publishes EXACTLY one new generation.
func TestWatchPathRetriesTransientFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ao.json")
	if err := watchOntology(3).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, base, base); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(watchOntology(3), serve.Options{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := newWatcher(path) // synchronous: captures the pre-change mtime
	go func() {
		defer close(done)
		w.run(ctx, 3*time.Millisecond, snapshotApplier(path, srv))
	}()

	// Transient failure: the file changes but is unreadable garbage. The
	// watcher must keep serving generation 1 across several retry ticks.
	if err := os.WriteFile(path, []byte(`{"nodes": [not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(time.Minute), base.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond) // > 10 ticks of retries
	if gen := srv.Generation(); gen != 1 {
		t.Fatalf("unreadable file published generation %d", gen)
	}

	// Recovery: the file becomes valid. Without touching the mtime again,
	// the pending retry must pick it up and publish exactly one new
	// generation.
	if err := watchOntology(5).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(time.Minute), base.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	waitForGen(t, srv, 2)
	if srv.Current().NodeCount() != 5 {
		t.Fatalf("recovered generation serves %d nodes, want 5", srv.Current().NodeCount())
	}
	// Exactly one: further ticks must not republish an unchanged file.
	time.Sleep(40 * time.Millisecond)
	if gen := srv.Generation(); gen != 2 {
		t.Fatalf("stable file republished: generation %d", gen)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("watchPath did not stop on context cancellation")
	}
}

// TestWatchPathShardMode: the same watcher drives a per-shard server
// through SwapShard, with the same retry semantics.
func TestWatchPathShardMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.json")
	ss, err := ontology.ShardSnapshot(watchOntology(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Projection(1).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, base, base); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewShard(ss.Projection(1), serve.Options{})
	apply := func() (uint64, string, error) {
		p, err := ontology.LoadShardInput(path, 1, 2)
		if err != nil {
			return 0, "", err
		}
		gen, err := srv.SwapShard(p)
		return gen, p.Snap.String(), err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := newWatcher(path) // synchronous: captures the pre-change mtime
	go w.run(ctx, 3*time.Millisecond, apply)

	// Publish a grown shard file.
	ss2, err := ontology.ShardSnapshot(watchOntology(9), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss2.Projection(1).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, base.Add(time.Minute), base.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	waitForGen(t, srv, 2)
}

func TestParseShardSpec(t *testing.T) {
	for _, tc := range []struct {
		spec string
		i, k int
		ok   bool
	}{
		{"0/4", 0, 4, true},
		{"3/4", 3, 4, true},
		{"0/1", 0, 1, true},
		{"4/4", 0, 0, false},
		{"-1/4", 0, 0, false},
		{"1", 0, 0, false},
		{"a/b", 0, 0, false},
		{"", 0, 0, false},
		{"0/4x", 0, 0, false},
		{"0/4/9", 0, 0, false},
		{"1/2,", 0, 0, false},
		{" 0/4", 0, 0, false},
	} {
		i, k, err := parseShardSpec(tc.spec)
		if tc.ok && (err != nil || i != tc.i || k != tc.k) {
			t.Fatalf("parseShardSpec(%q) = %d, %d, %v", tc.spec, i, k, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("parseShardSpec(%q) accepted", tc.spec)
		}
	}
}
