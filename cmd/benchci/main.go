// Command benchci turns `go test -bench` output into a machine-readable
// benchmark report and gates CI on performance regressions.
//
//	go test -short -run '^$' -bench . -benchtime 1x ./... | tee bench.txt
//	benchci -bench-out bench.txt -baseline bench/BENCH_baseline.json -out BENCH_ci.json
//
// The report maps benchmark name -> ns/op (the trailing -GOMAXPROCS
// suffix is stripped so runs compare across machines). With -baseline,
// every benchmark present in both runs and slower than -min-ns in the
// baseline is compared; a ratio above -max-ratio fails the run with exit
// code 1. -write-baseline regenerates the committed baseline instead of
// comparing. -rel adds machine-independent gates WITHIN the run: e.g.
// -rel 'BenchmarkServeSearch/sharded=4:BenchmarkServeSearch/snapshot:3.0'
// fails when the sharded search exceeds 3x the single-snapshot scan, no
// matter how fast the machine is.
//
// Exit codes: 0 ok, 1 regression (or runtime failure), 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Report is the persisted benchmark summary.
type Report struct {
	// Benchmarks maps benchmark name (sans -GOMAXPROCS suffix) to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Note documents how the numbers were produced.
	Note string `json:"note,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		benchOut      = flag.String("bench-out", "", "path to `go test -bench` output (required)")
		baselinePath  = flag.String("baseline", "", "committed baseline JSON to compare against")
		outPath       = flag.String("out", "BENCH_ci.json", "where to write the current report")
		maxRatio      = flag.Float64("max-ratio", 2.0, "fail when current/baseline ns/op exceeds this")
		minNs         = flag.Float64("min-ns", 1e6, "ignore benchmarks faster than this in the baseline (single-iteration timings below ~1ms are noise)")
		writeBaseline = flag.Bool("write-baseline", false, "write -out as a new baseline and skip comparison")
		requireAll    = flag.Bool("require-all", false, "fail when a baseline benchmark is missing from this run (off by default: GOMAXPROCS-parameterized sub-benchmark names legitimately vary across machines)")
		rel           = flag.String("rel", "", "comma-separated relative gates `name:reference:max-ratio`: fail when name's ns/op exceeds max-ratio x reference's ns/op, both taken from THIS run (machine-independent, unlike the baseline comparison)")
		note          = flag.String("note", "go test -short -run '^$' -bench . -benchtime 1x ./...", "provenance note stored in the report")
	)
	flag.Parse()
	if *benchOut == "" {
		fmt.Fprintln(os.Stderr, "benchci: -bench-out is required")
		flag.Usage()
		return 2
	}
	raw, err := os.ReadFile(*benchOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
		return 1
	}
	report := Report{Benchmarks: parseBench(string(raw)), Note: *note}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchci: no benchmark lines found in", *benchOut)
		return 1
	}
	if err := writeReport(*outPath, &report); err != nil {
		fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
		return 1
	}
	fmt.Printf("benchci: wrote %d benchmarks to %s\n", len(report.Benchmarks), *outPath)
	if *rel != "" {
		failures, err := checkRelative(report.Benchmarks, *rel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchci: %v\n", err)
			return 2
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "benchci: REGRESSION:", f)
			}
			return 1
		}
	}
	if *writeBaseline || *baselinePath == "" {
		return 0
	}

	baseRaw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchci: read baseline: %v\n", err)
		return 1
	}
	var base Report
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchci: parse baseline: %v\n", err)
		return 1
	}
	regressions, compared, missing := compare(base.Benchmarks, report.Benchmarks, *maxRatio, *minNs)
	fmt.Printf("benchci: compared %d benchmarks against %s (max-ratio %.2f, min-ns %.0f)\n",
		compared, *baselinePath, *maxRatio, *minNs)
	if *requireAll && len(missing) > 0 {
		for _, n := range missing {
			fmt.Fprintf(os.Stderr, "benchci: MISSING: %s is in the baseline but did not run\n", n)
		}
		return 1
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchci: REGRESSION:", r)
		}
		return 1
	}
	fmt.Println("benchci: no regressions")
	return 0
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName[/sub]-8   	       1	   123456 ns/op   [extra metrics]
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name -> ns/op, stripping the -GOMAXPROCS suffix and
// keeping the slowest sample when a name repeats (matrix runs append).
func parseBench(out string) map[string]float64 {
	res := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := res[name]; !ok || ns > prev {
			res[name] = ns
		}
	}
	return res
}

// stripProcs removes the trailing -N parallelism suffix go test appends.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// checkRelative evaluates the -rel gates against the current run: each
// spec is name:reference:max-ratio, and both benchmarks must be present —
// a gate that cannot run is a configuration error, not a pass.
func checkRelative(cur map[string]float64, spec string) (failures []string, err error) {
	for _, g := range strings.Split(spec, ",") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		parts := strings.Split(g, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -rel gate %q (want name:reference:max-ratio)", g)
		}
		max, perr := strconv.ParseFloat(parts[2], 64)
		if perr != nil || max <= 0 {
			return nil, fmt.Errorf("bad -rel ratio in %q", g)
		}
		c, okC := cur[parts[0]]
		r, okR := cur[parts[1]]
		if !okC || !okR || r == 0 {
			return nil, fmt.Errorf("-rel gate %q: benchmark missing from this run", g)
		}
		if c > max*r {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op is %.2fx of %s (%.0f ns/op), max %.2fx",
				parts[0], c, c/r, parts[1], r, max))
		} else {
			fmt.Printf("benchci: rel ok: %s is %.2fx of %s (max %.2fx)\n", parts[0], c/r, parts[1], max)
		}
	}
	return failures, nil
}

// compare returns human-readable regression descriptions, the number of
// benchmark pairs actually compared, and the baseline benchmarks missing
// from the current run.
func compare(base, cur map[string]float64, maxRatio, minNs float64) (regressions []string, compared int, missing []string) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := base[n]
		c, ok := cur[n]
		if !ok {
			fmt.Printf("benchci: note: %s in baseline but not in this run\n", n)
			missing = append(missing, n)
			continue
		}
		if b < minNs {
			continue
		}
		compared++
		if ratio := c / b; ratio > maxRatio {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx > %.2fx)", n, c, b, ratio, maxRatio))
		}
	}
	return regressions, compared, missing
}

func writeReport(path string, r *Report) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
