// Command giantbench regenerates every table and figure of the paper's
// evaluation section at the default (laptop) scale and prints them in the
// paper's layout. Use -scale=tiny for a fast smoke run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	giant "giant"
	"giant/internal/delta"
	"giant/internal/experiments"
	"giant/internal/ontology"
	"giant/internal/serve"
	"giant/internal/wal"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: tiny or default")
	only := flag.String("only", "", "run a single experiment: table1..table7, fig5, fig6, fig7, tagging, ablations")
	parallel := flag.Bool("parallel", false, "measure pipeline speedup: build at Parallelism=1 then GOMAXPROCS and verify identical output")
	ingest := flag.Bool("ingest", false, "measure delta-ingest throughput at -shards {1,K} and verify equivalent output")
	shardsFlag := flag.Int("shards", 4, "with -ingest: the sharded side of the throughput sweep")
	load := flag.Bool("load", false, "measure snapshot boot time from JSON vs GIANTBIN artifacts and verify identical content")
	search := flag.Bool("search", false, "measure search latency distribution (p50/p95/p99) on snapshot vs -shards sharded, with per-shard fan-out counts, and verify identical results")
	catchup := flag.Bool("catchup", false, "measure replica catch-up: full delta-log replay vs checkpoint+suffix boot at 10/100/1000 logged generations, and verify identical worlds")
	catchupOut := flag.String("catchup-out", "BENCH_catchup.json", "with -catchup: where the JSON results are written")
	flag.Parse()

	scale := experiments.ScaleDefault
	if *scaleFlag == "tiny" {
		scale = experiments.ScaleTiny
	}
	if *parallel {
		if err := runParallel(scale); err != nil {
			log.Fatalf("giantbench: %v", err)
		}
		return
	}
	if *ingest {
		if err := runIngestSweep(scale, *shardsFlag); err != nil {
			log.Fatalf("giantbench: %v", err)
		}
		return
	}
	if *load {
		if err := runLoadBench(scale); err != nil {
			log.Fatalf("giantbench: %v", err)
		}
		return
	}
	if *search {
		if err := runSearchSweep(scale, *shardsFlag); err != nil {
			log.Fatalf("giantbench: %v", err)
		}
		return
	}
	if *catchup {
		if err := runCatchupBench(*catchupOut); err != nil {
			log.Fatalf("giantbench: %v", err)
		}
		return
	}
	t0 := time.Now()
	env, err := experiments.GetEnv(scale)
	if err != nil {
		log.Fatalf("giantbench: build environment: %v", err)
	}
	fmt.Printf("environment built in %v (scale=%s)\n\n", time.Since(t0).Round(time.Millisecond), *scaleFlag)

	run := func(name string) bool { return *only == "" || *only == name }
	w := os.Stdout

	if run("table1") {
		experiments.PrintTable1(w, experiments.Table1(env))
		fmt.Fprintln(w)
	}
	if run("table2") {
		experiments.PrintTable2(w, experiments.Table2(env))
		fmt.Fprintln(w)
	}
	if run("table3") {
		experiments.PrintShowcase(w, "Table 3: Concept showcases", experiments.Table3(env, 6))
		fmt.Fprintln(w)
	}
	if run("table4") {
		experiments.PrintShowcase(w, "Table 4: Event showcases", experiments.Table4(env, 6))
		fmt.Fprintln(w)
	}
	if run("table5") {
		experiments.PrintMethodScores(w, "Table 5: Concept mining", experiments.Table5(env))
		fmt.Fprintln(w)
	}
	if run("table6") {
		experiments.PrintMethodScores(w, "Table 6: Event mining", experiments.Table6(env))
		fmt.Fprintln(w)
	}
	if run("table7") {
		experiments.PrintKeyScores(w, experiments.Table7(env))
		fmt.Fprintln(w)
	}
	if run("fig5") {
		if _, s, err := experiments.Figure5(env); err == nil {
			fmt.Fprintln(w, "Figure 5: Story tree")
			fmt.Fprint(w, s)
		} else {
			fmt.Fprintf(w, "Figure 5 unavailable: %v\n", err)
		}
		fmt.Fprintln(w)
	}
	if run("fig6") {
		experiments.PrintCTRSeries(w, "Figure 6: CTR with/without extracted tags", experiments.Figure6(env))
		fmt.Fprintln(w)
	}
	if run("fig7") {
		experiments.PrintCTRSeries(w, "Figure 7: CTR by tag type", experiments.Figure7(env))
		fmt.Fprintln(w)
	}
	if run("tagging") {
		p := experiments.DocTaggingPrecision(env, 2000)
		fmt.Fprintf(w, "Document tagging (§5.3): concept precision %.0f%% (%d/%d docs tagged), event precision %.0f%% (%d/%d docs tagged)\n\n",
			100*p.ConceptPrecision, p.ConceptTagged, p.ConceptDocs,
			100*p.EventPrecision, p.EventTagged, p.EventDocs)
		hit, total := experiments.QueryUnderstanding(env, 200)
		fmt.Fprintf(w, "Query conceptualization: %d/%d concept queries recovered\n\n", hit, total)
	}
	if run("ablations") {
		printAblations(w, "Ablation: QTIG keep-first-edge", experiments.AblationKeepFirstEdge(env))
		printAblations(w, "Ablation: dependency edges", experiments.AblationEdgePreference(env))
		printAblations(w, "Ablation: ATSP decoding", experiments.AblationATSP(env))
		printAblations(w, "Ablation: R-GCN depth", experiments.AblationRGCNDepth(env))
		printAblations(w, "Ablation: node features", experiments.AblationFeatures(env))
	}
	fmt.Printf("total time %v\n", time.Since(t0).Round(time.Millisecond))
}

// runParallel times the full pipeline at Parallelism=1 and
// Parallelism=GOMAXPROCS and checks the two ontologies serialize
// identically, so the reported speedup is measured on provably equivalent
// work.
func runParallel(scale experiments.Scale) error {
	cfg := giant.DefaultConfig()
	if scale == experiments.ScaleTiny {
		cfg = giant.TinyConfig()
	}

	build := func(p int) (*giant.System, time.Duration, error) {
		c := cfg
		c.Parallelism = p
		t0 := time.Now()
		sys, err := giant.Build(c)
		return sys, time.Since(t0), err
	}

	fmt.Println("pipeline parallelism benchmark")
	seq, dSeq, err := build(1)
	if err != nil {
		return fmt.Errorf("sequential build: %w", err)
	}
	fmt.Printf("  parallelism=1:  %v\n", dSeq.Round(time.Millisecond))

	workers := runtime.GOMAXPROCS(0)
	par, dPar, err := build(workers)
	if err != nil {
		return fmt.Errorf("parallel build: %w", err)
	}
	fmt.Printf("  parallelism=%d: %v\n", workers, dPar.Round(time.Millisecond))

	var a, b bytes.Buffer
	if err := seq.Ontology.WriteJSON(&a); err != nil {
		return err
	}
	if err := par.Ontology.WriteJSON(&b); err != nil {
		return err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("ontologies differ between parallelism 1 and %d", workers)
	}
	st := par.Ontology.ComputeStats()
	fmt.Printf("  output identical: %v nodes, %v edges\n", st.NodesByType, st.EdgesByType)
	if dPar > 0 {
		fmt.Printf("  speedup: %.2fx on %d worker(s)\n", dSeq.Seconds()/dPar.Seconds(), workers)
	}
	return nil
}

// runIngestSweep times the incremental-update hot path at 1 shard versus
// k shards: the same steady-state click batches replay through
// System.Ingest / System.IngestSharded, and the resulting ontologies are
// checked for set-equivalence (sharding must change throughput, never
// results).
func runIngestSweep(scale experiments.Scale, k int) error {
	if k < 2 {
		return fmt.Errorf("-shards must be >= 2 for the ingest sweep (got %d)", k)
	}
	cfg := giant.DefaultConfig()
	if scale == experiments.ScaleTiny {
		cfg = giant.TinyConfig()
	}
	// TTLs off so every round measures the steady-state touch batch.
	cfg.Update.EventTTL, cfg.Update.ConceptTTL, cfg.Update.TopicTTL = 0, 0, 0

	const rounds = 5
	run := func(shards int) (*giant.System, time.Duration, error) {
		c := cfg
		c.Shards = shards
		sys, err := giant.Build(c)
		if err != nil {
			return nil, 0, err
		}
		batch := delta.Batch{Day: 64}
		for i, r := range sys.Log.Records {
			if i%16 == 0 {
				batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: 1, Day: 64})
			}
		}
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			if shards > 1 {
				if _, _, _, err := sys.IngestSharded(batch); err != nil {
					return nil, 0, err
				}
			} else {
				if _, _, err := sys.Ingest(batch); err != nil {
					return nil, 0, err
				}
			}
		}
		return sys, time.Since(t0), nil
	}

	fmt.Println("delta-ingest throughput sweep")
	base, dBase, err := run(1)
	if err != nil {
		return fmt.Errorf("1-shard ingest: %w", err)
	}
	fmt.Printf("  shards=1: %v for %d batches (%.1f batches/s)\n",
		dBase.Round(time.Millisecond), rounds, float64(rounds)/dBase.Seconds())
	shardedSys, dShard, err := run(k)
	if err != nil {
		return fmt.Errorf("%d-shard ingest: %w", k, err)
	}
	fmt.Printf("  shards=%d: %v for %d batches (%.1f batches/s)\n",
		k, dShard.Round(time.Millisecond), rounds, float64(rounds)/dShard.Seconds())

	a, b := ontologySetFingerprint(base.Ontology), ontologySetFingerprint(shardedSys.Ontology)
	if a != b {
		return fmt.Errorf("ingested ontologies diverge between 1 and %d shards", k)
	}
	st := shardedSys.Ontology.ComputeStats()
	fmt.Printf("  output equivalent: %v nodes, %v edges\n", st.NodesByType, st.EdgesByType)
	if dShard > 0 {
		fmt.Printf("  speedup: %.2fx at %d shards (GOMAXPROCS=%d)\n", dBase.Seconds()/dShard.Seconds(), k, runtime.GOMAXPROCS(0))
	}
	return nil
}

// runLoadBench is the boot-time benchmark behind the binary format: build
// once, save the snapshot in both formats, and time LoadSnapshotFile on
// each (best of several rounds, matching how a restarting giantd pays the
// cost exactly once). The loaded snapshots are verified content-identical
// by re-serializing to JSON before any number is reported.
func runLoadBench(scale experiments.Scale) error {
	cfg := giant.DefaultConfig()
	if scale == experiments.ScaleTiny {
		cfg = giant.TinyConfig()
	}
	sys, err := giant.Build(cfg)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "giantbench-load-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	snap := sys.Ontology.Snapshot()
	jsonPath := dir + "/ao.json"
	binPath := dir + "/ao.bin"
	if err := snap.SaveFile(jsonPath); err != nil {
		return err
	}
	if err := snap.SaveBinaryFile(binPath); err != nil {
		return err
	}

	const rounds = 7
	timeLoad := func(path string) (time.Duration, *ontology.Snapshot, error) {
		best := time.Duration(0)
		var last *ontology.Snapshot
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			s, err := ontology.LoadSnapshotFile(path)
			d := time.Since(t0)
			if err != nil {
				return 0, nil, err
			}
			if best == 0 || d < best {
				best = d
			}
			last = s
		}
		return best, last, nil
	}

	fmt.Println("snapshot load benchmark (boot time)")
	sizeOf := func(path string) int64 {
		fi, err := os.Stat(path)
		if err != nil {
			return -1
		}
		return fi.Size()
	}
	dJSON, fromJSON, err := timeLoad(jsonPath)
	if err != nil {
		return fmt.Errorf("json load: %w", err)
	}
	fmt.Printf("  json:   %10v  (%d bytes)\n", dJSON, sizeOf(jsonPath))
	dBin, fromBin, err := timeLoad(binPath)
	if err != nil {
		return fmt.Errorf("binary load: %w", err)
	}
	fmt.Printf("  binary: %10v  (%d bytes)\n", dBin, sizeOf(binPath))

	var a, b bytes.Buffer
	if err := fromJSON.WriteJSON(&a); err != nil {
		return err
	}
	if err := fromBin.WriteJSON(&b); err != nil {
		return err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("snapshots loaded from the two formats differ")
	}
	fmt.Printf("  content identical: %d nodes, %d edges\n", fromBin.NodeCount(), fromBin.EdgeCount())
	if dBin > 0 {
		fmt.Printf("  speedup: %.1fx\n", dJSON.Seconds()/dBin.Seconds())
	}
	return nil
}

// catchupHost is the catch-up benchmark's deterministic apply host: a
// single-shard sharded-snapshot lineage advanced by a synthetic delta
// derived from the batch alone, plus the checkpoint save/restore pair —
// the same host contract cmd/giantd wires System.CheckpointState and
// RestoreCheckpoint into, with a constant per-record apply cost so the
// measured curve is the replication machinery's, not the miner's.
type catchupHost struct {
	cur *ontology.ShardedSnapshot
}

func (h *catchupHost) ingest(b delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
	if b.Day <= 0 {
		return nil, nil, nil, fmt.Errorf("empty batch: %w", delta.ErrInvalidBatch)
	}
	d := &delta.Delta{Day: b.Day, Add: []delta.NodeAdd{
		{Type: ontology.Concept, Phrase: fmt.Sprintf("synthetic concept %d", b.Day), Day: b.Day},
		{Type: ontology.Event, Phrase: fmt.Sprintf("synthetic event %d", b.Day), Day: b.Day},
	}}
	next, merged, touched, err := delta.ApplySharded(h.cur, []*delta.Delta{d})
	if err != nil {
		return nil, nil, nil, err
	}
	h.cur = next
	return next.Projection(0), merged, touched, nil
}

func (h *catchupHost) save() (*ontology.Snapshot, []byte, error) {
	u := h.cur.Union()
	blob, err := json.Marshal(map[string]int{"nodes": u.NodeCount(), "edges": u.EdgeCount()})
	return u, blob, err
}

func (h *catchupHost) restore(snap *ontology.Snapshot, state []byte) (*ontology.ShardProjection, error) {
	var st struct{ Nodes, Edges int }
	if err := json.Unmarshal(state, &st); err != nil {
		return nil, err
	}
	if st.Nodes != snap.NodeCount() || st.Edges != snap.EdgeCount() {
		return nil, fmt.Errorf("state blob records %d nodes/%d edges, snapshot has %d/%d",
			st.Nodes, st.Edges, snap.NodeCount(), snap.EdgeCount())
	}
	ss, err := ontology.ShardSnapshot(snap, 1)
	if err != nil {
		return nil, err
	}
	h.cur = ss
	return ss.Projection(0), nil
}

// catchupBoot is one simulated replica boot: server, follower goroutine,
// and the host whose lineage the follower advances.
type catchupBoot struct {
	srv    *serve.Server
	host   *catchupHost
	cancel context.CancelFunc
	done   chan struct{}
	runErr error // follower exit error; read only after done is closed
}

// bootCatchupReplica boots a replica over walPath the way giantd -wal
// does: hydrate=false starts from the base world and replays the whole
// log; hydrate=true walks the checkpoint ladder and tails only the
// suffix past the artifact.
func bootCatchupReplica(walPath string, base *ontology.ShardedSnapshot, hydrate bool) (*catchupBoot, error) {
	host := &catchupHost{cur: base}
	opts := serve.Options{
		ShardIngest:       host.ingest,
		CheckpointSave:    host.save,
		CheckpointRestore: host.restore,
	}
	var srv *serve.Server
	var startGen uint64
	if hydrate {
		var err error
		srv, startGen, err = serve.HydrateShard(filepath.Dir(walPath), 0, 1, opts, nil)
		if err != nil {
			return nil, err
		}
		if srv == nil {
			return nil, fmt.Errorf("no usable checkpoint artifact beside %s", walPath)
		}
	} else {
		srv = serve.NewShard(base.Projection(0), opts)
	}
	fl, err := serve.NewFollower(srv, serve.FollowerOptions{
		Path:     walPath,
		Poll:     time.Millisecond,
		StartGen: startGen,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &catchupBoot{srv: srv, host: host, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(b.done)
		b.runErr = fl.Run(ctx)
	}()
	return b, nil
}

// waitGeneration blocks until the replica serves generation target (the
// follower has applied every log record below it) or the timeout lapses.
func (b *catchupBoot) waitGeneration(target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for b.srv.Generation() < target {
		select {
		case <-b.done:
			return fmt.Errorf("follower stopped at generation %d: %v", b.srv.Generation(), b.runErr)
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out at generation %d waiting for %d", b.srv.Generation(), target)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

func (b *catchupBoot) stop() {
	b.cancel()
	<-b.done
}

// runCatchupBench measures how long a restarting replica takes to be
// serving at the log head, as a function of log length: a full replay
// from generation zero (linear in the log) against a checkpoint+suffix
// boot (decode the artifact, tail the last few records — flat). Before
// any number is reported the two boot paths are verified to produce
// byte-identical worlds at identical serving generations. Results go to
// outPath as JSON, one row per log length.
func runCatchupBench(outPath string) error {
	baseOnt := ontology.New()
	root := baseOnt.AddNode(ontology.Category, "auto")
	seedConcept := baseOnt.AddNode(ontology.Concept, "family sedans")
	if err := baseOnt.AddEdge(root, seedConcept, ontology.IsA, 1); err != nil {
		return err
	}
	base, err := ontology.ShardSnapshot(baseOnt.Snapshot(), 1)
	if err != nil {
		return err
	}

	const suffix = 5 // records past the checkpoint: the constant-size tail a fresh artifact leaves
	const rounds = 3
	type row struct {
		Generations  int     `json:"generations"`
		SuffixGens   int     `json:"suffix_generations"`
		FullReplayMS float64 `json:"full_replay_ms"`
		CheckpointMS float64 `json:"checkpoint_ms"`
		Speedup      float64 `json:"speedup"`
	}
	var rows []row
	fmt.Println("replica catch-up benchmark: full replay vs checkpoint+suffix boot")
	for _, n := range []int{10, 100, 1000} {
		dir, err := os.MkdirTemp("", "giantbench-catchup-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		walPath := filepath.Join(dir, "shard-0-of-1.wal")
		lg, err := wal.Create(walPath, 0, 1)
		if err != nil {
			return err
		}
		appendDays := func(from, to int) error {
			for d := from; d <= to; d++ {
				if _, err := lg.Append(d, []byte(fmt.Sprintf(`{"day":%d}`, d))); err != nil {
					return err
				}
			}
			return nil
		}

		// A writer replica applies the prefix, publishes a checkpoint
		// artifact covering it (exactly what a cadence roll does), and
		// then applies the suffix so the log head sits past the artifact.
		ckptAt := n - suffix
		if err := appendDays(1, ckptAt); err != nil {
			return err
		}
		writer, err := bootCatchupReplica(walPath, base, false)
		if err != nil {
			return err
		}
		if err := writer.waitGeneration(uint64(1+ckptAt), time.Minute); err != nil {
			return err
		}
		snap, blob, err := writer.host.save()
		if err != nil {
			return err
		}
		var encoded bytes.Buffer
		if err := ontology.EncodeSnapshotBinary(&encoded, snap, writer.srv.Generation()); err != nil {
			return err
		}
		if err := wal.PublishCheckpoint(dir, &wal.Checkpoint{
			Shard: 0, Shards: 1,
			WALGen:     uint64(ckptAt),
			ServingGen: writer.srv.Generation(),
			Snapshot:   encoded.Bytes(),
			State:      blob,
		}); err != nil {
			return err
		}
		if err := appendDays(ckptAt+1, n); err != nil {
			return err
		}
		if err := writer.waitGeneration(uint64(1+n), time.Minute); err != nil {
			return err
		}
		writer.stop()
		if err := lg.Close(); err != nil {
			return err
		}

		// Time both boot paths to the same target: serving at the head
		// generation with every log record applied.
		target := uint64(1 + n)
		timedBoot := func(hydrate bool) (time.Duration, []byte, error) {
			var best time.Duration
			var world []byte
			for i := 0; i < rounds; i++ {
				t0 := time.Now()
				b, err := bootCatchupReplica(walPath, base, hydrate)
				if err != nil {
					return 0, nil, err
				}
				err = b.waitGeneration(target, time.Minute)
				d := time.Since(t0)
				b.stop()
				if err != nil {
					return 0, nil, err
				}
				if best == 0 || d < best {
					best = d
				}
				var buf bytes.Buffer
				if err := b.host.cur.Union().WriteBinary(&buf); err != nil {
					return 0, nil, err
				}
				world = buf.Bytes()
			}
			return best, world, nil
		}
		dFull, wFull, err := timedBoot(false)
		if err != nil {
			return fmt.Errorf("full replay at %d generations: %w", n, err)
		}
		dCkpt, wCkpt, err := timedBoot(true)
		if err != nil {
			return fmt.Errorf("checkpoint boot at %d generations: %w", n, err)
		}
		if !bytes.Equal(wFull, wCkpt) {
			return fmt.Errorf("at %d generations the two boot paths serve different worlds", n)
		}
		speedup := 0.0
		if dCkpt > 0 {
			speedup = dFull.Seconds() / dCkpt.Seconds()
		}
		fmt.Printf("  %4d generations: full replay %10v, checkpoint+suffix %10v  (%.1fx; worlds identical)\n",
			n, dFull.Round(time.Microsecond), dCkpt.Round(time.Microsecond), speedup)
		rows = append(rows, row{
			Generations:  n,
			SuffixGens:   suffix,
			FullReplayMS: float64(dFull.Microseconds()) / 1000,
			CheckpointMS: float64(dCkpt.Microseconds()) / 1000,
			Speedup:      speedup,
		})
	}

	out, err := json.MarshalIndent(map[string]any{
		"bench":  "replica catch-up: full delta-log replay vs checkpoint+suffix boot",
		"rounds": rounds,
		"rows":   rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  results written to %s\n", outPath)
	return nil
}

// runSearchSweep is the scatter-gather search benchmark: build once,
// shard the snapshot at -shards, and replay a query mix (full phrases,
// leading words, misses) through both read paths, timing every call so
// the tail is visible. Before any number is reported the two paths are
// verified to return identical results, and the sweep prints the routing
// index's fan-out profile: shards consulted per query after term-gram
// pruning, and the fraction of queries answered by a single shard.
func runSearchSweep(scale experiments.Scale, k int) error {
	if k < 2 {
		return fmt.Errorf("-shards must be >= 2 for the search sweep (got %d)", k)
	}
	cfg := giant.DefaultConfig()
	if scale == experiments.ScaleTiny {
		cfg = giant.TinyConfig()
	}
	sys, err := giant.Build(cfg)
	if err != nil {
		return err
	}
	snap := sys.Ontology.Snapshot()
	ss, err := ontology.ShardSnapshot(snap, k)
	if err != nil {
		return err
	}

	var queries []string
	nodes := snap.Nodes()
	stride := len(nodes)/48 + 1
	for i := 0; i < len(nodes); i += stride {
		p := nodes[i].Phrase
		queries = append(queries, p)
		if sp := strings.IndexByte(p, ' '); sp > 0 {
			queries = append(queries, p[:sp])
		}
	}
	queries = append(queries, "zzz-no-hit-1", "zzz-no-hit-2", "zzz-no-hit-3")

	const limit, rounds = 10, 200
	for _, q := range queries {
		a, b := snap.Search(q, limit), ss.Search(q, limit)
		if len(a) != len(b) {
			return fmt.Errorf("search %q: snapshot %d hits, sharded %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				return fmt.Errorf("search %q hit %d: snapshot node %d, sharded node %d", q, i, a[i].ID, b[i].ID)
			}
		}
	}

	sweep := func(search func(string, int) []ontology.Node) []time.Duration {
		samples := make([]time.Duration, 0, rounds*len(queries))
		for r := 0; r < rounds; r++ {
			for _, q := range queries {
				t0 := time.Now()
				search(q, limit)
				samples = append(samples, time.Since(t0))
			}
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		return samples
	}
	pct := func(s []time.Duration, p float64) time.Duration {
		return s[int(p*float64(len(s)-1)+0.5)]
	}

	fmt.Printf("search latency sweep (%d queries x %d rounds, limit %d)\n", len(queries), rounds, limit)
	snapS := sweep(snap.Search)
	fmt.Printf("  snapshot:  p50 %10v  p95 %10v  p99 %10v\n", pct(snapS, 0.50), pct(snapS, 0.95), pct(snapS, 0.99))
	shardS := sweep(ss.Search)
	fmt.Printf("  sharded=%d: p50 %10v  p95 %10v  p99 %10v\n", k, pct(shardS, 0.50), pct(shardS, 0.95), pct(shardS, 0.99))

	consulted, oneShard := 0, 0
	for _, q := range queries {
		c := len(ss.CandidateShards(strings.ToLower(q)))
		consulted += c
		if c == 1 {
			oneShard++
		}
	}
	fmt.Printf("  fan-out: %.2f shards/query after gram routing, %d/%d queries consult a single shard\n",
		float64(consulted)/float64(len(queries)), oneShard, len(queries))
	fmt.Printf("  results identical across both paths; p50 gap %.2fx\n",
		float64(pct(shardS, 0.50))/float64(pct(snapS, 0.50)))
	return nil
}

// ontologySetFingerprint renders the node and edge sets in a canonical
// ID-independent order (sharded ingest may assign IDs differently).
func ontologySetFingerprint(o *ontology.Ontology) string {
	var lines []string
	for _, n := range o.Nodes() {
		aliases := append([]string(nil), n.Aliases...)
		sort.Strings(aliases)
		lines = append(lines, fmt.Sprintf("node|%s|%s|%v|%s|%s|%d|%d|%d",
			n.Type, n.Phrase, aliases, n.Trigger, n.Location, n.Day, n.FirstSeenDay, n.LastSeenDay))
	}
	for _, e := range o.Edges() {
		src, _ := o.Get(e.Src)
		dst, _ := o.Get(e.Dst)
		lines = append(lines, fmt.Sprintf("edge|%s|%s|%s|%s|%s|%.6f",
			src.Type, src.Phrase, e.Type, dst.Type, dst.Phrase, e.Weight))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func printAblations(w *os.File, title string, rows []experiments.AblationResult) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-30s EM %.4f  F1 %.4f  COV %.4f\n", r.Name, r.Score.EM, r.Score.F1, r.Score.COV)
	}
	fmt.Fprintln(w)
}
