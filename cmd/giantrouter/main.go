// Command giantrouter is the front door of the multi-process serving
// tier: a thin HTTP daemon that fans requests out over K per-shard giantd
// backends (giantd -shard i/k), speaking the same ontology.HomeShard
// phrase hash the in-process sharded server uses.
//
//	# boot one giantd per shard, then the router in front:
//	giantd -build -tiny -shard 0/2 -addr :8081 &
//	giantd -build -tiny -shard 1/2 -addr :8082 &
//	giantrouter -addr :8080 -backends http://localhost:8081,http://localhost:8082
//
//	curl localhost:8080/healthz                      # per-backend health
//	curl 'localhost:8080/v1/search?q=sedan'          # scatter-gather merge
//	curl 'localhost:8080/v1/node?phrase=family+sedans&type=concept'
//	curl localhost:8080/v1/stats                     # per-shard generations
//	curl -X POST localhost:8080/v1/ingest -d @batch.json   # broadcast
//
// Backends are listed in shard order: -backends URL_0,URL_1,...,URL_{k-1}
// where URL_i serves shard i of k (the router cross-checks this against
// each backend's /v1/stats shard identity). /v1/search, /v1/node,
// /v1/tag, /v1/query/rewrite and /v1/story responses are byte-identical
// to a single sharded giantd over the same world — the application
// endpoints gather each shard's ?partial= candidates and run the same
// merge the backends run internally, rather than proxying one shard's
// approximation; /v1/ingest broadcasts to every backend with
// all-or-nothing generation accounting.
//
// Reads are routed, not blindly scattered: the router keeps a term→shard
// routing index built from each backend's /v1/stats term grams and
// consults only the shards that can match the query (or the tag
// document's entities and matching text), caching each shard's search
// and rewrite partials keyed by (shard, generation, query) —
// -search-cache sizes the caches (0 disables), and ?scatter=full on any
// search bypasses routing and caching for debugging.
//
// Degraded mode is configurable: by default fan-out reads fail closed
// with 503 when a backend is unreachable; with -fail-open they return the
// reachable shards' results marked "partial": true — uniformly across
// search, tag, query rewrite, story and scattered node lookups. A typed
// node lookup (and a story seed resolution) answers 502 when the one
// home shard that could hold the phrase is down, and writes are always
// fail-closed. A cached partial can answer for a down backend, so a
// fully cached query returns complete results where an uncached one
// would be partial.
//
// With -wal DIR each shard may list multiple replicas, separated by "|"
// within the comma-separated shard list (every replica a giantd started
// with the same -shard i/k plus -wal DIR):
//
//	giantd -build -tiny -shard 0/2 -wal /var/giant/wal -replica 0 -addr :8081 &
//	giantd -build -tiny -shard 0/2 -wal /var/giant/wal -replica 1 -addr :8082 &
//	giantd -build -tiny -shard 1/2 -wal /var/giant/wal -replica 0 -addr :8083 &
//	giantd -build -tiny -shard 1/2 -wal /var/giant/wal -replica 1 -addr :8084 &
//	giantrouter -wal /var/giant/wal \
//	  -backends 'http://localhost:8081|http://localhost:8082,http://localhost:8083|http://localhost:8084'
//
// Reads then balance by power-of-two-choices over each shard's healthy,
// caught-up replicas (a replica still tailing the log is never consulted
// for reads ahead of its position), and /v1/ingest appends each batch to
// the per-shard logs under DIR, acknowledging once a quorum of each
// shard's replicas confirm the apply. A shard whose slowest healthy
// replica trails the log head by more than -max-lag generations pushes
// back with 429 replica_lagging and a Retry-After header. Rolling
// restarts are zero-downtime: restart one replica at a time and it
// catches up from the log before re-entering read rotation.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"giant/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giantrouter: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backends = flag.String("backends", "", "comma-separated per-shard giantd base URLs, in shard order (URL_i serves shard i)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-backend read timeout")
		writeTO  = flag.Duration("write-timeout", 2*time.Minute, "per-backend timeout for ingest/reload broadcasts (backends re-mine per batch)")
		failOpen = flag.Bool("fail-open", false, "serve partial fan-out results (marked \"partial\": true) instead of 503 when a shard is unreachable")
		parallel = flag.Int("parallel", 0, "fan-out worker pool size (0 = min(shards, GOMAXPROCS))")
		probe    = flag.Duration("probe", 2*time.Second, "background health-probe interval (0 disables)")
		grace    = flag.Duration("grace", 5*time.Second, "graceful-shutdown drain timeout")
		cache    = flag.Int("search-cache", 1024, "per-shard search- and rewrite-partial cache entries, keyed (shard, generation, query); a cached partial can mask a down backend for that query (0 disables)")
		walDir   = flag.String("wal", "", "delta-log directory: ingest appends to DIR/shard-i-of-k.wal and acks at a replica quorum (backends must be giantd -wal replicas)")
		maxLag   = flag.Uint64("max-lag", 0, "with -wal: 429 ingest pushback once a shard's slowest healthy replica trails the log head by more than this many generations (0 = 64)")
		ackTO    = flag.Duration("ack-timeout", 0, "with -wal: per-replica apply-confirmation timeout for ingest quorum waits (0 = -write-timeout)")
		compact  = flag.Bool("compact", false, "with -wal: truncate each shard's delta log below the fleet-wide applied floor, bounded by the newest published checkpoint (runs after each health-probe pass; replicas need -checkpoint-every)")
	)
	flag.Parse()
	if *backends == "" {
		log.Fatal("need -backends http://host:port,... (one per shard, in shard order; \"|\" separates a shard's replicas)")
	}
	if *compact && *walDir == "" {
		log.Printf("warning: -compact only applies to delta-log tiers (-wal); ignoring it")
	}
	replicas := make([][]string, 0)
	for _, spec := range strings.Split(*backends, ",") {
		urls := strings.Split(spec, "|")
		for i := range urls {
			urls[i] = strings.TrimSpace(strings.TrimRight(urls[i], "/"))
		}
		replicas = append(replicas, urls)
	}
	rt, err := serve.NewRouter(serve.RouterOptions{
		Replicas:      replicas,
		WALDir:        *walDir,
		Compact:       *compact,
		MaxLag:        *maxLag,
		AckTimeout:    *ackTO,
		Timeout:       *timeout,
		WriteTimeout:  *writeTO,
		FailOpen:      *failOpen,
		Parallelism:   *parallel,
		ProbeInterval: *probe,
		CacheSize:     *cache,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	mode := "fail-closed"
	if *failOpen {
		mode = "fail-open"
	}
	log.Printf("routing %d shards (%s) on %s", rt.NumShards(), mode, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve.Run(ctx, *addr, rt.Handler(), *grace); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
