// Command giantctl runs the GIANT pipeline end to end and interacts with the
// resulting Attention Ontology:
//
//	giantctl build -out ao.json        build the ontology and save it
//	giantctl stats -in ao.json         print node/edge statistics
//	giantctl query -q "best ..."       conceptualize/rewrite a query
//	giantctl tag -title "..."          tag a document
//	giantctl story -seed "..."         print a story tree
//
// build runs the full pipeline (generate logs, train GCTSP-Net, mine, link);
// the other subcommands rebuild the same deterministic system unless -in
// points to a saved ontology.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	giant "giant"
	"giant/internal/ontology"
	"giant/internal/tagging"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giantctl: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = runBuild(args)
	case "stats":
		err = runStats(args)
	case "query":
		err = runQuery(args)
	case "tag":
		err = runTag(args)
	case "story":
		err = runStory(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: giantctl <build|stats|query|tag|story> [flags]")
}

func buildSystem(tiny bool) (*giant.System, error) {
	cfg := giant.DefaultConfig()
	if tiny {
		cfg = giant.TinyConfig()
	}
	return giant.Build(cfg)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("out", "ao.json", "output path for the ontology JSON")
	tiny := fs.Bool("tiny", false, "use the tiny configuration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(*tiny)
	if err != nil {
		return err
	}
	if err := sys.Ontology.SaveFile(*out); err != nil {
		return err
	}
	st := sys.Ontology.ComputeStats()
	fmt.Printf("built attention ontology: %v nodes, %v edges -> %s\n", st.NodesByType, st.EdgesByType, *out)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "ao.json", "ontology JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, err := ontology.LoadFile(*in)
	if err != nil {
		return err
	}
	st := o.ComputeStats()
	fmt.Println("nodes:")
	for t, n := range st.NodesByType {
		fmt.Printf("  %-10s %d\n", t, n)
	}
	fmt.Println("edges:")
	for t, n := range st.EdgesByType {
		fmt.Printf("  %-10s %d\n", t, n)
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	q := fs.String("q", "", "query text")
	tiny := fs.Bool("tiny", true, "use the tiny configuration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *q == "" {
		return fmt.Errorf("query: -q is required")
	}
	sys, err := buildSystem(*tiny)
	if err != nil {
		return err
	}
	a := sys.Query().Analyze(*q)
	fmt.Printf("query:   %s\n", a.Query)
	fmt.Printf("concept: %s\n", orNone(a.Concept))
	fmt.Printf("entity:  %s\n", orNone(a.Entity))
	for _, r := range a.Rewrites {
		fmt.Printf("rewrite: %s\n", r)
	}
	for _, r := range a.Recommendations {
		fmt.Printf("related: %s\n", r)
	}
	return nil
}

func runTag(args []string) error {
	fs := flag.NewFlagSet("tag", flag.ExitOnError)
	title := fs.String("title", "", "document title")
	content := fs.String("content", "", "document content")
	entities := fs.String("entities", "", "comma-separated key entities")
	tiny := fs.Bool("tiny", true, "use the tiny configuration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(*tiny)
	if err != nil {
		return err
	}
	doc := &tagging.Document{Title: *title, Content: *content}
	if *entities != "" {
		doc.Entities = strings.Split(*entities, ",")
	}
	for _, t := range sys.ConceptTagger().TagConcepts(doc) {
		fmt.Printf("concept tag: %-30s score %.3f\n", t.Phrase, t.Score)
	}
	for _, t := range sys.EventTagger().TagEvents(doc) {
		fmt.Printf("%s tag: %-30s score %.3f\n", t.Type, t.Phrase, t.Score)
	}
	return nil
}

func runStory(args []string) error {
	fs := flag.NewFlagSet("story", flag.ExitOnError)
	seed := fs.String("seed", "", "seed event phrase (empty: first mined event)")
	tiny := fs.Bool("tiny", true, "use the tiny configuration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := buildSystem(*tiny)
	if err != nil {
		return err
	}
	phrase := *seed
	if phrase == "" {
		for _, m := range sys.Mined {
			if m.IsEvent {
				phrase = m.Phrase
				break
			}
		}
	}
	tree, ok := sys.StoryTree(phrase)
	if !ok {
		return fmt.Errorf("story: seed event %q not found among mined events", phrase)
	}
	tree.Render(os.Stdout)
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
