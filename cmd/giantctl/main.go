// Command giantctl runs the GIANT pipeline end to end and interacts with the
// resulting Attention Ontology:
//
//	giantctl build -out ao.json        build the ontology and save it
//	giantctl update -in ao.json -docs new.json -out ao2.json
//	                                   apply incremental update batches offline
//	giantctl convert -in ao.json -out ao.bin -format binary
//	                                   re-encode a snapshot or shard artifact
//	giantctl stats -in ao.json         print node/edge statistics
//	giantctl query -q "best ..."       conceptualize/rewrite a query
//	giantctl tag -title "..."          tag a document
//	giantctl story -seed "..."         print a story tree
//	giantctl help                      print usage
//
// build runs the full pipeline (generate logs, train GCTSP-Net, mine, link);
// the other subcommands rebuild the same deterministic system unless -in
// points to a saved ontology. update replays one or more delta.Batch JSON
// documents (new docs + clicks) through delta mining against the -in
// ontology and writes the updated generation. Like query/tag/story, update
// first rebuilds the deterministic system (it needs the trained models and
// the base click graph); the ontology itself is then advanced by deltas —
// only the affected cluster neighbourhood is re-mined per batch. The -in
// file must come from a build with the same configuration; batches that
// reference docs introduced by earlier update runs must be replayed in the
// same invocation (pass an array of batches in -docs).
//
// Exit codes (stable, for CI assertions): 0 success, 1 runtime failure,
// 2 usage error (unknown subcommand or bad/missing flags).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	giant "giant"
	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/tagging"
	"giant/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("giantctl: ")
	os.Exit(run(os.Args[1:]))
}

// run dispatches a subcommand and maps its outcome to the documented exit
// codes.
func run(args []string) int {
	if len(args) < 1 {
		usage(os.Stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "build":
		err = runBuild(rest)
	case "update":
		err = runUpdate(rest)
	case "shard":
		err = runShard(rest)
	case "convert":
		err = runConvert(rest)
	case "stats":
		err = runStats(rest)
	case "query":
		err = runQuery(rest)
	case "tag":
		err = runTag(rest)
	case "story":
		err = runStory(rest)
	case "checkpoint":
		err = runCheckpoint(rest)
	case "truncate":
		err = runTruncate(rest)
	case "help", "-h", "--help":
		usage(os.Stdout)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "giantctl: unknown subcommand %q\n", cmd)
		usage(os.Stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		// -h/-help on a subcommand: the flag set already printed its
		// usage; a help request is a success, not a usage error.
		return 0
	case isUsageError(err):
		log.Print(err)
		return 2
	default:
		log.Print(err)
		return 1
	}
}

// usageError marks failures that are the caller's fault (missing/invalid
// flags) so run can exit 2 instead of 1.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return usageError{fmt.Sprintf(format, args...)}
}

func isUsageError(err error) bool {
	var ue usageError
	return errors.As(err, &ue)
}

func usage(w *os.File) {
	fmt.Fprintln(w, `usage: giantctl <subcommand> [flags]

subcommands:
  build   build the ontology and save it           (-out ao.json [-format json|binary] [-tiny] [-shards K])
  shard   export per-shard projection files        (-in ao.json -shards K [-out-dir .] [-format json|binary])
  update  apply incremental update batches offline (-docs new.json [-in ao.json] [-out path] [-format json|binary] [-tiny] [-shards K])
  convert re-encode a snapshot or shard artifact   (-in path -out path [-format json|binary])
  stats   print node/edge statistics               (-in ao.json)
  query   conceptualize/rewrite a query            (-q "best ...")
  tag     tag a document                           (-title "..." [-content ...] [-entities a,b])
  story   print a story tree                       ([-seed "..."])
  checkpoint  force a replica to roll a checkpoint (-addr http://host:port)
  truncate    inspect or compact a shard delta log (-wal DIR -shard i/k [-below G] [-force])
  help    print this message

Artifacts are loadable in either format everywhere (-in flags, giantd -in):
loaders auto-detect by magic. JSON is the debug/interchange format; binary
(GIANTBIN) is the columnar format built for millisecond boot.

exit codes: 0 success, 1 runtime failure, 2 usage error`)
}

// newFlagSet builds a flag set that reports parse failures as usage
// errors instead of exiting on its own.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

func parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usagef("%s: %v", fs.Name(), err)
	}
	return nil
}

func buildSystem(tiny bool) (*giant.System, error) {
	return buildShardedSystem(tiny, 1)
}

func buildShardedSystem(tiny bool, shards int) (*giant.System, error) {
	cfg := giant.DefaultConfig()
	if tiny {
		cfg = giant.TinyConfig()
	}
	cfg.Shards = shards
	return giant.Build(cfg)
}

// formatFlag registers the shared -format flag on a flag set.
func formatFlag(fs *flag.FlagSet) *string {
	return fs.String("format", "json", "output format: json or binary")
}

// saveOntology writes the ontology to path in the requested format.
func saveOntology(o *ontology.Ontology, path string, f ontology.FileFormat) error {
	if f == ontology.FormatBinary {
		return o.Snapshot().SaveBinaryFile(path)
	}
	return o.SaveFile(path)
}

func runBuild(args []string) error {
	fs := newFlagSet("build")
	out := fs.String("out", "ao.json", "output path for the ontology")
	format := formatFlag(fs)
	tiny := fs.Bool("tiny", false, "use the tiny configuration")
	shards := fs.Int("shards", 1, "mine shard-parallel over K click-graph shards (output is identical for any K)")
	if err := parse(fs, args); err != nil {
		return err
	}
	ff, err := ontology.ParseFileFormat(*format)
	if err != nil {
		return usagef("build: %v", err)
	}
	sys, err := buildShardedSystem(*tiny, *shards)
	if err != nil {
		return err
	}
	if err := saveOntology(sys.Ontology, *out, ff); err != nil {
		return err
	}
	st := sys.Ontology.ComputeStats()
	fmt.Printf("built attention ontology: %v nodes, %v edges -> %s\n", st.NodesByType, st.EdgesByType, *out)
	return nil
}

// runUpdate is the offline incremental path: rebuild the deterministic
// models, adopt the -in ontology as the current generation, replay the
// -docs batches through delta mining, and save the updated generation.
func runUpdate(args []string) error {
	fs := newFlagSet("update")
	in := fs.String("in", "", "base ontology artifact, either format (default: the freshly built one)")
	docs := fs.String("docs", "", "update batch JSON: a delta.Batch object or an array of them (required)")
	out := fs.String("out", "ao-updated.json", "output path for the updated ontology")
	format := formatFlag(fs)
	tiny := fs.Bool("tiny", false, "use the tiny configuration (must match the build that produced -in)")
	shards := fs.Int("shards", 1, "apply batches shard-parallel over K shards (equivalent node/edge sets for any K)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *docs == "" {
		return usagef("update: -docs is required (a JSON delta.Batch or array of batches)")
	}
	ff, err := ontology.ParseFileFormat(*format)
	if err != nil {
		return usagef("update: %v", err)
	}
	batches, err := loadBatches(*docs)
	if err != nil {
		return err
	}
	sys, err := buildShardedSystem(*tiny, *shards)
	if err != nil {
		return err
	}
	if *in != "" {
		base, err := ontology.LoadFile(*in)
		if err != nil {
			return fmt.Errorf("update: load base ontology: %w", err)
		}
		sys.Ontology = base
	}
	for i, b := range batches {
		var d *delta.Delta
		if *shards > 1 {
			_, d, _, err = sys.IngestSharded(b)
		} else {
			_, d, err = sys.Ingest(b)
		}
		if err != nil {
			return fmt.Errorf("update: batch %d: %w", i, err)
		}
		fmt.Printf("batch %d applied: %s\n", i, d.Summary())
	}
	if err := saveOntology(sys.Ontology, *out, ff); err != nil {
		return err
	}
	st := sys.Ontology.ComputeStats()
	fmt.Printf("updated attention ontology: %v nodes, %v edges -> %s\n", st.NodesByType, st.EdgesByType, *out)
	return nil
}

// loadBatches reads either one delta.Batch or a JSON array of them.
func loadBatches(path string) ([]delta.Batch, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("update: read batches: %w", err)
	}
	trimmed := strings.TrimSpace(string(raw))
	if strings.HasPrefix(trimmed, "[") {
		var batches []delta.Batch
		if err := json.Unmarshal(raw, &batches); err != nil {
			return nil, usagef("update: %s is not a JSON array of delta batches: %v", path, err)
		}
		return batches, nil
	}
	var b delta.Batch
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, usagef("update: %s is not a JSON delta batch: %v", path, err)
	}
	return []delta.Batch{b}, nil
}

// runShard partitions a saved ontology K ways and exports one
// self-contained projection file per shard — the boot artifacts for
// per-shard giantd processes (giantd -shard i/K -in shard-i-of-K.json).
func runShard(args []string) error {
	fs := newFlagSet("shard")
	in := fs.String("in", "", "ontology artifact path, either format (from giantctl build -out)")
	shards := fs.Int("shards", 0, "shard count K (>= 1)")
	outDir := fs.String("out-dir", ".", "directory for the per-shard files")
	format := formatFlag(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef("shard: need -in <ontology artifact>")
	}
	if *shards < 1 {
		return usagef("shard: need -shards K (>= 1)")
	}
	ff, err := ontology.ParseFileFormat(*format)
	if err != nil {
		return usagef("shard: %v", err)
	}
	snap, err := ontology.LoadSnapshotFile(*in)
	if err != nil {
		return err
	}
	ss, err := ontology.ShardSnapshot(snap, *shards)
	if err != nil {
		return err
	}
	ext := "json"
	if ff == ontology.FormatBinary {
		ext = "bin"
	}
	for i := 0; i < ss.NumShards(); i++ {
		p := ss.Projection(i)
		path := fmt.Sprintf("%s/shard-%d-of-%d.%s", strings.TrimRight(*outDir, "/"), i, ss.NumShards(), ext)
		if err := p.SaveFileFormat(path, ff); err != nil {
			return err
		}
		fmt.Printf("shard %d/%d: %d home nodes (+%d ghosts), %d edges -> %s\n",
			i, ss.NumShards(), p.HomeCount, p.Snap.NodeCount()-p.HomeCount, p.Snap.EdgeCount(), path)
	}
	return nil
}

// runConvert re-encodes a snapshot or shard artifact between JSON and
// GIANTBIN. The input kind is auto-detected: shard projection files stay
// shard projections (identity and union-ID table preserved), plain
// snapshots stay snapshots. JSON→binary→JSON round-trips byte-identically.
func runConvert(args []string) error {
	fs := newFlagSet("convert")
	in := fs.String("in", "", "input artifact: snapshot or shard projection, either format (required)")
	out := fs.String("out", "", "output path (required)")
	format := fs.String("format", "binary", "output format: json or binary")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return usagef("convert: need -in <artifact> and -out <path>")
	}
	ff, err := ontology.ParseFileFormat(*format)
	if err != nil {
		return usagef("convert: %v", err)
	}
	p, err := ontology.LoadShardFile(*in)
	if err == nil {
		if err := p.SaveFileFormat(*out, ff); err != nil {
			return err
		}
		fmt.Printf("converted shard %d/%d: %d nodes, %d edges -> %s (%s)\n",
			p.Shard, p.NumShards, p.Snap.NodeCount(), p.Snap.EdgeCount(), *out, ff)
		return nil
	}
	if !errors.Is(err, ontology.ErrNotShardFile) {
		return fmt.Errorf("convert: load %s: %w", *in, err)
	}
	snap, err := ontology.LoadSnapshotFile(*in)
	if err != nil {
		return err
	}
	if err := snap.SaveFileFormat(*out, ff); err != nil {
		return err
	}
	fmt.Printf("converted snapshot: %d nodes, %d edges -> %s (%s)\n",
		snap.NodeCount(), snap.EdgeCount(), *out, ff)
	return nil
}

func runStats(args []string) error {
	fs := newFlagSet("stats")
	in := fs.String("in", "ao.json", "ontology JSON path")
	if err := parse(fs, args); err != nil {
		return err
	}
	o, err := ontology.LoadFile(*in)
	if err != nil {
		return err
	}
	st := o.ComputeStats()
	fmt.Println("nodes:")
	for t, n := range st.NodesByType {
		fmt.Printf("  %-10s %d\n", t, n)
	}
	fmt.Println("edges:")
	for t, n := range st.EdgesByType {
		fmt.Printf("  %-10s %d\n", t, n)
	}
	return nil
}

func runQuery(args []string) error {
	fs := newFlagSet("query")
	q := fs.String("q", "", "query text")
	tiny := fs.Bool("tiny", true, "use the tiny configuration")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *q == "" {
		return usagef("query: -q is required")
	}
	sys, err := buildSystem(*tiny)
	if err != nil {
		return err
	}
	a := sys.Query().Analyze(*q)
	fmt.Printf("query:   %s\n", a.Query)
	fmt.Printf("concept: %s\n", orNone(a.Concept))
	fmt.Printf("entity:  %s\n", orNone(a.Entity))
	for _, r := range a.Rewrites {
		fmt.Printf("rewrite: %s\n", r)
	}
	for _, r := range a.Recommendations {
		fmt.Printf("related: %s\n", r)
	}
	return nil
}

func runTag(args []string) error {
	fs := newFlagSet("tag")
	title := fs.String("title", "", "document title")
	content := fs.String("content", "", "document content")
	entities := fs.String("entities", "", "comma-separated key entities")
	tiny := fs.Bool("tiny", true, "use the tiny configuration")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *title == "" && *content == "" {
		return usagef("tag: need -title or -content")
	}
	sys, err := buildSystem(*tiny)
	if err != nil {
		return err
	}
	doc := &tagging.Document{Title: *title, Content: *content}
	if *entities != "" {
		doc.Entities = strings.Split(*entities, ",")
	}
	for _, t := range sys.ConceptTagger().TagConcepts(doc) {
		fmt.Printf("concept tag: %-30s score %.3f\n", t.Phrase, t.Score)
	}
	for _, t := range sys.EventTagger().TagEvents(doc) {
		fmt.Printf("%s tag: %-30s score %.3f\n", t.Type, t.Phrase, t.Score)
	}
	return nil
}

func runStory(args []string) error {
	fs := newFlagSet("story")
	seed := fs.String("seed", "", "seed event phrase (empty: first mined event)")
	tiny := fs.Bool("tiny", true, "use the tiny configuration")
	if err := parse(fs, args); err != nil {
		return err
	}
	sys, err := buildSystem(*tiny)
	if err != nil {
		return err
	}
	phrase := *seed
	if phrase == "" {
		for _, m := range sys.Mined {
			if m.IsEvent {
				phrase = m.Phrase
				break
			}
		}
	}
	tree, ok := sys.StoryTree(phrase)
	if !ok {
		return fmt.Errorf("story: seed event %q not found among mined events", phrase)
	}
	tree.Render(os.Stdout)
	return nil
}

// runCheckpoint forces a replica to roll a checkpoint artifact at its
// current applied position (POST /v1/checkpoint, synchronous) — the
// operator's lever for bounding catch-up before a planned restart or a
// log truncation.
func runCheckpoint(args []string) error {
	fs := newFlagSet("checkpoint")
	addr := fs.String("addr", "", "replica base URL, e.g. http://localhost:8081 (required)")
	timeout := fs.Duration("timeout", 3*time.Minute, "request timeout (the roll is synchronous)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *addr == "" {
		return usagef("checkpoint: need -addr <replica base URL>")
	}
	url := strings.TrimRight(*addr, "/") + "/v1/checkpoint"
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("checkpoint: %s answered %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Println(strings.TrimSpace(string(body)))
	return nil
}

// runTruncate inspects a shard's delta log (and its published checkpoint,
// if any) or, with -below, compacts it: records at or below the given
// generation are dropped by rewriting the log to the suffix. Run it only
// against a stopped tier or from the router's floor (giantrouter -compact
// automates the same cut); by default the cut refuses to pass the
// published checkpoint's covered position, because records above it are
// unrecoverable for a replica that has to rejoin from the artifact.
func runTruncate(args []string) error {
	fs := newFlagSet("truncate")
	dir := fs.String("wal", "", "delta-log directory (required)")
	shard := fs.String("shard", "", "shard identity i/k, e.g. 0/2 (required)")
	below := fs.Uint64("below", 0, "drop records at or below this log generation (0: just print positions)")
	force := fs.Bool("force", false, "allow a cut above the published checkpoint's covered position")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *dir == "" || *shard == "" {
		return usagef("truncate: need -wal <dir> and -shard i/k")
	}
	is, ks, found := strings.Cut(*shard, "/")
	i, err1 := strconv.Atoi(is)
	k, err2 := strconv.Atoi(ks)
	if !found || err1 != nil || err2 != nil || k < 1 || i < 0 || i >= k {
		return usagef("truncate: invalid -shard %q (want i/k, e.g. 0/2)", *shard)
	}
	path := filepath.Join(*dir, fmt.Sprintf("shard-%d-of-%d.wal", i, k))
	lg, err := wal.Open(path, i, k)
	if err != nil {
		return fmt.Errorf("truncate: %w", err)
	}
	defer lg.Close()
	var ckptGen uint64
	if meta, err := wal.ReadCheckpointMeta(wal.CheckpointPath(*dir, i, k)); err == nil && meta.Shard == i && meta.Shards == k {
		ckptGen = meta.WALGen
	}
	if *below == 0 {
		fmt.Printf("log %s: head %d, base %d, checkpoint covers %d\n", path, lg.Head(), lg.BaseGen(), ckptGen)
		return nil
	}
	if *below > ckptGen && !*force {
		return fmt.Errorf("truncate: cut %d passes the published checkpoint (covers %d): dropped records would be unrecoverable for a rejoining replica (re-run with -force, or roll a checkpoint first: giantctl checkpoint)", *below, ckptGen)
	}
	if err := lg.TruncateBelow(*below); err != nil {
		return fmt.Errorf("truncate: %w", err)
	}
	fmt.Printf("truncated %s below generation %d: head %d, base %d\n", path, *below, lg.Head(), lg.BaseGen())
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
