package giant

// Checkpointed host state. A replica that hydrates a checkpoint instead of
// replaying its whole delta log needs two artifacts: the ontology snapshot
// (a GIANTBIN blob, handled by internal/ontology) and everything the delta
// replay accumulated OUTSIDE the ontology — post-seed corpus documents,
// the post-seed click stream, the mined-attention bookkeeping and the
// concept-context map. CheckpointState serializes that second half;
// RestoreCheckpoint replays it onto a freshly built System.
//
// The seed build is deterministic (same Config => same world, corpus,
// trained models), so the blob carries only the suffix past the seed
// high-water marks captured at the end of BuildUpToDay. Click-graph state
// is not serialized at all: RestoreCheckpoint re-feeds the suffix records
// through Click.Add in their original log order, which reproduces the
// graph a continuous process would hold (Add is order-dependent but the
// order is preserved exactly).

import (
	"encoding/json"
	"fmt"

	"giant/internal/core"
	"giant/internal/ontology"
	"giant/internal/synth"
)

// checkpointState is the JSON schema of the opaque state blob stored in a
// wal.Checkpoint next to the GIANTBIN ontology snapshot.
type checkpointState struct {
	SeedDocs int                 `json:"seed_docs"`
	SeedRecs int                 `json:"seed_recs"`
	Docs     []synth.Doc         `json:"docs"`    // corpus suffix past SeedDocs
	Records  []synth.Record      `json:"records"` // click stream suffix past SeedRecs
	Mined    []core.Mined        `json:"mined"`   // full mined-attention set
	Context  map[string][]string `json:"context"` // full concept-context map
}

// CheckpointState serializes the system's post-seed delta state — the
// opaque blob half of a serve-tier checkpoint (the ontology snapshot
// travels separately; pair this with System.Snapshot taken under the same
// quiescence). The caller must ensure no Ingest runs concurrently if the
// blob and the snapshot must describe the same generation.
func (sys *System) CheckpointState() ([]byte, error) {
	sys.ingestMu.Lock()
	defer sys.ingestMu.Unlock()
	if sys.seedDocs > len(sys.Log.Docs) || sys.seedRecs > len(sys.Log.Records) {
		return nil, fmt.Errorf("giant: checkpoint: seed baseline (%d docs, %d records) exceeds current log (%d, %d)",
			sys.seedDocs, sys.seedRecs, len(sys.Log.Docs), len(sys.Log.Records))
	}
	st := checkpointState{
		SeedDocs: sys.seedDocs,
		SeedRecs: sys.seedRecs,
		Docs:     sys.Log.Docs[sys.seedDocs:],
		Records:  sys.Log.Records[sys.seedRecs:],
		Mined:    sys.Mined,
		Context:  sys.conceptContext,
	}
	return json.Marshal(&st)
}

// RestoreCheckpoint replays a CheckpointState blob plus its paired
// ontology snapshot onto this system, which must be a fresh build of the
// SAME Config (same seed baseline, nothing ingested yet). After it
// returns, the system is field-equivalent to one that built the seed and
// then ingested every batch the checkpoint covers: the corpus and click
// stream carry the suffix, the click graph has absorbed the suffix
// records in original order, Mined and the concept contexts are the
// checkpoint's, and the working ontology is the snapshot's generation.
func (sys *System) RestoreCheckpoint(snap *ontology.Snapshot, state []byte) error {
	sys.ingestMu.Lock()
	defer sys.ingestMu.Unlock()

	var st checkpointState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("giant: restore checkpoint: decode state: %w", err)
	}
	if st.SeedDocs != sys.seedDocs || st.SeedRecs != sys.seedRecs {
		return fmt.Errorf("giant: restore checkpoint: seed baseline mismatch: checkpoint built on %d docs/%d records, this build has %d/%d (differing build Config?)",
			st.SeedDocs, st.SeedRecs, sys.seedDocs, sys.seedRecs)
	}
	if len(sys.Log.Docs) != sys.seedDocs || len(sys.Log.Records) != sys.seedRecs {
		return fmt.Errorf("giant: restore checkpoint: system already past the seed build (%d docs/%d records vs baseline %d/%d); restore requires a fresh build",
			len(sys.Log.Docs), len(sys.Log.Records), sys.seedDocs, sys.seedRecs)
	}

	// Validate the whole suffix before mutating anything, mirroring the
	// batch-ingest all-or-nothing rule: a corrupt blob must not leave the
	// corpus or the click graph half-restored.
	nDocs := sys.seedDocs + len(st.Docs)
	for i := range st.Docs {
		if st.Docs[i].ID != sys.seedDocs+i {
			return fmt.Errorf("giant: restore checkpoint: doc suffix is not contiguous: position %d has ID %d (want %d)",
				i, st.Docs[i].ID, sys.seedDocs+i)
		}
	}
	for i := range st.Records {
		if id := st.Records[i].DocID; id < 0 || id >= nDocs {
			return fmt.Errorf("giant: restore checkpoint: record %d references unknown doc %d (corpus has %d)", i, id, nDocs)
		}
	}
	adopted, err := ontology.FromSnapshot(snap)
	if err != nil {
		return fmt.Errorf("giant: restore checkpoint: adopt snapshot: %w", err)
	}

	sys.Log.Docs = append(sys.Log.Docs, st.Docs...)
	for _, r := range st.Records {
		sys.Click.Add(r.Query, r.DocID, sys.Log.Docs[r.DocID].Title, r.Clicks, r.Day)
		sys.Log.Records = append(sys.Log.Records, r)
	}
	sys.Ontology = adopted
	sys.Mined = st.Mined
	sys.conceptContext = st.Context
	if k := sys.Cfg.shards(); k > 1 {
		// The suffix clicks may have bridged components; recompute the
		// assignment exactly as IngestSharded would have.
		sys.Sharding = sys.Click.ShardAssignment(k)
	}
	// Any cached sharded projection predates the restored ontology.
	sys.sharded = nil
	sys.shardedFrom = nil
	return nil
}
