package giant

// Tests for the host-state checkpoint seam (checkpoint.go): restoring a
// CheckpointState blob + ontology snapshot onto a fresh seed build must
// reproduce a continuously ingesting system exactly — same corpus, same
// click graph (proved by re-mining), same mined bookkeeping, same
// ontology bytes — and stay convergent through further ingests.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"giant/internal/delta"
)

// batchForDay slices the reference corpus's day-d click records into an
// ingest batch, as the incremental-equivalence tests do.
func batchForDay(full *System, day int) delta.Batch {
	batch := delta.Batch{Day: day}
	for _, r := range full.Log.Records {
		if r.Day == day {
			batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: r.Clicks, Day: r.Day})
		}
	}
	return batch
}

// assertSystemsEqual compares every field RestoreCheckpoint claims to
// reproduce. The click graph has no direct equality; re-mining every seed
// through it is the strongest observable proof the graphs match.
func assertSystemsEqual(t *testing.T, stage string, cont, restored *System) {
	t.Helper()
	if !reflect.DeepEqual(cont.Log.Docs, restored.Log.Docs) {
		t.Fatalf("%s: corpora diverge (%d vs %d docs)", stage, len(cont.Log.Docs), len(restored.Log.Docs))
	}
	if !reflect.DeepEqual(cont.Log.Records, restored.Log.Records) {
		t.Fatalf("%s: click streams diverge (%d vs %d records)", stage, len(cont.Log.Records), len(restored.Log.Records))
	}
	if !reflect.DeepEqual(cont.Mined, restored.Mined) {
		t.Fatalf("%s: mined sets diverge (%d vs %d)", stage, len(cont.Mined), len(restored.Mined))
	}
	if !reflect.DeepEqual(cont.ConceptContext(), restored.ConceptContext()) {
		t.Fatalf("%s: concept contexts diverge", stage)
	}
	var a, b bytes.Buffer
	if err := cont.Snapshot().WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := restored.Snapshot().WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("%s: ontology snapshots are not byte-identical (%d vs %d bytes)", stage, a.Len(), b.Len())
	}
	contMined := cont.Miner.MineSeeds(cont.Click, cont.Click.Queries())
	restMined := restored.Miner.MineSeeds(restored.Click, restored.Click.Queries())
	if !reflect.DeepEqual(contMined, restMined) {
		t.Fatalf("%s: re-mining diverges — the click graphs differ", stage)
	}
}

func TestCheckpointRestoreEquivalence(t *testing.T) {
	cfg := equivalenceConfig()
	full := fullSystem(t, cfg)
	maxDay := maxRecordDay(full)
	splitDay := maxDay - 3
	if splitDay < 0 {
		splitDay = 0
	}
	mid := splitDay + (maxDay-splitDay+1)/2

	cont, err := BuildUpToDay(cfg, splitDay)
	if err != nil {
		t.Fatalf("BuildUpToDay: %v", err)
	}
	for day := splitDay + 1; day <= mid; day++ {
		if _, _, err := cont.Ingest(batchForDay(full, day)); err != nil {
			t.Fatalf("Ingest day %d: %v", day, err)
		}
	}

	state, err := cont.CheckpointState()
	if err != nil {
		t.Fatalf("CheckpointState: %v", err)
	}
	snap := cont.Snapshot()

	restored, err := BuildUpToDay(cfg, splitDay)
	if err != nil {
		t.Fatalf("BuildUpToDay (restore target): %v", err)
	}
	if err := restored.RestoreCheckpoint(snap, state); err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	assertSystemsEqual(t, "immediately after restore", cont, restored)

	// Both systems keep ingesting the tail; every generation must match.
	for day := mid + 1; day <= maxDay; day++ {
		s1, d1, err := cont.Ingest(batchForDay(full, day))
		if err != nil {
			t.Fatalf("continuous Ingest day %d: %v", day, err)
		}
		s2, d2, err := restored.Ingest(batchForDay(full, day))
		if err != nil {
			t.Fatalf("restored Ingest day %d: %v", day, err)
		}
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("day %d: deltas diverge:\ncontinuous: %s\nrestored:   %s", day, d1.Summary(), d2.Summary())
		}
		var a, b bytes.Buffer
		if err := s1.WriteBinary(&a); err != nil {
			t.Fatal(err)
		}
		if err := s2.WriteBinary(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("day %d: ingested snapshots are not byte-identical", day)
		}
	}
	assertSystemsEqual(t, "after post-restore ingests", cont, restored)
}

// TestCheckpointRestoreRejects pins the all-or-nothing restore contract:
// every rejected restore leaves the target system untouched.
func TestCheckpointRestoreRejects(t *testing.T) {
	cfg := equivalenceConfig()
	full := fullSystem(t, cfg)
	maxDay := maxRecordDay(full)
	splitDay := maxDay - 2
	if splitDay < 0 {
		splitDay = 0
	}

	donor, err := BuildUpToDay(cfg, splitDay)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := donor.Ingest(batchForDay(full, splitDay+1)); err != nil {
		t.Fatal(err)
	}
	state, err := donor.CheckpointState()
	if err != nil {
		t.Fatal(err)
	}
	snap := donor.Snapshot()

	fresh := func() *System {
		sys, err := BuildUpToDay(cfg, splitDay)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	assertUntouched := func(sys *System, nDocs, nRecs int) {
		t.Helper()
		if len(sys.Log.Docs) != nDocs || len(sys.Log.Records) != nRecs {
			t.Fatalf("rejected restore mutated the system: %d docs/%d records, want %d/%d",
				len(sys.Log.Docs), len(sys.Log.Records), nDocs, nRecs)
		}
	}

	t.Run("garbage state blob", func(t *testing.T) {
		sys := fresh()
		nd, nr := len(sys.Log.Docs), len(sys.Log.Records)
		if err := sys.RestoreCheckpoint(snap, []byte("{nope")); err == nil {
			t.Fatal("restore accepted a garbage state blob")
		}
		assertUntouched(sys, nd, nr)
	})

	t.Run("not a fresh build", func(t *testing.T) {
		sys := fresh()
		if _, _, err := sys.Ingest(batchForDay(full, splitDay+1)); err != nil {
			t.Fatal(err)
		}
		if err := sys.RestoreCheckpoint(snap, state); err == nil {
			t.Fatal("restore accepted a system that had already ingested")
		}
	})

	t.Run("baseline mismatch", func(t *testing.T) {
		sys := fresh()
		nd, nr := len(sys.Log.Docs), len(sys.Log.Records)
		bad := bytes.Replace(state,
			[]byte(fmt.Sprintf(`"seed_recs":%d`, sys.seedRecs)),
			[]byte(fmt.Sprintf(`"seed_recs":%d`, sys.seedRecs+1)), 1)
		if bytes.Equal(bad, state) {
			t.Fatal("test setup: seed_recs marker not found in state blob")
		}
		if err := sys.RestoreCheckpoint(snap, bad); err == nil {
			t.Fatal("restore accepted a mismatched seed baseline")
		}
		assertUntouched(sys, nd, nr)
	})

	t.Run("dangling record reference", func(t *testing.T) {
		sys := fresh()
		nd, nr := len(sys.Log.Docs), len(sys.Log.Records)
		bad := bytes.Replace(state, []byte(`"DocID":`), []byte(`"DocID":999`), 1)
		if bytes.Equal(bad, state) {
			t.Skip("no suffix records in this configuration")
		}
		if err := sys.RestoreCheckpoint(snap, bad); err == nil {
			t.Fatal("restore accepted a record referencing an unknown doc")
		}
		assertUntouched(sys, nd, nr)
	})
}
