package linking

import (
	"testing"
)

func TestAttentionCategoryEdges(t *testing.T) {
	clicks := map[string]map[int]int{
		"economy cars": {1: 8, 2: 2}, // P(1)=0.8, P(2)=0.2
		"weird phrase": {1: 1, 2: 1}, // both 0.5 > 0.3
	}
	edges := AttentionCategoryEdges(clicks, 0.3)
	got := map[string][]int{}
	for _, e := range edges {
		got[e.Phrase] = append(got[e.Phrase], e.Category)
	}
	if len(got["economy cars"]) != 1 || got["economy cars"][0] != 1 {
		t.Fatalf("economy cars edges = %v", got["economy cars"])
	}
	if len(got["weird phrase"]) != 2 {
		t.Fatalf("weird phrase edges = %v", got["weird phrase"])
	}
}

func TestSuffixIsAEdges(t *testing.T) {
	concepts := []string{"animated films", "famous animated films", "films"}
	edges := SuffixIsAEdges(concepts)
	want := map[PhrasePair]bool{
		{Parent: "animated films", Child: "famous animated films"}: true,
		{Parent: "films", Child: "famous animated films"}:          true,
		{Parent: "films", Child: "animated films"}:                 true,
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %+v", edges)
	}
	for _, e := range edges {
		if !want[e] {
			t.Fatalf("unexpected edge %+v", e)
		}
	}
}

func TestContainmentIsAEdges(t *testing.T) {
	phrases := []string{
		"have a concert",
		"jay chou have a concert",
	}
	edges := ContainmentIsAEdges(phrases)
	if len(edges) != 1 {
		t.Fatalf("edges = %+v", edges)
	}
	if edges[0].Parent != "have a concert" || edges[0].Child != "jay chou have a concert" {
		t.Fatalf("edge = %+v", edges[0])
	}
}

func TestConceptTopicInvolveEdges(t *testing.T) {
	edges := ConceptTopicInvolveEdges(
		[]string{"singer", "cellphone"},
		[]string{"singer hold concert"},
	)
	if len(edges) != 1 || edges[0].Child != "singer" {
		t.Fatalf("edges = %+v", edges)
	}
}

func TestCEFeatureExtraction(t *testing.T) {
	pos := CEExample{
		Concept:          "economy cars",
		Entity:           "honda civic",
		Context:          "the honda civic is a economy car that many families love",
		ConsecutiveQuery: true,
		CoClicks:         3,
	}
	f := pos.Features()
	if len(f) != ceFeatureDim {
		t.Fatalf("feature dim = %d", len(f))
	}
	if f[0] == 0 {
		t.Fatal("mention count feature should fire")
	}
	if f[2] != 1 {
		t.Fatal("'is a' pattern feature should fire")
	}
	if f[4] != 1 {
		t.Fatal("consecutive-query feature should fire")
	}
	neg := CEExample{Concept: "economy cars", Entity: "random name", Context: "totally unrelated text"}
	nf := neg.Features()
	if nf[0] != 0 || nf[2] != 0 {
		t.Fatalf("negative features fired: %v", nf)
	}
}

func TestCEClassifierLearnsSeparation(t *testing.T) {
	var positives []CEExample
	for i := 0; i < 30; i++ {
		positives = append(positives, CEExample{
			Concept:          "economy cars",
			Entity:           "honda civic",
			Context:          "the honda civic is a economy car worth buying among economy cars",
			ConsecutiveQuery: i%2 == 0,
			CoClicks:         2,
		})
	}
	dataset := BuildCEDataset(positives, []string{"random brand", "other thing"}, 5)
	if len(dataset) != 60 {
		t.Fatalf("dataset size = %d", len(dataset))
	}
	clf := TrainCEClassifier(dataset, 8, 0.3, 6)
	pos := &dataset[0]
	var negIdx int
	for i := range dataset {
		if !dataset[i].Label {
			negIdx = i
			break
		}
	}
	neg := &dataset[negIdx]
	if !clf.Predict(pos) {
		t.Fatalf("positive scored %v", clf.Score(pos))
	}
	if clf.Score(pos) <= clf.Score(neg) {
		t.Fatalf("positive (%v) should outscore negative (%v)", clf.Score(pos), clf.Score(neg))
	}
}

func TestGBDTFitsXORishData(t *testing.T) {
	// Single-feature threshold data: y = 1 iff x > 0.5.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 40; i++ {
		v := float64(i) / 40
		xs = append(xs, []float64{v})
		if v > 0.5 {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}
	g := TrainGBDT(xs, ys, 15, 0.5)
	if g.Raw([]float64{0.9}) <= g.Raw([]float64{0.1}) {
		t.Fatal("GBDT failed to learn threshold")
	}
}

func TestEntityEmbedderSeparates(t *testing.T) {
	e := NewEntityEmbedder(8)
	var pairs [][2]string
	// Two tight clusters: a0..a3 co-occur, b0..b3 co-occur.
	names := []string{"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			pairs = append(pairs, [2]string{names[i], names[j]})
			pairs = append(pairs, [2]string{names[4+i], names[4+j]})
		}
	}
	// Repeat to give training signal.
	all := append([][2]string{}, pairs...)
	for i := 0; i < 4; i++ {
		all = append(all, pairs...)
	}
	e.Train(all)
	if e.Distance("a0", "a1") >= e.Distance("a0", "b0") {
		t.Fatalf("intra-cluster %v >= inter-cluster %v", e.Distance("a0", "a1"), e.Distance("a0", "b0"))
	}
	if !e.Correlated("a0", "a1") {
		t.Fatalf("co-occurring pair not correlated (d=%v)", e.Distance("a0", "a1"))
	}
	cors := e.CorrelatePairs([][2]string{{"a0", "a1"}, {"a0", "b3"}})
	for _, p := range cors {
		if p[0] == "a0" && p[1] == "b3" {
			t.Fatal("cross-cluster pair should not correlate")
		}
	}
	if v := e.Vector("a0"); len(v) != 8 {
		t.Fatalf("vector dim = %d", len(v))
	}
	if d := e.Distance("a0", "missing"); !isInf(d) {
		t.Fatalf("unknown entity distance = %v", d)
	}
}

func isInf(f float64) bool { return f > 1e300 }
