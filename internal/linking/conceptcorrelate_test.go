package linking

import "testing"

func TestConceptCorrelateEdges(t *testing.T) {
	instances := map[string][]string{
		"economy cars":        {"civic", "corolla", "focus"},
		"fuel-efficient cars": {"civic", "corolla", "prius"},
		"luxury watches":      {"rolex"},
	}
	edges := ConceptCorrelateEdges(instances, 0.4)
	if len(edges) != 1 {
		t.Fatalf("edges = %+v", edges)
	}
	if edges[0].Parent != "economy cars" || edges[0].Child != "fuel-efficient cars" {
		t.Fatalf("edge = %+v", edges[0])
	}
	// Higher threshold filters it out.
	if got := ConceptCorrelateEdges(instances, 0.9); len(got) != 0 {
		t.Fatalf("threshold ignored: %+v", got)
	}
	// Empty instance sets never correlate.
	if got := ConceptCorrelateEdges(map[string][]string{"a": {}, "b": {}}, 0.0); len(got) != 0 {
		t.Fatalf("empty sets correlated: %+v", got)
	}
}

func TestJaccard(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "z": true}
	if got := jaccard(a, b); got != 1.0/3.0 {
		t.Fatalf("jaccard = %v", got)
	}
	if jaccard(a, map[string]bool{}) != 0 {
		t.Fatal("empty set jaccard")
	}
}
