package linking

import "math"

// GBDT is gradient boosting with decision stumps on a logistic loss — the
// lightweight stand-in for the paper's GBDT concept-entity classifier.
// Each round fits a one-split regression stump to the negative gradient.
type GBDT struct {
	Bias   float64
	Stumps []Stump
	Shrink float64
}

// Stump is a single-feature threshold split with leaf values.
type Stump struct {
	Feature     int
	Threshold   float64
	Left, Right float64 // value when f < threshold / otherwise
}

// Raw returns the additive raw score (pre-sigmoid).
func (g *GBDT) Raw(f []float64) float64 {
	s := g.Bias
	for _, st := range g.Stumps {
		if f[st.Feature] < st.Threshold {
			s += g.Shrink * st.Left
		} else {
			s += g.Shrink * st.Right
		}
	}
	return s
}

// TrainGBDT fits `rounds` stumps with the given shrinkage on features X and
// {0,1} labels y using logistic loss.
func TrainGBDT(x [][]float64, y []float64, rounds int, shrink float64) *GBDT {
	n := len(x)
	g := &GBDT{Shrink: shrink}
	if n == 0 {
		return g
	}
	// Initialize bias at log-odds of the base rate.
	pos := 0.0
	for _, v := range y {
		pos += v
	}
	p := math.Min(math.Max(pos/float64(n), 1e-3), 1-1e-3)
	g.Bias = math.Log(p / (1 - p))

	raw := make([]float64, n)
	for i := range raw {
		raw[i] = g.Bias
	}
	dim := len(x[0])
	resid := make([]float64, n)
	for r := 0; r < rounds; r++ {
		// Negative gradient of logistic loss: y - sigmoid(raw).
		for i := range resid {
			resid[i] = y[i] - 1/(1+math.Exp(-raw[i]))
		}
		st, ok := fitStump(x, resid, dim)
		if !ok {
			break
		}
		g.Stumps = append(g.Stumps, st)
		for i := range raw {
			if x[i][st.Feature] < st.Threshold {
				raw[i] += shrink * st.Left
			} else {
				raw[i] += shrink * st.Right
			}
		}
	}
	return g
}

// fitStump finds the (feature, threshold) split minimizing squared error of
// the residuals, with leaf values set to residual means.
func fitStump(x [][]float64, resid []float64, dim int) (Stump, bool) {
	n := len(x)
	bestGain := -1.0
	var best Stump
	total := 0.0
	for _, r := range resid {
		total += r
	}
	for f := 0; f < dim; f++ {
		// Candidate thresholds: unique midpoints over a coarse grid.
		vals := map[float64]bool{}
		for i := 0; i < n; i++ {
			vals[x[i][f]] = true
		}
		if len(vals) < 2 {
			continue
		}
		for t := range vals {
			var sumL, cntL float64
			for i := 0; i < n; i++ {
				if x[i][f] < t {
					sumL += resid[i]
					cntL++
				}
			}
			cntR := float64(n) - cntL
			if cntL == 0 || cntR == 0 {
				continue
			}
			sumR := total - sumL
			gain := sumL*sumL/cntL + sumR*sumR/cntR
			if gain > bestGain {
				bestGain = gain
				best = Stump{Feature: f, Threshold: t, Left: sumL / cntL, Right: sumR / cntR}
			}
		}
	}
	return best, bestGain > 0
}
