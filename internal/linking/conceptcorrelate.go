package linking

import "sort"

// ConceptCorrelateEdges applies the correlate-discovery approach to concept
// nodes — §3.2 notes "the same approach for correlate relationship discovery
// can be applied to other types of nodes such as concepts. Currently, we
// only constructed such relationships between entities"; this implements
// that extension. Two concepts correlate when they share enough entity
// instances (Jaccard over their ground-truth/linked instance sets), the
// co-click analogue at concept granularity.
func ConceptCorrelateEdges(instances map[string][]string, minJaccard float64) []PhrasePair {
	concepts := make([]string, 0, len(instances))
	for c := range instances {
		concepts = append(concepts, c)
	}
	sort.Strings(concepts)
	sets := make([]map[string]bool, len(concepts))
	for i, c := range concepts {
		s := make(map[string]bool, len(instances[c]))
		for _, e := range instances[c] {
			s[e] = true
		}
		sets[i] = s
	}
	var out []PhrasePair
	for i := 0; i < len(concepts); i++ {
		for j := i + 1; j < len(concepts); j++ {
			if len(sets[i]) == 0 || len(sets[j]) == 0 {
				continue
			}
			if jaccard(sets[i], sets[j]) >= minJaccard {
				out = append(out, PhrasePair{Parent: concepts[i], Child: concepts[j]})
			}
		}
	}
	return out
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
