package linking

import (
	"math"
	"math/rand"
	"strings"

	"giant/internal/nlp"
	"giant/internal/nn"
)

// CEExample is one (concept, entity, document-context) instance for the
// isA classifier.
type CEExample struct {
	Concept string
	Entity  string
	Context string // document body the entity was observed in
	// ConsecutiveQuery is signal (i) of Fig. 4: the entity was queried right
	// after the concept by the same user.
	ConsecutiveQuery bool
	CoClicks         int
	Label            bool
}

// ceFeatureDim is the feature width of the concept-entity classifier.
const ceFeatureDim = 7

// Features extracts the manual feature vector used by both classifiers:
// entity mention count, concept-token coverage near the mention, an
// "X is a <concept>" pattern indicator, minimal token distance between
// entity and concept tokens, the consecutive-query flag, co-click count
// (log-scaled) and a bias term.
func (e *CEExample) Features() []float64 {
	ctx := nlp.Tokenize(e.Context)
	entToks := nlp.Tokenize(e.Entity)
	conToks := nlp.Tokenize(e.Concept)

	mentions := countSubseq(ctx, entToks)
	// Concept token coverage in context.
	ctxSet := map[string]bool{}
	for _, t := range ctx {
		ctxSet[t] = true
	}
	cov := 0.0
	for _, t := range conToks {
		if ctxSet[t] {
			cov++
		}
	}
	if len(conToks) > 0 {
		cov /= float64(len(conToks))
	}
	// "is a" pattern: entity tokens followed within 6 tokens by "is a" and a
	// concept token.
	isaPat := 0.0
	for i := 0; i+1 < len(ctx); i++ {
		if ctx[i] == "is" && ctx[i+1] == "a" {
			before := window(ctx, i-6, i)
			after := window(ctx, i+2, i+8)
			if containsAny(before, entToks) && containsAny(after, conToks) {
				isaPat = 1
				break
			}
		}
	}
	dist := minTokenDistance(ctx, entToks, conToks)
	distFeat := 0.0
	if dist >= 0 {
		distFeat = 1 / (1 + float64(dist))
	}
	consec := 0.0
	if e.ConsecutiveQuery {
		consec = 1
	}
	return []float64{
		math.Min(float64(mentions), 3) / 3,
		cov,
		isaPat,
		distFeat,
		consec,
		math.Log1p(float64(e.CoClicks)) / 5,
		1, // bias
	}
}

// CEClassifier is the concept-entity isA relationship classifier: logistic
// regression over the manual features, optionally stacked with a
// gradient-boosted-stumps score (the paper's GBDT option).
type CEClassifier struct {
	w    []float64
	gbdt *GBDT
}

// TrainCEClassifier fits logistic regression (SGD) and a GBDT on the
// labelled examples.
func TrainCEClassifier(examples []CEExample, epochs int, lr float64, seed int64) *CEClassifier {
	rng := rand.New(rand.NewSource(seed))
	c := &CEClassifier{w: make([]float64, ceFeatureDim)}
	feats := make([][]float64, len(examples))
	labels := make([]float64, len(examples))
	for i := range examples {
		feats[i] = examples[i].Features()
		if examples[i].Label {
			labels[i] = 1
		}
	}
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			z := nn.Dot(c.w, feats[i])
			p := nn.Sigmoid(z)
			g := p - labels[i]
			for j, f := range feats[i] {
				c.w[j] -= lr * g * f
			}
		}
	}
	c.gbdt = TrainGBDT(feats, labels, 20, 0.3)
	return c
}

// Score returns the blended probability that the pair has an isA relation.
func (c *CEClassifier) Score(e *CEExample) float64 {
	f := e.Features()
	lr := nn.Sigmoid(nn.Dot(c.w, f))
	gb := nn.Sigmoid(c.gbdt.Raw(f))
	return (lr + gb) / 2
}

// Predict applies a 0.5 threshold.
func (c *CEClassifier) Predict(e *CEExample) bool { return c.Score(e) >= 0.5 }

// BuildCEDataset performs Fig. 4's automatic dataset construction:
// positives are (concept, entity) pairs observed as consecutive queries
// whose clicked document mentions the entity; negatives take entities of the
// same category and insert them at random positions in the document.
func BuildCEDataset(positives []CEExample, distractorEntities []string, seed int64) []CEExample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]CEExample, 0, 2*len(positives))
	for _, p := range positives {
		p.Label = true
		out = append(out, p)
		if len(distractorEntities) == 0 {
			continue
		}
		neg := p
		neg.Label = false
		neg.Entity = distractorEntities[rng.Intn(len(distractorEntities))]
		neg.ConsecutiveQuery = false
		neg.CoClicks = 0
		neg.Context = insertRandom(p.Context, neg.Entity, rng)
		out = append(out, neg)
	}
	return out
}

func insertRandom(content, entity string, rng *rand.Rand) string {
	toks := nlp.Tokenize(content)
	pos := 0
	if len(toks) > 0 {
		pos = rng.Intn(len(toks) + 1)
	}
	var b []string
	b = append(b, toks[:pos]...)
	b = append(b, nlp.Tokenize(entity)...)
	b = append(b, toks[pos:]...)
	return strings.Join(b, " ")
}

func countSubseq(hay, needle []string) int {
	if len(needle) == 0 {
		return 0
	}
	n := 0
	for i := 0; i+len(needle) <= len(hay); i++ {
		ok := true
		for j, t := range needle {
			if hay[i+j] != t {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

func window(xs []string, lo, hi int) []string {
	if lo < 0 {
		lo = 0
	}
	if hi > len(xs) {
		hi = len(xs)
	}
	if lo >= hi {
		return nil
	}
	return xs[lo:hi]
}

func containsAny(hay []string, needles []string) bool {
	set := map[string]bool{}
	for _, h := range hay {
		set[h] = true
	}
	for _, n := range needles {
		if set[n] {
			return true
		}
	}
	return false
}

func minTokenDistance(ctx, a, b []string) int {
	var ai, bi []int
	aset := map[string]bool{}
	for _, t := range a {
		aset[t] = true
	}
	bset := map[string]bool{}
	for _, t := range b {
		bset[t] = true
	}
	for i, t := range ctx {
		if aset[t] {
			ai = append(ai, i)
		}
		if bset[t] {
			bi = append(bi, i)
		}
	}
	if len(ai) == 0 || len(bi) == 0 {
		return -1
	}
	best := len(ctx)
	for _, x := range ai {
		for _, y := range bi {
			d := x - y
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
			}
		}
	}
	return best
}
