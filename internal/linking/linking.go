// Package linking implements §3.2, "Linking User Attentions": the
// action-driven strategies that connect the mined attention nodes into the
// ontology — attention-category isA edges from click co-occurrence,
// attention-attention isA/involve edges from suffix/pattern structure, a
// learned concept-entity isA classifier (Fig. 4's automatic dataset
// construction plus logistic regression and gradient-boosted stumps), and
// entity-entity correlate edges from hinge-loss co-occurrence embeddings.
package linking

import (
	"sort"
	"strings"

	"giant/internal/nlp"
)

// CategoryEdge links an attention phrase to a category (isA).
type CategoryEdge struct {
	Phrase   string
	Category int
	P        float64 // P(g|p)
}

// AttentionCategoryEdges estimates P(g|p) = n_p^g / n_p from per-phrase
// clicked-document category counts and keeps pairs above delta (paper
// δg = 0.3).
func AttentionCategoryEdges(clicksByCategory map[string]map[int]int, delta float64) []CategoryEdge {
	var out []CategoryEdge
	phrases := make([]string, 0, len(clicksByCategory))
	for p := range clicksByCategory {
		phrases = append(phrases, p)
	}
	sort.Strings(phrases)
	for _, p := range phrases {
		cats := clicksByCategory[p]
		total := 0
		for _, n := range cats {
			total += n
		}
		if total == 0 {
			continue
		}
		catIDs := make([]int, 0, len(cats))
		for g := range cats {
			catIDs = append(catIDs, g)
		}
		sort.Ints(catIDs)
		for _, g := range catIDs {
			if prob := float64(cats[g]) / float64(total); prob > delta {
				out = append(out, CategoryEdge{Phrase: p, Category: g, P: prob})
			}
		}
	}
	return out
}

// PhrasePair is a directed phrase-to-phrase edge proposal.
type PhrasePair struct {
	Parent, Child string
}

// SuffixIsAEdges links concept pairs where one concept is a strict token
// suffix of the other ("animated films" isA-parent of "famous animated
// films").
func SuffixIsAEdges(concepts []string) []PhrasePair {
	var out []PhrasePair
	bySuffix := map[string][]string{}
	set := map[string]bool{}
	for _, c := range concepts {
		set[c] = true
	}
	for _, c := range concepts {
		toks := nlp.Tokenize(c)
		for start := 1; start < len(toks); start++ {
			suf := strings.Join(toks[start:], " ")
			if set[suf] && suf != c {
				bySuffix[suf] = append(bySuffix[suf], c)
			}
		}
	}
	parents := make([]string, 0, len(bySuffix))
	for p := range bySuffix {
		parents = append(parents, p)
	}
	sort.Strings(parents)
	for _, p := range parents {
		children := bySuffix[p]
		sort.Strings(children)
		for _, c := range children {
			out = append(out, PhrasePair{Parent: p, Child: c})
		}
	}
	return out
}

// ContainmentIsAEdges links event/topic pairs where the shorter phrase's
// non-stop tokens are a subset of the longer's (§3.2: "if a topic/event
// doesn't contain an element of another topic/event phrase, it also
// indicates that they have isA relationship" — e.g. "Jay Chou will have a
// concert" isA "have a concert").
func ContainmentIsAEdges(phrases []string) []PhrasePair {
	type tokset struct {
		phrase string
		toks   map[string]bool
		n      int
	}
	sets := make([]tokset, 0, len(phrases))
	for _, p := range phrases {
		ts := map[string]bool{}
		for _, t := range nlp.Tokenize(p) {
			if !nlp.IsStopWord(t) {
				ts[t] = true
			}
		}
		sets = append(sets, tokset{p, ts, len(ts)})
	}
	var out []PhrasePair
	for i := range sets {
		for j := range sets {
			if i == j || sets[i].n == 0 || sets[i].n >= sets[j].n {
				continue
			}
			sub := true
			for t := range sets[i].toks {
				if !sets[j].toks[t] {
					sub = false
					break
				}
			}
			if sub {
				out = append(out, PhrasePair{Parent: sets[i].phrase, Child: sets[j].phrase})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Parent != out[j].Parent {
			return out[i].Parent < out[j].Parent
		}
		return out[i].Child < out[j].Child
	})
	return out
}

// PatternIsAEdges links a derived topic pattern to the events that
// instantiate it (same pattern, entity slot filled by a concept member).
// patterns maps topic phrase -> member event phrases, as produced by Common
// Pattern Discovery.
func PatternIsAEdges(patterns map[string][]string) []PhrasePair {
	var out []PhrasePair
	tops := make([]string, 0, len(patterns))
	for t := range patterns {
		tops = append(tops, t)
	}
	sort.Strings(tops)
	for _, t := range tops {
		children := append([]string(nil), patterns[t]...)
		sort.Strings(children)
		for _, c := range children {
			out = append(out, PhrasePair{Parent: t, Child: c})
		}
	}
	return out
}

// ConceptTopicInvolveEdges connects a concept to a topic when the concept
// phrase is contained in the topic phrase (§3.2).
func ConceptTopicInvolveEdges(concepts, topics []string) []PhrasePair {
	var out []PhrasePair
	for _, tp := range topics {
		padded := " " + strings.Join(nlp.Tokenize(tp), " ") + " "
		for _, c := range concepts {
			cp := " " + strings.Join(nlp.Tokenize(c), " ") + " "
			if strings.Contains(padded, cp) {
				out = append(out, PhrasePair{Parent: tp, Child: c})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Parent != out[j].Parent {
			return out[i].Parent < out[j].Parent
		}
		return out[i].Child < out[j].Child
	})
	return out
}
