package linking

import (
	"math"
	"math/rand"
	"sort"
)

// EntityEmbedder learns entity embeddings with a hinge loss over
// co-occurrence pairs (§3.2, "Edges between Entities"): the Euclidean
// distance between correlated entities is pushed below margin, random
// negatives above. Pairs whose learned distance falls under
// DistanceThreshold are emitted as correlate edges.
type EntityEmbedder struct {
	Dim               int
	Margin            float64
	DistanceThreshold float64
	LR                float64
	Epochs            int
	Seed              int64

	names []string
	index map[string]int
	vecs  [][]float64
}

// NewEntityEmbedder returns an embedder with paper-flavoured defaults.
func NewEntityEmbedder(dim int) *EntityEmbedder {
	return &EntityEmbedder{
		Dim: dim, Margin: 1.5, DistanceThreshold: 1.0,
		LR: 0.08, Epochs: 40, Seed: 17,
		index: make(map[string]int),
	}
}

func (e *EntityEmbedder) idOf(name string) int {
	if i, ok := e.index[name]; ok {
		return i
	}
	i := len(e.names)
	e.index[name] = i
	e.names = append(e.names, name)
	return i
}

// Train learns embeddings from positive co-occurrence pairs, with one random
// negative sampled per positive per epoch.
func (e *EntityEmbedder) Train(pairs [][2]string) {
	rng := rand.New(rand.NewSource(e.Seed))
	type ipair struct{ a, b int }
	ipairs := make([]ipair, 0, len(pairs))
	for _, p := range pairs {
		ipairs = append(ipairs, ipair{e.idOf(p[0]), e.idOf(p[1])})
	}
	n := len(e.names)
	if n == 0 {
		return
	}
	e.vecs = make([][]float64, n)
	for i := range e.vecs {
		v := make([]float64, e.Dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 0.5
		}
		e.vecs[i] = v
	}
	for ep := 0; ep < e.Epochs; ep++ {
		rng.Shuffle(len(ipairs), func(i, j int) { ipairs[i], ipairs[j] = ipairs[j], ipairs[i] })
		for _, p := range ipairs {
			neg := rng.Intn(n)
			for neg == p.a || neg == p.b {
				neg = rng.Intn(n)
			}
			// Hinge: max(0, margin + d(a,b) - d(a,neg)).
			dPos := e.dist(p.a, p.b)
			dNeg := e.dist(p.a, neg)
			switch {
			case e.Margin+dPos-dNeg > 0:
				// Gradient step: pull a,b together; push a,neg apart.
				e.step(p.a, p.b, -e.LR) // attract
				e.step(p.a, neg, e.LR)  // repel
			case dPos > 0.8*e.DistanceThreshold:
				// The relative hinge is satisfied but the pair still sits
				// above the classification threshold: keep attracting so
				// positives land inside it.
				e.step(p.a, p.b, -e.LR)
			}
		}
	}
}

// step moves the pair along the distance gradient: sign<0 attracts,
// sign>0 repels.
func (e *EntityEmbedder) step(a, b int, lr float64) {
	va, vb := e.vecs[a], e.vecs[b]
	d := e.dist(a, b)
	if d < 1e-9 {
		return
	}
	for j := range va {
		g := (va[j] - vb[j]) / d
		va[j] += lr * g
		vb[j] -= lr * g
	}
}

func (e *EntityEmbedder) dist(a, b int) float64 {
	va, vb := e.vecs[a], e.vecs[b]
	s := 0.0
	for j := range va {
		d := va[j] - vb[j]
		s += d * d
	}
	return math.Sqrt(s)
}

// Distance returns the learned distance between two entities (+Inf for
// unknown names).
func (e *EntityEmbedder) Distance(a, b string) float64 {
	ia, ok1 := e.index[a]
	ib, ok2 := e.index[b]
	if !ok1 || !ok2 {
		return math.Inf(1)
	}
	return e.dist(ia, ib)
}

// Correlated reports whether two entities' learned distance is below the
// threshold.
func (e *EntityEmbedder) Correlated(a, b string) bool {
	return e.Distance(a, b) < e.DistanceThreshold
}

// CorrelatePairs scans candidate pairs and returns those classified as
// correlated.
func (e *EntityEmbedder) CorrelatePairs(cands [][2]string) [][2]string {
	var out [][2]string
	for _, p := range cands {
		if e.Correlated(p[0], p[1]) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Vector returns a copy of an entity's embedding (nil when unknown).
func (e *EntityEmbedder) Vector(name string) []float64 {
	i, ok := e.index[name]
	if !ok {
		return nil
	}
	return append([]float64(nil), e.vecs[i]...)
}
