package clickgraph

import (
	"math"
	"testing"
	"testing/quick"
)

func sample() *Graph {
	g := New()
	g.Add("best cars", 1, "the best cars of 2019", 10, 0)
	g.Add("best cars", 2, "cars roundup review", 5, 0)
	g.Add("cars roundup", 2, "cars roundup review", 15, 1)
	g.Add("best cars", 1, "the best cars of 2019", 2, 0) // repeat accumulates
	return g
}

func TestTransportProbabilities(t *testing.T) {
	g := sample()
	// c(best cars, 1) = 12, c(best cars, 2) = 5 → P(1|q) = 12/17.
	if got, want := g.PDocGivenQuery("best cars", 1), 12.0/17.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("PDocGivenQuery = %v, want %v", got, want)
	}
	// c(*, 2): best cars 5, cars roundup 15 → P(best cars|2) = 5/20.
	if got, want := g.PQueryGivenDoc("best cars", 2), 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("PQueryGivenDoc = %v, want %v", got, want)
	}
	if g.PDocGivenQuery("missing", 1) != 0 || g.PQueryGivenDoc("best cars", 99) != 0 {
		t.Fatal("missing nodes should have probability 0")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	g := sample()
	s := g.PDocGivenQuery("best cars", 1) + g.PDocGivenQuery("best cars", 2)
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("P(d|q) sums to %v", s)
	}
}

func TestClusterForSeedKept(t *testing.T) {
	g := sample()
	cl, ok := g.ClusterFor("best cars", DefaultWalkConfig())
	if !ok {
		t.Fatal("seed not found")
	}
	if len(cl.Queries) == 0 || cl.Queries[0].Text != "best cars" {
		t.Fatalf("seed should rank first: %+v", cl.Queries)
	}
	if len(cl.Titles) == 0 {
		t.Fatal("no titles in cluster")
	}
	// Weights must be non-increasing.
	for i := 1; i < len(cl.Titles); i++ {
		if cl.Titles[i].Weight > cl.Titles[i-1].Weight {
			t.Fatal("titles not sorted by weight")
		}
	}
}

func TestClusterSharesMajorityFilter(t *testing.T) {
	g := New()
	g.Add("alpha beta", 1, "doc one", 10, 0)
	g.Add("gamma delta", 1, "doc one", 10, 0) // co-clicked but unrelated text
	cl, _ := g.ClusterFor("alpha beta", WalkConfig{Steps: 3, Threshold: 0.0, MaxItems: 10})
	for _, q := range cl.Queries {
		if q.Text == "gamma delta" {
			t.Fatal("unrelated query leaked into cluster (majority non-stop filter)")
		}
	}
}

func TestClusterUnknownSeed(t *testing.T) {
	g := sample()
	if _, ok := g.ClusterFor("nope", DefaultWalkConfig()); ok {
		t.Fatal("unknown seed should fail")
	}
}

func TestClustersEnumeratesAllQueries(t *testing.T) {
	g := sample()
	cs := g.Clusters(DefaultWalkConfig())
	if len(cs) != g.NumQueries() {
		t.Fatalf("clusters = %d, queries = %d", len(cs), g.NumQueries())
	}
}

func TestTopTitlesOrderedByClicks(t *testing.T) {
	g := sample()
	titles := g.TopTitlesFor("best cars", 5)
	if len(titles) != 2 || titles[0] != "the best cars of 2019" {
		t.Fatalf("TopTitlesFor = %v", titles)
	}
	if got := g.TopTitlesFor("best cars", 1); len(got) != 1 {
		t.Fatalf("k cap not applied: %v", got)
	}
}

func TestMaxItemsCap(t *testing.T) {
	g := New()
	for i := 0; i < 20; i++ {
		g.Add("common query", i, "shared title words", 1+i, 0)
	}
	cl, _ := g.ClusterFor("common query", WalkConfig{Steps: 2, Threshold: 0, MaxItems: 3})
	if len(cl.Titles) > 3 {
		t.Fatalf("MaxItems not applied: %d titles", len(cl.Titles))
	}
}

func TestAddNonPositiveClicks(t *testing.T) {
	g := New()
	g.Add("q", 1, "t", 0, 0) // should be clamped to 1
	if got := g.PDocGivenQuery("q", 1); got != 1 {
		t.Fatalf("clamped click weight: P = %v", got)
	}
}

func TestWalkDeterministic(t *testing.T) {
	f := func(seed uint8) bool {
		g := sample()
		a, _ := g.ClusterFor("best cars", DefaultWalkConfig())
		b, _ := g.ClusterFor("best cars", DefaultWalkConfig())
		if len(a.Queries) != len(b.Queries) || len(a.Titles) != len(b.Titles) {
			return false
		}
		for i := range a.Queries {
			if a.Queries[i] != b.Queries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencyHelpers(t *testing.T) {
	g := sample()
	if got := g.DocsForQuery("best cars"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("DocsForQuery = %v", got)
	}
	if got := g.DocsForQuery("missing"); got != nil {
		t.Fatalf("DocsForQuery(missing) = %v", got)
	}
	if got := g.QueriesForDoc(2); len(got) != 2 || got[0] != "best cars" || got[1] != "cars roundup" {
		t.Fatalf("QueriesForDoc = %v", got)
	}
	if got := g.QueriesForDoc(99); got != nil {
		t.Fatalf("QueriesForDoc(99) = %v", got)
	}
}

func TestAffectedQueries(t *testing.T) {
	// Two disconnected components: cars (queries a,b) and phones (query c).
	g := New()
	g.Add("best cars", 1, "cars title", 3, 0)
	g.Add("cars roundup", 1, "cars title", 3, 0)
	g.Add("best phones", 2, "phones title", 3, 0)

	// A new click on doc 1: both cars queries are affected, phones is not.
	got := g.AffectedQueries(nil, []int{1}, 3)
	if len(got) != 2 || got[0] != "best cars" || got[1] != "cars roundup" {
		t.Fatalf("AffectedQueries(doc 1) = %v", got)
	}
	// Seeding from a query expands through shared docs.
	got = g.AffectedQueries([]string{"best cars"}, nil, 2)
	if len(got) != 2 {
		t.Fatalf("AffectedQueries(best cars) = %v", got)
	}
	// Zero hops keeps only the direct neighbourhood.
	got = g.AffectedQueries([]string{"best phones"}, nil, 0)
	if len(got) != 1 || got[0] != "best phones" {
		t.Fatalf("AffectedQueries hops=0 = %v", got)
	}
	// Unknown starting points affect nothing.
	if got := g.AffectedQueries([]string{"nope"}, []int{77}, 3); len(got) != 0 {
		t.Fatalf("AffectedQueries(unknown) = %v", got)
	}
}
