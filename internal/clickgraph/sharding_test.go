package clickgraph

import (
	"reflect"
	"testing"
)

// twoComponents builds a graph with two disconnected components: cars
// (queries best cars / cars roundup on doc 1) and phones (best phones on
// doc 2).
func twoComponents() *Graph {
	g := New()
	g.Add("best cars", 1, "cars title", 3, 0)
	g.Add("cars roundup", 1, "cars title", 3, 0)
	g.Add("best phones", 2, "phones title", 3, 0)
	return g
}

func TestShardAssignmentKeepsComponentsTogether(t *testing.T) {
	g := twoComponents()
	for _, k := range []int{1, 2, 4, 7} {
		sh := g.ShardAssignment(k)
		if sh.K() != k {
			t.Fatalf("K() = %d, want %d", sh.K(), k)
		}
		a, ok1 := sh.Of("best cars")
		b, ok2 := sh.Of("cars roundup")
		if !ok1 || !ok2 || a != b {
			t.Fatalf("k=%d: connected queries on different shards (%d, %d)", k, a, b)
		}
		if a < 0 || a >= k {
			t.Fatalf("k=%d: shard %d out of range", k, a)
		}
		if _, ok := sh.Of("never seen"); ok {
			t.Fatal("unknown query must not resolve")
		}
	}
}

// TestShardAssignmentInsertionOrderIndependent: the assignment is a pure
// function of the graph's structure, not of edge arrival order.
func TestShardAssignmentInsertionOrderIndependent(t *testing.T) {
	g1 := twoComponents()
	g2 := New()
	g2.Add("best phones", 2, "phones title", 3, 0)
	g2.Add("cars roundup", 1, "cars title", 3, 0)
	g2.Add("best cars", 1, "cars title", 3, 0)
	for _, k := range []int{2, 4} {
		s1, s2 := g1.ShardAssignment(k), g2.ShardAssignment(k)
		for _, q := range []string{"best cars", "cars roundup", "best phones"} {
			a, _ := s1.Of(q)
			b, _ := s2.Of(q)
			if a != b {
				t.Fatalf("k=%d: %q assigned to %d and %d depending on insertion order", k, q, a, b)
			}
		}
	}
}

// TestShardAssignmentBridgedComponentsMerge: a batch whose clicks bridge
// two previously disconnected clusters must deterministically land the
// merged component on a single shard.
func TestShardAssignmentBridgedComponentsMerge(t *testing.T) {
	g := twoComponents()
	// Bridge: a new query clicking both doc 1 (cars) and doc 2 (phones).
	g.Add("cars or phones", 1, "cars title", 1, 2)
	g.Add("cars or phones", 2, "phones title", 1, 2)
	for _, k := range []int{2, 4, 8} {
		sh := g.ShardAssignment(k)
		want, _ := sh.Of("best cars")
		for _, q := range []string{"cars roundup", "best phones", "cars or phones"} {
			got, ok := sh.Of(q)
			if !ok || got != want {
				t.Fatalf("k=%d: %q on shard %d, want merged component on %d", k, q, got, want)
			}
		}
		// Deterministic: the merged representative is the smallest query.
		if want != shardOfKey("best cars", k) {
			t.Fatalf("k=%d: merged shard %d, want hash of smallest query %d", k, want, shardOfKey("best cars", k))
		}
	}
}

func TestQueriesOfPartitionsAllQueries(t *testing.T) {
	g := twoComponents()
	sh := g.ShardAssignment(2)
	parts := sh.QueriesOf(g.Queries())
	total := 0
	for shard, qs := range parts {
		for _, q := range qs {
			got, _ := sh.Of(q)
			if got != shard {
				t.Fatalf("query %q listed under shard %d but assigned to %d", q, shard, got)
			}
			total++
		}
	}
	if total != g.NumQueries() {
		t.Fatalf("partition covers %d of %d queries", total, g.NumQueries())
	}
}

// TestAffectedQueriesEmptyBatch: a batch with no recognizable queries or
// docs affects nothing.
func TestAffectedQueriesEmptyBatch(t *testing.T) {
	g := twoComponents()
	if got := g.AffectedQueries(nil, nil, 3); len(got) != 0 {
		t.Fatalf("empty batch affected %v", got)
	}
	if got := g.AffectedQueries([]string{}, []int{}, 0); len(got) != 0 {
		t.Fatalf("empty slices affected %v", got)
	}
}

// TestAffectedQueriesDocWithoutQueries: a doc ID the graph has never seen
// (no query references it) contributes nothing — and does not panic.
func TestAffectedQueriesDocWithoutQueries(t *testing.T) {
	g := twoComponents()
	if got := g.AffectedQueries(nil, []int{999}, 3); len(got) != 0 {
		t.Fatalf("unknown doc affected %v", got)
	}
	// Mixed: one known doc, one unknown; only the known doc's component
	// is affected.
	got := g.AffectedQueries(nil, []int{2, 999}, 3)
	if !reflect.DeepEqual(got, []string{"best phones"}) {
		t.Fatalf("AffectedQueries(doc 2 + unknown) = %v", got)
	}
}

// TestAffectedQueriesBridgingBatch: after clicks bridge two previously
// disconnected clusters, the affected set expands through the new edges
// into BOTH old components (the shard-merge case: every seed whose walk
// can now cross the bridge must re-mine).
func TestAffectedQueriesBridgingBatch(t *testing.T) {
	g := twoComponents()
	g.Add("cars or phones", 1, "cars title", 1, 2)
	g.Add("cars or phones", 2, "phones title", 1, 2)
	got := g.AffectedQueries([]string{"cars or phones"}, []int{1, 2}, 3)
	want := []string{"best cars", "best phones", "cars or phones", "cars roundup"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bridging batch affected %v, want %v", got, want)
	}
}
