package clickgraph

// Deterministic shard assignment for the click graph. The graph is
// partitioned by connected component: queries and documents that are
// transitively connected by click edges always land in the same shard, so
// a random-walk cluster (which can only visit its seed's component) never
// straddles a shard boundary. Each component is hashed — by its
// lexicographically smallest query, a representative that does not depend
// on insertion order — onto one of K shards, which keeps the assignment a
// pure function of the graph's structure: rebuilding the same graph in any
// edge order yields the same sharding, and a batch of new clicks that
// bridges two previously disconnected components deterministically merges
// them onto a single shard.
//
// Components are maintained incrementally (Graph.Add unions the query and
// doc slots of every new edge), so computing an assignment after an ingest
// batch costs O(queries), not a rescan of the whole edge list.

import "hash/fnv"

// Sharding is a computed shard assignment over a click graph's queries.
type Sharding struct {
	k       int
	byQuery map[string]int
}

// K returns the shard count the assignment was computed for.
func (s *Sharding) K() int {
	if s == nil || s.k < 1 {
		return 1
	}
	return s.k
}

// Of returns the shard of a query, or ok=false for queries the graph has
// never seen.
func (s *Sharding) Of(query string) (int, bool) {
	if s == nil {
		return 0, false
	}
	shard, ok := s.byQuery[query]
	return shard, ok
}

// QueriesOf lists the queries assigned to each shard, preserving the
// graph's query-insertion order within a shard.
func (s *Sharding) QueriesOf(queries []string) [][]string {
	out := make([][]string, s.K())
	for _, q := range queries {
		if shard, ok := s.Of(q); ok {
			out[shard] = append(out[shard], q)
		}
	}
	return out
}

// ShardAssignment partitions the graph's connected components over k
// shards (k <= 1 collapses to a single shard). The assignment depends only
// on the graph's structure, never on insertion order. It reads the
// incrementally maintained union-find, so the cost is O(queries) — safe to
// recompute per ingest batch. Not safe to call concurrently with Add or
// with itself (path compression writes); callers serialize graph mutation
// already.
func (g *Graph) ShardAssignment(k int) *Sharding {
	if k < 1 {
		k = 1
	}
	s := &Sharding{k: k, byQuery: make(map[string]int, len(g.queries))}

	// Component representative: the lexicographically smallest query. A
	// component always contains at least one query (documents only enter
	// the graph attached to a query edge).
	rep := map[int]string{}
	for qi, q := range g.queries {
		r := g.find(g.qSlot[qi])
		if cur, ok := rep[r]; !ok || q < cur {
			rep[r] = q
		}
	}
	for qi, q := range g.queries {
		s.byQuery[q] = shardOfKey(rep[g.find(g.qSlot[qi])], k)
	}
	return s
}

// newSlot allocates a union-find slot for a new query or doc.
func (g *Graph) newSlot() int {
	g.uf = append(g.uf, len(g.uf))
	return len(g.uf) - 1
}

// find resolves a slot's component root with path halving.
func (g *Graph) find(x int) int {
	for g.uf[x] != x {
		g.uf[x] = g.uf[g.uf[x]]
		x = g.uf[x]
	}
	return x
}

// union merges the components of two slots.
func (g *Graph) union(a, b int) {
	ra, rb := g.find(a), g.find(b)
	if ra != rb {
		g.uf[ra] = rb
	}
}

// shardOfKey hashes a canonical key onto [0, k).
func shardOfKey(key string, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(k))
}
