// Package clickgraph implements the bipartite search click graph of §3.1:
// queries on one side, documents on the other, edge weights equal to click
// counts. It provides the transport probabilities of Eq. (1)–(2) and the
// random-walk clustering that turns a seed query into an ordered query-doc
// cluster for phrase mining.
package clickgraph

import (
	"sort"
	"strings"

	"giant/internal/nlp"
	"giant/internal/par"
)

// Graph is a weighted bipartite click graph. Zero value is not usable; call
// New.
type Graph struct {
	queries   []string
	queryIdx  map[string]int
	docTitles []string
	docIdx    map[int]int // external doc ID -> internal index
	docIDs    []int       // internal index -> external doc ID
	docDays   []int

	qEdges [][]edge // per query: edges to docs
	dEdges [][]edge // per doc: edges to queries

	qOut []float64 // total clicks per query
	dOut []float64 // total clicks per doc

	// Connected-component tracking, maintained incrementally by Add so
	// ShardAssignment never rescans the edge lists: a union-find over
	// query/doc slots (queries and docs get a slot on first sight).
	uf    []int // slot -> parent slot
	qSlot []int // query index -> uf slot
	dSlot []int // doc index -> uf slot
}

type edge struct {
	to     int
	clicks float64
}

// New returns an empty click graph.
func New() *Graph {
	return &Graph{queryIdx: make(map[string]int), docIdx: make(map[int]int)}
}

// Add records clicks click-throughs from query to the document (docID,
// title). Repeated observations accumulate.
func (g *Graph) Add(query string, docID int, title string, clicks int, day int) {
	if clicks <= 0 {
		clicks = 1
	}
	qi, ok := g.queryIdx[query]
	if !ok {
		qi = len(g.queries)
		g.queryIdx[query] = qi
		g.queries = append(g.queries, query)
		g.qEdges = append(g.qEdges, nil)
		g.qOut = append(g.qOut, 0)
		g.qSlot = append(g.qSlot, g.newSlot())
	}
	di, ok := g.docIdx[docID]
	if !ok {
		di = len(g.docTitles)
		g.docIdx[docID] = di
		g.docTitles = append(g.docTitles, title)
		g.docIDs = append(g.docIDs, docID)
		g.docDays = append(g.docDays, day)
		g.dEdges = append(g.dEdges, nil)
		g.dOut = append(g.dOut, 0)
		g.dSlot = append(g.dSlot, g.newSlot())
	}
	g.union(g.qSlot[qi], g.dSlot[di])
	c := float64(clicks)
	g.qEdges[qi] = addEdge(g.qEdges[qi], di, c)
	g.dEdges[di] = addEdge(g.dEdges[di], qi, c)
	g.qOut[qi] += c
	g.dOut[di] += c
}

func addEdge(es []edge, to int, c float64) []edge {
	for i := range es {
		if es[i].to == to {
			es[i].clicks += c
			return es
		}
	}
	return append(es, edge{to, c})
}

// NumQueries returns the number of distinct queries.
func (g *Graph) NumQueries() int { return len(g.queries) }

// NumDocs returns the number of distinct documents.
func (g *Graph) NumDocs() int { return len(g.docTitles) }

// Queries returns all distinct queries (shared slice; do not mutate).
func (g *Graph) Queries() []string { return g.queries }

// PDocGivenQuery is Eq. (1): P(d|q) = c(q,d) / Σ_k c(q,k).
func (g *Graph) PDocGivenQuery(query string, docID int) float64 {
	qi, ok := g.queryIdx[query]
	if !ok || g.qOut[qi] == 0 {
		return 0
	}
	di, ok := g.docIdx[docID]
	if !ok {
		return 0
	}
	for _, e := range g.qEdges[qi] {
		if e.to == di {
			return e.clicks / g.qOut[qi]
		}
	}
	return 0
}

// PQueryGivenDoc is Eq. (2): P(q|d) = c(q,d) / Σ_k c(k,d).
func (g *Graph) PQueryGivenDoc(query string, docID int) float64 {
	di, ok := g.docIdx[docID]
	if !ok || g.dOut[di] == 0 {
		return 0
	}
	qi, ok := g.queryIdx[query]
	if !ok {
		return 0
	}
	for _, e := range g.dEdges[di] {
		if e.to == qi {
			return e.clicks / g.dOut[di]
		}
	}
	return 0
}

// Weighted is a text item (query or title) with its random-walk visiting
// probability.
type Weighted struct {
	Text   string
	Weight float64
	DocID  int // external doc ID for titles; -1 for queries
	Day    int
}

// Cluster is a query-doc cluster: the seed query's correlated queries and
// document titles, each ordered by descending walk weight (§3.1:
// "the queries and documents are sorted by the weights calculated during the
// random walk").
type Cluster struct {
	Seed    string
	Queries []Weighted
	Titles  []Weighted
}

// WalkConfig tunes the random-walk clustering.
type WalkConfig struct {
	Steps     int     // power-iteration steps of the two-hop walk
	Threshold float64 // δv: minimum visiting probability to keep a node
	MaxItems  int     // cap on queries/titles kept per cluster
}

// DefaultWalkConfig mirrors the paper's behaviour at laptop scale.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{Steps: 3, Threshold: 0.02, MaxItems: 8}
}

// ClusterFor runs the random walk from seed and returns its cluster, or
// ok=false if the seed query is unknown. The walk is computed exactly by
// power iteration over the transport probabilities (no sampling), so results
// are deterministic.
func (g *Graph) ClusterFor(seed string, cfg WalkConfig) (Cluster, bool) {
	qi, ok := g.queryIdx[seed]
	if !ok {
		return Cluster{}, false
	}
	qProb := map[int]float64{qi: 1}
	dProb := map[int]float64{}
	for s := 0; s < cfg.Steps; s++ {
		// Query -> doc hop.
		nd := map[int]float64{}
		for q, p := range qProb {
			if g.qOut[q] == 0 {
				continue
			}
			for _, e := range g.qEdges[q] {
				nd[e.to] += p * e.clicks / g.qOut[q]
			}
		}
		for d, p := range nd {
			dProb[d] += p
		}
		// Doc -> query hop.
		nq := map[int]float64{}
		for d, p := range nd {
			if g.dOut[d] == 0 {
				continue
			}
			for _, e := range g.dEdges[d] {
				nq[e.to] += p * e.clicks / g.dOut[d]
			}
		}
		qProb = nq
		qProb[qi] += 0.0 // keep seed key present
	}
	// Accumulate final query visiting probabilities (seed always kept).
	qProb[qi] += 1

	cl := Cluster{Seed: seed}
	for q, p := range qProb {
		if q != qi && p < cfg.Threshold {
			continue
		}
		// §3.1: keep a visited query only if it shares more than half of the
		// seed's non-stop words.
		if q != qi && !sharesMajorityNonStop(seed, g.queries[q]) {
			continue
		}
		cl.Queries = append(cl.Queries, Weighted{Text: g.queries[q], Weight: p, DocID: -1})
	}
	for d, p := range dProb {
		if p < cfg.Threshold {
			continue
		}
		cl.Titles = append(cl.Titles, Weighted{Text: g.docTitles[d], Weight: p, DocID: g.docIDs[d], Day: g.docDays[d]})
	}
	sortWeighted(cl.Queries)
	sortWeighted(cl.Titles)
	if cfg.MaxItems > 0 {
		if len(cl.Queries) > cfg.MaxItems {
			cl.Queries = cl.Queries[:cfg.MaxItems]
		}
		if len(cl.Titles) > cfg.MaxItems {
			cl.Titles = cl.Titles[:cfg.MaxItems]
		}
	}
	return cl, true
}

// Clusters enumerates a cluster for every distinct query.
func (g *Graph) Clusters(cfg WalkConfig) []Cluster {
	return g.ClustersN(cfg, 1)
}

// ClustersN is Clusters with the per-seed random walks fanned out over up to
// workers goroutines. The graph is only read, so any concurrency is safe, and
// results are assembled in query-insertion order — the output is identical to
// the sequential Clusters for every worker count.
func (g *Graph) ClustersN(cfg WalkConfig, workers int) []Cluster {
	type slot struct {
		c  Cluster
		ok bool
	}
	slots := make([]slot, len(g.queries))
	par.ForEachIndexed(workers, len(g.queries), func(i int) {
		slots[i].c, slots[i].ok = g.ClusterFor(g.queries[i], cfg)
	})
	out := make([]Cluster, 0, len(g.queries))
	for i := range slots {
		if slots[i].ok {
			out = append(out, slots[i].c)
		}
	}
	return out
}

func sortWeighted(ws []Weighted) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Weight != ws[j].Weight {
			return ws[i].Weight > ws[j].Weight
		}
		return ws[i].Text < ws[j].Text
	})
}

func sharesMajorityNonStop(seed, other string) bool {
	st := map[string]bool{}
	n := 0
	for _, t := range nlp.Tokenize(seed) {
		if !nlp.IsStopWord(t) {
			st[t] = true
			n++
		}
	}
	if n == 0 {
		return true
	}
	hit := 0
	seen := map[string]bool{}
	for _, t := range nlp.Tokenize(other) {
		if st[t] && !seen[t] {
			hit++
			seen[t] = true
		}
	}
	return hit*2 > n
}

// TopTitlesFor returns up to k clicked titles for a query, by click count —
// the "context-enriched representation" source for phrase normalization.
func (g *Graph) TopTitlesFor(query string, k int) []string {
	qi, ok := g.queryIdx[query]
	if !ok {
		return nil
	}
	es := append([]edge(nil), g.qEdges[qi]...)
	sort.Slice(es, func(i, j int) bool { return es[i].clicks > es[j].clicks })
	if len(es) > k {
		es = es[:k]
	}
	out := make([]string, 0, len(es))
	for _, e := range es {
		out = append(out, g.docTitles[e.to])
	}
	return out
}

// DocsForQuery returns the external IDs of every document the query has
// clicks into, in edge-insertion order.
func (g *Graph) DocsForQuery(query string) []int {
	qi, ok := g.queryIdx[query]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(g.qEdges[qi]))
	for _, e := range g.qEdges[qi] {
		out = append(out, g.docIDs[e.to])
	}
	return out
}

// QueriesForDoc returns every query with clicks into the document (by
// external doc ID), in edge-insertion order.
func (g *Graph) QueriesForDoc(docID int) []string {
	di, ok := g.docIdx[docID]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.dEdges[di]))
	for _, e := range g.dEdges[di] {
		out = append(out, g.queries[e.to])
	}
	return out
}

// AffectedQueries computes the set of seed queries whose random-walk
// cluster could change after new click edges touch the given queries and
// documents: a breadth-first expansion of hops query→doc→query rounds
// around the changed region (one round per walk step, since each
// power-iteration step moves probability mass exactly one query hop). The
// result is sorted, so incremental re-mining is deterministic.
func (g *Graph) AffectedQueries(queries []string, docIDs []int, hops int) []string {
	seen := map[string]bool{}
	frontier := make([]string, 0, len(queries))
	add := func(q string) {
		if !seen[q] {
			seen[q] = true
			frontier = append(frontier, q)
		}
	}
	for _, q := range queries {
		if _, ok := g.queryIdx[q]; ok {
			add(q)
		}
	}
	for _, d := range docIDs {
		for _, q := range g.QueriesForDoc(d) {
			add(q)
		}
	}
	for h := 0; h < hops; h++ {
		next := frontier
		frontier = nil
		for _, q := range next {
			for _, d := range g.DocsForQuery(q) {
				for _, nq := range g.QueriesForDoc(d) {
					add(nq)
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
	}
	out := make([]string, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// ContainsQuery reports whether the graph has seen the exact query.
func (g *Graph) ContainsQuery(q string) bool {
	_, ok := g.queryIdx[strings.ToLower(q)]
	if ok {
		return true
	}
	_, ok = g.queryIdx[q]
	return ok
}
