package ontology

import "testing"

func storeSnap(t *testing.T, phrases ...string) *Snapshot {
	t.Helper()
	o := New()
	for _, p := range phrases {
		o.AddNode(Concept, p)
	}
	return o.Snapshot()
}

func TestStorePushCurrentGet(t *testing.T) {
	st := NewStore(3)
	if _, ok := st.Current(); ok {
		t.Fatal("empty store has no current generation")
	}
	a := storeSnap(t, "a")
	b := storeSnap(t, "a", "b")
	if gen := st.Push(a); gen != 1 {
		t.Fatalf("first generation = %d, want 1", gen)
	}
	if gen := st.Push(b); gen != 2 {
		t.Fatalf("second generation = %d, want 2", gen)
	}
	cur, ok := st.Current()
	if !ok || cur.Gen != 2 || cur.Snap != b || cur.Nodes != 2 {
		t.Fatalf("current = %+v, want gen 2 of b", cur)
	}
	if got, ok := st.Get(1); !ok || got != a {
		t.Fatal("generation 1 should stay retrievable")
	}
}

func TestStoreBoundedRetention(t *testing.T) {
	st := NewStore(2)
	snaps := []*Snapshot{storeSnap(t, "a"), storeSnap(t, "b"), storeSnap(t, "c")}
	for _, s := range snaps {
		st.Push(s)
	}
	if st.Len() != 2 {
		t.Fatalf("retention 2 store holds %d generations", st.Len())
	}
	if _, ok := st.Get(1); ok {
		t.Fatal("oldest generation should have been evicted")
	}
	gens := st.Generations()
	if len(gens) != 2 || gens[0].Gen != 2 || gens[1].Gen != 3 {
		t.Fatalf("generations = %+v, want [2 3]", gens)
	}
	if gens[0].Snap != nil {
		t.Fatal("Generations must not leak snapshots in the summary view")
	}
}

func TestStoreRollback(t *testing.T) {
	st := NewStore(4)
	if _, err := st.Rollback(); err == nil {
		t.Fatal("rollback on an empty store must fail")
	}
	a := storeSnap(t, "a")
	st.Push(a)
	if _, err := st.Rollback(); err == nil {
		t.Fatal("rollback with a single generation must fail")
	}
	b := storeSnap(t, "a", "bad")
	st.Push(b)
	g, err := st.Rollback()
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if g.Gen != 1 || g.Snap != a {
		t.Fatalf("rollback returned gen %d, want 1 (the pre-bad snapshot)", g.Gen)
	}
	cur, _ := st.Current()
	if cur.Gen != 1 {
		t.Fatalf("current after rollback = %d, want 1", cur.Gen)
	}
	// Generation numbers are never reused after a rollback.
	if gen := st.Push(storeSnap(t, "a", "fixed")); gen != 3 {
		t.Fatalf("push after rollback assigned gen %d, want 3", gen)
	}
}
