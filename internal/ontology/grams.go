package ontology

// TermGrams is the term→shard routing surface behind pruned scatter-gather
// search: a fixed-size presence index of the byte n-grams occurring in a
// node set's lowercased phrases and aliases. Substring search can consult
// it as a necessary condition — if any n-gram of the needle is absent, no
// string in the set can contain the needle — so a router (or the in-process
// sharded merger) skips shards that provably cannot match. The index is a
// superset filter, never an oracle: a positive answer may be a false
// positive (the scan still decides), a negative answer is always exact,
// which is what keeps pruned search byte-identical to the full scan.
//
// Three gram widths cover every needle length:
//
//   - unigrams: exact presence bitmap over the 256 byte values
//   - bigrams:  exact presence bitmap over the 65536 byte pairs
//   - trigrams: presence bitmap over byte triples hashed to 16 bits
//     (collisions only weaken pruning, never correctness)
//
// A needle of length >= 3 is pruned through all of its trigram windows (and
// bigrams/unigrams, which are free and occasionally sharper); length-2 and
// length-1 needles degrade to the exact bigram and unigram bitmaps. Grams
// are extracted per string — phrase and each alias independently — exactly
// mirroring nodeMatches, which tests containment per string.
//
// The index is deterministic in the node set, so the same shard encoded on
// two machines (or recomputed from JSON versus decoded from a GIANTBIN
// section) yields identical bytes — the property the dual-format serving
// equivalence tests pin.

import (
	"encoding/base64"
	"fmt"
	"strings"
)

const (
	termGramUniBytes = 256 / 8   // exact unigram bitmap
	termGramBiBytes  = 65536 / 8 // exact bigram bitmap
	termGramTriBytes = 65536 / 8 // hashed trigram bitmap
	termGramSize     = termGramUniBytes + termGramBiBytes + termGramTriBytes
)

// TermGrams holds the three presence bitmaps. The zero value is an empty
// index (MayContain answers false for every non-empty needle).
type TermGrams struct {
	uni [termGramUniBytes]byte
	bi  [termGramBiBytes]byte
	tri [termGramTriBytes]byte
}

// triHash folds a byte triple into the 16-bit trigram bitmap index
// (FNV-style mixing; any deterministic hash works, collisions only cost
// pruning power).
func triHash(a, b, c byte) uint32 {
	h := uint32(2166136261)
	h = (h ^ uint32(a)) * 16777619
	h = (h ^ uint32(b)) * 16777619
	h = (h ^ uint32(c)) * 16777619
	return (h ^ h>>16) & 0xFFFF
}

// AddString folds one surface string into the index. The string is
// lowercased here with the same strings.ToLower the search scan applies.
func (g *TermGrams) AddString(s string) {
	s = strings.ToLower(s)
	for i := 0; i < len(s); i++ {
		g.uni[s[i]>>3] |= 1 << (s[i] & 7)
		if i+1 < len(s) {
			b := uint32(s[i])<<8 | uint32(s[i+1])
			g.bi[b>>3] |= 1 << (b & 7)
		}
		if i+2 < len(s) {
			t := triHash(s[i], s[i+1], s[i+2])
			g.tri[t>>3] |= 1 << (t & 7)
		}
	}
}

// AddNode folds a node's phrase and every alias into the index.
func (g *TermGrams) AddNode(n *Node) {
	g.AddString(n.Phrase)
	for _, a := range n.Aliases {
		g.AddString(a)
	}
}

// Union folds another index into this one (the whole-world index of a
// sharded deployment is the union of its shard indexes).
func (g *TermGrams) Union(o *TermGrams) {
	if o == nil {
		return
	}
	for i := range g.uni {
		g.uni[i] |= o.uni[i]
	}
	for i := range g.bi {
		g.bi[i] |= o.bi[i]
	}
	for i := range g.tri {
		g.tri[i] |= o.tri[i]
	}
}

// MayContain reports whether some indexed string could contain the needle.
// The needle must already be lowercased (callers on the search path have
// lowercased it once). False is exact: no indexed string contains the
// needle. An empty needle is trivially "maybe".
func (g *TermGrams) MayContain(needle string) bool {
	for i := 0; i < len(needle); i++ {
		if g.uni[needle[i]>>3]&(1<<(needle[i]&7)) == 0 {
			return false
		}
		if i+1 < len(needle) {
			b := uint32(needle[i])<<8 | uint32(needle[i+1])
			if g.bi[b>>3]&(1<<(b&7)) == 0 {
				return false
			}
		}
		if i+2 < len(needle) {
			t := triHash(needle[i], needle[i+1], needle[i+2])
			if g.tri[t>>3]&(1<<(t&7)) == 0 {
				return false
			}
		}
	}
	return true
}

// BuildTermGrams indexes the grams of every node in the slice (phrases and
// aliases). Deterministic in the node contents.
func BuildTermGrams(nodes []Node) *TermGrams {
	g := &TermGrams{}
	for i := range nodes {
		g.AddNode(&nodes[i])
	}
	return g
}

// appendBytes serializes the bitmaps in uni|bi|tri order.
func (g *TermGrams) appendBytes(dst []byte) []byte {
	dst = append(dst, g.uni[:]...)
	dst = append(dst, g.bi[:]...)
	return append(dst, g.tri[:]...)
}

// termGramsFromBytes inverts appendBytes.
func termGramsFromBytes(data []byte) (*TermGrams, error) {
	if len(data) != termGramSize {
		return nil, fmt.Errorf("ontology: term grams are %d bytes, want %d", len(data), termGramSize)
	}
	g := &TermGrams{}
	copy(g.uni[:], data[:termGramUniBytes])
	copy(g.bi[:], data[termGramUniBytes:termGramUniBytes+termGramBiBytes])
	copy(g.tri[:], data[termGramUniBytes+termGramBiBytes:])
	return g, nil
}

// Encode renders the index as base64 for JSON transport (/v1/stats).
func (g *TermGrams) Encode() string {
	return base64.StdEncoding.EncodeToString(g.appendBytes(make([]byte, 0, termGramSize)))
}

// DecodeTermGrams inverts Encode; the router uses it to rebuild each
// shard's routing index from /v1/stats.
func DecodeTermGrams(s string) (*TermGrams, error) {
	data, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("ontology: decode term grams: %w", err)
	}
	return termGramsFromBytes(data)
}

// TermStats is the wire form of a shard's term-routing surface, exported
// through /v1/stats (and persisted as an optional GIANTBIN section). Grams
// is the base64 TermGrams encoding.
type TermStats struct {
	Grams string `json:"grams"`
}
