package ontology

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Snapshot is an immutable, read-optimized view of an Ontology, built once
// from a finished build (or loaded from the JSON a build wrote) and then
// shared freely between goroutines. Every index is precomputed at
// construction time — phrase→node and alias→node maps per type, per-type
// node lists, CSR adjacency over the edge list, and the per-type statistics
// — so lookups are lock-free O(1), traversals are O(degree), and the hot
// phrase-lookup path performs zero allocations. A Snapshot never touches
// the Ontology mutex; concurrent readers scale linearly and an online
// server can hot-swap one atomically for another while requests are in
// flight.
type Snapshot struct {
	nodes []Node
	edges []Edge

	// byPhrase and byAlias map the lowercased surface form to the node, one
	// map per node type so lookups need no composite-key allocation.
	byPhrase [NumNodeTypes]map[string]NodeID
	byAlias  [NumNodeTypes]map[string]NodeID

	// byType lists node IDs per type in ID order.
	byType [NumNodeTypes][]NodeID

	// out/in are CSR adjacency: outIdx[outOff[v]:outOff[v+1]] are the indices
	// into edges of v's out-edges (and symmetrically for in-edges).
	outOff, inOff []int32
	outIdx, inIdx []int32

	stats Stats

	// grams is the lazily built term-gram presence index over every node's
	// phrase and aliases, used by Search to skip the scan entirely when no
	// node can contain the needle. gramsOnce guards the lazy build; the
	// binary decode path may pre-populate grams from a persisted section
	// before the snapshot is shared, in which case the build is skipped.
	gramsOnce sync.Once
	grams     *TermGrams
}

// Snapshot builds an immutable snapshot of the ontology's current state.
// It acquires the read lock once, copies nodes and edges, and indexes the
// copy; the returned Snapshot shares nothing mutable with the Ontology, so
// later writes to the Ontology never disturb readers of the Snapshot.
func (o *Ontology) Snapshot() *Snapshot {
	o.mu.RLock()
	nodes := make([]Node, len(o.nodes))
	copy(nodes, o.nodes)
	for i := range nodes {
		if len(nodes[i].Aliases) > 0 {
			nodes[i].Aliases = append([]string(nil), nodes[i].Aliases...)
		}
	}
	edges := make([]Edge, len(o.edges))
	copy(edges, o.edges)
	o.mu.RUnlock()
	return newSnapshot(nodes, edges)
}

// SnapshotFromJSON reads an ontology serialized by WriteJSON (or by
// Snapshot.WriteJSON) and indexes it directly into a Snapshot. Input is
// validated exactly as ReadJSON validates it.
func SnapshotFromJSON(r io.Reader) (*Snapshot, error) {
	o, err := ReadJSON(r)
	if err != nil {
		return nil, err
	}
	return o.Snapshot(), nil
}

// LoadSnapshotFile reads a Snapshot from the file at path, auto-detecting
// the format by magic: GIANTBIN artifacts take the near-zero-allocation
// columnar decode path, anything else is parsed as JSON. A binary shard
// projection file is rejected — it is one shard's world, not the union.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if IsBinary(data) {
		snap, err := DecodeSnapshotBinary(data)
		if err != nil {
			return nil, fmt.Errorf("ontology: load %s: %w", path, err)
		}
		return snap, nil
	}
	return SnapshotFromJSON(bytes.NewReader(data))
}

// BuildSnapshot indexes explicit node and edge lists into a Snapshot. The
// slices become owned by the snapshot and must not be mutated afterwards.
// Node IDs must equal their slice index (the invariant every snapshot
// relies on for O(1) access) and edge endpoints must be in range; the
// delta-apply path uses this to materialize an updated generation without
// a full rebuild.
func BuildSnapshot(nodes []Node, edges []Edge) (*Snapshot, error) {
	for i := range nodes {
		if int(nodes[i].ID) != i {
			return nil, fmt.Errorf("ontology: node %d has ID %d (IDs must be dense and ordered)", i, nodes[i].ID)
		}
	}
	for i := range edges {
		e := &edges[i]
		if e.Src < 0 || e.Dst < 0 || int(e.Src) >= len(nodes) || int(e.Dst) >= len(nodes) {
			return nil, fmt.Errorf("ontology: edge %d endpoints out of range (%d,%d)", i, e.Src, e.Dst)
		}
		if e.Src == e.Dst {
			return nil, fmt.Errorf("ontology: edge %d is a self edge on node %d", i, e.Src)
		}
	}
	return newSnapshot(nodes, edges), nil
}

// newSnapshot indexes the given node and edge lists. The caller must pass
// slices the snapshot may own.
func newSnapshot(nodes []Node, edges []Edge) *Snapshot {
	s := &Snapshot{nodes: nodes, edges: edges}
	s.buildCSR()
	s.indexMaps()
	return s
}

// indexMaps builds the derived in-memory indexes that are never persisted:
// the per-type phrase and alias maps, the per-type ID lists, and the
// precomputed statistics. The binary decode path calls this after wiring
// the file-backed node, edge, and CSR columns directly into the snapshot.
func (s *Snapshot) indexMaps() {
	for t := 0; t < NumNodeTypes; t++ {
		s.byPhrase[t] = make(map[string]NodeID)
		s.byAlias[t] = make(map[string]NodeID)
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		t := int(n.Type)
		if t >= NumNodeTypes {
			continue
		}
		key := strings.ToLower(n.Phrase)
		if _, dup := s.byPhrase[t][key]; !dup {
			s.byPhrase[t][key] = n.ID
		}
		for _, a := range n.Aliases {
			ak := strings.ToLower(a)
			if _, dup := s.byAlias[t][ak]; !dup {
				s.byAlias[t][ak] = n.ID
			}
		}
		s.byType[t] = append(s.byType[t], n.ID)
	}

	s.stats = Stats{NodesByType: map[string]int{}, EdgesByType: map[string]int{}}
	for i := range s.nodes {
		s.stats.NodesByType[s.nodes[i].Type.String()]++
	}
	for i := range s.edges {
		s.stats.EdgesByType[s.edges[i].Type.String()]++
	}
}

// buildCSR computes the CSR adjacency from the edge list: count degrees,
// then fill grouped edge indices. The binary format persists these four
// arrays verbatim, so its decode path skips this work entirely.
func (s *Snapshot) buildCSR() {
	nv := len(s.nodes)
	s.outOff = make([]int32, nv+1)
	s.inOff = make([]int32, nv+1)
	for i := range s.edges {
		s.outOff[s.edges[i].Src+1]++
		s.inOff[s.edges[i].Dst+1]++
	}
	for v := 0; v < nv; v++ {
		s.outOff[v+1] += s.outOff[v]
		s.inOff[v+1] += s.inOff[v]
	}
	s.outIdx = make([]int32, len(s.edges))
	s.inIdx = make([]int32, len(s.edges))
	outNext := append([]int32(nil), s.outOff[:nv]...)
	inNext := append([]int32(nil), s.inOff[:nv]...)
	for i := range s.edges {
		e := &s.edges[i]
		s.outIdx[outNext[e.Src]] = int32(i)
		outNext[e.Src]++
		s.inIdx[inNext[e.Dst]] = int32(i)
		inNext[e.Dst]++
	}
}

// Lookup resolves a (type, phrase) pair to a node ID without allocating:
// already-lowercase phrases (the common case for normalized queries) hit
// the per-type map directly. This is the serving hot path.
func (s *Snapshot) Lookup(t NodeType, phrase string) (NodeID, bool) {
	if int(t) >= NumNodeTypes {
		return 0, false
	}
	id, ok := s.byPhrase[t][strings.ToLower(phrase)]
	return id, ok
}

// LookupAlias resolves a (type, alias) pair to the node the alias was
// merged into.
func (s *Snapshot) LookupAlias(t NodeType, alias string) (NodeID, bool) {
	if int(t) >= NumNodeTypes {
		return 0, false
	}
	id, ok := s.byAlias[t][strings.ToLower(alias)]
	return id, ok
}

// LookupAny resolves a phrase under any node type (in NodeType order),
// falling back to alias resolution when no canonical phrase matches.
func (s *Snapshot) LookupAny(phrase string) (NodeID, bool) {
	key := strings.ToLower(phrase)
	for t := 0; t < NumNodeTypes; t++ {
		if id, ok := s.byPhrase[t][key]; ok {
			return id, true
		}
	}
	for t := 0; t < NumNodeTypes; t++ {
		if id, ok := s.byAlias[t][key]; ok {
			return id, true
		}
	}
	return 0, false
}

// Get returns a copy of the node with the given ID.
func (s *Snapshot) Get(id NodeID) (Node, bool) {
	if int(id) < 0 || int(id) >= len(s.nodes) {
		return Node{}, false
	}
	return s.nodes[id], true
}

// At returns a pointer to the node with the given ID for zero-copy reads.
// The snapshot is immutable: callers must not write through the pointer.
func (s *Snapshot) At(id NodeID) *Node {
	return &s.nodes[id]
}

// Len returns the total number of nodes.
func (s *Snapshot) Len() int { return len(s.nodes) }

// Find returns the node with the given type and phrase.
func (s *Snapshot) Find(t NodeType, phrase string) (Node, bool) {
	id, ok := s.Lookup(t, phrase)
	if !ok {
		return Node{}, false
	}
	return s.nodes[id], true
}

// FindAny returns the first node with the phrase under any type.
func (s *Snapshot) FindAny(phrase string) (Node, bool) {
	key := strings.ToLower(phrase)
	for t := 0; t < NumNodeTypes; t++ {
		if id, ok := s.byPhrase[t][key]; ok {
			return s.nodes[id], true
		}
	}
	return Node{}, false
}

// IDsOfType returns the node IDs of the given type in ID order. The
// returned slice is shared snapshot state and must not be mutated.
func (s *Snapshot) IDsOfType(t NodeType) []NodeID {
	if int(t) >= NumNodeTypes {
		return nil
	}
	return s.byType[t]
}

// EachOut calls fn for every out-edge of v, passing the edge and the
// destination node; it allocates nothing. fn returning false stops early.
func (s *Snapshot) EachOut(v NodeID, fn func(e *Edge, dst *Node) bool) {
	if int(v) < 0 || int(v) >= len(s.nodes) {
		return
	}
	for _, ei := range s.outIdx[s.outOff[v]:s.outOff[v+1]] {
		e := &s.edges[ei]
		if !fn(e, &s.nodes[e.Dst]) {
			return
		}
	}
}

// EachIn calls fn for every in-edge of v, passing the edge and the source
// node; it allocates nothing. fn returning false stops early.
func (s *Snapshot) EachIn(v NodeID, fn func(e *Edge, src *Node) bool) {
	if int(v) < 0 || int(v) >= len(s.nodes) {
		return
	}
	for _, ei := range s.inIdx[s.inOff[v]:s.inOff[v+1]] {
		e := &s.edges[ei]
		if !fn(e, &s.nodes[e.Src]) {
			return
		}
	}
}

// Children returns nodes reachable from id via out-edges of type t.
func (s *Snapshot) Children(id NodeID, t EdgeType) []Node {
	var out []Node
	s.EachOut(id, func(e *Edge, dst *Node) bool {
		if e.Type == t {
			out = append(out, *dst)
		}
		return true
	})
	return out
}

// Parents returns nodes with an edge of type t into id.
func (s *Snapshot) Parents(id NodeID, t EdgeType) []Node {
	var out []Node
	s.EachIn(id, func(e *Edge, src *Node) bool {
		if e.Type == t {
			out = append(out, *src)
		}
		return true
	})
	return out
}

// Ancestors returns all transitive IsA parents of id.
func (s *Snapshot) Ancestors(id NodeID) []Node {
	if int(id) < 0 || int(id) >= len(s.nodes) {
		return nil
	}
	seen := map[NodeID]bool{id: true}
	var out []Node
	frontier := []NodeID{id}
	for len(frontier) > 0 {
		var next []NodeID
		for _, f := range frontier {
			s.EachIn(f, func(e *Edge, src *Node) bool {
				if e.Type == IsA && !seen[src.ID] {
					seen[src.ID] = true
					out = append(out, *src)
					next = append(next, src.ID)
				}
				return true
			})
		}
		frontier = next
	}
	return out
}

// Nodes returns a copy of all nodes (optionally filtered by type).
func (s *Snapshot) Nodes(types ...NodeType) []Node {
	return filterNodes(s.nodes, types)
}

// Edges returns a copy of all edges (optionally filtered by type).
func (s *Snapshot) Edges(types ...EdgeType) []Edge {
	return filterEdges(s.edges, types)
}

// NodeCount returns the number of nodes (optionally filtered by type),
// answered from the precomputed per-type lists.
func (s *Snapshot) NodeCount(types ...NodeType) int {
	if len(types) == 0 {
		return len(s.nodes)
	}
	n := 0
	for _, t := range types {
		if int(t) < NumNodeTypes {
			n += len(s.byType[t])
		}
	}
	return n
}

// EdgeCount returns the number of edges (optionally filtered by type),
// answered from the precomputed statistics.
func (s *Snapshot) EdgeCount(types ...EdgeType) int {
	if len(types) == 0 {
		return len(s.edges)
	}
	n := 0
	for _, t := range types {
		n += s.stats.EdgesByType[t.String()]
	}
	return n
}

// ComputeStats returns a copy of the precomputed per-type statistics.
func (s *Snapshot) ComputeStats() Stats {
	out := Stats{NodesByType: make(map[string]int, len(s.stats.NodesByType)), EdgesByType: make(map[string]int, len(s.stats.EdgesByType))}
	for k, v := range s.stats.NodesByType {
		out.NodesByType[k] = v
	}
	for k, v := range s.stats.EdgesByType {
		out.EdgesByType[k] = v
	}
	return out
}

// WriteJSON serializes the snapshot in the same format Ontology.WriteJSON
// uses, so a snapshot loaded from a build artifact re-saves byte-for-byte.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	return writePersisted(w, persisted{Nodes: s.nodes, Edges: s.edges})
}

// SaveFile writes the snapshot to path as JSON. The write is crash-safe:
// bytes land in a temp file in the destination directory and are renamed
// into place only after a successful fsync, so a watcher polling the path
// (giantd -watch) can never observe a partially written artifact.
func (s *Snapshot) SaveFile(path string) error {
	return writeFileAtomic(path, s.WriteJSON)
}

// SaveFileFormat writes the snapshot to path in the given format,
// crash-safely.
func (s *Snapshot) SaveFileFormat(path string, format FileFormat) error {
	if format == FormatBinary {
		return s.SaveBinaryFile(path)
	}
	return s.SaveFile(path)
}

// TermGrams returns the snapshot's term-gram presence index, building it
// on first use (safe under concurrent readers). The result is shared
// immutable state and must not be modified.
func (s *Snapshot) TermGrams() *TermGrams {
	s.gramsOnce.Do(func() {
		if s.grams == nil {
			s.grams = BuildTermGrams(s.nodes)
		}
	})
	return s.grams
}

// Search returns up to limit nodes whose phrase or alias contains the
// (case-insensitive) needle, in node-ID order, early-exiting as soon as
// limit matches are collected. A limit <= 0 means no limit. The term-gram
// index short-circuits needles no node can contain — a superset check, so
// pruned output is identical to the full scan's.
func (s *Snapshot) Search(needle string, limit int) []Node {
	needle = strings.ToLower(needle)
	if needle == "" {
		return nil
	}
	if !s.TermGrams().MayContain(needle) {
		return nil
	}
	return searchNodes(s.nodes, needle, limit)
}

// nodeMatches reports whether the node's phrase or an alias contains the
// (already lowercased) needle.
func nodeMatches(n *Node, needle string) bool {
	if strings.Contains(strings.ToLower(n.Phrase), needle) {
		return true
	}
	for _, a := range n.Aliases {
		if strings.Contains(strings.ToLower(a), needle) {
			return true
		}
	}
	return false
}

// sortNodesByID orders nodes by ascending ID.
func sortNodesByID(nodes []Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
}

// String describes the snapshot for logs.
func (s *Snapshot) String() string {
	return fmt.Sprintf("ontology snapshot: %d nodes, %d edges", len(s.nodes), len(s.edges))
}
