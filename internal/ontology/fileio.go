package ontology

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FileFormat selects the on-disk encoding of a snapshot or shard artifact.
type FileFormat int

const (
	// FormatJSON is the human-readable debug/interchange format.
	FormatJSON FileFormat = iota
	// FormatBinary is the GIANTBIN columnar format built for fast boot.
	FormatBinary
)

// ParseFileFormat maps the CLI spelling ("json" or "binary") to a format.
func ParseFileFormat(s string) (FileFormat, error) {
	switch s {
	case "json":
		return FormatJSON, nil
	case "binary", "bin":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("ontology: unknown format %q (want json or binary)", s)
}

// String returns the CLI spelling of the format.
func (f FileFormat) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "json"
}

// writeFileAtomic writes a file crash-safely: the payload is streamed to a
// temp file in the destination directory, fsynced, and renamed over path.
// A reader (or a crash) can therefore only ever observe the old complete
// file or the new complete file — never a partial write. This is what lets
// giantd -watch reload artifacts the moment their mtime changes.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp opens 0600; published artifacts should be world-readable
	// like a plain os.Create would have produced.
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
