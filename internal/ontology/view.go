package ontology

// View is the read-only surface of an Attention Ontology. It is implemented
// by both *Ontology (mutex-guarded, mutable, used by the offline build) and
// *Snapshot (immutable, lock-free, used by the online serving tier), so the
// §4 application packages — tagging, query understanding, story trees — can
// run against either without caring which phase of the pipeline they are in.
type View interface {
	// Get returns a copy of the node with the given ID.
	Get(id NodeID) (Node, bool)
	// Find returns the node with the given type and (case-insensitive)
	// phrase.
	Find(t NodeType, phrase string) (Node, bool)
	// FindAny returns the first node with the phrase under any type, in
	// NodeType order.
	FindAny(phrase string) (Node, bool)
	// Children returns nodes reachable from id via out-edges of type t.
	Children(id NodeID, t EdgeType) []Node
	// Parents returns nodes with an edge of type t into id.
	Parents(id NodeID, t EdgeType) []Node
	// Ancestors returns all transitive IsA parents of id.
	Ancestors(id NodeID) []Node
	// Nodes returns a copy of all nodes (optionally filtered by type).
	Nodes(types ...NodeType) []Node
	// Edges returns a copy of all edges (optionally filtered by type).
	Edges(types ...EdgeType) []Edge
	// NodeCount returns the number of nodes (optionally filtered by type).
	NodeCount(types ...NodeType) int
	// EdgeCount returns the number of edges (optionally filtered by type).
	EdgeCount(types ...EdgeType) int
	// ComputeStats summarizes node and edge counts per type.
	ComputeStats() Stats
}

var (
	_ View = (*Ontology)(nil)
	_ View = (*Snapshot)(nil)
)
