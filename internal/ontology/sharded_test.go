package ontology

import (
	"fmt"
	"reflect"
	"testing"
)

// buildSample builds a small ontology with cross-type edges so shard
// projections get both home nodes and ghosts.
func buildSample(t *testing.T) *Snapshot {
	t.Helper()
	o := New()
	var ids []NodeID
	for i := 0; i < 12; i++ {
		ids = append(ids, o.AddNode(Concept, fmt.Sprintf("concept %02d", i)))
	}
	for i := 0; i < 6; i++ {
		ids = append(ids, o.AddNode(Entity, fmt.Sprintf("entity %02d", i)))
	}
	o.AddAlias(ids[0], "concept zero")
	for i := 0; i < 6; i++ {
		if err := o.AddEdge(ids[i], ids[12+i], IsA, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 12; i++ {
		if err := o.AddEdge(ids[0], ids[i], Correlate, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	return o.Snapshot()
}

func TestShardSnapshotPartition(t *testing.T) {
	union := buildSample(t)
	for _, k := range []int{1, 2, 4} {
		ss, err := ShardSnapshot(union, k)
		if err != nil {
			t.Fatal(err)
		}
		if ss.NumShards() != k || ss.Union() != union {
			t.Fatalf("k=%d: NumShards/Union broken", k)
		}
		// Every node home in exactly one shard, matching the routing index.
		seen := map[string]int{}
		total := 0
		for s := 0; s < k; s++ {
			for _, n := range ss.HomeNodes(s) {
				key := n.Type.String() + "|" + n.Phrase
				if prev, dup := seen[key]; dup {
					t.Fatalf("k=%d: %s home in shards %d and %d", k, key, prev, s)
				}
				seen[key] = s
				if home, ok := ss.ShardOf(n.Type, n.Phrase); !ok || home != s {
					t.Fatalf("k=%d: routing index says %d for %s (home %d)", k, home, key, s)
				}
				if HomeShard(n.Type, n.Phrase, k) != s {
					t.Fatalf("k=%d: HomeShard disagrees for %s", k, key)
				}
				total++
			}
		}
		if total != union.NodeCount() {
			t.Fatalf("k=%d: %d home nodes, want %d", k, total, union.NodeCount())
		}
		// Every shard projection is internally consistent: each edge
		// incident to at least one home node, endpoints resolvable.
		for s := 0; s < k; s++ {
			snap := ss.Shard(s)
			home := ss.HomeCount(s)
			for _, e := range snap.Edges() {
				if int(e.Src) >= snap.Len() || int(e.Dst) >= snap.Len() {
					t.Fatalf("k=%d shard %d: edge endpoint out of range", k, s)
				}
				if int(e.Src) >= home && int(e.Dst) >= home {
					t.Fatalf("k=%d shard %d: edge between two ghosts", k, s)
				}
			}
		}
	}
}

func TestShardSnapshotSingleShardIsUnion(t *testing.T) {
	union := buildSample(t)
	ss, err := ShardSnapshot(union, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Shard(0) != union {
		t.Fatal("k=1 must reuse the union snapshot, not copy it")
	}
	if ss.HomeCount(0) != union.Len() {
		t.Fatal("k=1 home count mismatch")
	}
}

func TestShardedSearchMatchesUnion(t *testing.T) {
	union := buildSample(t)
	for _, k := range []int{2, 4} {
		ss, err := ShardSnapshot(union, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, needle := range []string{"concept", "entity 0", "zero", "02", "no such phrase", ""} {
			for _, limit := range []int{1, 3, 100} {
				want := union.Search(needle, limit)
				got := ss.Search(needle, limit)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("k=%d Search(%q, %d) = %v, want %v", k, needle, limit, got, want)
				}
			}
		}
	}
}

func TestAdvanceReusesUntouched(t *testing.T) {
	union := buildSample(t)
	ss, err := ShardSnapshot(union, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Same union, nothing touched: all projections reused.
	next, err := ss.Advance(union, []bool{false, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if next.Shard(s) != ss.Shard(s) {
			t.Fatalf("untouched shard %d rebuilt", s)
		}
	}
	// One touched shard rebuilds, others are reused.
	next, err = ss.Advance(union, []bool{false, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		reused := next.Shard(s) == ss.Shard(s)
		if s == 1 && reused {
			t.Fatal("touched shard 1 not rebuilt")
		}
		if s != 1 && !reused {
			t.Fatalf("untouched shard %d rebuilt", s)
		}
	}
	if _, err := ss.Advance(union, []bool{true}); err == nil {
		t.Fatal("mismatched touched length must error")
	}
}

func TestShardedStoreIndependentGenerations(t *testing.T) {
	union := buildSample(t)
	ss, err := ShardSnapshot(union, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := NewShardedStore(3, 2)
	if st.NumShards() != 3 {
		t.Fatalf("NumShards = %d", st.NumShards())
	}
	for i := 0; i < 3; i++ {
		if gen := st.Push(i, ss.Shard(i)); gen != 1 {
			t.Fatalf("first push of shard %d -> gen %d", i, gen)
		}
	}
	// Only shard 1 republish: its generation bumps, the others stay.
	st.Push(1, ss.Shard(1))
	if got := st.CurrentGens(); !reflect.DeepEqual(got, []uint64{1, 2, 1}) {
		t.Fatalf("CurrentGens = %v", got)
	}
	if st.Shard(1).Len() != 2 {
		t.Fatalf("shard 1 retains %d generations", st.Shard(1).Len())
	}
}

func TestShardStatsCountsHomeNodesOnly(t *testing.T) {
	union := buildSample(t)
	ss, err := ShardSnapshot(union, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantTotals := union.ComputeStats()
	gotTotals := map[string]int{}
	for s := 0; s < 4; s++ {
		stats := ss.ShardStats(s)
		n := 0
		for typ, c := range stats.NodesByType {
			gotTotals[typ] += c
			n += c
		}
		if n != ss.HomeCount(s) {
			t.Fatalf("shard %d stats count %d nodes, home count %d", s, n, ss.HomeCount(s))
		}
	}
	if !reflect.DeepEqual(gotTotals, wantTotals.NodesByType) {
		t.Fatalf("summed shard node stats %v != union %v", gotTotals, wantTotals.NodesByType)
	}
}
