package ontology

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// richOntology builds a small ontology exercising every persisted field:
// aliases, event attributes, first-seen days and all edge types.
func richOntology() *Ontology {
	o := New()
	auto := o.AddNode(Category, "auto")
	sedans := o.AddNodeAt(Concept, "family sedans", 2)
	o.AddAlias(sedans, "sedans for families")
	o.AddAlias(sedans, "family sedan")
	civic := o.AddNode(Entity, "honda civic")
	accord := o.AddNode(Entity, "honda accord")
	show := o.AddNodeAt(Event, "honda unveils new accord", 7)
	o.SetEventAttrs(show, "unveils", "tokyo", 7)
	season := o.AddNode(Topic, "honda launch season")
	for _, e := range []Edge{
		{Src: auto, Dst: sedans, Type: IsA, Weight: 0.8},
		{Src: sedans, Dst: civic, Type: IsA, Weight: 1},
		{Src: sedans, Dst: accord, Type: IsA, Weight: 1},
		{Src: show, Dst: accord, Type: Involve, Weight: 1},
		{Src: season, Dst: show, Type: IsA, Weight: 1},
		{Src: civic, Dst: accord, Type: Correlate, Weight: 0.5},
	} {
		if err := o.AddEdge(e.Src, e.Dst, e.Type, e.Weight); err != nil {
			panic(err)
		}
	}
	return o
}

// TestSnapshotMatchesOntologyReads checks every View method agrees between
// an ontology and its snapshot, over randomized instances.
func TestSnapshotMatchesOntologyReads(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		o := randomOntology(seed)
		s := o.Snapshot()
		if !reflect.DeepEqual(o.Nodes(), s.Nodes()) {
			t.Fatalf("seed %d: Nodes mismatch", seed)
		}
		if !reflect.DeepEqual(o.Edges(), s.Edges()) {
			t.Fatalf("seed %d: Edges mismatch", seed)
		}
		if !reflect.DeepEqual(o.ComputeStats(), s.ComputeStats()) {
			t.Fatalf("seed %d: stats mismatch", seed)
		}
		for nt := NodeType(0); nt < NumNodeTypes; nt++ {
			if o.NodeCount(nt) != s.NodeCount(nt) {
				t.Fatalf("seed %d: NodeCount(%v) %d != %d", seed, nt, o.NodeCount(nt), s.NodeCount(nt))
			}
			if !reflect.DeepEqual(o.Nodes(nt), s.Nodes(nt)) {
				t.Fatalf("seed %d: Nodes(%v) mismatch", seed, nt)
			}
		}
		for et := EdgeType(0); et < NumEdgeTypes; et++ {
			if o.EdgeCount(et) != s.EdgeCount(et) {
				t.Fatalf("seed %d: EdgeCount(%v) %d != %d", seed, et, o.EdgeCount(et), s.EdgeCount(et))
			}
		}
		for _, n := range o.Nodes() {
			if got, ok := s.Get(n.ID); !ok || !reflect.DeepEqual(got, n) {
				t.Fatalf("seed %d: Get(%d) = %+v, %v", seed, n.ID, got, ok)
			}
			if got, ok := s.Find(n.Type, n.Phrase); !ok || got.ID != n.ID {
				t.Fatalf("seed %d: Find(%v,%q) = %+v, %v", seed, n.Type, n.Phrase, got, ok)
			}
			oAny, oOK := o.FindAny(n.Phrase)
			sAny, sOK := s.FindAny(n.Phrase)
			if oOK != sOK || oAny.ID != sAny.ID {
				t.Fatalf("seed %d: FindAny(%q) disagrees", seed, n.Phrase)
			}
			for et := EdgeType(0); et < NumEdgeTypes; et++ {
				if !reflect.DeepEqual(o.Children(n.ID, et), s.Children(n.ID, et)) {
					t.Fatalf("seed %d: Children(%d,%v) mismatch", seed, n.ID, et)
				}
				if !reflect.DeepEqual(o.Parents(n.ID, et), s.Parents(n.ID, et)) {
					t.Fatalf("seed %d: Parents(%d,%v) mismatch", seed, n.ID, et)
				}
			}
			if !reflect.DeepEqual(o.Ancestors(n.ID), s.Ancestors(n.ID)) {
				t.Fatalf("seed %d: Ancestors(%d) mismatch", seed, n.ID)
			}
		}
	}
}

// TestSnapshotIsImmune checks that mutating the source ontology after the
// snapshot is taken never shows through.
func TestSnapshotIsImmune(t *testing.T) {
	o := richOntology()
	s := o.Snapshot()
	nodes, edges := s.NodeCount(), s.EdgeCount()
	id := o.AddNode(Concept, "late arrival")
	o.AddAlias(id, "very late arrival")
	sedans, _ := o.Find(Concept, "family sedans")
	o.AddAlias(sedans.ID, "post-snapshot alias")
	if err := o.AddEdge(id, sedans.ID, Correlate, 1); err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != nodes || s.EdgeCount() != edges {
		t.Fatalf("snapshot grew: %d/%d -> %d/%d", nodes, edges, s.NodeCount(), s.EdgeCount())
	}
	if _, ok := s.Find(Concept, "late arrival"); ok {
		t.Fatal("snapshot sees a node added after it was taken")
	}
	snapSedans, _ := s.Find(Concept, "family sedans")
	for _, a := range snapSedans.Aliases {
		if a == "post-snapshot alias" {
			t.Fatal("snapshot sees an alias added after it was taken")
		}
	}
}

func TestSnapshotAliasAndAnyLookup(t *testing.T) {
	s := richOntology().Snapshot()
	id, ok := s.LookupAlias(Concept, "Sedans For Families")
	if !ok {
		t.Fatal("alias lookup failed")
	}
	if n, _ := s.Get(id); n.Phrase != "family sedans" {
		t.Fatalf("alias resolved to %q", n.Phrase)
	}
	if _, ok := s.LookupAny("family sedan"); !ok {
		t.Fatal("LookupAny should fall back to aliases")
	}
	if _, ok := s.LookupAny("no such phrase"); ok {
		t.Fatal("LookupAny hallucinated a node")
	}
	if got := s.Search("honda", 0); len(got) != 4 {
		t.Fatalf("Search(honda) = %d nodes, want 4", len(got))
	}
	if got := s.Search("honda", 2); len(got) != 2 {
		t.Fatalf("Search(honda, limit 2) = %d nodes", len(got))
	}
}

// TestSnapshotLookupZeroAlloc enforces the serving-tier contract: phrase
// lookup on the hot path allocates nothing.
func TestSnapshotLookupZeroAlloc(t *testing.T) {
	s := richOntology().Snapshot()
	var sink NodeID
	allocs := testing.AllocsPerRun(200, func() {
		id, ok := s.Lookup(Concept, "family sedans")
		if !ok {
			t.Fatal("lookup failed")
		}
		sink = id
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %.1f times per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		s.EachOut(sink, func(e *Edge, dst *Node) bool { return true })
	})
	if allocs != 0 {
		t.Fatalf("EachOut allocates %.1f times per op, want 0", allocs)
	}
}

// TestJSONRoundTripThroughSnapshot is the build -> save -> serve contract:
// SaveFile/LoadFile then Snapshot preserves node/edge counts, aliases and
// event attributes, and the snapshot re-saves byte-for-byte.
func TestJSONRoundTripThroughSnapshot(t *testing.T) {
	o := richOntology()
	dir := t.TempDir()
	path := filepath.Join(dir, "ao.json")
	if err := o.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	s, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.NodeCount() != o.NodeCount() || s.EdgeCount() != o.EdgeCount() {
		t.Fatalf("counts changed: %d/%d -> %d/%d", o.NodeCount(), o.EdgeCount(), s.NodeCount(), s.EdgeCount())
	}
	if !reflect.DeepEqual(o.Nodes(), s.Nodes()) {
		t.Fatal("nodes (incl. aliases/event attrs) changed across save/load/snapshot")
	}
	if !reflect.DeepEqual(o.Edges(), s.Edges()) {
		t.Fatal("edges changed across save/load/snapshot")
	}
	ev, ok := s.Find(Event, "honda unveils new accord")
	if !ok || ev.Trigger != "unveils" || ev.Location != "tokyo" || ev.Day != 7 {
		t.Fatalf("event attrs lost: %+v", ev)
	}

	resaved := filepath.Join(dir, "ao2.json")
	if err := s.SaveFile(resaved); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-save is not byte-for-byte identical")
	}
}

// BenchmarkSnapshotLookup measures the lock-free hot path; the 0 allocs/op
// report is part of the serving contract.
func BenchmarkSnapshotLookup(b *testing.B) {
	s := richOntology().Snapshot()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(Concept, "family sedans"); !ok {
			b.Fatal("lookup failed")
		}
	}
}

// BenchmarkOntologyFind is the mutex-guarded baseline for comparison.
func BenchmarkOntologyFind(b *testing.B) {
	o := richOntology()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := o.Find(Concept, "family sedans"); !ok {
			b.Fatal("find failed")
		}
	}
}
