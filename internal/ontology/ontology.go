// Package ontology implements the Attention Ontology of §2: a DAG of five
// node types (category, concept, entity, topic, event) connected by three
// edge types (isA, involve, correlate), with alias lists per node,
// concurrency-safe mutation, traversal helpers, statistics and JSON
// persistence.
package ontology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// NodeType is one of the five attention types.
type NodeType uint8

// Node types (§2).
const (
	Category NodeType = iota
	Concept
	Entity
	Topic
	Event
	NumNodeTypes = 5
)

// String names the node type.
func (t NodeType) String() string {
	switch t {
	case Category:
		return "category"
	case Concept:
		return "concept"
	case Entity:
		return "entity"
	case Topic:
		return "topic"
	case Event:
		return "event"
	default:
		return "unknown"
	}
}

// ParseNodeType resolves a node-type name ("category", "concept", …) back
// to its NodeType, the inverse of NodeType.String.
func ParseNodeType(s string) (NodeType, error) {
	for t := NodeType(0); t < NumNodeTypes; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("ontology: unknown node type %q", s)
}

// EdgeType is one of the three relationship types.
type EdgeType uint8

// Edge types (§2).
const (
	IsA EdgeType = iota
	Involve
	Correlate
	NumEdgeTypes = 3
)

// String names the edge type.
func (t EdgeType) String() string {
	switch t {
	case IsA:
		return "isA"
	case Involve:
		return "involve"
	case Correlate:
		return "correlate"
	default:
		return "unknown"
	}
}

// NodeID identifies a node.
type NodeID int

// Node is one attention node. Phrase is the canonical surface form; Aliases
// holds merged near-duplicate phrasings (attention phrase normalization).
type Node struct {
	ID      NodeID   `json:"id"`
	Type    NodeType `json:"type"`
	Phrase  string   `json:"phrase"`
	Aliases []string `json:"aliases,omitempty"`

	// Event/topic attributes (§2): involved entity phrases, trigger, time
	// and location.
	Trigger  string `json:"trigger,omitempty"`
	Location string `json:"location,omitempty"`
	Day      int    `json:"day,omitempty"`

	// FirstSeenDay supports growth accounting (Table 1 "Grow/day").
	FirstSeenDay int `json:"first_seen_day,omitempty"`

	// LastSeenDay is the most recent day the phrase was (re-)observed by a
	// build or an incremental update batch. The delta subsystem's TTL
	// retirement compares it against the current day; zero means "never
	// refreshed since first seen".
	LastSeenDay int `json:"last_seen_day,omitempty"`
}

// Edge is a typed directed edge src --type--> dst. For isA the destination
// is the instance ("Huawei Mate20 Pro" isA "Huawei Cellphones" is stored as
// src=concept, dst=entity per §2's source/destination wording).
type Edge struct {
	Src    NodeID   `json:"src"`
	Dst    NodeID   `json:"dst"`
	Type   EdgeType `json:"type"`
	Weight float64  `json:"weight,omitempty"`
}

// Ontology is the Attention Ontology store. Safe for concurrent use.
type Ontology struct {
	mu       sync.RWMutex
	nodes    []Node
	edges    []Edge
	byPhrase map[string]NodeID
	out      map[NodeID][]int // edge indices by source
	in       map[NodeID][]int // edge indices by destination
	edgeSet  map[edgeKey]bool
}

type edgeKey struct {
	src, dst NodeID
	typ      EdgeType
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		byPhrase: make(map[string]NodeID),
		out:      make(map[NodeID][]int),
		in:       make(map[NodeID][]int),
		edgeSet:  make(map[edgeKey]bool),
	}
}

// AddNode inserts a node with the given type and phrase, returning the new
// or existing ID (phrases are unique per ontology; a second insert with the
// same phrase returns the original node).
func (o *Ontology) AddNode(t NodeType, phrase string) NodeID {
	return o.AddNodeAt(t, phrase, 0)
}

// AddNodeAt is AddNode with an explicit first-seen day.
func (o *Ontology) AddNodeAt(t NodeType, phrase string, day int) NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.addNodeLocked(t, phrase, day)
}

func (o *Ontology) addNodeLocked(t NodeType, phrase string, day int) NodeID {
	key := nodeKey(t, phrase)
	if id, ok := o.byPhrase[key]; ok {
		return id
	}
	id := NodeID(len(o.nodes))
	o.nodes = append(o.nodes, Node{ID: id, Type: t, Phrase: phrase, FirstSeenDay: day})
	o.byPhrase[key] = id
	return id
}

// NodeSpec describes one node for batch insertion.
type NodeSpec struct {
	Type   NodeType
	Phrase string
	Day    int
}

// AddNodes inserts every spec under a single lock acquisition — the batch
// analogue of AddNodeAt for assembly loops that would otherwise contend on
// the mutex once per node. It returns the new-or-existing ID of each spec,
// in order.
func (o *Ontology) AddNodes(specs []NodeSpec) []NodeID {
	o.mu.Lock()
	defer o.mu.Unlock()
	ids := make([]NodeID, len(specs))
	for i, s := range specs {
		ids[i] = o.addNodeLocked(s.Type, s.Phrase, s.Day)
	}
	return ids
}

// AddAlias merges alias into node id's alias list.
func (o *Ontology) AddAlias(id NodeID, alias string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) >= len(o.nodes) || alias == o.nodes[id].Phrase {
		return
	}
	for _, a := range o.nodes[id].Aliases {
		if a == alias {
			return
		}
	}
	o.nodes[id].Aliases = append(o.nodes[id].Aliases, alias)
}

// SetEventAttrs fills the event/topic attributes of a node.
func (o *Ontology) SetEventAttrs(id NodeID, trigger, location string, day int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) >= len(o.nodes) {
		return
	}
	n := &o.nodes[id]
	n.Trigger, n.Location, n.Day = trigger, location, day
}

// SetLastSeen records the most recent day the node's phrase was observed
// (see Node.LastSeenDay); earlier values are never overwritten by smaller
// days.
func (o *Ontology) SetLastSeen(id NodeID, day int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if int(id) >= len(o.nodes) {
		return
	}
	if day > o.nodes[id].LastSeenDay {
		o.nodes[id].LastSeenDay = day
	}
}

// AddEdge inserts src --type--> dst with a weight, deduplicating repeats
// (the first weight wins). Self-edges are rejected.
func (o *Ontology) AddEdge(src, dst NodeID, t EdgeType, weight float64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.addEdgeLocked(Edge{Src: src, Dst: dst, Type: t, Weight: weight})
}

// AddEdges inserts a batch of edges under a single lock acquisition, with
// AddEdge's semantics per element. The first invalid edge aborts the batch
// (edges before it stay inserted).
func (o *Ontology) AddEdges(edges []Edge) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range edges {
		if err := o.addEdgeLocked(e); err != nil {
			return err
		}
	}
	return nil
}

func (o *Ontology) addEdgeLocked(e Edge) error {
	if e.Src == e.Dst {
		return fmt.Errorf("ontology: self edge on node %d", e.Src)
	}
	if int(e.Src) >= len(o.nodes) || int(e.Dst) >= len(o.nodes) || e.Src < 0 || e.Dst < 0 {
		return fmt.Errorf("ontology: edge endpoints out of range (%d,%d)", e.Src, e.Dst)
	}
	k := edgeKey{e.Src, e.Dst, e.Type}
	if o.edgeSet[k] {
		return nil
	}
	o.edgeSet[k] = true
	idx := len(o.edges)
	o.edges = append(o.edges, e)
	o.out[e.Src] = append(o.out[e.Src], idx)
	o.in[e.Dst] = append(o.in[e.Dst], idx)
	return nil
}

// NodeCount returns the number of nodes (optionally filtered by type).
func (o *Ontology) NodeCount(types ...NodeType) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(types) == 0 {
		return len(o.nodes)
	}
	n := 0
	for _, nd := range o.nodes {
		for _, t := range types {
			if nd.Type == t {
				n++
			}
		}
	}
	return n
}

// EdgeCount returns the number of edges (optionally filtered by type).
func (o *Ontology) EdgeCount(types ...EdgeType) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(types) == 0 {
		return len(o.edges)
	}
	n := 0
	for _, e := range o.edges {
		for _, t := range types {
			if e.Type == t {
				n++
			}
		}
	}
	return n
}

// Get returns a copy of the node.
func (o *Ontology) Get(id NodeID) (Node, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(o.nodes) {
		return Node{}, false
	}
	return o.nodes[id], true
}

// Find returns the node with the given type and phrase.
func (o *Ontology) Find(t NodeType, phrase string) (Node, bool) {
	o.mu.RLock()
	id, ok := o.byPhrase[nodeKey(t, phrase)]
	o.mu.RUnlock()
	if !ok {
		return Node{}, false
	}
	return o.Get(id)
}

// FindAny returns the first node with the phrase under any type.
func (o *Ontology) FindAny(phrase string) (Node, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for t := NodeType(0); t < NumNodeTypes; t++ {
		if id, ok := o.byPhrase[nodeKey(t, phrase)]; ok {
			return o.nodes[id], true
		}
	}
	return Node{}, false
}

// Children returns nodes reachable from id via out-edges of type t
// (e.g. the entities of a concept under IsA).
func (o *Ontology) Children(id NodeID, t EdgeType) []Node {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []Node
	for _, ei := range o.out[id] {
		e := o.edges[ei]
		if e.Type == t {
			out = append(out, o.nodes[e.Dst])
		}
	}
	return out
}

// Parents returns nodes with an edge of type t INTO id (e.g. the concepts an
// entity belongs to under IsA).
func (o *Ontology) Parents(id NodeID, t EdgeType) []Node {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []Node
	for _, ei := range o.in[id] {
		e := o.edges[ei]
		if e.Type == t {
			out = append(out, o.nodes[e.Src])
		}
	}
	return out
}

// Ancestors returns all transitive IsA parents of id.
func (o *Ontology) Ancestors(id NodeID) []Node {
	seen := map[NodeID]bool{id: true}
	var out []Node
	frontier := []NodeID{id}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, f := range frontier {
			for _, p := range o.Parents(f, IsA) {
				if !seen[p.ID] {
					seen[p.ID] = true
					out = append(out, p)
					next = append(next, p.ID)
				}
			}
		}
		frontier = next
	}
	return out
}

// Nodes returns a copy of all nodes (optionally filtered by type).
func (o *Ontology) Nodes(types ...NodeType) []Node {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return filterNodes(o.nodes, types)
}

// Edges returns a copy of all edges (optionally filtered by type).
func (o *Ontology) Edges(types ...EdgeType) []Edge {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return filterEdges(o.edges, types)
}

// filterNodes copies nodes, keeping those matching any of the given types
// (all of them when types is empty). Shared by Ontology (under its read
// lock) and Snapshot.
func filterNodes(nodes []Node, types []NodeType) []Node {
	out := make([]Node, 0, len(nodes))
	for _, n := range nodes {
		if len(types) == 0 {
			out = append(out, n)
			continue
		}
		for _, t := range types {
			if n.Type == t {
				out = append(out, n)
			}
		}
	}
	return out
}

// filterEdges is filterNodes for edges.
func filterEdges(edges []Edge, types []EdgeType) []Edge {
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if len(types) == 0 {
			out = append(out, e)
			continue
		}
		for _, t := range types {
			if e.Type == t {
				out = append(out, e)
			}
		}
	}
	return out
}

// Stats summarizes node and edge counts per type (Table 1 / Table 2 rows).
type Stats struct {
	NodesByType map[string]int `json:"nodes_by_type"`
	EdgesByType map[string]int `json:"edges_by_type"`
}

// ComputeStats builds the summary.
func (o *Ontology) ComputeStats() Stats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	s := Stats{NodesByType: map[string]int{}, EdgesByType: map[string]int{}}
	for _, n := range o.nodes {
		s.NodesByType[n.Type.String()]++
	}
	for _, e := range o.edges {
		s.EdgesByType[e.Type.String()]++
	}
	return s
}

// GrowthOn returns the number of nodes of type t first seen on the given
// day.
func (o *Ontology) GrowthOn(t NodeType, day int) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := 0
	for _, nd := range o.nodes {
		if nd.Type == t && nd.FirstSeenDay == day {
			n++
		}
	}
	return n
}

// HasCycleIsA reports whether the IsA subgraph contains a cycle (the AO must
// remain a DAG).
func (o *Ontology) HasCycleIsA() bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	state := make([]uint8, len(o.nodes)) // 0 unseen, 1 in stack, 2 done
	var dfs func(NodeID) bool
	dfs = func(v NodeID) bool {
		state[v] = 1
		for _, ei := range o.out[v] {
			e := o.edges[ei]
			if e.Type != IsA {
				continue
			}
			switch state[e.Dst] {
			case 1:
				return true
			case 0:
				if dfs(e.Dst) {
					return true
				}
			}
		}
		state[v] = 2
		return false
	}
	for i := range o.nodes {
		if state[i] == 0 && dfs(NodeID(i)) {
			return true
		}
	}
	return false
}

type persisted struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// WriteJSON serializes the ontology.
func (o *Ontology) WriteJSON(w io.Writer) error {
	o.mu.RLock()
	p := persisted{Nodes: o.nodes, Edges: o.edges}
	o.mu.RUnlock()
	return writePersisted(w, p)
}

func writePersisted(w io.Writer, p persisted) error {
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// ReadJSON deserializes an ontology written by WriteJSON. A shard
// projection file (giantctl shard) is rejected: its node list is one
// shard's home nodes plus ghosts under local IDs — a plausible-looking
// but wrong world if ever adopted as the whole ontology.
func ReadJSON(r io.Reader) (*Ontology, error) {
	var p struct {
		persisted
		NumShards int `json:"num_shards"`
	}
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("ontology: decode: %w", err)
	}
	if p.NumShards > 0 {
		return nil, fmt.Errorf("ontology: this is a shard projection file (%d shards); boot it with giantd -shard i/%d or load it with LoadShardFile", p.NumShards, p.NumShards)
	}
	return fromNodesEdges(p.Nodes, p.Edges)
}

// fromNodesEdges rebuilds a mutable Ontology from persisted (or snapshot)
// node and edge lists, preserving every node attribute.
func fromNodesEdges(nodes []Node, edges []Edge) (*Ontology, error) {
	o := New()
	for _, n := range nodes {
		id := o.AddNodeAt(n.Type, n.Phrase, n.FirstSeenDay)
		o.SetEventAttrs(id, n.Trigger, n.Location, n.Day)
		o.SetLastSeen(id, n.LastSeenDay)
		for _, a := range n.Aliases {
			o.AddAlias(id, a)
		}
	}
	for _, e := range edges {
		if err := o.AddEdge(e.Src, e.Dst, e.Type, e.Weight); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// FromSnapshot rebuilds a mutable Ontology equivalent to the snapshot —
// the inverse of Ontology.Snapshot. The incremental-update path uses it to
// re-adopt a delta-applied snapshot as the system's working ontology
// without re-running the mining pipeline.
func FromSnapshot(s *Snapshot) (*Ontology, error) {
	return fromNodesEdges(s.Nodes(), s.Edges())
}

// SaveFile writes the ontology to path as JSON, crash-safely (see
// Snapshot.SaveFile).
func (o *Ontology) SaveFile(path string) error {
	return writeFileAtomic(path, o.WriteJSON)
}

// LoadFile reads an ontology from path, auto-detecting the format by
// magic: a GIANTBIN snapshot decodes through the columnar path and is
// rebuilt into a mutable Ontology; anything else parses as JSON. Binary
// shard projection files are rejected just like their JSON counterparts.
func LoadFile(path string) (*Ontology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if IsBinary(data) {
		snap, err := DecodeSnapshotBinary(data)
		if err != nil {
			return nil, fmt.Errorf("ontology: load %s: %w", path, err)
		}
		return FromSnapshot(snap)
	}
	return ReadJSON(bytes.NewReader(data))
}

// Dump renders a sorted human-readable listing (debugging aid).
func (o *Ontology) Dump(w io.Writer) {
	nodes := o.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		fmt.Fprintf(w, "[%d] %s %q\n", n.ID, n.Type, n.Phrase)
	}
}

func nodeKey(t NodeType, phrase string) string {
	return t.String() + "\x00" + strings.ToLower(phrase)
}
