package ontology

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomOntology builds a random (acyclic-by-construction for IsA) ontology
// from a seed.
func randomOntology(seed int64) *Ontology {
	rng := rand.New(rand.NewSource(seed))
	o := New()
	n := 3 + rng.Intn(20)
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		t := NodeType(rng.Intn(int(NumNodeTypes)))
		id := o.AddNodeAt(t, t.String()+"-"+string(rune('a'+i%26))+string(rune('0'+i/26)), rng.Intn(30))
		ids = append(ids, id)
	}
	// Edges only from lower to higher index keep IsA acyclic.
	for k := 0; k < n*2; k++ {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		et := EdgeType(rng.Intn(int(NumEdgeTypes)))
		_ = o.AddEdge(ids[i], ids[j], et, rng.Float64())
	}
	return o
}

func TestPropertyJSONRoundTripPreservesEverything(t *testing.T) {
	f := func(seed int64) bool {
		o := randomOntology(seed)
		var buf bytes.Buffer
		if err := o.WriteJSON(&buf); err != nil {
			return false
		}
		o2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if o2.NodeCount() != o.NodeCount() || o2.EdgeCount() != o.EdgeCount() {
			return false
		}
		for _, et := range []EdgeType{IsA, Involve, Correlate} {
			if o2.EdgeCount(et) != o.EdgeCount(et) {
				return false
			}
		}
		// Every node findable by (type, phrase) in both.
		for _, n := range o.Nodes() {
			if _, ok := o2.Find(n.Type, n.Phrase); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyForwardEdgesStayAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		return !randomOntology(seed).HasCycleIsA()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParentsChildrenInverse(t *testing.T) {
	f := func(seed int64) bool {
		o := randomOntology(seed)
		for _, n := range o.Nodes() {
			for _, child := range o.Children(n.ID, IsA) {
				ok := false
				for _, p := range o.Parents(child.ID, IsA) {
					if p.ID == n.ID {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNodeCountPartitionsByType(t *testing.T) {
	f := func(seed int64) bool {
		o := randomOntology(seed)
		sum := 0
		for typ := NodeType(0); typ < NumNodeTypes; typ++ {
			sum += o.NodeCount(typ)
		}
		return sum == o.NodeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
