package ontology

import (
	"bytes"
	"sync"
	"testing"
)

func TestAddNodeDeduplicates(t *testing.T) {
	o := New()
	a := o.AddNode(Concept, "economy cars")
	b := o.AddNode(Concept, "economy cars")
	if a != b {
		t.Fatal("duplicate phrase created a second node")
	}
	c := o.AddNode(Entity, "economy cars") // same phrase, different type
	if c == a {
		t.Fatal("node types must namespace phrases")
	}
	if o.NodeCount() != 2 {
		t.Fatalf("node count = %d", o.NodeCount())
	}
}

func TestEdgesAndTraversal(t *testing.T) {
	o := New()
	cat := o.AddNode(Category, "auto")
	con := o.AddNode(Concept, "economy cars")
	ent := o.AddNode(Entity, "honda civic")
	if err := o.AddEdge(cat, con, IsA, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(con, ent, IsA, 1); err != nil {
		t.Fatal(err)
	}
	// Children/parents.
	if ch := o.Children(con, IsA); len(ch) != 1 || ch[0].Phrase != "honda civic" {
		t.Fatalf("children = %+v", ch)
	}
	if ps := o.Parents(ent, IsA); len(ps) != 1 || ps[0].Phrase != "economy cars" {
		t.Fatalf("parents = %+v", ps)
	}
	anc := o.Ancestors(ent)
	if len(anc) != 2 {
		t.Fatalf("ancestors = %d, want 2", len(anc))
	}
}

func TestEdgeDedupAndSelfEdge(t *testing.T) {
	o := New()
	a := o.AddNode(Concept, "a")
	b := o.AddNode(Concept, "b")
	if err := o.AddEdge(a, b, IsA, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(a, b, IsA, 0.5); err != nil {
		t.Fatal(err) // dedupe silently
	}
	if o.EdgeCount(IsA) != 1 {
		t.Fatalf("edge count = %d", o.EdgeCount(IsA))
	}
	if err := o.AddEdge(a, a, Correlate, 1); err == nil {
		t.Fatal("self edge should error")
	}
	if err := o.AddEdge(a, NodeID(99), IsA, 1); err == nil {
		t.Fatal("out-of-range edge should error")
	}
}

func TestAliases(t *testing.T) {
	o := New()
	id := o.AddNode(Concept, "fuel-efficient cars")
	o.AddAlias(id, "fuel efficient car")
	o.AddAlias(id, "fuel efficient car")  // repeat
	o.AddAlias(id, "fuel-efficient cars") // same as phrase
	n, _ := o.Get(id)
	if len(n.Aliases) != 1 {
		t.Fatalf("aliases = %v", n.Aliases)
	}
}

func TestStatsAndGrowth(t *testing.T) {
	o := New()
	o.AddNodeAt(Concept, "a", 1)
	o.AddNodeAt(Concept, "b", 2)
	o.AddNodeAt(Event, "c happened", 2)
	st := o.ComputeStats()
	if st.NodesByType["concept"] != 2 || st.NodesByType["event"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if o.GrowthOn(Concept, 2) != 1 || o.GrowthOn(Event, 2) != 1 {
		t.Fatal("growth accounting wrong")
	}
}

func TestCycleDetection(t *testing.T) {
	o := New()
	a := o.AddNode(Concept, "a")
	b := o.AddNode(Concept, "b")
	c := o.AddNode(Concept, "c")
	_ = o.AddEdge(a, b, IsA, 1)
	_ = o.AddEdge(b, c, IsA, 1)
	if o.HasCycleIsA() {
		t.Fatal("acyclic graph reported cyclic")
	}
	_ = o.AddEdge(c, a, IsA, 1)
	if !o.HasCycleIsA() {
		t.Fatal("cycle not detected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	o := New()
	cat := o.AddNodeAt(Category, "music", 0)
	ev := o.AddNodeAt(Event, "taylor swift hold concert", 3)
	o.SetEventAttrs(ev, "hold", "london", 3)
	o.AddAlias(ev, "swift concert")
	_ = o.AddEdge(cat, ev, IsA, 0.8)

	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	o2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := o2.Find(Event, "taylor swift hold concert")
	if !ok {
		t.Fatal("event lost in round trip")
	}
	if n.Trigger != "hold" || n.Location != "london" || n.Day != 3 {
		t.Fatalf("event attrs lost: %+v", n)
	}
	if len(n.Aliases) != 1 || n.Aliases[0] != "swift concert" {
		t.Fatalf("aliases lost: %v", n.Aliases)
	}
	if o2.EdgeCount(IsA) != 1 {
		t.Fatal("edges lost")
	}
	es := o2.Edges(IsA)
	if es[0].Weight != 0.8 {
		t.Fatalf("weight lost: %v", es[0].Weight)
	}
}

func TestFindAny(t *testing.T) {
	o := New()
	o.AddNode(Topic, "cellphone explosion")
	n, ok := o.FindAny("cellphone explosion")
	if !ok || n.Type != Topic {
		t.Fatalf("FindAny = %+v %v", n, ok)
	}
	if _, ok := o.FindAny("nothing"); ok {
		t.Fatal("FindAny on missing phrase")
	}
}

func TestConcurrentMutation(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := o.AddNode(Entity, "shared entity") // same node from all goroutines
				_ = id
				other := o.AddNode(Concept, "concept")
				_ = o.AddEdge(other, id, IsA, 1)
				o.NodeCount()
				o.Children(other, IsA)
			}
		}(w)
	}
	wg.Wait()
	if o.NodeCount() != 2 || o.EdgeCount() != 1 {
		t.Fatalf("concurrent dedupe failed: %d nodes %d edges", o.NodeCount(), o.EdgeCount())
	}
}

func TestTypeStrings(t *testing.T) {
	if Concept.String() != "concept" || IsA.String() != "isA" || Correlate.String() != "correlate" {
		t.Fatal("type strings broken")
	}
}
