package ontology

// ShardProjection is the boot artifact of a per-shard serving process: one
// shard's self-contained Snapshot plus the routing identity (shard index,
// shard count, home-node prefix length) and the local→union node-ID table
// that lets the shard render responses in the composed view's ID space. A
// projection round-trips through JSON (SaveFile / LoadShardFile), so the
// offline tier can export K shard files and K independent giantd processes
// can each boot from exactly one of them — no process ever needs the union.
//
// Layout invariants (established by ShardedSnapshot.Projection and
// re-validated on load):
//
//   - Snap.nodes[:HomeCount] are the shard's home nodes in union ID order;
//     the rest are ghost copies of remote endpoints.
//   - UnionIDs[local] is the union node ID the local node resolves to via
//     the union phrase index — the same remap scatter-gather Search uses.
//   - Every union edge is "owned" by exactly one shard: the home shard of
//     its source node. Summing owned-edge counts across shards therefore
//     reproduces the union edge count even though cross-shard edges are
//     stored on both endpoint shards.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// ErrNotShardFile reports that a file parsed as JSON but carries no shard
// identity — i.e. it is (at most) a plain ontology artifact, not a shard
// projection. LoadShardInput falls back to the plain loader only on this
// error; a file that CLAIMS a shard identity but fails validation is
// corrupt and must surface as such, never silently re-interpreted.
var ErrNotShardFile = errors.New("ontology: not a shard projection file")

// ShardProjection bundles one shard's snapshot with its routing identity.
// Fields are read-only after construction; use ShardedSnapshot.Projection
// or ReadShardProjection to build one with its indexes populated.
type ShardProjection struct {
	Snap      *Snapshot
	Shard     int
	NumShards int
	// HomeCount is the length of the home-node prefix of Snap's node list;
	// nodes at local ID >= HomeCount are ghosts.
	HomeCount int
	// UnionIDs maps local node IDs to union node IDs (-1 when the union
	// held no resolvable key, which a well-formed projection never has).
	UnionIDs []NodeID

	byUnion map[NodeID]NodeID // union ID -> local ID

	// grams is the lazily built term-gram index over the home-node prefix —
	// the shard's term-routing surface (TermStats). The binary decode path
	// may pre-populate it from the persisted section; JSON loads recompute
	// it, deterministically yielding identical bytes.
	gramsOnce sync.Once
	grams     *TermGrams
}

// index builds the reverse union→local table; called once at construction.
func (p *ShardProjection) index() {
	p.byUnion = make(map[NodeID]NodeID, len(p.UnionIDs))
	for local, uid := range p.UnionIDs {
		if uid < 0 {
			continue
		}
		if _, dup := p.byUnion[uid]; !dup {
			p.byUnion[uid] = NodeID(local)
		}
	}
}

// validate checks the projection invariants shared by the derive and load
// paths.
func (p *ShardProjection) validate() error {
	if p.NumShards < 1 {
		return fmt.Errorf("ontology: shard projection has %d shards", p.NumShards)
	}
	if p.Shard < 0 || p.Shard >= p.NumShards {
		return fmt.Errorf("ontology: shard index %d out of range for %d shards", p.Shard, p.NumShards)
	}
	if p.HomeCount < 0 || p.HomeCount > p.Snap.Len() {
		return fmt.Errorf("ontology: home count %d out of range for %d nodes", p.HomeCount, p.Snap.Len())
	}
	if len(p.UnionIDs) != p.Snap.Len() {
		return fmt.Errorf("ontology: %d union IDs for %d nodes", len(p.UnionIDs), p.Snap.Len())
	}
	return nil
}

// IsHome reports whether the local node ID is a home node (not a ghost).
func (p *ShardProjection) IsHome(local NodeID) bool {
	return local >= 0 && int(local) < p.HomeCount
}

// UnionID maps a local node ID to its union node ID.
func (p *ShardProjection) UnionID(local NodeID) NodeID {
	if int(local) < 0 || int(local) >= len(p.UnionIDs) {
		return -1
	}
	return p.UnionIDs[local]
}

// LocalOf maps a union node ID back to the local node ID, ok=false when
// this shard's projection holds no copy of that node.
func (p *ShardProjection) LocalOf(union NodeID) (NodeID, bool) {
	local, ok := p.byUnion[union]
	return local, ok
}

// SearchHome is the per-shard half of scatter-gather search: a substring
// scan over the home-node prefix only (ghosts are scanned by their own home
// shard), early-exiting at limit. Hit IDs are local; callers render them
// through UnionID. Merging every shard's SearchHome output in union-ID
// order reproduces Snapshot.Search over the union exactly. The home-prefix
// term-gram index short-circuits needles no home node can contain.
func (p *ShardProjection) SearchHome(needle string, limit int) []Node {
	needle = strings.ToLower(needle)
	if needle == "" {
		return nil
	}
	if !p.TermGrams().MayContain(needle) {
		return nil
	}
	return searchNodes(p.Snap.nodes[:p.HomeCount], needle, limit)
}

// TermGrams returns the term-gram index over the home-node prefix,
// building it on first use (safe under concurrent readers). Ghosts are
// excluded: they are scanned — and therefore routed — by their own home
// shard.
func (p *ShardProjection) TermGrams() *TermGrams {
	p.gramsOnce.Do(func() {
		if p.grams == nil {
			p.grams = BuildTermGrams(p.Snap.nodes[:p.HomeCount])
		}
	})
	return p.grams
}

// TermStats packages the shard's term-routing surface for /v1/stats: a
// router decodes each shard's grams and consults only the shards whose
// index may contain the query. Deterministic in the home-node contents.
func (p *ShardProjection) TermStats() TermStats {
	return TermStats{Grams: p.TermGrams().Encode()}
}

// HomeStats summarizes the shard's owned slice of the union: home nodes by
// type and owned edges (source homed here) by type. Summing HomeStats
// across all shards reproduces the union's ComputeStats.
func (p *ShardProjection) HomeStats() Stats {
	s := Stats{NodesByType: map[string]int{}, EdgesByType: map[string]int{}}
	for i := 0; i < p.HomeCount; i++ {
		s.NodesByType[p.Snap.nodes[i].Type.String()]++
	}
	for i := range p.Snap.edges {
		if int(p.Snap.edges[i].Src) < p.HomeCount {
			s.EdgesByType[p.Snap.edges[i].Type.String()]++
		}
	}
	return s
}

// OwnedEdgeCount counts the edges this shard owns (source homed here); the
// sum across shards equals the union edge count.
func (p *ShardProjection) OwnedEdgeCount() int {
	n := 0
	for i := range p.Snap.edges {
		if int(p.Snap.edges[i].Src) < p.HomeCount {
			n++
		}
	}
	return n
}

// shardPersisted is the wire form of a shard projection file. The presence
// of num_shards distinguishes it from a plain ontology file.
type shardPersisted struct {
	Shard     int      `json:"shard"`
	NumShards int      `json:"num_shards"`
	HomeCount int      `json:"home_count"`
	UnionIDs  []NodeID `json:"union_ids"`
	Nodes     []Node   `json:"nodes"`
	Edges     []Edge   `json:"edges"`
}

// WriteJSON serializes the projection; ReadShardProjection inverts it.
func (p *ShardProjection) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(shardPersisted{
		Shard: p.Shard, NumShards: p.NumShards, HomeCount: p.HomeCount,
		UnionIDs: p.UnionIDs, Nodes: p.Snap.nodes, Edges: p.Snap.edges,
	})
}

// SaveFile writes the projection to path as JSON, crash-safely (see
// Snapshot.SaveFile).
func (p *ShardProjection) SaveFile(path string) error {
	return writeFileAtomic(path, p.WriteJSON)
}

// SaveFileFormat writes the projection to path in the given format,
// crash-safely.
func (p *ShardProjection) SaveFileFormat(path string, format FileFormat) error {
	if format == FormatBinary {
		return p.SaveBinaryFile(path)
	}
	return p.SaveFile(path)
}

// ReadShardProjection reads a shard projection written by WriteJSON,
// re-indexing and re-validating it exactly as the derive path does.
func ReadShardProjection(r io.Reader) (*ShardProjection, error) {
	var sp shardPersisted
	if err := json.NewDecoder(r).Decode(&sp); err != nil {
		return nil, fmt.Errorf("ontology: decode shard projection: %w", err)
	}
	if sp.NumShards == 0 {
		return nil, fmt.Errorf("%w (no num_shards; use LoadSnapshotFile for plain ontology files)", ErrNotShardFile)
	}
	snap, err := BuildSnapshot(sp.Nodes, sp.Edges)
	if err != nil {
		return nil, err
	}
	p := &ShardProjection{
		Snap: snap, Shard: sp.Shard, NumShards: sp.NumShards,
		HomeCount: sp.HomeCount, UnionIDs: sp.UnionIDs,
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	p.index()
	return p, nil
}

// LoadShardFile reads a shard projection from the file at path,
// auto-detecting the format by magic: GIANTBIN artifacts decode through
// the columnar path, anything else parses as JSON. A binary snapshot
// (union) artifact yields ErrNotShardFile, mirroring the JSON behaviour,
// so LoadShardInput's derive fallback works for both formats.
func LoadShardFile(path string) (*ShardProjection, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if IsBinary(data) {
		return DecodeShardBinary(data)
	}
	return ReadShardProjection(bytes.NewReader(data))
}

// LoadShardInput resolves the -in artifact of a per-shard server: a shard
// projection file boots directly (its identity must match shard/numShards),
// while a plain ontology file is partitioned on the fly and shard i's
// projection derived — handy when only the union artifact is distributed.
func LoadShardInput(path string, shard, numShards int) (*ShardProjection, error) {
	p, err := LoadShardFile(path)
	if err == nil {
		if p.Shard != shard || p.NumShards != numShards {
			return nil, fmt.Errorf("ontology: %s holds shard %d/%d, want %d/%d", path, p.Shard, p.NumShards, shard, numShards)
		}
		return p, nil
	}
	if !errors.Is(err, ErrNotShardFile) {
		// The file claims to be (or fails to even parse as) a shard
		// projection: surface that, don't reinterpret a corrupt artifact
		// as a plain ontology and silently serve a wrong world.
		return nil, fmt.Errorf("ontology: load %s: %w", path, err)
	}
	if shard < 0 || shard >= numShards {
		return nil, fmt.Errorf("ontology: shard index %d out of range for %d shards", shard, numShards)
	}
	snap, err := LoadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	ss, err := ShardSnapshot(snap, numShards)
	if err != nil {
		return nil, err
	}
	return ss.Projection(shard), nil
}
