package ontology

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
)

// DefaultRetention is the number of snapshot generations a Store keeps when
// the caller does not choose one.
const DefaultRetention = 4

// Generation is one retained snapshot version.
type Generation struct {
	Gen   uint64
	Snap  *Snapshot
	Nodes int
	Edges int
}

// Store is a versioned snapshot store: a bounded history of immutable
// ontology generations with monotonically increasing generation numbers.
// The serving tier pushes every published snapshot (initial load, reload,
// ingest) into the store, which makes rollback a pure pointer operation —
// no rebuild, no file I/O. Retention is bounded: pushing beyond the
// configured depth evicts the oldest generation (snapshots are immutable,
// so eviction is just dropping a reference).
//
// Generation numbers are never reused, even after a rollback pops the
// newest entry, so "generation N" always denotes the same snapshot for the
// lifetime of the store.
type Store struct {
	mu        sync.Mutex
	gens      []Generation // oldest .. newest
	retention int
	nextGen   uint64
}

// NewStore returns an empty store retaining up to retention generations
// (<= 0 means DefaultRetention).
func NewStore(retention int) *Store {
	if retention <= 0 {
		retention = DefaultRetention
	}
	return &Store{retention: retention}
}

// Push records snap as the new current generation and returns its
// generation number, evicting the oldest retained generation when the
// history exceeds the retention bound.
func (st *Store) Push(snap *Snapshot) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextGen++
	st.gens = append(st.gens, Generation{
		Gen: st.nextGen, Snap: snap,
		Nodes: snap.NodeCount(), Edges: snap.EdgeCount(),
	})
	if len(st.gens) > st.retention {
		st.gens = append(st.gens[:0:0], st.gens[len(st.gens)-st.retention:]...)
	}
	return st.nextGen
}

// SeedGeneration pre-positions an EMPTY store's generation counter so
// the next Push mints lastGen+1. A replica hydrating a checkpoint uses
// this to resume the exact serving-generation sequence a full replay
// would have produced: generation numbers are part of the replicated
// contract (X-Giant-Generation, cache keys), so a checkpoint boot must
// not restart them at 1.
func (st *Store) SeedGeneration(lastGen uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.gens) != 0 || st.nextGen != 0 {
		return fmt.Errorf("ontology: SeedGeneration on a store already at generation %d", st.nextGen)
	}
	st.nextGen = lastGen
	return nil
}

// Current returns the newest generation, or ok=false on an empty store.
func (st *Store) Current() (Generation, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.gens) == 0 {
		return Generation{}, false
	}
	return st.gens[len(st.gens)-1], true
}

// Get returns the snapshot of a specific retained generation.
func (st *Store) Get(gen uint64) (*Snapshot, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range st.gens {
		if st.gens[i].Gen == gen {
			return st.gens[i].Snap, true
		}
	}
	return nil, false
}

// Rollback discards the newest generation and returns the one before it,
// which becomes current. It fails when fewer than two generations are
// retained (there is nothing to roll back to).
func (st *Store) Rollback() (Generation, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.gens) < 2 {
		return Generation{}, fmt.Errorf("ontology: store holds %d generation(s); nothing to roll back to", len(st.gens))
	}
	st.gens = st.gens[:len(st.gens)-1]
	return st.gens[len(st.gens)-1], nil
}

// SaveCurrent writes the current generation's snapshot to path as a
// GIANTBIN artifact with the generation number stamped into the header,
// returning that generation. A replica hydrating from the file (Hydrate)
// can therefore report which donor generation it booted from. Fails on an
// empty store.
func (st *Store) SaveCurrent(path string) (uint64, error) {
	cur, ok := st.Current()
	if !ok {
		return 0, fmt.Errorf("ontology: store is empty; nothing to save")
	}
	err := writeFileAtomic(path, func(w io.Writer) error {
		return encodeBinary(w, cur.Snap, nil, cur.Gen)
	})
	if err != nil {
		return 0, err
	}
	return cur.Gen, nil
}

// Hydrate loads the snapshot file at path (either format) and pushes it as
// this store's new current generation. It returns the local generation
// number assigned by the push and the donor generation stamped in the file
// (0 for JSON artifacts or unstamped binaries) — the replica-hydration
// seam: ship a SaveCurrent artifact to a fresh process, Hydrate it, and
// the process serves the donor's world without replaying any deltas.
func (st *Store) Hydrate(path string) (local, donor uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var snap *Snapshot
	if IsBinary(data) {
		snap, donor, err = decodeSnapshotBinaryGen(data)
		if err != nil {
			return 0, 0, fmt.Errorf("ontology: hydrate %s: %w", path, err)
		}
	} else {
		snap, err = SnapshotFromJSON(bytes.NewReader(data))
		if err != nil {
			return 0, 0, err
		}
	}
	return st.Push(snap), donor, nil
}

// Len returns the number of retained generations.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.gens)
}

// Generations lists the retained generations, oldest first, without their
// snapshots (summary view for stats endpoints).
func (st *Store) Generations() []Generation {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Generation, len(st.gens))
	copy(out, st.gens)
	for i := range out {
		out[i].Snap = nil
	}
	return out
}

// ShardedStore tracks one versioned Store per shard, so a sharded serving
// tier can bump generations independently: publishing an ingest delta that
// touched two shards pushes two shard stores and leaves the others at
// their current generation. Shard generation numbers are per-shard
// monotonic (shard 3 generation 5 and shard 0 generation 5 are unrelated).
type ShardedStore struct {
	stores []*Store
}

// NewShardedStore returns a store set for k shards, each retaining up to
// retention generations (<= 0 means DefaultRetention).
func NewShardedStore(k, retention int) *ShardedStore {
	if k < 1 {
		k = 1
	}
	ss := &ShardedStore{stores: make([]*Store, k)}
	for i := range ss.stores {
		ss.stores[i] = NewStore(retention)
	}
	return ss
}

// NumShards returns the shard count.
func (ss *ShardedStore) NumShards() int { return len(ss.stores) }

// Shard returns shard i's store.
func (ss *ShardedStore) Shard(i int) *Store { return ss.stores[i] }

// Push records snap as shard i's new current generation and returns its
// per-shard generation number.
func (ss *ShardedStore) Push(i int, snap *Snapshot) uint64 {
	return ss.stores[i].Push(snap)
}

// CurrentGens returns the current generation number of every shard (0 for
// a shard that has never published).
func (ss *ShardedStore) CurrentGens() []uint64 {
	out := make([]uint64, len(ss.stores))
	for i, st := range ss.stores {
		if g, ok := st.Current(); ok {
			out[i] = g.Gen
		}
	}
	return out
}
