package ontology

// Scope is the merge participant abstraction behind the union-exact
// application endpoints (/v1/tag, /v1/query/rewrite, /v1/story). A scope is
// a View plus two maps that let per-shard code extract *partial* candidate
// sets carrying union node IDs:
//
//   - Home reports whether the scope owns the node: every node of the union
//     is home in exactly one scope of a partition, so concatenating the home
//     sets of all scopes reproduces the union node set without duplicates.
//   - UID translates the scope's local node ID into the union ID, the shared
//     currency every merge site orders and deduplicates by.
//
// Three partitions cover every serving mode:
//
//   - UnionScope(v): a single scope where everything is home and IDs are
//     already union IDs. Merging the one partial extracted from it IS the
//     single-snapshot computation — which is how single-process handlers and
//     the scatter-gather handlers share one code path byte-identically.
//   - ShardScope(union, shard, k): in-process sharded serving. The view is
//     the union snapshot but only nodes hashing to the shard are home.
//   - ProjectionScope(p): a shard-file projection (home prefix + ghosts)
//     served by a standalone shard process; UID goes through the
//     projection's union-ID table.
type Scope struct {
	View View
	// Home reports whether this scope owns the node (n.ID is the scope's
	// local ID).
	Home func(n *Node) bool
	// UID maps a scope-local node ID to its union ID.
	UID func(NodeID) NodeID
}

// UnionScope wraps a full union view: every node is home, IDs are union IDs.
func UnionScope(v View) Scope {
	return Scope{
		View: v,
		Home: func(*Node) bool { return true },
		UID:  func(id NodeID) NodeID { return id },
	}
}

// ShardScope scopes a union view to the nodes whose deterministic home is
// the given shard. Local IDs are union IDs (the view is the union), so UID
// is the identity.
func ShardScope(v View, shard, k int) Scope {
	return Scope{
		View: v,
		Home: func(n *Node) bool { return HomeShard(n.Type, n.Phrase, k) == shard },
		UID:  func(id NodeID) NodeID { return id },
	}
}

// ProjectionScope scopes a shard projection: home means the node sits in the
// projection's home prefix, and UID translates through its union-ID table.
func ProjectionScope(p *ShardProjection) Scope {
	return Scope{
		View: p.Snap,
		Home: func(n *Node) bool { return p.IsHome(n.ID) },
		UID:  p.UnionID,
	}
}

// HomeNodes returns the scope's home nodes of the given type in ascending
// union-ID order, with each node's ID rewritten to its union ID. For every
// partition above, concatenating HomeNodes across scopes and sorting by ID
// equals the union view's Nodes(t) — the invariant all application merges
// rest on.
func (s Scope) HomeNodes(t NodeType) []Node {
	nodes := s.View.Nodes(t)
	out := nodes[:0]
	for i := range nodes {
		if !s.Home(&nodes[i]) {
			continue
		}
		nodes[i].ID = s.UID(nodes[i].ID)
		out = append(out, nodes[i])
	}
	// Projections keep home nodes in union-ID order and union views return
	// ID-ascending per-type lists, so out is already sorted; keep the
	// invariant explicit for any future View implementation.
	for i := 1; i < len(out); i++ {
		if out[i].ID < out[i-1].ID {
			sortNodesByID(out)
			break
		}
	}
	return out
}

// FindHome resolves a (type, phrase) pair to a home node, with its ID
// rewritten to the union ID. Exactly one scope of a partition resolves any
// given pair, because canonical phrases are unique per type in the union.
// The second return is the scope-local ID for edge traversal via the view.
func (s Scope) FindHome(t NodeType, phrase string) (Node, NodeID, bool) {
	n, ok := s.View.Find(t, phrase)
	if !ok || !s.Home(&n) {
		return Node{}, 0, false
	}
	local := n.ID
	n.ID = s.UID(local)
	return n, local, true
}
