package ontology

// GIANTBIN is the binary snapshot and shard container: an mmap-friendly
// columnar serialization of a Snapshot or ShardProjection that a serving
// process can load in milliseconds with near-zero allocation, versus the
// parse time and heap churn of the JSON debug/interchange format.
//
// Layout (all integers little-endian):
//
//	header (64 bytes)
//	  0   magic "GIANTBIN" (8 bytes)
//	  8   format version  (uint32, currently 1)
//	  12  kind            (uint32: 1 snapshot, 2 shard projection)
//	  16  shard index i   (int32, kind 2 only)
//	  20  shard count k   (int32, kind 2 only)
//	  24  home-node count (uint64, kind 2 only)
//	  32  generation      (uint64, 0 unless stamped by Store.SaveCurrent)
//	  40  node count      (uint64)
//	  48  edge count      (uint64)
//	  56  section count   (uint32)
//	  60  header CRC32C   (over bytes [0,60))
//	section table (32 bytes per entry, immediately after the header)
//	  id uint32 · reserved uint32 · offset uint64 · length uint64 ·
//	  CRC32C uint32 · reserved uint32
//	sections (each starting at a 64-byte-aligned file offset)
//
// Sections are flat columns: a string arena plus an offsets column for
// each string attribute (phrases, aliases, triggers, locations), typed
// numeric columns for the scalar node attributes, the edge list as
// src/dst/type/weight arrays, the precomputed CSR adjacency (row offsets
// and grouped edge indices for both directions), and — for shard files —
// the local→union node-ID table. Every numeric column is 64-byte aligned,
// so a loader may reinterpret the backing bytes in place (the decoder
// below does exactly that on little-endian hosts, falling back to a copy
// when the host or the buffer alignment forbids it); the same property
// makes the file directly mmap-able, letting K per-shard processes on one
// host share page cache.
//
// Corrupt inputs are rejected with typed errors — ErrBadMagic,
// ErrTruncated, ErrChecksum, ErrFormatVersion, ErrCorrupt — and never
// panic: every offset table, edge endpoint and CSR index is validated
// before the snapshot is handed to the serving tier.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// BinaryMagic is the 8-byte tag every GIANTBIN artifact starts with.
const BinaryMagic = "GIANTBIN"

// BinaryVersion is the current GIANTBIN format version. Readers reject
// newer versions with ErrFormatVersion; the version is bumped on any
// incompatible layout change.
const BinaryVersion = 1

// Typed decode errors. Callers branch with errors.Is; every decode error
// wraps exactly one of these (plus ErrNotShardFile for kind mismatches on
// the shard loader).
var (
	// ErrBadMagic reports a file that does not start with the GIANTBIN
	// magic (auto-detecting loaders treat such files as JSON instead).
	ErrBadMagic = errors.New("ontology: not a GIANTBIN artifact (bad magic)")
	// ErrTruncated reports a GIANTBIN artifact shorter than its header and
	// section table promise — the signature of a partially written or
	// partially copied file.
	ErrTruncated = errors.New("ontology: truncated GIANTBIN artifact")
	// ErrChecksum reports a header or section whose CRC32C does not match
	// its bytes — bit rot or mid-write corruption.
	ErrChecksum = errors.New("ontology: GIANTBIN checksum mismatch")
	// ErrFormatVersion reports an artifact written by a newer format
	// version than this reader understands.
	ErrFormatVersion = errors.New("ontology: unsupported GIANTBIN format version")
	// ErrCorrupt reports an artifact whose checksums pass but whose
	// contents violate a structural invariant (non-monotonic string
	// offsets, out-of-range edge endpoints, inconsistent CSR).
	ErrCorrupt = errors.New("ontology: corrupt GIANTBIN artifact")
)

// container kinds (header field).
const (
	binKindSnapshot = 1
	binKindShard    = 2
)

// Section IDs. The set is fixed per version; unknown IDs are ignored so a
// minor additive change stays readable.
const (
	secNodeTypes     = 1  // []uint8, n
	secPhraseOffs    = 2  // []uint32, n+1
	secPhraseArena   = 3  // []byte
	secAliasIndex    = 4  // []uint32, n+1 (prefix counts into the alias table)
	secAliasOffs     = 5  // []uint32, totalAliases+1
	secAliasArena    = 6  // []byte
	secTriggerOffs   = 7  // []uint32, n+1
	secTriggerArena  = 8  // []byte
	secLocationOffs  = 9  // []uint32, n+1
	secLocationArena = 10 // []byte
	secNodeDays      = 11 // []int32, n
	secNodeFirstSeen = 12 // []int32, n
	secNodeLastSeen  = 13 // []int32, n
	secEdgeSrc       = 14 // []int32, e
	secEdgeDst       = 15 // []int32, e
	secEdgeTypes     = 16 // []uint8, e
	secEdgeWeights   = 17 // []float64, e
	secCSROutOff     = 18 // []int32, n+1
	secCSRInOff      = 19 // []int32, n+1
	secCSROutIdx     = 20 // []int32, e
	secCSRInIdx      = 21 // []int32, e
	secUnionIDs      = 22 // []int32, n (shard files only)
	secTermGrams     = 23 // TermGrams bitmaps (optional; home prefix for shards)
)

const (
	binHeaderSize = 64
	binTableEntry = 32
	binAlign      = 64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether in-place column aliasing is sound on
// this machine; big-endian hosts take the decode-copy path.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// IsBinary reports whether data begins with the GIANTBIN magic — the
// auto-detection the file loaders use to pick a codec.
func IsBinary(data []byte) bool {
	return len(data) >= len(BinaryMagic) && string(data[:len(BinaryMagic)]) == BinaryMagic
}

// BinaryHeader is the decoded fixed header of a GIANTBIN artifact —
// everything an operator needs to identify a file without loading it.
type BinaryHeader struct {
	Version    uint32
	Kind       string // "snapshot" or "shard"
	Shard      int    // shard identity i/k (kind "shard" only)
	NumShards  int
	HomeCount  int
	Generation uint64 // stamped by Store.SaveCurrent; 0 otherwise
	Nodes      int
	Edges      int
}

// ReadBinaryHeader reads and validates the fixed header of the GIANTBIN
// file at path without loading its sections.
func ReadBinaryHeader(path string) (*BinaryHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var buf [binHeaderSize]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		if !IsBinary(buf[:]) {
			return nil, fmt.Errorf("%w: %s", ErrBadMagic, path)
		}
		return nil, fmt.Errorf("%w: %s: short header", ErrTruncated, path)
	}
	h, _, err := parseBinHeader(buf[:])
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return h, nil
}

// parseBinHeader decodes and validates the 64-byte header, returning the
// section count alongside the public view.
func parseBinHeader(buf []byte) (*BinaryHeader, int, error) {
	if !IsBinary(buf) {
		return nil, 0, ErrBadMagic
	}
	if crc32.Checksum(buf[:60], crcTable) != binary.LittleEndian.Uint32(buf[60:64]) {
		return nil, 0, fmt.Errorf("%w: header", ErrChecksum)
	}
	version := binary.LittleEndian.Uint32(buf[8:12])
	if version != BinaryVersion {
		return nil, 0, fmt.Errorf("%w: file is version %d, reader understands %d", ErrFormatVersion, version, BinaryVersion)
	}
	kind := binary.LittleEndian.Uint32(buf[12:16])
	if kind != binKindSnapshot && kind != binKindShard {
		return nil, 0, fmt.Errorf("%w: unknown container kind %d", ErrCorrupt, kind)
	}
	h := &BinaryHeader{
		Version:    version,
		Shard:      int(int32(binary.LittleEndian.Uint32(buf[16:20]))),
		NumShards:  int(int32(binary.LittleEndian.Uint32(buf[20:24]))),
		HomeCount:  int(binary.LittleEndian.Uint64(buf[24:32])),
		Generation: binary.LittleEndian.Uint64(buf[32:40]),
		Nodes:      int(binary.LittleEndian.Uint64(buf[40:48])),
		Edges:      int(binary.LittleEndian.Uint64(buf[48:56])),
	}
	h.Kind = "snapshot"
	if kind == binKindShard {
		h.Kind = "shard"
	}
	if h.Nodes < 0 || h.Edges < 0 || h.HomeCount < 0 {
		return nil, 0, fmt.Errorf("%w: negative counts in header", ErrCorrupt)
	}
	return h, int(binary.LittleEndian.Uint32(buf[56:60])), nil
}

// ---------------------------------------------------------------------------
// Encoding

// binSection is one column pending write.
type binSection struct {
	id   uint32
	data []byte
}

func align64(x int) int { return (x + binAlign - 1) &^ (binAlign - 1) }

// u32col encodes a []uint32 column.
func u32col(vals []uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// i32col encodes an []int32 column.
func i32col(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// stringColumn builds the offsets+arena pair for n strings.
func stringColumn(n int, str func(i int) string) (offs []byte, arena []byte) {
	o := make([]uint32, n+1)
	total := 0
	for i := 0; i < n; i++ {
		total += len(str(i))
		o[i+1] = uint32(total)
	}
	arena = make([]byte, 0, total)
	for i := 0; i < n; i++ {
		arena = append(arena, str(i)...)
	}
	return u32col(o), arena
}

// encodeBinary serializes snap (and, when proj is non-nil, its shard
// identity and union-ID table) as a GIANTBIN artifact. gen is stamped
// into the header for replica-hydration accounting.
func encodeBinary(w io.Writer, snap *Snapshot, proj *ShardProjection, gen uint64) error {
	n, e := len(snap.nodes), len(snap.edges)

	var secs []binSection
	add := func(id uint32, data []byte) { secs = append(secs, binSection{id: id, data: data}) }

	// Node columns.
	types := make([]byte, n)
	days := make([]int32, n)
	first := make([]int32, n)
	last := make([]int32, n)
	totalAliases := 0
	for i := range snap.nodes {
		nd := &snap.nodes[i]
		types[i] = byte(nd.Type)
		days[i] = int32(nd.Day)
		first[i] = int32(nd.FirstSeenDay)
		last[i] = int32(nd.LastSeenDay)
		totalAliases += len(nd.Aliases)
	}
	add(secNodeTypes, types)
	phraseOffs, phraseArena := stringColumn(n, func(i int) string { return snap.nodes[i].Phrase })
	add(secPhraseOffs, phraseOffs)
	add(secPhraseArena, phraseArena)

	aliasIdx := make([]uint32, n+1)
	flatAliases := make([]string, 0, totalAliases)
	for i := range snap.nodes {
		flatAliases = append(flatAliases, snap.nodes[i].Aliases...)
		aliasIdx[i+1] = uint32(len(flatAliases))
	}
	add(secAliasIndex, u32col(aliasIdx))
	aliasOffs, aliasArena := stringColumn(len(flatAliases), func(i int) string { return flatAliases[i] })
	add(secAliasOffs, aliasOffs)
	add(secAliasArena, aliasArena)

	trigOffs, trigArena := stringColumn(n, func(i int) string { return snap.nodes[i].Trigger })
	add(secTriggerOffs, trigOffs)
	add(secTriggerArena, trigArena)
	locOffs, locArena := stringColumn(n, func(i int) string { return snap.nodes[i].Location })
	add(secLocationOffs, locOffs)
	add(secLocationArena, locArena)
	add(secNodeDays, i32col(days))
	add(secNodeFirstSeen, i32col(first))
	add(secNodeLastSeen, i32col(last))

	// Edge columns.
	src := make([]int32, e)
	dst := make([]int32, e)
	etypes := make([]byte, e)
	weights := make([]byte, 8*e)
	for i := range snap.edges {
		ed := &snap.edges[i]
		src[i] = int32(ed.Src)
		dst[i] = int32(ed.Dst)
		etypes[i] = byte(ed.Type)
		binary.LittleEndian.PutUint64(weights[8*i:], math.Float64bits(ed.Weight))
	}
	add(secEdgeSrc, i32col(src))
	add(secEdgeDst, i32col(dst))
	add(secEdgeTypes, etypes)
	add(secEdgeWeights, weights)

	// CSR adjacency, precomputed by the snapshot — serialized so a loader
	// skips the counting passes entirely.
	add(secCSROutOff, i32col(snap.outOff))
	add(secCSRInOff, i32col(snap.inOff))
	add(secCSROutIdx, i32col(snap.outIdx))
	add(secCSRInIdx, i32col(snap.inIdx))

	kind := uint32(binKindSnapshot)
	var shard, numShards int32
	var homeCount uint64
	if proj != nil {
		kind = binKindShard
		shard, numShards = int32(proj.Shard), int32(proj.NumShards)
		homeCount = uint64(proj.HomeCount)
		ids := make([]int32, len(proj.UnionIDs))
		for i, id := range proj.UnionIDs {
			ids[i] = int32(id)
		}
		add(secUnionIDs, i32col(ids))
		// Persist the home-prefix term-gram index so a booting shard skips
		// the rebuild. Deterministic in the home contents, so persisted and
		// recomputed bytes are identical (the dual-format equivalence pin).
		add(secTermGrams, proj.TermGrams().appendBytes(make([]byte, 0, termGramSize)))
	} else {
		add(secTermGrams, snap.TermGrams().appendBytes(make([]byte, 0, termGramSize)))
	}

	// Lay sections out at 64-byte-aligned offsets.
	header := make([]byte, binHeaderSize+binTableEntry*len(secs))
	copy(header, BinaryMagic)
	binary.LittleEndian.PutUint32(header[8:], BinaryVersion)
	binary.LittleEndian.PutUint32(header[12:], kind)
	binary.LittleEndian.PutUint32(header[16:], uint32(shard))
	binary.LittleEndian.PutUint32(header[20:], uint32(numShards))
	binary.LittleEndian.PutUint64(header[24:], homeCount)
	binary.LittleEndian.PutUint64(header[32:], gen)
	binary.LittleEndian.PutUint64(header[40:], uint64(n))
	binary.LittleEndian.PutUint64(header[48:], uint64(e))
	binary.LittleEndian.PutUint32(header[56:], uint32(len(secs)))
	binary.LittleEndian.PutUint32(header[60:], crc32.Checksum(header[:60], crcTable))

	off := align64(len(header))
	for i, s := range secs {
		ent := header[binHeaderSize+binTableEntry*i:]
		binary.LittleEndian.PutUint32(ent[0:], s.id)
		binary.LittleEndian.PutUint64(ent[8:], uint64(off))
		binary.LittleEndian.PutUint64(ent[16:], uint64(len(s.data)))
		binary.LittleEndian.PutUint32(ent[24:], crc32.Checksum(s.data, crcTable))
		off = align64(off + len(s.data))
	}

	if _, err := w.Write(header); err != nil {
		return err
	}
	var pad [binAlign]byte
	written := len(header)
	for _, s := range secs {
		if p := align64(written) - written; p > 0 {
			if _, err := w.Write(pad[:p]); err != nil {
				return err
			}
			written += p
		}
		if _, err := w.Write(s.data); err != nil {
			return err
		}
		written += len(s.data)
	}
	return nil
}

// WriteBinary serializes the snapshot as a GIANTBIN artifact.
func (s *Snapshot) WriteBinary(w io.Writer) error {
	return encodeBinary(w, s, nil, 0)
}

// EncodeSnapshotBinary serializes snap as a GIANTBIN artifact with gen
// stamped into the header — byte-identical to what Store.SaveCurrent
// writes for the same snapshot and generation. Checkpoint sidecars
// embed exactly this encoding so a checkpoint's snapshot section is a
// valid Store.Hydrate artifact on its own.
func EncodeSnapshotBinary(w io.Writer, snap *Snapshot, gen uint64) error {
	return encodeBinary(w, snap, nil, gen)
}

// SaveBinaryFile writes the snapshot to path in the GIANTBIN format via
// the same crash-safe temp-then-rename dance SaveFile uses.
func (s *Snapshot) SaveBinaryFile(path string) error {
	return writeFileAtomic(path, s.WriteBinary)
}

// WriteBinary serializes the projection as a GIANTBIN shard artifact.
func (p *ShardProjection) WriteBinary(w io.Writer) error {
	return encodeBinary(w, p.Snap, p, 0)
}

// SaveBinaryFile writes the projection to path in the GIANTBIN format,
// crash-safely.
func (p *ShardProjection) SaveBinaryFile(path string) error {
	return writeFileAtomic(path, p.WriteBinary)
}

// ---------------------------------------------------------------------------
// Decoding

// binFile is a parsed, checksum-verified container.
type binFile struct {
	hdr  BinaryHeader
	kind uint32
	secs map[uint32][]byte
}

// parseBinFile validates the envelope: magic, version, header checksum,
// section table bounds and per-section CRC32C.
func parseBinFile(data []byte) (*binFile, error) {
	if !IsBinary(data) {
		return nil, ErrBadMagic
	}
	if len(data) < binHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), binHeaderSize)
	}
	hdr, nsec, err := parseBinHeader(data[:binHeaderSize])
	if err != nil {
		return nil, err
	}
	tableEnd := binHeaderSize + binTableEntry*nsec
	if nsec < 0 || len(data) < tableEnd {
		return nil, fmt.Errorf("%w: section table for %d sections needs %d bytes, file has %d", ErrTruncated, nsec, tableEnd, len(data))
	}
	bf := &binFile{hdr: *hdr, kind: binKindSnapshot, secs: make(map[uint32][]byte, nsec)}
	if hdr.Kind == "shard" {
		bf.kind = binKindShard
	}
	for i := 0; i < nsec; i++ {
		ent := data[binHeaderSize+binTableEntry*i:]
		id := binary.LittleEndian.Uint32(ent[0:])
		off := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		sum := binary.LittleEndian.Uint32(ent[24:])
		end := off + length
		if off < uint64(tableEnd) || end < off || end > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section %d spans [%d,%d) of a %d-byte file", ErrTruncated, id, off, end, len(data))
		}
		sec := data[off:end:end]
		if crc32.Checksum(sec, crcTable) != sum {
			return nil, fmt.Errorf("%w: section %d", ErrChecksum, id)
		}
		bf.secs[id] = sec
	}
	return bf, nil
}

// section returns a required section, checking its exact byte length.
func (bf *binFile) section(id uint32, wantLen int) ([]byte, error) {
	sec, ok := bf.secs[id]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
	}
	if len(sec) != wantLen {
		return nil, fmt.Errorf("%w: section %d is %d bytes, want %d", ErrCorrupt, id, len(sec), wantLen)
	}
	return sec, nil
}

// termGrams decodes the optional persisted term-gram section; (nil, nil)
// when the artifact predates it, in which case the index is lazily
// recomputed (identical bytes — the index is deterministic).
func (bf *binFile) termGrams() (*TermGrams, error) {
	sec, ok := bf.secs[secTermGrams]
	if !ok {
		return nil, nil
	}
	g, err := termGramsFromBytes(sec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return g, nil
}

// arena returns a required variable-length section.
func (bf *binFile) arena(id uint32) ([]byte, error) {
	sec, ok := bf.secs[id]
	if !ok {
		return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, id)
	}
	return sec, nil
}

// asU32 reinterprets a column as []uint32 — in place when the host is
// little-endian and the buffer happens to be 4-byte aligned (sections are
// 64-byte aligned in the file, so this is the common case), copying
// otherwise.
func asU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// asI32 is asU32 for signed columns.
func asI32(b []byte) []int32 {
	if len(b) == 0 {
		return []int32{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// validOffsets checks a string-offsets column: zero-based, monotonic, and
// ending exactly at the arena length.
func validOffsets(offs []uint32, arenaLen int, what string) error {
	if len(offs) == 0 || offs[0] != 0 {
		return fmt.Errorf("%w: %s offsets do not start at 0", ErrCorrupt, what)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return fmt.Errorf("%w: %s offsets decrease at %d", ErrCorrupt, what, i)
		}
	}
	if int(offs[len(offs)-1]) != arenaLen {
		return fmt.Errorf("%w: %s offsets end at %d, arena is %d bytes", ErrCorrupt, what, offs[len(offs)-1], arenaLen)
	}
	return nil
}

// arenaString returns string i of an offsets+arena column, aliasing the
// arena bytes (the file buffer is owned by the snapshot and never
// mutated) so no per-string copy is made.
func arenaString(arena []byte, offs []uint32, i int) string {
	lo, hi := offs[i], offs[i+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&arena[lo], int(hi-lo))
}

// stringCol fetches and validates one offsets+arena string column.
func (bf *binFile) stringCol(offID, arenaID uint32, count int, what string) ([]uint32, []byte, error) {
	offsRaw, err := bf.section(offID, 4*(count+1))
	if err != nil {
		return nil, nil, err
	}
	arena, err := bf.arena(arenaID)
	if err != nil {
		return nil, nil, err
	}
	offs := asU32(offsRaw)
	if err := validOffsets(offs, len(arena), what); err != nil {
		return nil, nil, err
	}
	return offs, arena, nil
}

// decodeBinary rebuilds the node and edge lists plus the CSR adjacency
// from a verified container. The returned snapshot aliases data — the
// caller must hand over ownership and never mutate the buffer again.
func decodeBinary(data []byte) (*Snapshot, *binFile, error) {
	bf, err := parseBinFile(data)
	if err != nil {
		return nil, nil, err
	}
	n, e := bf.hdr.Nodes, bf.hdr.Edges

	types, err := bf.section(secNodeTypes, n)
	if err != nil {
		return nil, nil, err
	}
	phraseOffs, phraseArena, err := bf.stringCol(secPhraseOffs, secPhraseArena, n, "phrase")
	if err != nil {
		return nil, nil, err
	}
	aliasIdxRaw, err := bf.section(secAliasIndex, 4*(n+1))
	if err != nil {
		return nil, nil, err
	}
	// The alias index is offsets into the alias table (counts of strings,
	// not bytes): monotonic from 0; its final entry is the table length.
	aliasIdx := asU32(aliasIdxRaw)
	if aliasIdx[0] != 0 {
		return nil, nil, fmt.Errorf("%w: alias index does not start at 0", ErrCorrupt)
	}
	for i := 1; i < len(aliasIdx); i++ {
		if aliasIdx[i] < aliasIdx[i-1] {
			return nil, nil, fmt.Errorf("%w: alias index decreases at %d", ErrCorrupt, i)
		}
	}
	totalAliases := int(aliasIdx[n])
	aliasOffs, aliasArena, err := bf.stringCol(secAliasOffs, secAliasArena, totalAliases, "alias")
	if err != nil {
		return nil, nil, err
	}
	trigOffs, trigArena, err := bf.stringCol(secTriggerOffs, secTriggerArena, n, "trigger")
	if err != nil {
		return nil, nil, err
	}
	locOffs, locArena, err := bf.stringCol(secLocationOffs, secLocationArena, n, "location")
	if err != nil {
		return nil, nil, err
	}
	daysRaw, err := bf.section(secNodeDays, 4*n)
	if err != nil {
		return nil, nil, err
	}
	firstRaw, err := bf.section(secNodeFirstSeen, 4*n)
	if err != nil {
		return nil, nil, err
	}
	lastRaw, err := bf.section(secNodeLastSeen, 4*n)
	if err != nil {
		return nil, nil, err
	}
	days, first, last := asI32(daysRaw), asI32(firstRaw), asI32(lastRaw)

	nodes := make([]Node, n)
	flatAliases := make([]string, totalAliases)
	for i := range flatAliases {
		flatAliases[i] = arenaString(aliasArena, aliasOffs, i)
	}
	for i := 0; i < n; i++ {
		nodes[i] = Node{
			ID:           NodeID(i),
			Type:         NodeType(types[i]),
			Phrase:       arenaString(phraseArena, phraseOffs, i),
			Trigger:      arenaString(trigArena, trigOffs, i),
			Location:     arenaString(locArena, locOffs, i),
			Day:          int(days[i]),
			FirstSeenDay: int(first[i]),
			LastSeenDay:  int(last[i]),
		}
		if lo, hi := aliasIdx[i], aliasIdx[i+1]; hi > lo {
			nodes[i].Aliases = flatAliases[lo:hi:hi]
		}
	}

	srcRaw, err := bf.section(secEdgeSrc, 4*e)
	if err != nil {
		return nil, nil, err
	}
	dstRaw, err := bf.section(secEdgeDst, 4*e)
	if err != nil {
		return nil, nil, err
	}
	etypes, err := bf.section(secEdgeTypes, e)
	if err != nil {
		return nil, nil, err
	}
	weightsRaw, err := bf.section(secEdgeWeights, 8*e)
	if err != nil {
		return nil, nil, err
	}
	src, dst := asI32(srcRaw), asI32(dstRaw)
	edges := make([]Edge, e)
	for i := 0; i < e; i++ {
		s, d := src[i], dst[i]
		if s < 0 || d < 0 || int(s) >= n || int(d) >= n {
			return nil, nil, fmt.Errorf("%w: edge %d endpoints out of range (%d,%d)", ErrCorrupt, i, s, d)
		}
		if s == d {
			return nil, nil, fmt.Errorf("%w: edge %d is a self edge on node %d", ErrCorrupt, i, s)
		}
		edges[i] = Edge{
			Src:    NodeID(s),
			Dst:    NodeID(d),
			Type:   EdgeType(etypes[i]),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(weightsRaw[8*i:])),
		}
	}

	outOffRaw, err := bf.section(secCSROutOff, 4*(n+1))
	if err != nil {
		return nil, nil, err
	}
	inOffRaw, err := bf.section(secCSRInOff, 4*(n+1))
	if err != nil {
		return nil, nil, err
	}
	outIdxRaw, err := bf.section(secCSROutIdx, 4*e)
	if err != nil {
		return nil, nil, err
	}
	inIdxRaw, err := bf.section(secCSRInIdx, 4*e)
	if err != nil {
		return nil, nil, err
	}
	outOff, inOff := asI32(outOffRaw), asI32(inOffRaw)
	outIdx, inIdx := asI32(outIdxRaw), asI32(inIdxRaw)
	if err := validCSR(outOff, outIdx, edges, n, true); err != nil {
		return nil, nil, err
	}
	if err := validCSR(inOff, inIdx, edges, n, false); err != nil {
		return nil, nil, err
	}

	snap := &Snapshot{nodes: nodes, edges: edges, outOff: outOff, inOff: inOff, outIdx: outIdx, inIdx: inIdx}
	snap.indexMaps()
	return snap, bf, nil
}

// validCSR checks one direction of the serialized adjacency: monotonic
// row offsets covering exactly the edge list, every edge index in range
// and grouped under its true endpoint — so a corrupt file can never make
// EachOut/EachIn walk out of bounds or visit a foreign vertex's edges.
func validCSR(off, idx []int32, edges []Edge, n int, out bool) error {
	dir := "in"
	if out {
		dir = "out"
	}
	if len(off) != n+1 || off[0] != 0 || int(off[n]) != len(edges) {
		return fmt.Errorf("%w: %s-CSR offsets malformed", ErrCorrupt, dir)
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return fmt.Errorf("%w: %s-CSR offsets decrease at node %d", ErrCorrupt, dir, v)
		}
		for _, ei := range idx[off[v]:off[v+1]] {
			if ei < 0 || int(ei) >= len(edges) {
				return fmt.Errorf("%w: %s-CSR edge index %d out of range", ErrCorrupt, dir, ei)
			}
			endpoint := edges[ei].Src
			if !out {
				endpoint = edges[ei].Dst
			}
			if int(endpoint) != v {
				return fmt.Errorf("%w: %s-CSR groups edge %d under node %d, endpoint is %d", ErrCorrupt, dir, ei, v, endpoint)
			}
		}
	}
	return nil
}

// DecodeSnapshotBinary decodes a GIANTBIN snapshot artifact. The snapshot
// aliases data (strings and numeric columns point into it); the caller
// must not mutate the buffer afterwards. Shard artifacts are rejected —
// adopting one shard's projection as the whole world would serve wrong
// answers.
func DecodeSnapshotBinary(data []byte) (*Snapshot, error) {
	snap, _, err := decodeSnapshotBinaryGen(data)
	return snap, err
}

// DecodeSnapshotBinaryWithGen decodes a GIANTBIN snapshot artifact and
// surfaces the generation stamped into its header — the inverse of
// EncodeSnapshotBinary. The snapshot aliases data; the caller must not
// mutate the buffer afterwards.
func DecodeSnapshotBinaryWithGen(data []byte) (*Snapshot, uint64, error) {
	return decodeSnapshotBinaryGen(data)
}

// decodeSnapshotBinaryGen additionally surfaces the stamped generation
// (Store.Hydrate's donor accounting).
func decodeSnapshotBinaryGen(data []byte) (*Snapshot, uint64, error) {
	snap, bf, err := decodeBinary(data)
	if err != nil {
		return nil, 0, err
	}
	if bf.kind == binKindShard {
		return nil, 0, fmt.Errorf("ontology: this is a binary shard projection file (shard %d/%d); boot it with giantd -shard %d/%d or load it with LoadShardFile",
			bf.hdr.Shard, bf.hdr.NumShards, bf.hdr.Shard, bf.hdr.NumShards)
	}
	g, err := bf.termGrams()
	if err != nil {
		return nil, 0, err
	}
	snap.grams = g // nil when absent: TermGrams() recomputes lazily
	return snap, bf.hdr.Generation, nil
}

// DecodeShardBinary decodes a GIANTBIN shard artifact, re-validating and
// re-indexing the projection exactly as the JSON load path does. A
// snapshot artifact yields ErrNotShardFile so LoadShardInput can fall
// back to deriving the projection from the union.
func DecodeShardBinary(data []byte) (*ShardProjection, error) {
	snap, bf, err := decodeBinary(data)
	if err != nil {
		return nil, err
	}
	if bf.kind != binKindShard {
		return nil, fmt.Errorf("%w (binary snapshot artifact; use LoadSnapshotFile)", ErrNotShardFile)
	}
	idsRaw, err := bf.section(secUnionIDs, 4*bf.hdr.Nodes)
	if err != nil {
		return nil, err
	}
	ids32 := asI32(idsRaw)
	ids := make([]NodeID, len(ids32))
	for i, v := range ids32 {
		ids[i] = NodeID(v)
	}
	g, err := bf.termGrams()
	if err != nil {
		return nil, err
	}
	p := &ShardProjection{
		Snap:      snap,
		Shard:     bf.hdr.Shard,
		NumShards: bf.hdr.NumShards,
		HomeCount: bf.hdr.HomeCount,
		UnionIDs:  ids,
		// The persisted grams cover the home prefix only — the projection's
		// routing surface, never the embedded snapshot's (which spans ghosts
		// too and recomputes its own index on demand).
		grams: g,
	}
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	p.index()
	return p, nil
}
