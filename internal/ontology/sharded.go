package ontology

// ShardedSnapshot partitions an immutable ontology snapshot into K
// per-shard Snapshots — the unit of publication for the sharded serving
// and ingest tiers — behind the same read surface as a single Snapshot.
//
// Every node has exactly one home shard, chosen by hashing its
// (type, phrase) key (HomeShard), so routing a phrase to its shard needs
// no directory lookup and stays stable across generations. A shard's
// projection holds its home nodes plus every edge incident to one of them;
// the remote endpoint of a cross-shard edge is materialized as a "ghost"
// copy after the home nodes, so each projection is a self-contained, valid
// Snapshot (dense IDs, in-range CSR adjacency) that can be served, saved
// or swapped independently. An edge whose endpoints live on two different
// shards is therefore stored twice — once per endpoint's projection — and
// deduplicates by phrase keys when shards are merged back together.
//
// The union index is retained as the authoritative composed view: the
// ontology.View methods delegate to it, which is what lets tagging, query
// understanding and story trees run unchanged over a sharded deployment
// (node IDs stay coherent across shards). Scatter-gather reads
// (Search, per-shard stats) run against the projections.
//
// Ghost copies trade freshness for locality: when a delta touches only a
// node's home shard, ghost copies of it on other shards keep their old
// attribute values (last-seen day, merged aliases) until those shards next
// republish. Node existence and edge structure are always exact — the
// touched-shard computation in delta.ApplySharded conservatively includes
// every shard whose projection gains or loses nodes or edges.

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// HomeShard returns the home shard of a (type, phrase) node key under a
// k-way partition. It is the single routing function shared by the build,
// delta and serving layers; k <= 1 collapses to shard 0.
func HomeShard(t NodeType, phrase string, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(nodeKey(t, phrase)))
	return int(h.Sum32() % uint32(k))
}

// shardGramsBox lazily holds one shard's home-prefix term-gram index. It is
// a separate allocation so Advance can carry an untouched shard's built
// index to the next generation alongside its projection (grams depend only
// on the shard's own home-node contents, never on the union).
type shardGramsBox struct {
	once sync.Once
	g    *TermGrams
}

// ShardedSnapshot composes K per-shard Snapshots with a phrase→shard
// routing index and the union index they project from.
type ShardedSnapshot struct {
	union     *Snapshot
	k         int
	shards    []*Snapshot
	homeCount []int // per shard: nodes[0:homeCount] are home, the rest ghosts
	grams     []*shardGramsBox
}

// freshGramsBoxes allocates empty gram boxes for k shards.
func freshGramsBoxes(k int) []*shardGramsBox {
	out := make([]*shardGramsBox, k)
	for i := range out {
		out[i] = &shardGramsBox{}
	}
	return out
}

// ShardSnapshot partitions union into k per-shard projections. k <= 1
// yields a single shard whose projection is the union itself (no ghosts,
// no copies) — the legacy path with zero overhead.
func ShardSnapshot(union *Snapshot, k int) (*ShardedSnapshot, error) {
	if k < 1 {
		k = 1
	}
	ss := &ShardedSnapshot{union: union, k: k, shards: make([]*Snapshot, k), homeCount: make([]int, k), grams: freshGramsBoxes(k)}
	if k == 1 {
		ss.shards[0] = union
		ss.homeCount[0] = union.Len()
		return ss, nil
	}
	homes := unionHomes(union, k)
	for s := 0; s < k; s++ {
		snap, home, err := projectShard(union, homes, s)
		if err != nil {
			return nil, err
		}
		ss.shards[s] = snap
		ss.homeCount[s] = home
	}
	return ss, nil
}

// Advance re-partitions onto nextUnion, rebuilding only the shards marked
// touched and carrying the previous projections for the rest — the
// per-shard publication path: an ingest delta that touched two shards
// re-indexes two projections, not K. touched == nil rebuilds everything.
func (ss *ShardedSnapshot) Advance(nextUnion *Snapshot, touched []bool) (*ShardedSnapshot, error) {
	if touched == nil || ss.k == 1 {
		return ShardSnapshot(nextUnion, ss.k)
	}
	if len(touched) != ss.k {
		return nil, fmt.Errorf("ontology: Advance got %d touch flags for %d shards", len(touched), ss.k)
	}
	next := &ShardedSnapshot{union: nextUnion, k: ss.k, shards: make([]*Snapshot, ss.k), homeCount: make([]int, ss.k), grams: freshGramsBoxes(ss.k)}
	var homes []int
	for s := 0; s < ss.k; s++ {
		if !touched[s] {
			next.shards[s] = ss.shards[s]
			next.homeCount[s] = ss.homeCount[s]
			next.grams[s] = ss.grams[s]
			continue
		}
		if homes == nil {
			homes = unionHomes(nextUnion, ss.k)
		}
		snap, home, err := projectShard(nextUnion, homes, s)
		if err != nil {
			return nil, err
		}
		next.shards[s] = snap
		next.homeCount[s] = home
	}
	return next, nil
}

// unionHomes computes the home shard of every union node.
func unionHomes(union *Snapshot, k int) []int {
	homes := make([]int, union.Len())
	for i := range union.nodes {
		n := &union.nodes[i]
		homes[n.ID] = HomeShard(n.Type, n.Phrase, k)
	}
	return homes
}

// projectShard builds shard s's projection: home nodes in union ID order,
// then ghost endpoints of cross-shard edges in union ID order, then every
// edge incident to a home node, remapped to local IDs.
func projectShard(union *Snapshot, homes []int, s int) (*Snapshot, int, error) {
	local := make([]NodeID, union.Len())
	for i := range local {
		local[i] = -1
	}
	var nodes []Node
	adopt := func(id NodeID) {
		if local[id] >= 0 {
			return
		}
		n := union.nodes[id]
		n.ID = NodeID(len(nodes))
		local[id] = n.ID
		nodes = append(nodes, n)
	}
	for id := range homes {
		if homes[id] == s {
			adopt(NodeID(id))
		}
	}
	home := len(nodes)
	// Ghosts: remote endpoints of edges incident to a home node, in union
	// ID order so the projection is deterministic.
	ghost := make([]bool, union.Len())
	for i := range union.edges {
		e := &union.edges[i]
		if homes[e.Src] == s && homes[e.Dst] != s {
			ghost[e.Dst] = true
		}
		if homes[e.Dst] == s && homes[e.Src] != s {
			ghost[e.Src] = true
		}
	}
	for id := range ghost {
		if ghost[id] {
			adopt(NodeID(id))
		}
	}
	var edges []Edge
	for i := range union.edges {
		e := union.edges[i]
		if homes[e.Src] != s && homes[e.Dst] != s {
			continue
		}
		e.Src, e.Dst = local[e.Src], local[e.Dst]
		edges = append(edges, e)
	}
	snap, err := BuildSnapshot(nodes, edges)
	if err != nil {
		return nil, 0, fmt.Errorf("ontology: project shard %d: %w", s, err)
	}
	return snap, home, nil
}

// NumShards returns K.
func (ss *ShardedSnapshot) NumShards() int { return ss.k }

// Union returns the authoritative composed snapshot the projections were
// derived from.
func (ss *ShardedSnapshot) Union() *Snapshot { return ss.union }

// Shard returns shard i's projection.
func (ss *ShardedSnapshot) Shard(i int) *Snapshot { return ss.shards[i] }

// HomeCount returns the number of home (non-ghost) nodes in shard i's
// projection.
func (ss *ShardedSnapshot) HomeCount(i int) int { return ss.homeCount[i] }

// HomeNodes returns a copy of shard i's home nodes (ghosts excluded).
func (ss *ShardedSnapshot) HomeNodes(i int) []Node {
	out := make([]Node, ss.homeCount[i])
	copy(out, ss.shards[i].nodes[:ss.homeCount[i]])
	return out
}

// ShardOf routes a (type, phrase) pair to its home shard; ok=false when
// the union holds no such node.
func (ss *ShardedSnapshot) ShardOf(t NodeType, phrase string) (int, bool) {
	id, ok := ss.union.Lookup(t, phrase)
	if !ok {
		return 0, false
	}
	n := ss.union.At(id)
	return HomeShard(n.Type, n.Phrase, ss.k), true
}

// ShardTermGrams returns shard i's home-prefix term-gram index, building
// it on first use (safe under concurrent readers). Advance carries the
// built index of an untouched shard to the next generation.
func (ss *ShardedSnapshot) ShardTermGrams(i int) *TermGrams {
	b := ss.grams[i]
	b.once.Do(func() {
		if b.g == nil {
			b.g = BuildTermGrams(ss.shards[i].nodes[:ss.homeCount[i]])
		}
	})
	return b.g
}

// CandidateShards routes an already-lowercased needle through the per-shard
// term-gram indexes: the returned shards (ascending) are the only ones
// whose home nodes could contain the needle. Exact in the negative — a
// shard not listed contributes nothing to the full scatter.
func (ss *ShardedSnapshot) CandidateShards(needle string) []int {
	out := make([]int, 0, ss.k)
	for s := 0; s < ss.k; s++ {
		if ss.ShardTermGrams(s).MayContain(needle) {
			out = append(out, s)
		}
	}
	return out
}

// SearchShardHome returns shard i's first limit home matches for the
// already-lowercased needle, in that shard's home order (= union ID
// order), as the shard's local node copies. This is the context-free
// cacheable partial unit of sharded search: it depends only on shard i's
// home contents, never on peer shards or the union, so a cached partial
// stays valid for as long as shard i's projection does — republishing a
// peer cannot stale it. Callers render hits through the current union
// index at merge time.
func (ss *ShardedSnapshot) SearchShardHome(i int, needle string, limit int) []Node {
	return searchNodes(ss.shards[i].nodes[:ss.homeCount[i]], needle, limit)
}

// Search is the scatter-gather analogue of Snapshot.Search, attacked from
// two sides so the sharded path stays within small-constant distance of the
// single-snapshot scan:
//
//   - Term-gram routing: only the shards whose home-gram index may contain
//     the needle are consulted at all (most needles route to 0–2 shards).
//   - Score-bounded merge: the candidate shards are walked through lazy
//     match cursors merged in union node-ID order (the "score" — smaller is
//     better, exactly Snapshot.Search's output order). A shard advances
//     only while it holds the minimum, and the merge stops at limit, so no
//     shard scans meaningfully past the union position of the limit-th
//     match — the same early-termination bound the union scan enjoys,
//     instead of every shard scanning to its own limit-th match.
//
// The result is identical to Union().Search(needle, limit): home nodes
// partition the union and preserve union ID order within a shard, gram
// pruning is a superset filter, and the k-way merge visits matches in
// exactly ascending union ID.
func (ss *ShardedSnapshot) Search(needle string, limit int) []Node {
	if ss.k == 1 || limit <= 0 {
		return ss.union.Search(needle, limit)
	}
	needle = strings.ToLower(needle)
	if needle == "" {
		return nil
	}
	cursors := make([]*searchCursor, 0, ss.k)
	for s := 0; s < ss.k; s++ {
		if !ss.ShardTermGrams(s).MayContain(needle) {
			continue
		}
		c := &searchCursor{nodes: ss.shards[s].nodes[:ss.homeCount[s]], union: ss.union}
		if c.advance(needle) {
			cursors = append(cursors, c)
		}
	}
	var out []Node
	for len(cursors) > 0 && len(out) < limit {
		best := 0
		for i := 1; i < len(cursors); i++ {
			if cursors[i].unionID < cursors[best].unionID {
				best = i
			}
		}
		out = append(out, *ss.union.At(cursors[best].unionID))
		if !cursors[best].advance(needle) {
			cursors[best] = cursors[len(cursors)-1]
			cursors = cursors[:len(cursors)-1]
		}
	}
	return out
}

// searchCursor walks one shard's home-node prefix to successive matches,
// resolving each match's union ID (home copies keep the union's phrase
// keys, so the union index is the authoritative renderer — exactly the
// remap the eager scatter-gather performed per hit).
type searchCursor struct {
	nodes   []Node
	union   *Snapshot
	pos     int
	unionID NodeID
}

// advance scans forward to the next home match, returning false when the
// prefix is exhausted. A home node missing from the union index (which a
// well-formed partition never produces) is skipped, matching the eager
// merge's behaviour.
func (c *searchCursor) advance(needle string) bool {
	for ; c.pos < len(c.nodes); c.pos++ {
		n := &c.nodes[c.pos]
		if !nodeMatches(n, needle) {
			continue
		}
		if id, ok := c.union.Lookup(n.Type, n.Phrase); ok {
			c.unionID = id
			c.pos++
			return true
		}
	}
	return false
}

// Projection packages shard i's snapshot as a self-describing
// ShardProjection — the boot artifact for a per-shard serving process.
// The local→union ID table is derived through the union phrase index
// (exactly the remap scatter-gather Search performs), so a per-shard
// server renders the same node IDs the composed view renders.
func (ss *ShardedSnapshot) Projection(i int) *ShardProjection {
	snap := ss.shards[i]
	ids := make([]NodeID, len(snap.nodes))
	for j := range snap.nodes {
		n := &snap.nodes[j]
		if uid, ok := ss.union.Lookup(n.Type, n.Phrase); ok {
			ids[j] = uid
		} else {
			ids[j] = -1
		}
	}
	p := &ShardProjection{
		Snap: snap, Shard: i, NumShards: ss.k,
		HomeCount: ss.homeCount[i], UnionIDs: ids,
	}
	p.index()
	return p
}

// ShardStats summarizes one shard's projection for stats endpoints: home
// node counts per type plus the number of edges stored in the projection
// (cross-shard edges are stored once per endpoint shard).
func (ss *ShardedSnapshot) ShardStats(i int) Stats {
	s := Stats{NodesByType: map[string]int{}, EdgesByType: map[string]int{}}
	snap := ss.shards[i]
	for j := 0; j < ss.homeCount[i]; j++ {
		s.NodesByType[snap.nodes[j].Type.String()]++
	}
	for j := range snap.edges {
		s.EdgesByType[snap.edges[j].Type.String()]++
	}
	return s
}

// The View methods delegate to the union index, so application packages
// (tagging, queryund, storytree) see one coherent node-ID space regardless
// of the shard count.

// Get returns a copy of the node with the given ID.
func (ss *ShardedSnapshot) Get(id NodeID) (Node, bool) { return ss.union.Get(id) }

// Find returns the node with the given type and phrase.
func (ss *ShardedSnapshot) Find(t NodeType, phrase string) (Node, bool) {
	return ss.union.Find(t, phrase)
}

// FindAny returns the first node with the phrase under any type.
func (ss *ShardedSnapshot) FindAny(phrase string) (Node, bool) { return ss.union.FindAny(phrase) }

// Children returns nodes reachable from id via out-edges of type t.
func (ss *ShardedSnapshot) Children(id NodeID, t EdgeType) []Node { return ss.union.Children(id, t) }

// Parents returns nodes with an edge of type t into id.
func (ss *ShardedSnapshot) Parents(id NodeID, t EdgeType) []Node { return ss.union.Parents(id, t) }

// Ancestors returns all transitive IsA parents of id.
func (ss *ShardedSnapshot) Ancestors(id NodeID) []Node { return ss.union.Ancestors(id) }

// Nodes returns a copy of all nodes (optionally filtered by type).
func (ss *ShardedSnapshot) Nodes(types ...NodeType) []Node { return ss.union.Nodes(types...) }

// Edges returns a copy of all edges (optionally filtered by type).
func (ss *ShardedSnapshot) Edges(types ...EdgeType) []Edge { return ss.union.Edges(types...) }

// NodeCount returns the number of nodes (optionally filtered by type).
func (ss *ShardedSnapshot) NodeCount(types ...NodeType) int { return ss.union.NodeCount(types...) }

// EdgeCount returns the number of edges (optionally filtered by type).
func (ss *ShardedSnapshot) EdgeCount(types ...EdgeType) int { return ss.union.EdgeCount(types...) }

// ComputeStats summarizes node and edge counts per type over the union.
func (ss *ShardedSnapshot) ComputeStats() Stats { return ss.union.ComputeStats() }

var _ View = (*ShardedSnapshot)(nil)

// searchNodes is the shared substring scan: up to limit nodes whose phrase
// or alias contains the lowercased needle, in slice order.
func searchNodes(nodes []Node, needle string, limit int) []Node {
	var out []Node
	for i := range nodes {
		n := &nodes[i]
		if !nodeMatches(n, needle) {
			continue
		}
		out = append(out, *n)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}
