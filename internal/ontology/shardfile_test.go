package ontology

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// projectionOntology builds a small multi-type ontology with cross-shard
// IsA chains for projection tests.
func projectionOntology(t *testing.T) *Snapshot {
	t.Helper()
	o := New()
	root := o.AddNode(Category, "things")
	auto := o.AddNode(Category, "auto")
	if err := o.AddEdge(root, auto, IsA, 1); err != nil {
		t.Fatal(err)
	}
	sedans := o.AddNode(Concept, "family sedans")
	o.AddAlias(sedans, "sedans for families")
	if err := o.AddEdge(auto, sedans, IsA, 0.9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		e := o.AddNode(Entity, "sedan model "+string(rune('a'+i)))
		if err := o.AddEdge(sedans, e, IsA, 1); err != nil {
			t.Fatal(err)
		}
	}
	ev := o.AddNodeAt(Event, "brand unveils sedan model a", 3)
	o.SetEventAttrs(ev, "unveils", "tokyo", 3)
	if err := o.AddEdge(ev, NodeID(3), Involve, 1); err != nil {
		t.Fatal(err)
	}
	return o.Snapshot()
}

// TestShardProjectionRoundTrip: a projection saved and reloaded is
// identical — nodes, edges, identity, the union-ID table and the derived
// indexes — and projections partition the union's home nodes and union
// IDs exactly.
func TestShardProjectionRoundTrip(t *testing.T) {
	union := projectionOntology(t)
	const k = 3
	ss, err := ShardSnapshot(union, k)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seenUnion := map[NodeID]int{}
	for i := 0; i < k; i++ {
		p := ss.Projection(i)
		if p.Shard != i || p.NumShards != k || p.HomeCount != ss.HomeCount(i) {
			t.Fatalf("projection %d identity: %+v", i, p)
		}
		if len(p.UnionIDs) != p.Snap.Len() {
			t.Fatalf("projection %d: %d union IDs for %d nodes", i, len(p.UnionIDs), p.Snap.Len())
		}
		for local, uid := range p.UnionIDs {
			if uid < 0 || int(uid) >= union.Len() {
				t.Fatalf("projection %d local %d: union ID %d out of range", i, local, uid)
			}
			un, _ := union.Get(uid)
			ln, _ := p.Snap.Get(NodeID(local))
			if un.Type != ln.Type || un.Phrase != ln.Phrase {
				t.Fatalf("projection %d local %d maps to union %d: %q != %q", i, local, uid, ln.Phrase, un.Phrase)
			}
			if back, ok := p.LocalOf(uid); !ok || back != NodeID(local) {
				t.Fatalf("projection %d: LocalOf(%d) = %d,%v", i, uid, back, ok)
			}
			if p.IsHome(NodeID(local)) {
				seenUnion[uid]++
			}
		}

		path := filepath.Join(dir, "shard.json")
		if err := p.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := LoadShardFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Shard != p.Shard || got.NumShards != p.NumShards || got.HomeCount != p.HomeCount {
			t.Fatalf("round trip identity: %+v vs %+v", got, p)
		}
		if !reflect.DeepEqual(got.UnionIDs, p.UnionIDs) {
			t.Fatal("round trip union IDs diverge")
		}
		if !reflect.DeepEqual(got.Snap.Nodes(), p.Snap.Nodes()) || !reflect.DeepEqual(got.Snap.Edges(), p.Snap.Edges()) {
			t.Fatal("round trip nodes/edges diverge")
		}
	}
	// Home nodes partition the union exactly.
	if len(seenUnion) != union.Len() {
		t.Fatalf("home nodes cover %d of %d union nodes", len(seenUnion), union.Len())
	}
	for uid, n := range seenUnion {
		if n != 1 {
			t.Fatalf("union node %d homed on %d shards", uid, n)
		}
	}
}

// TestShardProjectionSearchAndStats: merging every shard's SearchHome in
// union-ID order reproduces the union scan, and summing HomeStats/owned
// edges reproduces the union's stats.
func TestShardProjectionSearchAndStats(t *testing.T) {
	union := projectionOntology(t)
	for _, k := range []int{1, 2, 4} {
		ss, err := ShardSnapshot(union, k)
		if err != nil {
			t.Fatal(err)
		}
		projs := make([]*ShardProjection, k)
		for i := range projs {
			projs[i] = ss.Projection(i)
		}
		for _, q := range []string{"sedan", "model", "auto", "zzz", "families"} {
			for _, limit := range []int{1, 3, 100} {
				want := union.Search(q, limit)
				var got []Node
				for _, p := range projs {
					for _, n := range p.SearchHome(q, limit) {
						n.ID = p.UnionID(n.ID)
						got = append(got, n)
					}
				}
				sortNodesByID(got)
				if len(got) > limit {
					got = got[:limit]
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d q=%q limit=%d: %d hits, want %d", k, q, limit, len(got), len(want))
				}
				for i := range got {
					if got[i].ID != want[i].ID || got[i].Phrase != want[i].Phrase {
						t.Fatalf("k=%d q=%q hit %d: %+v != %+v", k, q, i, got[i], want[i])
					}
				}
			}
		}
		nodes, owned := 0, 0
		nbt, ebt := map[string]int{}, map[string]int{}
		for _, p := range projs {
			nodes += p.HomeCount
			owned += p.OwnedEdgeCount()
			hs := p.HomeStats()
			for typ, n := range hs.NodesByType {
				nbt[typ] += n
			}
			for typ, n := range hs.EdgesByType {
				ebt[typ] += n
			}
		}
		if nodes != union.NodeCount() || owned != union.EdgeCount() {
			t.Fatalf("k=%d: summed %d nodes/%d owned edges, union has %d/%d", k, nodes, owned, union.NodeCount(), union.EdgeCount())
		}
		us := union.ComputeStats()
		if !reflect.DeepEqual(nbt, us.NodesByType) || !reflect.DeepEqual(ebt, us.EdgesByType) {
			t.Fatalf("k=%d: summed stats diverge: %v/%v vs %v/%v", k, nbt, ebt, us.NodesByType, us.EdgesByType)
		}
	}
}

// TestLoadShardInput: a shard file boots directly (with identity
// validation), a plain ontology file is partitioned on the fly, and
// mismatched identities or malformed files are rejected.
func TestLoadShardInput(t *testing.T) {
	union := projectionOntology(t)
	ss, err := ShardSnapshot(union, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	shardPath := filepath.Join(dir, "shard-1.json")
	if err := ss.Projection(1).SaveFile(shardPath); err != nil {
		t.Fatal(err)
	}
	unionPath := filepath.Join(dir, "ao.json")
	if err := union.SaveFile(unionPath); err != nil {
		t.Fatal(err)
	}

	p, err := LoadShardInput(shardPath, 1, 2)
	if err != nil || p.Shard != 1 || p.NumShards != 2 {
		t.Fatalf("LoadShardInput(shard file) = %+v, %v", p, err)
	}
	if _, err := LoadShardInput(shardPath, 0, 2); err == nil || !strings.Contains(err.Error(), "holds shard 1/2") {
		t.Fatalf("identity mismatch not rejected: %v", err)
	}
	p2, err := LoadShardInput(unionPath, 1, 2)
	if err != nil {
		t.Fatalf("LoadShardInput(union file): %v", err)
	}
	if p2.HomeCount != p.HomeCount || !reflect.DeepEqual(p2.UnionIDs, p.UnionIDs) {
		t.Fatal("union-derived projection diverges from the exported shard file")
	}
	if _, err := LoadShardFile(unionPath); !errors.Is(err, ErrNotShardFile) {
		t.Fatalf("plain ontology file as a shard file = %v, want ErrNotShardFile", err)
	}
	// The inverse confusion: a shard file must not load as a whole
	// ontology (its local-ID world would silently serve wrong).
	if _, err := LoadSnapshotFile(shardPath); err == nil || !strings.Contains(err.Error(), "shard projection") {
		t.Fatalf("shard file accepted as a whole ontology: %v", err)
	}
	// A corrupt file CLAIMING a shard identity must surface as corrupt,
	// not fall back to the plain loader.
	badPath := filepath.Join(dir, "bad-shard.json")
	if err := os.WriteFile(badPath, []byte(`{"shard":1,"num_shards":2,"home_count":99,"union_ids":[],"nodes":[],"edges":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardInput(badPath, 1, 2); err == nil || errors.Is(err, ErrNotShardFile) || !strings.Contains(err.Error(), "home count") {
		t.Fatalf("corrupt shard file not surfaced: %v", err)
	}
}
