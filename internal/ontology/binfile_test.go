package ontology

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// encodeSnapshotBinary is a test helper returning the GIANTBIN bytes of a
// snapshot.
func encodeSnapshotBinary(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripByteIdenticalJSON is the format-fidelity pin: for a
// rich fixture and a sweep of randomized ontologies, JSON→binary→JSON is
// byte-identical, so the binary format provably loses nothing the JSON
// format persists.
func TestBinaryRoundTripByteIdenticalJSON(t *testing.T) {
	snaps := []*Snapshot{richOntology().Snapshot(), New().Snapshot()}
	for seed := int64(0); seed < 20; seed++ {
		snaps = append(snaps, randomOntology(seed).Snapshot())
	}
	for i, snap := range snaps {
		var wantJSON bytes.Buffer
		if err := snap.WriteJSON(&wantJSON); err != nil {
			t.Fatal(err)
		}
		data := encodeSnapshotBinary(t, snap)
		back, err := DecodeSnapshotBinary(data)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		var gotJSON bytes.Buffer
		if err := back.WriteJSON(&gotJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
			t.Fatalf("case %d: JSON→binary→JSON not byte-identical\nwant: %s\ngot:  %s", i, wantJSON.Bytes(), gotJSON.Bytes())
		}
		// Second encode of the decoded snapshot must also be stable.
		if !bytes.Equal(data, encodeSnapshotBinary(t, back)) {
			t.Fatalf("case %d: binary encode not stable across a decode", i)
		}
	}
}

// TestBinaryDecodedSnapshotReads checks the decoded snapshot answers reads
// (lookups, traversals, stats, search) identically to the original — the
// indexes rebuilt over file-backed columns behave like freshly built ones.
func TestBinaryDecodedSnapshotReads(t *testing.T) {
	snap := richOntology().Snapshot()
	back, err := DecodeSnapshotBinary(encodeSnapshotBinary(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Nodes(), back.Nodes()) {
		t.Fatal("nodes differ")
	}
	if !reflect.DeepEqual(snap.Edges(), back.Edges()) {
		t.Fatal("edges differ")
	}
	if !reflect.DeepEqual(snap.ComputeStats(), back.ComputeStats()) {
		t.Fatal("stats differ")
	}
	if id, ok := back.Lookup(Concept, "Family Sedans"); !ok {
		t.Fatal("phrase lookup failed on decoded snapshot")
	} else if id2, _ := snap.Lookup(Concept, "Family Sedans"); id != id2 {
		t.Fatalf("lookup: got %d want %d", id, id2)
	}
	if _, ok := back.LookupAlias(Concept, "family sedan"); !ok {
		t.Fatal("alias lookup failed on decoded snapshot")
	}
	if !reflect.DeepEqual(snap.Search("honda", 0), back.Search("honda", 0)) {
		t.Fatal("search differs")
	}
	for id := 0; id < snap.Len(); id++ {
		if !reflect.DeepEqual(snap.Ancestors(NodeID(id)), back.Ancestors(NodeID(id))) {
			t.Fatalf("ancestors of %d differ", id)
		}
		if !reflect.DeepEqual(snap.Children(NodeID(id), IsA), back.Children(NodeID(id), IsA)) {
			t.Fatalf("children of %d differ", id)
		}
	}
}

// TestBinaryShardRoundTrip: a shard projection written as GIANTBIN loads
// back with identity, union-ID table, reverse index and per-shard reads
// intact, and matches its JSON twin exactly.
func TestBinaryShardRoundTrip(t *testing.T) {
	union := projectionOntology(t)
	ss, err := ShardSnapshot(union, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		p := ss.Projection(i)
		binPath := filepath.Join(dir, "shard.bin")
		jsonPath := filepath.Join(dir, "shard.json")
		if err := p.SaveBinaryFile(binPath); err != nil {
			t.Fatal(err)
		}
		if err := p.SaveFile(jsonPath); err != nil {
			t.Fatal(err)
		}
		fromBin, err := LoadShardFile(binPath)
		if err != nil {
			t.Fatalf("shard %d: load binary: %v", i, err)
		}
		fromJSON, err := LoadShardFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		if fromBin.Shard != i || fromBin.NumShards != 3 || fromBin.HomeCount != p.HomeCount {
			t.Fatalf("shard %d identity: %+v", i, fromBin)
		}
		if !reflect.DeepEqual(fromBin.UnionIDs, fromJSON.UnionIDs) {
			t.Fatalf("shard %d union IDs differ", i)
		}
		if !reflect.DeepEqual(fromBin.Snap.Nodes(), fromJSON.Snap.Nodes()) {
			t.Fatalf("shard %d nodes differ", i)
		}
		if !reflect.DeepEqual(fromBin.Snap.Edges(), fromJSON.Snap.Edges()) {
			t.Fatalf("shard %d edges differ", i)
		}
		if !reflect.DeepEqual(fromBin.SearchHome("sedan", 0), fromJSON.SearchHome("sedan", 0)) {
			t.Fatalf("shard %d home search differs", i)
		}
		if !reflect.DeepEqual(fromBin.HomeStats(), fromJSON.HomeStats()) {
			t.Fatalf("shard %d home stats differ", i)
		}
		for _, uid := range fromJSON.UnionIDs {
			a, aok := fromBin.LocalOf(uid)
			b, bok := fromJSON.LocalOf(uid)
			if aok != bok || a != b {
				t.Fatalf("shard %d: LocalOf(%d) = %d,%v want %d,%v", i, uid, a, aok, b, bok)
			}
		}
	}
}

// TestBinaryHeader: ReadBinaryHeader surfaces identity without loading,
// for both kinds.
func TestBinaryHeader(t *testing.T) {
	snap := richOntology().Snapshot()
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "ao.bin")
	if err := snap.SaveBinaryFile(snapPath); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBinaryHeader(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != "snapshot" || h.Version != BinaryVersion || h.Nodes != snap.Len() || h.Edges != snap.EdgeCount() {
		t.Fatalf("snapshot header: %+v", h)
	}

	ss, err := ShardSnapshot(projectionOntology(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	p := ss.Projection(1)
	shardPath := filepath.Join(dir, "shard.bin")
	if err := p.SaveBinaryFile(shardPath); err != nil {
		t.Fatal(err)
	}
	h, err = ReadBinaryHeader(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != "shard" || h.Shard != 1 || h.NumShards != 2 || h.HomeCount != p.HomeCount {
		t.Fatalf("shard header: %+v", h)
	}

	jsonPath := filepath.Join(dir, "ao.json")
	if err := snap.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinaryHeader(jsonPath); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("header of JSON file: %v, want ErrBadMagic", err)
	}
}

// sectionBoundaries parses the section table out of a GIANTBIN buffer
// (independent re-implementation, so a layout bug can't hide from the
// tests that rely on it).
func sectionBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	nsec := int(binary.LittleEndian.Uint32(data[56:60]))
	bounds := []int{binHeaderSize, binHeaderSize + binTableEntry*nsec}
	for i := 0; i < nsec; i++ {
		ent := data[binHeaderSize+binTableEntry*i:]
		off := int(binary.LittleEndian.Uint64(ent[8:]))
		length := int(binary.LittleEndian.Uint64(ent[16:]))
		bounds = append(bounds, off, off+length)
	}
	return bounds
}

// TestBinaryTruncationAtEverySectionBoundary: cutting the file at the
// header boundary, the table boundary, and the start and end of every
// section must yield a typed error (never a panic, never a snapshot).
func TestBinaryTruncationAtEverySectionBoundary(t *testing.T) {
	data := encodeSnapshotBinary(t, richOntology().Snapshot())
	cuts := sectionBoundaries(t, data)
	// A few unaligned interior cuts too.
	cuts = append(cuts, 1, 7, binHeaderSize-1, len(data)-1)
	for _, cut := range cuts {
		if cut >= len(data) {
			continue
		}
		_, err := DecodeSnapshotBinary(data[:cut])
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	// Truncation inside the fixed header specifically reports ErrTruncated
	// (magic intact, bytes missing).
	if _, err := DecodeSnapshotBinary(data[:binHeaderSize-4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("header truncation: %v, want ErrTruncated", err)
	}
}

// TestBinaryBitFlipChecksum: flipping one bit inside any section payload
// is caught by that section's CRC32C; flipping a header bit is caught by
// the header CRC.
func TestBinaryBitFlipChecksum(t *testing.T) {
	orig := encodeSnapshotBinary(t, richOntology().Snapshot())
	nsec := int(binary.LittleEndian.Uint32(orig[56:60]))
	for i := 0; i < nsec; i++ {
		ent := orig[binHeaderSize+binTableEntry*i:]
		off := int(binary.LittleEndian.Uint64(ent[8:]))
		length := int(binary.LittleEndian.Uint64(ent[16:]))
		if length == 0 {
			continue
		}
		data := append([]byte(nil), orig...)
		data[off+length/2] ^= 0x10
		if _, err := DecodeSnapshotBinary(data); !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit flip in section %d: %v, want ErrChecksum", i, err)
		}
	}
	data := append([]byte(nil), orig...)
	data[40] ^= 0x01 // node count
	if _, err := DecodeSnapshotBinary(data); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit flip in header: %v, want ErrChecksum", err)
	}
}

// TestBinaryBadMagicAndFutureVersion covers the remaining typed rejects.
func TestBinaryBadMagicAndFutureVersion(t *testing.T) {
	if _, err := DecodeSnapshotBinary([]byte("{\"nodes\":[]}")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("JSON bytes: %v, want ErrBadMagic", err)
	}
	if _, err := DecodeSnapshotBinary([]byte("GIA")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short non-magic bytes: %v, want ErrBadMagic", err)
	}

	data := encodeSnapshotBinary(t, richOntology().Snapshot())
	binary.LittleEndian.PutUint32(data[8:], BinaryVersion+1)
	// Re-stamp the header CRC so the version check (not the checksum) is
	// what fires — a future writer would have written a valid CRC.
	binary.LittleEndian.PutUint32(data[60:], crc32.Checksum(data[:60], crcTable))
	if _, err := DecodeSnapshotBinary(data); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("future version: %v, want ErrFormatVersion", err)
	}
}

// TestBinaryCrossFormatLoaders: each loader rejects the other kind's
// binary artifact the same way it rejects the JSON equivalent, and the
// derive fallback works for binary unions.
func TestBinaryCrossFormatLoaders(t *testing.T) {
	dir := t.TempDir()
	union := projectionOntology(t)
	unionPath := filepath.Join(dir, "union.bin")
	if err := union.SaveBinaryFile(unionPath); err != nil {
		t.Fatal(err)
	}
	ss, err := ShardSnapshot(union, 2)
	if err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(dir, "shard.bin")
	if err := ss.Projection(0).SaveBinaryFile(shardPath); err != nil {
		t.Fatal(err)
	}

	// Binary shard into the union loaders: rejected with a message naming
	// the shard identity, mirroring the JSON shard reject.
	if _, err := LoadSnapshotFile(shardPath); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("LoadSnapshotFile(shard.bin): %v, want shard-projection reject", err)
	}
	if _, err := LoadFile(shardPath); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("LoadFile(shard.bin): %v, want shard-projection reject", err)
	}

	// Binary union into the shard loader: ErrNotShardFile, so
	// LoadShardInput derives the projection instead.
	if _, err := LoadShardFile(unionPath); !errors.Is(err, ErrNotShardFile) {
		t.Fatalf("LoadShardFile(union.bin): %v, want ErrNotShardFile", err)
	}
	p, err := LoadShardInput(unionPath, 1, 2)
	if err != nil {
		t.Fatalf("LoadShardInput(union.bin): %v", err)
	}
	want := ss.Projection(1)
	if p.Shard != 1 || p.NumShards != 2 || p.HomeCount != want.HomeCount {
		t.Fatalf("derived projection identity: %+v", p)
	}
	if !reflect.DeepEqual(p.UnionIDs, want.UnionIDs) {
		t.Fatal("derived projection union IDs differ")
	}

	// Binary shard with the wrong requested identity: loud mismatch.
	if _, err := LoadShardInput(shardPath, 1, 2); err == nil || !strings.Contains(err.Error(), "want 1/2") {
		t.Fatalf("LoadShardInput(shard.bin, 1/2): %v, want identity mismatch", err)
	}
	// Matching identity boots directly.
	if p, err := LoadShardInput(shardPath, 0, 2); err != nil || p.Shard != 0 {
		t.Fatalf("LoadShardInput(shard.bin, 0/2): %v", err)
	}
}

// TestAtomicSave: saves replace the destination atomically and leave no
// temp droppings, for every Save* entry point.
func TestAtomicSave(t *testing.T) {
	dir := t.TempDir()
	snap := richOntology().Snapshot()
	path := filepath.Join(dir, "ao.json")
	if err := os.WriteFile(path, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := snap.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := snap.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("SaveFile did not replace the stale file")
	}
	if err := snap.SaveBinaryFile(filepath.Join(dir, "ao.bin")); err != nil {
		t.Fatal(err)
	}
	ss, err := ShardSnapshot(projectionOntology(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Projection(0).SaveFile(filepath.Join(dir, "s.json")); err != nil {
		t.Fatal(err)
	}
	if err := ss.Projection(0).SaveBinaryFile(filepath.Join(dir, "s.bin")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Mode().Perm() != 0o644 {
			t.Fatalf("%s has mode %v, want 0644", e.Name(), info.Mode().Perm())
		}
	}
	// A failing save (unwritable destination directory) must not create
	// the destination.
	bad := filepath.Join(dir, "missing-dir", "ao.json")
	if err := snap.SaveFile(bad); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	if _, err := os.Stat(bad); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed save left something at %s", bad)
	}
}

// TestStoreSaveCurrentHydrate: SaveCurrent stamps the generation into the
// artifact and Hydrate reports it back, across both formats.
func TestStoreSaveCurrentHydrate(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(0)
	if _, err := st.SaveCurrent(filepath.Join(dir, "empty.bin")); err == nil {
		t.Fatal("SaveCurrent on an empty store succeeded")
	}
	st.Push(storeSnap(t, "alpha"))
	donorSnap := storeSnap(t, "alpha", "beta")
	st.Push(donorSnap)

	path := filepath.Join(dir, "gen.bin")
	gen, err := st.SaveCurrent(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("SaveCurrent generation = %d, want 2", gen)
	}
	h, err := ReadBinaryHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Generation != 2 {
		t.Fatalf("stamped generation = %d, want 2", h.Generation)
	}

	replica := NewStore(0)
	local, donor, err := replica.Hydrate(path)
	if err != nil {
		t.Fatal(err)
	}
	if local != 1 || donor != 2 {
		t.Fatalf("Hydrate = local %d donor %d, want 1 and 2", local, donor)
	}
	cur, ok := replica.Current()
	if !ok {
		t.Fatal("replica store empty after hydrate")
	}
	var a, b bytes.Buffer
	if err := donorSnap.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := cur.Snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("hydrated snapshot differs from donor")
	}

	// JSON donors carry no generation stamp: donor is 0.
	jsonPath := filepath.Join(dir, "gen.json")
	if err := donorSnap.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if _, donor, err := replica.Hydrate(jsonPath); err != nil || donor != 0 {
		t.Fatalf("JSON hydrate: donor %d err %v, want 0 and nil", donor, err)
	}
	// A shard artifact is not a valid hydration source.
	ss, err := ShardSnapshot(projectionOntology(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(dir, "shard.bin")
	if err := ss.Projection(0).SaveBinaryFile(shardPath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replica.Hydrate(shardPath); err == nil {
		t.Fatal("hydrating from a shard artifact succeeded")
	}
}

// TestBinaryCorruptStructure: artifacts whose checksums pass but whose
// contents lie (CRC recomputed over corrupted columns) are still rejected
// by structural validation, with ErrCorrupt.
func TestBinaryCorruptStructure(t *testing.T) {
	corrupt := func(t *testing.T, mutate func(data []byte, off, length int), secID uint32) error {
		t.Helper()
		data := encodeSnapshotBinary(t, richOntology().Snapshot())
		nsec := int(binary.LittleEndian.Uint32(data[56:60]))
		for i := 0; i < nsec; i++ {
			ent := data[binHeaderSize+binTableEntry*i:]
			if binary.LittleEndian.Uint32(ent[0:]) != secID {
				continue
			}
			off := int(binary.LittleEndian.Uint64(ent[8:]))
			length := int(binary.LittleEndian.Uint64(ent[16:]))
			mutate(data, off, length)
			// Re-stamp the section CRC so only structural validation can
			// catch the lie.
			binary.LittleEndian.PutUint32(ent[24:], crc32.Checksum(data[off:off+length], crcTable))
			_, err := DecodeSnapshotBinary(data)
			return err
		}
		t.Fatalf("section %d not found", secID)
		return nil
	}

	// Edge endpoint out of range.
	err := corrupt(t, func(data []byte, off, _ int) {
		binary.LittleEndian.PutUint32(data[off:], 1<<20)
	}, secEdgeSrc)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wild edge endpoint: %v, want ErrCorrupt", err)
	}
	// Decreasing phrase offsets.
	err = corrupt(t, func(data []byte, off, _ int) {
		binary.LittleEndian.PutUint32(data[off+4:], 1<<30)
	}, secPhraseOffs)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad phrase offsets: %v, want ErrCorrupt", err)
	}
	// CSR grouping an edge under the wrong vertex.
	err = corrupt(t, func(data []byte, off, length int) {
		a := binary.LittleEndian.Uint32(data[off:])
		binary.LittleEndian.PutUint32(data[off:], binary.LittleEndian.Uint32(data[off+length-4:]))
		binary.LittleEndian.PutUint32(data[off+length-4:], a)
	}, secCSROutIdx)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("shuffled CSR: %v, want ErrCorrupt", err)
	}
}
