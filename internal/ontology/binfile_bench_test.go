package ontology

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// benchCorpus builds a deterministic synthetic ontology big enough that
// load time is dominated by decode work, with the shape the real pipeline
// produces: mostly entities and events under a thin concept/category
// layer, aliases on a minority of nodes, and a few edges per node.
func benchCorpus(n int) *Snapshot {
	rng := rand.New(rand.NewSource(1))
	nodes := make([]Node, n)
	for i := range nodes {
		var t NodeType
		switch {
		case i < n/100+1:
			t = Category
		case i < n/10:
			t = Concept
		case i < n/2:
			t = Entity
		case i < n*9/10:
			t = Event
		default:
			t = Topic
		}
		nodes[i] = Node{
			ID:           NodeID(i),
			Type:         t,
			Phrase:       fmt.Sprintf("%s phrase number %d of the bench corpus", t, i),
			FirstSeenDay: rng.Intn(60),
		}
		nodes[i].LastSeenDay = nodes[i].FirstSeenDay + rng.Intn(30)
		if t == Event {
			nodes[i].Trigger = "announces"
			nodes[i].Location = "city " + fmt.Sprint(i%50)
			nodes[i].Day = nodes[i].FirstSeenDay
		}
		if i%5 == 0 {
			nodes[i].Aliases = []string{
				fmt.Sprintf("alias one of node %d", i),
				fmt.Sprintf("alias two of node %d", i),
			}
		}
	}
	edges := make([]Edge, 0, 4*n)
	for i := 1; i < n; i++ {
		deg := 1 + rng.Intn(6)
		for d := 0; d < deg && len(edges) < cap(edges); d++ {
			src := rng.Intn(i)
			edges = append(edges, Edge{
				Src: NodeID(src), Dst: NodeID(i),
				Type:   EdgeType(rng.Intn(int(NumEdgeTypes))),
				Weight: float64(rng.Intn(1000)) / 1000,
			})
		}
	}
	snap, err := BuildSnapshot(nodes, edges)
	if err != nil {
		panic(err)
	}
	return snap
}

// BenchmarkSnapshotLoad measures cold boot from disk in both formats —
// the number a restarting giantd (or a -watch hot swap) pays once per
// artifact. The binary path must stay ≥5x faster with ≥10x fewer
// allocations than JSON (acceptance floor; see bench/BENCH_baseline.json).
func BenchmarkSnapshotLoad(b *testing.B) {
	n := 30000
	if testing.Short() {
		n = 4000
	}
	snap := benchCorpus(n)
	dir := b.TempDir()
	jsonPath := filepath.Join(dir, "ao.json")
	binPath := filepath.Join(dir, "ao.bin")
	if err := snap.SaveFile(jsonPath); err != nil {
		b.Fatal(err)
	}
	if err := snap.SaveBinaryFile(binPath); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		path string
	}{{"json", jsonPath}, {"binary", binPath}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := LoadSnapshotFile(bc.path)
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != n {
					b.Fatalf("loaded %d nodes, want %d", s.Len(), n)
				}
			}
		})
	}
}

// BenchmarkShardLoad is the same measurement for a per-shard boot
// artifact — the giantrouter fleet's restart cost.
func BenchmarkShardLoad(b *testing.B) {
	n := 30000
	if testing.Short() {
		n = 4000
	}
	ss, err := ShardSnapshot(benchCorpus(n), 4)
	if err != nil {
		b.Fatal(err)
	}
	p := ss.Projection(0)
	dir := b.TempDir()
	jsonPath := filepath.Join(dir, "shard.json")
	binPath := filepath.Join(dir, "shard.bin")
	if err := p.SaveFile(jsonPath); err != nil {
		b.Fatal(err)
	}
	if err := p.SaveBinaryFile(binPath); err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		path string
	}{{"json", jsonPath}, {"binary", binPath}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp, err := LoadShardFile(bc.path)
				if err != nil {
					b.Fatal(err)
				}
				if sp.Shard != 0 || sp.NumShards != 4 {
					b.Fatalf("loaded shard %d/%d", sp.Shard, sp.NumShards)
				}
			}
		})
	}
}
