// Package par provides the small concurrency primitives the pipeline
// shares: an index-sharded parallel for-loop and a bounded stage runner.
// Both degrade to plain sequential execution at workers <= 1, so a single
// code path serves the sequential and parallel configurations and their
// outputs stay identical by construction.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEachIndexed invokes fn(i) for every i in [0, n) on up to workers
// goroutines; workers <= 1 runs everything on the calling goroutine in
// order. Work is handed out by an atomic counter, so callers regain a
// deterministic result order by writing into slot i of a preallocated
// slice.
func ForEachIndexed(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunStages executes the stage functions on at most workers goroutines and
// returns the first error — an errgroup without the external dependency.
// With workers <= 1 the stages run sequentially in order.
func RunStages(workers int, stages ...func() error) error {
	if workers <= 1 {
		for _, s := range stages {
			if err := s(); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for _, s := range stages {
		wg.Add(1)
		go func(s func() error) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := s(); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return first
}
