package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 57
		hits := make([]int32, n)
		ForEachIndexed(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachIndexedEmpty(t *testing.T) {
	called := false
	ForEachIndexed(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestRunStagesSequentialOrder(t *testing.T) {
	var order []int
	err := RunStages(1,
		func() error { order = append(order, 1); return nil },
		func() error { order = append(order, 2); return nil },
	)
	if err != nil || len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order=%v err=%v", order, err)
	}
}

func TestRunStagesReportsError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := RunStages(workers,
			func() error { return nil },
			func() error { return boom },
			func() error { return nil },
		)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err=%v, want boom", workers, err)
		}
	}
}
