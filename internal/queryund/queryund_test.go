package queryund

import (
	"strings"
	"testing"

	"giant/internal/ontology"
)

func sampleOntology() *ontology.Ontology {
	o := ontology.New()
	con := o.AddNode(ontology.Concept, "economy cars")
	e1 := o.AddNode(ontology.Entity, "honda civic")
	e2 := o.AddNode(ontology.Entity, "toyota corolla")
	e3 := o.AddNode(ontology.Entity, "ford focus")
	_ = o.AddEdge(con, e1, ontology.IsA, 1)
	_ = o.AddEdge(con, e2, ontology.IsA, 1)
	_ = o.AddEdge(e1, e2, ontology.Correlate, 1)
	_ = o.AddEdge(e3, e1, ontology.Correlate, 1)
	return o
}

func TestConceptQueryRewrites(t *testing.T) {
	u := New(sampleOntology())
	a := u.Analyze("best economy cars 2019")
	if a.Concept != "economy cars" {
		t.Fatalf("concept = %q", a.Concept)
	}
	if len(a.Rewrites) != 2 {
		t.Fatalf("rewrites = %v", a.Rewrites)
	}
	for _, r := range a.Rewrites {
		if !strings.HasPrefix(r, "best economy cars 2019 ") {
			t.Fatalf("rewrite format: %q", r)
		}
	}
}

func TestEntityQueryRecommendations(t *testing.T) {
	u := New(sampleOntology())
	a := u.Analyze("honda civic")
	if a.Entity != "honda civic" {
		t.Fatalf("entity = %q", a.Entity)
	}
	// Correlations in both directions must surface.
	want := map[string]bool{"toyota corolla": true, "ford focus": true}
	if len(a.Recommendations) != 2 {
		t.Fatalf("recommendations = %v", a.Recommendations)
	}
	for _, r := range a.Recommendations {
		if !want[r] {
			t.Fatalf("unexpected recommendation %q", r)
		}
	}
}

func TestNoMatch(t *testing.T) {
	u := New(sampleOntology())
	a := u.Analyze("completely unrelated query")
	if a.Concept != "" || a.Entity != "" || len(a.Rewrites) != 0 {
		t.Fatalf("spurious analysis: %+v", a)
	}
}

func TestLongestConceptWins(t *testing.T) {
	o := sampleOntology()
	o.AddNode(ontology.Concept, "cars")
	u := New(o)
	if got := u.Conceptualize("best economy cars"); got != "economy cars" {
		t.Fatalf("Conceptualize = %q", got)
	}
}

func TestMaxExpansions(t *testing.T) {
	o := ontology.New()
	con := o.AddNode(ontology.Concept, "things")
	for i := 0; i < 10; i++ {
		e := o.AddNode(ontology.Entity, "entity "+string(rune('a'+i)))
		_ = o.AddEdge(con, e, ontology.IsA, 1)
	}
	u := New(o)
	u.MaxExpansions = 3
	a := u.Analyze("things")
	if len(a.Rewrites) != 3 {
		t.Fatalf("rewrites = %d, want 3", len(a.Rewrites))
	}
}
