// Package queryund implements §4's query understanding: detect whether a
// query conveys a concept or an entity, rewrite concept queries by expanding
// them with member entities ("q e_i"), and recommend correlated entities for
// entity queries.
package queryund

import (
	"sort"
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
)

// Understander analyzes queries against the Attention Ontology. It reads
// through the ontology.View interface, so the same code path serves both
// offline analysis over a mutable *Ontology and the online tier over a
// lock-free *Snapshot.
type Understander struct {
	Onto ontology.View
	// MaxExpansions caps rewrites/recommendations per query.
	MaxExpansions int
}

// New builds an Understander.
func New(onto ontology.View) *Understander {
	return &Understander{Onto: onto, MaxExpansions: 5}
}

// Analysis is the structured interpretation of a query.
type Analysis struct {
	Query string
	// Concept is the concept phrase conveyed by the query, if any.
	Concept string
	// Entity is the entity conveyed by the query, if any.
	Entity string
	// Rewrites are "q e_i" expansions for concept queries.
	Rewrites []string
	// Recommendations are correlated entities for entity queries.
	Recommendations []string
}

// Analyze interprets a query.
func (u *Understander) Analyze(query string) Analysis {
	a := Analysis{Query: query}
	qnorm := strings.Join(nlp.Tokenize(query), " ")

	// Concept detection: longest concept phrase contained in the query.
	best := ""
	for _, c := range u.Onto.Nodes(ontology.Concept) {
		cp := strings.Join(nlp.Tokenize(c.Phrase), " ")
		if cp != "" && strings.Contains(" "+qnorm+" ", " "+cp+" ") && len(cp) > len(best) {
			best = c.Phrase
		}
	}
	if best != "" {
		a.Concept = best
		node, _ := u.Onto.Find(ontology.Concept, best)
		children := u.Onto.Children(node.ID, ontology.IsA)
		sort.Slice(children, func(i, j int) bool { return children[i].Phrase < children[j].Phrase })
		for _, ch := range children {
			if ch.Type != ontology.Entity {
				continue
			}
			a.Rewrites = append(a.Rewrites, query+" "+ch.Phrase)
			if len(a.Rewrites) >= u.MaxExpansions {
				break
			}
		}
	}

	// Entity detection: exact entity-name query (or contained name).
	if ent, ok := u.Onto.Find(ontology.Entity, qnorm); ok {
		a.Entity = ent.Phrase
	} else {
		for _, e := range u.Onto.Nodes(ontology.Entity) {
			ep := strings.Join(nlp.Tokenize(e.Phrase), " ")
			if ep != "" && strings.Contains(" "+qnorm+" ", " "+ep+" ") {
				a.Entity = e.Phrase
				break
			}
		}
	}
	if a.Entity != "" {
		ent, _ := u.Onto.Find(ontology.Entity, a.Entity)
		var correlated []string
		for _, n := range u.Onto.Children(ent.ID, ontology.Correlate) {
			correlated = append(correlated, n.Phrase)
		}
		for _, n := range u.Onto.Parents(ent.ID, ontology.Correlate) {
			correlated = append(correlated, n.Phrase)
		}
		sort.Strings(correlated)
		seen := map[string]bool{a.Entity: true}
		for _, c := range correlated {
			if !seen[c] {
				seen[c] = true
				a.Recommendations = append(a.Recommendations, c)
				if len(a.Recommendations) >= u.MaxExpansions {
					break
				}
			}
		}
	}
	return a
}

// Conceptualize returns just the concept conveyed by the query ("" if none).
func (u *Understander) Conceptualize(query string) string {
	return u.Analyze(query).Concept
}
