// Package queryund implements §4's query understanding: detect whether a
// query conveys a concept or an entity, rewrite concept queries by expanding
// them with member entities ("q e_i"), and recommend correlated entities for
// entity queries.
package queryund

import (
	"giant/internal/ontology"
)

// Understander analyzes queries against the Attention Ontology. It reads
// through the ontology.View interface, so the same code path serves both
// offline analysis over a mutable *Ontology and the online tier over a
// lock-free *Snapshot.
type Understander struct {
	Onto ontology.View
	// MaxExpansions caps rewrites/recommendations per query.
	MaxExpansions int
}

// DefaultMaxExpansions is the rewrite/recommendation cap New applies. A
// merge site folding per-shard partials (serve.Router) re-caps with the
// same constant, so the merged analysis matches a single-snapshot one.
const DefaultMaxExpansions = 5

// New builds an Understander.
func New(onto ontology.View) *Understander {
	return &Understander{Onto: onto, MaxExpansions: DefaultMaxExpansions}
}

// Analysis is the structured interpretation of a query.
type Analysis struct {
	Query string
	// Concept is the concept phrase conveyed by the query, if any.
	Concept string
	// Entity is the entity conveyed by the query, if any.
	Entity string
	// Rewrites are "q e_i" expansions for concept queries.
	Rewrites []string
	// Recommendations are correlated entities for entity queries.
	Recommendations []string
}

// Analyze interprets a query. It is the merge of a single partial over the
// whole view — the same code path the sharded merge sites run. The longest
// concept phrase wins by its normalized length (an earlier version compared
// the normalized candidate against the raw best phrase, which could pick a
// shorter concept when punctuation inflated the raw length).
func (u *Understander) Analyze(query string) Analysis {
	return Merge(query, []*Partial{u.Partial(ontology.UnionScope(u.Onto), query)}, u.MaxExpansions)
}

// Conceptualize returns just the concept conveyed by the query ("" if none).
func (u *Understander) Conceptualize(query string) string {
	return u.Analyze(query).Concept
}
