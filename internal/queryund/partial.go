package queryund

import (
	"sort"
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
)

// This file decomposes query understanding into per-scope partials plus a
// deterministic merge (see ontology.Scope): each scope scans only its home
// concepts/entities and reports at most three candidates, and a merge site
// folds them into the final Analysis. Merging the single partial of a
// UnionScope IS the single-snapshot computation, so Analyze itself runs on
// this path and every serving mode stays byte-identical.
//
// A candidate's expansions are computed by its home scope — the scope holds
// every edge of a home node, and ghost endpoints carry exact phrases — so
// the merge site never needs a second round trip. Rewrites ship as the bare
// member-entity phrases and are prefixed with the raw query at merge time,
// which keeps partials dependent only on the normalized query (and thus
// cacheable per generation + normalized query).

// ConceptCand is a scope's best home concept contained in the query:
// longest normalized phrase, ties to the lowest union ID.
type ConceptCand struct {
	ID     ontology.NodeID `json:"id"`
	Phrase string          `json:"phrase"`
	// NormLen is the byte length of the normalized phrase, the "longest
	// concept" merge key.
	NormLen int `json:"norm_len"`
	// RewritePhrases are the concept's member-entity phrases in expansion
	// order, already capped at MaxExpansions.
	RewritePhrases []string `json:"rewrite_phrases,omitempty"`
}

// EntityCand is a home entity conveyed by the query, with its correlated
// recommendations precomputed by the home scope.
type EntityCand struct {
	ID     ontology.NodeID `json:"id"`
	Phrase string          `json:"phrase"`
	Recs   []string        `json:"recs,omitempty"`
}

// Partial is one scope's contribution to a query analysis.
type Partial struct {
	Concept *ConceptCand `json:"concept,omitempty"`
	// EntityExact matches the normalized query exactly; at most one scope
	// of a partition reports it.
	EntityExact *EntityCand `json:"entity_exact,omitempty"`
	// EntityContained is the scope's lowest-union-ID entity whose phrase is
	// contained in the query.
	EntityContained *EntityCand `json:"entity_contained,omitempty"`
}

// Partial extracts the scope's candidates for a query. The result depends
// only on the scope's view and the normalized query.
func (u *Understander) Partial(scope ontology.Scope, query string) *Partial {
	qnorm := strings.Join(nlp.Tokenize(query), " ")
	padded := " " + qnorm + " "
	p := &Partial{}

	// Concept detection: longest home concept phrase contained in the
	// query; the strict > keeps the lowest union ID on ties, matching the
	// union scan order.
	bestPhrase, bestLen := "", 0
	var bestID ontology.NodeID
	for _, c := range scope.HomeNodes(ontology.Concept) {
		cp := strings.Join(nlp.Tokenize(c.Phrase), " ")
		if cp != "" && strings.Contains(padded, " "+cp+" ") && len(cp) > bestLen {
			bestPhrase, bestLen, bestID = c.Phrase, len(cp), c.ID
		}
	}
	if bestLen > 0 {
		cand := &ConceptCand{ID: bestID, Phrase: bestPhrase, NormLen: bestLen}
		if _, local, ok := scope.FindHome(ontology.Concept, bestPhrase); ok {
			children := scope.View.Children(local, ontology.IsA)
			sort.Slice(children, func(i, j int) bool { return children[i].Phrase < children[j].Phrase })
			for _, ch := range children {
				if ch.Type != ontology.Entity {
					continue
				}
				cand.RewritePhrases = append(cand.RewritePhrases, ch.Phrase)
				if len(cand.RewritePhrases) >= u.MaxExpansions {
					break
				}
			}
		}
		p.Concept = cand
	}

	// Entity detection: exact normalized-query match, plus the first home
	// entity (ascending union ID) contained in the query.
	if ent, local, ok := scope.FindHome(ontology.Entity, qnorm); ok {
		p.EntityExact = &EntityCand{ID: ent.ID, Phrase: ent.Phrase, Recs: u.recommendations(scope, local, ent.Phrase)}
	}
	for _, e := range scope.HomeNodes(ontology.Entity) {
		ep := strings.Join(nlp.Tokenize(e.Phrase), " ")
		if ep != "" && strings.Contains(padded, " "+ep+" ") {
			cand := &EntityCand{ID: e.ID, Phrase: e.Phrase}
			if _, local, ok := scope.FindHome(ontology.Entity, e.Phrase); ok {
				cand.Recs = u.recommendations(scope, local, e.Phrase)
			}
			p.EntityContained = cand
			break
		}
	}
	return p
}

// recommendations lists correlated entity phrases for a home entity, sorted
// and deduplicated, capped at MaxExpansions.
func (u *Understander) recommendations(scope ontology.Scope, local ontology.NodeID, entityPhrase string) []string {
	var correlated []string
	for _, n := range scope.View.Children(local, ontology.Correlate) {
		correlated = append(correlated, n.Phrase)
	}
	for _, n := range scope.View.Parents(local, ontology.Correlate) {
		correlated = append(correlated, n.Phrase)
	}
	sort.Strings(correlated)
	seen := map[string]bool{entityPhrase: true}
	var recs []string
	for _, c := range correlated {
		if !seen[c] {
			seen[c] = true
			recs = append(recs, c)
			if len(recs) >= u.MaxExpansions {
				break
			}
		}
	}
	return recs
}

// Merge folds per-scope partials into the final Analysis: the longest
// concept wins (ties to the lowest union ID), an exact entity match beats
// any contained one, and contained candidates resolve to the lowest union
// ID — exactly the precedence of the single-snapshot scan.
func Merge(query string, parts []*Partial, maxExpansions int) Analysis {
	a := Analysis{Query: query}

	var best *ConceptCand
	for _, p := range parts {
		if p == nil || p.Concept == nil {
			continue
		}
		c := p.Concept
		if best == nil || c.NormLen > best.NormLen || (c.NormLen == best.NormLen && c.ID < best.ID) {
			best = c
		}
	}
	if best != nil {
		a.Concept = best.Phrase
		for _, chp := range best.RewritePhrases {
			a.Rewrites = append(a.Rewrites, query+" "+chp)
			if len(a.Rewrites) >= maxExpansions {
				break
			}
		}
	}

	var exact, contained *EntityCand
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.EntityExact != nil {
			exact = p.EntityExact
		}
		if p.EntityContained != nil && (contained == nil || p.EntityContained.ID < contained.ID) {
			contained = p.EntityContained
		}
	}
	ent := exact
	if ent == nil {
		ent = contained
	}
	if ent != nil {
		a.Entity = ent.Phrase
		for _, rec := range ent.Recs {
			a.Recommendations = append(a.Recommendations, rec)
			if len(a.Recommendations) >= maxExpansions {
				break
			}
		}
	}
	return a
}
