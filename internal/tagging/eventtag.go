package tagging

import (
	"math/rand"

	"giant/internal/nlp"
	"giant/internal/nn"
	"giant/internal/ontology"
)

// EventTagger tags documents with topic/event phrases by combining
// LCS-based textual matching with a Duet-style learned matcher (§4: both
// must fire for a tag to be assigned).
type EventTagger struct {
	Onto ontology.View
	// LCSThreshold is the minimum normalized LCS length.
	LCSThreshold float64
	Duet         *Duet
}

// NewEventTagger builds the tagger. A nil duet degrades to LCS-only
// matching (useful when serving a persisted ontology with no trained
// matcher at hand).
func NewEventTagger(onto ontology.View, duet *Duet) *EventTagger {
	return &EventTagger{Onto: onto, LCSThreshold: 0.5, Duet: duet}
}

// docString is the matching text: title plus first content sentence.
func docString(doc *Document) []string {
	toks := nlp.Tokenize(doc.Title)
	if i := indexByte(doc.Content, '.'); i > 0 {
		toks = append(toks, nlp.Tokenize(doc.Content[:i])...)
	}
	return toks
}

// DocTokens exposes the event-matching token stream (the title plus the
// first content sentence, lowercased by tokenization) for shard routing: a
// candidate event or topic needs a positive normalized LCS with this
// stream, i.e. at least one shared token, and every token of a phrase is a
// substring of it — so a scope whose term grams hit none of these tokens
// provably contributes no event candidates.
func DocTokens(doc *Document) []string {
	return docString(doc)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TagEvents returns event/topic tags for a document, as the merge of a
// single partial over the tagger's whole view — the same code path the
// sharded merge sites run.
func (t *EventTagger) TagEvents(doc *Document) []Tag {
	return MergeEventCands(t.Partial(ontology.UnionScope(t.Onto), doc))
}

// LCSLen is the longest-common-subsequence length between token sequences.
func LCSLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Duet is a compact stand-in for the Duet matching network [42]: a local
// interaction signal (exact-match statistics) and a distributed signal
// (hashed bag-of-token embedding cosine) fused by a tiny learned MLP.
type Duet struct {
	Dim    int
	hidden *nn.Dense
	out    *nn.Dense
}

// NewDuet builds an untrained matcher.
func NewDuet(seed int64) *Duet {
	rng := rand.New(rand.NewSource(seed))
	d := &Duet{Dim: 16}
	d.hidden = nn.NewDense("duet.h", 4, 8, rng)
	d.out = nn.NewDense("duet.o", 8, 1, rng)
	return d
}

// features builds the 4-d local+distributed feature vector.
func (d *Duet) features(pToks, docToks []string) []float64 {
	docSet := map[string]bool{}
	for _, t := range docToks {
		docSet[t] = true
	}
	overlap, nonstop, covered := 0.0, 0.0, 0.0
	for _, t := range pToks {
		if docSet[t] {
			overlap++
			if !nlp.IsStopWord(t) {
				covered++
			}
		}
		if !nlp.IsStopWord(t) {
			nonstop++
		}
	}
	f1 := overlap / float64(len(pToks))
	f2 := 0.0
	if nonstop > 0 {
		f2 = covered / nonstop
	}
	f3 := float64(LCSLen(pToks, docToks)) / float64(len(pToks))
	f4 := nn.CosineSim(hashEmbed(pToks, d.Dim), hashEmbed(docToks, d.Dim))
	return []float64{f1, f2, f3, f4}
}

// Score returns the match probability.
func (d *Duet) Score(pToks, docToks []string) float64 {
	x := nn.NewMatFrom(1, 4, d.features(pToks, docToks))
	h := nn.ReLU(d.hidden.Forward(x))
	z := d.out.Forward(h)
	return nn.Sigmoid(z.At(0, 0))
}

// Match applies a 0.5 decision threshold.
func (d *Duet) Match(pToks, docToks []string) bool {
	return d.Score(pToks, docToks) >= 0.5
}

// DuetExample is a labelled (phrase, doc) pair for training.
type DuetExample struct {
	Phrase []string
	Doc    []string
	Label  bool
}

// Train fits the matcher with SGD on logistic loss.
func (d *Duet) Train(examples []DuetExample, epochs int, lr float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	params := append(d.hidden.Params(), d.out.Params()...)
	adam := nn.NewAdam(lr, params)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			e := &examples[i]
			x := nn.NewMatFrom(1, 4, d.features(e.Phrase, e.Doc))
			pre := d.hidden.Forward(x)
			h := nn.ReLU(pre)
			z := d.out.Forward(h)
			target := 0.0
			if e.Label {
				target = 1
			}
			p := nn.Sigmoid(z.At(0, 0))
			dz := nn.NewMat(1, 1)
			dz.Set(0, 0, p-target)
			dh := d.out.Backward(dz)
			dPre := nn.ReLUBackward(dh, pre)
			d.hidden.Backward(dPre)
			adam.Step()
		}
	}
}

func hashEmbed(toks []string, dim int) []float64 {
	v := make([]float64, dim)
	for _, t := range toks {
		if nlp.IsStopWord(t) {
			continue
		}
		h := uint64(1469598103934665603)
		for _, c := range t {
			h = (h ^ uint64(c)) * 1099511628211
		}
		for i := 0; i < dim; i++ {
			h = h*6364136223846793005 + 1442695040888963407
			v[i] += float64(int64(h>>33))/float64(1<<30) - 1
		}
	}
	return v
}
