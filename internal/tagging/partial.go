package tagging

import (
	"sort"
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/phrase"
)

// This file decomposes document tagging into per-scope partials plus a
// deterministic merge, the core of the union-exact sharded application
// endpoints: each scope of a partition (see ontology.Scope) extracts raw
// candidates over its home nodes only, carrying union IDs, and a merge site
// folds them into the final tag list. Merging the single partial of a
// UnionScope IS the single-snapshot computation, so TagConcepts/TagEvents
// are themselves implemented on top of this and every serving mode shares
// one code path.
//
// The split relies on the home partition invariants: every union node is
// home in exactly one scope, a home node's edges are all present in its
// scope's view, and ghost endpoints carry exact phrases and types.
//
// Candidate representations (ConceptRef.Rep) are computed by the home scope
// from its own ContextRep configuration; fleets must run every shard and the
// merge site with the same tagger configuration (context representations,
// thresholds, Duet weights) for merged answers to be union-exact.

// Default thresholds shared by all merge sites.
const (
	DefaultCoherenceThreshold = 0.05
	DefaultInferThreshold     = 0.05
)

// ConceptRef is a concept carried across the wire: its union ID, canonical
// phrase, and context-enriched representation tokens.
type ConceptRef struct {
	ID     ontology.NodeID `json:"id"`
	Phrase string          `json:"phrase"`
	Rep    []string        `json:"rep,omitempty"`
}

// EventCand is a thresholded event/topic tag candidate scored by its home
// scope.
type EventCand struct {
	Phrase string            `json:"phrase"`
	Type   ontology.NodeType `json:"type"`
	Score  float64           `json:"score"`
}

// ConceptStats exports the scope's home concepts with their representation
// tokens — the per-scope half of a merged ConceptIndex. The result depends
// only on the scope's published generation, so callers cache it per
// generation.
func (t *ConceptTagger) ConceptStats(scope ontology.Scope) []ConceptRef {
	nodes := scope.HomeNodes(ontology.Concept)
	out := make([]ConceptRef, len(nodes))
	for i := range nodes {
		out[i] = ConceptRef{ID: nodes[i].ID, Phrase: nodes[i].Phrase, Rep: t.repOf(nodes[i].Phrase)}
	}
	return out
}

// MatchPartial resolves each document entity against the scope's home nodes
// and reports its Concept IsA-parents in edge order. The slot for an entity
// that is not home in this scope stays nil; exactly one scope of a partition
// owns each known entity, so merged slots never conflict. Parents that are
// ghosts locally still carry exact phrases and union IDs.
func (t *ConceptTagger) MatchPartial(scope ontology.Scope, doc *Document) [][]ConceptRef {
	out := make([][]ConceptRef, len(doc.Entities))
	for i, entName := range doc.Entities {
		_, local, ok := scope.FindHome(ontology.Entity, entName)
		if !ok {
			continue
		}
		cands := []ConceptRef{}
		for _, parent := range scope.View.Parents(local, ontology.IsA) {
			if parent.Type != ontology.Concept {
				continue
			}
			cands = append(cands, ConceptRef{ID: scope.UID(parent.ID), Phrase: parent.Phrase, Rep: t.repOf(parent.Phrase)})
		}
		out[i] = cands
	}
	return out
}

// MergeMatchSlots combines per-scope match partials: each entity slot is
// owned by at most one scope, so the merged slot is the one non-nil list.
func MergeMatchSlots(parts [][][]ConceptRef, entities int) [][]ConceptRef {
	out := make([][]ConceptRef, entities)
	for _, p := range parts {
		for i := 0; i < entities && i < len(p); i++ {
			if p[i] != nil {
				out[i] = p[i]
			}
		}
	}
	return out
}

// ConceptIndex is the merge-site concept model: the union's concepts in
// ascending union-ID order, the TF-IDF statistics over their
// representations, and the context-word inverted index used by the
// Eq. (12)–(14) inference fallback. Built from merged per-scope
// ConceptStats, it is identical to the model a single union snapshot
// produces, because TF-IDF document frequencies are integer counters
// (order-independent) and the ID sort reproduces the union's concept order.
type ConceptIndex struct {
	Concepts []ConceptRef
	TFIDF    *phrase.TFIDF

	wordConcepts map[string][]int
}

// NewConceptIndex merges per-scope concept stats into the union model.
func NewConceptIndex(parts ...[]ConceptRef) *ConceptIndex {
	var all []ConceptRef
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	ix := &ConceptIndex{
		Concepts:     all,
		TFIDF:        phrase.NewTFIDF(),
		wordConcepts: map[string][]int{},
	}
	for ci := range all {
		ix.TFIDF.AddDoc(all[ci].Rep)
		for _, tok := range nlp.Tokenize(all[ci].Phrase) {
			ix.wordConcepts[tok] = append(ix.wordConcepts[tok], ci)
		}
	}
	return ix
}

// Tag is the merge fold for concept tagging: candidates from the merged
// entity slots (deduplicated by phrase in document-entity order) are scored
// by TF-IDF coherence; when no entity had a known Concept parent anywhere,
// the Eq. (12)–(14) inference fallback runs over the merged concept list.
func (ix *ConceptIndex) Tag(doc *Document, entitySlots [][]ConceptRef, coherence, infer float64) []Tag {
	titleVec := ix.TFIDF.Vector(nlp.Tokenize(doc.Title))
	var tags []Tag
	seen := map[string]bool{}
	foundParent := false
	for _, cands := range entitySlots {
		for _, cand := range cands {
			if seen[cand.Phrase] {
				continue
			}
			seen[cand.Phrase] = true
			foundParent = true
			score := phrase.Cosine(titleVec, ix.TFIDF.Vector(cand.Rep))
			if score >= coherence {
				tags = append(tags, Tag{Phrase: cand.Phrase, Type: ontology.Concept, Score: score})
			}
		}
	}
	if !foundParent {
		tags = append(tags, ix.inferConcepts(doc, infer)...)
	}
	sortTags(tags)
	return tags
}

// inferConcepts is the Eq. (12)–(14) fallback: P(pc|d) = Σ_i P(pc|e_i)
// P(e_i|d), with P(pc|e_i) inferred from the entity's context words x_j
// (same-sentence co-occurrence) and P(pc|x_j) uniform over concepts
// containing x_j. Context words are folded in sorted order so the float
// accumulation sequence — and therefore the scores — are identical on every
// merge site.
func (ix *ConceptIndex) inferConcepts(doc *Document, threshold float64) []Tag {
	if len(doc.Entities) == 0 {
		return nil
	}
	sentences := strings.Split(doc.Content, ".")

	// P(e|d): entity mention frequency.
	entFreq := map[string]float64{}
	total := 0.0
	content := " " + strings.ToLower(doc.Content) + " "
	for _, e := range doc.Entities {
		f := float64(strings.Count(content, " "+strings.ToLower(e)+" "))
		if f == 0 {
			f = 1
		}
		entFreq[e] = f
		total += f
	}

	scores := make([]float64, len(ix.Concepts))
	for _, e := range doc.Entities {
		pe := entFreq[e] / total
		// Context words of e: same-sentence tokens.
		ctxCount := map[string]float64{}
		ctxTotal := 0.0
		for _, s := range sentences {
			ls := strings.ToLower(s)
			if !strings.Contains(ls, strings.ToLower(e)) {
				continue
			}
			for _, tok := range nlp.Tokenize(s) {
				if nlp.IsStopWord(tok) {
					continue
				}
				ctxCount[tok]++
				ctxTotal++
			}
		}
		if ctxTotal == 0 {
			continue
		}
		words := make([]string, 0, len(ctxCount))
		for x := range ctxCount {
			words = append(words, x)
		}
		sort.Strings(words)
		for _, x := range words {
			cis := ix.wordConcepts[x]
			if len(cis) == 0 {
				continue
			}
			pxGivenE := ctxCount[x] / ctxTotal
			pcGivenX := 1 / float64(len(cis))
			for _, ci := range cis {
				scores[ci] += pcGivenX * pxGivenE * pe
			}
		}
	}
	var tags []Tag
	for ci, s := range scores {
		if s >= threshold {
			tags = append(tags, Tag{Phrase: ix.Concepts[ci].Phrase, Type: ontology.Concept, Score: s})
		}
	}
	return tags
}

// sortTags orders concept tags by score (descending) then phrase. Concept
// phrases are unique, so the comparator is total.
func sortTags(tags []Tag) {
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].Score != tags[j].Score {
			return tags[i].Score > tags[j].Score
		}
		return tags[i].Phrase < tags[j].Phrase
	})
}

// Partial scores the scope's home event and topic phrases against the
// document, applying both the LCS threshold and the Duet matcher locally;
// only surviving candidates cross the wire.
func (t *EventTagger) Partial(scope ontology.Scope, doc *Document) []EventCand {
	docToks := docString(doc)
	var out []EventCand
	for _, typ := range []ontology.NodeType{ontology.Event, ontology.Topic} {
		for _, node := range scope.HomeNodes(typ) {
			pToks := nlp.Tokenize(node.Phrase)
			if len(pToks) == 0 {
				continue
			}
			l := LCSLen(pToks, docToks)
			norm := float64(l) / float64(len(pToks))
			if norm < t.LCSThreshold {
				continue
			}
			if t.Duet != nil && !t.Duet.Match(pToks, docToks) {
				continue
			}
			out = append(out, EventCand{Phrase: node.Phrase, Type: typ, Score: norm})
		}
	}
	return out
}

// MergeEventCands folds per-scope event partials into the final tag list.
// The comparator breaks score ties by phrase then node type, so it is total
// even when one phrase names both an event and a topic — which makes the
// merged order independent of which scope contributed which candidate.
func MergeEventCands(parts ...[]EventCand) []Tag {
	var all []EventCand
	for _, p := range parts {
		all = append(all, p...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Phrase != all[j].Phrase {
			return all[i].Phrase < all[j].Phrase
		}
		return all[i].Type < all[j].Type
	})
	tags := make([]Tag, len(all))
	for i, c := range all {
		tags[i] = Tag{Phrase: c.Phrase, Type: c.Type, Score: c.Score}
	}
	return tags
}
