// Package tagging implements §4's document tagging: concept tagging through
// key entities and their ontology parents (with TF-IDF coherence scoring)
// plus the probabilistic context-inference fallback of Eq. (12)–(14), and
// topic/event tagging by longest-common-subsequence matching combined with a
// learned Duet-style semantic matcher.
package tagging

import (
	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/phrase"
)

// Document is the tagger's input view.
type Document struct {
	ID       int
	Title    string
	Content  string
	Entities []string // key entity surface forms (from upstream NER)
}

// Tag is one assigned attention tag.
type Tag struct {
	Phrase string
	Type   ontology.NodeType
	Score  float64
}

// ConceptTagger tags documents with concepts from the ontology. It reads
// through the ontology.View interface, so it runs unchanged against the
// mutable build-time *Ontology or a lock-free serving *Snapshot.
type ConceptTagger struct {
	Onto ontology.View
	// ContextRep maps concept phrase -> context-enriched representation
	// tokens (phrase + its top clicked titles).
	ContextRep map[string][]string
	TFIDF      *phrase.TFIDF
	// CoherenceThreshold gates match-based tagging.
	CoherenceThreshold float64
	// InferThreshold gates the probabilistic fallback of Eq. (12).
	InferThreshold float64

	index *ConceptIndex
}

// NewConceptTagger builds the tagger; contextRep may be nil (degrades to
// phrase-only representations).
func NewConceptTagger(onto ontology.View, contextRep map[string][]string) *ConceptTagger {
	t := &ConceptTagger{
		Onto:               onto,
		ContextRep:         contextRep,
		CoherenceThreshold: DefaultCoherenceThreshold,
		InferThreshold:     DefaultInferThreshold,
	}
	t.index = NewConceptIndex(t.ConceptStats(ontology.UnionScope(onto)))
	t.TFIDF = t.index.TFIDF
	return t
}

// Index exposes the tagger's own view as a merged concept index (the
// merge-of-one-partial over a UnionScope).
func (t *ConceptTagger) Index() *ConceptIndex { return t.index }

func (t *ConceptTagger) repOf(conceptPhrase string) []string {
	if rep, ok := t.ContextRep[conceptPhrase]; ok && len(rep) > 0 {
		out := append([]string(nil), nlp.Tokenize(conceptPhrase)...)
		for _, title := range rep {
			out = append(out, nlp.Tokenize(title)...)
		}
		return out
	}
	return nlp.Tokenize(conceptPhrase)
}

// TagConcepts returns concept tags for a document: candidates are the
// ontology IsA-parents of the document's key entities, scored by TF-IDF
// coherence between the title and the concept's context-enriched
// representation; when no parent is known, Eq. (12)–(14) infer concepts from
// entity context words. Implemented as the merge of a single partial over
// the tagger's whole view, the same code path the sharded merge sites run.
func (t *ConceptTagger) TagConcepts(doc *Document) []Tag {
	slots := t.MatchPartial(ontology.UnionScope(t.Onto), doc)
	return t.index.Tag(doc, slots, t.CoherenceThreshold, t.InferThreshold)
}
