// Package tagging implements §4's document tagging: concept tagging through
// key entities and their ontology parents (with TF-IDF coherence scoring)
// plus the probabilistic context-inference fallback of Eq. (12)–(14), and
// topic/event tagging by longest-common-subsequence matching combined with a
// learned Duet-style semantic matcher.
package tagging

import (
	"sort"
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/phrase"
)

// Document is the tagger's input view.
type Document struct {
	ID       int
	Title    string
	Content  string
	Entities []string // key entity surface forms (from upstream NER)
}

// Tag is one assigned attention tag.
type Tag struct {
	Phrase string
	Type   ontology.NodeType
	Score  float64
}

// ConceptTagger tags documents with concepts from the ontology. It reads
// through the ontology.View interface, so it runs unchanged against the
// mutable build-time *Ontology or a lock-free serving *Snapshot.
type ConceptTagger struct {
	Onto ontology.View
	// ContextRep maps concept phrase -> context-enriched representation
	// tokens (phrase + its top clicked titles).
	ContextRep map[string][]string
	TFIDF      *phrase.TFIDF
	// CoherenceThreshold gates match-based tagging.
	CoherenceThreshold float64
	// InferThreshold gates the probabilistic fallback of Eq. (12).
	InferThreshold float64
}

// NewConceptTagger builds the tagger; contextRep may be nil (degrades to
// phrase-only representations).
func NewConceptTagger(onto ontology.View, contextRep map[string][]string) *ConceptTagger {
	t := &ConceptTagger{
		Onto:               onto,
		ContextRep:         contextRep,
		TFIDF:              phrase.NewTFIDF(),
		CoherenceThreshold: 0.05,
		InferThreshold:     0.05,
	}
	for _, c := range onto.Nodes(ontology.Concept) {
		t.TFIDF.AddDoc(t.repOf(c.Phrase))
	}
	return t
}

func (t *ConceptTagger) repOf(conceptPhrase string) []string {
	if rep, ok := t.ContextRep[conceptPhrase]; ok && len(rep) > 0 {
		out := append([]string(nil), nlp.Tokenize(conceptPhrase)...)
		for _, title := range rep {
			out = append(out, nlp.Tokenize(title)...)
		}
		return out
	}
	return nlp.Tokenize(conceptPhrase)
}

// TagConcepts returns concept tags for a document: candidates are the
// ontology IsA-parents of the document's key entities, scored by TF-IDF
// coherence between the title and the concept's context-enriched
// representation; when no parent is known, Eq. (12)–(14) infer concepts from
// entity context words.
func (t *ConceptTagger) TagConcepts(doc *Document) []Tag {
	titleVec := t.TFIDF.Vector(nlp.Tokenize(doc.Title))
	var tags []Tag
	seen := map[string]bool{}
	foundParent := false
	for _, entName := range doc.Entities {
		ent, ok := t.Onto.Find(ontology.Entity, entName)
		if !ok {
			continue
		}
		for _, parent := range t.Onto.Parents(ent.ID, ontology.IsA) {
			if parent.Type != ontology.Concept || seen[parent.Phrase] {
				continue
			}
			seen[parent.Phrase] = true
			foundParent = true
			score := phrase.Cosine(titleVec, t.TFIDF.Vector(t.repOf(parent.Phrase)))
			if score >= t.CoherenceThreshold {
				tags = append(tags, Tag{Phrase: parent.Phrase, Type: ontology.Concept, Score: score})
			}
		}
	}
	if !foundParent {
		tags = append(tags, t.inferConcepts(doc)...)
	}
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].Score != tags[j].Score {
			return tags[i].Score > tags[j].Score
		}
		return tags[i].Phrase < tags[j].Phrase
	})
	return tags
}

// inferConcepts is the Eq. (12)–(14) fallback: P(pc|d) = Σ_i P(pc|e_i)
// P(e_i|d), with P(pc|e_i) inferred from the entity's context words x_j
// (same-sentence co-occurrence) and P(pc|x_j) uniform over concepts
// containing x_j as a substring.
func (t *ConceptTagger) inferConcepts(doc *Document) []Tag {
	if len(doc.Entities) == 0 {
		return nil
	}
	sentences := strings.Split(doc.Content, ".")
	concepts := t.Onto.Nodes(ontology.Concept)

	// Precompute: context word -> concepts containing it.
	wordConcepts := map[string][]int{}
	for ci, c := range concepts {
		for _, tok := range nlp.Tokenize(c.Phrase) {
			wordConcepts[tok] = append(wordConcepts[tok], ci)
		}
	}

	// P(e|d): entity mention frequency.
	entFreq := map[string]float64{}
	total := 0.0
	content := " " + strings.ToLower(doc.Content) + " "
	for _, e := range doc.Entities {
		f := float64(strings.Count(content, " "+strings.ToLower(e)+" "))
		if f == 0 {
			f = 1
		}
		entFreq[e] = f
		total += f
	}

	scores := make([]float64, len(concepts))
	for _, e := range doc.Entities {
		pe := entFreq[e] / total
		// Context words of e: same-sentence tokens.
		ctxCount := map[string]float64{}
		ctxTotal := 0.0
		for _, s := range sentences {
			ls := strings.ToLower(s)
			if !strings.Contains(ls, strings.ToLower(e)) {
				continue
			}
			for _, tok := range nlp.Tokenize(s) {
				if nlp.IsStopWord(tok) {
					continue
				}
				ctxCount[tok]++
				ctxTotal++
			}
		}
		if ctxTotal == 0 {
			continue
		}
		for x, cnt := range ctxCount {
			cis := wordConcepts[x]
			if len(cis) == 0 {
				continue
			}
			pxGivenE := cnt / ctxTotal
			pcGivenX := 1 / float64(len(cis))
			for _, ci := range cis {
				scores[ci] += pcGivenX * pxGivenE * pe
			}
		}
	}
	var tags []Tag
	for ci, s := range scores {
		if s >= t.InferThreshold {
			tags = append(tags, Tag{Phrase: concepts[ci].Phrase, Type: ontology.Concept, Score: s})
		}
	}
	return tags
}
