package tagging

import (
	"testing"

	"giant/internal/nlp"
	"giant/internal/ontology"
)

func sampleOntology() *ontology.Ontology {
	o := ontology.New()
	con := o.AddNode(ontology.Concept, "marvel superhero movies")
	e1 := o.AddNode(ontology.Entity, "iron man")
	e2 := o.AddNode(ontology.Entity, "captain america")
	_ = o.AddEdge(con, e1, ontology.IsA, 1)
	_ = o.AddEdge(con, e2, ontology.IsA, 1)
	o.AddNode(ontology.Event, "hero studios release sequel")
	o.AddNode(ontology.Topic, "studios release sequel")
	return o
}

func TestTagConceptsViaParents(t *testing.T) {
	o := sampleOntology()
	tagger := NewConceptTagger(o, map[string][]string{
		"marvel superhero movies": {"best marvel superhero movies ranked"},
	})
	doc := &Document{
		Title:    "iron man and captain america reviewed : marvel superhero movies",
		Content:  "iron man is a superhero movie . captain america follows .",
		Entities: []string{"iron man", "captain america"},
	}
	tags := tagger.TagConcepts(doc)
	if len(tags) == 0 || tags[0].Phrase != "marvel superhero movies" {
		t.Fatalf("tags = %+v", tags)
	}
}

func TestTagConceptsInferenceFallback(t *testing.T) {
	o := ontology.New()
	o.AddNode(ontology.Concept, "superhero movies")
	// Entity exists in the doc but has no ontology parents.
	o.AddNode(ontology.Entity, "iron man")
	tagger := NewConceptTagger(o, nil)
	tagger.InferThreshold = 0.01
	doc := &Document{
		Title:    "iron man review",
		Content:  "iron man is one of the great superhero movies of the decade.",
		Entities: []string{"iron man"},
	}
	tags := tagger.TagConcepts(doc)
	found := false
	for _, tg := range tags {
		if tg.Phrase == "superhero movies" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Eq.12 inference missed the concept: %+v", tags)
	}
}

func TestLCSLen(t *testing.T) {
	a := nlp.Tokenize("jay chou hold concert in taipei")
	b := nlp.Tokenize("breaking : jay chou hold big concert tonight")
	if got := LCSLen(a, b); got != 4 { // jay chou hold concert
		t.Fatalf("LCSLen = %d", got)
	}
	if LCSLen(nil, b) != 0 || LCSLen(a, nil) != 0 {
		t.Fatal("empty LCS")
	}
}

func TestDuetLearnsMatching(t *testing.T) {
	d := NewDuet(3)
	var examples []DuetExample
	phrases := [][]string{
		nlp.Tokenize("acme release earnings"),
		nlp.Tokenize("globex cancel tour"),
		nlp.Tokenize("initech launch phone"),
	}
	docs := [][]string{
		nlp.Tokenize("breaking acme release earnings surprise analysts"),
		nlp.Tokenize("globex cancel tour after outcry"),
		nlp.Tokenize("initech launch phone with fanfare"),
	}
	for i := range phrases {
		for j := range docs {
			examples = append(examples, DuetExample{Phrase: phrases[i], Doc: docs[j], Label: i == j})
		}
	}
	d.Train(examples, 30, 0.05, 4)
	if !d.Match(phrases[0], docs[0]) {
		t.Fatalf("matching pair rejected: score %v", d.Score(phrases[0], docs[0]))
	}
	if d.Score(phrases[0], docs[1]) >= d.Score(phrases[0], docs[0]) {
		t.Fatal("mismatched pair outscored match")
	}
}

func TestTagEventsRequiresBothSignals(t *testing.T) {
	o := sampleOntology()
	d := NewDuet(5)
	// Train duet to accept overlapping pairs.
	p := nlp.Tokenize("hero studios release sequel")
	pos := nlp.Tokenize("hero studios release sequel this summer")
	neg := nlp.Tokenize("totally different text about gardening tips")
	d.Train([]DuetExample{
		{Phrase: p, Doc: pos, Label: true},
		{Phrase: p, Doc: neg, Label: false},
	}, 40, 0.05, 6)
	tagger := NewEventTagger(o, d)
	doc := &Document{Title: "hero studios release sequel this summer", Content: "the sequel arrives."}
	tags := tagger.TagEvents(doc)
	if len(tags) == 0 {
		t.Fatal("matching event not tagged")
	}
	// A document with no overlap never gets the tag.
	doc2 := &Document{Title: "gardening tips for spring", Content: "plant early."}
	if tags := tagger.TagEvents(doc2); len(tags) != 0 {
		t.Fatalf("spurious tags: %+v", tags)
	}
}
