package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactMatch(t *testing.T) {
	cases := []struct {
		pred, gold string
		want       float64
	}{
		{"economy cars", "economy cars", 1},
		{"Economy Cars", "economy cars", 1},   // case folded
		{"economy cars ?", "economy cars", 1}, // punctuation dropped
		{"economy car", "economy cars", 0},
		{"cars economy", "economy cars", 0}, // order matters
		{"", "economy cars", 0},
	}
	for _, c := range cases {
		if got := ExactMatch(c.pred, c.gold); got != c.want {
			t.Fatalf("ExactMatch(%q,%q) = %v, want %v", c.pred, c.gold, got, c.want)
		}
	}
}

func TestTokenF1(t *testing.T) {
	if got := TokenF1("economy cars", "economy cars"); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
	// pred has 1 of 2 gold tokens and 1 extra: P=0.5, R=0.5, F1=0.5.
	if got := TokenF1("economy trucks", "economy cars"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("partial F1 = %v", got)
	}
	if got := TokenF1("nothing shared", "economy cars"); got != 0 {
		t.Fatalf("zero F1 = %v", got)
	}
	// Order-insensitive.
	if got := TokenF1("cars economy", "economy cars"); got != 1 {
		t.Fatalf("bag F1 = %v", got)
	}
}

func TestTokenF1SymmetricBounded(t *testing.T) {
	f := func(a, b string) bool {
		v := TokenF1(a, b)
		if v < 0 || v > 1 {
			return false
		}
		return math.Abs(v-TokenF1(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatePhrases(t *testing.T) {
	preds := []string{"economy cars", "", "wrong phrase"}
	golds := []string{"economy cars", "luxury cars", "economy cars"}
	s := EvaluatePhrases(preds, golds)
	if math.Abs(s.EM-1.0/3.0) > 1e-9 {
		t.Fatalf("EM = %v", s.EM)
	}
	if math.Abs(s.COV-2.0/3.0) > 1e-9 {
		t.Fatalf("COV = %v", s.COV)
	}
	if s.F1 <= s.EM-1e-9 {
		t.Fatalf("F1 (%v) should be >= EM (%v)", s.F1, s.EM)
	}
}

func TestMultiClassF1Perfect(t *testing.T) {
	s := MultiClassF1([]int{0, 1, 2, 1}, []int{0, 1, 2, 1}, 3)
	if s.Macro != 1 || s.Micro != 1 || s.Weighted != 1 {
		t.Fatalf("perfect score = %+v", s)
	}
}

func TestMultiClassF1Imbalanced(t *testing.T) {
	// 8 of class 0 (all right), 2 of class 1 (all wrong → predicted 0).
	gold := []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1}
	pred := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	s := MultiClassF1(pred, gold, 2)
	// Class 0: P=0.8 R=1 F1≈0.889; class 1: F1=0.
	if math.Abs(s.Macro-0.4444444) > 1e-4 {
		t.Fatalf("macro = %v", s.Macro)
	}
	if math.Abs(s.Micro-0.8) > 1e-9 {
		t.Fatalf("micro = %v", s.Micro)
	}
	// Weighted leans toward the majority class.
	if s.Weighted <= s.Macro {
		t.Fatalf("weighted (%v) should exceed macro (%v) here", s.Weighted, s.Macro)
	}
}

func TestPrecision(t *testing.T) {
	if Precision(9, 10) != 0.9 || Precision(0, 0) != 0 {
		t.Fatal("Precision broken")
	}
}
