// Package eval provides the paper's evaluation metrics: Exact Match, token
// F1 and coverage for phrase mining (Tables 5–6), and macro/micro/weighted
// F1 for key-element recognition (Table 7).
package eval

import (
	"strings"

	"giant/internal/nlp"
)

// PhraseScore holds per-example phrase-mining metrics.
type PhraseScore struct {
	EM  float64
	F1  float64
	COV float64
}

// normalizePhrase lower-cases, tokenizes and drops pure punctuation.
func normalizePhrase(p string) []string {
	toks := nlp.Tokenize(p)
	out := toks[:0]
	for _, t := range toks {
		if t == "?" || t == "!" || t == "." || t == "," || t == ":" {
			continue
		}
		out = append(out, t)
	}
	return out
}

// ExactMatch is 1 when the normalized predictions coincide.
func ExactMatch(pred, gold string) float64 {
	p := normalizePhrase(pred)
	g := normalizePhrase(gold)
	if len(p) != len(g) || len(p) == 0 {
		if len(p) == 0 && len(g) == 0 {
			return 1
		}
		return 0
	}
	for i := range p {
		if p[i] != g[i] {
			return 0
		}
	}
	return 1
}

// TokenF1 measures bag-of-token overlap between prediction and gold (the
// SQuAD-style F1 of [52]).
func TokenF1(pred, gold string) float64 {
	p := normalizePhrase(pred)
	g := normalizePhrase(gold)
	if len(p) == 0 || len(g) == 0 {
		if len(p) == len(g) {
			return 1
		}
		return 0
	}
	counts := map[string]int{}
	for _, t := range g {
		counts[t]++
	}
	overlap := 0
	for _, t := range p {
		if counts[t] > 0 {
			counts[t]--
			overlap++
		}
	}
	if overlap == 0 {
		return 0
	}
	prec := float64(overlap) / float64(len(p))
	rec := float64(overlap) / float64(len(g))
	return 2 * prec * rec / (prec + rec)
}

// EvaluatePhrases aggregates EM/F1/COV over (pred, gold) pairs. Following
// the paper, EM and F1 average over ALL examples (empty predictions score
// 0), and COV is the fraction of non-empty predictions.
func EvaluatePhrases(preds, golds []string) PhraseScore {
	var s PhraseScore
	n := float64(len(golds))
	if n == 0 {
		return s
	}
	for i := range golds {
		pred := preds[i]
		if strings.TrimSpace(pred) != "" {
			s.COV++
			s.EM += ExactMatch(pred, golds[i])
			s.F1 += TokenF1(pred, golds[i])
		}
	}
	s.EM /= n
	s.F1 /= n
	s.COV /= n
	return s
}

// MultiClassScore holds Table 7's three F1 aggregates.
type MultiClassScore struct {
	Macro    float64
	Micro    float64
	Weighted float64
}

// MultiClassF1 computes macro, micro and support-weighted F1 over integer
// class predictions (classes 0..k-1).
func MultiClassF1(pred, gold []int, k int) MultiClassScore {
	tp := make([]float64, k)
	fp := make([]float64, k)
	fn := make([]float64, k)
	support := make([]float64, k)
	for i := range gold {
		g, p := gold[i], pred[i]
		support[g]++
		if p == g {
			tp[g]++
		} else {
			fp[p]++
			fn[g]++
		}
	}
	var score MultiClassScore
	var sumF1, sumW, totalSupport, totTP, totFP, totFN float64
	classes := 0.0
	for c := 0; c < k; c++ {
		f1 := f1Of(tp[c], fp[c], fn[c])
		sumF1 += f1
		sumW += f1 * support[c]
		totalSupport += support[c]
		totTP += tp[c]
		totFP += fp[c]
		totFN += fn[c]
		classes++
	}
	if classes > 0 {
		score.Macro = sumF1 / classes
	}
	score.Micro = f1Of(totTP, totFP, totFN)
	if totalSupport > 0 {
		score.Weighted = sumW / totalSupport
	}
	return score
}

func f1Of(tp, fp, fn float64) float64 {
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}

// Precision is the fraction of predictions judged correct (used for the
// tagging-precision experiments of §5.3).
func Precision(correct, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
