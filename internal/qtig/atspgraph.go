package qtig

// ATSPDistances builds the distance matrix for ATSP decoding (§3.1, "Node
// Ordering with ATSP Decoding") over the predicted-positive nodes plus SOS
// and EOS. Per the paper, the decoding variant of the QTIG:
//
//  1. drops all dependency edges,
//  2. makes "seq" edges unidirectional (input order),
//  3. connects SOS to the first positive token of each input and the last
//     positive token of each input to EOS,
//  4. defines distance between positive nodes as shortest-path length in
//     this modified graph.
//
// The returned matrix is indexed by position in the returned node list, whose
// first element is SOS and last is EOS. Unreachable pairs get the `inf`
// sentinel (callers treat it as a large-but-finite cost).
func (g *Graph) ATSPDistances(positive []int) (nodes []int, dist [][]float64) {
	const inf = 1e9

	// Adjacency of the modified graph: unidirectional seq edges.
	adj := make([][]int, len(g.Nodes))
	addArc := func(u, v int) {
		for _, x := range adj[u] {
			if x == v {
				return
			}
		}
		adj[u] = append(adj[u], v)
	}
	for _, text := range g.Inputs {
		prev := -1
		for _, tok := range text {
			cur := g.nodeOf(tok.Text)
			if cur < 0 {
				continue
			}
			if prev >= 0 && prev != cur {
				addArc(prev, cur)
			}
			prev = cur
		}
	}

	posSet := make(map[int]bool, len(positive))
	for _, p := range positive {
		posSet[p] = true
	}
	// SOS -> first positive token per input; last positive token -> EOS.
	for _, text := range g.Inputs {
		first, last := -1, -1
		for _, tok := range text {
			n := g.nodeOf(tok.Text)
			if n >= 0 && posSet[n] {
				if first == -1 {
					first = n
				}
				last = n
			}
		}
		if first >= 0 {
			addArc(g.SOS, first)
		}
		if last >= 0 {
			addArc(last, g.EOS)
		}
	}

	nodes = make([]int, 0, len(positive)+2)
	nodes = append(nodes, g.SOS)
	nodes = append(nodes, positive...)
	nodes = append(nodes, g.EOS)

	// BFS from each node of interest.
	dist = make([][]float64, len(nodes))
	for i, src := range nodes {
		d := g.bfs(src, adj)
		row := make([]float64, len(nodes))
		for j, dst := range nodes {
			if d[dst] < 0 {
				row[j] = inf
			} else {
				row[j] = float64(d[dst])
			}
		}
		dist[i] = row
	}
	return nodes, dist
}

func (g *Graph) bfs(src int, adj [][]int) []int {
	d := make([]int, len(g.Nodes))
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if d[v] == -1 {
				d[v] = d[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return d
}
