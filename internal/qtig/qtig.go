// Package qtig builds the Query-Title Interaction Graph of §3.1
// (Algorithm 2): a token-merged graph over a query-doc cluster whose nodes
// are unique tokens and whose edges are bidirectional "seq" adjacency edges
// plus dependency edges, with a keep-first-edge rule that prefers adjacency
// over syntax and higher-weighted inputs over lower-weighted ones.
package qtig

import (
	"giant/internal/nlp"
)

// Relation identifiers for R-GCN. Forward and reverse directions of the same
// linguistic relation are distinct relation types (the paper draws reverse
// arrows with hollow pointers).
const (
	RelSeqFwd = 0 // next-token edge
	RelSeqRev = 1 // previous-token edge
	// Dependency relations occupy [2, 2+2*NumDepRel): forward at
	// 2+2*rel, reverse at 2+2*rel+1.
	relDepBase = 2
)

// NumRelations is the total relation vocabulary size for R-GCN.
const NumRelations = relDepBase + 2*nlp.NumDepRel

// DepRelFwd returns the forward relation id of a dependency label.
func DepRelFwd(r nlp.DepRel) int { return relDepBase + 2*int(r) }

// DepRelRev returns the reverse relation id of a dependency label.
func DepRelRev(r nlp.DepRel) int { return relDepBase + 2*int(r) + 1 }

// Node is one unique token in the graph.
type Node struct {
	Token nlp.Token
	SeqID int // order in which the node was added (a model feature)
	IsSOS bool
	IsEOS bool
}

// Edge is a directed labeled edge.
type Edge struct {
	Src, Dst int
	Rel      int
}

// Graph is a Query-Title Interaction Graph.
type Graph struct {
	Nodes []Node
	Edges []Edge
	SOS   int
	EOS   int

	index map[string]int
	// edgePresent dedupes by (src,dst) regardless of relation — Algorithm 2
	// keeps only the FIRST edge constructed between a token pair.
	edgePresent map[[2]int]bool
	// Inputs in insertion order (annotated), used by ATSP graph building.
	Inputs [][]nlp.Token
}

// BuildOptions control graph construction; the defaults follow the paper.
type BuildOptions struct {
	// KeepAllEdges disables the keep-first-edge rule (ablation: the paper
	// reports keep-first performs better than the full multigraph).
	KeepAllEdges bool
	// SkipDependencies drops dependency edges entirely (ablation).
	SkipDependencies bool
}

// Build constructs the QTIG from annotated queries and titles, which must be
// ordered by descending random-walk weight (queries first, then titles) so
// that the keep-first-edge rule prefers relations from higher-weighted text.
func Build(queries, titles [][]nlp.Token, opt BuildOptions) *Graph {
	g := &Graph{
		index:       make(map[string]int),
		edgePresent: make(map[[2]int]bool),
	}
	g.SOS = g.addNode(nlp.Token{Text: "<sos>", POS: nlp.PosOther}, true, false)
	g.EOS = g.addNode(nlp.Token{Text: "<eos>", POS: nlp.PosOther}, false, true)

	inputs := make([][]nlp.Token, 0, len(queries)+len(titles))
	inputs = append(inputs, queries...)
	inputs = append(inputs, titles...)
	g.Inputs = inputs

	// Pass 1 (Algorithm 2, lines 2-7): nodes and sequential edges.
	for _, text := range inputs {
		prev := g.SOS
		for _, tok := range text {
			cur := g.addNode(tok, false, false)
			g.addEdgePair(prev, cur, RelSeqFwd, RelSeqRev, opt)
			prev = cur
		}
		g.addEdgePair(prev, g.EOS, RelSeqFwd, RelSeqRev, opt)
	}

	// Pass 2 (lines 8-12): dependency edges.
	if !opt.SkipDependencies {
		for _, text := range inputs {
			arcs := nlp.ParseDeps(text)
			for _, a := range arcs {
				if a.Head < 0 {
					continue
				}
				src := g.nodeOf(text[a.Head].Text)
				dst := g.nodeOf(text[a.Dependent].Text)
				if src < 0 || dst < 0 || src == dst {
					continue
				}
				g.addEdgePair(src, dst, DepRelFwd(a.Rel), DepRelRev(a.Rel), opt)
			}
		}
	}
	return g
}

func (g *Graph) addNode(tok nlp.Token, sos, eos bool) int {
	if i, ok := g.index[tok.Text]; ok {
		return i
	}
	i := len(g.Nodes)
	g.Nodes = append(g.Nodes, Node{Token: tok, SeqID: i, IsSOS: sos, IsEOS: eos})
	g.index[tok.Text] = i
	return i
}

func (g *Graph) nodeOf(text string) int {
	if i, ok := g.index[text]; ok {
		return i
	}
	return -1
}

// addEdgePair adds the bidirectional edge (src->dst rel, dst->src relRev),
// honouring the keep-first rule unless disabled.
func (g *Graph) addEdgePair(src, dst int, rel, relRev int, opt BuildOptions) {
	if src == dst {
		return
	}
	if !opt.KeepAllEdges {
		k := [2]int{src, dst}
		if g.edgePresent[k] || g.edgePresent[[2]int{dst, src}] {
			return
		}
		g.edgePresent[k] = true
		g.edgePresent[[2]int{dst, src}] = true
	}
	g.Edges = append(g.Edges, Edge{src, dst, rel}, Edge{dst, src, relRev})
}

// NodeIndex returns the node index for a token text, or -1.
func (g *Graph) NodeIndex(text string) int { return g.nodeOf(text) }

// Tokens returns the token texts in node order.
func (g *Graph) Tokens() []string {
	out := make([]string, len(g.Nodes))
	for i, n := range g.Nodes {
		out[i] = n.Token.Text
	}
	return out
}

// LabelNodes returns a 0/1 label per node: 1 when the node's token occurs in
// goldTokens. SOS/EOS are always 0. Used to build R-GCN training targets.
func (g *Graph) LabelNodes(goldTokens []string) []int {
	gold := make(map[string]bool, len(goldTokens))
	for _, t := range goldTokens {
		gold[t] = true
	}
	labels := make([]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if !n.IsSOS && !n.IsEOS && gold[n.Token.Text] {
			labels[i] = 1
		}
	}
	return labels
}
