package qtig

import (
	"testing"

	"giant/internal/nlp"
)

func annotate(lex *nlp.Lexicon, texts ...string) [][]nlp.Token {
	out := make([][]nlp.Token, 0, len(texts))
	for _, t := range texts {
		out = append(out, lex.Annotate(t))
	}
	return out
}

func buildSample(opt BuildOptions) *Graph {
	lex := nlp.NewLexicon()
	lex.Register("miyazaki", nlp.PosPropn, nlp.NerPerson)
	lex.Register("animated", nlp.PosAdj, nlp.NerNone)
	lex.Register("film", nlp.PosNoun, nlp.NerNone)
	qs := annotate(lex, "what are the miyazaki animated film")
	ts := annotate(lex, "review miyazaki animated film", "the famous animated films of miyazaki")
	return Build(qs, ts, opt)
}

func TestNodesAreUniqueTokens(t *testing.T) {
	g := buildSample(BuildOptions{})
	seen := map[string]bool{}
	for _, n := range g.Nodes {
		if seen[n.Token.Text] {
			t.Fatalf("duplicate node %q", n.Token.Text)
		}
		seen[n.Token.Text] = true
	}
	if !seen["<sos>"] || !seen["<eos>"] {
		t.Fatal("missing SOS/EOS")
	}
	// "miyazaki" appears in three inputs but must be a single node.
	if g.NodeIndex("miyazaki") < 0 {
		t.Fatal("merged token missing")
	}
}

func TestKeepFirstEdgeRule(t *testing.T) {
	g := buildSample(BuildOptions{})
	// At most one relation per unordered node pair.
	pairCount := map[[2]int]int{}
	for _, e := range g.Edges {
		k := [2]int{e.Src, e.Dst}
		if e.Src > e.Dst {
			k = [2]int{e.Dst, e.Src}
		}
		pairCount[k]++
	}
	for k, c := range pairCount {
		if c > 2 { // one forward + one reverse
			t.Fatalf("pair %v has %d edges; keep-first-edge violated", k, c)
		}
	}
	// The multigraph variant must have at least as many edges.
	gAll := buildSample(BuildOptions{KeepAllEdges: true})
	if len(gAll.Edges) < len(g.Edges) {
		t.Fatal("KeepAllEdges produced fewer edges")
	}
}

func TestSeqEdgesBidirectional(t *testing.T) {
	g := buildSample(BuildOptions{})
	fwd, rev := 0, 0
	for _, e := range g.Edges {
		switch e.Rel {
		case RelSeqFwd:
			fwd++
		case RelSeqRev:
			rev++
		}
	}
	if fwd == 0 || fwd != rev {
		t.Fatalf("seq edges fwd=%d rev=%d", fwd, rev)
	}
}

func TestSkipDependencies(t *testing.T) {
	g := buildSample(BuildOptions{SkipDependencies: true})
	for _, e := range g.Edges {
		if e.Rel >= 2 {
			t.Fatalf("dependency edge %d present despite SkipDependencies", e.Rel)
		}
	}
}

func TestLabelNodes(t *testing.T) {
	g := buildSample(BuildOptions{})
	labels := g.LabelNodes([]string{"miyazaki", "animated", "film"})
	pos := 0
	for i, l := range labels {
		if l == 1 {
			pos++
			if g.Nodes[i].IsSOS || g.Nodes[i].IsEOS {
				t.Fatal("special node labelled positive")
			}
		}
	}
	if pos != 3 {
		t.Fatalf("expected 3 positive nodes, got %d", pos)
	}
}

func TestRelationIDsInRange(t *testing.T) {
	g := buildSample(BuildOptions{})
	for _, e := range g.Edges {
		if e.Rel < 0 || e.Rel >= NumRelations {
			t.Fatalf("relation %d out of range [0,%d)", e.Rel, NumRelations)
		}
	}
}

func TestATSPDistancesOrderRecovery(t *testing.T) {
	g := buildSample(BuildOptions{})
	positive := []int{
		g.NodeIndex("miyazaki"),
		g.NodeIndex("animated"),
		g.NodeIndex("film"),
	}
	nodes, dist := g.ATSPDistances(positive)
	if len(nodes) != 5 { // sos + 3 + eos
		t.Fatalf("nodes = %d", len(nodes))
	}
	// Adjacent-in-input tokens must be at distance 1.
	idx := map[int]int{}
	for i, n := range nodes {
		idx[n] = i
	}
	mi, an, fi := idx[positive[0]], idx[positive[1]], idx[positive[2]]
	if dist[mi][an] != 1 || dist[an][fi] != 1 {
		t.Fatalf("expected unit distances along input order: %v %v", dist[mi][an], dist[an][fi])
	}
	// SOS reaches the first positive token directly.
	if dist[0][mi] != 1 {
		t.Fatalf("sos->miyazaki = %v", dist[0][mi])
	}
}

func TestATSPDistancesUnreachable(t *testing.T) {
	lex := nlp.NewLexicon()
	qs := annotate(lex, "alpha beta")
	g := Build(qs, nil, BuildOptions{})
	a, b := g.NodeIndex("alpha"), g.NodeIndex("beta")
	_, dist := g.ATSPDistances([]int{a, b})
	// beta -> alpha is against the unidirectional seq edge: unreachable.
	if dist[2][1] < 1e8 {
		t.Fatalf("reverse distance should be infinite-ish, got %v", dist[2][1])
	}
}
