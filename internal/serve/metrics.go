package serve

import (
	"sort"
	"sync/atomic"
	"time"
)

// endpointMetrics accumulates per-endpoint counters with atomics only, so
// the request path never serializes on a metrics lock.
type endpointMetrics struct {
	requests  atomic.Uint64
	errors4xx atomic.Uint64
	errors5xx atomic.Uint64
	cacheHits atomic.Uint64
	totalUs   atomic.Uint64 // summed handler latency, microseconds
	maxUs     atomic.Uint64
}

// observe records one finished request.
func (m *endpointMetrics) observe(status int, elapsed time.Duration, cacheHit bool) {
	m.requests.Add(1)
	switch {
	case status >= 500:
		m.errors5xx.Add(1)
	case status >= 400:
		m.errors4xx.Add(1)
	}
	if cacheHit {
		m.cacheHits.Add(1)
	}
	us := uint64(elapsed.Microseconds())
	m.totalUs.Add(us)
	for {
		cur := m.maxUs.Load()
		if us <= cur || m.maxUs.CompareAndSwap(cur, us) {
			break
		}
	}
}

// EndpointStats is the exported view of one endpoint's counters.
type EndpointStats struct {
	Requests     uint64  `json:"requests"`
	Errors4xx    uint64  `json:"errors_4xx"`
	Errors5xx    uint64  `json:"errors_5xx"`
	CacheHits    uint64  `json:"cache_hits"`
	AvgLatencyUs float64 `json:"avg_latency_us"`
	MaxLatencyUs uint64  `json:"max_latency_us"`
	QPS          float64 `json:"qps"`
}

// metricsRegistry maps endpoint name -> counters. The endpoint set is fixed
// at construction, so concurrent readers need no map lock.
type metricsRegistry struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
}

func newMetricsRegistry(names []string) *metricsRegistry {
	r := &metricsRegistry{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		r.endpoints[n] = &endpointMetrics{}
	}
	return r
}

// Metrics is the /v1/metrics payload.
type Metrics struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Generation    uint64                   `json:"generation"`
	CacheEntries  int                      `json:"cache_entries"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// snapshot renders the registry. QPS is requests over process uptime — a
// coarse, monotonic figure that needs no sliding window on the hot path.
func (r *metricsRegistry) snapshot() map[string]EndpointStats {
	uptime := time.Since(r.start).Seconds()
	if uptime <= 0 {
		uptime = 1e-9
	}
	names := make([]string, 0, len(r.endpoints))
	for n := range r.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(map[string]EndpointStats, len(names))
	for _, n := range names {
		m := r.endpoints[n]
		st := EndpointStats{
			Requests:     m.requests.Load(),
			Errors4xx:    m.errors4xx.Load(),
			Errors5xx:    m.errors5xx.Load(),
			CacheHits:    m.cacheHits.Load(),
			MaxLatencyUs: m.maxUs.Load(),
		}
		if st.Requests > 0 {
			st.AvgLatencyUs = float64(m.totalUs.Load()) / float64(st.Requests)
			st.QPS = float64(st.Requests) / uptime
		}
		out[n] = st
	}
	return out
}
