package serve

// Router-side scatter-gather for the application endpoints: /v1/tag,
// /v1/query/rewrite and /v1/story. Each handler gathers per-shard partials
// (the ?partial= modes of app.go) and runs the SAME merge fold the
// in-process sharded server runs, so the merged response is byte-identical
// to a single union server's — there is no projection-local approximation
// left in the routed tier.
//
// Two kinds of state make the scatter cheap:
//
//   - Per-shard rewrite partials are cached like search partials, keyed
//     (generation, normalized query) and pinned by the routing index.
//     Tag match partials are per-document and never cached.
//   - The merged concept index (tag) and story-fragment list (story) are
//     fleet-wide folds memoized until any invalidation. A build that
//     misses shards (fail-open) is used for the one response but never
//     stored — the memo only ever holds a complete fold.
//
// Staleness follows the search protocol: a consulted shard whose response
// generation disagrees with the one pinned at index-build time triggers
// one full uncached retry against freshly dropped indexes; a second
// disagreement reports 502 bad_upstream (the fleet is churning faster
// than the request can observe it).
//
// The merge-side thresholds (concept coherence/inference, rewrite
// expansion cap, story encoder and link options) are the package defaults
// here AND on every backend — serve.buildState constructs its taggers and
// understander the same way — which is what entitles the router to score
// candidates without shipping configuration around.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"giant/internal/ontology"
	"giant/internal/par"
	"giant/internal/queryund"
	"giant/internal/storytree"
	"giant/internal/tagging"
)

// routerTagIndex is the router's merged concept index: the fold of every
// backend's ?partial=stats concepts, with the generations pinned at build
// time (ok[i] reports whether shard i answered the build fan-out; only
// then is gens[i] meaningful).
type routerTagIndex struct {
	gens []uint64
	ok   []bool
	ix   *tagging.ConceptIndex
}

// routerFragments is the router's merged story-fragment list, same shape.
type routerFragments struct {
	gens   []uint64
	ok     []bool
	events []*storytree.EventNode
}

// ensureTagIndex returns the merged concept index, rebuilding it from a
// full ?partial=stats fan-out when absent. Under fail-open a degraded
// build (failed lists the unanswered shards) is returned but NOT
// memoized; under fail-closed a degraded fleet aborts with 503. A
// non-zero status aborts the request with the returned body.
func (rt *Router) ensureTagIndex(ctx context.Context, meta *respMeta) (idx *routerTagIndex, failed []int, status int, errb any) {
	if idx := rt.tagIdx.Load(); idx != nil {
		return idx, nil, 0, nil
	}
	rt.tagMu.Lock()
	defer rt.tagMu.Unlock()
	if idx := rt.tagIdx.Load(); idx != nil {
		return idx, nil, 0, nil
	}
	results := rt.fanout(ctx, meta, http.MethodGet, "/v1/tag?partial=stats", nil)
	idx = &routerTagIndex{gens: make([]uint64, rt.k), ok: make([]bool, rt.k)}
	parts := make([][]tagging.ConceptRef, rt.k)
	for i := range results {
		if !results[i].ok() {
			failed = append(failed, i)
			continue
		}
		var parsed tagStatsBody
		if err := json.Unmarshal(results[i].body, &parsed); err != nil {
			return nil, nil, http.StatusBadGateway, errBodyShard(codeBadUpstream, i, "shard %d: bad tag stats response: %v", i, err)
		}
		idx.gens[i], idx.ok[i] = parsed.Generation, true
		parts[i] = parsed.Concepts
	}
	if len(failed) > 0 && !rt.opts.FailOpen {
		return nil, nil, http.StatusServiceUnavailable, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", failed)
	}
	idx.ix = tagging.NewConceptIndex(parts...)
	if len(failed) == 0 {
		rt.tagIdx.Store(idx)
	}
	return idx, failed, 0, nil
}

// ensureFragments is ensureTagIndex for the story-fragment fold.
func (rt *Router) ensureFragments(ctx context.Context, meta *respMeta) (fr *routerFragments, failed []int, status int, errb any) {
	if fr := rt.frags.Load(); fr != nil {
		return fr, nil, 0, nil
	}
	rt.fragsMu.Lock()
	defer rt.fragsMu.Unlock()
	if fr := rt.frags.Load(); fr != nil {
		return fr, nil, 0, nil
	}
	results := rt.fanout(ctx, meta, http.MethodGet, "/v1/story?partial=fragments", nil)
	fr = &routerFragments{gens: make([]uint64, rt.k), ok: make([]bool, rt.k)}
	parts := make([][]*storytree.EventNode, rt.k)
	for i := range results {
		if !results[i].ok() {
			failed = append(failed, i)
			continue
		}
		var parsed storyFragsBody
		if err := json.Unmarshal(results[i].body, &parsed); err != nil {
			return nil, nil, http.StatusBadGateway, errBodyShard(codeBadUpstream, i, "shard %d: bad story fragments: %v", i, err)
		}
		fr.gens[i], fr.ok[i] = parsed.Generation, true
		parts[i] = parsed.Events
	}
	if len(failed) > 0 && !rt.opts.FailOpen {
		return nil, nil, http.StatusServiceUnavailable, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", failed)
	}
	fr.events = storytree.MergeFragments(parts...)
	if len(failed) == 0 {
		rt.frags.Store(fr)
	}
	return fr, failed, 0, nil
}

// appCandidates prunes an application fan-out to the shards whose term
// grams may contain at least one needle. idx == nil (or a shard with an
// unknown surface) routes conservatively; an empty needle list proves NO
// shard can contribute, so it returns none — the merge of zero partials
// is still a complete answer.
func (rt *Router) appCandidates(idx *routingIndex, needles []string) []int {
	out := make([]int, 0, rt.k)
	if idx == nil {
		for i := 0; i < rt.k; i++ {
			out = append(out, i)
		}
		return out
	}
	for i := range idx.shards {
		sh := &idx.shards[i]
		if !sh.ok || sh.grams == nil {
			out = append(out, i)
			continue
		}
		for _, n := range needles {
			if sh.grams.MayContain(n) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// tagNeedles are the strings whose gram hits decide which shards a tag
// request must consult: each entity name lowercased (the fold nodeKey
// applies, so a gram miss proves the shard homes neither the entity nor
// any ancestor reachable through it — parents are reported by the
// entity's own home shard) and each token of the matching text (an event
// or topic candidate needs normalized LCS ≥ the serving threshold, which
// buildState fixes at NewEventTagger's 0.5 > 0 — so a candidate shares at
// least one token with the text, and every token of a home phrase is in
// its shard's grams).
func tagNeedles(doc *tagging.Document) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, e := range doc.Entities {
		add(strings.ToLower(e))
	}
	for _, t := range tagging.DocTokens(doc) {
		add(t)
	}
	return out
}

// mergeFailed unions two failed-shard lists, sorted ascending.
func mergeFailed(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := map[int]bool{}
	out := make([]int, 0, len(a)+len(b))
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// markPartial annotates a fail-open response that is missing shards.
func markPartial(resp map[string]any, failed []int) map[string]any {
	if len(failed) > 0 {
		resp["partial"] = true
		resp["missing_shards"] = failed
	}
	return resp
}

// handleTag answers /v1/tag with the union-exact merge: per-shard
// ?partial=match candidates (gram-pruned scatter) scored against the
// merged concept index.
func (rt *Router) handleTag(r *http.Request, meta *respMeta) (int, any) {
	doc, bad, errb := parseTagDoc(r)
	if bad != 0 {
		return bad, errb
	}
	// Re-marshal the parsed document so GET and POST requests scatter the
	// same canonical body — shards never see the raw request encoding.
	body, err := json.Marshal(tagRequest{Title: doc.Title, Content: doc.Content, Entities: doc.Entities})
	if err != nil {
		return http.StatusInternalServerError, errBody(codeInternal, "encode document: "+err.Error())
	}
	for attempt := 0; ; attempt++ {
		idx, idxFailed, status, ierr := rt.ensureTagIndex(r.Context(), meta)
		if status != 0 {
			return status, ierr
		}
		var ridx *routingIndex
		if attempt == 0 {
			ridx = rt.ensureRouting(r.Context())
		}
		candidates := rt.appCandidates(ridx, tagNeedles(doc))
		results := make([]backendResult, len(candidates))
		par.ForEachIndexed(rt.workers(), len(candidates), func(j int) {
			results[j] = rt.call(r.Context(), candidates[j], http.MethodPost, "/v1/tag?partial=match", body)
			if results[j].err == nil {
				meta.noteGen(candidates[j], results[j].gen)
			}
		})
		matchParts := make([][][]tagging.ConceptRef, 0, len(candidates))
		evParts := make([][]tagging.EventCand, 0, len(candidates))
		var failed []int
		stale := false
		for j, sh := range candidates {
			if !results[j].ok() {
				failed = append(failed, sh)
				continue
			}
			var parsed tagMatchBody
			if err := json.Unmarshal(results[j].body, &parsed); err != nil {
				return http.StatusBadGateway, errBodyShard(codeBadUpstream, sh, "shard %d: bad tag partial: %v", sh, err)
			}
			if idx.ok[sh] && parsed.Generation != idx.gens[sh] {
				stale = true
				break
			}
			matchParts = append(matchParts, parsed.Entities)
			evParts = append(evParts, parsed.Events)
		}
		if stale {
			// A backend republished between the index build and this
			// scatter: drop both indexes and retry once against a fresh
			// world. A second race means the fleet is churning continuously;
			// there is no consistent merge to report.
			rt.tagIdx.Store(nil)
			rt.routing.Store(nil)
			if attempt == 0 {
				continue
			}
			return http.StatusBadGateway, errBody(codeBadUpstream, "backend generations churned during tag merge; retry")
		}
		failed = mergeFailed(idxFailed, failed)
		if len(failed) > 0 && !rt.opts.FailOpen {
			return http.StatusServiceUnavailable, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", failed)
		}
		slots := tagging.MergeMatchSlots(matchParts, len(doc.Entities))
		concepts := idx.ix.Tag(doc, slots, tagging.DefaultCoherenceThreshold, tagging.DefaultInferThreshold)
		events := tagging.MergeEventCands(evParts...)
		return http.StatusOK, markPartial(tagResponse(concepts, events), failed)
	}
}

// handleQueryRewrite answers /v1/query/rewrite by folding per-shard
// rewrite partials. The scatter carries the NORMALIZED query — partials
// depend only on it, so mixed-case or oddly-spaced variants of one query
// share shard consults and cache entries; the raw query reappears only in
// the merge, which prefixes rewrites with it.
func (rt *Router) handleQueryRewrite(r *http.Request, meta *respMeta) (int, any) {
	rawq := r.URL.Query().Get("q")
	if rawq == "" {
		return http.StatusBadRequest, errBody(codeInvalidArgument, "need ?q=")
	}
	qnorm := normalizeQuery(rawq)
	pq := "/v1/query/rewrite?" + url.Values{"partial": {"1"}, "q": {qnorm}}.Encode()
	needles := strings.Fields(qnorm)
	for attempt := 0; ; attempt++ {
		var idx *routingIndex
		if attempt == 0 {
			idx = rt.ensureRouting(r.Context())
		}
		candidates := rt.appCandidates(idx, needles)
		parts := make([]*queryund.Partial, len(candidates))
		cached := make([]bool, len(candidates))
		results := make([]backendResult, len(candidates))
		par.ForEachIndexed(rt.workers(), len(candidates), func(j int) {
			sh := candidates[j]
			if idx != nil && idx.shards[sh].ok {
				key := strconv.FormatUint(idx.shards[sh].gen, 10) + "\x00" + qnorm
				if p, ok := rt.rewrites[sh].Load().get(key); ok {
					parts[j], cached[j] = p, true
					meta.noteGen(sh, strconv.FormatUint(idx.shards[sh].gen, 10))
					return
				}
			}
			results[j] = rt.call(r.Context(), sh, http.MethodGet, pq, nil)
			if results[j].err == nil {
				meta.noteGen(sh, results[j].gen)
			}
		})
		var failed []int
		stale := false
		for j, sh := range candidates {
			if cached[j] {
				continue
			}
			if !results[j].ok() {
				failed = append(failed, sh)
				continue
			}
			var parsed rewritePartialBody
			if err := json.Unmarshal(results[j].body, &parsed); err != nil {
				return http.StatusBadGateway, errBodyShard(codeBadUpstream, sh, "shard %d: bad rewrite partial: %v", sh, err)
			}
			parts[j] = parsed.Partial
			if idx != nil && idx.shards[sh].ok {
				if parsed.Generation == idx.shards[sh].gen {
					key := strconv.FormatUint(idx.shards[sh].gen, 10) + "\x00" + qnorm
					rt.rewrites[sh].Load().put(key, parsed.Partial)
				} else {
					stale = true
				}
			}
		}
		if stale {
			rt.routing.Store(nil)
			if attempt == 0 {
				continue
			}
			return http.StatusBadGateway, errBody(codeBadUpstream, "backend generations churned during rewrite merge; retry")
		}
		if len(failed) > 0 && !rt.opts.FailOpen {
			return http.StatusServiceUnavailable, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", failed)
		}
		a := queryund.Merge(rawq, parts, queryund.DefaultMaxExpansions)
		return http.StatusOK, markPartial(rewriteResponse(a), failed)
	}
}

// handleStory answers /v1/story: the seed resolves to its canonical event
// phrase exactly like a typed /v1/node lookup (home-shard fast path, then
// an alias scatter under the union's precedence order), and the tree
// forms at the router over the merged fragment list.
func (rt *Router) handleStory(r *http.Request, meta *respMeta) (int, any) {
	seed := r.URL.Query().Get("seed")
	if seed == "" {
		return http.StatusBadRequest, errBody(codeInvalidArgument, "need ?seed=")
	}
	phrase, resolveFailed, status, rerr := rt.resolveStorySeed(r.Context(), meta, seed)
	if status != 0 {
		return status, rerr
	}
	for attempt := 0; ; attempt++ {
		frags, fragsFailed, status, ferr := rt.ensureFragments(r.Context(), meta)
		if status != 0 {
			return status, ferr
		}
		// Resolution noted each consulted shard's generation; a memoized
		// fragment list pinned at different generations would mix worlds.
		stale := false
		for s := 0; s < rt.k; s++ {
			if g := meta.genOf(s); g != "" && frags.ok[s] && g != strconv.FormatUint(frags.gens[s], 10) {
				stale = true
				break
			}
		}
		if stale {
			rt.frags.Store(nil)
			if attempt == 0 {
				continue
			}
			return http.StatusBadGateway, errBody(codeBadUpstream, "backend generations churned during story merge; retry")
		}
		tree, ok := storytree.FormFromEvents(frags.events, phrase, rt.enc, rt.story)
		if !ok {
			if len(fragsFailed) > 0 {
				// The event resolved but its fragment is on a missing shard —
				// fail-open has no meaningful partial tree without the seed.
				return http.StatusBadGateway, errBody(codeShardUnavailable, "shards %v unavailable", fragsFailed)
			}
			return http.StatusNotFound, errBody(codeNotFound, "no event %q in the ontology", seed)
		}
		return http.StatusOK, markPartial(storyResponse(tree), mergeFailed(resolveFailed, fragsFailed))
	}
}

// resolveStorySeed resolves a story seed to its canonical event phrase
// through the fleet, mirroring serve.resolveStorySeed over the union:
// the typed home shard answers canonical-phrase matches outright, an
// alias scatter picks the union-precedence winner, and a miss is
// classified by an untyped scatter into the two /v1/node-compatible 404
// shapes. A non-zero status aborts with the returned body.
func (rt *Router) resolveStorySeed(ctx context.Context, meta *respMeta, seed string) (phrase string, failed []int, status int, errb any) {
	rq := url.Values{"phrase": {seed}, "type": {"event"}}.Encode()
	var (
		chosen  *shardNodeDetail
		seedAns *shardNodeDetail
		skip    = -1
	)
	primary := ontology.HomeShard(ontology.Event, seed, rt.k)
	res := rt.call(ctx, primary, http.MethodGet, "/v1/node?"+rq, nil)
	switch {
	case res.err != nil || res.status >= 500:
		// Unreachable primary joins the scatter's failed accounting below —
		// unlike /v1/node's typed lookup, story resolution can still
		// succeed through an alias homed elsewhere.
	case res.status == http.StatusOK:
		meta.noteGen(primary, res.gen)
		skip = primary
		var d shardNodeDetail
		if err := json.Unmarshal(res.body, &d); err != nil {
			return "", nil, http.StatusBadGateway, errBodyShard(codeBadUpstream, primary, "shard %d: bad node response: %v", primary, err)
		}
		if d.Match == "phrase" {
			// The canonical phrase can live on no other shard.
			return d.Node.Phrase, nil, 0, nil
		}
		seedAns = &d
	default:
		meta.noteGen(primary, res.gen)
		skip = primary
	}
	best, scatterFailed, st := rt.scatterNode(ctx, meta, rq, skip, seedAns)
	switch st {
	case 0:
	case http.StatusServiceUnavailable:
		return "", nil, st, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", scatterFailed)
	default:
		return "", nil, st, errBody(codeShardUnavailable, "shards %v unavailable", scatterFailed)
	}
	if best != nil {
		chosen = best
	}
	if chosen == nil {
		// No event answers to this seed anywhere. Distinguish "names a
		// non-event node" from "names nothing" the way the single server
		// does, via an untyped existence scatter.
		hit, anyFailed, st := rt.scatterNode(ctx, meta, url.Values{"phrase": {seed}}.Encode(), -1, nil)
		if st == http.StatusServiceUnavailable {
			return "", nil, st, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", anyFailed)
		}
		if hit != nil {
			return "", nil, http.StatusNotFound, errBody(codeNotFound, "no event %q in the ontology", seed)
		}
		if st != 0 || len(anyFailed) > 0 {
			// A missing shard could hold the answer: "not found" would be a
			// guess, not a fact.
			return "", nil, http.StatusBadGateway, errBody(codeShardUnavailable, "shards %v unavailable", mergeFailed(scatterFailed, anyFailed))
		}
		return "", nil, http.StatusNotFound, errBody(codeNotFound, "node not found")
	}
	return chosen.Node.Phrase, scatterFailed, 0, nil
}
