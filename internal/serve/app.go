package serve

import (
	"encoding/json"
	"net/http"
	"strings"

	"giant/internal/nlp"
	"giant/internal/ontology"
	"giant/internal/queryund"
	"giant/internal/storytree"
	"giant/internal/tagging"
)

// This file is the application-endpoint core shared by every serving mode:
// /v1/tag, /v1/query/rewrite and /v1/story all decompose into per-scope
// partials (tagging/queryund/storytree) plus a deterministic merge, and the
// single-snapshot, in-process sharded, and multi-process (router) paths all
// run the same extraction and merge code. Per-shard servers additionally
// expose the raw partials over HTTP (?partial=...) for the router's
// scatter-gather:
//
//	GET  /v1/tag?partial=stats        home concepts + representations
//	GET/POST /v1/tag?partial=match    per-entity parent + event candidates
//	GET  /v1/query/rewrite?partial=1&q=  rewrite candidates for a query
//	GET  /v1/story?partial=fragments  home events as story-tree fragments
//
// Partial bodies carry the serving generation so merge sites can key caches
// by it and detect republishes that race an index fetch.

// tagStatsBody is the wire form of a shard's concept stats partial.
type tagStatsBody struct {
	Generation uint64               `json:"generation"`
	Concepts   []tagging.ConceptRef `json:"concepts"`
}

// tagMatchBody is the wire form of a shard's per-document tag partial.
type tagMatchBody struct {
	Generation uint64                 `json:"generation"`
	Entities   [][]tagging.ConceptRef `json:"entities"`
	Events     []tagging.EventCand    `json:"events"`
}

// rewritePartialBody is the wire form of a shard's query-rewrite partial.
type rewritePartialBody struct {
	Generation uint64            `json:"generation"`
	Partial    *queryund.Partial `json:"partial"`
}

// storyFragsBody is the wire form of a shard's story-fragment partial.
type storyFragsBody struct {
	Generation uint64                 `json:"generation"`
	Events     []*storytree.EventNode `json:"events"`
}

// parseTagDoc extracts the /v1/tag document from GET query params or a POST
// JSON body — the one parser every serving mode (and the router) uses, so
// routing and tagging can never disagree about what the document says.
func parseTagDoc(r *http.Request) (*tagging.Document, int, errorBody) {
	var req tagRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Title, req.Content = q.Get("title"), q.Get("content")
		if es := q.Get("entities"); es != "" {
			req.Entities = strings.Split(es, ",")
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, http.StatusBadRequest, errBody(codeInvalidArgument, "decode body: "+err.Error())
		}
	default:
		return nil, http.StatusMethodNotAllowed, errBody(codeMethodNotAllowed, "use GET or POST")
	}
	if req.Title == "" && req.Content == "" {
		return nil, http.StatusBadRequest, errBody(codeInvalidArgument, "need a title or content")
	}
	return &tagging.Document{Title: req.Title, Content: req.Content, Entities: req.Entities}, 0, errorBody{}
}

// normalizeQuery is THE query normalization (lowercased token join) shared
// by lookup, cache keys and shard pruning — the same normalization
// queryund.Analyze applies — so a mixed-case or oddly-spaced query can
// never be routed differently from how it is analyzed.
func normalizeQuery(q string) string {
	return strings.Join(nlp.Tokenize(q), " ")
}

// resolveStorySeed resolves a /v1/story seed the way /v1/node resolves a
// typed phrase query (canonical phrase first, then alias, type=event) and
// returns the event's canonical phrase. The two 404 shapes distinguish a
// phrase that names a non-event node from one that names nothing, matching
// /v1/node's envelope for the latter.
func resolveStorySeed(snap *ontology.Snapshot, seed string) (string, int, errorBody) {
	if n, ok := snap.Find(ontology.Event, seed); ok {
		return n.Phrase, 0, errorBody{}
	}
	if id, ok := snap.LookupAlias(ontology.Event, seed); ok {
		return snap.At(id).Phrase, 0, errorBody{}
	}
	if _, ok := snap.LookupAny(seed); ok {
		return "", http.StatusNotFound, errBody(codeNotFound, "no event %q in the ontology", seed)
	}
	return "", http.StatusNotFound, errBody(codeNotFound, "node not found")
}

// toTagResults renders tags in wire form.
func toTagResults(tags []tagging.Tag) []tagResult {
	out := make([]tagResult, 0, len(tags))
	for _, t := range tags {
		out = append(out, tagResult{Phrase: t.Phrase, Type: t.Type.String(), Score: t.Score})
	}
	return out
}

// tagResponse is the /v1/tag body shared by every serving mode.
func tagResponse(concepts, events []tagging.Tag) map[string]any {
	return map[string]any{
		"concepts": toTagResults(concepts),
		"events":   toTagResults(events),
	}
}

// rewriteResponse is the /v1/query/rewrite body shared by every serving mode.
func rewriteResponse(a queryund.Analysis) map[string]any {
	return map[string]any{
		"query":           a.Query,
		"concept":         a.Concept,
		"entity":          a.Entity,
		"rewrites":        a.Rewrites,
		"recommendations": a.Recommendations,
	}
}

// storyEvent is the wire form of one story-tree event.
type storyEvent struct {
	Phrase   string   `json:"phrase"`
	Trigger  string   `json:"trigger,omitempty"`
	Location string   `json:"location,omitempty"`
	Day      int      `json:"day"`
	Entities []string `json:"entities,omitempty"`
}

// storyResponse is the /v1/story body shared by every serving mode.
func storyResponse(tree *storytree.Tree) map[string]any {
	branches := make([][]storyEvent, 0, len(tree.Branches))
	for _, b := range tree.Branches {
		branch := make([]storyEvent, 0, len(b))
		for _, e := range b {
			branch = append(branch, storyEvent{Phrase: e.Phrase, Trigger: e.Trigger, Location: e.Location, Day: e.Day, Entities: e.Entities})
		}
		branches = append(branches, branch)
	}
	return map[string]any{"seed": tree.Seed, "branches": branches}
}

// handleTagPartial serves /v1/tag?partial=: "stats" reports the scope's
// home concepts (the merge site builds its concept index from K of these),
// "match" the per-document candidates.
func (st *state) handleTagPartial(mode string, r *http.Request) (int, any) {
	switch mode {
	case "stats":
		return http.StatusOK, tagStatsBody{Generation: st.gen, Concepts: st.conceptRefs()}
	case "match":
		doc, bad, errb := parseTagDoc(r)
		if bad != 0 {
			return bad, errb
		}
		scope := st.appScope()
		return http.StatusOK, tagMatchBody{
			Generation: st.gen,
			Entities:   st.concepts.MatchPartial(scope, doc),
			Events:     st.events.Partial(scope, doc),
		}
	default:
		return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid partial: "+mode+` (want "stats" or "match")`)
	}
}

// appScope is the scope a partial-extraction request runs over: the
// projection's home slice on a per-shard server, the whole view otherwise
// (merging that single whole-view partial reproduces the plain answer, so
// the partial modes stay total on every server kind).
func (st *state) appScope() ontology.Scope {
	if st.proj != nil {
		return ontology.ProjectionScope(st.proj)
	}
	return ontology.UnionScope(st.snap)
}

// conceptRefs returns the state's concept stats partial over its own scope,
// computed once per state (the partial depends only on the published
// projection, which is immutable per state).
func (st *state) conceptRefs() []tagging.ConceptRef {
	if p := st.appRefs.Load(); p != nil {
		return *p
	}
	refs := st.concepts.ConceptStats(st.appScope())
	st.appRefs.Store(&refs)
	return refs
}

// conceptIndex returns the merged concept index the state's tag merges run
// over, built once per state. Sharded states build it by merging the
// per-shard stats partials — the same fold the router runs over shard
// responses — which the scope partition guarantees equals the single-union
// index.
func (st *state) conceptIndex() *tagging.ConceptIndex {
	if st.shards == nil {
		return st.concepts.Index()
	}
	if ix := st.appStats.Load(); ix != nil {
		return ix
	}
	k := st.shards.NumShards()
	parts := make([][]tagging.ConceptRef, k)
	for i := 0; i < k; i++ {
		parts[i] = st.concepts.ConceptStats(ontology.ShardScope(st.snap, i, k))
	}
	ix := tagging.NewConceptIndex(parts...)
	st.appStats.Store(ix)
	return ix
}

// storyFragments returns the state's merged story-tree candidate list.
// Sharded states merge per-shard fragment partials by union ID — again the
// router's fold — instead of using the union-extracted storyEvents, so the
// in-process sharded path exercises the same code multi-process serving
// runs.
func (st *state) storyFragments() []*storytree.EventNode {
	if st.shards == nil {
		return st.storyEvents
	}
	if p := st.appFrags.Load(); p != nil {
		return *p
	}
	k := st.shards.NumShards()
	parts := make([][]*storytree.EventNode, k)
	for i := 0; i < k; i++ {
		parts[i] = storytree.FragmentsFromScope(ontology.ShardScope(st.snap, i, k))
	}
	merged := storytree.MergeFragments(parts...)
	st.appFrags.Store(&merged)
	return merged
}

// tagSharded is the in-process scatter-gather /v1/tag: per-shard match and
// event partials over each shard's scope, merged exactly as the router
// merges shard HTTP responses.
func (st *state) tagSharded(doc *tagging.Document) (int, any) {
	k := st.shards.NumShards()
	ix := st.conceptIndex()
	matchParts := make([][][]tagging.ConceptRef, k)
	evParts := make([][]tagging.EventCand, k)
	for i := 0; i < k; i++ {
		scope := ontology.ShardScope(st.snap, i, k)
		matchParts[i] = st.concepts.MatchPartial(scope, doc)
		evParts[i] = st.events.Partial(scope, doc)
	}
	slots := tagging.MergeMatchSlots(matchParts, len(doc.Entities))
	concepts := ix.Tag(doc, slots, st.concepts.CoherenceThreshold, st.concepts.InferThreshold)
	events := tagging.MergeEventCands(evParts...)
	return http.StatusOK, tagResponse(concepts, events)
}

// rewriteSharded is the in-process scatter-gather /v1/query/rewrite.
func (st *state) rewriteSharded(q string) (int, any) {
	k := st.shards.NumShards()
	parts := make([]*queryund.Partial, k)
	for i := 0; i < k; i++ {
		parts[i] = st.query.Partial(ontology.ShardScope(st.snap, i, k), q)
	}
	return http.StatusOK, rewriteResponse(queryund.Merge(q, parts, st.query.MaxExpansions))
}
