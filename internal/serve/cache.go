package serve

import (
	"container/list"
	"strconv"
	"sync"

	"giant/internal/ontology"
	"giant/internal/queryund"
)

// lruCache is a bounded least-recently-used cache of rendered responses.
// One cache hangs off each snapshot state, so a snapshot hot-swap retires
// every stale entry at once — there is no invalidation protocol, the old
// cache simply becomes unreachable with its snapshot.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	body []byte
}

// newLRUCache builds a cache bounded to cap entries; cap <= 0 disables
// caching entirely (get always misses, put is a no-op).
func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, items: make(map[string]*list.Element), order: list.New()}
}

// get returns the cached body for key, or nil on a miss.
func (c *lruCache) get(key string) []byte {
	if c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body
}

// put stores body under key, evicting the least recently used entry when
// the cache is full. The caller must not mutate body afterwards.
func (c *lruCache) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// lruOf is the shared core of the search-partial caches: a bounded
// mutex+list LRU over values of type V, distinguishing "cached empty"
// from "absent" (a shard with zero matches for a query is a perfectly
// good — and common — partial).
type lruOf[V any] struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type entryOf[V any] struct {
	key string
	val V
}

// get returns the cached value for key and whether it was present.
func (c *lruOf[V]) get(key string) (V, bool) {
	var zero V
	if c.cap <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entryOf[V]).val, true
}

// put stores val under key, evicting the least recently used entry when
// the cache is full. The caller must not mutate val afterwards.
func (c *lruOf[V]) put(key string, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entryOf[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entryOf[V]).key)
	}
	c.items[key] = c.order.PushFront(&entryOf[V]{key: key, val: val})
}

// len reports the current entry count.
func (c *lruOf[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// searchKey builds the partial-cache key for an already-lowercased needle
// and a validated limit.
func searchKey(needle string, limit int) string {
	return needle + "\x00" + strconv.Itoa(limit)
}

// searchCache is the per-shard search-partial cache of a sharded server:
// a bounded LRU of one shard's first limit home matches, keyed by
// (needle, limit). Entries hold shard-LOCAL node copies — never union IDs
// or rendered bodies — which is what makes a partial context-free: it
// depends only on its shard's home contents, so it stays valid across any
// publish that leaves that shard's projection untouched (the merge path
// re-renders hits through the CURRENT union index on every read). Like
// the node caches, invalidation is structural: a republished shard gets a
// fresh cache, peers keep theirs.
type searchCache struct {
	lruOf[[]ontology.Node]
}

// newSearchCache builds a partial cache bounded to cap entries; cap <= 0
// disables caching (get always misses, put is a no-op).
func newSearchCache(cap int) *searchCache {
	return &searchCache{lruOf[[]ontology.Node]{cap: cap, items: make(map[string]*list.Element), order: list.New()}}
}

// hitsCache is the router's per-shard search-partial cache: one backend's
// parsed /v1/search hits keyed by (generation, needle, limit). Unlike the
// in-process searchCache, entries carry union node IDs rendered BY the
// backend at fetch time, so the generation in the key is load-bearing —
// and because a backend's union-ID table can refresh WITHOUT a generation
// bump (a peer's retirement renumbers union IDs on every shard), the
// router additionally clears caches wholesale on any write whose delta
// retired nodes (see Router invalidation rules in docs/ARCHITECTURE.md).
type hitsCache struct {
	lruOf[[]searchHit]
}

// newHitsCache builds a router partial cache bounded to cap entries;
// cap <= 0 disables caching.
func newHitsCache(cap int) *hitsCache {
	return &hitsCache{lruOf[[]searchHit]{cap: cap, items: make(map[string]*list.Element), order: list.New()}}
}

// rewriteCache is the router's per-shard query-rewrite partial cache,
// keyed (generation, normalized query). Like hitsCache, entries carry
// union node IDs rendered by the backend at fetch time, so they obey the
// same invalidation rules: generation-keyed per shard, cleared wholesale
// on any write whose delta retired nodes.
type rewriteCache struct {
	lruOf[*queryund.Partial]
}

// newRewriteCache builds a rewrite partial cache bounded to cap entries;
// cap <= 0 disables caching.
func newRewriteCache(cap int) *rewriteCache {
	return &rewriteCache{lruOf[*queryund.Partial]{cap: cap, items: make(map[string]*list.Element), order: list.New()}}
}
