package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded least-recently-used cache of rendered responses.
// One cache hangs off each snapshot state, so a snapshot hot-swap retires
// every stale entry at once — there is no invalidation protocol, the old
// cache simply becomes unreachable with its snapshot.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	body []byte
}

// newLRUCache builds a cache bounded to cap entries; cap <= 0 disables
// caching entirely (get always misses, put is a no-op).
func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, items: make(map[string]*list.Element), order: list.New()}
}

// get returns the cached body for key, or nil on a miss.
func (c *lruCache) get(key string) []byte {
	if c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body
}

// put stores body under key, evicting the least recently used entry when
// the cache is full. The caller must not mutate body afterwards.
func (c *lruCache) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// len reports the current entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
