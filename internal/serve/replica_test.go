package serve

// Replicated serving pins, layered on the router_test.go harness shape:
//
//   - TestWALReplayEquivalence: a delta-log fleet (router -wal over
//     log-tailing replicas) replaying a day sequence stays byte-identical
//     on /v1/search and /v1/node — and generation-identical on ingest
//     accounting — to a single-process NewSharded server, for K ∈ {1, 2}.
//   - TestRollingRestartZero5xx: a 2-shard × 3-replica fleet under a
//     concurrent search+node+ingest hammer survives a rolling restart of
//     every replica with zero 5xx responses, and converges back to the
//     reference byte-for-byte.
//   - TestReplicaCatchUpGating: a replica that missed ingests is never
//     routed a read until it has applied the shard's head generation.
//   - TestIngestBackpressure: a shard whose slowest healthy replica
//     trails the log head by more than MaxLag answers ingest with 429
//     replica_lagging and a Retry-After header, and recovers once the
//     replica drains.
//   - TestErrorEnvelope: every error path, across all four serving modes,
//     renders the one {"error":{"code","message",...}} envelope with a
//     known machine code.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/wal"
)

// detDelta derives a deterministic delta from a batch alone, so every
// replica — including one rebuilt from scratch replaying the log — mines
// the exact same outcome. Day 0 is the deterministic-rejection probe.
func detDelta(b delta.Batch) (*delta.Delta, error) {
	if b.Day == 0 {
		return nil, fmt.Errorf("empty batch: %w", delta.ErrInvalidBatch)
	}
	return &delta.Delta{Day: b.Day, Add: []delta.NodeAdd{
		{Type: ontology.Concept, Phrase: fmt.Sprintf("hybrid sedans %d", b.Day), Day: b.Day},
		{Type: ontology.Event, Phrase: fmt.Sprintf("sedan recall wave %d", b.Day), Day: b.Day},
	}}, nil
}

// detShardHost is a per-shard backend's deterministic mining stand-in:
// its own sharded-snapshot lineage from the shared base, advanced only by
// detDelta — plus the checkpoint half of the host contract: save pairs
// the union snapshot with a small self-describing state blob, restore
// re-derives the lineage (and this shard's projection) from them, exactly
// the shape cmd/giantd wires System.CheckpointState/RestoreCheckpoint
// into.
type detShardHost struct {
	shard, k int
	cur      *ontology.ShardedSnapshot
}

// ingest applies one batch to the host lineage. gate, when non-nil, is
// received from before each apply — the catch-up and backpressure tests
// use it to hold a replica mid-tail.
func (h *detShardHost) ingest(gate chan struct{}) func(delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
	return func(b delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
		if gate != nil {
			<-gate
		}
		d, err := detDelta(b)
		if err != nil {
			return nil, nil, nil, err
		}
		next, merged, touched, err := delta.ApplySharded(h.cur, []*delta.Delta{d})
		if err != nil {
			return nil, nil, nil, err
		}
		h.cur = next
		return next.Projection(h.shard), merged, touched, nil
	}
}

// save is the host's CheckpointSave: the union snapshot plus a blob that
// records enough to cross-check the pairing at restore time.
func (h *detShardHost) save() (*ontology.Snapshot, []byte, error) {
	u := h.cur.Union()
	blob, err := json.Marshal(map[string]int{"nodes": u.NodeCount(), "edges": u.EdgeCount()})
	return u, blob, err
}

// restore is the host's CheckpointRestore: validate the blob against the
// snapshot, re-derive the sharded lineage from the union, and hand back
// this shard's projection.
func (h *detShardHost) restore(snap *ontology.Snapshot, state []byte) (*ontology.ShardProjection, error) {
	var st struct{ Nodes, Edges int }
	if err := json.Unmarshal(state, &st); err != nil {
		return nil, err
	}
	if st.Nodes != snap.NodeCount() || st.Edges != snap.EdgeCount() {
		return nil, fmt.Errorf("state blob records %d nodes/%d edges, snapshot has %d/%d",
			st.Nodes, st.Edges, snap.NodeCount(), snap.EdgeCount())
	}
	ss, err := ontology.ShardSnapshot(snap, h.k)
	if err != nil {
		return nil, err
	}
	h.cur = ss
	return ss.Projection(h.shard), nil
}

// detShardIngester is the bare-ingester shorthand for tests that do not
// exercise checkpointing.
func detShardIngester(shard int, base *ontology.ShardedSnapshot, gate chan struct{}) func(delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
	h := &detShardHost{shard: shard, k: base.NumShards(), cur: base}
	return h.ingest(gate)
}

// detShardedIngester is the single-process reference twin of
// detShardIngester.
func detShardedIngester(base *ontology.ShardedSnapshot) func(delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
	cur := base
	return func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
		d, err := detDelta(b)
		if err != nil {
			return nil, nil, nil, err
		}
		next, merged, touched, err := delta.ApplySharded(cur, []*delta.Delta{d})
		if err != nil {
			return nil, nil, nil, err
		}
		cur = next
		return next, merged, touched, nil
	}
}

// replicaProc is one simulated giantd -shard -wal process: a per-shard
// server with an attached follower, reachable through a stable outer URL
// that survives "process restarts" (the rolling-restart test swaps the
// inner handler while the outer httptest server stays put).
type replicaProc struct {
	shard, idx int
	walPath    string
	ckptEvery  uint64 // > 0: checkpoint-enabled boots (hydrate + cadence rolls)
	outer      *httptest.Server
	down       atomic.Bool

	mu     sync.Mutex
	inner  http.Handler
	cancel context.CancelFunc
	done   chan struct{}         // closed when the follower goroutine exits
	runErr atomic.Pointer[error] // the follower's exit error, if it stopped on its own
}

func (p *replicaProc) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	p.mu.Lock()
	h := p.inner
	p.mu.Unlock()
	h.ServeHTTP(w, r)
}

// boot builds a fresh server and follower and swaps both in — exactly
// what restarting a giantd -wal replica does. Without checkpointing the
// server starts over the base projection and the follower replays the
// whole log from generation zero; with ckptEvery > 0 the boot walks the
// hydration ladder first and tails only the suffix past the artifact it
// booted from.
func (p *replicaProc) boot(t *testing.T, base *ontology.ShardedSnapshot, gate chan struct{}) {
	t.Helper()
	host := &detShardHost{shard: p.shard, k: base.NumShards(), cur: base}
	opts := Options{ShardIngest: host.ingest(gate)}
	var srv *Server
	var startGen uint64
	if p.ckptEvery > 0 {
		opts.CheckpointSave = host.save
		opts.CheckpointRestore = host.restore
		var err error
		srv, startGen, err = HydrateShard(filepath.Dir(p.walPath), p.shard, host.k, opts, nil)
		if err != nil {
			t.Fatalf("shard %d replica %d hydrate: %v", p.shard, p.idx, err)
		}
	}
	if srv == nil {
		srv = NewShard(base.Projection(p.shard), opts)
	}
	fl, err := NewFollower(srv, FollowerOptions{
		Path:            p.walPath,
		Replica:         p.idx,
		Poll:            time.Millisecond,
		StartGen:        startGen,
		CheckpointEvery: p.ckptEvery,
	})
	if err != nil {
		t.Fatalf("shard %d replica %d: %v", p.shard, p.idx, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.runErr.Store(nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := fl.Run(ctx); err != nil && ctx.Err() == nil {
			p.runErr.Store(&err)
		}
	}()
	p.mu.Lock()
	if p.cancel != nil {
		p.cancel()
		<-p.done // the old follower (and any in-flight publish) is drained
	}
	p.inner, p.cancel, p.done = srv.Handler(), cancel, done
	p.mu.Unlock()
}

func (p *replicaProc) stop() {
	p.down.Store(true)
	p.mu.Lock()
	if p.cancel != nil {
		p.cancel()
		p.cancel = nil
		select {
		case <-p.done:
		case <-time.After(5 * time.Second):
			// A gated follower can be stuck mid-apply; don't hang cleanup.
		}
	}
	p.mu.Unlock()
}

// walFixture boots a K-shard × R-replica delta-log fleet plus its router.
type walFixture struct {
	k        int
	base     *ontology.ShardedSnapshot
	walDir   string
	procs    [][]*replicaProc // [shard][replica]
	rt       *Router
	routerTS *httptest.Server
}

func newWALFixture(t *testing.T, k, r int, opts RouterOptions) *walFixture {
	return newCkptWALFixture(t, k, r, 0, opts)
}

// newCkptWALFixture is newWALFixture with checkpointing enabled on every
// replica when every > 0 (hydrating boots + a cadence roll each `every`
// applied generations).
func newCkptWALFixture(t *testing.T, k, r int, every uint64, opts RouterOptions) *walFixture {
	t.Helper()
	base, err := ontology.ShardSnapshot(testOntology(0).Snapshot(), k)
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	f := &walFixture{k: k, base: base, walDir: walDir, procs: make([][]*replicaProc, k)}
	replicas := make([][]string, k)
	for s := 0; s < k; s++ {
		for ri := 0; ri < r; ri++ {
			p := &replicaProc{
				shard: s, idx: ri, ckptEvery: every,
				walPath: filepath.Join(walDir, fmt.Sprintf("shard-%d-of-%d.wal", s, k)),
			}
			p.boot(t, base, nil)
			p.outer = httptest.NewServer(p)
			t.Cleanup(p.outer.Close)
			t.Cleanup(p.stop)
			f.procs[s] = append(f.procs[s], p)
			replicas[s] = append(replicas[s], p.outer.URL)
		}
	}
	opts.Replicas = replicas
	opts.WALDir = walDir
	if opts.AckTimeout == 0 {
		opts.AckTimeout = 10 * time.Second
	}
	f.rt, err = NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.rt.Close)
	f.routerTS = httptest.NewServer(f.rt.Handler())
	t.Cleanup(f.routerTS.Close)
	return f
}

// headGen returns shard s's delta-log head generation.
func (f *walFixture) headGen(s int) uint64 { return f.rt.shards[s].log.Head() }

// replicaWALGen asks a replica directly for its applied log position.
func replicaWALGen(t *testing.T, p *replicaProc) uint64 {
	t.Helper()
	resp, err := p.outer.Client().Get(p.outer.URL + "/v1/wal")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var parsed struct {
		WALGen uint64 `json:"wal_gen"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		return 0
	}
	return parsed.WALGen
}

// TestWALReplayEquivalence: the delta-log fleet's determinism pin. For
// K ∈ {1, 2}, replaying a day sequence through router-WAL ingest keeps
// /v1/search and /v1/node byte-identical to the single-process NewSharded
// reference, with identical generation accounting — and the WAL-only
// write rules hold (deterministic rejections forwarded, direct replica
// writes refused, fleet reload refused).
func TestWALReplayEquivalence(t *testing.T) {
	for _, k := range []int{1, 2} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			f := newWALFixture(t, k, 1, RouterOptions{})
			ref := httptest.NewServer(NewSharded(f.base, Options{
				IngestSharded: detShardedIngester(f.base),
			}).Handler())
			t.Cleanup(ref.Close)

			probes := func() []string {
				paths := []string{
					"/v1/search?q=sedan&limit=10",
					"/v1/search?q=sedan+recall&limit=5",
					"/v1/search?q=hybrid&limit=3",
					"/v1/node?phrase=family+sedans",
					"/v1/node?phrase=family+sedans&type=concept",
					"/v1/node?id=0",
					"/v1/node?phrase=no+such+node",
				}
				for d := 11; d <= 14; d++ {
					paths = append(paths,
						fmt.Sprintf("/v1/node?phrase=hybrid+sedans+%d&type=concept", d),
						fmt.Sprintf("/v1/node?phrase=sedan+recall+wave+%d", d))
				}
				return paths
			}
			assertSame := func(path string) {
				t.Helper()
				refStatus, refBody := getRaw(t, ref.Client(), ref.URL+path)
				gotStatus, gotBody := getRaw(t, f.routerTS.Client(), f.routerTS.URL+path)
				if refStatus != gotStatus || !bytes.Equal(refBody, gotBody) {
					t.Fatalf("k=%d %s diverges: status %d vs %d\nrouter: %s\nref:    %s",
						k, path, gotStatus, refStatus, gotBody, refBody)
				}
			}

			for day := 11; day <= 14; day++ {
				body := fmt.Sprintf(`{"day":%d}`, day)
				refResp := postJSON(t, ref.Client(), ref.URL+"/v1/ingest", body, 200)
				gotResp := postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", body, 200)
				if !reflect.DeepEqual(refResp["touched_shards"], gotResp["touched_shards"]) {
					t.Fatalf("k=%d day %d: touched shards diverge: %v vs %v",
						k, day, gotResp["touched_shards"], refResp["touched_shards"])
				}
				if !reflect.DeepEqual(refResp["shard_generations"], gotResp["shard_generations"]) {
					t.Fatalf("k=%d day %d: shard generations diverge: %v vs %v",
						k, day, gotResp["shard_generations"], refResp["shard_generations"])
				}
				for _, p := range probes() {
					assertSame(p)
				}
			}

			// A deterministically rejected batch surfaces with the replica's
			// status and envelope, and does not advance serving generations.
			status, body := postRaw(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", `{"day":0}`)
			if status != http.StatusUnprocessableEntity {
				t.Fatalf("deterministic rejection = %d: %s", status, body)
			}
			assertEnvelope(t, body, codeInvalidBatch)

			// Direct writes to a replica are refused: it follows the log.
			rep := f.procs[0][0]
			status, body = postRaw(t, rep.outer.Client(), rep.outer.URL+"/v1/ingest", `{"day":99}`)
			if status != http.StatusServiceUnavailable {
				t.Fatalf("direct replica ingest = %d: %s", status, body)
			}
			assertEnvelope(t, body, codeReadOnlyReplica)

			// Fleet-wide reload is refused in WAL mode.
			status, body = postRaw(t, f.routerTS.Client(), f.routerTS.URL+"/v1/reload", "")
			if status != http.StatusServiceUnavailable {
				t.Fatalf("WAL-mode reload = %d: %s", status, body)
			}
			assertEnvelope(t, body, codeUnavailable)
		})
	}
}

// TestRollingRestartZero5xx is the flagship operational proof: a 2-shard ×
// 3-replica fleet under a concurrent search+node+ingest hammer has every
// replica restarted, one at a time — each rebuilt from the base world and
// made to catch up from the delta log alone — without a single 5xx
// answered by the router, and ends byte-identical to the reference.
func TestRollingRestartZero5xx(t *testing.T) {
	f := newWALFixture(t, 2, 3, RouterOptions{
		ProbeInterval: 10 * time.Millisecond,
		Timeout:       2 * time.Second,
		AckTimeout:    10 * time.Second,
	})
	ref := httptest.NewServer(NewSharded(f.base, Options{
		IngestSharded: detShardedIngester(f.base),
	}).Handler())
	t.Cleanup(ref.Close)

	var server5xx, reads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readPaths := []string{
		"/v1/search?q=sedan&limit=10",
		"/v1/search?q=recall&limit=5",
		"/v1/node?phrase=family+sedans",
		"/v1/node?phrase=family+sedans&type=concept",
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := f.routerTS.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := f.routerTS.URL + readPaths[(g+i)%len(readPaths)]
				resp, err := client.Get(url)
				if err != nil {
					continue // client-side churn, not a served 5xx
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				reads.Add(1)
				if resp.StatusCode >= 500 {
					server5xx.Add(1)
					t.Errorf("read %s = %d during rolling restart: %s", url, resp.StatusCode, body)
				}
			}
		}(g)
	}
	// One serialized ingest stream alongside the reads, mirrored to the
	// reference so the final worlds are comparable.
	day := 10
	ingest := func() {
		t.Helper()
		day++
		body := fmt.Sprintf(`{"day":%d}`, day)
		status, got := postRaw(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", body)
		if status >= 500 {
			server5xx.Add(1)
			t.Errorf("ingest day %d = %d during rolling restart: %s", day, status, got)
		}
		postJSON(t, ref.Client(), ref.URL+"/v1/ingest", body, 200)
	}

	ingest()
	for s := 0; s < 2; s++ {
		for ri := 0; ri < 3; ri++ {
			p := f.procs[s][ri]
			p.stop()
			ingest() // a write lands while the replica is gone
			// Restart: fresh base world, catch up from the log alone.
			p.boot(t, f.base, nil)
			p.down.Store(false)
			ingest()
			head := f.headGen(s)
			waitFor(t, 10*time.Second, fmt.Sprintf("shard %d replica %d to catch up", s, ri), func() bool {
				return replicaWALGen(t, p) >= head
			})
		}
	}
	ingest()
	close(stop)
	wg.Wait()
	if server5xx.Load() > 0 {
		t.Fatalf("%d responses were 5xx during the rolling restart", server5xx.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("hammer produced no reads")
	}
	// The evolved fleet matches the reference byte for byte.
	for _, p := range readPaths {
		refStatus, refBody := getRaw(t, ref.Client(), ref.URL+p)
		gotStatus, gotBody := getRaw(t, f.routerTS.Client(), f.routerTS.URL+p)
		if refStatus != gotStatus || !bytes.Equal(refBody, gotBody) {
			t.Fatalf("%s diverges after rolling restart:\nrouter: %s\nref:    %s", p, gotBody, refBody)
		}
	}
}

// TestReplicaCatchUpGating: a replica holding an unapplied generation is
// never consulted for reads — the generation gate, not health, is what
// re-admits it.
func TestReplicaCatchUpGating(t *testing.T) {
	f := newWALFixture(t, 1, 2, RouterOptions{
		ProbeInterval: 10 * time.Millisecond,
		AckTimeout:    2 * time.Second,
	})
	// Rebuild replica B gated: every apply blocks until released.
	gate := make(chan struct{})
	b := f.procs[0][1]
	b.boot(t, f.base, gate)

	// Count reads reaching B while it lags (healthz and /v1/wal are not
	// reads — they are exactly how the router watches a lagging replica).
	var lagReads atomic.Int64
	inner := b.inner
	b.mu.Lock()
	b.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/search" || r.URL.Path == "/v1/node" {
			lagReads.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
	b.mu.Unlock()

	for day := 11; day <= 13; day++ {
		postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", fmt.Sprintf(`{"day":%d}`, day), 200)
	}
	// A (replica 0) is at head; B is stuck at 0. Hammer reads: all must
	// land on A.
	for i := 0; i < 40; i++ {
		getRaw(t, f.routerTS.Client(), f.routerTS.URL+"/v1/search?q=sedan&limit=5")
		getRaw(t, f.routerTS.Client(), f.routerTS.URL+"/v1/node?phrase=family+sedans")
	}
	if n := lagReads.Load(); n > 0 {
		t.Fatalf("%d reads reached the lagging replica", n)
	}
	// Release B, let it catch up, and verify it rejoins the rotation.
	close(gate)
	head := f.headGen(0)
	waitFor(t, 10*time.Second, "replica B to catch up", func() bool {
		return replicaWALGen(t, b) >= head
	})
	waitFor(t, 10*time.Second, "replica B to rejoin read rotation", func() bool {
		getRaw(t, f.routerTS.Client(), f.routerTS.URL+"/v1/search?q=sedan&limit=5")
		return lagReads.Load() > 0
	})
}

// TestIngestBackpressure: once a shard's slowest healthy replica trails
// the log head by more than MaxLag, ingest answers 429 replica_lagging
// with a Retry-After header — and admits writes again once the replica
// drains.
func TestIngestBackpressure(t *testing.T) {
	f := newWALFixture(t, 1, 2, RouterOptions{
		MaxLag:     2,
		AckTimeout: time.Second,
	})
	gate := make(chan struct{})
	b := f.procs[0][1]
	b.boot(t, f.base, gate)
	// Prime the router's view of B (applied=0) — otherwise the first
	// ingest's lag check sees no healthy-replica positions at all.
	getJSON(t, f.routerTS.Client(), f.routerTS.URL+"/healthz", 200)

	for day := 11; day <= 13; day++ {
		postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", fmt.Sprintf(`{"day":%d}`, day), 200)
	}
	// head=3, B applied=0, lag 3 > MaxLag 2: pushback.
	resp, err := f.routerTS.Client().Post(f.routerTS.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte(`{"day":14}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("lagging ingest = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	assertEnvelope(t, body, codeReplicaLagging)

	close(gate)
	head := f.headGen(0)
	waitFor(t, 10*time.Second, "replica B to drain", func() bool {
		return replicaWALGen(t, b) >= head
	})
	postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", `{"day":14}`, 200)
}

// forceCheckpoint rolls a checkpoint on a replica synchronously (POST
// /v1/checkpoint) and returns the covered log position.
func forceCheckpoint(t *testing.T, p *replicaProc) uint64 {
	t.Helper()
	status, body := postRaw(t, p.outer.Client(), p.outer.URL+"/v1/checkpoint", "")
	if status != http.StatusOK {
		t.Fatalf("shard %d replica %d: POST /v1/checkpoint = %d: %s", p.shard, p.idx, status, body)
	}
	var parsed struct {
		CheckpointGen uint64 `json:"checkpoint_gen"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("checkpoint response: %v: %s", err, body)
	}
	return parsed.CheckpointGen
}

// restartReplica stops p, reboots it (hydrating when checkpointing is
// enabled) and waits for it to catch up to its shard's log head.
func (f *walFixture) restartReplica(t *testing.T, p *replicaProc) {
	t.Helper()
	p.stop()
	p.boot(t, f.base, nil)
	p.down.Store(false)
	head := f.headGen(p.shard)
	waitFor(t, 10*time.Second, fmt.Sprintf("shard %d replica %d to catch up", p.shard, p.idx), func() bool {
		if errp := p.runErr.Load(); errp != nil {
			t.Fatalf("shard %d replica %d follower died: %v", p.shard, p.idx, *errp)
		}
		return replicaWALGen(t, p) >= head
	})
}

// TestCheckpointReplayEquivalence is the compaction tentpole's pin: for
// K ∈ {1, 2}, a replica that boots from a checkpoint artifact and tails
// only the log suffix serves byte-identical worlds — responses AND
// generation accounting — to the single-process reference, at every
// stage: after a plain checkpointed restart, and after the log has been
// truncated below the checkpoint (where full replay is impossible and
// hydration is the only way back).
func TestCheckpointReplayEquivalence(t *testing.T) {
	for _, k := range []int{1, 2} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			f := newCkptWALFixture(t, k, 1, 2, RouterOptions{})
			ref := httptest.NewServer(NewSharded(f.base, Options{
				IngestSharded: detShardedIngester(f.base),
			}).Handler())
			t.Cleanup(ref.Close)

			probes := []string{
				"/v1/search?q=sedan&limit=10",
				"/v1/search?q=recall&limit=5",
				"/v1/node?phrase=family+sedans",
				"/v1/node?phrase=family+sedans&type=concept",
				"/v1/node?phrase=hybrid+sedans+12&type=concept",
				"/v1/node?phrase=sedan+recall+wave+14",
			}
			assertSame := func(stage string) {
				t.Helper()
				for _, path := range probes {
					refStatus, refBody := getRaw(t, ref.Client(), ref.URL+path)
					gotStatus, gotBody := getRaw(t, f.routerTS.Client(), f.routerTS.URL+path)
					if refStatus != gotStatus || !bytes.Equal(refBody, gotBody) {
						t.Fatalf("k=%d %s: %s diverges: status %d vs %d\nrouter: %s\nref:    %s",
							k, stage, path, gotStatus, refStatus, gotBody, refBody)
					}
				}
			}
			ingest := func(day int) {
				t.Helper()
				body := fmt.Sprintf(`{"day":%d}`, day)
				refResp := postJSON(t, ref.Client(), ref.URL+"/v1/ingest", body, 200)
				gotResp := postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", body, 200)
				if !reflect.DeepEqual(refResp["shard_generations"], gotResp["shard_generations"]) {
					t.Fatalf("k=%d day %d: shard generations diverge: %v vs %v",
						k, day, gotResp["shard_generations"], refResp["shard_generations"])
				}
			}

			for day := 11; day <= 14; day++ {
				ingest(day)
			}
			// Roll a checkpoint on every replica at the current head, then
			// keep writing so a real suffix exists past the artifact.
			for s := 0; s < k; s++ {
				if got, want := forceCheckpoint(t, f.procs[s][0]), f.headGen(s); got != want {
					t.Fatalf("shard %d checkpoint covers %d, head is %d", s, got, want)
				}
			}
			for day := 15; day <= 16; day++ {
				ingest(day)
			}
			assertSame("before restart")

			// Checkpointed restart: hydrate the artifact, tail the suffix.
			for s := 0; s < k; s++ {
				f.restartReplica(t, f.procs[s][0])
			}
			assertSame("after checkpointed restart")

			// Generation continuity: the next ingest must mint the same
			// serving generations on both sides (the hydrated store resumed
			// the sequence, not restarted it).
			ingest(17)
			assertSame("after post-restart ingest")

			// Truncate each log below its checkpoint floor and restart
			// again: replay-from-zero is now impossible (ErrCompacted), so
			// only the hydration path can produce these identical worlds.
			for s := 0; s < k; s++ {
				meta, err := wal.ReadCheckpointMeta(wal.CheckpointPath(f.walDir, s, k))
				if err != nil {
					t.Fatalf("shard %d checkpoint meta: %v", s, err)
				}
				if err := f.rt.shards[s].log.TruncateBelow(meta.WALGen); err != nil {
					t.Fatalf("shard %d truncate below %d: %v", s, meta.WALGen, err)
				}
				if base := f.rt.shards[s].log.BaseGen(); base != meta.WALGen {
					t.Fatalf("shard %d: base %d after truncating below %d", s, base, meta.WALGen)
				}
			}
			for s := 0; s < k; s++ {
				f.restartReplica(t, f.procs[s][0])
			}
			assertSame("after truncation + restart")
			ingest(18)
			assertSame("after post-truncation ingest")
		})
	}
}

// TestCheckpointCrashLadder drives the boot ladder through injected
// checkpoint-write crashes: a corrupt primary artifact falls back to the
// rotated previous one, both corrupt falls back to full replay, and both
// corrupt WITH a truncated log — the only unrecoverable combination —
// stops the follower without ever acking a wrong world.
func TestCheckpointCrashLadder(t *testing.T) {
	f := newCkptWALFixture(t, 1, 1, 2, RouterOptions{})
	ref := httptest.NewServer(NewSharded(f.base, Options{
		IngestSharded: detShardedIngester(f.base),
	}).Handler())
	t.Cleanup(ref.Close)

	p := f.procs[0][0]
	ingest := func(day int) {
		t.Helper()
		body := fmt.Sprintf(`{"day":%d}`, day)
		postJSON(t, ref.Client(), ref.URL+"/v1/ingest", body, 200)
		postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", body, 200)
	}
	assertSame := func(stage string) {
		t.Helper()
		for _, path := range []string{"/v1/search?q=sedan&limit=10", "/v1/node?phrase=family+sedans"} {
			refStatus, refBody := getRaw(t, ref.Client(), ref.URL+path)
			gotStatus, gotBody := getRaw(t, f.routerTS.Client(), f.routerTS.URL+path)
			if refStatus != gotStatus || !bytes.Equal(refBody, gotBody) {
				t.Fatalf("%s: %s diverges\nrouter: %s\nref:    %s", stage, path, gotBody, refBody)
			}
		}
	}

	// Two checkpoints at different positions so the rotation slot holds a
	// usable older artifact: primary covers 4, previous covers 2.
	ingest(11)
	ingest(12)
	if got := forceCheckpoint(t, p); got != 2 {
		t.Fatalf("first checkpoint covers %d, want 2", got)
	}
	ingest(13)
	ingest(14)
	if got := forceCheckpoint(t, p); got != 4 {
		t.Fatalf("second checkpoint covers %d, want 4", got)
	}

	primary := wal.CheckpointPath(f.walDir, 0, 1)
	prev := wal.PrevCheckpointPath(f.walDir, 0, 1)
	corrupt := func(path string) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// A torn write: the file ends mid-artifact.
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Rung 2: primary torn mid-write, previous intact. The boot must land
	// on the previous artifact (covers 2) and replay 3..4 from the log.
	corrupt(primary)
	f.restartReplica(t, p)
	assertSame("after fallback to previous checkpoint")

	// Repair the artifacts at the current position for the next scenario.
	if got := forceCheckpoint(t, p); got != 4 {
		t.Fatalf("repair checkpoint covers %d, want 4", got)
	}

	// Rung 3: both artifacts torn, log intact: full replay from zero.
	corrupt(primary)
	corrupt(prev)
	f.restartReplica(t, p)
	assertSame("after fallback to full replay")

	// Unrecoverable: both artifacts torn AND the log truncated. The boot
	// falls to full replay, which must stop at ErrCompacted — the replica
	// never acks a generation it could only have guessed at.
	if got := forceCheckpoint(t, p); got != 4 {
		t.Fatalf("checkpoint covers %d, want 4", got)
	}
	if err := f.rt.shards[0].log.TruncateBelow(2); err != nil {
		t.Fatal(err)
	}
	corrupt(primary)
	corrupt(prev)
	p.stop()
	p.boot(t, f.base, nil)
	p.down.Store(false)
	waitFor(t, 10*time.Second, "follower to stop on the compacted log", func() bool {
		return p.runErr.Load() != nil
	})
	if err := *p.runErr.Load(); !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("follower stopped with %v, want ErrCompacted", err)
	}
	if gen := replicaWALGen(t, p); gen != 0 {
		t.Fatalf("unrecoverable replica acked generation %d", gen)
	}
}

// TestRouterCompaction: with RouterOptions.Compact, the prober truncates
// each shard's log below the fleet-wide applied floor — but never past
// the published checkpoint — and a replica killed before the truncation
// rejoins from the artifact. /healthz surfaces the wal block.
func TestRouterCompaction(t *testing.T) {
	f := newCkptWALFixture(t, 1, 2, 2, RouterOptions{
		Compact:       true,
		ProbeInterval: 10 * time.Millisecond,
		AckTimeout:    10 * time.Second,
	})
	for day := 11; day <= 16; day++ {
		postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", fmt.Sprintf(`{"day":%d}`, day), 200)
	}
	// Cadence rolls (every 2 gens) publish asynchronously; the prober then
	// drives the log base up to min(applied floor, checkpoint floor).
	waitFor(t, 10*time.Second, "the prober to truncate the log", func() bool {
		return f.rt.shards[0].log.BaseGen() > 0
	})
	base := f.rt.shards[0].log.BaseGen()
	meta, err := wal.ReadCheckpointMeta(wal.CheckpointPath(f.walDir, 0, 1))
	if err != nil {
		t.Fatalf("checkpoint meta after compaction: %v", err)
	}
	if base > meta.WALGen {
		t.Fatalf("log truncated to base %d, past the checkpoint floor %d", base, meta.WALGen)
	}

	// A replica restarting over the compacted log can only rejoin through
	// the artifact; it must catch up and answer reads consistently with
	// its sibling.
	f.restartReplica(t, f.procs[0][1])
	a, b := f.procs[0][0], f.procs[0][1]
	for _, path := range []string{"/v1/search?q=sedan&limit=10", "/v1/node?phrase=family+sedans"} {
		aStatus, aBody := getRaw(t, a.outer.Client(), a.outer.URL+path)
		bStatus, bBody := getRaw(t, b.outer.Client(), b.outer.URL+path)
		if aStatus != bStatus || !bytes.Equal(aBody, bBody) {
			t.Fatalf("%s diverges across replicas after compacted rejoin:\nA: %s\nB: %s", path, aBody, bBody)
		}
	}

	// The router's health view carries the compaction state.
	health := getJSON(t, f.routerTS.Client(), f.routerTS.URL+"/healthz", 200)
	walBlock, ok := health["wal"].([]any)
	if !ok || len(walBlock) != 1 {
		t.Fatalf("healthz wal block missing or malformed: %v", health["wal"])
	}
	entry := walBlock[0].(map[string]any)
	for _, field := range []string{"shard", "head", "base", "applied_floor", "checkpoint_gen"} {
		if _, ok := entry[field]; !ok {
			t.Fatalf("healthz wal entry lacks %q: %v", field, entry)
		}
	}
}

// postRaw posts a JSON body and returns the verbatim status and body.
func postRaw(t *testing.T, c *http.Client, url, body string) (int, []byte) {
	t.Helper()
	resp, err := c.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", url, err)
	}
	return resp.StatusCode, out
}

// knownErrorCodes is the closed set of machine codes the /v1 contract
// may emit.
var knownErrorCodes = map[string]bool{
	codeInvalidArgument: true, codeInvalidLimit: true, codeInvalidBatch: true,
	codeNotFound: true, codeMethodNotAllowed: true, codeUnavailable: true,
	codeShardUnavailable: true, codePartialApply: true, codeReplicaLagging: true,
	codeReadOnlyReplica: true, codeConflict: true, codeBadUpstream: true,
	codeInternal: true,
}

// assertEnvelope asserts a body is the unified error envelope; wantCode,
// when non-empty, pins the exact machine code.
func assertEnvelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var parsed struct {
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil || parsed.Error == nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	if !knownErrorCodes[parsed.Error.Code] {
		t.Fatalf("unknown error code %q: %s", parsed.Error.Code, body)
	}
	if parsed.Error.Message == "" {
		t.Fatalf("empty error message: %s", body)
	}
	if wantCode != "" && parsed.Error.Code != wantCode {
		t.Fatalf("error code %q, want %q: %s", parsed.Error.Code, wantCode, body)
	}
}

// TestErrorEnvelope sweeps every /v1 error path across the four serving
// modes and asserts each response is the unified envelope with the
// expected machine code.
func TestErrorEnvelope(t *testing.T) {
	snap := testOntology(0).Snapshot()

	type probe struct {
		method, path, body string
		wantStatus         int
		wantCode           string
	}
	readProbes := []probe{
		{"GET", "/v1/node", "", 400, codeInvalidArgument},
		{"GET", "/v1/node?id=abc", "", 400, codeInvalidArgument},
		{"GET", "/v1/node?phrase=x&type=nope", "", 400, codeInvalidArgument},
		{"GET", "/v1/node?phrase=no+such+node+anywhere", "", 404, codeNotFound},
		{"GET", "/v1/search", "", 400, codeInvalidArgument},
		{"GET", "/v1/search?q=sedan&limit=0", "", 400, codeInvalidLimit},
		{"GET", "/v1/search?q=sedan&limit=x", "", 400, codeInvalidLimit},
		{"GET", "/v1/search?q=sedan&scatter=bogus", "", 400, codeInvalidArgument},
		{"POST", "/v1/ingest", "{nope", 400, codeInvalidArgument},
		{"POST", "/v1/ingest", `{"day":0}`, 422, codeInvalidBatch},
		{"GET", "/v1/ingest", "", 405, codeMethodNotAllowed},
		{"GET", "/v1/reload", "", 405, codeMethodNotAllowed},
		{"GET", "/v1/rollback", "", 405, codeMethodNotAllowed},
		{"POST", "/v1/rollback", "", 409, codeConflict},
	}
	runProbes := func(t *testing.T, ts *httptest.Server, probes []probe) {
		t.Helper()
		for _, p := range probes {
			var status int
			var body []byte
			if p.method == "GET" {
				status, body = getRaw(t, ts.Client(), ts.URL+p.path)
			} else {
				status, body = postRaw(t, ts.Client(), ts.URL+p.path, p.body)
			}
			if status != p.wantStatus {
				t.Fatalf("%s %s = %d, want %d: %s", p.method, p.path, status, p.wantStatus, body)
			}
			assertEnvelope(t, body, p.wantCode)
		}
	}

	t.Run("single", func(t *testing.T) {
		sys := testOntology(0)
		_ = sys
		srv := New(snap, Options{Ingest: func(b delta.Batch) (*ontology.Snapshot, *delta.Delta, error) {
			if b.Day == 0 {
				return nil, nil, fmt.Errorf("empty batch: %w", delta.ErrInvalidBatch)
			}
			return snap, &delta.Delta{Day: b.Day}, nil
		}})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		runProbes(t, ts, readProbes)
		// Unwired endpoints answer 503 unavailable.
		st, body := postRaw(t, ts.Client(), ts.URL+"/v1/reload", "")
		if st != 503 {
			t.Fatalf("reload without loader = %d: %s", st, body)
		}
		assertEnvelope(t, body, codeUnavailable)
	})

	t.Run("sharded", func(t *testing.T) {
		ss, err := ontology.ShardSnapshot(snap, 2)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewSharded(ss, Options{IngestSharded: detShardedIngester(ss)}).Handler())
		t.Cleanup(ts.Close)
		runProbes(t, ts, readProbes)
	})

	t.Run("shard-backend", func(t *testing.T) {
		ss, err := ontology.ShardSnapshot(snap, 2)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewShard(ss.Projection(0), Options{
			ShardIngest: detShardIngester(0, ss, nil),
		}).Handler())
		t.Cleanup(ts.Close)
		// A shard backend 404s nodes homed elsewhere; keep only probes
		// that are shard-local deterministic.
		runProbes(t, ts, []probe{
			{"GET", "/v1/node", "", 400, codeInvalidArgument},
			{"GET", "/v1/node?id=abc", "", 400, codeInvalidArgument},
			{"GET", "/v1/node?phrase=no+such+node+anywhere", "", 404, codeNotFound},
			{"GET", "/v1/search?q=sedan&limit=0", "", 400, codeInvalidLimit},
			{"GET", "/v1/ingest", "", 405, codeMethodNotAllowed},
			{"POST", "/v1/ingest", "{nope", 400, codeInvalidArgument},
			{"GET", "/v1/wal?wait=1", "", 404, codeNotFound},
		})
	})

	t.Run("router", func(t *testing.T) {
		f := newWALFixture(t, 2, 1, RouterOptions{})
		runProbes(t, f.routerTS, []probe{
			{"GET", "/v1/node", "", 400, codeInvalidArgument},
			{"GET", "/v1/node?id=abc", "", 400, codeInvalidArgument},
			{"GET", "/v1/node?phrase=x&type=nope", "", 400, codeInvalidArgument},
			{"GET", "/v1/node?phrase=no+such+node+anywhere", "", 404, codeNotFound},
			{"GET", "/v1/search", "", 400, codeInvalidArgument},
			{"GET", "/v1/search?q=sedan&limit=0", "", 400, codeInvalidLimit},
			{"GET", "/v1/search?q=sedan&scatter=bogus", "", 400, codeInvalidArgument},
			{"GET", "/v1/ingest", "", 405, codeMethodNotAllowed},
			{"POST", "/v1/ingest", "{nope", 400, codeInvalidArgument},
			{"POST", "/v1/ingest", `{"day":0}`, 422, codeInvalidBatch},
		})
		// Kill a shard: point routes 502, fail-closed fan-outs 503.
		f.procs[1][0].down.Store(true)
		st, body := getRaw(t, f.routerTS.Client(), f.routerTS.URL+"/v1/stats")
		if st != 503 {
			t.Fatalf("fail-closed stats with dead shard = %d: %s", st, body)
		}
		assertEnvelope(t, body, codeShardUnavailable)
	})
}
