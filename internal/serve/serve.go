// Package serve is the online tier of the reproduction: an HTTP server that
// exposes a built Attention Ontology the way the paper's production system
// does (§4 — document tagging, query conceptualization/rewriting, story
// trees) plus operational endpoints (stats, search, metrics, health,
// reload).
//
// The server never serves from the mutable build-time *ontology.Ontology.
// It holds an immutable *ontology.Snapshot — together with the taggers, the
// query understander and a bounded LRU response cache derived from it — in
// a single atomically-swapped state pointer. Request handlers load that
// pointer once and then perform lock-free reads for the rest of the
// request; /v1/reload indexes a replacement snapshot off to the side and
// publishes it with one atomic store, so serving continues uninterrupted on
// the old snapshot until the new one is fully built. The retired snapshot,
// cache included, is garbage-collected once in-flight requests drain.
//
// Endpoints:
//
//	GET  /healthz           liveness + current generation
//	GET  /v1/stats          node/edge counts per type
//	GET  /v1/node           node detail by ?id= or ?phrase=[&type=]
//	GET  /v1/search         substring search over phrases and aliases
//	GET  /v1/tag            tag a document (?title=&content=&entities=a,b)
//	POST /v1/tag            tag a document (JSON body)
//	GET  /v1/query/rewrite  conceptualize + rewrite a query (?q=)
//	GET  /v1/story          story tree seeded at an event (?seed=)
//	GET  /v1/metrics        per-endpoint QPS/latency/cache counters
//	POST /v1/reload         hot-swap a freshly loaded snapshot
//	POST /v1/ingest         apply an incremental update batch (delta mining)
//	POST /v1/rollback       revert to the previous retained generation
//
// Every published snapshot — initial load, reload, ingest — is pushed
// into a bounded ontology.Store of recent generations, so /v1/rollback
// can revert a bad update with a pointer swap and zero rebuild cost.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/queryund"
	"giant/internal/storytree"
	"giant/internal/tagging"
)

// Options configure a Server.
type Options struct {
	// CacheSize bounds the per-snapshot LRU response cache (entries);
	// 0 means DefaultCacheSize, negative disables caching.
	CacheSize int
	// Loader supplies a replacement snapshot for /v1/reload (typically
	// re-reading the ontology file or re-running the build). Nil disables
	// the endpoint.
	Loader func() (*ontology.Snapshot, error)
	// Ingest applies an incremental update batch and returns the next
	// snapshot generation plus the computed delta (see giant.System.Ingest).
	// Nil disables POST /v1/ingest.
	Ingest func(delta.Batch) (*ontology.Snapshot, *delta.Delta, error)
	// IngestSharded is the sharded analogue (see giant.System.IngestSharded):
	// it returns the advanced sharded snapshot, the merged delta and the
	// touched-shard flags, and the server republishes — and bumps the
	// generation of — only the touched shards. When set it takes precedence
	// over Ingest; it requires the server to have been built with NewSharded.
	IngestSharded func(delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error)
	// ShardIngest is the per-shard-process analogue (servers built with
	// NewShard): the host applies the batch through its full mining system
	// and returns THIS shard's advanced projection plus the merged delta
	// and the touched-shard flags. The server republishes — and bumps its
	// generation — only when its own shard was touched; an untouched ingest
	// still refreshes the serving state (the union ID table may have
	// shifted) without minting a new generation, which is what keeps
	// per-shard generations identical to the in-process NewSharded path.
	ShardIngest func(delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error)
	// ShardLoader supplies a replacement shard projection for /v1/reload on
	// a NewShard server (typically re-reading the shard file or re-running
	// the build). Nil disables the endpoint in shard mode.
	ShardLoader func() (*ontology.ShardProjection, error)
	// History bounds the versioned snapshot store backing /v1/rollback;
	// 0 means ontology.DefaultRetention.
	History int
	// ConceptContext optionally enriches concept-tagger representations
	// with the build's concept -> top clicked titles map.
	ConceptContext map[string][]string
	// ConceptContextFn, when set, supplies a fresh concept-context map for
	// every published state (so live ingest keeps tagger representations
	// current) and takes precedence over ConceptContext. It is called
	// under the swap lock, serialized with Ingest.
	ConceptContextFn func() map[string][]string
	// Duet optionally supplies a trained event/topic matcher; nil degrades
	// event tagging to LCS-only.
	Duet *tagging.Duet
	// CheckpointSave captures the host's full apply state for a
	// checkpoint artifact: the UNION snapshot (per-shard projections are
	// re-derived deterministically from it on restore) plus an opaque
	// host-state blob (click-log tail, mining context). It is called from
	// the follower goroutine between applies, where the host state is
	// quiescent — the follower is the replica's only writer. Nil disables
	// background checkpointing and POST /v1/checkpoint.
	CheckpointSave func() (*ontology.Snapshot, []byte, error)
	// CheckpointRestore rebuilds the host's apply state from a
	// checkpoint's union snapshot and state blob and returns THIS shard's
	// projection to serve. Nil disables checkpoint boot (HydrateShard).
	CheckpointRestore func(*ontology.Snapshot, []byte) (*ontology.ShardProjection, error)
	// MaxSearchResults caps /v1/search result counts; 0 means 100.
	MaxSearchResults int
	// Story configures story-tree formation; nil means
	// storytree.DefaultOptions.
	Story *storytree.Options
}

// DefaultCacheSize bounds the response cache when Options.CacheSize is 0.
const DefaultCacheSize = 1024

// state bundles one snapshot with everything derived from it. It is
// immutable after construction and swapped as a unit, so a request that
// loaded a state sees a consistent ontology + taggers + cache throughout.
type state struct {
	snap     *ontology.Snapshot
	concepts *tagging.ConceptTagger
	events   *tagging.EventTagger
	query    *queryund.Understander
	// storyEvents is the snapshot's event list materialized once for
	// story-tree formation, so /v1/story doesn't re-walk the ontology's
	// Involve edges on every request.
	storyEvents []*storytree.EventNode
	cache       *lruCache
	gen         uint64
	loadedAt    time.Time
	// shards is the sharded projection set when the server runs sharded
	// (nil on the legacy single-snapshot path); snap is then its union.
	// /v1/search scatter-gathers across the shard projections and
	// /v1/stats reports the per-shard generations below.
	shards    *ontology.ShardedSnapshot
	shardGens []uint64
	// shardCaches are the sharded server's per-shard response caches:
	// /v1/node responses are keyed by the resolved node's home shard, and a
	// shard's cache carries over across publishes that leave its projection
	// untouched — so a foreign shard's republication no longer evicts them.
	shardCaches []*lruCache
	// searchPartials are the sharded server's per-shard search-partial
	// caches (generation-keyed by construction: a republished shard gets a
	// fresh cache, untouched shards keep theirs — ALWAYS, unlike the node
	// caches, because partials hold shard-local nodes and are re-rendered
	// through the current union on every read, so no publish of a PEER can
	// stale them). Rollback and reload install fresh caches for all shards.
	searchPartials []*searchCache
	// proj identifies a per-shard-process server (NewShard): snap is then
	// one shard's projection, search scans only its home-node prefix, and
	// node responses render union IDs through the projection's ID table.
	proj *ontology.ShardProjection
	// appRefs, appStats and appFrags memoize the application endpoints'
	// per-state derived structures (concept stats partial, merged concept
	// index, merged story fragments — see app.go). They are built lazily on
	// first use; racing builds compute identical values (the inputs are the
	// state's immutable projections), so the last store winning is benign.
	appRefs  atomic.Pointer[[]tagging.ConceptRef]
	appStats atomic.Pointer[tagging.ConceptIndex]
	appFrags atomic.Pointer[[]*storytree.EventNode]
}

// Server serves a hot-swappable ontology snapshot over HTTP.
type Server struct {
	opts        Options
	cur         atomic.Pointer[state]
	store       *ontology.Store        // versioned generation history (rollback)
	shardStores *ontology.ShardedStore // per-shard generation history (sharded mode)
	swapMu      sync.Mutex             // serializes Swap/reload/ingest/rollback; readers never take it
	metrics     *metricsRegistry
	mux         *http.ServeMux
	enc         storytree.Encoder
	story       storytree.Options
	shardMode   bool // built with NewShard: serves one shard projection
	// wal is non-nil on a delta-log replica (a NewShard server with an
	// attached Follower): the server then refuses direct writes
	// (read_only_replica) and answers /v1/wal with its applied log
	// position for the router's quorum acks and read gating.
	wal atomic.Pointer[walState]
}

// endpointNames fixes the metrics registry key set.
var endpointNames = []string{
	"healthz", "stats", "node", "search", "tag", "query_rewrite", "story", "metrics", "reload", "ingest", "rollback", "wal", "checkpoint",
}

// newServer applies option defaults and wires the fields shared by both
// serving modes; the caller publishes an initial state and routes.
func newServer(opts Options) *Server {
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxSearchResults <= 0 {
		opts.MaxSearchResults = 100
	}
	s := &Server{
		opts:    opts,
		store:   ontology.NewStore(opts.History),
		metrics: newMetricsRegistry(endpointNames),
		enc:     storytree.NewBagOfTokensEncoder(16, nil),
		story:   storytree.DefaultOptions(),
	}
	if opts.Story != nil {
		s.story = *opts.Story
	}
	return s
}

// New builds a Server over an initial snapshot.
func New(snap *ontology.Snapshot, opts Options) *Server {
	s := newServer(opts)
	s.Swap(snap)
	s.routes()
	return s
}

// NewSharded builds a Server over an initial sharded snapshot: requests
// read the union view, /v1/search scatter-gathers across the shard
// projections, and publication — initial, reload, ingest — is per shard,
// each shard carrying its own generation history.
func NewSharded(ss *ontology.ShardedSnapshot, opts Options) *Server {
	s := newServer(opts)
	s.shardStores = ontology.NewShardedStore(ss.NumShards(), s.opts.History)
	s.SwapSharded(ss, nil)
	s.routes()
	return s
}

// NewShard builds a per-shard-process Server over one shard's projection —
// the backend of the multi-process serving tier (cmd/giantrouter fans out
// over K of these). /v1/search scans only the projection's home-node
// prefix and /v1/node resolves home nodes only, both rendering union node
// IDs through the projection's ID table, so a router merging K shard
// responses reproduces the in-process NewSharded output byte for byte.
// /healthz and /v1/stats carry the shard identity and per-shard
// generation. /v1/tag, /v1/query/rewrite and /v1/story additionally
// expose ?partial= modes reporting the shard's home candidates with
// union IDs (see app.go); the router merges those partials into
// union-exact responses, while the plain endpoints keep answering from
// the projection alone for standalone inspection.
func NewShard(p *ontology.ShardProjection, opts Options) *Server {
	return NewShardAt(p, 1, opts)
}

// NewShardAt builds a per-shard-process Server whose initial publish
// mints serving generation gen instead of 1 — the checkpoint-boot seam.
// Generation numbers are part of the replicated contract
// (X-Giant-Generation, cache keys, the router's cross-replica identity
// checks), so a replica hydrated from a checkpoint must resume the
// exact generation sequence a full log replay would have produced.
func NewShardAt(p *ontology.ShardProjection, gen uint64, opts Options) *Server {
	s := newServer(opts)
	s.shardMode = true
	if gen > 1 {
		// The store is freshly built and empty; seeding cannot fail.
		if err := s.store.SeedGeneration(gen - 1); err != nil {
			panic(err)
		}
	}
	s.swapMu.Lock()
	s.publishShardLocked(p, true)
	s.swapMu.Unlock()
	s.routes()
	return s
}

// SwapSharded publishes a sharded snapshot: shards flagged touched (nil =
// all) are pushed into their per-shard generation stores, the union joins
// the whole-world store for /v1/rollback, and the serving state swaps
// atomically. Untouched shards keep their current generation — the
// republication unit is the shard, not the world.
func (s *Server) SwapSharded(ss *ontology.ShardedSnapshot, touched []bool) uint64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	gen, _ := s.publishShardedLocked(ss, touched, false)
	return gen
}

// publishShardedLocked pushes the touched shards and publishes the sharded
// serving state; the caller holds swapMu. A shard's generation must
// identify its served content, so beyond the delta-touched shards, any
// shard whose incoming projection differs from the one serving right now
// also republishes — that is what keeps generations honest when the
// ingest lineage diverges from the served state (e.g. the first ingest
// after a /v1/rollback or /v1/reload, which republished a re-partitioned
// world the mining system never adopted).
// carryCaches additionally carries the per-shard /v1/node response caches
// of untouched shards into the new state — sound only when the publish is
// an append-only delta (no retirements, whose dense renumbering can shift
// union IDs embedded in cached bodies of untouched shards).
func (s *Server) publishShardedLocked(ss *ontology.ShardedSnapshot, touched []bool, carryCaches bool) (uint64, []bool) {
	prev := s.cur.Load()
	republished := make([]bool, ss.NumShards())
	for i := 0; i < ss.NumShards(); i++ {
		republish := touched == nil || (i < len(touched) && touched[i])
		if !republish && (prev == nil || prev.shards == nil ||
			prev.shards.NumShards() != ss.NumShards() || prev.shards.Shard(i) != ss.Shard(i)) {
			republish = true
		}
		republished[i] = republish
		if republish {
			s.shardStores.Push(i, ss.Shard(i))
		}
	}
	var caches []*lruCache
	if carryCaches && prev != nil && len(prev.shardCaches) == ss.NumShards() {
		caches = make([]*lruCache, ss.NumShards())
		for i := range caches {
			if republished[i] {
				caches[i] = newLRUCache(s.opts.CacheSize)
			} else {
				caches[i] = prev.shardCaches[i]
			}
		}
	}
	// Search partials carry for every untouched shard unconditionally: a
	// partial is that shard's first-limit home matches as shard-local
	// copies, re-rendered through the current union at read time, so only
	// a change to the shard's own projection can invalidate it.
	var partials []*searchCache
	if prev != nil && len(prev.searchPartials) == ss.NumShards() {
		partials = make([]*searchCache, ss.NumShards())
		for i := range partials {
			if republished[i] {
				partials[i] = newSearchCache(s.opts.CacheSize)
			} else {
				partials[i] = prev.searchPartials[i]
			}
		}
	}
	return s.storeShardedStateLocked(ss, s.store.Push(ss.Union()), caches, partials), republished
}

// storeShardedStateLocked indexes and atomically publishes the sharded
// serving state under the given union generation (already pushed or
// reused by the caller); the caller holds swapMu and has pushed the shard
// stores it wants bumped. caches and partials, when non-nil, supply the
// per-shard node and search-partial caches to install (nil installs fresh
// empty ones — which is how rollback and reload drop every partial).
func (s *Server) storeShardedStateLocked(ss *ontology.ShardedSnapshot, gen uint64, caches []*lruCache, partials []*searchCache) uint64 {
	st := s.buildState(ss.Union(), gen)
	st.shards = ss
	st.shardGens = s.shardStores.CurrentGens()
	if caches == nil {
		caches = make([]*lruCache, ss.NumShards())
		for i := range caches {
			caches[i] = newLRUCache(s.opts.CacheSize)
		}
	}
	st.shardCaches = caches
	if partials == nil {
		partials = make([]*searchCache, ss.NumShards())
		for i := range partials {
			partials[i] = newSearchCache(s.opts.CacheSize)
		}
	}
	st.searchPartials = partials
	s.cur.Store(st)
	return gen
}

// Swap indexes snap into a full serving state (taggers, understander,
// fresh cache) and atomically publishes it, returning the new generation.
// In-flight requests keep the state they started with; new requests see
// the new snapshot. The snapshot also joins the versioned generation
// store, so a later /v1/rollback can revert to it. Safe to call while
// serving.
func (s *Server) Swap(snap *ontology.Snapshot) uint64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	return s.publishLocked(snap, s.store.Push(snap))
}

// publishLocked builds the serving state for (snap, gen) and atomically
// publishes it; the caller holds swapMu.
func (s *Server) publishLocked(snap *ontology.Snapshot, gen uint64) uint64 {
	st := s.buildState(snap, gen)
	s.cur.Store(st)
	return st.gen
}

// buildState indexes one snapshot into a full serving state (taggers,
// understander, fresh cache); the caller holds swapMu.
func (s *Server) buildState(snap *ontology.Snapshot, gen uint64) *state {
	conceptCtx := s.opts.ConceptContext
	if s.opts.ConceptContextFn != nil {
		conceptCtx = s.opts.ConceptContextFn()
	}
	return &state{
		snap:        snap,
		concepts:    tagging.NewConceptTagger(snap, conceptCtx),
		events:      tagging.NewEventTagger(snap, s.opts.Duet),
		query:       queryund.New(snap),
		storyEvents: storytree.EventsFromView(snap),
		cache:       newLRUCache(s.opts.CacheSize),
		gen:         gen,
		loadedAt:    time.Now(),
	}
}

// SwapSnapshot publishes a plain snapshot through whichever mode the
// server runs in: a sharded server re-partitions it and republishes every
// shard, a legacy server swaps it directly. This is the entry point for
// external updaters (file watchers) that only hold a union snapshot.
func (s *Server) SwapSnapshot(snap *ontology.Snapshot) (uint64, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.shardMode {
		return 0, errors.New("serve: SwapSnapshot on a per-shard server (use SwapShard with a shard projection)")
	}
	if st := s.cur.Load(); st.shards != nil {
		ss, err := ontology.ShardSnapshot(snap, st.shards.NumShards())
		if err != nil {
			return 0, err
		}
		gen, _ := s.publishShardedLocked(ss, nil, false)
		return gen, nil
	}
	return s.publishLocked(snap, s.store.Push(snap)), nil
}

// SwapShard publishes a replacement projection on a per-shard server (the
// shard-mode analogue of Swap, used by reload and file watchers). The
// projection must carry the same shard identity the server was built with.
func (s *Server) SwapShard(p *ontology.ShardProjection) (uint64, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	st := s.cur.Load()
	if st == nil || st.proj == nil {
		return 0, errors.New("serve: SwapShard on a server not built with NewShard")
	}
	if st.proj.Shard != p.Shard || st.proj.NumShards != p.NumShards {
		return 0, fmt.Errorf("serve: SwapShard got shard %d/%d, serving %d/%d",
			p.Shard, p.NumShards, st.proj.Shard, st.proj.NumShards)
	}
	return s.publishShardLocked(p, true), nil
}

// publishShardLocked publishes a per-shard serving state: a republish
// pushes the projection into the generation store (minting a new
// generation), while republish=false refreshes the state — fresh union-ID
// table, fresh cache — under the CURRENT generation, which is how an
// ingest that left this shard untouched keeps its generation while still
// tracking union renumbering. The caller holds swapMu.
func (s *Server) publishShardLocked(p *ontology.ShardProjection, republish bool) uint64 {
	var gen uint64
	if republish {
		gen = s.store.Push(p.Snap)
	} else if cur := s.cur.Load(); cur != nil {
		gen = cur.gen
	}
	st := s.buildState(p.Snap, gen)
	st.proj = p
	s.cur.Store(st)
	return gen
}

// Current returns the snapshot serving right now.
func (s *Server) Current() *ontology.Snapshot {
	return s.cur.Load().snap
}

// ShardProjection returns the shard projection serving right now (nil on
// a server not built with NewShard).
func (s *Server) ShardProjection() *ontology.ShardProjection {
	return s.cur.Load().proj
}

// Generation returns the current snapshot generation (1 for the initial
// snapshot, +1 per swap).
func (s *Server) Generation() uint64 {
	return s.cur.Load().gen
}

// Handler returns the HTTP handler for the server's endpoint set.
func (s *Server) Handler() http.Handler {
	return s.mux
}

func (s *Server) routes() {
	nodeHandler := s.handleNode
	if s.shardMode {
		nodeHandler = s.handleShardNode
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.endpoint("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/v1/stats", s.endpoint("stats", false, s.handleStats))
	s.mux.HandleFunc("/v1/node", s.endpoint("node", true, nodeHandler))
	s.mux.HandleFunc("/v1/search", s.endpoint("search", true, s.handleSearch))
	s.mux.HandleFunc("/v1/tag", s.endpoint("tag", false, s.handleTag))
	s.mux.HandleFunc("/v1/query/rewrite", s.endpoint("query_rewrite", true, s.handleQueryRewrite))
	s.mux.HandleFunc("/v1/story", s.endpoint("story", true, s.handleStory))
	s.mux.HandleFunc("/v1/metrics", s.endpoint("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("/v1/reload", s.endpoint("reload", false, s.handleReload))
	s.mux.HandleFunc("/v1/ingest", s.endpoint("ingest", false, s.handleIngest))
	s.mux.HandleFunc("/v1/rollback", s.endpoint("rollback", false, s.handleRollback))
	s.mux.HandleFunc("/v1/wal", s.endpoint("wal", false, s.handleWAL))
	s.mux.HandleFunc("/v1/checkpoint", s.endpoint("checkpoint", false, s.handleCheckpoint))
}

// handlerFunc is one endpoint's logic: it reads only from st (never from
// s.cur, which may have been swapped mid-request) and returns a status and
// a JSON-marshalable payload.
type handlerFunc func(st *state, r *http.Request) (int, any)

// endpoint wraps an endpoint with metrics and, for cacheable GETs, the
// per-snapshot LRU response cache (keyed by request URI, 200s only). On a
// sharded server, /v1/node entries live in the resolved node's home-shard
// cache, which survives publishes that leave that shard untouched.
func (s *Server) endpoint(name string, cacheable bool, fn handlerFunc) http.HandlerFunc {
	m := s.metrics.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st := s.cur.Load()
		useCache := cacheable && r.Method == http.MethodGet
		var cache *lruCache
		if useCache {
			cache = st.cacheFor(name, r)
			if body := cache.get(r.URL.RequestURI()); body != nil {
				s.setGenHeaders(w, st)
				writeBody(w, http.StatusOK, body, true)
				m.observe(http.StatusOK, time.Since(start), true)
				return
			}
		}
		status, payload := fn(st, r)
		body, err := json.Marshal(payload)
		if err != nil {
			status = http.StatusInternalServerError
			body, _ = json.Marshal(errBody(codeInternal, "encode response: "+err.Error()))
		}
		// Terminate the body before it can be cached: cached bytes are
		// served verbatim to any number of concurrent readers, so nothing
		// may append to (and thereby mutate) the shared backing array later.
		body = append(body, '\n')
		if useCache && status == http.StatusOK {
			cache.put(r.URL.RequestURI(), body)
		}
		s.setGenHeaders(w, st)
		writeBody(w, status, body, false)
		m.observe(status, time.Since(start), false)
	}
}

// setGenHeaders stamps the generation headers on every response: the
// serving generation of the state that answered, and — on a delta-log
// replica — the current applied log position, read AFTER the handler ran
// so a blocking /v1/wal wait reports its post-wait position.
func (s *Server) setGenHeaders(w http.ResponseWriter, st *state) {
	w.Header().Set(genHeader, strconv.FormatUint(st.gen, 10))
	if ws := s.wal.Load(); ws != nil {
		w.Header().Set(walGenHeader, strconv.FormatUint(ws.position(), 10))
	}
}

// cacheFor picks the response cache for one cacheable GET. /v1/node on a
// sharded (in-process) server is keyed by the resolved node's home shard:
// those entries are the regression scaffold for shard-local caching — a
// foreign shard's republication must not evict responses whose home shard
// is untouched. Scatter-gather search and the union-derived endpoints stay
// in the per-state cache that dies with its state.
func (st *state) cacheFor(name string, r *http.Request) *lruCache {
	if name != "node" || st.shards == nil || len(st.shardCaches) == 0 {
		return st.cache
	}
	if sh, ok := st.nodeHomeShard(r); ok {
		return st.shardCaches[sh]
	}
	return st.cache
}

// nodeHomeShard resolves a /v1/node request to the home shard of the node
// it would answer with (the same resolver handleNode uses); ok=false when
// the request is malformed or the node is unknown.
func (st *state) nodeHomeShard(r *http.Request) (int, bool) {
	node, ok, badReq, _ := resolveNodeQuery(st.snap, r.URL.Query())
	if badReq != 0 || !ok {
		return 0, false
	}
	return ontology.HomeShard(node.Type, node.Phrase, st.shards.NumShards()), true
}

// resolveNodeQuery is THE /v1/node resolution order, shared by the
// handler and the cache-shard router so the two can never diverge: ?id=
// first, then ?phrase= with ?type= (canonical phrase before alias), then
// an untyped LookupAny. A non-zero badReq reports a malformed request
// with its error body; otherwise ok reports whether a node resolved.
func resolveNodeQuery(snap *ontology.Snapshot, q url.Values) (node ontology.Node, ok bool, badReq int, errb errorBody) {
	switch {
	case q.Get("id") != "":
		id, err := strconv.Atoi(q.Get("id"))
		if err != nil {
			return ontology.Node{}, false, http.StatusBadRequest, errBody(codeInvalidArgument, "invalid id: "+q.Get("id"))
		}
		node, ok = snap.Get(ontology.NodeID(id))
	case q.Get("phrase") != "":
		phrase := q.Get("phrase")
		if ts := q.Get("type"); ts != "" {
			t, err := ontology.ParseNodeType(ts)
			if err != nil {
				return ontology.Node{}, false, http.StatusBadRequest, errBody(codeInvalidArgument, err.Error())
			}
			node, ok = snap.Find(t, phrase)
			if !ok {
				if id, aok := snap.LookupAlias(t, phrase); aok {
					node, ok = snap.Get(id)
				}
			}
		} else if id, aok := snap.LookupAny(phrase); aok {
			node, ok = snap.Get(id)
		}
	default:
		return ontology.Node{}, false, http.StatusBadRequest, errBody(codeInvalidArgument, "need ?id= or ?phrase=")
	}
	return node, ok, 0, errorBody{}
}

func writeBody(w http.ResponseWriter, status int, body []byte, cacheHit bool) {
	w.Header().Set("Content-Type", "application/json")
	if cacheHit {
		w.Header().Set("X-Cache", "hit")
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) handleHealthz(st *state, r *http.Request) (int, any) {
	resp := map[string]any{
		"status":     "ok",
		"generation": st.gen,
		"nodes":      st.snap.Len(),
	}
	if st.shards != nil {
		resp["shards"] = st.shards.NumShards()
	}
	if st.proj != nil {
		resp["shard"] = st.proj.Shard
		resp["shards"] = st.proj.NumShards
		resp["home_nodes"] = st.proj.HomeCount
	}
	if ws := s.wal.Load(); ws != nil {
		resp["replica"] = ws.replica
		resp["wal_gen"] = ws.position()
		resp["checkpoint_gen"] = ws.checkpointGen()
	}
	return http.StatusOK, resp
}

// genSummary is the wire form of one retained generation.
type genSummary struct {
	Generation uint64 `json:"generation"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
}

func (s *Server) generations() []genSummary {
	gens := s.store.Generations()
	out := make([]genSummary, 0, len(gens))
	for _, g := range gens {
		out = append(out, genSummary{Generation: g.Gen, Nodes: g.Nodes, Edges: g.Edges})
	}
	return out
}

// shardSummary is the wire form of one shard's serving state: its
// per-shard generation plus the projection's home-node and stored-edge
// counts (a cross-shard edge is stored on both endpoint shards).
type shardSummary struct {
	Shard      int    `json:"shard"`
	Generation uint64 `json:"generation"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
}

func (s *Server) handleStats(st *state, r *http.Request) (int, any) {
	stats := st.snap.ComputeStats()
	resp := map[string]any{
		"generation":         st.gen,
		"loaded_at":          st.loadedAt.UTC().Format(time.RFC3339),
		"nodes":              st.snap.NodeCount(),
		"edges":              st.snap.EdgeCount(),
		"nodes_by_type":      stats.NodesByType,
		"edges_by_type":      stats.EdgesByType,
		"generations":        s.generations(),
		"max_search_results": s.opts.MaxSearchResults,
	}
	if st.shards != nil {
		// Scatter-gather: each shard's projection answers its own counts.
		shards := make([]shardSummary, st.shards.NumShards())
		for i := range shards {
			shards[i] = shardSummary{
				Shard:      i,
				Generation: st.shardGens[i],
				Nodes:      st.shards.HomeCount(i),
				Edges:      st.shards.Shard(i).EdgeCount(),
			}
		}
		resp["shards"] = shards
	}
	if st.proj != nil {
		// Per-shard process: report the owned slice of the union so a
		// router can sum exact whole-world counts (home nodes partition the
		// union; every union edge is owned by exactly one shard — the home
		// of its source).
		hs := st.proj.HomeStats()
		resp["shard"] = map[string]any{
			"shard":         st.proj.Shard,
			"shards":        st.proj.NumShards,
			"generation":    st.gen,
			"nodes":         st.proj.HomeCount,
			"edges":         st.snap.EdgeCount(), // stored (incl. ghost copies)
			"owned_edges":   st.proj.OwnedEdgeCount(),
			"nodes_by_type": hs.NodesByType,
			"edges_by_type": hs.EdgesByType,
			// The home-prefix term-gram index, from which a router builds
			// its term→shard routing table (see docs/ARCHITECTURE.md).
			"term_stats": st.proj.TermStats(),
		}
	}
	return http.StatusOK, resp
}

// apiNode is the wire form of a node: like ontology.Node but with the
// type rendered as its name instead of the persisted enum value.
type apiNode struct {
	ID       ontology.NodeID `json:"id"`
	Type     string          `json:"type"`
	Phrase   string          `json:"phrase"`
	Aliases  []string        `json:"aliases,omitempty"`
	Trigger  string          `json:"trigger,omitempty"`
	Location string          `json:"location,omitempty"`
	Day      int             `json:"day,omitempty"`
}

func toAPINode(n ontology.Node) apiNode {
	return apiNode{
		ID: n.ID, Type: n.Type.String(), Phrase: n.Phrase, Aliases: n.Aliases,
		Trigger: n.Trigger, Location: n.Location, Day: n.Day,
	}
}

// nodeDetail is the /v1/node payload: the node plus its neighborhood,
// grouped by edge type.
type nodeDetail struct {
	Node      apiNode             `json:"node"`
	Parents   map[string][]string `json:"parents,omitempty"`
	Children  map[string][]string `json:"children,omitempty"`
	Ancestors []string            `json:"ancestors,omitempty"`
}

func (s *Server) handleNode(st *state, r *http.Request) (int, any) {
	node, ok, badReq, errb := resolveNodeQuery(st.snap, r.URL.Query())
	if badReq != 0 {
		return badReq, errb
	}
	if !ok {
		return http.StatusNotFound, errBody(codeNotFound, "node not found")
	}
	d := nodeDetail{Node: toAPINode(node)}
	for et := ontology.EdgeType(0); et < ontology.NumEdgeTypes; et++ {
		for _, p := range st.snap.Parents(node.ID, et) {
			if d.Parents == nil {
				d.Parents = map[string][]string{}
			}
			d.Parents[et.String()] = append(d.Parents[et.String()], p.Phrase)
		}
		for _, c := range st.snap.Children(node.ID, et) {
			if d.Children == nil {
				d.Children = map[string][]string{}
			}
			d.Children[et.String()] = append(d.Children[et.String()], c.Phrase)
		}
	}
	for _, a := range st.snap.Ancestors(node.ID) {
		d.Ancestors = append(d.Ancestors, a.Phrase)
	}
	return http.StatusOK, d
}

func (s *Server) handleSearch(st *state, r *http.Request) (int, any) {
	p, bad, errb := parseSearchParams(r.URL.Query(), s.opts.MaxSearchResults)
	if bad != 0 {
		return bad, errb
	}
	q, limit := p.q, p.limit
	// Sharded states route the needle through the per-shard term-gram
	// indexes and merge cached per-shard partials; the merged hits are
	// identical to the single-snapshot scan (?scatter=full forces the
	// unrouted, uncached scan — the router's debugging bypass works
	// against the in-process server too). A per-shard process scans
	// only its own home-node prefix and renders union IDs — the router's
	// merge of K such responses is the same scatter-gather, stretched
	// across process boundaries.
	var results []ontology.Node
	idOf := func(n *ontology.Node) ontology.NodeID { return n.ID }
	switch {
	case st.proj != nil:
		results = st.proj.SearchHome(q, limit)
		idOf = func(n *ontology.Node) ontology.NodeID { return st.proj.UnionID(n.ID) }
	case st.shards != nil:
		if p.full {
			results = st.shards.Search(q, limit)
		} else {
			results = st.searchSharded(q, limit)
		}
	default:
		results = st.snap.Search(q, limit)
	}
	hits := make([]searchHit, 0, len(results))
	for i := range results {
		n := &results[i]
		hits = append(hits, searchHit{ID: idOf(n), Type: n.Type.String(), Phrase: n.Phrase})
	}
	if st.proj != nil {
		// The per-shard response carries the shard's generation so a
		// router can key cached partials by it and detect a republish that
		// raced its routing index. In-process modes omit it: their body
		// must stay byte-identical to the router's merged body.
		return http.StatusOK, map[string]any{"query": q, "count": len(hits), "results": hits, "generation": st.gen}
	}
	return http.StatusOK, map[string]any{"query": q, "count": len(hits), "results": hits}
}

// searchSharded is the sharded /v1/search read path: term-gram routing
// picks the candidate shards, each candidate's partial — its first limit
// home matches, as shard-local node copies — is served from (or inserted
// into) that shard's partial cache, and the partials merge through the
// CURRENT union index in union-ID order, truncated to limit.
//
// Equivalence to st.snap.Search(q, limit): home nodes partition the union
// preserving its ID order, so each shard's first limit home matches are a
// superset of its contribution to the global first limit; gram pruning
// only drops shards with zero matches; and rendering through the union
// index maps each home copy to its exact union node. Cached partials
// cannot go stale — a partial depends only on its shard's home contents,
// and a publish that changes those installs a fresh cache for that shard.
func (st *state) searchSharded(q string, limit int) []ontology.Node {
	if limit <= 0 {
		return nil
	}
	needle := strings.ToLower(q)
	if needle == "" {
		return nil
	}
	if len(st.searchPartials) != st.shards.NumShards() {
		return st.shards.Search(q, limit)
	}
	union := st.shards.Union()
	key := searchKey(needle, limit)
	var out []ontology.Node
	for _, sh := range st.shards.CandidateShards(needle) {
		partial, ok := st.searchPartials[sh].get(key)
		if !ok {
			partial = st.shards.SearchShardHome(sh, needle, limit)
			st.searchPartials[sh].put(key, partial)
		}
		for i := range partial {
			if id, found := union.Lookup(partial[i].Type, partial[i].Phrase); found {
				out = append(out, *union.At(id))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// searchHit is the wire form of one /v1/search result (IDs are union IDs
// in every serving mode, which is what lets the router merge shard
// responses in union order).
type searchHit struct {
	ID     ontology.NodeID `json:"id"`
	Type   string          `json:"type"`
	Phrase string          `json:"phrase"`
}

// tagRequest is the /v1/tag input, via JSON body (POST) or query params
// (GET, entities comma-separated).
type tagRequest struct {
	Title    string   `json:"title"`
	Content  string   `json:"content"`
	Entities []string `json:"entities"`
}

type tagResult struct {
	Phrase string  `json:"phrase"`
	Type   string  `json:"type"`
	Score  float64 `json:"score"`
}

func (s *Server) handleTag(st *state, r *http.Request) (int, any) {
	if mode := r.URL.Query().Get("partial"); mode != "" {
		return st.handleTagPartial(mode, r)
	}
	doc, bad, errb := parseTagDoc(r)
	if bad != 0 {
		return bad, errb
	}
	// In-process sharded states tag through per-shard-scope partials merged
	// exactly as the router merges shard HTTP responses; the single path is
	// internally the merge of one whole-view partial, so every mode runs the
	// same extraction and fold.
	if st.shards != nil {
		return st.tagSharded(doc)
	}
	return http.StatusOK, tagResponse(st.concepts.TagConcepts(doc), st.events.TagEvents(doc))
}

func (s *Server) handleQueryRewrite(st *state, r *http.Request) (int, any) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return http.StatusBadRequest, errBody(codeInvalidArgument, "need ?q=")
	}
	if r.URL.Query().Get("partial") != "" {
		return http.StatusOK, rewritePartialBody{Generation: st.gen, Partial: st.query.Partial(st.appScope(), q)}
	}
	if st.shards != nil {
		return st.rewriteSharded(q)
	}
	return http.StatusOK, rewriteResponse(st.query.Analyze(q))
}

func (s *Server) handleStory(st *state, r *http.Request) (int, any) {
	q := r.URL.Query()
	if mode := q.Get("partial"); mode != "" {
		if mode != "fragments" {
			return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid partial: "+mode+` (want "fragments")`)
		}
		return http.StatusOK, storyFragsBody{Generation: st.gen, Events: storytree.FragmentsFromScope(st.appScope())}
	}
	seed := q.Get("seed")
	if seed == "" {
		return http.StatusBadRequest, errBody(codeInvalidArgument, "need ?seed=")
	}
	// The seed resolves like a typed /v1/node query (canonical phrase, then
	// alias), so mixed-case seeds and aliases form the same tree as the
	// event's canonical phrase and the 404 envelopes match /v1/node's.
	phrase, notFound, errb := resolveStorySeed(st.snap, seed)
	if notFound != 0 {
		return notFound, errb
	}
	tree, ok := storytree.FormFromEvents(st.storyFragments(), phrase, s.enc, s.story)
	if !ok {
		return http.StatusNotFound, errBody(codeNotFound, "no event %q in the ontology", seed)
	}
	return http.StatusOK, storyResponse(tree)
}

func (s *Server) handleMetrics(st *state, r *http.Request) (int, any) {
	entries := st.cache.len()
	for _, c := range st.shardCaches {
		entries += c.len()
	}
	return http.StatusOK, Metrics{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Generation:    st.gen,
		CacheEntries:  entries,
		Endpoints:     s.metrics.snapshot(),
	}
}

func (s *Server) handleReload(st *state, r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errBody(codeMethodNotAllowed, "use POST")
	}
	if s.wal.Load() != nil {
		// A reload on a replica would publish a world outside the delta-log
		// lineage, silently desynchronizing it from its peers.
		return http.StatusServiceUnavailable, errBody(codeReadOnlyReplica, "replica follows a delta log; restart it to reload")
	}
	if s.shardMode {
		// Per-shard process: reload through the shard-projection loader.
		if s.opts.ShardLoader == nil {
			return http.StatusServiceUnavailable, errBody(codeUnavailable, "no shard loader configured")
		}
		p, err := s.opts.ShardLoader()
		if err != nil {
			return http.StatusBadGateway, errBody(codeBadUpstream, "load shard projection: "+err.Error())
		}
		gen, err := s.SwapShard(p)
		if err != nil {
			return http.StatusInternalServerError, errBody(codeInternal, "swap shard projection: "+err.Error())
		}
		return http.StatusOK, map[string]any{
			"old_generation": st.gen,
			"generation":     gen,
			"shard":          p.Shard,
			"shards":         []shardWriteStatus{{Shard: p.Shard, Generation: gen, Applied: true}},
			"home_nodes":     p.HomeCount,
			"nodes":          p.Snap.NodeCount(),
			"edges":          p.Snap.EdgeCount(),
		}
	}
	if s.opts.Loader == nil {
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "no snapshot loader configured")
	}
	snap, err := s.opts.Loader()
	if err != nil {
		return http.StatusBadGateway, errBody(codeBadUpstream, "load snapshot: "+err.Error())
	}
	var gen uint64
	var rows []shardWriteStatus
	if st.shards != nil {
		// A reload replaces the whole world: re-partition the fresh
		// snapshot and republish every shard.
		ss, err := ontology.ShardSnapshot(snap, st.shards.NumShards())
		if err != nil {
			return http.StatusInternalServerError, errBody(codeInternal, "shard snapshot: "+err.Error())
		}
		gen = s.SwapSharded(ss, nil)
		rows = s.writeStatusRows(nil)
	} else {
		gen = s.Swap(snap)
		rows = []shardWriteStatus{{Shard: 0, Generation: gen, Applied: true}}
	}
	return http.StatusOK, map[string]any{
		"old_generation": st.gen,
		"generation":     gen,
		"shards":         rows,
		"nodes":          snap.NodeCount(),
		"edges":          snap.EdgeCount(),
	}
}

// writeStatusRows renders the sharded server's per-shard write-status
// rows from the current per-shard generations; applied[i]=false marks a
// shard the write left untouched (nil marks every shard applied).
func (s *Server) writeStatusRows(applied []bool) []shardWriteStatus {
	gens := s.shardStores.CurrentGens()
	rows := make([]shardWriteStatus, len(gens))
	for i := range rows {
		rows[i] = shardWriteStatus{Shard: i, Generation: gens[i], Applied: applied == nil || (i < len(applied) && applied[i])}
	}
	return rows
}

// handleIngest applies an incremental update batch: the request body is a
// delta.Batch (new docs + clicks); the host's ingest callback delta-mines
// it into the next generation, which hot-swaps in atomically. In-flight
// readers keep the generation they started on.
func (s *Server) handleIngest(st *state, r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errBody(codeMethodNotAllowed, "use POST")
	}
	if s.wal.Load() != nil {
		// A delta-log replica applies batches from the log only; a direct
		// write would fork its lineage from its peers'.
		return http.StatusServiceUnavailable, errBody(codeReadOnlyReplica, "replica follows a delta log; write through the router")
	}
	if s.opts.Ingest == nil && s.opts.IngestSharded == nil && s.opts.ShardIngest == nil {
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "no ingester configured (run giantd with -build)")
	}
	if s.opts.ShardIngest != nil && !s.shardMode {
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "per-shard ingester on a non-shard server (build it with serve.NewShard)")
	}
	if s.shardMode && s.opts.ShardIngest == nil {
		// A whole-world ingester on a per-shard server would publish a
		// state with no shard identity, silently de-sharding the backend.
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "whole-world ingester on a per-shard server (configure Options.ShardIngest)")
	}
	if !s.shardMode && s.opts.IngestSharded != nil && s.shardStores == nil {
		// The sharded ingest path publishes per shard; a server built
		// with New has no shard stores to publish into.
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "sharded ingester on an unsharded server (build it with serve.NewSharded)")
	}
	if !s.shardMode && s.opts.IngestSharded == nil && s.shardStores != nil {
		// And the mirror image: a plain ingester would publish an
		// unsharded state, silently dropping scatter-gather serving and
		// per-shard generations on a NewSharded server.
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "unsharded ingester on a sharded server (configure Options.IngestSharded)")
	}
	var batch delta.Batch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		return http.StatusBadRequest, errBody(codeInvalidArgument, "decode batch: "+err.Error())
	}
	return s.ingestBatch(batch)
}

// ingestBatch applies one decoded batch through the configured ingest
// path and publishes the result — the shared core of POST /v1/ingest and
// the delta-log Follower. It holds the swap lock across compute + publish
// so concurrent ingests apply and publish in the same order (readers
// never take this lock).
func (s *Server) ingestBatch(batch delta.Batch) (int, any) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	st := s.cur.Load()
	var (
		snap    *ontology.Snapshot
		d       *delta.Delta
		touched []bool
		err     error
		sharded *ontology.ShardedSnapshot
		proj    *ontology.ShardProjection
	)
	switch {
	case s.opts.ShardIngest != nil:
		proj, d, touched, err = s.opts.ShardIngest(batch)
		if err == nil {
			snap = proj.Snap
		}
	case s.opts.IngestSharded != nil:
		sharded, d, touched, err = s.opts.IngestSharded(batch)
		if err == nil {
			snap = sharded.Union()
		}
	default:
		snap, d, err = s.opts.Ingest(batch)
	}
	if err != nil {
		// Batch-validation failures are the client's fault; anything else
		// is an internal delta-pipeline failure and must surface as 5xx.
		if errors.Is(err, delta.ErrInvalidBatch) {
			return http.StatusUnprocessableEntity, errBody(codeInvalidBatch, "ingest: "+err.Error())
		}
		return http.StatusInternalServerError, errBody(codeInternal, "ingest: "+err.Error())
	}
	var gen uint64
	var rows []shardWriteStatus
	republished := false
	switch {
	case proj != nil:
		// Per-shard process: republish — and mint a generation — only when
		// the delta touched this shard (or the served projection diverged
		// from the one serving RIGHT NOW, read under the swap lock); an
		// untouched ingest still refreshes the state so union IDs stay
		// current, keeping responses identical to the in-process path.
		cur := s.cur.Load()
		republished = touched == nil ||
			(proj.Shard < len(touched) && touched[proj.Shard]) ||
			cur == nil || cur.proj == nil || cur.proj.Snap != proj.Snap
		gen = s.publishShardLocked(proj, republished)
		rows = []shardWriteStatus{{Shard: proj.Shard, Generation: gen, Applied: republished}}
	case sharded != nil:
		// Republish only the shards the delta touched: untouched shards
		// keep their projection and their generation. Per-shard node
		// caches carry over for untouched shards only when the delta
		// provably cannot change any cached body (see carriesNodeCaches).
		var applied []bool
		gen, applied = s.publishShardedLocked(sharded, touched, carriesNodeCaches(d))
		rows = s.writeStatusRows(applied)
	default:
		gen = s.publishLocked(snap, s.store.Push(snap))
		rows = []shardWriteStatus{{Shard: 0, Generation: gen, Applied: true}}
	}
	resp := map[string]any{
		"old_generation": st.gen,
		"generation":     gen,
		"shards":         rows,
		"nodes":          snap.NodeCount(),
		"edges":          snap.EdgeCount(),
	}
	if sharded != nil || proj != nil {
		var ts []int
		for i, t := range touched {
			if t {
				ts = append(ts, i)
			}
		}
		resp["touched_shards"] = ts
	}
	if sharded != nil {
		resp["shard_generations"] = s.shardStores.CurrentGens()
	}
	if proj != nil {
		resp["shard"] = proj.Shard
		resp["republished"] = republished
		resp["home_nodes"] = proj.HomeCount
	}
	if d != nil {
		resp["delta"] = map[string]any{
			"day":        d.Day,
			"added":      len(d.Add),
			"edges":      len(d.Edges),
			"reweighted": len(d.Reweight),
			"touched":    len(d.Touch),
			"retired":    len(d.Retire),
			"seeds":      len(d.Seeds),
		}
	}
	return http.StatusOK, resp
}

// carriesNodeCaches decides whether untouched shards' /v1/node caches may
// survive a sharded ingest publish. A cached body can go stale two ways a
// touched-shard eviction does not cover: retirements renumber union IDs
// of every later node, and a new IsA edge — even between two nodes homed
// on touched shards — extends the TRANSITIVE ancestor chain of their
// descendants on any shard. Direct parents/children are safe (an added
// edge touches both endpoints' home shards), as are reweights (node
// bodies render no weights), touches and non-IsA additions.
func carriesNodeCaches(d *delta.Delta) bool {
	if d == nil {
		return true
	}
	if len(d.Retire) > 0 {
		return false
	}
	for i := range d.Edges {
		if d.Edges[i].Type == ontology.IsA {
			return false
		}
	}
	return true
}

// handleRollback reverts serving to the previous retained generation —
// the operational escape hatch when an ingested batch turns out bad. The
// discarded generation's number is never reused.
func (s *Server) handleRollback(st *state, r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errBody(codeMethodNotAllowed, "use POST")
	}
	if s.shardMode {
		// A rollback is a whole-world revert: rolling back one shard of a
		// multi-process deployment would silently desynchronize it from
		// its peers' ingest lineage.
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "rollback is not supported on a per-shard server (restart the fleet from a known-good artifact instead)")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	g, err := s.store.Rollback()
	if err != nil {
		return http.StatusConflict, errBody(codeConflict, err.Error())
	}
	var gen uint64
	var rows []shardWriteStatus
	if st.shards != nil {
		// Rollback is a whole-world revert: re-partition the previous
		// union and republish every shard (shard generations advance — a
		// rolled-back world is still a new per-shard publication).
		ss, serr := ontology.ShardSnapshot(g.Snap, st.shards.NumShards())
		if serr != nil {
			return http.StatusInternalServerError, errBody(codeInternal, "shard snapshot: "+serr.Error())
		}
		for i := 0; i < ss.NumShards(); i++ {
			s.shardStores.Push(i, ss.Shard(i))
		}
		// The union generation is reused (the store already popped to
		// g.Gen), so publish directly instead of re-pushing. nil caches
		// and partials: a rollback drops every cached body and partial.
		gen = s.storeShardedStateLocked(ss, g.Gen, nil, nil)
		rows = s.writeStatusRows(nil)
	} else {
		gen = s.publishLocked(g.Snap, g.Gen)
		rows = []shardWriteStatus{{Shard: 0, Generation: gen, Applied: true}}
	}
	return http.StatusOK, map[string]any{
		"old_generation": st.gen,
		"generation":     gen,
		"shards":         rows,
		"nodes":          g.Nodes,
		"edges":          g.Edges,
	}
}

// Run serves handler on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to grace.
func Run(ctx context.Context, addr string, handler http.Handler, grace time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
