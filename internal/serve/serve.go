// Package serve is the online tier of the reproduction: an HTTP server that
// exposes a built Attention Ontology the way the paper's production system
// does (§4 — document tagging, query conceptualization/rewriting, story
// trees) plus operational endpoints (stats, search, metrics, health,
// reload).
//
// The server never serves from the mutable build-time *ontology.Ontology.
// It holds an immutable *ontology.Snapshot — together with the taggers, the
// query understander and a bounded LRU response cache derived from it — in
// a single atomically-swapped state pointer. Request handlers load that
// pointer once and then perform lock-free reads for the rest of the
// request; /v1/reload indexes a replacement snapshot off to the side and
// publishes it with one atomic store, so serving continues uninterrupted on
// the old snapshot until the new one is fully built. The retired snapshot,
// cache included, is garbage-collected once in-flight requests drain.
//
// Endpoints:
//
//	GET  /healthz           liveness + current generation
//	GET  /v1/stats          node/edge counts per type
//	GET  /v1/node           node detail by ?id= or ?phrase=[&type=]
//	GET  /v1/search         substring search over phrases and aliases
//	GET  /v1/tag            tag a document (?title=&content=&entities=a,b)
//	POST /v1/tag            tag a document (JSON body)
//	GET  /v1/query/rewrite  conceptualize + rewrite a query (?q=)
//	GET  /v1/story          story tree seeded at an event (?seed=)
//	GET  /v1/metrics        per-endpoint QPS/latency/cache counters
//	POST /v1/reload         hot-swap a freshly loaded snapshot
//	POST /v1/ingest         apply an incremental update batch (delta mining)
//	POST /v1/rollback       revert to the previous retained generation
//
// Every published snapshot — initial load, reload, ingest — is pushed
// into a bounded ontology.Store of recent generations, so /v1/rollback
// can revert a bad update with a pointer swap and zero rebuild cost.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/queryund"
	"giant/internal/storytree"
	"giant/internal/tagging"
)

// Options configure a Server.
type Options struct {
	// CacheSize bounds the per-snapshot LRU response cache (entries);
	// 0 means DefaultCacheSize, negative disables caching.
	CacheSize int
	// Loader supplies a replacement snapshot for /v1/reload (typically
	// re-reading the ontology file or re-running the build). Nil disables
	// the endpoint.
	Loader func() (*ontology.Snapshot, error)
	// Ingest applies an incremental update batch and returns the next
	// snapshot generation plus the computed delta (see giant.System.Ingest).
	// Nil disables POST /v1/ingest.
	Ingest func(delta.Batch) (*ontology.Snapshot, *delta.Delta, error)
	// History bounds the versioned snapshot store backing /v1/rollback;
	// 0 means ontology.DefaultRetention.
	History int
	// ConceptContext optionally enriches concept-tagger representations
	// with the build's concept -> top clicked titles map.
	ConceptContext map[string][]string
	// ConceptContextFn, when set, supplies a fresh concept-context map for
	// every published state (so live ingest keeps tagger representations
	// current) and takes precedence over ConceptContext. It is called
	// under the swap lock, serialized with Ingest.
	ConceptContextFn func() map[string][]string
	// Duet optionally supplies a trained event/topic matcher; nil degrades
	// event tagging to LCS-only.
	Duet *tagging.Duet
	// MaxSearchResults caps /v1/search result counts; 0 means 100.
	MaxSearchResults int
	// Story configures story-tree formation; nil means
	// storytree.DefaultOptions.
	Story *storytree.Options
}

// DefaultCacheSize bounds the response cache when Options.CacheSize is 0.
const DefaultCacheSize = 1024

// state bundles one snapshot with everything derived from it. It is
// immutable after construction and swapped as a unit, so a request that
// loaded a state sees a consistent ontology + taggers + cache throughout.
type state struct {
	snap     *ontology.Snapshot
	concepts *tagging.ConceptTagger
	events   *tagging.EventTagger
	query    *queryund.Understander
	// storyEvents is the snapshot's event list materialized once for
	// story-tree formation, so /v1/story doesn't re-walk the ontology's
	// Involve edges on every request.
	storyEvents []*storytree.EventNode
	cache       *lruCache
	gen         uint64
	loadedAt    time.Time
}

// Server serves a hot-swappable ontology snapshot over HTTP.
type Server struct {
	opts    Options
	cur     atomic.Pointer[state]
	store   *ontology.Store // versioned generation history (rollback)
	swapMu  sync.Mutex      // serializes Swap/reload/ingest/rollback; readers never take it
	metrics *metricsRegistry
	mux     *http.ServeMux
	enc     storytree.Encoder
	story   storytree.Options
}

// endpointNames fixes the metrics registry key set.
var endpointNames = []string{
	"healthz", "stats", "node", "search", "tag", "query_rewrite", "story", "metrics", "reload", "ingest", "rollback",
}

// New builds a Server over an initial snapshot.
func New(snap *ontology.Snapshot, opts Options) *Server {
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxSearchResults <= 0 {
		opts.MaxSearchResults = 100
	}
	s := &Server{
		opts:    opts,
		store:   ontology.NewStore(opts.History),
		metrics: newMetricsRegistry(endpointNames),
		enc:     storytree.NewBagOfTokensEncoder(16, nil),
		story:   storytree.DefaultOptions(),
	}
	if opts.Story != nil {
		s.story = *opts.Story
	}
	s.Swap(snap)
	s.routes()
	return s
}

// Swap indexes snap into a full serving state (taggers, understander,
// fresh cache) and atomically publishes it, returning the new generation.
// In-flight requests keep the state they started with; new requests see
// the new snapshot. The snapshot also joins the versioned generation
// store, so a later /v1/rollback can revert to it. Safe to call while
// serving.
func (s *Server) Swap(snap *ontology.Snapshot) uint64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	return s.publishLocked(snap, s.store.Push(snap))
}

// publishLocked builds the serving state for (snap, gen) and atomically
// publishes it; the caller holds swapMu.
func (s *Server) publishLocked(snap *ontology.Snapshot, gen uint64) uint64 {
	conceptCtx := s.opts.ConceptContext
	if s.opts.ConceptContextFn != nil {
		conceptCtx = s.opts.ConceptContextFn()
	}
	st := &state{
		snap:        snap,
		concepts:    tagging.NewConceptTagger(snap, conceptCtx),
		events:      tagging.NewEventTagger(snap, s.opts.Duet),
		query:       queryund.New(snap),
		storyEvents: storytree.EventsFromView(snap),
		cache:       newLRUCache(s.opts.CacheSize),
		gen:         gen,
		loadedAt:    time.Now(),
	}
	s.cur.Store(st)
	return st.gen
}

// Current returns the snapshot serving right now.
func (s *Server) Current() *ontology.Snapshot {
	return s.cur.Load().snap
}

// Generation returns the current snapshot generation (1 for the initial
// snapshot, +1 per swap).
func (s *Server) Generation() uint64 {
	return s.cur.Load().gen
}

// Handler returns the HTTP handler for the server's endpoint set.
func (s *Server) Handler() http.Handler {
	return s.mux
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.endpoint("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("/v1/stats", s.endpoint("stats", false, s.handleStats))
	s.mux.HandleFunc("/v1/node", s.endpoint("node", true, s.handleNode))
	s.mux.HandleFunc("/v1/search", s.endpoint("search", true, s.handleSearch))
	s.mux.HandleFunc("/v1/tag", s.endpoint("tag", false, s.handleTag))
	s.mux.HandleFunc("/v1/query/rewrite", s.endpoint("query_rewrite", true, s.handleQueryRewrite))
	s.mux.HandleFunc("/v1/story", s.endpoint("story", true, s.handleStory))
	s.mux.HandleFunc("/v1/metrics", s.endpoint("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("/v1/reload", s.endpoint("reload", false, s.handleReload))
	s.mux.HandleFunc("/v1/ingest", s.endpoint("ingest", false, s.handleIngest))
	s.mux.HandleFunc("/v1/rollback", s.endpoint("rollback", false, s.handleRollback))
}

type errorBody struct {
	Error string `json:"error"`
}

// handlerFunc is one endpoint's logic: it reads only from st (never from
// s.cur, which may have been swapped mid-request) and returns a status and
// a JSON-marshalable payload.
type handlerFunc func(st *state, r *http.Request) (int, any)

// endpoint wraps an endpoint with metrics and, for cacheable GETs, the
// per-snapshot LRU response cache (keyed by request URI, 200s only).
func (s *Server) endpoint(name string, cacheable bool, fn handlerFunc) http.HandlerFunc {
	m := s.metrics.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st := s.cur.Load()
		useCache := cacheable && r.Method == http.MethodGet
		if useCache {
			if body := st.cache.get(r.URL.RequestURI()); body != nil {
				writeBody(w, http.StatusOK, body, true)
				m.observe(http.StatusOK, time.Since(start), true)
				return
			}
		}
		status, payload := fn(st, r)
		body, err := json.Marshal(payload)
		if err != nil {
			status = http.StatusInternalServerError
			body, _ = json.Marshal(errorBody{Error: "encode response: " + err.Error()})
		}
		// Terminate the body before it can be cached: cached bytes are
		// served verbatim to any number of concurrent readers, so nothing
		// may append to (and thereby mutate) the shared backing array later.
		body = append(body, '\n')
		if useCache && status == http.StatusOK {
			st.cache.put(r.URL.RequestURI(), body)
		}
		writeBody(w, status, body, false)
		m.observe(status, time.Since(start), false)
	}
}

func writeBody(w http.ResponseWriter, status int, body []byte, cacheHit bool) {
	w.Header().Set("Content-Type", "application/json")
	if cacheHit {
		w.Header().Set("X-Cache", "hit")
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) handleHealthz(st *state, r *http.Request) (int, any) {
	return http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": st.gen,
		"nodes":      st.snap.Len(),
	}
}

// genSummary is the wire form of one retained generation.
type genSummary struct {
	Generation uint64 `json:"generation"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
}

func (s *Server) generations() []genSummary {
	gens := s.store.Generations()
	out := make([]genSummary, 0, len(gens))
	for _, g := range gens {
		out = append(out, genSummary{Generation: g.Gen, Nodes: g.Nodes, Edges: g.Edges})
	}
	return out
}

func (s *Server) handleStats(st *state, r *http.Request) (int, any) {
	stats := st.snap.ComputeStats()
	return http.StatusOK, map[string]any{
		"generation":    st.gen,
		"loaded_at":     st.loadedAt.UTC().Format(time.RFC3339),
		"nodes":         st.snap.NodeCount(),
		"edges":         st.snap.EdgeCount(),
		"nodes_by_type": stats.NodesByType,
		"edges_by_type": stats.EdgesByType,
		"generations":   s.generations(),
	}
}

// apiNode is the wire form of a node: like ontology.Node but with the
// type rendered as its name instead of the persisted enum value.
type apiNode struct {
	ID       ontology.NodeID `json:"id"`
	Type     string          `json:"type"`
	Phrase   string          `json:"phrase"`
	Aliases  []string        `json:"aliases,omitempty"`
	Trigger  string          `json:"trigger,omitempty"`
	Location string          `json:"location,omitempty"`
	Day      int             `json:"day,omitempty"`
}

func toAPINode(n ontology.Node) apiNode {
	return apiNode{
		ID: n.ID, Type: n.Type.String(), Phrase: n.Phrase, Aliases: n.Aliases,
		Trigger: n.Trigger, Location: n.Location, Day: n.Day,
	}
}

// nodeDetail is the /v1/node payload: the node plus its neighborhood,
// grouped by edge type.
type nodeDetail struct {
	Node      apiNode             `json:"node"`
	Parents   map[string][]string `json:"parents,omitempty"`
	Children  map[string][]string `json:"children,omitempty"`
	Ancestors []string            `json:"ancestors,omitempty"`
}

func (s *Server) handleNode(st *state, r *http.Request) (int, any) {
	q := r.URL.Query()
	var (
		node ontology.Node
		ok   bool
	)
	switch {
	case q.Get("id") != "":
		id, err := strconv.Atoi(q.Get("id"))
		if err != nil {
			return http.StatusBadRequest, errorBody{Error: "invalid id: " + q.Get("id")}
		}
		node, ok = st.snap.Get(ontology.NodeID(id))
	case q.Get("phrase") != "":
		phrase := q.Get("phrase")
		if ts := q.Get("type"); ts != "" {
			t, err := ontology.ParseNodeType(ts)
			if err != nil {
				return http.StatusBadRequest, errorBody{Error: err.Error()}
			}
			node, ok = st.snap.Find(t, phrase)
			if !ok {
				if id, aok := st.snap.LookupAlias(t, phrase); aok {
					node, ok = st.snap.Get(id)
				}
			}
		} else {
			if id, aok := st.snap.LookupAny(phrase); aok {
				node, ok = st.snap.Get(id)
			}
		}
	default:
		return http.StatusBadRequest, errorBody{Error: "need ?id= or ?phrase="}
	}
	if !ok {
		return http.StatusNotFound, errorBody{Error: "node not found"}
	}
	d := nodeDetail{Node: toAPINode(node)}
	for et := ontology.EdgeType(0); et < ontology.NumEdgeTypes; et++ {
		for _, p := range st.snap.Parents(node.ID, et) {
			if d.Parents == nil {
				d.Parents = map[string][]string{}
			}
			d.Parents[et.String()] = append(d.Parents[et.String()], p.Phrase)
		}
		for _, c := range st.snap.Children(node.ID, et) {
			if d.Children == nil {
				d.Children = map[string][]string{}
			}
			d.Children[et.String()] = append(d.Children[et.String()], c.Phrase)
		}
	}
	for _, a := range st.snap.Ancestors(node.ID) {
		d.Ancestors = append(d.Ancestors, a.Phrase)
	}
	return http.StatusOK, d
}

func (s *Server) handleSearch(st *state, r *http.Request) (int, any) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return http.StatusBadRequest, errorBody{Error: "need ?q="}
	}
	limit := 10
	if ls := r.URL.Query().Get("limit"); ls != "" {
		l, err := strconv.Atoi(ls)
		if err != nil || l <= 0 {
			return http.StatusBadRequest, errorBody{Error: "invalid limit: " + ls}
		}
		limit = l
	}
	if limit > s.opts.MaxSearchResults {
		limit = s.opts.MaxSearchResults
	}
	results := st.snap.Search(q, limit)
	type hit struct {
		ID     ontology.NodeID `json:"id"`
		Type   string          `json:"type"`
		Phrase string          `json:"phrase"`
	}
	hits := make([]hit, 0, len(results))
	for _, n := range results {
		hits = append(hits, hit{ID: n.ID, Type: n.Type.String(), Phrase: n.Phrase})
	}
	return http.StatusOK, map[string]any{"query": q, "count": len(hits), "results": hits}
}

// tagRequest is the /v1/tag input, via JSON body (POST) or query params
// (GET, entities comma-separated).
type tagRequest struct {
	Title    string   `json:"title"`
	Content  string   `json:"content"`
	Entities []string `json:"entities"`
}

type tagResult struct {
	Phrase string  `json:"phrase"`
	Type   string  `json:"type"`
	Score  float64 `json:"score"`
}

func (s *Server) handleTag(st *state, r *http.Request) (int, any) {
	var req tagRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Title, req.Content = q.Get("title"), q.Get("content")
		if es := q.Get("entities"); es != "" {
			req.Entities = strings.Split(es, ",")
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, errorBody{Error: "decode body: " + err.Error()}
		}
	default:
		return http.StatusMethodNotAllowed, errorBody{Error: "use GET or POST"}
	}
	if req.Title == "" && req.Content == "" {
		return http.StatusBadRequest, errorBody{Error: "need a title or content"}
	}
	doc := &tagging.Document{Title: req.Title, Content: req.Content, Entities: req.Entities}
	toResults := func(tags []tagging.Tag) []tagResult {
		out := make([]tagResult, 0, len(tags))
		for _, t := range tags {
			out = append(out, tagResult{Phrase: t.Phrase, Type: t.Type.String(), Score: t.Score})
		}
		return out
	}
	return http.StatusOK, map[string]any{
		"concepts": toResults(st.concepts.TagConcepts(doc)),
		"events":   toResults(st.events.TagEvents(doc)),
	}
}

func (s *Server) handleQueryRewrite(st *state, r *http.Request) (int, any) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return http.StatusBadRequest, errorBody{Error: "need ?q="}
	}
	a := st.query.Analyze(q)
	return http.StatusOK, map[string]any{
		"query":           a.Query,
		"concept":         a.Concept,
		"entity":          a.Entity,
		"rewrites":        a.Rewrites,
		"recommendations": a.Recommendations,
	}
}

func (s *Server) handleStory(st *state, r *http.Request) (int, any) {
	seed := r.URL.Query().Get("seed")
	if seed == "" {
		return http.StatusBadRequest, errorBody{Error: "need ?seed="}
	}
	tree, ok := storytree.FormFromEvents(st.storyEvents, seed, s.enc, s.story)
	if !ok {
		return http.StatusNotFound, errorBody{Error: fmt.Sprintf("no event %q in the ontology", seed)}
	}
	type event struct {
		Phrase   string   `json:"phrase"`
		Trigger  string   `json:"trigger,omitempty"`
		Location string   `json:"location,omitempty"`
		Day      int      `json:"day"`
		Entities []string `json:"entities,omitempty"`
	}
	branches := make([][]event, 0, len(tree.Branches))
	for _, b := range tree.Branches {
		branch := make([]event, 0, len(b))
		for _, e := range b {
			branch = append(branch, event{Phrase: e.Phrase, Trigger: e.Trigger, Location: e.Location, Day: e.Day, Entities: e.Entities})
		}
		branches = append(branches, branch)
	}
	return http.StatusOK, map[string]any{"seed": tree.Seed, "branches": branches}
}

func (s *Server) handleMetrics(st *state, r *http.Request) (int, any) {
	return http.StatusOK, Metrics{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Generation:    st.gen,
		CacheEntries:  st.cache.len(),
		Endpoints:     s.metrics.snapshot(),
	}
}

func (s *Server) handleReload(st *state, r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errorBody{Error: "use POST"}
	}
	if s.opts.Loader == nil {
		return http.StatusServiceUnavailable, errorBody{Error: "no snapshot loader configured"}
	}
	snap, err := s.opts.Loader()
	if err != nil {
		return http.StatusBadGateway, errorBody{Error: "load snapshot: " + err.Error()}
	}
	gen := s.Swap(snap)
	return http.StatusOK, map[string]any{
		"old_generation": st.gen,
		"generation":     gen,
		"nodes":          snap.NodeCount(),
		"edges":          snap.EdgeCount(),
	}
}

// handleIngest applies an incremental update batch: the request body is a
// delta.Batch (new docs + clicks); the host's ingest callback delta-mines
// it into the next generation, which hot-swaps in atomically. In-flight
// readers keep the generation they started on.
func (s *Server) handleIngest(st *state, r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errorBody{Error: "use POST"}
	}
	if s.opts.Ingest == nil {
		return http.StatusServiceUnavailable, errorBody{Error: "no ingester configured (run giantd with -build)"}
	}
	var batch delta.Batch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		return http.StatusBadRequest, errorBody{Error: "decode batch: " + err.Error()}
	}
	// Hold the swap lock across compute + publish so concurrent ingests
	// apply and publish in the same order (readers never take this lock).
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	snap, d, err := s.opts.Ingest(batch)
	if err != nil {
		// Batch-validation failures are the client's fault; anything else
		// is an internal delta-pipeline failure and must surface as 5xx.
		if errors.Is(err, delta.ErrInvalidBatch) {
			return http.StatusUnprocessableEntity, errorBody{Error: "ingest: " + err.Error()}
		}
		return http.StatusInternalServerError, errorBody{Error: "ingest: " + err.Error()}
	}
	gen := s.publishLocked(snap, s.store.Push(snap))
	resp := map[string]any{
		"old_generation": st.gen,
		"generation":     gen,
		"nodes":          snap.NodeCount(),
		"edges":          snap.EdgeCount(),
	}
	if d != nil {
		resp["delta"] = map[string]any{
			"day":        d.Day,
			"added":      len(d.Add),
			"edges":      len(d.Edges),
			"reweighted": len(d.Reweight),
			"touched":    len(d.Touch),
			"retired":    len(d.Retire),
			"seeds":      len(d.Seeds),
		}
	}
	return http.StatusOK, resp
}

// handleRollback reverts serving to the previous retained generation —
// the operational escape hatch when an ingested batch turns out bad. The
// discarded generation's number is never reused.
func (s *Server) handleRollback(st *state, r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errorBody{Error: "use POST"}
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	g, err := s.store.Rollback()
	if err != nil {
		return http.StatusConflict, errorBody{Error: err.Error()}
	}
	gen := s.publishLocked(g.Snap, g.Gen)
	return http.StatusOK, map[string]any{
		"old_generation": st.gen,
		"generation":     gen,
		"nodes":          g.Nodes,
		"edges":          g.Edges,
	}
}

// Run serves handler on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to grace.
func Run(ctx context.Context, addr string, handler http.Handler, grace time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
