package serve

// The scatter-gather search pin: the sharded read path — term-gram shard
// routing, per-shard partials served from generation-keyed caches, merged
// through the current union — must be byte-identical to the plain
// single-snapshot scan, for every shard count, every limit, cold and
// warm, and through day-by-day ingest replay. The harness is
// property-style: randomized (but seed-pinned) workloads of hit-heavy,
// miss-heavy, prefix-shared and alias-typed queries, replayed against a
// reference New(snap) server over the identical world.
//
// The same file pins the partial-cache lifecycle (republish one shard →
// only that shard's partials drop; rollback/reload drop all), hammers
// concurrent search against live ingest (every 200 body must equal SOME
// published generation's answer — a cache/union mismatch cannot hide),
// and covers the router: per-shard limit plumbing, cache invalidation on
// writes vs ?scatter=full, and the documented cached-partial-masks-a-
// down-backend tradeoff.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"giant/internal/delta"
	"giant/internal/ontology"
)

// corpusWords share prefixes on purpose: "so"/"sol"/"son" style queries
// must exercise gram pruning at every specificity level.
var corpusWords = []string{
	"solar", "solaris", "solstice", "sonar", "sonata", "sonnet",
	"panel", "panther", "pantheon", "rover", "rocket", "rocker",
	"engine", "enigma", "ember", "embark",
}

// randomSearchCorpus builds a seed-pinned ontology of n nodes with
// prefix-sharing phrases and aliases on every fourth node.
func randomSearchCorpus(r *rand.Rand, n int) *ontology.Ontology {
	o := ontology.New()
	for i := 0; i < n; i++ {
		typ := ontology.Concept
		if i%3 == 0 {
			typ = ontology.Entity
		}
		phrase := fmt.Sprintf("%s %s %d",
			corpusWords[r.Intn(len(corpusWords))], corpusWords[r.Intn(len(corpusWords))], i)
		id := o.AddNode(typ, phrase)
		if i%4 == 0 {
			o.AddAlias(id, fmt.Sprintf("aka %s %d", corpusWords[r.Intn(len(corpusWords))], i))
		}
	}
	return o
}

// searchWorkloads derives the four query families from the live node
// set: substrings of phrases (hit-heavy), gibberish (miss-heavy), word
// prefixes at every length (prefix-shared) and substrings of aliases
// (alias-typed — matches reach the node only through its alias).
func searchWorkloads(r *rand.Rand, nodes []ontology.Node) map[string][]string {
	w := map[string][]string{}
	for i := 0; i < 12 && len(nodes) > 0; i++ {
		p := nodes[r.Intn(len(nodes))].Phrase
		start := r.Intn(len(p))
		max := len(p) - start
		if max > 6 {
			max = 6
		}
		w["hit-heavy"] = append(w["hit-heavy"], p[start:start+1+r.Intn(max)])
	}
	for i := 0; i < 8; i++ {
		w["miss-heavy"] = append(w["miss-heavy"], fmt.Sprintf("zq%dxv", r.Intn(1000)))
	}
	for _, word := range corpusWords {
		for _, l := range []int{2, 4, len(word)} {
			w["prefix-shared"] = append(w["prefix-shared"], word[:l])
		}
	}
	var aliases []string
	for i := range nodes {
		aliases = append(aliases, nodes[i].Aliases...)
	}
	for i := 0; i < 8 && len(aliases) > 0; i++ {
		a := aliases[r.Intn(len(aliases))]
		start := r.Intn(len(a))
		max := len(a) - start
		if max > 5 {
			max = 5
		}
		w["alias-typed"] = append(w["alias-typed"], a[start:start+1+r.Intn(max)])
	}
	return w
}

// assertSearchEquivalent compares one query across the reference and the
// sharded deployment, byte for byte, for every pinned limit.
func assertSearchEquivalent(t *testing.T, refTS, gotTS *httptest.Server, family, q string) {
	t.Helper()
	for _, limit := range []int{1, 2, 4} {
		v := url.Values{}
		v.Set("q", q)
		v.Set("limit", fmt.Sprint(limit))
		path := "/v1/search?" + v.Encode()
		refStatus, refBody := getRaw(t, refTS.Client(), refTS.URL+path)
		gotStatus, gotBody := getRaw(t, gotTS.Client(), gotTS.URL+path)
		if refStatus != gotStatus || !bytes.Equal(refBody, gotBody) {
			t.Fatalf("%s %s: sharded (%d) %s != reference (%d) %s",
				family, path, gotStatus, gotBody, refStatus, refBody)
		}
	}
}

// TestSearchEquivalenceRandomized: for K ∈ {1, 2, 4}, a NewSharded server
// answers every workload query identically to a plain New server over the
// same snapshot — twice, so the second pass reads the partials the first
// pass cached.
func TestSearchEquivalenceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	snap := randomSearchCorpus(r, 120).Snapshot()
	workloads := searchWorkloads(r, snap.Nodes())
	refTS := httptest.NewServer(New(snap, Options{}).Handler())
	t.Cleanup(refTS.Close)

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ss, err := ontology.ShardSnapshot(snap, k)
			if err != nil {
				t.Fatal(err)
			}
			gotTS := httptest.NewServer(NewSharded(ss, Options{}).Handler())
			t.Cleanup(gotTS.Close)
			for pass := 0; pass < 2; pass++ {
				for family, queries := range workloads {
					for _, q := range queries {
						assertSearchEquivalent(t, refTS, gotTS, family, q)
					}
				}
			}
		})
	}
}

// replayDelta is the deterministic synthetic ingest script shared by the
// replay and hammer tests: adds two matching nodes per day (one aliased),
// an IsA edge on day 4, and a retirement on day 6 — the retirement is the
// dangerous case, because it renumbers union IDs under every shard's
// carried partials.
func replayDelta(day int) *delta.Delta {
	switch {
	case day == 4:
		return &delta.Delta{Day: day, Edges: []delta.EdgeAdd{{
			SrcType: ontology.Concept, Src: "replay sonata 1",
			DstType: ontology.Concept, Dst: "replay sonata 2",
			Type: ontology.IsA, Weight: 1,
		}}}
	case day == 6:
		return &delta.Delta{Day: day, Retire: []delta.Ref{{Type: ontology.Concept, Phrase: "replay sonata 2"}}}
	default:
		return &delta.Delta{Day: day, Add: []delta.NodeAdd{
			{Type: ontology.Concept, Phrase: fmt.Sprintf("replay sonata %d", day), Day: day,
				Aliases: []string{fmt.Sprintf("aka replay %d", day)}},
			{Type: ontology.Entity, Phrase: fmt.Sprintf("replay panther %d", day), Day: day},
		}}
	}
}

// TestSearchEquivalenceIngestReplay replays the synthetic delta script
// day by day through /v1/ingest for K ∈ {1, 2, 4}; after every day, the
// evolved sharded server must answer each workload query byte-identically
// to a fresh reference server over its own current union — cold and from
// the carried partial caches.
func TestSearchEquivalenceIngestReplay(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	base := randomSearchCorpus(r, 60).Snapshot()
	queries := []string{"son", "replay", "panther", "aka replay", "zqnope", "sonata 1"}
	const maxDay = 8

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ss, err := ontology.ShardSnapshot(base, k)
			if err != nil {
				t.Fatal(err)
			}
			lineage := ss
			opts := Options{}
			opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
				next, merged, touched, err := delta.ApplySharded(lineage, []*delta.Delta{replayDelta(b.Day)})
				if err == nil {
					lineage = next
				}
				return next, merged, touched, err
			}
			srv := NewSharded(ss, opts)
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)

			for day := 1; day <= maxDay; day++ {
				postJSON(t, ts.Client(), ts.URL+"/v1/ingest", fmt.Sprintf(`{"day":%d}`, day), 200)
				refTS := httptest.NewServer(New(srv.Current(), Options{}).Handler())
				for pass := 0; pass < 2; pass++ {
					for _, q := range queries {
						assertSearchEquivalent(t, refTS, ts, fmt.Sprintf("day %d", day), q)
					}
				}
				refTS.Close()
			}
		})
	}
}

// TestSearchPartialCarryAndInvalidation pins the partial-cache lifecycle
// on the in-process sharded server: an append-only ingest that touches
// one shard installs a fresh (empty) partial cache for that shard ONLY —
// every peer keeps its cache object and its entries — while rollback and
// /v1/reload install fresh caches for all shards.
func TestSearchPartialCarryAndInvalidation(t *testing.T) {
	const k = 4
	snap := testOntology(0).Snapshot()
	ss, err := ontology.ShardSnapshot(snap, k)
	if err != nil {
		t.Fatal(err)
	}
	lineage := ss
	day := 0
	opts := Options{
		CacheSize: 64,
		Loader:    func() (*ontology.Snapshot, error) { return testOntology(0).Snapshot(), nil },
	}
	opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
		day++
		d := &delta.Delta{Day: b.Day, Add: []delta.NodeAdd{{Type: ontology.Concept, Phrase: fmt.Sprintf("hybrid sedans %d", day), Day: b.Day}}}
		next, merged, touched, err := delta.ApplySharded(lineage, []*delta.Delta{d})
		if err == nil {
			lineage = next
		}
		return next, merged, touched, err
	}
	srv := NewSharded(ss, opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	// Warm the partials: "sedan" consults every candidate shard once.
	getJSON(t, c, ts.URL+"/v1/search?q=sedan&limit=5", 200)
	before := srv.cur.Load().searchPartials
	if len(before) != k {
		t.Fatalf("searchPartials = %d caches, want %d", len(before), k)
	}
	lens := make([]int, k)
	warmed := 0
	for i, p := range before {
		lens[i] = p.len()
		warmed += lens[i]
	}
	if warmed == 0 {
		t.Fatal("warm query cached no partials")
	}

	// Append-only ingest: only the new node's home shard republishes.
	postJSON(t, c, ts.URL+"/v1/ingest", `{"day":21}`, 200)
	home := ontology.HomeShard(ontology.Concept, "hybrid sedans 1", k)
	after := srv.cur.Load().searchPartials
	for i := 0; i < k; i++ {
		if i == home {
			if after[i] == before[i] || after[i].len() != 0 {
				t.Fatalf("touched shard %d kept its partial cache (len %d)", i, after[i].len())
			}
			continue
		}
		if after[i] != before[i] {
			t.Fatalf("untouched shard %d lost its partial cache to a foreign republish", i)
		}
		if after[i].len() != lens[i] {
			t.Fatalf("untouched shard %d partial entries %d, want %d", i, after[i].len(), lens[i])
		}
	}
	// The carried partials still merge correctly: the new node (a "sedan"
	// match) must appear — a stale merged answer could not contain it.
	body := getJSON(t, c, ts.URL+"/v1/search?q=sedan&limit=100", 200)
	if !searchHasPhrase(body, "hybrid sedans 1") {
		t.Fatalf("post-ingest search misses the ingested node: %v", body)
	}

	// Rollback drops every shard's partials.
	postJSON(t, c, ts.URL+"/v1/rollback", "", 200)
	rolled := srv.cur.Load().searchPartials
	for i := 0; i < k; i++ {
		if rolled[i] == after[i] || rolled[i].len() != 0 {
			t.Fatalf("rollback kept shard %d partials", i)
		}
	}
	body = getJSON(t, c, ts.URL+"/v1/search?q=sedan&limit=100", 200)
	if searchHasPhrase(body, "hybrid sedans 1") {
		t.Fatalf("post-rollback search serves a retired-world node: %v", body)
	}

	// Reload re-partitions the world: all partials drop again.
	getJSON(t, c, ts.URL+"/v1/search?q=sedan&limit=5", 200)
	preReload := srv.cur.Load().searchPartials
	postJSON(t, c, ts.URL+"/v1/reload", "", 200)
	reloaded := srv.cur.Load().searchPartials
	for i := 0; i < k; i++ {
		if reloaded[i] == preReload[i] || reloaded[i].len() != 0 {
			t.Fatalf("reload kept shard %d partials", i)
		}
	}
}

// searchHasPhrase reports whether a decoded /v1/search body contains a
// result with the given phrase.
func searchHasPhrase(body map[string]any, phrase string) bool {
	results, _ := body["results"].([]any)
	for _, r := range results {
		if m, ok := r.(map[string]any); ok && m["phrase"] == phrase {
			return true
		}
	}
	return false
}

// hitsOf renders a union search result in the /v1/search wire shape.
func hitsOf(ns []ontology.Node) []searchHit {
	hits := make([]searchHit, 0, len(ns))
	for i := range ns {
		hits = append(hits, searchHit{ID: ns[i].ID, Type: ns[i].Type.String(), Phrase: ns[i].Phrase})
	}
	return hits
}

func hitsEqual(a, b []searchHit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSearchShardedHammerConcurrentIngest hammers /v1/search from four
// readers while a writer replays the synthetic delta script (including
// the union-renumbering retirement on day 6). Every published world is
// precomputed, so the pin is exact: each reader response must be a 200
// whose hits equal SOME published generation's union scan — a partial
// cache merged against the wrong union could not produce one — and no
// request may see a 5xx.
func TestSearchShardedHammerConcurrentIngest(t *testing.T) {
	const k, maxDay = 4, 10
	base := testOntology(0).Snapshot()
	ss, err := ontology.ShardSnapshot(base, k)
	if err != nil {
		t.Fatal(err)
	}
	// Precompute every world the server will publish (the ingester replays
	// the same script) and each probe's expected hits per world.
	type probe struct {
		q     string
		limit int
	}
	probes := []probe{{"sedan", 3}, {"replay", 5}, {"model", 3}, {"sonata", 5}}
	worlds := []*ontology.ShardedSnapshot{ss}
	for day, lin := 1, ss; day <= maxDay; day++ {
		next, _, _, err := delta.ApplySharded(lin, []*delta.Delta{replayDelta(day)})
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		worlds, lin = append(worlds, next), next
	}
	expected := make([][][]searchHit, len(probes))
	for pi, p := range probes {
		expected[pi] = make([][]searchHit, len(worlds))
		for wi, w := range worlds {
			expected[pi][wi] = hitsOf(w.Union().Search(p.q, p.limit))
		}
	}

	lineage := ss
	opts := Options{CacheSize: 64}
	opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
		next, merged, touched, err := delta.ApplySharded(lineage, []*delta.Delta{replayDelta(b.Day)})
		if err == nil {
			lineage = next
		}
		return next, merged, touched, err
	}
	srv := NewSharded(ss, opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				p := probes[(g+i)%len(probes)]
				resp, err := c.Get(fmt.Sprintf("%s/v1/search?q=%s&limit=%d", ts.URL, url.QueryEscape(p.q), p.limit))
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				var parsed struct {
					Count   int         `json:"count"`
					Results []searchHit `json:"results"`
				}
				decodeErr := json.NewDecoder(resp.Body).Decode(&parsed)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("reader %d: q=%q status %d", g, p.q, resp.StatusCode)
					return
				}
				if decodeErr != nil {
					t.Errorf("reader %d: q=%q decode: %v", g, p.q, decodeErr)
					return
				}
				pi := (g + i) % len(probes)
				match := false
				for _, want := range expected[pi] {
					if hitsEqual(parsed.Results, want) {
						match = true
						break
					}
				}
				if !match || parsed.Count != len(parsed.Results) {
					t.Errorf("reader %d: q=%q limit=%d: hits %v match no published generation", g, p.q, p.limit, parsed.Results)
					return
				}
			}
		}(g)
	}
	for day := 1; day <= maxDay; day++ {
		postJSON(t, ts.Client(), ts.URL+"/v1/ingest", fmt.Sprintf(`{"day":%d}`, day), 200)
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	// Quiesced: the served answers equal the final world's.
	for pi, p := range probes {
		body := getJSON(t, ts.Client(), fmt.Sprintf("%s/v1/search?q=%s&limit=%d", ts.URL, url.QueryEscape(p.q), p.limit), 200)
		var got []searchHit
		raw, _ := json.Marshal(body["results"])
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(got, expected[pi][len(worlds)-1]) {
			t.Fatalf("q=%q: final hits %v, want %v", p.q, got, expected[pi][len(worlds)-1])
		}
	}
}

// searchRecorder wraps a backend handler, recording every /v1/search
// request's limit parameter and its response's result count.
type searchRecorder struct {
	h      http.Handler
	mu     sync.Mutex
	limits []string
	counts []int
}

func (sr *searchRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/search" {
		sr.h.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	sr.h.ServeHTTP(rec, r)
	var parsed struct {
		Count int `json:"count"`
	}
	_ = json.Unmarshal(rec.Body.Bytes(), &parsed)
	sr.mu.Lock()
	sr.limits = append(sr.limits, r.URL.Query().Get("limit"))
	sr.counts = append(sr.counts, parsed.Count)
	sr.mu.Unlock()
	for key, vals := range rec.Header() {
		w.Header()[key] = vals
	}
	w.WriteHeader(rec.Code)
	w.Write(rec.Body.Bytes())
}

// TestRouterPerShardSearchLimit is the limit-plumbing regression pin: a
// routed search forwards the validated limit to every consulted backend,
// each per-shard response respects it, and the merged body still equals
// the in-process sharded scan.
func TestRouterPerShardSearchLimit(t *testing.T) {
	const k, limit = 2, 2
	o := ontology.New()
	for i := 0; i < 30; i++ {
		o.AddNode(ontology.Concept, fmt.Sprintf("gadget widget %d", i))
	}
	snap := o.Snapshot()
	perShard := make([]int, k)
	for _, n := range snap.Nodes() {
		perShard[ontology.HomeShard(n.Type, n.Phrase, k)]++
	}
	for i, c := range perShard {
		if c <= limit {
			t.Fatalf("corpus too lopsided: shard %d holds %d nodes", i, c)
		}
	}
	ss, err := ontology.ShardSnapshot(snap, k)
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(NewSharded(ss, Options{}).Handler())
	defer refTS.Close()
	recorders := make([]*searchRecorder, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		recorders[i] = &searchRecorder{h: NewShard(ss.Projection(i), Options{}).Handler()}
		backTS := httptest.NewServer(recorders[i])
		defer backTS.Close()
		urls[i] = backTS.URL
	}
	rt, err := NewRouter(RouterOptions{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()

	path := fmt.Sprintf("/v1/search?q=widget&limit=%d", limit)
	refStatus, refBody := getRaw(t, refTS.Client(), refTS.URL+path)
	gotStatus, gotBody := getRaw(t, routerTS.Client(), routerTS.URL+path)
	if refStatus != 200 || gotStatus != 200 || !bytes.Equal(refBody, gotBody) {
		t.Fatalf("router (%d) %s != in-process (%d) %s", gotStatus, gotBody, refStatus, refBody)
	}
	for i, rec := range recorders {
		rec.mu.Lock()
		limits, counts := rec.limits, rec.counts
		rec.mu.Unlock()
		if len(limits) == 0 {
			t.Fatalf("shard %d was never consulted for %s", i, path)
		}
		for j := range limits {
			if limits[j] != fmt.Sprint(limit) {
				t.Fatalf("shard %d request %d carried limit %q, want %d", i, j, limits[j], limit)
			}
			if counts[j] > limit {
				t.Fatalf("shard %d response %d returned %d hits, limit %d", i, j, counts[j], limit)
			}
		}
	}
}

// cacheDelta is the router cache test's ingest script: day 2 retires the
// day-1 node (forcing the conservative clear-all), other days append.
func cacheDelta(day int) *delta.Delta {
	if day == 2 {
		return &delta.Delta{Day: day, Retire: []delta.Ref{{Type: ontology.Concept, Phrase: "cache sedans 1"}}}
	}
	return &delta.Delta{Day: day, Add: []delta.NodeAdd{{Type: ontology.Concept, Phrase: fmt.Sprintf("cache sedans %d", day), Day: day}}}
}

// newCachedRouterFixture boots K per-shard backends (each with its own
// deterministic apply-lineage ingester) behind a router with partial
// caching ENABLED, plus flaky wrappers for outage injection.
func newCachedRouterFixture(t *testing.T, k int, failOpen bool) (*ontology.ShardedSnapshot, []*flakyBackend, *httptest.Server) {
	t.Helper()
	ss, err := ontology.ShardSnapshot(testOntology(0).Snapshot(), k)
	if err != nil {
		t.Fatal(err)
	}
	flaky := make([]*flakyBackend, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		lineage := ss
		shard := i
		back := NewShard(ss.Projection(i), Options{
			ShardIngest: func(b delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
				next, merged, touched, err := delta.ApplySharded(lineage, []*delta.Delta{cacheDelta(b.Day)})
				if err != nil {
					return nil, nil, nil, err
				}
				lineage = next
				return next.Projection(shard), merged, touched, nil
			},
		})
		flaky[i] = &flakyBackend{h: back.Handler()}
		backTS := httptest.NewServer(flaky[i])
		t.Cleanup(backTS.Close)
		urls[i] = backTS.URL
	}
	rt, err := NewRouter(RouterOptions{Backends: urls, CacheSize: 64, FailOpen: failOpen})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(routerTS.Close)
	return ss, flaky, routerTS
}

// TestRouterSearchCacheInvalidation pins the router partial cache against
// its freshness contract: a cached routed search equals a fresh
// ?scatter=full scatter before and after every write — an append-only
// ingest (touched shards clear), a retirement (clear-all: union IDs
// renumber under untouched shards' caches), and /v1/reload.
func TestRouterSearchCacheInvalidation(t *testing.T) {
	_, _, routerTS := newCachedRouterFixture(t, 2, false)
	c := routerTS.Client()

	assertRoutedMatchesScatter := func(q string, limit int) []byte {
		t.Helper()
		v := url.Values{}
		v.Set("q", q)
		v.Set("limit", fmt.Sprint(limit))
		routedStatus, routed := getRaw(t, c, routerTS.URL+"/v1/search?"+v.Encode())
		v.Set("scatter", "full")
		fullStatus, full := getRaw(t, c, routerTS.URL+"/v1/search?"+v.Encode())
		if routedStatus != 200 || fullStatus != 200 || !bytes.Equal(routed, full) {
			t.Fatalf("q=%q limit=%d: routed (%d) %s != scatter=full (%d) %s", q, limit, routedStatus, routed, fullStatus, full)
		}
		return routed
	}

	// Cold then warm: the second routed read serves cached partials and
	// still matches a fresh scatter.
	first := assertRoutedMatchesScatter("sedan", 5)
	second := assertRoutedMatchesScatter("sedan", 5)
	if !bytes.Equal(first, second) {
		t.Fatalf("warm read diverged: %s vs %s", second, first)
	}

	// Append-only ingest: the new node contains "sedan", so a stale cached
	// partial would be missing it.
	postJSON(t, c, routerTS.URL+"/v1/ingest", `{"day":1}`, 200)
	body := assertRoutedMatchesScatter("sedan", 100)
	if !bytes.Contains(body, []byte("cache sedans 1")) {
		t.Fatalf("post-ingest routed search misses the ingested node: %s", body)
	}

	// Retirement: union IDs renumber everywhere; every cached partial must
	// drop, not just the retired node's shard.
	postJSON(t, c, routerTS.URL+"/v1/ingest", `{"day":2}`, 200)
	body = assertRoutedMatchesScatter("sedan", 100)
	if bytes.Contains(body, []byte("cache sedans 1")) {
		t.Fatalf("post-retire routed search serves the retired node: %s", body)
	}
	for _, q := range []string{"sedan", "model", "cache", "zzz-none"} {
		for _, limit := range []int{1, 3, 5} {
			assertRoutedMatchesScatter(q, limit)
		}
	}
}

// TestRouterSearchCacheMasksDownBackend pins the documented opt-in
// tradeoff: with caching on and fail-open, a query whose partials are all
// cached answers complete during a backend outage, while the same needle
// under an uncached limit reports partial with the down shard listed.
func TestRouterSearchCacheMasksDownBackend(t *testing.T) {
	ss, flaky, routerTS := newCachedRouterFixture(t, 2, true)
	if len(ss.CandidateShards("sedan")) != 2 {
		t.Fatal("precondition: \"sedan\" must route to both shards")
	}
	c := routerTS.Client()

	_, warm := getRaw(t, c, routerTS.URL+"/v1/search?q=sedan&limit=5")
	flaky[1].down.Store(true)
	defer flaky[1].down.Store(false)

	status, cached := getRaw(t, c, routerTS.URL+"/v1/search?q=sedan&limit=5")
	if status != 200 || !bytes.Equal(cached, warm) {
		t.Fatalf("cached query during outage: status %d body %s, want the warm full body %s", status, cached, warm)
	}
	status, uncached := getRaw(t, c, routerTS.URL+"/v1/search?q=sedan&limit=4")
	if status != 200 {
		t.Fatalf("uncached fail-open query during outage: status %d body %s", status, uncached)
	}
	var parsed struct {
		Partial bool  `json:"partial"`
		Missing []int `json:"missing_shards"`
	}
	if err := json.Unmarshal(uncached, &parsed); err != nil {
		t.Fatal(err)
	}
	if !parsed.Partial || len(parsed.Missing) != 1 || parsed.Missing[0] != 1 {
		t.Fatalf("uncached query during outage not marked partial on shard 1: %s", uncached)
	}
}

// percentileNs returns the p-quantile of the samples in nanoseconds
// (nearest-rank over the sorted run).
func percentileNs(samples []time.Duration, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s)-1) + 0.5)
	return float64(s[idx])
}

// BenchmarkServeSearchDistribution is the latency-distribution companion
// to BenchmarkServeSearch: the same 10k-node corpus and query mix, but
// each op is timed individually so p50/p95/p99 surface as metrics — a
// mean hides exactly the tail the routing index and partial caches exist
// to fix. The sharded variant additionally reports the query mix's
// fan-out profile: average shards consulted per query after gram routing,
// and the fraction of queries that stop at a single shard.
func BenchmarkServeSearchDistribution(b *testing.B) {
	o := ontology.New()
	for i := 0; i < 5000; i++ {
		o.AddNode(ontology.Concept, fmt.Sprintf("concept number %d", i))
	}
	for i := 0; i < 5000; i++ {
		o.AddNode(ontology.Entity, fmt.Sprintf("entity number %d", i))
	}
	snap := o.Snapshot()
	ss, err := ontology.ShardSnapshot(snap, 4)
	if err != nil {
		b.Fatal(err)
	}
	queries := []string{"number 42", "number 999", "concept number 1", "entity", "no hit at all"}

	distribution := func(b *testing.B, search func(string, int) []ontology.Node) {
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			t0 := time.Now()
			search(q, 10)
			samples = append(samples, time.Since(t0))
		}
		b.ReportMetric(percentileNs(samples, 0.50), "p50-ns")
		b.ReportMetric(percentileNs(samples, 0.95), "p95-ns")
		b.ReportMetric(percentileNs(samples, 0.99), "p99-ns")
	}
	b.Run("snapshot", func(b *testing.B) { distribution(b, snap.Search) })
	b.Run("sharded=4", func(b *testing.B) {
		consulted, oneShard := 0, 0
		for _, q := range queries {
			c := len(ss.CandidateShards(strings.ToLower(q)))
			consulted += c
			if c == 1 {
				oneShard++
			}
		}
		distribution(b, ss.Search)
		b.ReportMetric(float64(consulted)/float64(len(queries)), "shards/query")
		b.ReportMetric(float64(oneShard)/float64(len(queries)), "1shard-ratio")
	})
}
