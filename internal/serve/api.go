package serve

// The /v1 wire contract shared by giantd, per-shard giantd and
// giantrouter (see docs/ARCHITECTURE.md, "/v1 API contract"):
//
//   - every error response is the one envelope
//     {"error":{"code","message","shard","generation"}} with a
//     machine-readable code from the set below;
//   - every response carries an X-Giant-Generation header (per-shard
//     "shard:gen" pairs on router responses) and, on delta-log
//     replicas, X-Giant-Wal-Gen with the last applied log generation;
//   - write responses (/v1/ingest, /v1/reload, /v1/rollback) converge
//     on one per-shard {shard, generation, applied} row schema;
//   - /v1/search query parameters parse through one shared helper so
//     limits clamp — and malformed input rejects — identically in
//     every serving mode (the router's merged bodies, error paths
//     included, must stay byte-identical to the in-process server's).

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// Machine-readable error codes carried by every /v1 error envelope.
// Status semantics are unchanged from the pre-envelope API; the code
// disambiguates responses that share a status (e.g. the 503s for a
// missing ingester vs. a lagging replica).
const (
	codeInvalidArgument  = "invalid_argument"   // 400: malformed query/body
	codeInvalidLimit     = "invalid_limit"      // 400: non-numeric or non-positive ?limit=
	codeInvalidBatch     = "invalid_batch"      // 422: delta.ErrInvalidBatch
	codeNotFound         = "not_found"          // 404
	codeMethodNotAllowed = "method_not_allowed" // 405
	codeUnavailable      = "unavailable"        // 503: endpoint not wired in this mode
	codeShardUnavailable = "shard_unavailable"  // 502/503: backend shard unreachable
	codePartialApply     = "partial_apply"      // 502: write applied on some shards only
	codeReplicaLagging   = "replica_lagging"    // 429: delta log outran the slowest replica
	codeReadOnlyReplica  = "read_only_replica"  // 503: direct write to a log-tailing replica
	codeConflict         = "conflict"           // 409: rollback with no retained generation
	codeBadUpstream      = "bad_upstream"       // 502: loader or backend returned garbage
	codeInternal         = "internal"           // 500
)

// Generation response headers. The router keys replica read-gating on
// walGenHeader, so a replica's every response doubles as a progress
// report.
const (
	genHeader    = "X-Giant-Generation"
	walGenHeader = "X-Giant-Wal-Gen"
)

// apiError is the envelope payload of every /v1 error response.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Shard names the shard an error is about (router point routes,
	// per-shard apply failures); omitted when the error has no single
	// shard.
	Shard *int `json:"shard,omitempty"`
	// Generation pins the serving generation the error was computed
	// against, when one is relevant (e.g. replica_lagging).
	Generation uint64 `json:"generation,omitempty"`
}

// errorBody is the unified error envelope: {"error": {...}}.
type errorBody struct {
	Error apiError `json:"error"`
}

// errBody builds an envelope. With no args the format string is the
// message verbatim (never re-interpreted, so user input containing '%'
// survives); with args it is a Sprintf format.
func errBody(code, format string, args ...any) errorBody {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	return errorBody{Error: apiError{Code: code, Message: msg}}
}

// errBodyShard is errBody with the envelope's shard field set.
func errBodyShard(code string, shard int, format string, args ...any) errorBody {
	e := errBody(code, format, args...)
	e.Error.Shard = &shard
	return e
}

// shardWriteStatus is the per-shard write-status row shared by every
// write response: the 200 bodies of /v1/ingest, /v1/reload and
// /v1/rollback carry one row per shard under "shards", and the router's
// partial_apply 502 reuses the same rows (applied=false rows carrying
// the failure status) so clients parse exactly one schema.
type shardWriteStatus struct {
	Shard      int    `json:"shard"`
	Generation uint64 `json:"generation"`
	Applied    bool   `json:"applied"`
	Status     int    `json:"status,omitempty"`
	Error      string `json:"error,omitempty"`
}

// searchParams is one parsed /v1/search request.
type searchParams struct {
	q     string
	limit int
	full  bool // ?scatter=full: bypass term-gram routing and partial caches
}

// parseSearchParams is THE /v1/search query parser, shared by the
// in-process server, the per-shard backend and the router. The limit
// defaults to 10, rejects non-positive or non-numeric input with
// invalid_limit, and silently clamps to maxResults (exposed as
// max_search_results in /v1/stats).
func parseSearchParams(v url.Values, maxResults int) (searchParams, int, errorBody) {
	p := searchParams{q: v.Get("q"), limit: 10}
	if p.q == "" {
		return p, http.StatusBadRequest, errBody(codeInvalidArgument, "need ?q=")
	}
	if ls := v.Get("limit"); ls != "" {
		l, err := strconv.Atoi(ls)
		if err != nil || l <= 0 {
			return p, http.StatusBadRequest, errBody(codeInvalidLimit, "invalid limit: "+ls)
		}
		p.limit = l
	}
	if p.limit > maxResults {
		p.limit = maxResults
	}
	switch sc := v.Get("scatter"); sc {
	case "":
	case "full":
		p.full = true
	default:
		return p, http.StatusBadRequest, errBody(codeInvalidArgument, `invalid scatter: `+sc+` (want "full")`)
	}
	return p, 0, errorBody{}
}
