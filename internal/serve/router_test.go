package serve

// The multi-process serving tier's pin: a giantrouter-style Router fanned
// out over K per-shard backends must be indistinguishable — byte for byte
// on /v1/search and /v1/node, generation for generation on /v1/stats —
// from a single-process NewSharded server over the same world, for every
// K, through a full day-by-day ingest replay. Every backend runs its own
// full (deterministic) mining system, exactly as K separate `giantd
// -shard i/k -build` processes would.
//
// Fault injection rides the same harness shape: backends are wrapped in a
// connection-slamming proxy so the router sees real transport errors, and
// both degraded-mode policies (fail-closed 503 vs fail-open "partial")
// plus recovery and goroutine hygiene are asserted.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	giant "giant"
	"giant/internal/delta"
	"giant/internal/ontology"
)

// getRaw fetches a URL and returns the verbatim status and body.
func getRaw(t *testing.T, c *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// shardIngester adapts a backend's full mining system to the per-shard
// serve option, exactly as cmd/giantd -shard -build wires it.
func shardIngester(sys *giant.System, shard int) func(delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
	return func(b delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
		next, d, touched, err := sys.IngestSharded(b)
		if err != nil {
			return nil, nil, nil, err
		}
		return next.Projection(shard), d, touched, nil
	}
}

// routerFixture is one K-shard multi-process deployment next to its
// single-process reference.
type routerFixture struct {
	k         int
	refTS     *httptest.Server
	routerTS  *httptest.Server
	refServer *Server
}

// newRouterFixture builds the reference system plus K independent backend
// systems (all deterministic twins), boots K per-shard servers and a
// router, and registers cleanup.
func newRouterFixture(t *testing.T, cfg giant.Config, splitDay, k int) *routerFixture {
	t.Helper()
	cfg.Shards = k

	refSys, err := giant.BuildUpToDay(cfg, splitDay)
	if err != nil {
		t.Fatalf("build reference (k=%d): %v", k, err)
	}
	refSS, err := refSys.ShardedSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	refServer := NewSharded(refSS, Options{
		IngestSharded:    refSys.IngestSharded,
		ConceptContextFn: refSys.ConceptContext,
	})
	refTS := httptest.NewServer(refServer.Handler())
	t.Cleanup(refTS.Close)

	urls := make([]string, k)
	for i := 0; i < k; i++ {
		backSys, err := giant.BuildUpToDay(cfg, splitDay)
		if err != nil {
			t.Fatalf("build backend %d (k=%d): %v", i, k, err)
		}
		proj, err := backSys.ShardProjection(i)
		if err != nil {
			t.Fatal(err)
		}
		backTS := httptest.NewServer(NewShard(proj, Options{
			ShardIngest:      shardIngester(backSys, i),
			ConceptContextFn: backSys.ConceptContext,
		}).Handler())
		t.Cleanup(backTS.Close)
		urls[i] = backTS.URL
	}
	rt, err := NewRouter(RouterOptions{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(routerTS.Close)
	return &routerFixture{k: k, refTS: refTS, routerTS: routerTS, refServer: refServer}
}

// assertSameBody asserts the reference and the router answer one request
// with identical status and identical bytes.
func (f *routerFixture) assertSameBody(t *testing.T, path string) {
	t.Helper()
	refStatus, refBody := getRaw(t, f.refTS.Client(), f.refTS.URL+path)
	gotStatus, gotBody := getRaw(t, f.routerTS.Client(), f.routerTS.URL+path)
	if refStatus != gotStatus {
		t.Fatalf("k=%d %s: status %d via router, %d in-process\nrouter: %s\nref:    %s",
			f.k, path, gotStatus, refStatus, gotBody, refBody)
	}
	if !bytes.Equal(refBody, gotBody) {
		t.Fatalf("k=%d %s: bodies diverge\nrouter: %s\nref:    %s", f.k, path, gotBody, refBody)
	}
}

// assertStatsMatch asserts the router's merged /v1/stats agrees with the
// in-process sharded stats on everything deterministic: whole-world
// counts, per-type maps, and — the generation contract — the per-shard
// generation list.
func (f *routerFixture) assertStatsMatch(t *testing.T) {
	t.Helper()
	ref := getJSON(t, f.refTS.Client(), f.refTS.URL+"/v1/stats", 200)
	got := getJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/stats", 200)
	for _, field := range []string{"nodes", "edges", "nodes_by_type", "edges_by_type", "shards"} {
		if !reflect.DeepEqual(ref[field], got[field]) {
			t.Fatalf("k=%d stats %q diverges:\nrouter: %v\nref:    %v", f.k, field, got[field], ref[field])
		}
	}
}

// nodeProbePaths samples /v1/node request shapes across the reference
// snapshot: typed and untyped phrase lookups, ID lookups, alias lookups
// and misses.
func (f *routerFixture) nodeProbePaths(limit int) []string {
	snap := f.refServer.Current()
	paths := []string{
		"/v1/node?phrase=zzz-no-such-node",
		"/v1/node?id=999999",
		"/v1/node?id=bogus",
		"/v1/node?phrase=x&type=bogus",
		"/v1/node",
	}
	nodes := snap.Nodes()
	stride := len(nodes)/limit + 1
	for i := 0; i < len(nodes); i += stride {
		n := nodes[i]
		v := url.Values{}
		v.Set("phrase", n.Phrase)
		paths = append(paths, "/v1/node?"+v.Encode())
		v.Set("type", n.Type.String())
		paths = append(paths, "/v1/node?"+v.Encode())
		paths = append(paths, fmt.Sprintf("/v1/node?id=%d", n.ID))
		for _, a := range n.Aliases {
			av := url.Values{}
			av.Set("phrase", a)
			av.Set("type", n.Type.String())
			paths = append(paths, "/v1/node?"+av.Encode())
			break
		}
	}
	return paths
}

// searchProbePaths samples /v1/search shapes: common tokens, full
// phrases, misses, and limits below/at/above the hit count.
func (f *routerFixture) searchProbePaths(limitNodes int) []string {
	snap := f.refServer.Current()
	terms := []string{"a", "e", "zzz-no-hit"}
	nodes := snap.Nodes()
	stride := len(nodes)/limitNodes + 1
	for i := 0; i < len(nodes); i += stride {
		terms = append(terms, nodes[i].Phrase)
	}
	paths := []string{"/v1/search", "/v1/search?q=a&limit=bogus"}
	for _, q := range terms {
		v := url.Values{}
		v.Set("q", q)
		for _, limit := range []string{"1", "5", "100"} {
			v.Set("limit", limit)
			paths = append(paths, "/v1/search?"+v.Encode())
		}
	}
	return paths
}

// replayDays posts each remaining day of the synthetic log as one ingest
// batch to both deployments, asserting the generation accounting agrees
// after every batch.
func (f *routerFixture) replayDays(t *testing.T, log []struct {
	Query  string
	DocID  int
	Clicks int
	Day    int
}, splitDay, maxDay int) {
	t.Helper()
	for day := splitDay + 1; day <= maxDay; day++ {
		batch := delta.Batch{Day: day}
		for _, r := range log {
			if r.Day == day {
				batch.Clicks = append(batch.Clicks, delta.Click{Query: r.Query, DocID: r.DocID, Clicks: r.Clicks, Day: r.Day})
			}
		}
		body, err := json.Marshal(batch)
		if err != nil {
			t.Fatal(err)
		}
		refResp := postJSON(t, f.refTS.Client(), f.refTS.URL+"/v1/ingest", string(body), 200)
		gotResp := postJSON(t, f.routerTS.Client(), f.routerTS.URL+"/v1/ingest", string(body), 200)
		if !reflect.DeepEqual(refResp["touched_shards"], gotResp["touched_shards"]) {
			t.Fatalf("k=%d day %d: touched shards diverge: router %v, ref %v",
				f.k, day, gotResp["touched_shards"], refResp["touched_shards"])
		}
		if !reflect.DeepEqual(refResp["shard_generations"], gotResp["shard_generations"]) {
			t.Fatalf("k=%d day %d: shard generations diverge: router %v, ref %v",
				f.k, day, gotResp["shard_generations"], refResp["shard_generations"])
		}
		f.assertStatsMatch(t)
	}
}

// TestRouterEquivalence is the multi-process determinism pin: for
// K ∈ {1, 2, 4}, a router over K per-shard backend processes — each
// running its own deterministic mining system — replays the synthetic
// corpus day by day through router ingest and stays byte-identical to the
// single-process NewSharded path on /v1/search and /v1/node, with
// identical per-shard generations in /v1/stats after every batch.
func TestRouterEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system replay is slow; skipped under -short")
	}
	cfg := giant.TinyConfig()
	// No TTL decay: day gaps in the tiny log would otherwise make the
	// retirement schedule depend on batch boundaries.
	cfg.Update = delta.Policy{EventTTL: 0, ConceptTTL: 0, TopicTTL: 0}
	// The harness builds K+1 full systems per shard count; shrink the
	// GCTSP training budget (mining falls back gracefully — equivalence is
	// about serving, not model quality) to keep the -race run affordable.
	cfg.TrainConcepts, cfg.TrainEvents = 12, 12
	cfg.GCTSP.Epochs = 1

	// The click log is regenerated directly (cheap and deterministic) to
	// enumerate the replay days without building another full system.
	world := cfg
	maxDay := 0
	var log []struct {
		Query  string
		DocID  int
		Clicks int
		Day    int
	}
	{
		sys, err := giant.BuildUpToDay(world, -1)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sys.Log.Records {
			log = append(log, struct {
				Query  string
				DocID  int
				Clicks int
				Day    int
			}{r.Query, r.DocID, r.Clicks, r.Day})
			if r.Day > maxDay {
				maxDay = r.Day
			}
		}
	}
	if maxDay < 2 {
		t.Fatalf("log too shallow for a split: max day %d", maxDay)
	}
	splitDay := maxDay / 2

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			f := newRouterFixture(t, cfg, splitDay, k)

			// Pre-replay: the freshly booted fleet already matches.
			f.assertStatsMatch(t)
			for _, p := range f.nodeProbePaths(6) {
				f.assertSameBody(t, p)
			}
			for _, p := range f.searchProbePaths(4) {
				f.assertSameBody(t, p)
			}

			f.replayDays(t, log, splitDay, maxDay)

			// Post-replay: full probe sweep over the evolved world.
			for _, p := range f.nodeProbePaths(12) {
				f.assertSameBody(t, p)
			}
			for _, p := range f.searchProbePaths(8) {
				f.assertSameBody(t, p)
			}
		})
	}
}

// TestRouterAliasPrecedenceAcrossShards pins the union's first-win alias
// resolution across process boundaries: when two same-typed nodes on
// DIFFERENT shards share an alias, a typed alias lookup through the
// router must return the same node the in-process union resolves —
// the lowest union ID — even though the alias's own phrase hash routes to
// the other node's shard (regression: the typed-lookup fast path used to
// accept the routed shard's alias answer without the scatter competition).
func TestRouterAliasPrecedenceAcrossShards(t *testing.T) {
	const k = 2
	// Brute-force phrases with the shard placements the scenario needs:
	// nodeA homed on shard 0, nodeB and the shared alias hashing to 1.
	pick := func(want int, tmpl string) string {
		for i := 0; ; i++ {
			p := fmt.Sprintf(tmpl, i)
			if ontology.HomeShard(ontology.Concept, p, k) == want {
				return p
			}
		}
	}
	phraseA := pick(0, "alpha widgets %d")
	phraseB := pick(1, "beta widgets %d")
	alias := pick(1, "shared widgets %d")

	o := ontology.New()
	a := o.AddNode(ontology.Concept, phraseA)
	o.AddAlias(a, alias)
	b := o.AddNode(ontology.Concept, phraseB)
	o.AddAlias(b, alias)
	snap := o.Snapshot()
	ss, err := ontology.ShardSnapshot(snap, k)
	if err != nil {
		t.Fatal(err)
	}

	refTS := httptest.NewServer(NewSharded(ss, Options{}).Handler())
	defer refTS.Close()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		ts := httptest.NewServer(NewShard(ss.Projection(i), Options{}).Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	rt, err := NewRouter(RouterOptions{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()

	for _, path := range []string{
		"/v1/node?" + url.Values{"phrase": {alias}, "type": {"concept"}}.Encode(),
		"/v1/node?" + url.Values{"phrase": {alias}}.Encode(),
	} {
		refStatus, refBody := getRaw(t, refTS.Client(), refTS.URL+path)
		gotStatus, gotBody := getRaw(t, routerTS.Client(), routerTS.URL+path)
		if refStatus != 200 || gotStatus != 200 || !bytes.Equal(refBody, gotBody) {
			t.Fatalf("%s: router (%d) %s != in-process (%d) %s", path, gotStatus, gotBody, refStatus, refBody)
		}
		if !bytes.Contains(gotBody, []byte(phraseA)) {
			t.Fatalf("%s: alias resolved to the wrong node: %s (union first-win is %q)", path, gotBody, phraseA)
		}
	}
}

// flakyBackend simulates a killed backend process: while down, every
// request's connection is slammed shut, surfacing as a transport error at
// the router.
type flakyBackend struct {
	down atomic.Bool
	h    http.Handler
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	f.h.ServeHTTP(w, r)
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// newFaultFixture boots k flaky per-shard backends plus a router with the
// given policy. The returned closer is idempotent, shuts the whole fleet
// down, and is also registered as test cleanup.
func newFaultFixture(t *testing.T, k int, failOpen bool) ([]*flakyBackend, *httptest.Server, func()) {
	t.Helper()
	ss, err := ontology.ShardSnapshot(testOntology(0).Snapshot(), k)
	if err != nil {
		t.Fatal(err)
	}
	flaky := make([]*flakyBackend, k)
	urls := make([]string, k)
	backends := make([]*httptest.Server, k)
	for i := 0; i < k; i++ {
		flaky[i] = &flakyBackend{h: NewShard(ss.Projection(i), Options{}).Handler()}
		backends[i] = httptest.NewServer(flaky[i])
		urls[i] = backends[i].URL
	}
	rt, err := NewRouter(RouterOptions{
		Backends:      urls,
		FailOpen:      failOpen,
		Timeout:       2 * time.Second,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerTS := httptest.NewServer(rt.Handler())
	var once sync.Once
	closeAll := func() {
		once.Do(func() {
			routerTS.Close()
			rt.Close()
			for _, b := range backends {
				b.CloseClientConnections()
				b.Close()
			}
		})
	}
	t.Cleanup(closeAll)
	return flaky, routerTS, closeAll
}

// TestRouterFaultInjectionFailOpen kills one backend in the middle of a
// concurrent search hammer: a fail-open router must never 5xx — degraded
// responses carry "partial": true with the missing shard named — and full
// (non-partial) results must come back once the backend recovers. The
// whole lifecycle must not leak goroutines.
func TestRouterFaultInjectionFailOpen(t *testing.T) {
	before := runtime.NumGoroutine()

	func() {
		flaky, routerTS, closeAll := newFaultFixture(t, 2, true)
		defer closeAll()

		searchURL := routerTS.URL + "/v1/search?q=sedan&limit=5"
		_, full := getRaw(t, routerTS.Client(), searchURL)

		const hammerGoroutines = 8
		var wg sync.WaitGroup
		var server5xx, sawPartial atomic.Int64
		stop := make(chan struct{})
		for g := 0; g < hammerGoroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := &http.Client{Timeout: 10 * time.Second}
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := c.Get(searchURL)
					if err != nil {
						t.Errorf("router search: %v", err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode >= 500 {
						server5xx.Add(1)
						t.Errorf("fail-open router returned %d: %s", resp.StatusCode, body)
					}
					if bytes.Contains(body, []byte(`"partial":true`)) {
						sawPartial.Add(1)
					}
				}
			}()
		}
		// Kill shard 1 mid-hammer, let degraded traffic flow, then revive.
		time.Sleep(20 * time.Millisecond)
		flaky[1].down.Store(true)
		waitFor(t, 5*time.Second, "a partial response while shard 1 is down", func() bool {
			return sawPartial.Load() > 0
		})
		flaky[1].down.Store(false)
		// Recovery: a full, non-partial, byte-identical response returns.
		waitFor(t, 5*time.Second, "full results after shard 1 recovered", func() bool {
			status, body := getRaw(t, routerTS.Client(), searchURL)
			return status == 200 && bytes.Equal(body, full)
		})
		close(stop)
		wg.Wait()
		if server5xx.Load() > 0 {
			t.Fatalf("%d responses were 5xx in fail-open mode", server5xx.Load())
		}
		if sawPartial.Load() == 0 {
			t.Fatal("backend kill produced no partial responses")
		}
	}()

	// Goroutine hygiene (goleak-style): after the router, its prober and
	// every test server shut down, the goroutine count settles back.
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

// TestRouterFaultInjectionFailClosed: the fail-closed policy answers 503
// while a shard is down — naming the shard — and recovers to 200 with
// full results; /healthz reports the degraded backend in both states.
func TestRouterFaultInjectionFailClosed(t *testing.T) {
	flaky, routerTS, _ := newFaultFixture(t, 2, false)
	searchURL := routerTS.URL + "/v1/search?q=sedan&limit=5"
	_, full := getRaw(t, routerTS.Client(), searchURL)

	flaky[0].down.Store(true)
	status, body := getRaw(t, routerTS.Client(), searchURL)
	if status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("[0]")) {
		t.Fatalf("fail-closed search with a dead shard = %d: %s", status, body)
	}
	h := getJSON(t, routerTS.Client(), routerTS.URL+"/healthz", 200)
	if h["status"] != "degraded" {
		t.Fatalf("healthz with a dead shard = %v", h["status"])
	}
	// Stats degrade the same way.
	s, sbody := getRaw(t, routerTS.Client(), routerTS.URL+"/v1/stats")
	if s != http.StatusServiceUnavailable {
		t.Fatalf("fail-closed stats with a dead shard = %d: %s", s, sbody)
	}

	flaky[0].down.Store(false)
	waitFor(t, 5*time.Second, "recovery to full results", func() bool {
		status, body := getRaw(t, routerTS.Client(), searchURL)
		return status == 200 && bytes.Equal(body, full)
	})
	h = getJSON(t, routerTS.Client(), routerTS.URL+"/healthz", 200)
	if h["status"] != "ok" {
		t.Fatalf("healthz after recovery = %v", h["status"])
	}
}

// TestRouterIngestAllOrNothing: the ingest broadcast's generation
// accounting. A batch every backend rejects deterministically surfaces as
// that same client-fault status; a batch that applies on some backends but
// not others is a 502 naming exactly which shards applied.
func TestRouterIngestAllOrNothing(t *testing.T) {
	ss, err := ontology.ShardSnapshot(testOntology(0).Snapshot(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Backend 0 applies batches; backend 1 can be switched to fail.
	var backend1Fails atomic.Bool
	mkIngester := func(i int, lineage *ontology.ShardedSnapshot, failable bool) func(delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
		cur := lineage
		n := 0
		return func(b delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
			if b.Day == 0 {
				return nil, nil, nil, fmt.Errorf("empty batch: %w", delta.ErrInvalidBatch)
			}
			if failable && backend1Fails.Load() {
				return nil, nil, nil, fmt.Errorf("mining invariant violated")
			}
			n++
			d := &delta.Delta{Day: b.Day, Add: []delta.NodeAdd{{Type: ontology.Concept, Phrase: fmt.Sprintf("hybrid sedans %d", n), Day: b.Day}}}
			next, merged, touched, err := delta.ApplySharded(cur, []*delta.Delta{d})
			if err != nil {
				return nil, nil, nil, err
			}
			cur = next
			return next.Projection(i), merged, touched, nil
		}
	}
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(NewShard(ss.Projection(i), Options{
			ShardIngest: mkIngester(i, ss, i == 1),
		}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	rt, err := NewRouter(RouterOptions{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()

	// Healthy broadcast: merged generations and touched shards.
	out := postJSON(t, routerTS.Client(), routerTS.URL+"/v1/ingest", `{"day":12}`, 200)
	touched, ok := out["touched_shards"].([]any)
	if !ok || len(touched) != 1 {
		t.Fatalf("touched_shards = %v", out["touched_shards"])
	}
	home := int(touched[0].(float64))
	gens := out["shard_generations"].([]any)
	for i, g := range gens {
		want := 1.0
		if i == home {
			want = 2.0
		}
		if g.(float64) != want {
			t.Fatalf("shard %d generation %v, want %v (%v)", i, g, want, gens)
		}
	}

	// Deterministic rejection: every backend 422s, the router forwards it.
	postJSON(t, routerTS.Client(), routerTS.URL+"/v1/ingest", `{}`, http.StatusUnprocessableEntity)
	// Malformed JSON: every backend 400s.
	postJSON(t, routerTS.Client(), routerTS.URL+"/v1/ingest", `{nope`, http.StatusBadRequest)

	// Partial application: backend 1 hits an internal failure. The router
	// must refuse to report merged generations and name the divergence.
	backend1Fails.Store(true)
	resp, err := routerTS.Client().Post(routerTS.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte(`{"day":13}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial application = %d, want 502: %s", resp.StatusCode, body)
	}
	var parsed struct {
		Shards []struct {
			Shard   int  `json:"shard"`
			Applied bool `json:"applied"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil || len(parsed.Shards) != 2 {
		t.Fatalf("partial-application detail: %v %s", err, body)
	}
	if !parsed.Shards[0].Applied || parsed.Shards[1].Applied {
		t.Fatalf("applied flags wrong: %s", body)
	}

	// GET is rejected without touching any backend.
	status, _ := getRaw(t, routerTS.Client(), routerTS.URL+"/v1/ingest")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest = %d", status)
	}
}

// TestRouterAppEndpoints: the application endpoints answer through the
// scatter-gather merge, and a story seed whose home shard is down answers
// 502 even under fail-open — with the one shard that could hold the
// canonical phrase unreachable, "not found" would be a guess.
func TestRouterAppEndpoints(t *testing.T) {
	flaky, routerTS, _ := newFaultFixture(t, 2, true)
	c := routerTS.Client()

	rw := getJSON(t, c, routerTS.URL+"/v1/query/rewrite?q=best+family+sedans", 200)
	if rw["query"] != "best family sedans" {
		t.Fatalf("rewrite through router = %v", rw)
	}
	story := getJSON(t, c, routerTS.URL+"/v1/story?seed=brand+unveils+sedan+model+a", 200)
	if story["seed"] != "brand unveils sedan model a" {
		t.Fatalf("story through router = %v", story)
	}
	tag := getJSON(t, c, routerTS.URL+"/v1/tag?title=best+family+sedans+roundup", 200)
	if _, ok := tag["concepts"]; !ok {
		t.Fatalf("tag through router = %v", tag)
	}

	// The seed resolves against HomeShard(Event, seed); kill that shard.
	target := ontology.HomeShard(ontology.Event, "brand unveils sedan model a", 2)
	flaky[target].down.Store(true)
	status, body := getRaw(t, c, routerTS.URL+"/v1/story?seed=brand+unveils+sedan+model+a")
	if status != http.StatusBadGateway {
		t.Fatalf("story with dead home shard = %d: %s", status, body)
	}
}

// TestShardFileFormatEquivalence is the binary-format serving pin: the
// same shard booted from a GIANTBIN artifact and from its JSON twin must
// be indistinguishable — byte for byte on /v1/search and /v1/node at the
// backend, and byte for byte on the router's merged /v1/search, /v1/node
// and /v1/stats when a whole fleet boots from each format. This is the
// exact giantd -shard i/k -in shard-i.{json,bin} boot path: artifacts are
// written to disk and loaded back through ontology.LoadShardFile's magic
// auto-detection.
func TestShardFileFormatEquivalence(t *testing.T) {
	const k = 2
	union := testOntology(0).Snapshot()
	ss, err := ontology.ShardSnapshot(union, k)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	type fleet struct {
		backendTS []*httptest.Server
		routerTS  *httptest.Server
	}
	boot := func(ext string, save func(p *ontology.ShardProjection, path string) error) fleet {
		var fl fleet
		urls := make([]string, k)
		for i := 0; i < k; i++ {
			path := fmt.Sprintf("%s/shard-%d-of-%d.%s", dir, i, k, ext)
			if err := save(ss.Projection(i), path); err != nil {
				t.Fatalf("save %s: %v", path, err)
			}
			proj, err := ontology.LoadShardFile(path)
			if err != nil {
				t.Fatalf("load %s: %v", path, err)
			}
			ts := httptest.NewServer(NewShard(proj, Options{}).Handler())
			t.Cleanup(ts.Close)
			fl.backendTS = append(fl.backendTS, ts)
			urls[i] = ts.URL
		}
		rt, err := NewRouter(RouterOptions{Backends: urls})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		fl.routerTS = httptest.NewServer(rt.Handler())
		t.Cleanup(fl.routerTS.Close)
		return fl
	}
	jsonFleet := boot("json", (*ontology.ShardProjection).SaveFile)
	binFleet := boot("bin", (*ontology.ShardProjection).SaveBinaryFile)

	var paths []string
	for _, n := range union.Nodes() {
		v := url.Values{}
		v.Set("phrase", n.Phrase)
		paths = append(paths, "/v1/node?"+v.Encode(), fmt.Sprintf("/v1/node?id=%d", n.ID))
		v.Set("type", n.Type.String())
		paths = append(paths, "/v1/node?"+v.Encode())
		for _, a := range n.Aliases {
			av := url.Values{}
			av.Set("phrase", a)
			av.Set("type", n.Type.String())
			paths = append(paths, "/v1/node?"+av.Encode())
		}
	}
	for _, q := range []string{"sedan", "model", "a", "zzz-no-hit"} {
		for _, limit := range []string{"1", "5", "100"} {
			paths = append(paths, "/v1/search?"+url.Values{"q": {q}, "limit": {limit}}.Encode())
		}
	}

	same := func(what, jsonURL, binURL, path string) {
		t.Helper()
		jStatus, jBody := getRaw(t, http.DefaultClient, jsonURL+path)
		bStatus, bBody := getRaw(t, http.DefaultClient, binURL+path)
		if jStatus != bStatus || !bytes.Equal(jBody, bBody) {
			t.Fatalf("%s %s: formats diverge\njson (%d):   %s\nbinary (%d): %s",
				what, path, jStatus, jBody, bStatus, bBody)
		}
	}
	for _, p := range paths {
		same("router", jsonFleet.routerTS.URL, binFleet.routerTS.URL, p)
		for i := 0; i < k; i++ {
			same(fmt.Sprintf("backend %d", i), jsonFleet.backendTS[i].URL, binFleet.backendTS[i].URL, p)
		}
	}
	// The routers' merged stats are fully deterministic: byte-identical.
	same("router", jsonFleet.routerTS.URL, binFleet.routerTS.URL, "/v1/stats")
	// Backend stats embed a load timestamp; everything else must agree.
	for i := 0; i < k; i++ {
		j := getJSON(t, http.DefaultClient, jsonFleet.backendTS[i].URL+"/v1/stats", 200)
		b := getJSON(t, http.DefaultClient, binFleet.backendTS[i].URL+"/v1/stats", 200)
		delete(j, "loaded_at")
		delete(b, "loaded_at")
		if !reflect.DeepEqual(j, b) {
			t.Fatalf("backend %d stats diverge\njson:   %v\nbinary: %v", i, j, b)
		}
	}
}
