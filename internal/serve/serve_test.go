package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"giant/internal/delta"
	"giant/internal/ontology"
)

// testOntology hand-builds a small ontology with every node and edge type.
// variant skews phrases so reload tests can tell two snapshots apart.
func testOntology(variant int) *ontology.Ontology {
	o := ontology.New()
	auto := o.AddNode(ontology.Category, "auto")
	sedans := o.AddNode(ontology.Concept, "family sedans")
	o.AddAlias(sedans, "sedans for families")
	var ents []ontology.NodeID
	for i := 0; i < 6+variant; i++ {
		e := o.AddNode(ontology.Entity, fmt.Sprintf("sedan model %c", 'a'+i))
		ents = append(ents, e)
	}
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(o.AddEdge(auto, sedans, ontology.IsA, 1))
	for _, e := range ents {
		must(o.AddEdge(sedans, e, ontology.IsA, 1))
	}
	must(o.AddEdge(ents[0], ents[1], ontology.Correlate, 1))
	ev1 := o.AddNodeAt(ontology.Event, "brand unveils sedan model a", 3)
	o.SetEventAttrs(ev1, "unveils", "tokyo", 3)
	ev2 := o.AddNodeAt(ontology.Event, "sedan model a wins award", 9)
	o.SetEventAttrs(ev2, "wins", "", 9)
	must(o.AddEdge(ev1, ents[0], ontology.Involve, 1))
	must(o.AddEdge(ev2, ents[0], ontology.Involve, 1))
	topic := o.AddNode(ontology.Topic, "sedan launch season")
	must(o.AddEdge(topic, ev1, ontology.IsA, 1))
	return o
}

func getJSON(t *testing.T, client *http.Client, url string, want int) map[string]any {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, want, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v: %s", url, err, body)
	}
	return out
}

func TestEndpoints(t *testing.T) {
	srv := New(testOntology(0).Snapshot(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	if got := getJSON(t, c, ts.URL+"/healthz", 200); got["status"] != "ok" {
		t.Fatalf("healthz = %v", got)
	}
	stats := getJSON(t, c, ts.URL+"/v1/stats", 200)
	nbt := stats["nodes_by_type"].(map[string]any)
	if nbt["entity"].(float64) != 6 || nbt["event"].(float64) != 2 {
		t.Fatalf("stats = %v", stats)
	}

	node := getJSON(t, c, ts.URL+"/v1/node?phrase=family+sedans&type=concept", 200)
	if node["node"].(map[string]any)["phrase"] != "family sedans" {
		t.Fatalf("node = %v", node)
	}
	children := node["children"].(map[string]any)["isA"].([]any)
	if len(children) != 6 {
		t.Fatalf("children = %v", children)
	}
	// Alias resolution and FindAny-style lookup.
	getJSON(t, c, ts.URL+"/v1/node?phrase=sedans+for+families&type=concept", 200)
	getJSON(t, c, ts.URL+"/v1/node?phrase=sedan+launch+season", 200)
	getJSON(t, c, ts.URL+"/v1/node?phrase=nope", 404)
	getJSON(t, c, ts.URL+"/v1/node?id=bogus", 400)
	getJSON(t, c, ts.URL+"/v1/node", 400)

	search := getJSON(t, c, ts.URL+"/v1/search?q=sedan&limit=3", 200)
	if search["count"].(float64) != 3 {
		t.Fatalf("search = %v", search)
	}
	getJSON(t, c, ts.URL+"/v1/search", 400)

	rw := getJSON(t, c, ts.URL+"/v1/query/rewrite?q=best+family+sedans", 200)
	if rw["concept"] != "family sedans" {
		t.Fatalf("rewrite = %v", rw)
	}
	if len(rw["rewrites"].([]any)) == 0 {
		t.Fatalf("no rewrites: %v", rw)
	}

	story := getJSON(t, c, ts.URL+"/v1/story?seed=brand+unveils+sedan+model+a", 200)
	nEvents := 0
	for _, b := range story["branches"].([]any) {
		nEvents += len(b.([]any))
	}
	if nEvents != 2 { // both events share entity "sedan model a"
		t.Fatalf("story = %v", story)
	}
	getJSON(t, c, ts.URL+"/v1/story?seed=unknown", 404)

	// Tagging via GET and POST.
	tag := getJSON(t, c, ts.URL+"/v1/tag?title=best+family+sedans+roundup&entities=sedan+model+a", 200)
	if len(tag["concepts"].([]any)) == 0 {
		t.Fatalf("tag concepts = %v", tag)
	}
	body, _ := json.Marshal(tagRequest{Title: "brand unveils sedan model a", Entities: []string{"sedan model a"}})
	resp, err := c.Post(ts.URL+"/v1/tag", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST tag = %d", resp.StatusCode)
	}

	metrics := getJSON(t, c, ts.URL+"/v1/metrics", 200)
	eps := metrics["endpoints"].(map[string]any)
	if eps["node"].(map[string]any)["requests"].(float64) < 5 {
		t.Fatalf("metrics undercounted: %v", eps["node"])
	}
}

func TestResponseCache(t *testing.T) {
	srv := New(testOntology(0).Snapshot(), Options{CacheSize: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	url := ts.URL + "/v1/search?q=sedan"
	for i, wantHit := range []bool{false, true} {
		resp, err := c.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if gotHit := resp.Header.Get("X-Cache") == "hit"; gotHit != wantHit {
			t.Fatalf("request %d: cache hit = %v, want %v", i, gotHit, wantHit)
		}
	}
	// Errors are not cached.
	for i := 0; i < 2; i++ {
		resp, _ := c.Get(ts.URL + "/v1/search")
		if resp.Header.Get("X-Cache") == "hit" {
			t.Fatal("cached an error response")
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestConcurrentCacheHitsSameKey hammers one cached URL from many
// goroutines: cached bodies are shared between responses, so any handler
// mutation of the cached backing array is a data race this test surfaces
// under -race (regression: writeBody used to append '\n' to the shared
// slice per response).
func TestConcurrentCacheHitsSameKey(t *testing.T) {
	srv := New(testOntology(0).Snapshot(), Options{CacheSize: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/search?q=sedan&limit=5"

	var want []byte
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < 50; i++ {
				resp, err := c.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("status %d", resp.StatusCode)
					return
				}
				_ = body
			}
		}()
	}
	wg.Wait()
	resp, err := ts.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	want, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(want) == 0 || want[len(want)-1] != '\n' {
		t.Fatalf("response not newline-terminated: %q", want)
	}
}

func TestReloadHotSwap(t *testing.T) {
	variant := 0
	srv := New(testOntology(variant).Snapshot(), Options{
		Loader: func() (*ontology.Snapshot, error) {
			variant++
			return testOntology(variant).Snapshot(), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	before := getJSON(t, c, ts.URL+"/v1/stats", 200)
	resp, err := c.Post(ts.URL+"/v1/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reload = %d", resp.StatusCode)
	}
	after := getJSON(t, c, ts.URL+"/v1/stats", 200)
	if after["generation"].(float64) != before["generation"].(float64)+1 {
		t.Fatalf("generation did not advance: %v -> %v", before["generation"], after["generation"])
	}
	if after["nodes"].(float64) != before["nodes"].(float64)+1 {
		t.Fatalf("reload did not swap the snapshot: %v -> %v", before["nodes"], after["nodes"])
	}
	// GET /v1/reload is rejected; reload without a loader is unavailable.
	resp, _ = c.Get(ts.URL + "/v1/reload")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload = %d", resp.StatusCode)
	}
	srvNoLoader := New(testOntology(0).Snapshot(), Options{})
	rr := httptest.NewRecorder()
	srvNoLoader.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/reload", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("reload without loader = %d", rr.Code)
	}
}

// TestConcurrentReadsDuringReload hammers every read endpoint from 32
// goroutines while /v1/reload hot-swaps snapshots underneath them; with
// -race this doubles as the lock-free-reads proof. No request may 5xx.
func TestConcurrentReadsDuringReload(t *testing.T) {
	var variant atomic.Int64
	srv := New(testOntology(0).Snapshot(), Options{
		CacheSize: 64,
		Loader: func() (*ontology.Snapshot, error) {
			return testOntology(int(variant.Add(1)) % 4).Snapshot(), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	urls := []string{
		"/healthz",
		"/v1/stats",
		"/v1/node?phrase=family+sedans&type=concept",
		"/v1/node?id=1",
		"/v1/search?q=sedan&limit=5",
		"/v1/query/rewrite?q=best+family+sedans",
		"/v1/story?seed=brand+unveils+sedan+model+a",
		"/v1/tag?title=review+of+sedan+model+a&entities=sedan+model+a",
		"/v1/metrics",
	}

	const (
		readers = 32
		iters   = 40
		reloads = 25
	)
	var wg sync.WaitGroup
	var server5xx atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < iters; i++ {
				url := ts.URL + urls[(g+i)%len(urls)]
				resp, err := c.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					server5xx.Add(1)
					t.Errorf("GET %s = %d", url, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &http.Client{Timeout: 10 * time.Second}
		for i := 0; i < reloads; i++ {
			resp, err := c.Post(ts.URL+"/v1/reload", "", nil)
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				server5xx.Add(1)
				t.Errorf("reload = %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d requests returned 5xx during snapshot swaps", n)
	}
	if gen := srv.Generation(); gen != reloads+1 {
		t.Fatalf("generation = %d, want %d", gen, reloads+1)
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	srv := New(testOntology(0).Snapshot(), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Run(ctx, "127.0.0.1:0", srv.Handler(), time.Second) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not shut down")
	}
}

// fakeIngester applies one real delta per batch against the currently
// served snapshot: one new concept node per batch day, linked under the
// existing category.
func fakeIngester(srv **Server) func(delta.Batch) (*ontology.Snapshot, *delta.Delta, error) {
	return func(b delta.Batch) (*ontology.Snapshot, *delta.Delta, error) {
		if len(b.Docs) == 0 && len(b.Clicks) == 0 {
			return nil, nil, fmt.Errorf("empty batch: %w", delta.ErrInvalidBatch)
		}
		phrase := fmt.Sprintf("fresh concept day %d", b.EffectiveDay())
		d := &delta.Delta{
			Day: b.EffectiveDay(),
			Add: []delta.NodeAdd{{Type: ontology.Concept, Phrase: phrase, Day: b.EffectiveDay()}},
			Edges: []delta.EdgeAdd{{
				SrcType: ontology.Category, Src: "auto",
				DstType: ontology.Concept, Dst: phrase,
				Type: ontology.IsA, Weight: 1,
			}},
		}
		next, err := delta.Apply((*srv).Current(), d)
		return next, d, err
	}
}

func postJSON(t *testing.T, c *http.Client, url, body string, want int) map[string]any {
	t.Helper()
	resp, err := c.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s = %d, want %d: %s", url, resp.StatusCode, want, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("POST %s: bad JSON: %v: %s", url, err, raw)
	}
	return out
}

// TestIngestAndRollback drives the live-update lifecycle end to end:
// ingest bumps the generation and serves the new node, rollback reverts
// to the previous generation, and the store's retention keeps both
// visible in /v1/stats.
func TestIngestAndRollback(t *testing.T) {
	var srv *Server
	srv = New(testOntology(0).Snapshot(), Options{Ingest: fakeIngester(&srv)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	batch := `{"day":12,"docs":[{"id":-1,"title":"fresh doc","category":0,"day":12}],"clicks":[]}`
	out := postJSON(t, c, ts.URL+"/v1/ingest", batch, 200)
	if out["generation"].(float64) != 2 || out["old_generation"].(float64) != 1 {
		t.Fatalf("ingest generations = %v", out)
	}
	dsum := out["delta"].(map[string]any)
	if dsum["added"].(float64) != 1 {
		t.Fatalf("delta summary = %v", dsum)
	}
	// The new node serves immediately.
	node := getJSON(t, c, ts.URL+"/v1/node?phrase=fresh+concept+day+12&type=concept", 200)
	if node["node"].(map[string]any)["phrase"] != "fresh concept day 12" {
		t.Fatalf("node = %v", node)
	}
	// Stats lists both retained generations.
	stats := getJSON(t, c, ts.URL+"/v1/stats", 200)
	if gens := stats["generations"].([]any); len(gens) != 2 {
		t.Fatalf("generations = %v", gens)
	}

	// Rollback reverts to generation 1 and the ingested node vanishes.
	rb := postJSON(t, c, ts.URL+"/v1/rollback", "", 200)
	if rb["generation"].(float64) != 1 {
		t.Fatalf("rollback = %v", rb)
	}
	getJSON(t, c, ts.URL+"/v1/node?phrase=fresh+concept+day+12&type=concept", 404)
	// A second rollback has nowhere to go.
	postJSON(t, c, ts.URL+"/v1/rollback", "", http.StatusConflict)

	// Bad requests: malformed JSON and a failing ingester.
	postJSON(t, c, ts.URL+"/v1/ingest", "{not json", http.StatusBadRequest)
	postJSON(t, c, ts.URL+"/v1/ingest", `{"day":1}`, http.StatusUnprocessableEntity)
	// Ingest without an ingester is unavailable.
	srvNo := New(testOntology(0).Snapshot(), Options{})
	rr := httptest.NewRecorder()
	srvNo.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader([]byte(`{}`))))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest without ingester = %d", rr.Code)
	}
	// Internal delta-pipeline failures (no ErrInvalidBatch in the chain)
	// must surface as 5xx, not blame the client.
	srvBoom := New(testOntology(0).Snapshot(), Options{
		Ingest: func(delta.Batch) (*ontology.Snapshot, *delta.Delta, error) {
			return nil, nil, fmt.Errorf("delta pipeline invariant violated")
		},
	})
	rr = httptest.NewRecorder()
	srvBoom.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader([]byte(`{}`))))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("internal ingest failure = %d, want 500", rr.Code)
	}
}

// TestConcurrentReadsDuringIngest is the live-update analogue of the
// reload hammer: 16 readers sweep the read endpoints while batches ingest
// and occasionally roll back; nothing may 5xx (run under -race).
func TestConcurrentReadsDuringIngest(t *testing.T) {
	var srv *Server
	srv = New(testOntology(0).Snapshot(), Options{CacheSize: 64, History: 8, Ingest: fakeIngester(&srv)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	urls := []string{
		"/healthz",
		"/v1/stats",
		"/v1/node?phrase=family+sedans&type=concept",
		"/v1/search?q=sedan&limit=5",
		"/v1/query/rewrite?q=best+family+sedans",
		"/v1/metrics",
	}
	const (
		readers = 16
		iters   = 30
		batches = 20
	)
	var wg sync.WaitGroup
	var server5xx atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < iters; i++ {
				url := ts.URL + urls[(g+i)%len(urls)]
				resp, err := c.Get(url)
				if err != nil {
					t.Errorf("GET %s: %v", url, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					server5xx.Add(1)
					t.Errorf("GET %s = %d", url, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &http.Client{Timeout: 10 * time.Second}
		for i := 0; i < batches; i++ {
			body := fmt.Sprintf(`{"day":%d,"docs":[{"id":-1,"title":"doc %d","category":0,"day":%d}]}`, i+1, i, i+1)
			resp, err := c.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				server5xx.Add(1)
				t.Errorf("ingest = %d", resp.StatusCode)
			}
			if i%5 == 4 {
				resp, err := c.Post(ts.URL+"/v1/rollback", "", nil)
				if err != nil {
					t.Errorf("rollback: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					server5xx.Add(1)
					t.Errorf("rollback = %d", resp.StatusCode)
				}
			}
		}
	}()
	wg.Wait()
	if n := server5xx.Load(); n > 0 {
		t.Fatalf("%d requests returned 5xx during live ingest", n)
	}
}
