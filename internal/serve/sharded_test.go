package serve

import (
	"fmt"
	"io"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"

	"giant/internal/delta"
	"giant/internal/ontology"
)

// shardedServer builds a NewSharded server over the test ontology.
func shardedServer(t *testing.T, k int) (*Server, *httptest.Server) {
	t.Helper()
	ss, err := ontology.ShardSnapshot(testOntology(0).Snapshot(), k)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSharded(ss, Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestShardedStatsAndHealth: /healthz reports the shard count and
// /v1/stats lists one per-shard generation entry per shard, with home
// node counts summing to the union.
func TestShardedStatsAndHealth(t *testing.T) {
	srv, ts := shardedServer(t, 3)
	c := ts.Client()

	h := getJSON(t, c, ts.URL+"/healthz", 200)
	if h["shards"].(float64) != 3 {
		t.Fatalf("healthz shards = %v", h["shards"])
	}
	stats := getJSON(t, c, ts.URL+"/v1/stats", 200)
	shards, ok := stats["shards"].([]any)
	if !ok || len(shards) != 3 {
		t.Fatalf("stats shards = %v", stats["shards"])
	}
	sum := 0.0
	for i, s := range shards {
		m := s.(map[string]any)
		if int(m["shard"].(float64)) != i {
			t.Fatalf("shard order broken: %v", shards)
		}
		if m["generation"].(float64) != 1 {
			t.Fatalf("initial per-shard generation = %v", m["generation"])
		}
		sum += m["nodes"].(float64)
	}
	if want := stats["nodes"].(float64); sum != want {
		t.Fatalf("per-shard home nodes sum to %v, union has %v", sum, want)
	}
	if srv.Current().NodeCount() != int(stats["nodes"].(float64)) {
		t.Fatal("union snapshot mismatch")
	}
}

// TestShardedSearchMatchesLegacy: the scatter-gather /v1/search returns
// exactly what the single-snapshot server returns, for every query.
func TestShardedSearchMatchesLegacy(t *testing.T) {
	_, shardedTS := shardedServer(t, 4)
	legacy := httptest.NewServer(New(testOntology(0).Snapshot(), Options{}).Handler())
	defer legacy.Close()

	for _, q := range []string{"sedan", "model", "sedan+model+a", "families", "zzz"} {
		for _, limit := range []int{1, 3, 50} {
			url := fmt.Sprintf("/v1/search?q=%s&limit=%d", q, limit)
			a := getJSON(t, shardedTS.Client(), shardedTS.URL+url, 200)
			b := getJSON(t, legacy.Client(), legacy.URL+url, 200)
			if !reflect.DeepEqual(a["results"], b["results"]) || a["count"] != b["count"] {
				t.Fatalf("search %s diverges: sharded %v vs legacy %v", url, a["results"], b["results"])
			}
		}
	}
}

// TestShardedIngestPublishesTouchedShardsOnly: an ingest whose delta
// touches a subset of shards bumps only those shards' generations — and
// after a rollback (which re-partitions the served world while the
// ingester keeps its own lineage) the next ingest republishes every shard
// whose served projection diverged, so a shard generation always
// identifies its content.
func TestShardedIngestPublishesTouchedShardsOnly(t *testing.T) {
	const k = 4
	ss, err := ontology.ShardSnapshot(testOntology(0).Snapshot(), k)
	if err != nil {
		t.Fatal(err)
	}
	// The fake ingester mirrors giant.System: it advances its OWN sharded
	// lineage, which a serving-side rollback does not rewind.
	lineage := ss
	day := 0
	opts := Options{}
	opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
		day++
		d := &delta.Delta{Day: b.Day, Add: []delta.NodeAdd{{Type: ontology.Concept, Phrase: fmt.Sprintf("hybrid sedans %d", day), Day: b.Day}}}
		next, merged, touched, err := delta.ApplySharded(lineage, []*delta.Delta{d})
		if err == nil {
			lineage = next
		}
		return next, merged, touched, err
	}
	srv := NewSharded(ss, opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"day":12}`, 200)
	touched, ok := resp["touched_shards"].([]any)
	if !ok || len(touched) != 1 {
		t.Fatalf("touched_shards = %v", resp["touched_shards"])
	}
	home := int(touched[0].(float64))
	if want := ontology.HomeShard(ontology.Concept, "hybrid sedans 1", k); home != want {
		t.Fatalf("touched shard %d, want home %d", home, want)
	}
	gens := resp["shard_generations"].([]any)
	for i, g := range gens {
		want := 1.0
		if i == home {
			want = 2.0
		}
		if g.(float64) != want {
			t.Fatalf("shard %d generation %v, want %v (gens %v)", i, g, want, gens)
		}
	}
	// The new node serves immediately from the union view.
	node := getJSON(t, ts.Client(), ts.URL+"/v1/node?phrase=hybrid+sedans+1", 200)
	if node["node"].(map[string]any)["phrase"] != "hybrid sedans 1" {
		t.Fatalf("ingested node not served: %v", node)
	}
	// Rollback reverts the served world (dropping the node) and
	// republishes every shard.
	postJSON(t, ts.Client(), ts.URL+"/v1/rollback", "", 200)
	getJSON(t, ts.Client(), ts.URL+"/v1/node?phrase=hybrid+sedans+1", 404)

	// The ingester's own lineage was NOT rolled back, so the next ingest
	// flips every untouched shard's served content back to the lineage —
	// each of those shards must republish (generation bump), or a shard
	// generation would stop identifying its content.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"day":13}`, 200)
	gens = resp["shard_generations"].([]any)
	stats := getJSON(t, ts.Client(), ts.URL+"/v1/stats", 200)
	shardStats := stats["shards"].([]any)
	for i, g := range gens {
		// Every shard republished at least once since the rollback push:
		// generation must exceed the post-rollback value (rollback pushed
		// all shards, so > 2 for untouched, > 3 possible for home).
		if g.(float64) < 3 {
			t.Fatalf("shard %d generation %v after rollback+ingest; diverged content must republish (gens %v)", i, g, gens)
		}
		if shardStats[i].(map[string]any)["generation"].(float64) != g.(float64) {
			t.Fatalf("stats and ingest response disagree on shard %d generation", i)
		}
	}
	// Both lineage nodes serve again.
	getJSON(t, ts.Client(), ts.URL+"/v1/node?phrase=hybrid+sedans+1", 200)
	getJSON(t, ts.Client(), ts.URL+"/v1/node?phrase=hybrid+sedans+2", 200)
}

// TestShardedNodeCacheSurvivesForeignRepublication pins shard-local cache
// keying on the in-process sharded server (the ROADMAP's shard-local
// cache item): /v1/node responses are cached under the resolved node's
// home shard, so an append-only ingest that republishes a FOREIGN shard
// must not evict them — while entries homed on the touched shard, and the
// union-spanning /v1/search cache, must drop.
func TestShardedNodeCacheSurvivesForeignRepublication(t *testing.T) {
	const k = 4
	snap := testOntology(0).Snapshot()
	ss, err := ontology.ShardSnapshot(snap, k)
	if err != nil {
		t.Fatal(err)
	}
	// The fake ingester adds one concept per batch; its home shard is
	// deterministic, so every other shard stays untouched.
	lineage := ss
	day := 0
	mode := "add"
	opts := Options{CacheSize: 64}
	opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
		var d *delta.Delta
		switch mode {
		case "retire":
			d = &delta.Delta{Day: b.Day, Retire: []delta.Ref{{Type: ontology.Concept, Phrase: "hybrid sedans 1"}}}
		case "isa":
			// An IsA edge between two already-ingested concepts: it can
			// extend transitive ancestor chains on ANY shard, so every
			// carried node cache must drop even though only the
			// endpoints' shards republish.
			d = &delta.Delta{Day: b.Day, Edges: []delta.EdgeAdd{{
				SrcType: ontology.Concept, Src: "hybrid sedans 1",
				DstType: ontology.Concept, Dst: "hybrid sedans 2",
				Type: ontology.IsA, Weight: 1,
			}}}
		default:
			day++
			d = &delta.Delta{Day: b.Day, Add: []delta.NodeAdd{{Type: ontology.Concept, Phrase: fmt.Sprintf("hybrid sedans %d", day), Day: b.Day}}}
		}
		next, merged, touched, err := delta.ApplySharded(lineage, []*delta.Delta{d})
		if err == nil {
			lineage = next
		}
		return next, merged, touched, err
	}
	srv := NewSharded(ss, opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	home := ontology.HomeShard(ontology.Concept, "hybrid sedans 1", k)
	home2 := ontology.HomeShard(ontology.Concept, "hybrid sedans 2", k)
	// Pick one probe node homed on the to-be-touched shard and one homed
	// on a shard no delta in this test ever touches.
	var onTouched, onForeign string
	onForeignShard := -1
	for _, n := range snap.Nodes() {
		u := fmt.Sprintf("/v1/node?phrase=%s&type=%s", url.QueryEscape(n.Phrase), n.Type.String())
		switch s := ontology.HomeShard(n.Type, n.Phrase, k); {
		case s == home:
			if onTouched == "" {
				onTouched = u
			}
		case s != home2 && onForeign == "":
			onForeign, onForeignShard = u, s
		}
	}
	if onTouched == "" || onForeign == "" {
		t.Fatalf("test ontology has no node pair straddling shard %d", home)
	}
	searchURL := "/v1/search?q=sedan&limit=5"

	cacheState := func(url string) string {
		t.Helper()
		resp, err := c.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		if resp.Header.Get("X-Cache") == "hit" {
			return "hit"
		}
		return "miss"
	}
	// warm primes a URL's cache from any prior state.
	warm := func(u string) {
		t.Helper()
		cacheState(u)
		if cacheState(u) != "hit" {
			t.Fatalf("cache did not warm for %s", u)
		}
	}
	for _, u := range []string{onTouched, onForeign, searchURL} {
		warm(u)
	}

	// Ingest republishes only the home shard of the new concept.
	resp := postJSON(t, c, ts.URL+"/v1/ingest", `{"day":12}`, 200)
	touched := resp["touched_shards"].([]any)
	if len(touched) != 1 || int(touched[0].(float64)) != home {
		t.Fatalf("touched shards = %v, want [%d]", touched, home)
	}

	if got := cacheState(onForeign); got != "hit" {
		t.Fatalf("foreign-shard republication evicted an untouched shard's node cache (%s = %s)", onForeign, got)
	}
	if got := cacheState(onTouched); got != "miss" {
		t.Fatalf("touched shard's node cache survived its own republication (%s = %s)", onTouched, got)
	}
	if got := cacheState(searchURL); got != "miss" {
		t.Fatalf("union-spanning search cache survived a republication (%s = %s)", searchURL, got)
	}

	// Seed a second concept, then an IsA-edge-only delta between the two
	// ingested concepts: transitive ancestor chains can change on shards
	// the delta never touches, so carried caches must drop fleet-wide.
	postJSON(t, c, ts.URL+"/v1/ingest", `{"day":13}`, 200)
	warm(onForeign)
	mode = "isa"
	resp = postJSON(t, c, ts.URL+"/v1/ingest", `{"day":14}`, 200)
	for _, s := range resp["touched_shards"].([]any) {
		if int(s.(float64)) == onForeignShard {
			// The probe's shard must stay untouched, or the eviction below
			// would be explained by its own republication.
			t.Fatalf("IsA delta touched the foreign probe's shard %d (touched %v)", onForeignShard, resp["touched_shards"])
		}
	}
	if got := cacheState(onForeign); got != "miss" {
		t.Fatalf("node cache survived an IsA-edge delta that can extend ancestor chains (%s = %s)", onForeign, got)
	}

	// A retiring delta renumbers union IDs: every carried cache must drop.
	warm(onForeign)
	mode = "retire"
	postJSON(t, c, ts.URL+"/v1/ingest", `{"day":15}`, 200)
	if got := cacheState(onForeign); got != "miss" {
		t.Fatalf("node cache survived a retiring delta that renumbers union IDs (%s = %s)", onForeign, got)
	}
}

// TestIngestModeMismatchRejected: wiring the wrong ingester shape for the
// server's mode must 503 instead of silently flipping the serving mode.
func TestIngestModeMismatchRejected(t *testing.T) {
	snap := testOntology(0).Snapshot()
	plainOnSharded, err := ontology.ShardSnapshot(snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	sharded := NewSharded(plainOnSharded, Options{
		Ingest: func(delta.Batch) (*ontology.Snapshot, *delta.Delta, error) { return snap, nil, nil },
	})
	ts := httptest.NewServer(sharded.Handler())
	defer ts.Close()
	postJSON(t, ts.Client(), ts.URL+"/v1/ingest", `{"day":1}`, 503)
	// The serving state stayed sharded.
	if st := sharded.cur.Load(); st.shards == nil {
		t.Fatal("sharded server de-sharded by a rejected ingest")
	}

	legacy := New(snap, Options{
		IngestSharded: func(delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
			return plainOnSharded, nil, nil, nil
		},
	})
	ts2 := httptest.NewServer(legacy.Handler())
	defer ts2.Close()
	postJSON(t, ts2.Client(), ts2.URL+"/v1/ingest", `{"day":1}`, 503)
}

// BenchmarkServeSearch measures the /v1/search scan: the single-snapshot
// path versus the scatter-gather sharded path, on a cache-busting query
// mix (repeated URIs would measure the response cache instead).
func BenchmarkServeSearch(b *testing.B) {
	o := ontology.New()
	for i := 0; i < 5000; i++ {
		o.AddNode(ontology.Concept, fmt.Sprintf("concept number %d", i))
	}
	for i := 0; i < 5000; i++ {
		o.AddNode(ontology.Entity, fmt.Sprintf("entity number %d", i))
	}
	snap := o.Snapshot()
	needles := []string{"number 42", "number 999", "concept number 1", "entity", "no hit at all"}

	b.Run("snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap.Search(needles[i%len(needles)], 10)
		}
	})
	for _, k := range []int{4} {
		ss, err := ontology.ShardSnapshot(snap, k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("sharded=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ss.Search(needles[i%len(needles)], 10)
			}
		})
	}
}
