package serve

// The application-endpoint pin: /v1/tag, /v1/query/rewrite and /v1/story
// must answer byte-identically across all three serving modes — a plain
// New server over the union snapshot, an in-process NewSharded server,
// and a Router over per-shard NewShard backends — for every shard count,
// cold and warm (memoized concept/fragment indexes and rewrite-partial
// caches), and through day-by-day ingest replay including a union-ID-
// renumbering retirement. The workloads are seed-pinned but randomized:
// documents built from live phrases with mixed-case entities, queries at
// every specificity (exact concept, contained entity, single token,
// gibberish, case/whitespace-mangled), and story seeds through canonical
// phrases, aliases, non-event phrases and misses.
//
// The same file pins the two bugfix satellites: routing keys are
// normalized exactly like analysis (a case/whitespace variant of a query
// adds zero backend consults once the canonical form is cached), and the
// degraded-mode policy is uniform with /v1/search — fail-closed 503s
// mention the policy, fail-open answers 200 "partial": true with the
// missing shards listed and never a 5xx.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"giant/internal/delta"
	"giant/internal/ontology"
)

// randomAppCorpus builds a seed-pinned ontology with the full application
// surface: a category over concepts, entities under concepts (some
// aliased, siblings correlated), events with triggers/locations/days
// involving those entities (some aliased), and topics over events.
func randomAppCorpus(r *rand.Rand) *ontology.Ontology {
	o := ontology.New()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	cat := o.AddNode(ontology.Category, "newsroom")
	triggers := []string{"unveils", "wins", "launches", "recalls"}
	locations := []string{"tokyo", "berlin", ""}
	var entities []ontology.NodeID
	var entityPhrases []string
	for i := 0; i < 6; i++ {
		cp := fmt.Sprintf("%s %s %d", corpusWords[r.Intn(len(corpusWords))], corpusWords[r.Intn(len(corpusWords))], i)
		c := o.AddNode(ontology.Concept, cp)
		must(o.AddEdge(cat, c, ontology.IsA, 1))
		var siblings []ontology.NodeID
		for j := 0; j < 2; j++ {
			ep := fmt.Sprintf("%s model %c", cp, 'a'+j)
			e := o.AddNode(ontology.Entity, ep)
			must(o.AddEdge(c, e, ontology.IsA, 1))
			if (i+j)%3 == 0 {
				o.AddAlias(e, fmt.Sprintf("aka %s %d%d", corpusWords[r.Intn(len(corpusWords))], i, j))
			}
			siblings = append(siblings, e)
			entities = append(entities, e)
			entityPhrases = append(entityPhrases, ep)
		}
		must(o.AddEdge(siblings[0], siblings[1], ontology.Correlate, 1))
	}
	for i := 0; i < 10; i++ {
		ei := r.Intn(len(entities))
		trig := triggers[r.Intn(len(triggers))]
		day := 1 + r.Intn(6)
		ev := o.AddNodeAt(ontology.Event, fmt.Sprintf("brand %s %s %d", trig, entityPhrases[ei], i), day)
		o.SetEventAttrs(ev, trig, locations[r.Intn(len(locations))], day)
		must(o.AddEdge(ev, entities[ei], ontology.Involve, 1))
		if i%2 == 1 {
			must(o.AddEdge(ev, entities[(ei+1)%len(entities)], ontology.Involve, 1))
		}
		if i%3 == 0 {
			o.AddAlias(ev, fmt.Sprintf("aka story %d", i))
		}
		if i%4 == 0 {
			topic := o.AddNode(ontology.Topic, fmt.Sprintf("saga %s %d", corpusWords[r.Intn(len(corpusWords))], i))
			must(o.AddEdge(topic, ev, ontology.IsA, 1))
		}
	}
	return o
}

// appRequest is one application-endpoint request replayed against every
// serving mode.
type appRequest struct {
	name   string
	method string
	path   string
	body   string
}

// mangleCase uppercases every other rune — a case variant that must not
// change routing or results.
func mangleCase(s string) string {
	var b strings.Builder
	for i, c := range s {
		if i%2 == 0 {
			b.WriteString(strings.ToUpper(string(c)))
		} else {
			b.WriteString(string(c))
		}
	}
	return b.String()
}

// appWorkloads derives the request mix from the live node set.
func appWorkloads(r *rand.Rand, snap *ontology.Snapshot) []appRequest {
	var concepts, entities, events, topics []ontology.Node
	var eventAliases []string
	for _, n := range snap.Nodes() {
		switch n.Type {
		case ontology.Concept:
			concepts = append(concepts, n)
		case ontology.Entity:
			entities = append(entities, n)
		case ontology.Event:
			events = append(events, n)
			eventAliases = append(eventAliases, n.Aliases...)
		case ontology.Topic:
			topics = append(topics, n)
		}
	}
	pick := func(ns []ontology.Node) ontology.Node { return ns[r.Intn(len(ns))] }
	var reqs []appRequest

	tagGET := func(name, title, content string, ents ...string) {
		v := url.Values{}
		if title != "" {
			v.Set("title", title)
		}
		if content != "" {
			v.Set("content", content)
		}
		if len(ents) > 0 {
			v.Set("entities", strings.Join(ents, ","))
		}
		reqs = append(reqs, appRequest{name: name, method: http.MethodGet, path: "/v1/tag?" + v.Encode()})
	}
	for i := 0; i < 4; i++ {
		ev, ent := pick(events), pick(entities)
		tagGET(fmt.Sprintf("tag-event-%d", i), ev.Phrase+" roundup", "more about "+ent.Phrase+". trailing sentence.", ent.Phrase)
	}
	ent := pick(entities)
	tagGET("tag-mixed-case", mangleCase(pick(events).Phrase), "", mangleCase(ent.Phrase))
	tagGET("tag-title-only", pick(concepts).Phrase+" report", "")
	tagGET("tag-no-sentence", "", "content without a period and no entities")
	doc := fmt.Sprintf(`{"title":%q,"entities":[%q,%q]}`, pick(events).Phrase+" recap", pick(entities).Phrase, pick(entities).Phrase)
	reqs = append(reqs, appRequest{name: "tag-post", method: http.MethodPost, path: "/v1/tag", body: doc})

	rewrite := func(name, q string) {
		reqs = append(reqs, appRequest{name: name, method: http.MethodGet, path: "/v1/query/rewrite?q=" + url.QueryEscape(q)})
	}
	for i := 0; i < 3; i++ {
		rewrite(fmt.Sprintf("rewrite-concept-%d", i), pick(concepts).Phrase)
	}
	rewrite("rewrite-concept-padded", "best "+pick(concepts).Phrase+" deals")
	rewrite("rewrite-entity-exact", pick(entities).Phrase)
	rewrite("rewrite-entity-contained", "news about "+pick(entities).Phrase+" today")
	rewrite("rewrite-token", corpusWords[r.Intn(len(corpusWords))])
	rewrite("rewrite-miss", "zzqqvx plonk")
	rewrite("rewrite-mixed-case", mangleCase(pick(concepts).Phrase))
	rewrite("rewrite-whitespace", "  "+strings.ReplaceAll(pick(concepts).Phrase, " ", "   ")+" ")
	rewrite("rewrite-blank", "   ")

	story := func(name, seed string) {
		reqs = append(reqs, appRequest{name: name, method: http.MethodGet, path: "/v1/story?seed=" + url.QueryEscape(seed)})
	}
	for i := 0; i < 4; i++ {
		story(fmt.Sprintf("story-event-%d", i), pick(events).Phrase)
	}
	if len(eventAliases) > 0 {
		story("story-alias", eventAliases[r.Intn(len(eventAliases))])
	}
	story("story-mixed-case", mangleCase(pick(events).Phrase))
	story("story-topic-404", pick(topics).Phrase)
	story("story-entity-404", pick(entities).Phrase)
	story("story-miss-404", "no such saga anywhere")
	return reqs
}

// assertAppEquivalent replays one request against the reference server
// and a deployment, byte for byte.
func assertAppEquivalent(t *testing.T, refTS, gotTS *httptest.Server, mode string, req appRequest) {
	t.Helper()
	do := func(ts *httptest.Server) (int, []byte) {
		t.Helper()
		if req.method == http.MethodPost {
			resp, err := ts.Client().Post(ts.URL+req.path, "application/json", strings.NewReader(req.body))
			if err != nil {
				t.Fatalf("%s: POST %s: %v", req.name, req.path, err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			return resp.StatusCode, buf.Bytes()
		}
		status, body := getRaw(t, ts.Client(), ts.URL+req.path)
		return status, body
	}
	refStatus, refBody := do(refTS)
	gotStatus, gotBody := do(gotTS)
	if refStatus != gotStatus || !bytes.Equal(refBody, gotBody) {
		t.Fatalf("%s [%s] %s: got (%d) %s != reference (%d) %s",
			req.name, mode, req.path, gotStatus, gotBody, refStatus, refBody)
	}
}

// newAppRouterFleet boots K plain NewShard backends behind a router with
// partial caching enabled.
func newAppRouterFleet(t *testing.T, ss *ontology.ShardedSnapshot, k int) *httptest.Server {
	t.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		backTS := httptest.NewServer(NewShard(ss.Projection(i), Options{}).Handler())
		t.Cleanup(backTS.Close)
		urls[i] = backTS.URL
	}
	rt, err := NewRouter(RouterOptions{Backends: urls, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(routerTS.Close)
	return routerTS
}

// TestApplicationEquivalenceRandomized: for K ∈ {1, 2, 4}, both the
// in-process sharded server and the router answer every workload request
// identically to a plain New server over the same snapshot — twice, so
// the warm pass reads the memoized merged indexes and cached rewrite
// partials the cold pass built.
func TestApplicationEquivalenceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	snap := randomAppCorpus(r).Snapshot()
	reqs := appWorkloads(r, snap)
	refTS := httptest.NewServer(New(snap, Options{}).Handler())
	t.Cleanup(refTS.Close)

	// Guard the harness itself: byte-equality over uniformly empty bodies
	// would prove nothing, so the reference must produce at least one
	// concept tag, one rewrite and one non-empty story tree.
	sawTag, sawRewrite, sawBranch := false, false, false
	for _, req := range reqs {
		if req.method != http.MethodGet {
			continue
		}
		status, body := getRaw(t, refTS.Client(), refTS.URL+req.path)
		if status != http.StatusOK {
			continue
		}
		switch {
		case strings.HasPrefix(req.path, "/v1/tag"):
			sawTag = sawTag || !bytes.Contains(body, []byte(`"concepts":[]`))
		case strings.HasPrefix(req.path, "/v1/query/rewrite"):
			sawRewrite = sawRewrite || bytes.Contains(body, []byte(`"rewrites":["`))
		case strings.HasPrefix(req.path, "/v1/story"):
			sawBranch = sawBranch || bytes.Contains(body, []byte(`"branches":[[`))
		}
	}
	if !sawTag || !sawRewrite || !sawBranch {
		t.Fatalf("degenerate workload: tag=%v rewrite=%v story=%v — the corpus must exercise every merge", sawTag, sawRewrite, sawBranch)
	}

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ss, err := ontology.ShardSnapshot(snap, k)
			if err != nil {
				t.Fatal(err)
			}
			shardTS := httptest.NewServer(NewSharded(ss, Options{CacheSize: 64}).Handler())
			t.Cleanup(shardTS.Close)
			routerTS := newAppRouterFleet(t, ss, k)
			for pass := 0; pass < 2; pass++ {
				for _, req := range reqs {
					assertAppEquivalent(t, refTS, shardTS, fmt.Sprintf("sharded pass %d", pass), req)
					assertAppEquivalent(t, refTS, routerTS, fmt.Sprintf("router pass %d", pass), req)
				}
			}
		})
	}
}

// appReplayDelta scripts the application-surface ingest replay: concepts,
// correlated entities, aliased events with Involve edges, a topic, and a
// day-5 retirement that renumbers union IDs under every carried cache.
func appReplayDelta(day int) *delta.Delta {
	switch day {
	case 1:
		return &delta.Delta{Day: day, Add: []delta.NodeAdd{
			{Type: ontology.Concept, Phrase: "replay rocket news", Day: day},
			{Type: ontology.Entity, Phrase: "replay rocket one", Day: day},
		}, Edges: []delta.EdgeAdd{
			{SrcType: ontology.Concept, Src: "replay rocket news", DstType: ontology.Entity, Dst: "replay rocket one", Type: ontology.IsA, Weight: 1},
		}}
	case 2:
		return &delta.Delta{Day: day, Add: []delta.NodeAdd{
			{Type: ontology.Entity, Phrase: "replay rocket two", Day: day},
			{Type: ontology.Event, Phrase: "brand unveils replay rocket one", Trigger: "unveils", Location: "tokyo", Day: day},
		}, Edges: []delta.EdgeAdd{
			{SrcType: ontology.Concept, Src: "replay rocket news", DstType: ontology.Entity, Dst: "replay rocket two", Type: ontology.IsA, Weight: 1},
			{SrcType: ontology.Entity, Src: "replay rocket one", DstType: ontology.Entity, Dst: "replay rocket two", Type: ontology.Correlate, Weight: 1},
			{SrcType: ontology.Event, Src: "brand unveils replay rocket one", DstType: ontology.Entity, Dst: "replay rocket one", Type: ontology.Involve, Weight: 1},
		}}
	case 3:
		return &delta.Delta{Day: day, Add: []delta.NodeAdd{
			{Type: ontology.Event, Phrase: "replay rocket one wins award", Trigger: "wins", Day: day,
				Aliases: []string{"aka replay award"}},
		}, Edges: []delta.EdgeAdd{
			{SrcType: ontology.Event, Src: "replay rocket one wins award", DstType: ontology.Entity, Dst: "replay rocket one", Type: ontology.Involve, Weight: 1},
		}}
	case 4:
		return &delta.Delta{Day: day, Add: []delta.NodeAdd{
			{Type: ontology.Topic, Phrase: "replay rocket saga", Day: day},
		}, Edges: []delta.EdgeAdd{
			{SrcType: ontology.Topic, Src: "replay rocket saga", DstType: ontology.Event, Dst: "brand unveils replay rocket one", Type: ontology.IsA, Weight: 1},
		}}
	case 5:
		return &delta.Delta{Day: day, Retire: []delta.Ref{{Type: ontology.Entity, Phrase: "replay rocket two"}}}
	default:
		return &delta.Delta{Day: day, Add: []delta.NodeAdd{
			{Type: ontology.Event, Phrase: fmt.Sprintf("replay rocket one launches again %d", day), Trigger: "launches", Day: day},
		}, Edges: []delta.EdgeAdd{
			{SrcType: ontology.Event, Src: fmt.Sprintf("replay rocket one launches again %d", day), DstType: ontology.Entity, Dst: "replay rocket one", Type: ontology.Involve, Weight: 1},
		}}
	}
}

// TestApplicationEquivalenceIngestReplay replays the script day by day
// through /v1/ingest on BOTH deployments for K ∈ {1, 2, 4}; after every
// day, each must answer the application workload byte-identically to a
// fresh reference server over the evolved union — cold and warm.
func TestApplicationEquivalenceIngestReplay(t *testing.T) {
	base := randomAppCorpus(rand.New(rand.NewSource(29))).Snapshot()
	reqs := []appRequest{
		{name: "tag", method: http.MethodGet, path: "/v1/tag?" + url.Values{
			"title":    {"brand unveils replay rocket one roundup"},
			"entities": {"replay rocket one,replay rocket two"},
		}.Encode()},
		{name: "rewrite-concept", method: http.MethodGet, path: "/v1/query/rewrite?q=replay+rocket+news"},
		{name: "rewrite-entity", method: http.MethodGet, path: "/v1/query/rewrite?q=replay+rocket+one"},
		{name: "story-event", method: http.MethodGet, path: "/v1/story?seed=brand+unveils+replay+rocket+one"},
		{name: "story-alias", method: http.MethodGet, path: "/v1/story?seed=aka+replay+award"},
		{name: "story-topic", method: http.MethodGet, path: "/v1/story?seed=replay+rocket+saga"},
	}
	const maxDay = 7

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ss, err := ontology.ShardSnapshot(base, k)
			if err != nil {
				t.Fatal(err)
			}
			// In-process sharded deployment with its own apply lineage.
			inLineage := ss
			opts := Options{CacheSize: 64}
			opts.IngestSharded = func(b delta.Batch) (*ontology.ShardedSnapshot, *delta.Delta, []bool, error) {
				next, merged, touched, err := delta.ApplySharded(inLineage, []*delta.Delta{appReplayDelta(b.Day)})
				if err == nil {
					inLineage = next
				}
				return next, merged, touched, err
			}
			srv := NewSharded(ss, opts)
			shardTS := httptest.NewServer(srv.Handler())
			t.Cleanup(shardTS.Close)
			// Router fleet: each backend applies the same script to its own
			// lineage, exactly as giantd -shard replays a shared feed.
			urls := make([]string, k)
			for i := 0; i < k; i++ {
				lineage := ss
				shard := i
				back := NewShard(ss.Projection(i), Options{
					ShardIngest: func(b delta.Batch) (*ontology.ShardProjection, *delta.Delta, []bool, error) {
						next, merged, touched, err := delta.ApplySharded(lineage, []*delta.Delta{appReplayDelta(b.Day)})
						if err != nil {
							return nil, nil, nil, err
						}
						lineage = next
						return next.Projection(shard), merged, touched, nil
					},
				})
				backTS := httptest.NewServer(back.Handler())
				t.Cleanup(backTS.Close)
				urls[i] = backTS.URL
			}
			rt, err := NewRouter(RouterOptions{Backends: urls, CacheSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(rt.Close)
			routerTS := httptest.NewServer(rt.Handler())
			t.Cleanup(routerTS.Close)

			for day := 1; day <= maxDay; day++ {
				postJSON(t, shardTS.Client(), shardTS.URL+"/v1/ingest", fmt.Sprintf(`{"day":%d}`, day), 200)
				postJSON(t, routerTS.Client(), routerTS.URL+"/v1/ingest", fmt.Sprintf(`{"day":%d}`, day), 200)
				refTS := httptest.NewServer(New(srv.Current(), Options{}).Handler())
				for pass := 0; pass < 2; pass++ {
					for _, req := range reqs {
						mode := fmt.Sprintf("day %d pass %d", day, pass)
						assertAppEquivalent(t, refTS, shardTS, "sharded "+mode, req)
						assertAppEquivalent(t, refTS, routerTS, "router "+mode, req)
					}
				}
				refTS.Close()
			}
		})
	}
}

// countingBackend counts requests per path, wrapping a shard handler.
type countingBackend struct {
	h  http.Handler
	mu sync.Mutex
	n  map[string]int
}

func (cb *countingBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cb.mu.Lock()
	if cb.n == nil {
		cb.n = map[string]int{}
	}
	cb.n[r.URL.Path]++
	cb.mu.Unlock()
	cb.h.ServeHTTP(w, r)
}

func (cb *countingBackend) count(path string) int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.n[path]
}

// TestAppRoutingNormalizesKeys is the phrase-normalization regression pin
// (the routed tier used to hash the RAW q/seed): a case- or whitespace-
// mangled variant of a query answers byte-identically to the reference
// AND adds zero rewrite consults once the canonical form is cached —
// variants share the normalized cache key, so they cannot be routed (or
// cached) differently from how they are analyzed.
func TestAppRoutingNormalizesKeys(t *testing.T) {
	const k = 2
	snap := testOntology(0).Snapshot()
	ss, err := ontology.ShardSnapshot(snap, k)
	if err != nil {
		t.Fatal(err)
	}
	counters := make([]*countingBackend, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		counters[i] = &countingBackend{h: NewShard(ss.Projection(i), Options{}).Handler()}
		backTS := httptest.NewServer(counters[i])
		t.Cleanup(backTS.Close)
		urls[i] = backTS.URL
	}
	rt, err := NewRouter(RouterOptions{Backends: urls, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(routerTS.Close)
	refTS := httptest.NewServer(New(snap, Options{}).Handler())
	t.Cleanup(refTS.Close)

	// Canonical first, then variants: every response must match the
	// reference fed the SAME raw input (the raw query echoes through the
	// analysis, so the bodies differ between variants by design).
	variants := []string{
		"family sedans",
		"FAMILY Sedans",
		"  family     sedans ",
		"FaMiLy\tSeDaNs",
	}
	for _, q := range variants {
		req := appRequest{name: "rewrite", method: http.MethodGet, path: "/v1/query/rewrite?q=" + url.QueryEscape(q)}
		assertAppEquivalent(t, refTS, routerTS, "variant "+q, req)
	}
	consults := counters[0].count("/v1/query/rewrite") + counters[1].count("/v1/query/rewrite")
	if consults == 0 {
		t.Fatal("canonical query consulted no backend")
	}
	// Re-run every variant: all partials are cached under the shared
	// normalized key, so not one more backend consult may happen.
	for _, q := range variants {
		getRaw(t, routerTS.Client(), routerTS.URL+"/v1/query/rewrite?q="+url.QueryEscape(q))
	}
	if after := counters[0].count("/v1/query/rewrite") + counters[1].count("/v1/query/rewrite"); after != consults {
		t.Fatalf("variants added backend consults: %d -> %d (normalized cache key not shared)", consults, after)
	}

	// Story seeds and tag entities normalize the same way.
	for _, seed := range []string{"brand unveils sedan model a", "Brand UNVEILS Sedan Model A"} {
		req := appRequest{name: "story", method: http.MethodGet, path: "/v1/story?seed=" + url.QueryEscape(seed)}
		assertAppEquivalent(t, refTS, routerTS, "seed "+seed, req)
	}
	req := appRequest{name: "tag", method: http.MethodGet, path: "/v1/tag?" + url.Values{
		"title":    {"Best Family Sedans Roundup"},
		"entities": {"Sedan Model A"},
	}.Encode()}
	assertAppEquivalent(t, refTS, routerTS, "tag mixed case", req)
}

// TestAppEndpointsDegradedPolicy pins satellite parity with /v1/search:
// with a backend down, the three application endpoints fail closed with a
// 503 naming the policy, or — under -fail-open — answer 200 with
// "partial": true and the missing shard listed, never a 5xx.
func TestAppEndpointsDegradedPolicy(t *testing.T) {
	// The story seed must resolve on a LIVE shard for the fail-open tree to
	// form; kill the other one.
	seed := "brand unveils sedan model a"
	dead := 1 - ontology.HomeShard(ontology.Event, seed, 2)
	paths := []string{
		"/v1/tag?" + url.Values{"title": {"best family sedans roundup"}, "entities": {"sedan model a"}}.Encode(),
		"/v1/query/rewrite?q=" + url.QueryEscape("sedan model a"),
		"/v1/story?seed=" + url.QueryEscape(seed),
	}
	for _, failOpen := range []bool{false, true} {
		t.Run(fmt.Sprintf("failOpen=%v", failOpen), func(t *testing.T) {
			flaky, routerTS, _ := newFaultFixture(t, 2, failOpen)
			flaky[dead].down.Store(true)
			c := routerTS.Client()
			for _, p := range paths {
				status, body := getRaw(t, c, routerTS.URL+p)
				if !failOpen {
					if status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("fail-closed")) {
						t.Fatalf("%s fail-closed: status %d body %s, want 503 naming the policy", p, status, body)
					}
					continue
				}
				if status != http.StatusOK {
					t.Fatalf("%s fail-open: status %d body %s, want 200", p, status, body)
				}
				var parsed struct {
					Partial bool  `json:"partial"`
					Missing []int `json:"missing_shards"`
				}
				if err := json.Unmarshal(body, &parsed); err != nil {
					t.Fatalf("%s: %v: %s", p, err, body)
				}
				if !parsed.Partial || len(parsed.Missing) != 1 || parsed.Missing[0] != dead {
					t.Fatalf("%s fail-open: not marked partial on shard %d: %s", p, dead, body)
				}
			}
		})
	}
}
