package serve

// Per-shard-process node serving (servers built with NewShard). A shard
// backend resolves /v1/node only for nodes HOMED on its shard — ghost
// copies answer 404 so that exactly one backend in the fleet answers any
// lookup, and it is the one holding the node's complete incident edge set.
// Responses render union node IDs through the projection's ID table and
// carry two extra fields the router uses to reassemble the composed view:
//
//   - "match": how the lookup resolved ("id", "phrase" or "alias"), which
//     lets the router reproduce the union's lookup-precedence order
//     (phrase matches under any type beat alias matches) when it has to
//     scatter an un-routable lookup across all shards; and
//   - "isa_parents": the node's direct IsA parents with union IDs, in
//     union in-edge order, from which the router assembles the transitive
//     ancestor chain by walking parent→home-shard→parent — a home node's
//     incident edges are exact, so the level-by-level walk reproduces the
//     union BFS byte for byte.

import (
	"net/http"
	"strconv"

	"giant/internal/ontology"
)

// isaRef identifies one IsA parent for router-side ancestor assembly.
type isaRef struct {
	ID     ontology.NodeID `json:"id"` // union ID
	Type   string          `json:"type"`
	Phrase string          `json:"phrase"`
}

// shardNodeDetail is the per-shard /v1/node payload: the standard
// nodeDetail (ancestors limited to what the projection stores) plus the
// router-facing match kind and direct-IsA-parent list.
type shardNodeDetail struct {
	nodeDetail
	Match      string   `json:"match"`
	IsAParents []isaRef `json:"isa_parents,omitempty"`
}

// handleShardNode is handleNode for a per-shard backend: resolution is
// restricted to home nodes and the rendered IDs are union IDs.
func (s *Server) handleShardNode(st *state, r *http.Request) (int, any) {
	p := st.proj
	q := r.URL.Query()
	local := ontology.NodeID(-1)
	match := ""
	switch {
	case q.Get("id") != "":
		// IDs on the wire are union IDs; only the home copy answers.
		id, err := strconv.Atoi(q.Get("id"))
		if err != nil {
			return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid id: "+q.Get("id"))
		}
		if l, ok := p.LocalOf(ontology.NodeID(id)); ok && p.IsHome(l) {
			local, match = l, "id"
		}
	case q.Get("phrase") != "":
		phrase := q.Get("phrase")
		if ts := q.Get("type"); ts != "" {
			t, err := ontology.ParseNodeType(ts)
			if err != nil {
				return http.StatusBadRequest, errBody(codeInvalidArgument, err.Error())
			}
			if id, ok := p.Snap.Lookup(t, phrase); ok && p.IsHome(id) {
				local, match = id, "phrase"
			} else if id, ok := p.Snap.LookupAlias(t, phrase); ok && p.IsHome(id) {
				local, match = id, "alias"
			}
		} else {
			// LookupAny restricted to home nodes: phrase under any type
			// first, then aliases — the union's precedence order. Because
			// same-keyed nodes share a home shard, the home-restricted
			// first match is the union's first match.
			for t := 0; t < ontology.NumNodeTypes && local < 0; t++ {
				if id, ok := p.Snap.Lookup(ontology.NodeType(t), phrase); ok && p.IsHome(id) {
					local, match = id, "phrase"
				}
			}
			for t := 0; t < ontology.NumNodeTypes && local < 0; t++ {
				if id, ok := p.Snap.LookupAlias(ontology.NodeType(t), phrase); ok && p.IsHome(id) {
					local, match = id, "alias"
				}
			}
		}
	default:
		return http.StatusBadRequest, errBody(codeInvalidArgument, "need ?id= or ?phrase=")
	}
	if local < 0 {
		return http.StatusNotFound, errBody(codeNotFound, "node not found")
	}
	node, _ := p.Snap.Get(local)
	d := shardNodeDetail{Match: match}
	api := toAPINode(node)
	api.ID = p.UnionID(local)
	d.Node = api
	for et := ontology.EdgeType(0); et < ontology.NumEdgeTypes; et++ {
		for _, pn := range p.Snap.Parents(local, et) {
			if d.Parents == nil {
				d.Parents = map[string][]string{}
			}
			d.Parents[et.String()] = append(d.Parents[et.String()], pn.Phrase)
			if et == ontology.IsA {
				d.IsAParents = append(d.IsAParents, isaRef{
					ID: p.UnionID(pn.ID), Type: pn.Type.String(), Phrase: pn.Phrase,
				})
			}
		}
		for _, cn := range p.Snap.Children(local, et) {
			if d.Children == nil {
				d.Children = map[string][]string{}
			}
			d.Children[et.String()] = append(d.Children[et.String()], cn.Phrase)
		}
	}
	// Ancestors over the projection alone: complete through the first
	// level (a home node's incident edges are exact) but possibly
	// truncated beyond it — a ghost ancestor's own parents live on other
	// shards. The router rebuilds the full chain from isa_parents; this
	// field keeps a standalone shard backend useful for inspection.
	for _, a := range p.Snap.Ancestors(local) {
		d.Ancestors = append(d.Ancestors, a.Phrase)
	}
	return http.StatusOK, d
}
