package serve

// Router is the multi-process scatter-gather tier: a thin HTTP daemon
// (cmd/giantrouter) that fans requests out over K per-shard giantd
// backends, one per ontology.ShardedSnapshot projection, speaking the same
// ontology.HomeShard phrase hash the in-process sharded server uses.
//
// The contract mirrors PR 4's determinism guarantee across process
// boundaries: for /v1/search, /v1/node, /v1/tag, /v1/query/rewrite and
// /v1/story, the router's merged responses are byte-identical to a
// single-process server over the same world, for every shard count
// (router_test.go and application_equivalence_test.go pin this for
// K ∈ {1, 2, 4} through a day-by-day ingest replay).
//
//	/v1/search         routed fan-out: a generation-stamped term→shard
//	                   routing index (rebuilt from each backend's
//	                   /v1/stats term grams) prunes the scatter to the
//	                   shards that can match; each consulted shard's
//	                   partial is served from a per-shard cache keyed
//	                   (shard, generation, query, limit); merge in union
//	                   node-ID order, truncate. ?scatter=full bypasses
//	                   routing and caching (debug / equivalence diffing).
//	/v1/node           route by HomeShard(type, phrase) when the request
//	                   names both; otherwise scatter and pick the union's
//	                   lookup-precedence winner (phrase beats alias, then
//	                   NodeType order, then union ID). The transitive IsA
//	                   ancestor chain is assembled by walking each
//	                   parent's home shard level by level.
//	/v1/stats          fan-out; per-shard generations listed verbatim,
//	                   whole-world counts from each shard's owned slice
//	/v1/metrics        fan-out; router's own counters plus per-backend
//	/v1/ingest         broadcast to every backend (each holds the full
//	                   mining system and re-derives only its own shard)
//	                   with all-or-nothing generation accounting
//	/v1/reload         broadcast, all-or-nothing
//	/v1/tag            scatter-gather: per-shard ?partial=match candidate
//	                   sets (pruned by the same term-gram routing index as
//	                   search) are merged and scored against a router-held
//	                   concept index built from every shard's
//	                   ?partial=stats concepts
//	/v1/query/rewrite  scatter-gather over ?partial=1 rewrite partials,
//	                   keyed by the NORMALIZED query (lowercased token
//	                   join) for routing and caching, folded by
//	                   queryund.Merge at the router
//	/v1/story          the seed resolves exactly like a typed /v1/node
//	                   lookup (home-shard fast path, alias scatter), then
//	                   the tree forms at the router from the merged
//	                   per-shard ?partial=fragments event lists
//
// Degraded mode is configurable (RouterOptions.FailOpen): when a backend
// is unreachable, every fan-out read — /v1/search, /v1/stats, /v1/tag,
// /v1/query/rewrite, /v1/story and scattered /v1/node lookups — either
// fails closed with 503 or returns the reachable shards' results marked
// "partial": true. A typed /v1/node lookup answers 502 when the one home
// shard that could hold its phrase is unreachable, and writes
// (/v1/ingest, /v1/reload) are always fail-closed.
//
// With RouterOptions.Replicas + WALDir the router serves each shard from
// a replica set over an append-only delta log (internal/wal): reads pick
// a replica by power-of-two-choices among the healthy replicas that have
// applied the shard's newest known log generation (a replica still
// tailing is never consulted for reads ahead of its position), and
// /v1/ingest appends the batch to every shard's log, acking once a
// quorum (⌈N/2⌉) of each shard's replicas confirm the apply — replicas
// left behind catch up from the log alone, and a shard whose slowest
// healthy replica trails the head by more than MaxLag pushes back with
// 429 replica_lagging + Retry-After.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/par"
	"giant/internal/storytree"
	"giant/internal/wal"
)

// RouterOptions configure a Router.
type RouterOptions struct {
	// Backends are the per-shard giantd base URLs, in shard order:
	// Backends[i] must serve shard i of len(Backends). Shorthand for a
	// Replicas value with one replica per shard; ignored when Replicas is
	// set.
	Backends []string
	// Replicas are the per-shard replica sets, in shard order: every URL
	// in Replicas[i] must serve shard i of len(Replicas). Any shard with
	// more than one replica requires WALDir — interchangeable replicas
	// exist only by tailing the same delta log.
	Replicas [][]string
	// WALDir, when set, switches /v1/ingest to the delta-log protocol:
	// batches are appended to a per-shard wal.Log under this directory
	// (shard-<i>-of-<k>.wal) and acknowledged once a quorum of each
	// shard's replicas confirm the apply through GET /v1/wal. Backends
	// must then be log-tailing replicas (giantd -wal).
	WALDir string
	// MaxLag bounds, per shard, how many delta-log generations the slowest
	// healthy replica may trail the log head before ingest pushes back
	// with 429 replica_lagging; 0 means 64.
	MaxLag uint64
	// AckTimeout bounds the quorum wait of a delta-log ingest (how long a
	// replica may take to tail and apply one batch); 0 means WriteTimeout.
	AckTimeout time.Duration
	// Client overrides the HTTP client used for backend calls; nil builds
	// a dedicated one whose idle connections Close releases.
	Client *http.Client
	// Timeout bounds each backend read call; 0 means 5s.
	Timeout time.Duration
	// WriteTimeout bounds each backend call of a write broadcast
	// (/v1/ingest, /v1/reload) — in -build mode a backend re-mines the
	// affected click-graph neighbourhood per batch, which can far exceed
	// the read timeout, and a premature router-side timeout would report
	// a divergence that never happened. 0 means 2m.
	WriteTimeout time.Duration
	// FailOpen selects the degraded-mode policy for fan-out reads: false
	// (the default) fails closed with 503 when any shard is unreachable,
	// true returns the reachable shards' results with "partial": true.
	FailOpen bool
	// Parallelism bounds the fan-out worker pool; <= 0 means
	// min(len(Backends), GOMAXPROCS).
	Parallelism int
	// MaxSearchResults caps /v1/search result counts and must match the
	// backends' cap for byte-identical merges; 0 means 100.
	MaxSearchResults int
	// Story configures story-tree formation at the router's merge site and
	// must match the backends' configuration for byte-identical trees; nil
	// means storytree.DefaultOptions (what serve.New defaults to as well).
	Story *storytree.Options
	// CacheSize bounds each per-shard search-partial cache (entries).
	// Unlike serve.Options.CacheSize, 0 (the default) DISABLES partial
	// caching: a cached partial is served without touching its backend, so
	// caching deliberately trades degraded-mode visibility for
	// availability — a query fully answerable from cache returns complete
	// results even while a backend is down, instead of reporting
	// "partial". That is a semantics change an operator must opt into
	// (cmd/giantrouter does, via -search-cache).
	CacheSize int
	// ProbeInterval enables a background health prober hitting every
	// backend's /healthz; 0 disables it (health marks still update on
	// every proxied call).
	ProbeInterval time.Duration
	// Compact, on a delta-log fleet, lets the prober truncate each
	// shard's log below the fleet-wide applied floor after every probe
	// pass. The cut is additionally bounded by the covered position of
	// the shard's newest published checkpoint, so a replica that died
	// before the floor moved can still rejoin: everything below the cut
	// is recoverable from the artifact. Requires ProbeInterval > 0 to
	// run automatically.
	Compact bool
	// Logf, when set, receives operational log lines — most usefully the
	// backend health transitions ("shard 1 down: ...", "shard 1
	// recovered") detected by traffic and the prober. Nil disables.
	Logf func(format string, args ...any)
}

// replicaState is one backend process's routing state: its health mark
// (updated by every proxied call and by the prober; transitions are
// logged through Options.Logf) and, on a delta-log fleet, the last log
// generation it is known to have applied — reported by the replica on
// every response via the X-Giant-Wal-Gen header. A replica marked down
// has its applied position reset to zero: a dead process's position is
// unknown, so it re-enters read rotation only after a probe observes it
// back at the shard's head generation.
type replicaState struct {
	shard    int
	idx      int // replica ordinal within the shard
	url      string
	down     atomic.Bool
	applied  atomic.Uint64
	inflight atomic.Int64 // in-flight proxied calls, for power-of-two-choices
}

// shardSet is one shard's replica set plus, on a delta-log fleet, the
// shard's append-only ingest log.
type shardSet struct {
	replicas []*replicaState
	log      *wal.Log
}

// Router fans requests out over per-shard backends.
type Router struct {
	opts    RouterOptions
	k       int
	client  *http.Client
	mux     *http.ServeMux
	metrics *metricsRegistry
	// shards[i] holds shard i's replica set (length 1 for a plain
	// Backends deployment) and delta log.
	shards []*shardSet
	// rr rotates the starting replica of each read, so power-of-two-
	// choices samples a moving pair instead of a fixed one.
	rr atomic.Uint64
	// ingestMu serializes ingest and reload broadcasts so concurrent
	// writers reach every backend in the same order.
	ingestMu sync.Mutex
	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
	// routing is the term→shard routing index, lazily rebuilt from a
	// /v1/stats fan-out whenever nil. Dropped (stored nil) by every write
	// broadcast, by the prober on a generation discrepancy, and by a
	// search that observes a backend generation diverging from the index.
	routing   atomic.Pointer[routingIndex]
	routingMu sync.Mutex // serializes index rebuilds (readers use routing)
	// partials[i] caches backend i's parsed search hits keyed
	// (generation, needle, limit); invalidation swaps in a fresh cache.
	partials []atomic.Pointer[hitsCache]
	// rewrites[i] caches backend i's parsed query-rewrite partials keyed
	// (generation, normalized query); same invalidation as partials.
	rewrites []atomic.Pointer[rewriteCache]
	// tagIdx / frags memoize the fleet-wide merged concept index and
	// story-fragment list (built from full ?partial=stats / ?partial=
	// fragments fan-outs). Unlike the per-shard caches they span every
	// backend, so ANY invalidation drops them; a degraded build (missing
	// shards under fail-open) is never stored.
	tagIdx  atomic.Pointer[routerTagIndex]
	tagMu   sync.Mutex // serializes tagIdx rebuilds
	frags   atomic.Pointer[routerFragments]
	fragsMu sync.Mutex // serializes frags rebuilds
	// enc and story drive story-tree formation at the router; they must
	// match the backends' (all default-constructed unless Options.Story /
	// RouterOptions.Story override them in lockstep).
	enc   storytree.Encoder
	story storytree.Options
}

// routingShard is one backend's entry in the routing index: its serving
// generation and home-prefix term grams as of the index build. ok=false
// (the backend failed to answer the stats fan-out) routes conservatively:
// the shard is always consulted and its partials never cached.
type routingShard struct {
	gen   uint64
	grams *ontology.TermGrams
	ok    bool
}

// routingIndex is the router's term→shard posting index: per-shard term
// grams to prune the scatter, with each shard's generation pinning the
// partial-cache keys. Immutable once published.
type routingIndex struct {
	shards []routingShard
}

var routerEndpointNames = []string{
	"healthz", "stats", "node", "search", "tag", "query_rewrite", "story", "metrics", "reload", "ingest",
}

// NewRouter builds a Router over the given per-shard backends (or
// replica sets).
func NewRouter(opts RouterOptions) (*Router, error) {
	sets := opts.Replicas
	if len(sets) == 0 {
		sets = make([][]string, len(opts.Backends))
		for i, b := range opts.Backends {
			sets[i] = []string{b}
		}
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one backend")
	}
	k := len(sets)
	replicated := false
	for i, reps := range sets {
		if len(reps) == 0 {
			return nil, fmt.Errorf("serve: shard %d has no replicas", i)
		}
		if len(reps) > 1 {
			replicated = true
		}
		for ri, b := range reps {
			u, err := url.Parse(b)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("serve: shard %d replica %d: invalid URL %q", i, ri, b)
			}
		}
	}
	if replicated && opts.WALDir == "" {
		return nil, fmt.Errorf("serve: replicated shards need a delta log (set WALDir)")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 2 * time.Minute
	}
	if opts.MaxSearchResults <= 0 {
		opts.MaxSearchResults = 100
	}
	if opts.MaxLag == 0 {
		opts.MaxLag = 64
	}
	rt := &Router{
		opts:     opts,
		k:        k,
		client:   opts.Client,
		metrics:  newMetricsRegistry(routerEndpointNames),
		shards:   make([]*shardSet, k),
		stop:     make(chan struct{}),
		partials: make([]atomic.Pointer[hitsCache], k),
	}
	for i, reps := range sets {
		set := &shardSet{replicas: make([]*replicaState, len(reps))}
		for ri, b := range reps {
			set.replicas[ri] = &replicaState{shard: i, idx: ri, url: strings.TrimRight(b, "/")}
		}
		if opts.WALDir != "" {
			lg, err := wal.Open(filepath.Join(opts.WALDir, fmt.Sprintf("shard-%d-of-%d.wal", i, k)), i, k)
			if err != nil {
				for _, prev := range rt.shards[:i] {
					prev.log.Close()
				}
				return nil, fmt.Errorf("serve: shard %d delta log: %w", i, err)
			}
			set.log = lg
		}
		rt.shards[i] = set
	}
	for i := range rt.partials {
		rt.partials[i].Store(newHitsCache(opts.CacheSize))
	}
	rt.rewrites = make([]atomic.Pointer[rewriteCache], k)
	for i := range rt.rewrites {
		rt.rewrites[i].Store(newRewriteCache(opts.CacheSize))
	}
	rt.enc = storytree.NewBagOfTokensEncoder(16, nil)
	rt.story = storytree.DefaultOptions()
	if opts.Story != nil {
		rt.story = *opts.Story
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	}
	rt.routes()
	if opts.ProbeInterval > 0 {
		rt.probeWG.Add(1)
		go rt.probeLoop()
	}
	return rt, nil
}

// walMode reports whether ingest flows through per-shard delta logs.
func (rt *Router) walMode() bool { return rt.shards[0].log != nil }

// allReplicas flattens the fleet in (shard, replica) order.
func (rt *Router) allReplicas() []*replicaState {
	var out []*replicaState
	for _, set := range rt.shards {
		out = append(out, set.replicas...)
	}
	return out
}

// NumShards returns the backend (= shard) count.
func (rt *Router) NumShards() int { return rt.k }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the background prober, closes the delta logs and releases
// idle backend connections. The router must not be used afterwards.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.probeWG.Wait()
	for _, set := range rt.shards {
		if set.log != nil {
			set.log.Close()
		}
	}
	rt.client.CloseIdleConnections()
}

// workers resolves the fan-out pool size.
func (rt *Router) workers() int {
	if rt.opts.Parallelism > 0 {
		return rt.opts.Parallelism
	}
	if n := runtime.GOMAXPROCS(0); n < rt.k {
		return n
	}
	return rt.k
}

// probeLoop keeps the health marks fresh while traffic is idle, and
// cross-checks each backend's /healthz generation against the routing
// index: a discrepancy means the fleet changed behind the router's back
// (an out-of-band write, or a backend restarted into a different world),
// so the index and every cached partial are dropped.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		// Probe every replica: callReplica refreshes the health mark and
		// applied log position of each, which is also the only way a
		// restarted replica re-enters read rotation — its probe reports it
		// back at the shard's head generation. The generation cross-check
		// below uses one representative at-gate response per shard, so a
		// replica still tailing its way back never masquerades as a fleet
		// change.
		results := make([]backendResult, rt.k)
		chosen := make([]bool, rt.k)
		par.ForEachIndexed(rt.workers(), rt.k, func(i int) {
			set := rt.shards[i]
			probes := make([]backendResult, len(set.replicas))
			for j, rep := range set.replicas {
				probes[j] = rt.callReplica(context.Background(), rt.opts.Timeout, rep, http.MethodGet, "/healthz", nil)
			}
			var gate uint64
			for _, rep := range set.replicas {
				if g := rep.applied.Load(); g > gate {
					gate = g
				}
			}
			for j, rep := range set.replicas {
				if probes[j].ok() && rep.applied.Load() >= gate {
					results[i], chosen[i] = probes[j], true
					break
				}
			}
		})
		if idx := rt.routing.Load(); idx != nil {
			for i := range results {
				if !chosen[i] {
					continue
				}
				var h struct {
					Generation uint64 `json:"generation"`
				}
				if json.Unmarshal(results[i].body, &h) != nil {
					continue
				}
				if !idx.shards[i].ok || idx.shards[i].gen != h.Generation {
					// Either the backend recovered since the index was built
					// (re-index to regain pruning) or its generation moved
					// without a routed write (distrust every cached partial).
					rt.invalidateSearch(nil, true)
					break
				}
			}
		}
		// Compaction rides the probe pass: it needs exactly the applied
		// positions the probes just refreshed, routing index or not.
		if rt.opts.Compact {
			rt.compactOnce()
		}
	}
}

// appliedFloor returns the minimum applied log generation across shard
// s's HEALTHY replicas — the position every reader the router would
// route to has provably passed. ok=false when no replica is healthy
// (a dead fleet has no known floor; nothing may be dropped).
func (rt *Router) appliedFloor(s int) (floor uint64, ok bool) {
	for _, rep := range rt.shards[s].replicas {
		if rep.down.Load() {
			continue
		}
		g := rep.applied.Load()
		if !ok || g < floor {
			floor, ok = g, true
		}
	}
	return floor, ok
}

// checkpointFloor returns the log position covered by shard s's newest
// published checkpoint artifact (0 when none exists or it is unusable).
func (rt *Router) checkpointFloor(s int) uint64 {
	if rt.opts.WALDir == "" {
		return 0
	}
	meta, err := wal.ReadCheckpointMeta(wal.CheckpointPath(rt.opts.WALDir, s, rt.k))
	if err != nil || meta.Shard != s || meta.Shards != rt.k {
		return 0
	}
	return meta.WALGen
}

// compactOnce truncates every shard's delta log below
// min(applied floor over healthy replicas, primary checkpoint's covered
// position). The checkpoint bound is what makes the cut safe for
// replicas the floor does not see (down, or not yet started): any
// record below it is covered by a durable artifact they can hydrate.
// Run by the prober when RouterOptions.Compact is set; also the
// engine behind operator-driven truncation.
func (rt *Router) compactOnce() {
	if !rt.walMode() {
		return
	}
	for s, set := range rt.shards {
		floor, ok := rt.appliedFloor(s)
		if !ok {
			continue
		}
		if ckpt := rt.checkpointFloor(s); ckpt < floor {
			floor = ckpt
		}
		if floor <= set.log.BaseGen() {
			continue
		}
		if err := set.log.TruncateBelow(floor); err != nil {
			if rt.opts.Logf != nil {
				rt.opts.Logf("wal: truncating shard %d log below %d: %v", s, floor, err)
			}
			continue
		}
		if rt.opts.Logf != nil {
			rt.opts.Logf("wal: shard %d log truncated below generation %d (head %d)", s, floor, set.log.Head())
		}
	}
}

// walShardStatus is the wire form of one shard's delta-log compaction
// state in the router's /healthz and /v1/stats.
type walShardStatus struct {
	Shard         int    `json:"shard"`
	Head          uint64 `json:"head"`
	Base          uint64 `json:"base"`
	AppliedFloor  uint64 `json:"applied_floor"`
	CheckpointGen uint64 `json:"checkpoint_gen"`
}

// walStatus summarizes every shard's log head, truncation base, applied
// floor and published-checkpoint position.
func (rt *Router) walStatus() []walShardStatus {
	out := make([]walShardStatus, rt.k)
	for s, set := range rt.shards {
		floor, _ := rt.appliedFloor(s)
		out[s] = walShardStatus{
			Shard:         s,
			Head:          set.log.Head(),
			Base:          set.log.BaseGen(),
			AppliedFloor:  floor,
			CheckpointGen: rt.checkpointFloor(s),
		}
	}
	return out
}

// invalidateSearch drops the routing index and resets search-partial
// caches: every shard's when clearAll (a write retired nodes — union-ID
// renumbering can stale even untouched shards' cached hits — or the
// write's effect is unknown), otherwise only the listed touched shards'
// (an append-only delta cannot change what an untouched backend returns).
func (rt *Router) invalidateSearch(touched []int, clearAll bool) {
	rt.routing.Store(nil)
	// The merged application indexes fold every shard's partial, so even a
	// single-shard delta stales them: drop unconditionally.
	rt.tagIdx.Store(nil)
	rt.frags.Store(nil)
	if clearAll {
		for i := range rt.partials {
			rt.partials[i].Store(newHitsCache(rt.opts.CacheSize))
			rt.rewrites[i].Store(newRewriteCache(rt.opts.CacheSize))
		}
		return
	}
	for _, s := range touched {
		if s >= 0 && s < rt.k {
			rt.partials[s].Store(newHitsCache(rt.opts.CacheSize))
			rt.rewrites[s].Store(newRewriteCache(rt.opts.CacheSize))
		}
	}
}

// ensureRouting returns the current routing index, rebuilding it from a
// /v1/stats fan-out when absent. Backends that fail to answer get an
// ok=false entry — consulted on every search, never cached — so a partial
// rebuild degrades pruning, not correctness.
func (rt *Router) ensureRouting(ctx context.Context) *routingIndex {
	if idx := rt.routing.Load(); idx != nil {
		return idx
	}
	rt.routingMu.Lock()
	defer rt.routingMu.Unlock()
	if idx := rt.routing.Load(); idx != nil {
		return idx
	}
	results := rt.fanout(ctx, nil, http.MethodGet, "/v1/stats", nil)
	idx := &routingIndex{shards: make([]routingShard, rt.k)}
	for i := range results {
		if !results[i].ok() {
			continue
		}
		var parsed struct {
			Shard *struct {
				Generation uint64              `json:"generation"`
				TermStats  *ontology.TermStats `json:"term_stats"`
			} `json:"shard"`
		}
		if json.Unmarshal(results[i].body, &parsed) != nil || parsed.Shard == nil {
			continue
		}
		rs := routingShard{gen: parsed.Shard.Generation, ok: true}
		if parsed.Shard.TermStats != nil {
			if g, err := ontology.DecodeTermGrams(parsed.Shard.TermStats.Grams); err == nil {
				rs.grams = g
			}
		}
		idx.shards[i] = rs
	}
	rt.routing.Store(idx)
	return idx
}

// backendResult is one backend call's outcome.
type backendResult struct {
	shard  int
	status int
	body   []byte
	gen    string // the backend's X-Giant-Generation response header
	err    error
}

func (br *backendResult) ok() bool { return br.err == nil && br.status == http.StatusOK }

// call performs one backend read under the read timeout, picking the
// replica by readOrder and failing over on transport errors and 5xx.
func (rt *Router) call(ctx context.Context, shard int, method, pathAndQuery string, body []byte) backendResult {
	return rt.callTimeout(ctx, rt.opts.Timeout, shard, method, pathAndQuery, body)
}

func (rt *Router) callTimeout(ctx context.Context, timeout time.Duration, shard int, method, pathAndQuery string, body []byte) backendResult {
	var last backendResult
	for _, rep := range rt.readOrder(shard) {
		last = rt.callReplica(ctx, timeout, rep, method, pathAndQuery, body)
		if last.err == nil && last.status < 500 {
			// Any answered status below 500 is authoritative — a 404 is a
			// node miss every replica of the shard would repeat, not a
			// reason to fail over.
			return last
		}
		if ctx.Err() != nil {
			break
		}
	}
	return last
}

// callReplica performs one HTTP call against one replica, updating its
// health mark from the transport outcome and its applied log position
// from the X-Giant-Wal-Gen response header.
func (rt *Router) callReplica(ctx context.Context, timeout time.Duration, rep *replicaState, method, pathAndQuery string, body []byte) backendResult {
	res := backendResult{shard: rep.shard}
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.url+pathAndQuery, rd)
	if err != nil {
		res.err = err
		return res
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = fmt.Errorf("shard %d: %w", rep.shard, err)
		rt.markDown(rep, res.err)
		return res
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	res.gen = resp.Header.Get(genHeader)
	if wg := resp.Header.Get(walGenHeader); wg != "" {
		if g, perr := strconv.ParseUint(wg, 10, 64); perr == nil {
			rep.applied.Store(g)
		}
	}
	res.body, res.err = io.ReadAll(resp.Body)
	switch {
	case res.err != nil:
		rt.markDown(rep, res.err)
	case res.status >= 500:
		// Reachable but unhealthy counts as down — the same judgement the
		// fan-out merges apply — so the transition log can't claim a
		// recovery for a backend that restarts into a broken state.
		rt.markDown(rep, fmt.Errorf("status %d", res.status))
	default:
		rt.markUp(rep)
	}
	return res
}

// readOrder ranks one shard's replicas for a read. The gate is the
// highest applied log position any replica has reported: a replica
// behind it is still tailing and is never consulted — a read must not
// travel back in time just because it landed on a catching-up process.
// At-gate healthy replicas come first, ordered by power-of-two-choices
// over a rotating pair (fewest in-flight calls wins); at-gate down
// replicas follow, so traffic keeps probing a single-replica shard back
// to recovery exactly as it did before replica sets existed.
func (rt *Router) readOrder(shard int) []*replicaState {
	set := rt.shards[shard]
	if len(set.replicas) == 1 {
		return set.replicas
	}
	applied := make([]uint64, len(set.replicas))
	var gate uint64
	for i, rep := range set.replicas {
		applied[i] = rep.applied.Load()
		if applied[i] > gate {
			gate = applied[i]
		}
	}
	var healthy, lagged []*replicaState
	for i, rep := range set.replicas {
		if applied[i] < gate {
			continue
		}
		if rep.down.Load() {
			lagged = append(lagged, rep)
		} else {
			healthy = append(healthy, rep)
		}
	}
	order := make([]*replicaState, 0, len(healthy)+len(lagged))
	if n := len(healthy); n > 0 {
		c := int(rt.rr.Add(1) % uint64(n))
		first := healthy[c]
		if n > 1 {
			second := healthy[(c+1)%n]
			if second.inflight.Load() < first.inflight.Load() {
				first, second = second, first
			}
			order = append(order, first, second)
			for i := 2; i < n; i++ {
				order = append(order, healthy[(c+i)%n])
			}
		} else {
			order = append(order, first)
		}
	}
	return append(order, lagged...)
}

// markDown / markUp flip a replica's health mark, logging the transition
// (and only the transition) through Options.Logf.
func (rt *Router) markDown(rep *replicaState, cause error) {
	if !rep.down.Swap(true) {
		// A dead replica's log position is unknown (it may restart empty):
		// reset it so the read gate never trusts a stale high-water mark.
		// The prober re-admits the replica once its /healthz reports the
		// shard's head position again.
		rep.applied.Store(0)
		if rt.opts.Logf != nil {
			if len(rt.shards[rep.shard].replicas) > 1 {
				rt.opts.Logf("shard %d replica %d down: %v", rep.shard, rep.idx, cause)
			} else {
				rt.opts.Logf("shard %d down: %v", rep.shard, cause)
			}
		}
	}
}

func (rt *Router) markUp(rep *replicaState) {
	if rep.down.Swap(false) && rt.opts.Logf != nil {
		if len(rt.shards[rep.shard].replicas) > 1 {
			rt.opts.Logf("shard %d replica %d recovered", rep.shard, rep.idx)
		} else {
			rt.opts.Logf("shard %d recovered", rep.shard)
		}
	}
}

// fanout calls every shard concurrently on a bounded worker pool and
// returns the per-shard results in shard order, noting each answered
// shard's generation on meta (nil skips noting).
func (rt *Router) fanout(ctx context.Context, meta *respMeta, method, pathAndQuery string, body []byte) []backendResult {
	out := make([]backendResult, rt.k)
	par.ForEachIndexed(rt.workers(), rt.k, func(i int) {
		out[i] = rt.call(ctx, i, method, pathAndQuery, body)
		if meta != nil && out[i].err == nil {
			meta.noteGen(i, out[i].gen)
		}
	})
	return out
}

// broadcast is fanout for writes: the write timeout applies, and the
// context is detached from the client request — once a broadcast starts,
// a client disconnect must not abandon it half-applied across the fleet.
func (rt *Router) broadcast(ctx context.Context, method, pathAndQuery string, body []byte) []backendResult {
	ctx = context.WithoutCancel(ctx)
	out := make([]backendResult, rt.k)
	par.ForEachIndexed(rt.workers(), rt.k, func(i int) {
		out[i] = rt.callTimeout(ctx, rt.opts.WriteTimeout, i, method, pathAndQuery, body)
	})
	return out
}

// failedShards lists the shards whose call failed (transport error or
// non-200), in shard order.
func failedShards(results []backendResult) []int {
	var out []int
	for i := range results {
		if !results[i].ok() {
			out = append(out, i)
		}
	}
	return out
}

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/healthz", rt.endpoint("healthz", rt.handleHealthz))
	rt.mux.HandleFunc("/v1/stats", rt.endpoint("stats", rt.handleStats))
	rt.mux.HandleFunc("/v1/node", rt.endpoint("node", rt.handleNode))
	rt.mux.HandleFunc("/v1/search", rt.endpoint("search", rt.handleSearch))
	rt.mux.HandleFunc("/v1/metrics", rt.endpoint("metrics", rt.handleMetrics))
	rt.mux.HandleFunc("/v1/ingest", rt.endpoint("ingest", rt.handleIngest))
	rt.mux.HandleFunc("/v1/reload", rt.endpoint("reload", rt.handleReload))
	rt.mux.HandleFunc("/v1/tag", rt.endpoint("tag", rt.handleTag))
	rt.mux.HandleFunc("/v1/query/rewrite", rt.endpoint("query_rewrite", rt.handleQueryRewrite))
	rt.mux.HandleFunc("/v1/story", rt.endpoint("story", rt.handleStory))
}

// respMeta collects response metadata a handler accumulates while fanning
// out: the per-shard backend generations, rendered into the router's
// X-Giant-Generation header as sorted "shard:gen" pairs ("0:3,1:5"), plus
// any extra headers (Retry-After on a 429). Handlers may note from fan-out
// goroutines, so it locks.
type respMeta struct {
	mu   sync.Mutex
	gens map[int]string
	hdr  http.Header
}

func (m *respMeta) noteGen(shard int, gen string) {
	if gen == "" {
		return
	}
	m.mu.Lock()
	if m.gens == nil {
		m.gens = map[int]string{}
	}
	m.gens[shard] = gen
	m.mu.Unlock()
}

// genOf returns the generation last noted for one shard ("" when none).
func (m *respMeta) genOf(shard int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gens[shard]
}

func (m *respMeta) setHeader(key, value string) {
	m.mu.Lock()
	if m.hdr == nil {
		m.hdr = http.Header{}
	}
	m.hdr.Set(key, value)
	m.mu.Unlock()
}

func (m *respMeta) apply(w http.ResponseWriter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.gens) > 0 {
		shards := make([]int, 0, len(m.gens))
		for s := range m.gens {
			shards = append(shards, s)
		}
		sort.Ints(shards)
		parts := make([]string, 0, len(shards))
		for _, s := range shards {
			parts = append(parts, strconv.Itoa(s)+":"+m.gens[s])
		}
		w.Header().Set(genHeader, strings.Join(parts, ","))
	}
	for key, vals := range m.hdr {
		for _, v := range vals {
			w.Header().Add(key, v)
		}
	}
}

// endpoint wraps a router handler with metrics and response-metadata
// rendering; handlers return a status plus either a pre-rendered body
// ([]byte, proxied verbatim) or a JSON-marshalable payload.
func (rt *Router) endpoint(name string, fn func(r *http.Request, meta *respMeta) (int, any)) http.HandlerFunc {
	m := rt.metrics.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		meta := &respMeta{}
		status, payload := fn(r, meta)
		var body []byte
		if raw, ok := payload.([]byte); ok {
			body = raw
		} else {
			var err error
			body, err = json.Marshal(payload)
			if err != nil {
				status = http.StatusInternalServerError
				body, _ = json.Marshal(errBody(codeInternal, "encode response: "+err.Error()))
			}
			body = append(body, '\n')
		}
		meta.apply(w)
		writeBody(w, status, body, false)
		m.observe(status, time.Since(start), false)
	}
}

func (rt *Router) handleHealthz(r *http.Request, meta *respMeta) (int, any) {
	type backendHealth struct {
		Shard      int    `json:"shard"`
		Replica    int    `json:"replica"`
		URL        string `json:"url"`
		Healthy    bool   `json:"healthy"`
		Generation uint64 `json:"generation,omitempty"`
		WALGen     uint64 `json:"wal_gen,omitempty"`
		Error      string `json:"error,omitempty"`
	}
	reps := rt.allReplicas()
	backends := make([]backendHealth, len(reps))
	par.ForEachIndexed(rt.workers(), len(reps), func(i int) {
		rep := reps[i]
		res := rt.callReplica(r.Context(), rt.opts.Timeout, rep, http.MethodGet, "/healthz", nil)
		b := backendHealth{Shard: rep.shard, Replica: rep.idx, URL: rep.url, Healthy: res.ok()}
		if res.ok() {
			var h struct {
				Generation uint64 `json:"generation"`
				WALGen     uint64 `json:"wal_gen"`
			}
			if json.Unmarshal(res.body, &h) == nil {
				b.Generation = h.Generation
				b.WALGen = h.WALGen
			}
		} else if res.err != nil {
			b.Error = res.err.Error()
		} else {
			b.Error = fmt.Sprintf("status %d", res.status)
		}
		backends[i] = b
	})
	status := "ok"
	for i := range backends {
		if !backends[i].Healthy {
			status = "degraded"
			break
		}
	}
	resp := map[string]any{"status": status, "shards": rt.k, "backends": backends}
	if rt.walMode() {
		resp["wal"] = rt.walStatus()
	}
	return http.StatusOK, resp
}

// handleSearch answers /v1/search through the routed, cached scatter —
// the cross-process twin of the in-process searchSharded path. The
// routing index prunes the fan-out to the shards whose term grams may
// contain the needle (pruning is a superset filter: a pruned-out shard
// provably has zero matches, so results stay byte-identical to the full
// scatter), and each consulted shard's partial is served from its
// (generation, needle, limit)-keyed cache. A backend whose response
// generation diverges from the index raced a republish: the index is
// dropped and the request falls back to one fresh, uncached full scatter.
// ?scatter=full forces that full path up front — the CI smoke diffs it
// against the routed output on a live fleet.
func (rt *Router) handleSearch(r *http.Request, meta *respMeta) (int, any) {
	p, bad, perr := parseSearchParams(r.URL.Query(), rt.opts.MaxSearchResults)
	if bad != 0 {
		return bad, perr
	}
	q, limit := p.q, p.limit
	v := url.Values{}
	v.Set("q", q)
	v.Set("limit", strconv.Itoa(limit))
	pq := "/v1/search?" + v.Encode()
	needle := strings.ToLower(q)
	key := searchKey(needle, limit)

	var idx *routingIndex
	if !p.full {
		idx = rt.ensureRouting(r.Context())
	}
	candidates := make([]int, 0, rt.k)
	if idx != nil {
		for i := range idx.shards {
			// ok=false (unknown surface) and grams==nil (backend predates
			// term stats) both route conservatively.
			if !idx.shards[i].ok || idx.shards[i].grams == nil || idx.shards[i].grams.MayContain(needle) {
				candidates = append(candidates, i)
			}
		}
	} else {
		for i := 0; i < rt.k; i++ {
			candidates = append(candidates, i)
		}
	}

	perShard, failed, stale, badShard, badErr := rt.fetchPartials(r.Context(), meta, candidates, pq, key, idx)
	if stale {
		// The index raced a republish: drop it (and the request's view of
		// candidates) and re-scatter everywhere, uncached — the next
		// request rebuilds a fresh index.
		rt.routing.Store(nil)
		candidates = candidates[:0]
		for i := 0; i < rt.k; i++ {
			candidates = append(candidates, i)
		}
		perShard, failed, _, badShard, badErr = rt.fetchPartials(r.Context(), meta, candidates, pq, key, nil)
	}
	if badErr != nil {
		return http.StatusBadGateway, errBodyShard(codeBadUpstream, badShard, "shard %d: bad search response: %v", badShard, badErr)
	}
	// Only consulted shards can be missing: a pruned-out shard contributes
	// nothing by construction, down or not.
	if len(failed) > 0 && !rt.opts.FailOpen {
		return http.StatusServiceUnavailable, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", failed)
	}
	var hits []searchHit
	for _, ph := range perShard {
		hits = append(hits, ph...)
	}
	// Merge in union ID order: within a shard, home nodes preserve union
	// order, so each shard's first `limit` matches are a superset of its
	// contribution to the global first `limit`.
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].ID < hits[b].ID })
	if len(hits) > limit {
		hits = hits[:limit]
	}
	if hits == nil {
		hits = []searchHit{}
	}
	resp := map[string]any{"query": q, "count": len(hits), "results": hits}
	if len(failed) > 0 {
		resp["partial"] = true
		resp["missing_shards"] = failed
	}
	return http.StatusOK, resp
}

// fetchPartials gathers the per-shard search partials for the candidate
// shards, in candidate order. When idx pins a shard's generation, its
// partial is served from the (generation, needle, limit)-keyed cache and
// a fetched partial is cached only if the backend's response generation
// matches the pinned one; an explicit mismatch sets stale (the caller
// re-scatters). idx == nil fetches everything uncached. Failed shards are
// listed; a shard whose 200 body fails to parse aborts via badErr.
func (rt *Router) fetchPartials(ctx context.Context, meta *respMeta, candidates []int, pq, key string, idx *routingIndex) (perShard [][]searchHit, failed []int, stale bool, badShard int, badErr error) {
	perShard = make([][]searchHit, len(candidates))
	cached := make([]bool, len(candidates))
	results := make([]backendResult, len(candidates))
	par.ForEachIndexed(rt.workers(), len(candidates), func(j int) {
		sh := candidates[j]
		if idx != nil && idx.shards[sh].ok {
			fullKey := strconv.FormatUint(idx.shards[sh].gen, 10) + "\x00" + key
			if hits, ok := rt.partials[sh].Load().get(fullKey); ok {
				perShard[j], cached[j] = hits, true
				meta.noteGen(sh, strconv.FormatUint(idx.shards[sh].gen, 10))
				return
			}
		}
		results[j] = rt.call(ctx, sh, http.MethodGet, pq, nil)
		if results[j].err == nil {
			meta.noteGen(sh, results[j].gen)
		}
	})
	for j, sh := range candidates {
		if cached[j] {
			continue
		}
		if !results[j].ok() {
			failed = append(failed, sh)
			continue
		}
		var parsed struct {
			Results    []searchHit `json:"results"`
			Generation *uint64     `json:"generation"`
		}
		if err := json.Unmarshal(results[j].body, &parsed); err != nil {
			return nil, nil, false, sh, err
		}
		perShard[j] = parsed.Results
		if idx != nil && idx.shards[sh].ok && parsed.Generation != nil {
			if *parsed.Generation == idx.shards[sh].gen {
				fullKey := strconv.FormatUint(idx.shards[sh].gen, 10) + "\x00" + key
				rt.partials[sh].Load().put(fullKey, parsed.Results)
			} else {
				stale = true
			}
		}
	}
	return perShard, failed, stale, 0, nil
}

// handleNode answers a node lookup in the composed view. A (type, phrase)
// request routes straight to HomeShard(type, phrase) — the node named by a
// canonical phrase is always homed there; an alias, ID or untyped lookup
// scatters instead, and the winner is chosen by the union's precedence
// order: phrase matches beat alias matches, then NodeType order, then
// union ID (each a first-win rule of the union index). The home shard's
// response carries the node, its complete parent/children lists and its
// direct IsA parents; the transitive ancestor chain is assembled by
// walking each ancestor's own home shard, level by level — reproducing the
// union's BFS exactly, because every hop queries the one shard holding
// that node's complete in-edge set.
func (rt *Router) handleNode(r *http.Request, meta *respMeta) (int, any) {
	q := r.URL.Query()
	var (
		chosen *shardNodeDetail
		seed   *shardNodeDetail // primary's alias answer, pre-competing in the scatter
		skip   = -1             // shard already queried by the typed fast path
	)
	switch {
	case q.Get("id") != "":
		if _, err := strconv.Atoi(q.Get("id")); err != nil {
			return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid id: "+q.Get("id"))
		}
	case q.Get("phrase") != "":
		if ts := q.Get("type"); ts != "" {
			t, err := ontology.ParseNodeType(ts)
			if err != nil {
				return http.StatusBadRequest, errBody(codeInvalidArgument, err.Error())
			}
			primary := ontology.HomeShard(t, q.Get("phrase"), rt.k)
			res := rt.call(r.Context(), primary, http.MethodGet, "/v1/node?"+r.URL.RawQuery, nil)
			if res.err != nil {
				return http.StatusBadGateway, errBodyShard(codeShardUnavailable, primary, "shard %d unavailable: %v", primary, res.err)
			}
			meta.noteGen(primary, res.gen)
			if res.status == http.StatusOK {
				var d shardNodeDetail
				if err := json.Unmarshal(res.body, &d); err != nil {
					return http.StatusBadGateway, errBodyShard(codeBadUpstream, primary, "shard %d: bad node response: %v", primary, err)
				}
				// Only a phrase match short-circuits: the canonical phrase
				// can live on no other shard. An alias answer must compete
				// in the scatter below — the union's first-win alias
				// resolution may prefer a same-typed alias homed elsewhere
				// with a smaller union ID.
				if d.Match == "phrase" {
					chosen = &d
				} else {
					seed = &d
				}
			}
			// 404 (or an alias-only answer) falls through to the scatter —
			// the phrase may be an alias of a node homed on any shard —
			// with the primary's answer seeded so it is not re-queried.
			skip = primary
		}
	default:
		return http.StatusBadRequest, errBody(codeInvalidArgument, "need ?id= or ?phrase=")
	}
	if chosen == nil {
		best, failed, status := rt.scatterNode(r.Context(), meta, r.URL.RawQuery, skip, seed)
		if status != 0 {
			return status, errBody(codeShardUnavailable, "shards %v unavailable", failed)
		}
		if best == nil {
			return http.StatusNotFound, errBody(codeNotFound, "node not found")
		}
		chosen = best
	}
	ancestors, err := rt.assembleAncestors(r.Context(), chosen)
	if err != nil {
		return http.StatusBadGateway, errBody(codeBadUpstream, "assemble ancestors: "+err.Error())
	}
	d := chosen.nodeDetail
	d.Ancestors = ancestors
	return http.StatusOK, d
}

// scatterNode fans one /v1/node query out to every shard (except skip, a
// shard the caller already queried — its answer, if any, enters as seed)
// and picks the union-precedence winner among the answers. A non-zero
// returned status aborts the lookup (degraded fleet under the fail-closed
// policy, or no answer at all while shards were missing).
func (rt *Router) scatterNode(ctx context.Context, meta *respMeta, rawQuery string, skip int, seed *shardNodeDetail) (*shardNodeDetail, []int, int) {
	shards := make([]int, 0, rt.k)
	for i := 0; i < rt.k; i++ {
		if i != skip {
			shards = append(shards, i)
		}
	}
	results := make([]backendResult, len(shards))
	par.ForEachIndexed(rt.workers(), len(shards), func(j int) {
		results[j] = rt.call(ctx, shards[j], http.MethodGet, "/v1/node?"+rawQuery, nil)
		if results[j].err == nil {
			meta.noteGen(shards[j], results[j].gen)
		}
	})
	var failed []int
	best := seed
	var bestRank [3]int
	if best != nil {
		bestRank = nodeMatchRank(best)
	}
	for i := range results {
		switch {
		case results[i].err != nil:
			failed = append(failed, results[i].shard)
		case results[i].status == http.StatusOK:
			var d shardNodeDetail
			if err := json.Unmarshal(results[i].body, &d); err != nil {
				failed = append(failed, results[i].shard)
				continue
			}
			rank := nodeMatchRank(&d)
			if best == nil || rankLess(rank, bestRank) {
				best, bestRank = &d, rank
			}
		case results[i].status != http.StatusNotFound:
			// 404 is a legitimate "not homed here"; anything else
			// (500 mid-swap, 503) means the shard could not answer and
			// must count as failed — a reachable-but-unhealthy shard is
			// not a license to report "node not found".
			failed = append(failed, results[i].shard)
		}
	}
	if len(failed) > 0 && !rt.opts.FailOpen {
		return nil, failed, http.StatusServiceUnavailable
	}
	if best == nil && len(failed) > 0 {
		return nil, failed, http.StatusBadGateway
	}
	return best, failed, 0
}

// nodeMatchRank orders scatter answers by the union's lookup precedence:
// phrase matches before alias matches, then NodeType order, then union ID.
func nodeMatchRank(d *shardNodeDetail) [3]int {
	mr := 0
	if d.Match == "alias" {
		mr = 1
	}
	tr := 0
	if t, err := ontology.ParseNodeType(d.Node.Type); err == nil {
		tr = int(t)
	}
	return [3]int{mr, tr, int(d.Node.ID)}
}

func rankLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// assembleAncestors rebuilds the transitive IsA ancestor chain of a node
// from per-shard answers, reproducing Snapshot.Ancestors' BFS order: the
// frontier is processed level by level, every node's direct parents arrive
// in union in-edge order from its home shard, and first-seen wins.
func (rt *Router) assembleAncestors(ctx context.Context, d *shardNodeDetail) ([]string, error) {
	seen := map[ontology.NodeID]bool{d.Node.ID: true}
	var out []string
	adopt := func(refs []isaRef) []isaRef {
		var added []isaRef
		for _, ref := range refs {
			if seen[ref.ID] {
				continue
			}
			seen[ref.ID] = true
			out = append(out, ref.Phrase)
			added = append(added, ref)
		}
		return added
	}
	frontier := adopt(d.IsAParents)
	for len(frontier) > 0 {
		// One level's fetches are independent — run them through the
		// bounded fan-out pool (one round-trip per level, not per node) —
		// then adopt in frontier order, which is what fixes the BFS
		// ordering; the fetch order never observes `seen`.
		parents := make([][]isaRef, len(frontier))
		errs := make([]error, len(frontier))
		par.ForEachIndexed(rt.workers(), len(frontier), func(i int) {
			parents[i], errs[i] = rt.fetchIsAParents(ctx, frontier[i])
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var next []isaRef
		for i := range frontier {
			next = append(next, adopt(parents[i])...)
		}
		frontier = next
	}
	return out, nil
}

// fetchIsAParents asks an ancestor's home shard for its direct IsA
// parents (a cacheable point lookup on the backend).
func (rt *Router) fetchIsAParents(ctx context.Context, ref isaRef) ([]isaRef, error) {
	t, err := ontology.ParseNodeType(ref.Type)
	if err != nil {
		return nil, fmt.Errorf("ancestor %q: %w", ref.Phrase, err)
	}
	shard := ontology.HomeShard(t, ref.Phrase, rt.k)
	v := url.Values{}
	v.Set("phrase", ref.Phrase)
	v.Set("type", ref.Type)
	res := rt.call(ctx, shard, http.MethodGet, "/v1/node?"+v.Encode(), nil)
	if res.err != nil {
		return nil, fmt.Errorf("shard %d unavailable: %w", shard, res.err)
	}
	if res.status != http.StatusOK {
		return nil, fmt.Errorf("shard %d: ancestor %q: status %d", shard, ref.Phrase, res.status)
	}
	var parsed shardNodeDetail
	if err := json.Unmarshal(res.body, &parsed); err != nil {
		return nil, fmt.Errorf("shard %d: bad node response: %w", shard, err)
	}
	return parsed.IsAParents, nil
}

// handleStats fans /v1/stats out and reassembles the in-process sharded
// stats shape: exact whole-world counts from each shard's owned slice and
// the per-shard generation list verbatim.
func (rt *Router) handleStats(r *http.Request, meta *respMeta) (int, any) {
	results := rt.fanout(r.Context(), meta, http.MethodGet, "/v1/stats", nil)
	failed := failedShards(results)
	if len(failed) > 0 && !rt.opts.FailOpen {
		return http.StatusServiceUnavailable, errBody(codeShardUnavailable, "shards %v unavailable (fail-closed)", failed)
	}
	type shardBlock struct {
		Shard       int            `json:"shard"`
		Shards      int            `json:"shards"`
		Generation  uint64         `json:"generation"`
		Nodes       int            `json:"nodes"`
		Edges       int            `json:"edges"`
		OwnedEdges  int            `json:"owned_edges"`
		NodesByType map[string]int `json:"nodes_by_type"`
		EdgesByType map[string]int `json:"edges_by_type"`
	}
	nodes, edges := 0, 0
	nodesByType, edgesByType := map[string]int{}, map[string]int{}
	shards := make([]shardSummary, 0, rt.k)
	for i := range results {
		if !results[i].ok() {
			continue
		}
		var parsed struct {
			Shard *shardBlock `json:"shard"`
		}
		if err := json.Unmarshal(results[i].body, &parsed); err != nil || parsed.Shard == nil {
			return http.StatusBadGateway, errBodyShard(codeBadUpstream, i, "shard %d: not a per-shard stats response (is the backend running with -shard?)", i)
		}
		sb := parsed.Shard
		if sb.Shard != i || sb.Shards != rt.k {
			return http.StatusBadGateway, errBodyShard(codeBadUpstream, i, "backend %d serves shard %d/%d, want %d/%d (check -backends order)", i, sb.Shard, sb.Shards, i, rt.k)
		}
		nodes += sb.Nodes
		edges += sb.OwnedEdges
		for k, v := range sb.NodesByType {
			nodesByType[k] += v
		}
		for k, v := range sb.EdgesByType {
			edgesByType[k] += v
		}
		shards = append(shards, shardSummary{Shard: i, Generation: sb.Generation, Nodes: sb.Nodes, Edges: sb.Edges})
	}
	resp := map[string]any{
		"nodes":         nodes,
		"edges":         edges,
		"nodes_by_type": nodesByType,
		"edges_by_type": edgesByType,
		"shards":        shards,
	}
	if len(failed) > 0 {
		resp["partial"] = true
		resp["missing_shards"] = failed
	}
	if rt.walMode() {
		resp["wal"] = rt.walStatus()
	}
	return http.StatusOK, resp
}

func (rt *Router) handleMetrics(r *http.Request, meta *respMeta) (int, any) {
	results := rt.fanout(r.Context(), meta, http.MethodGet, "/v1/metrics", nil)
	backends := make([]any, rt.k)
	for i := range results {
		if results[i].ok() {
			var m json.RawMessage = results[i].body
			backends[i] = m
		} else {
			backends[i] = map[string]any{"shard": i, "error": "unavailable"}
		}
	}
	return http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(rt.metrics.start).Seconds(),
		"endpoints":      rt.metrics.snapshot(),
		"backends":       backends,
	}
}

// handleIngest applies a batch fleet-wide. Without a delta log it
// broadcasts to every backend — each holds the full mining system and
// republishes only its own shard — with all-or-nothing generation
// accounting: the merged generation report is returned only when every
// backend applied the batch; a partial application surfaces as 502 naming
// the shards that diverged. With WALDir set it takes the delta-log path
// (ingestWAL). Writes are always fail-closed.
func (rt *Router) handleIngest(r *http.Request, meta *respMeta) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errBody(codeMethodNotAllowed, "use POST")
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return http.StatusBadRequest, errBody(codeInvalidArgument, "read body: "+err.Error())
	}
	if rt.walMode() {
		return rt.ingestWAL(r.Context(), meta, body)
	}
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	results := rt.broadcast(r.Context(), http.MethodPost, "/v1/ingest", body)
	status, resp := rt.mergeBroadcast(meta, results, "ingest")
	rt.invalidateAfterIngest(status, resp)
	return status, resp
}

// ingestWAL is the delta-log ingest path: validate, push back if any
// shard's slowest healthy replica has fallen too far behind, append the
// batch to every shard's log, then block until a quorum (⌈N/2⌉) of each
// shard's replicas confirm the apply through GET /v1/wal. Replicas left
// behind by the quorum catch up from the log alone and are kept out of
// read rotation by the generation gate until they do.
func (rt *Router) ingestWAL(ctx context.Context, meta *respMeta, body []byte) (int, any) {
	var batch delta.Batch
	if err := json.Unmarshal(body, &batch); err != nil {
		return http.StatusBadRequest, errBody(codeInvalidArgument, "decode batch: "+err.Error())
	}
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	// Backpressure: a shard whose slowest healthy replica trails the log
	// head by more than MaxLag must drain first — otherwise a slow-but-
	// alive replica falls unboundedly far behind the reads its gate
	// position already excludes it from serving.
	for s, set := range rt.shards {
		head := set.log.Head()
		minApplied, have := rt.appliedFloor(s)
		if have && head > minApplied && head-minApplied > rt.opts.MaxLag {
			meta.setHeader("Retry-After", "1")
			e := errBodyShard(codeReplicaLagging, s,
				"shard %d delta log at generation %d but its slowest healthy replica has applied %d (max lag %d); retry later",
				s, head, minApplied, rt.opts.MaxLag)
			e.Error.Generation = head
			return http.StatusTooManyRequests, e
		}
	}
	// Append to every shard's log. A failed append after earlier shards
	// accepted is a partial write — the appended shards' replicas will
	// apply it — reported exactly like a diverged broadcast.
	walGens := make([]uint64, rt.k)
	var appendFailed []int
	var appendErr error
	for s, set := range rt.shards {
		g, err := set.log.Append(batch.Day, body)
		if err != nil {
			appendFailed = append(appendFailed, s)
			if appendErr == nil {
				appendErr = err
			}
			continue
		}
		walGens[s] = g
	}
	if len(appendFailed) > 0 {
		rt.invalidateSearch(nil, true)
		rows := make([]shardWriteStatus, rt.k)
		for s := range rows {
			rows[s] = shardWriteStatus{Shard: s, Applied: walGens[s] != 0}
			if walGens[s] == 0 {
				rows[s].Error = appendErr.Error()
			}
		}
		return http.StatusBadGateway, map[string]any{
			"error": apiError{Code: codePartialApply, Message: fmt.Sprintf(
				"delta log append failed on shards %v: %v; reconcile the shards marked applied=false", appendFailed, appendErr)},
			"shards": rows,
		}
	}
	status, resp := rt.awaitQuorum(ctx, meta, walGens)
	rt.invalidateAfterIngest(status, resp)
	return status, resp
}

// awaitQuorum asks every replica to confirm the apply of its shard's log
// record walGens[shard] and merges the outcome once each shard reaches
// quorum (or every replica has answered). Because replicas apply the
// deterministic mining pipeline, any confirming replica's recorded
// outcome stands for the whole shard.
func (rt *Router) awaitQuorum(ctx context.Context, meta *respMeta, walGens []uint64) (int, any) {
	ackTimeout := rt.opts.AckTimeout
	if ackTimeout <= 0 {
		ackTimeout = rt.opts.WriteTimeout
	}
	// Detached from the client request: once appended, the apply wait must
	// not be abandoned by a client disconnect.
	actx := context.WithoutCancel(ctx)
	type ack struct {
		shard  int
		ok     bool           // the replica confirmed the apply
		status int            // HTTP-equivalent status of the apply (when reported)
		result map[string]any // the apply's response payload (when reported)
		err    string
	}
	total := 0
	for _, set := range rt.shards {
		total += len(set.replicas)
	}
	acks := make(chan ack, total)
	for s, set := range rt.shards {
		pq := fmt.Sprintf("/v1/wal?wait=%d&timeout_ms=%d", walGens[s], ackTimeout.Milliseconds())
		for _, rep := range set.replicas {
			go func(s int, rep *replicaState) {
				res := rt.callReplica(actx, ackTimeout+5*time.Second, rep, http.MethodGet, pq, nil)
				a := ack{shard: s}
				switch {
				case res.err != nil:
					a.err = res.err.Error()
				case res.status != http.StatusOK:
					a.err = fmt.Sprintf("status %d", res.status)
				default:
					var parsed struct {
						Applied bool `json:"applied"`
						Last    *struct {
							WALGen uint64         `json:"wal_gen"`
							Status int            `json:"status"`
							Result map[string]any `json:"result"`
						} `json:"last"`
					}
					if jerr := json.Unmarshal(res.body, &parsed); jerr != nil {
						a.err = "bad /v1/wal response: " + jerr.Error()
					} else if !parsed.Applied {
						a.err = "apply wait timed out"
					} else {
						a.ok = true
						if parsed.Last != nil && parsed.Last.WALGen == walGens[s] {
							a.status = parsed.Last.Status
							a.result = parsed.Last.Result
						}
					}
				}
				acks <- a
			}(s, rep)
		}
	}
	need := make([]int, rt.k)
	for s, set := range rt.shards {
		need[s] = (len(set.replicas) + 1) / 2
	}
	got := make([]int, rt.k)
	statuses := make([]int, rt.k)
	reports := make([]map[string]any, rt.k)
	lastErr := make([]string, rt.k)
	quorum := func() bool {
		for s := range need {
			if got[s] < need[s] || statuses[s] == 0 {
				return false
			}
		}
		return true
	}
	// Drain until every shard reaches quorum with a recorded outcome, or
	// every replica has answered; stragglers drain into the buffered
	// channel and exit on their own.
	for pending := total; pending > 0 && !quorum(); pending-- {
		a := <-acks
		if a.ok {
			got[a.shard]++
			if statuses[a.shard] == 0 && a.status != 0 {
				statuses[a.shard] = a.status
				reports[a.shard] = a.result
			}
		} else if a.err != "" {
			lastErr[a.shard] = a.err
		}
	}
	var failed []int
	for s := range need {
		if got[s] < need[s] || statuses[s] == 0 {
			failed = append(failed, s)
		}
	}
	if len(failed) > 0 {
		rows := make([]shardWriteStatus, rt.k)
		for s := range rows {
			applied := got[s] >= need[s] && statuses[s] != 0
			rows[s] = shardWriteStatus{Shard: s, Applied: applied, Status: statuses[s], Error: lastErr[s]}
			if rep := reports[s]; rep != nil {
				if g, ok := rep["generation"].(float64); ok {
					rows[s].Generation = uint64(g)
				}
			}
		}
		return http.StatusBadGateway, map[string]any{
			"error": apiError{Code: codePartialApply, Message: fmt.Sprintf(
				"partial ingest application: shards %v did not reach apply quorum; reconcile the shards marked applied=false", failed)},
			"shards": rows,
		}
	}
	// A batch the deterministic mining pipeline rejects is rejected
	// identically by every replica of every shard: forward the client
	// fault verbatim.
	uniform := statuses[0]
	for _, st := range statuses {
		if st != uniform {
			uniform = 0
			break
		}
	}
	if uniform >= 400 && uniform < 500 {
		return uniform, reports[0]
	}
	if uniform != http.StatusOK {
		rows := make([]shardWriteStatus, rt.k)
		for s := range rows {
			rows[s] = shardWriteStatus{Shard: s, Applied: statuses[s] == http.StatusOK, Status: statuses[s]}
		}
		return http.StatusBadGateway, map[string]any{
			"error":  apiError{Code: codePartialApply, Message: "partial ingest application: shards disagreed on the apply outcome; reconcile the shards marked applied=false"},
			"shards": rows,
		}
	}
	gens := make([]uint64, rt.k)
	rows := make([]shardWriteStatus, rt.k)
	nodes := 0
	for s, rep := range reports {
		g, _ := rep["generation"].(float64)
		gens[s] = uint64(g)
		applied := true
		if rp, ok := rep["republished"].(bool); ok {
			applied = rp
		}
		rows[s] = shardWriteStatus{Shard: s, Generation: uint64(g), Applied: applied}
		if hn, ok := rep["home_nodes"].(float64); ok {
			nodes += int(hn)
		}
		meta.noteGen(s, strconv.FormatUint(uint64(g), 10))
	}
	touched := []int{}
	if ta, ok := reports[0]["touched_shards"].([]any); ok {
		for _, v := range ta {
			if f, ok := v.(float64); ok {
				touched = append(touched, int(f))
			}
		}
	}
	resp := map[string]any{
		"shards":            rows,
		"shard_generations": gens,
		"wal_generations":   walGens,
		"touched_shards":    touched,
		"nodes":             nodes,
	}
	if d, ok := reports[0]["delta"].(map[string]any); ok {
		resp["delta"] = d
	}
	return http.StatusOK, resp
}

// invalidateAfterIngest applies the search invalidation rules to a merged
// ingest outcome. A clean apply whose delta is append-only clears only the
// touched shards' partials (an untouched backend's answers cannot have
// changed); a delta that retired nodes clears everything — dense union-ID
// renumbering refreshes every backend's rendered IDs without bumping
// untouched generations, which is exactly the staleness generation keys
// cannot see. A uniform 4xx rejection changed nothing; any murkier
// outcome (partial application) clears everything.
func (rt *Router) invalidateAfterIngest(status int, resp any) {
	if status >= 400 && status < 500 {
		return
	}
	m, ok := resp.(map[string]any)
	if status != http.StatusOK || !ok {
		rt.invalidateSearch(nil, true)
		return
	}
	touched, _ := m["touched_shards"].([]int)
	delta, haveDelta := m["delta"].(map[string]any)
	clearAll := !haveDelta
	if haveDelta {
		if retired, ok := delta["retired"].(float64); !ok || retired > 0 {
			clearAll = true
		}
	}
	rt.invalidateSearch(touched, clearAll)
}

// handleReload broadcasts /v1/reload with the same all-or-nothing
// accounting as ingest. On a delta-log fleet reload is refused: replicas
// derive their world from the log, and a side-loaded snapshot would fork
// them from it.
func (rt *Router) handleReload(r *http.Request, meta *respMeta) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errBody(codeMethodNotAllowed, "use POST")
	}
	if rt.walMode() {
		return http.StatusServiceUnavailable, errBody(codeUnavailable,
			"reload is unsupported on a delta-log fleet; restart the replicas instead")
	}
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	results := rt.broadcast(r.Context(), http.MethodPost, "/v1/reload", nil)
	status, resp := rt.mergeBroadcast(meta, results, "reload")
	// A reload replaces whole worlds: drop the routing index and every
	// cached partial whenever any backend may have applied it.
	if status < 400 || status >= 500 {
		rt.invalidateSearch(nil, true)
	}
	return status, resp
}

// shardWriteResp is the slice of a backend write response the router
// aggregates.
type shardWriteResp struct {
	Generation    uint64         `json:"generation"`
	TouchedShards []int          `json:"touched_shards"`
	HomeNodes     int            `json:"home_nodes"`
	Republished   *bool          `json:"republished"`
	Delta         map[string]any `json:"delta"`
}

// mergeBroadcast aggregates a write broadcast. Every backend succeeded →
// merged 200. Every backend rejected with the same 4xx (deterministic
// validation) → that status with the first body, so client-fault statuses
// (400/422) survive the fan-out. Anything else → 502 with per-shard
// status detail: the fleet's generations may have diverged and the
// operator must reconcile (the response names exactly which shards
// applied).
func (rt *Router) mergeBroadcast(meta *respMeta, results []backendResult, what string) (int, any) {
	allOK, all4xx := true, true
	first4xx := 0
	for i := range results {
		if results[i].ok() {
			all4xx = false
			continue
		}
		allOK = false
		if results[i].err != nil || results[i].status < 400 || results[i].status >= 500 {
			all4xx = false
		} else if first4xx == 0 {
			first4xx = results[i].status
		} else if results[i].status != first4xx {
			all4xx = false
		}
	}
	if all4xx && first4xx != 0 {
		return first4xx, results[0].body
	}
	parsed := make([]shardWriteResp, rt.k)
	for i := range results {
		if results[i].ok() {
			if err := json.Unmarshal(results[i].body, &parsed[i]); err != nil {
				allOK = false
			}
		}
	}
	if !allOK {
		detail := make([]shardWriteStatus, rt.k)
		for i := range results {
			detail[i] = shardWriteStatus{Shard: i, Applied: results[i].ok(), Status: results[i].status}
			if results[i].ok() {
				detail[i].Generation = parsed[i].Generation
			}
			if results[i].err != nil {
				detail[i].Error = results[i].err.Error()
			}
		}
		return http.StatusBadGateway, map[string]any{
			"error": apiError{Code: codePartialApply, Message: fmt.Sprintf(
				"partial %s application: generations may have diverged; reconcile the shards marked applied=false", what)},
			"shards": detail,
		}
	}
	gens := make([]uint64, rt.k)
	rows := make([]shardWriteStatus, rt.k)
	nodes := 0
	for i := range parsed {
		gens[i] = parsed[i].Generation
		nodes += parsed[i].HomeNodes
		applied := parsed[i].Republished == nil || *parsed[i].Republished
		rows[i] = shardWriteStatus{Shard: i, Generation: parsed[i].Generation, Applied: applied}
		if meta != nil {
			meta.noteGen(i, strconv.FormatUint(parsed[i].Generation, 10))
		}
	}
	resp := map[string]any{
		"shards":            rows,
		"shard_generations": gens,
		"nodes":             nodes,
	}
	if what == "ingest" {
		// Touched flags are deterministic across backends; report the
		// first one's view.
		ts := parsed[0].TouchedShards
		if ts == nil {
			ts = []int{}
		}
		resp["touched_shards"] = ts
		if parsed[0].Delta != nil {
			resp["delta"] = parsed[0].Delta
		}
	}
	return http.StatusOK, resp
}
