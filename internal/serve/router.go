package serve

// Router is the multi-process scatter-gather tier: a thin HTTP daemon
// (cmd/giantrouter) that fans requests out over K per-shard giantd
// backends, one per ontology.ShardedSnapshot projection, speaking the same
// ontology.HomeShard phrase hash the in-process sharded server uses.
//
// The contract mirrors PR 4's determinism guarantee across process
// boundaries: for /v1/search and /v1/node, the router's merged responses
// are byte-identical to a single-process serve.NewSharded server over the
// same world, for every shard count (router_test.go pins this for
// K ∈ {1, 2, 4} through a day-by-day ingest replay).
//
//	/v1/search         routed fan-out: a generation-stamped term→shard
//	                   routing index (rebuilt from each backend's
//	                   /v1/stats term grams) prunes the scatter to the
//	                   shards that can match; each consulted shard's
//	                   partial is served from a per-shard cache keyed
//	                   (shard, generation, query, limit); merge in union
//	                   node-ID order, truncate. ?scatter=full bypasses
//	                   routing and caching (debug / equivalence diffing).
//	/v1/node           route by HomeShard(type, phrase) when the request
//	                   names both; otherwise scatter and pick the union's
//	                   lookup-precedence winner (phrase beats alias, then
//	                   NodeType order, then union ID). The transitive IsA
//	                   ancestor chain is assembled by walking each
//	                   parent's home shard level by level.
//	/v1/stats          fan-out; per-shard generations listed verbatim,
//	                   whole-world counts from each shard's owned slice
//	/v1/metrics        fan-out; router's own counters plus per-backend
//	/v1/ingest         broadcast to every backend (each holds the full
//	                   mining system and re-derives only its own shard)
//	                   with all-or-nothing generation accounting
//	/v1/reload         broadcast, all-or-nothing
//	/v1/tag,           routed to one shard by phrase hash and proxied
//	/v1/query/rewrite, verbatim (projection-local approximation of the
//	/v1/story          union — see docs/ARCHITECTURE.md)
//
// Degraded mode is configurable (RouterOptions.FailOpen): when a backend
// is unreachable, fan-out reads either fail closed with 503 or return the
// reachable shards' results marked "partial": true. Point-routed
// endpoints return 502 for an unreachable target in both modes, and
// writes (/v1/ingest, /v1/reload) are always fail-closed.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"giant/internal/ontology"
	"giant/internal/par"
)

// RouterOptions configure a Router.
type RouterOptions struct {
	// Backends are the per-shard giantd base URLs, in shard order:
	// Backends[i] must serve shard i of len(Backends).
	Backends []string
	// Client overrides the HTTP client used for backend calls; nil builds
	// a dedicated one whose idle connections Close releases.
	Client *http.Client
	// Timeout bounds each backend read call; 0 means 5s.
	Timeout time.Duration
	// WriteTimeout bounds each backend call of a write broadcast
	// (/v1/ingest, /v1/reload) — in -build mode a backend re-mines the
	// affected click-graph neighbourhood per batch, which can far exceed
	// the read timeout, and a premature router-side timeout would report
	// a divergence that never happened. 0 means 2m.
	WriteTimeout time.Duration
	// FailOpen selects the degraded-mode policy for fan-out reads: false
	// (the default) fails closed with 503 when any shard is unreachable,
	// true returns the reachable shards' results with "partial": true.
	FailOpen bool
	// Parallelism bounds the fan-out worker pool; <= 0 means
	// min(len(Backends), GOMAXPROCS).
	Parallelism int
	// MaxSearchResults caps /v1/search result counts and must match the
	// backends' cap for byte-identical merges; 0 means 100.
	MaxSearchResults int
	// CacheSize bounds each per-shard search-partial cache (entries).
	// Unlike serve.Options.CacheSize, 0 (the default) DISABLES partial
	// caching: a cached partial is served without touching its backend, so
	// caching deliberately trades degraded-mode visibility for
	// availability — a query fully answerable from cache returns complete
	// results even while a backend is down, instead of reporting
	// "partial". That is a semantics change an operator must opt into
	// (cmd/giantrouter does, via -search-cache).
	CacheSize int
	// ProbeInterval enables a background health prober hitting every
	// backend's /healthz; 0 disables it (health marks still update on
	// every proxied call).
	ProbeInterval time.Duration
	// Logf, when set, receives operational log lines — most usefully the
	// backend health transitions ("shard 1 down: ...", "shard 1
	// recovered") detected by traffic and the prober. Nil disables.
	Logf func(format string, args ...any)
}

// Router fans requests out over per-shard backends.
type Router struct {
	opts    RouterOptions
	k       int
	client  *http.Client
	mux     *http.ServeMux
	metrics *metricsRegistry
	// down[i] marks backend i unreachable, updated by every backend call
	// and by the background prober; transitions are logged through
	// Options.Logf, so an idle router still notices — and reports — a
	// backend dying or recovering within one probe interval.
	down []atomic.Bool
	// ingestMu serializes ingest and reload broadcasts so concurrent
	// writers reach every backend in the same order.
	ingestMu sync.Mutex
	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
	// routing is the term→shard routing index, lazily rebuilt from a
	// /v1/stats fan-out whenever nil. Dropped (stored nil) by every write
	// broadcast, by the prober on a generation discrepancy, and by a
	// search that observes a backend generation diverging from the index.
	routing   atomic.Pointer[routingIndex]
	routingMu sync.Mutex // serializes index rebuilds (readers use routing)
	// partials[i] caches backend i's parsed search hits keyed
	// (generation, needle, limit); invalidation swaps in a fresh cache.
	partials []atomic.Pointer[hitsCache]
}

// routingShard is one backend's entry in the routing index: its serving
// generation and home-prefix term grams as of the index build. ok=false
// (the backend failed to answer the stats fan-out) routes conservatively:
// the shard is always consulted and its partials never cached.
type routingShard struct {
	gen   uint64
	grams *ontology.TermGrams
	ok    bool
}

// routingIndex is the router's term→shard posting index: per-shard term
// grams to prune the scatter, with each shard's generation pinning the
// partial-cache keys. Immutable once published.
type routingIndex struct {
	shards []routingShard
}

var routerEndpointNames = []string{
	"healthz", "stats", "node", "search", "tag", "query_rewrite", "story", "metrics", "reload", "ingest",
}

// NewRouter builds a Router over the given per-shard backends.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one backend")
	}
	for i, b := range opts.Backends {
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("serve: backend %d: invalid URL %q", i, b)
		}
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 2 * time.Minute
	}
	if opts.MaxSearchResults <= 0 {
		opts.MaxSearchResults = 100
	}
	rt := &Router{
		opts:     opts,
		k:        len(opts.Backends),
		client:   opts.Client,
		metrics:  newMetricsRegistry(routerEndpointNames),
		down:     make([]atomic.Bool, len(opts.Backends)),
		stop:     make(chan struct{}),
		partials: make([]atomic.Pointer[hitsCache], len(opts.Backends)),
	}
	for i := range rt.partials {
		rt.partials[i].Store(newHitsCache(opts.CacheSize))
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	}
	rt.routes()
	if opts.ProbeInterval > 0 {
		rt.probeWG.Add(1)
		go rt.probeLoop()
	}
	return rt, nil
}

// NumShards returns the backend (= shard) count.
func (rt *Router) NumShards() int { return rt.k }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the background prober and releases idle backend
// connections. The router must not be used afterwards.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.probeWG.Wait()
	rt.client.CloseIdleConnections()
}

// workers resolves the fan-out pool size.
func (rt *Router) workers() int {
	if rt.opts.Parallelism > 0 {
		return rt.opts.Parallelism
	}
	if n := runtime.GOMAXPROCS(0); n < rt.k {
		return n
	}
	return rt.k
}

// probeLoop keeps the health marks fresh while traffic is idle, and
// cross-checks each backend's /healthz generation against the routing
// index: a discrepancy means the fleet changed behind the router's back
// (an out-of-band write, or a backend restarted into a different world),
// so the index and every cached partial are dropped.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		results := rt.fanout(context.Background(), http.MethodGet, "/healthz", nil)
		idx := rt.routing.Load()
		if idx == nil {
			continue
		}
		for i := range results {
			if !results[i].ok() {
				continue
			}
			var h struct {
				Generation uint64 `json:"generation"`
			}
			if json.Unmarshal(results[i].body, &h) != nil {
				continue
			}
			if !idx.shards[i].ok || idx.shards[i].gen != h.Generation {
				// Either the backend recovered since the index was built
				// (re-index to regain pruning) or its generation moved
				// without a routed write (distrust every cached partial).
				rt.invalidateSearch(nil, true)
				break
			}
		}
	}
}

// invalidateSearch drops the routing index and resets search-partial
// caches: every shard's when clearAll (a write retired nodes — union-ID
// renumbering can stale even untouched shards' cached hits — or the
// write's effect is unknown), otherwise only the listed touched shards'
// (an append-only delta cannot change what an untouched backend returns).
func (rt *Router) invalidateSearch(touched []int, clearAll bool) {
	rt.routing.Store(nil)
	if clearAll {
		for i := range rt.partials {
			rt.partials[i].Store(newHitsCache(rt.opts.CacheSize))
		}
		return
	}
	for _, s := range touched {
		if s >= 0 && s < rt.k {
			rt.partials[s].Store(newHitsCache(rt.opts.CacheSize))
		}
	}
}

// ensureRouting returns the current routing index, rebuilding it from a
// /v1/stats fan-out when absent. Backends that fail to answer get an
// ok=false entry — consulted on every search, never cached — so a partial
// rebuild degrades pruning, not correctness.
func (rt *Router) ensureRouting(ctx context.Context) *routingIndex {
	if idx := rt.routing.Load(); idx != nil {
		return idx
	}
	rt.routingMu.Lock()
	defer rt.routingMu.Unlock()
	if idx := rt.routing.Load(); idx != nil {
		return idx
	}
	results := rt.fanout(ctx, http.MethodGet, "/v1/stats", nil)
	idx := &routingIndex{shards: make([]routingShard, rt.k)}
	for i := range results {
		if !results[i].ok() {
			continue
		}
		var parsed struct {
			Shard *struct {
				Generation uint64              `json:"generation"`
				TermStats  *ontology.TermStats `json:"term_stats"`
			} `json:"shard"`
		}
		if json.Unmarshal(results[i].body, &parsed) != nil || parsed.Shard == nil {
			continue
		}
		rs := routingShard{gen: parsed.Shard.Generation, ok: true}
		if parsed.Shard.TermStats != nil {
			if g, err := ontology.DecodeTermGrams(parsed.Shard.TermStats.Grams); err == nil {
				rs.grams = g
			}
		}
		idx.shards[i] = rs
	}
	rt.routing.Store(idx)
	return idx
}

// backendResult is one backend call's outcome.
type backendResult struct {
	shard  int
	status int
	body   []byte
	err    error
}

func (br *backendResult) ok() bool { return br.err == nil && br.status == http.StatusOK }

// call performs one backend read under the read timeout, updating the
// backend's health mark from the transport outcome.
func (rt *Router) call(ctx context.Context, shard int, method, pathAndQuery string, body []byte) backendResult {
	return rt.callTimeout(ctx, rt.opts.Timeout, shard, method, pathAndQuery, body)
}

func (rt *Router) callTimeout(ctx context.Context, timeout time.Duration, shard int, method, pathAndQuery string, body []byte) backendResult {
	res := backendResult{shard: shard}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rt.opts.Backends[shard]+pathAndQuery, rd)
	if err != nil {
		res.err = err
		return res
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = fmt.Errorf("shard %d: %w", shard, err)
		rt.markDown(shard, res.err)
		return res
	}
	defer resp.Body.Close()
	res.status = resp.StatusCode
	res.body, res.err = io.ReadAll(resp.Body)
	switch {
	case res.err != nil:
		rt.markDown(shard, res.err)
	case res.status >= 500:
		// Reachable but unhealthy counts as down — the same judgement the
		// fan-out merges apply — so the transition log can't claim a
		// recovery for a backend that restarts into a broken state.
		rt.markDown(shard, fmt.Errorf("status %d", res.status))
	default:
		rt.markUp(shard)
	}
	return res
}

// markDown / markUp flip a backend's health mark, logging the transition
// (and only the transition) through Options.Logf.
func (rt *Router) markDown(shard int, cause error) {
	if !rt.down[shard].Swap(true) && rt.opts.Logf != nil {
		rt.opts.Logf("shard %d down: %v", shard, cause)
	}
}

func (rt *Router) markUp(shard int) {
	if rt.down[shard].Swap(false) && rt.opts.Logf != nil {
		rt.opts.Logf("shard %d recovered", shard)
	}
}

// fanout calls every backend concurrently on a bounded worker pool and
// returns the per-shard results in shard order.
func (rt *Router) fanout(ctx context.Context, method, pathAndQuery string, body []byte) []backendResult {
	out := make([]backendResult, rt.k)
	par.ForEachIndexed(rt.workers(), rt.k, func(i int) {
		out[i] = rt.call(ctx, i, method, pathAndQuery, body)
	})
	return out
}

// broadcast is fanout for writes: the write timeout applies, and the
// context is detached from the client request — once a broadcast starts,
// a client disconnect must not abandon it half-applied across the fleet.
func (rt *Router) broadcast(ctx context.Context, method, pathAndQuery string, body []byte) []backendResult {
	ctx = context.WithoutCancel(ctx)
	out := make([]backendResult, rt.k)
	par.ForEachIndexed(rt.workers(), rt.k, func(i int) {
		out[i] = rt.callTimeout(ctx, rt.opts.WriteTimeout, i, method, pathAndQuery, body)
	})
	return out
}

// failedShards lists the shards whose call failed (transport error or
// non-200), in shard order.
func failedShards(results []backendResult) []int {
	var out []int
	for i := range results {
		if !results[i].ok() {
			out = append(out, i)
		}
	}
	return out
}

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/healthz", rt.endpoint("healthz", rt.handleHealthz))
	rt.mux.HandleFunc("/v1/stats", rt.endpoint("stats", rt.handleStats))
	rt.mux.HandleFunc("/v1/node", rt.endpoint("node", rt.handleNode))
	rt.mux.HandleFunc("/v1/search", rt.endpoint("search", rt.handleSearch))
	rt.mux.HandleFunc("/v1/metrics", rt.endpoint("metrics", rt.handleMetrics))
	rt.mux.HandleFunc("/v1/ingest", rt.endpoint("ingest", rt.handleIngest))
	rt.mux.HandleFunc("/v1/reload", rt.endpoint("reload", rt.handleReload))
	rt.mux.HandleFunc("/v1/tag", rt.routed("tag", func(r *http.Request) int {
		key := r.URL.Query().Get("title")
		if key == "" {
			key = r.URL.Query().Get("content")
		}
		if r.Method == http.MethodPost {
			// Body-carried documents hash by raw body below (routeBody).
			return -1
		}
		return ontology.HomeShard(ontology.Concept, key, rt.k)
	}))
	rt.mux.HandleFunc("/v1/query/rewrite", rt.routed("query_rewrite", func(r *http.Request) int {
		return ontology.HomeShard(ontology.Concept, r.URL.Query().Get("q"), rt.k)
	}))
	rt.mux.HandleFunc("/v1/story", rt.routed("story", func(r *http.Request) int {
		return ontology.HomeShard(ontology.Event, r.URL.Query().Get("seed"), rt.k)
	}))
}

// endpoint wraps a router handler with metrics; handlers return a status
// plus either a pre-rendered body ([]byte, proxied verbatim) or a
// JSON-marshalable payload.
func (rt *Router) endpoint(name string, fn func(r *http.Request) (int, any)) http.HandlerFunc {
	m := rt.metrics.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status, payload := fn(r)
		var body []byte
		if raw, ok := payload.([]byte); ok {
			body = raw
		} else {
			var err error
			body, err = json.Marshal(payload)
			if err != nil {
				status = http.StatusInternalServerError
				body, _ = json.Marshal(errorBody{Error: "encode response: " + err.Error()})
			}
			body = append(body, '\n')
		}
		writeBody(w, status, body, false)
		m.observe(status, time.Since(start), false)
	}
}

// routed proxies a request to a single shard chosen by the route function
// (phrase-hash routing), forwarding the backend response verbatim. An
// unreachable target is a 502 in both degraded modes — a point route has
// no partial result to return.
func (rt *Router) routed(name string, route func(r *http.Request) int) http.HandlerFunc {
	return rt.endpoint(name, func(r *http.Request) (int, any) {
		var body []byte
		if r.Body != nil {
			body, _ = io.ReadAll(r.Body)
		}
		shard := route(r)
		if shard < 0 {
			shard = ontology.HomeShard(ontology.Concept, string(body), rt.k)
		}
		pathAndQuery := r.URL.Path
		if r.URL.RawQuery != "" {
			pathAndQuery += "?" + r.URL.RawQuery
		}
		var reqBody []byte
		if r.Method != http.MethodGet {
			reqBody = body
		}
		res := rt.call(r.Context(), shard, r.Method, pathAndQuery, reqBody)
		if res.err != nil {
			return http.StatusBadGateway, errorBody{Error: fmt.Sprintf("shard %d unavailable: %v", shard, res.err)}
		}
		return res.status, res.body
	})
}

func (rt *Router) handleHealthz(r *http.Request) (int, any) {
	results := rt.fanout(r.Context(), http.MethodGet, "/healthz", nil)
	type backendHealth struct {
		Shard      int    `json:"shard"`
		URL        string `json:"url"`
		Healthy    bool   `json:"healthy"`
		Generation uint64 `json:"generation,omitempty"`
		Error      string `json:"error,omitempty"`
	}
	backends := make([]backendHealth, rt.k)
	status := "ok"
	for i := range results {
		b := backendHealth{Shard: i, URL: rt.opts.Backends[i], Healthy: results[i].ok()}
		if results[i].ok() {
			var h struct {
				Generation uint64 `json:"generation"`
			}
			if json.Unmarshal(results[i].body, &h) == nil {
				b.Generation = h.Generation
			}
		} else {
			status = "degraded"
			if results[i].err != nil {
				b.Error = results[i].err.Error()
			} else {
				b.Error = fmt.Sprintf("status %d", results[i].status)
			}
		}
		backends[i] = b
	}
	return http.StatusOK, map[string]any{"status": status, "shards": rt.k, "backends": backends}
}

// handleSearch answers /v1/search through the routed, cached scatter —
// the cross-process twin of the in-process searchSharded path. The
// routing index prunes the fan-out to the shards whose term grams may
// contain the needle (pruning is a superset filter: a pruned-out shard
// provably has zero matches, so results stay byte-identical to the full
// scatter), and each consulted shard's partial is served from its
// (generation, needle, limit)-keyed cache. A backend whose response
// generation diverges from the index raced a republish: the index is
// dropped and the request falls back to one fresh, uncached full scatter.
// ?scatter=full forces that full path up front — the CI smoke diffs it
// against the routed output on a live fleet.
func (rt *Router) handleSearch(r *http.Request) (int, any) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return http.StatusBadRequest, errorBody{Error: "need ?q="}
	}
	limit := 10
	if ls := r.URL.Query().Get("limit"); ls != "" {
		l, err := strconv.Atoi(ls)
		if err != nil || l <= 0 {
			return http.StatusBadRequest, errorBody{Error: "invalid limit: " + ls}
		}
		limit = l
	}
	if limit > rt.opts.MaxSearchResults {
		limit = rt.opts.MaxSearchResults
	}
	v := url.Values{}
	v.Set("q", q)
	v.Set("limit", strconv.Itoa(limit))
	pq := "/v1/search?" + v.Encode()
	needle := strings.ToLower(q)
	key := searchKey(needle, limit)

	var idx *routingIndex
	if r.URL.Query().Get("scatter") != "full" {
		idx = rt.ensureRouting(r.Context())
	}
	candidates := make([]int, 0, rt.k)
	if idx != nil {
		for i := range idx.shards {
			// ok=false (unknown surface) and grams==nil (backend predates
			// term stats) both route conservatively.
			if !idx.shards[i].ok || idx.shards[i].grams == nil || idx.shards[i].grams.MayContain(needle) {
				candidates = append(candidates, i)
			}
		}
	} else {
		for i := 0; i < rt.k; i++ {
			candidates = append(candidates, i)
		}
	}

	perShard, failed, stale, badShard, badErr := rt.fetchPartials(r.Context(), candidates, pq, key, idx)
	if stale {
		// The index raced a republish: drop it (and the request's view of
		// candidates) and re-scatter everywhere, uncached — the next
		// request rebuilds a fresh index.
		rt.routing.Store(nil)
		candidates = candidates[:0]
		for i := 0; i < rt.k; i++ {
			candidates = append(candidates, i)
		}
		perShard, failed, _, badShard, badErr = rt.fetchPartials(r.Context(), candidates, pq, key, nil)
	}
	if badErr != nil {
		return http.StatusBadGateway, errorBody{Error: fmt.Sprintf("shard %d: bad search response: %v", badShard, badErr)}
	}
	// Only consulted shards can be missing: a pruned-out shard contributes
	// nothing by construction, down or not.
	if len(failed) > 0 && !rt.opts.FailOpen {
		return http.StatusServiceUnavailable, errorBody{Error: fmt.Sprintf("shards %v unavailable (fail-closed)", failed)}
	}
	var hits []searchHit
	for _, ph := range perShard {
		hits = append(hits, ph...)
	}
	// Merge in union ID order: within a shard, home nodes preserve union
	// order, so each shard's first `limit` matches are a superset of its
	// contribution to the global first `limit`.
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].ID < hits[b].ID })
	if len(hits) > limit {
		hits = hits[:limit]
	}
	if hits == nil {
		hits = []searchHit{}
	}
	resp := map[string]any{"query": q, "count": len(hits), "results": hits}
	if len(failed) > 0 {
		resp["partial"] = true
		resp["missing_shards"] = failed
	}
	return http.StatusOK, resp
}

// fetchPartials gathers the per-shard search partials for the candidate
// shards, in candidate order. When idx pins a shard's generation, its
// partial is served from the (generation, needle, limit)-keyed cache and
// a fetched partial is cached only if the backend's response generation
// matches the pinned one; an explicit mismatch sets stale (the caller
// re-scatters). idx == nil fetches everything uncached. Failed shards are
// listed; a shard whose 200 body fails to parse aborts via badErr.
func (rt *Router) fetchPartials(ctx context.Context, candidates []int, pq, key string, idx *routingIndex) (perShard [][]searchHit, failed []int, stale bool, badShard int, badErr error) {
	perShard = make([][]searchHit, len(candidates))
	cached := make([]bool, len(candidates))
	results := make([]backendResult, len(candidates))
	par.ForEachIndexed(rt.workers(), len(candidates), func(j int) {
		sh := candidates[j]
		if idx != nil && idx.shards[sh].ok {
			fullKey := strconv.FormatUint(idx.shards[sh].gen, 10) + "\x00" + key
			if hits, ok := rt.partials[sh].Load().get(fullKey); ok {
				perShard[j], cached[j] = hits, true
				return
			}
		}
		results[j] = rt.call(ctx, sh, http.MethodGet, pq, nil)
	})
	for j, sh := range candidates {
		if cached[j] {
			continue
		}
		if !results[j].ok() {
			failed = append(failed, sh)
			continue
		}
		var parsed struct {
			Results    []searchHit `json:"results"`
			Generation *uint64     `json:"generation"`
		}
		if err := json.Unmarshal(results[j].body, &parsed); err != nil {
			return nil, nil, false, sh, err
		}
		perShard[j] = parsed.Results
		if idx != nil && idx.shards[sh].ok && parsed.Generation != nil {
			if *parsed.Generation == idx.shards[sh].gen {
				fullKey := strconv.FormatUint(idx.shards[sh].gen, 10) + "\x00" + key
				rt.partials[sh].Load().put(fullKey, parsed.Results)
			} else {
				stale = true
			}
		}
	}
	return perShard, failed, stale, 0, nil
}

// handleNode answers a node lookup in the composed view. A (type, phrase)
// request routes straight to HomeShard(type, phrase) — the node named by a
// canonical phrase is always homed there; an alias, ID or untyped lookup
// scatters instead, and the winner is chosen by the union's precedence
// order: phrase matches beat alias matches, then NodeType order, then
// union ID (each a first-win rule of the union index). The home shard's
// response carries the node, its complete parent/children lists and its
// direct IsA parents; the transitive ancestor chain is assembled by
// walking each ancestor's own home shard, level by level — reproducing the
// union's BFS exactly, because every hop queries the one shard holding
// that node's complete in-edge set.
func (rt *Router) handleNode(r *http.Request) (int, any) {
	q := r.URL.Query()
	var (
		chosen *shardNodeDetail
		seed   *shardNodeDetail // primary's alias answer, pre-competing in the scatter
		skip   = -1             // shard already queried by the typed fast path
	)
	switch {
	case q.Get("id") != "":
		if _, err := strconv.Atoi(q.Get("id")); err != nil {
			return http.StatusBadRequest, errorBody{Error: "invalid id: " + q.Get("id")}
		}
	case q.Get("phrase") != "":
		if ts := q.Get("type"); ts != "" {
			t, err := ontology.ParseNodeType(ts)
			if err != nil {
				return http.StatusBadRequest, errorBody{Error: err.Error()}
			}
			primary := ontology.HomeShard(t, q.Get("phrase"), rt.k)
			res := rt.call(r.Context(), primary, http.MethodGet, "/v1/node?"+r.URL.RawQuery, nil)
			if res.err != nil {
				return http.StatusBadGateway, errorBody{Error: fmt.Sprintf("shard %d unavailable: %v", primary, res.err)}
			}
			if res.status == http.StatusOK {
				var d shardNodeDetail
				if err := json.Unmarshal(res.body, &d); err != nil {
					return http.StatusBadGateway, errorBody{Error: fmt.Sprintf("shard %d: bad node response: %v", primary, err)}
				}
				// Only a phrase match short-circuits: the canonical phrase
				// can live on no other shard. An alias answer must compete
				// in the scatter below — the union's first-win alias
				// resolution may prefer a same-typed alias homed elsewhere
				// with a smaller union ID.
				if d.Match == "phrase" {
					chosen = &d
				} else {
					seed = &d
				}
			}
			// 404 (or an alias-only answer) falls through to the scatter —
			// the phrase may be an alias of a node homed on any shard —
			// with the primary's answer seeded so it is not re-queried.
			skip = primary
		}
	default:
		return http.StatusBadRequest, errorBody{Error: "need ?id= or ?phrase="}
	}
	if chosen == nil {
		best, failed, status := rt.scatterNode(r.Context(), r.URL.RawQuery, skip, seed)
		if status != 0 {
			return status, errorBody{Error: fmt.Sprintf("shards %v unavailable", failed)}
		}
		if best == nil {
			return http.StatusNotFound, errorBody{Error: "node not found"}
		}
		chosen = best
	}
	ancestors, err := rt.assembleAncestors(r.Context(), chosen)
	if err != nil {
		return http.StatusBadGateway, errorBody{Error: "assemble ancestors: " + err.Error()}
	}
	d := chosen.nodeDetail
	d.Ancestors = ancestors
	return http.StatusOK, d
}

// scatterNode fans one /v1/node query out to every shard (except skip, a
// shard the caller already queried — its answer, if any, enters as seed)
// and picks the union-precedence winner among the answers. A non-zero
// returned status aborts the lookup (degraded fleet under the fail-closed
// policy, or no answer at all while shards were missing).
func (rt *Router) scatterNode(ctx context.Context, rawQuery string, skip int, seed *shardNodeDetail) (*shardNodeDetail, []int, int) {
	shards := make([]int, 0, rt.k)
	for i := 0; i < rt.k; i++ {
		if i != skip {
			shards = append(shards, i)
		}
	}
	results := make([]backendResult, len(shards))
	par.ForEachIndexed(rt.workers(), len(shards), func(j int) {
		results[j] = rt.call(ctx, shards[j], http.MethodGet, "/v1/node?"+rawQuery, nil)
	})
	var failed []int
	best := seed
	var bestRank [3]int
	if best != nil {
		bestRank = nodeMatchRank(best)
	}
	for i := range results {
		switch {
		case results[i].err != nil:
			failed = append(failed, results[i].shard)
		case results[i].status == http.StatusOK:
			var d shardNodeDetail
			if err := json.Unmarshal(results[i].body, &d); err != nil {
				failed = append(failed, results[i].shard)
				continue
			}
			rank := nodeMatchRank(&d)
			if best == nil || rankLess(rank, bestRank) {
				best, bestRank = &d, rank
			}
		case results[i].status != http.StatusNotFound:
			// 404 is a legitimate "not homed here"; anything else
			// (500 mid-swap, 503) means the shard could not answer and
			// must count as failed — a reachable-but-unhealthy shard is
			// not a license to report "node not found".
			failed = append(failed, results[i].shard)
		}
	}
	if len(failed) > 0 && !rt.opts.FailOpen {
		return nil, failed, http.StatusServiceUnavailable
	}
	if best == nil && len(failed) > 0 {
		return nil, failed, http.StatusBadGateway
	}
	return best, failed, 0
}

// nodeMatchRank orders scatter answers by the union's lookup precedence:
// phrase matches before alias matches, then NodeType order, then union ID.
func nodeMatchRank(d *shardNodeDetail) [3]int {
	mr := 0
	if d.Match == "alias" {
		mr = 1
	}
	tr := 0
	if t, err := ontology.ParseNodeType(d.Node.Type); err == nil {
		tr = int(t)
	}
	return [3]int{mr, tr, int(d.Node.ID)}
}

func rankLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// assembleAncestors rebuilds the transitive IsA ancestor chain of a node
// from per-shard answers, reproducing Snapshot.Ancestors' BFS order: the
// frontier is processed level by level, every node's direct parents arrive
// in union in-edge order from its home shard, and first-seen wins.
func (rt *Router) assembleAncestors(ctx context.Context, d *shardNodeDetail) ([]string, error) {
	seen := map[ontology.NodeID]bool{d.Node.ID: true}
	var out []string
	adopt := func(refs []isaRef) []isaRef {
		var added []isaRef
		for _, ref := range refs {
			if seen[ref.ID] {
				continue
			}
			seen[ref.ID] = true
			out = append(out, ref.Phrase)
			added = append(added, ref)
		}
		return added
	}
	frontier := adopt(d.IsAParents)
	for len(frontier) > 0 {
		// One level's fetches are independent — run them through the
		// bounded fan-out pool (one round-trip per level, not per node) —
		// then adopt in frontier order, which is what fixes the BFS
		// ordering; the fetch order never observes `seen`.
		parents := make([][]isaRef, len(frontier))
		errs := make([]error, len(frontier))
		par.ForEachIndexed(rt.workers(), len(frontier), func(i int) {
			parents[i], errs[i] = rt.fetchIsAParents(ctx, frontier[i])
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		var next []isaRef
		for i := range frontier {
			next = append(next, adopt(parents[i])...)
		}
		frontier = next
	}
	return out, nil
}

// fetchIsAParents asks an ancestor's home shard for its direct IsA
// parents (a cacheable point lookup on the backend).
func (rt *Router) fetchIsAParents(ctx context.Context, ref isaRef) ([]isaRef, error) {
	t, err := ontology.ParseNodeType(ref.Type)
	if err != nil {
		return nil, fmt.Errorf("ancestor %q: %w", ref.Phrase, err)
	}
	shard := ontology.HomeShard(t, ref.Phrase, rt.k)
	v := url.Values{}
	v.Set("phrase", ref.Phrase)
	v.Set("type", ref.Type)
	res := rt.call(ctx, shard, http.MethodGet, "/v1/node?"+v.Encode(), nil)
	if res.err != nil {
		return nil, fmt.Errorf("shard %d unavailable: %w", shard, res.err)
	}
	if res.status != http.StatusOK {
		return nil, fmt.Errorf("shard %d: ancestor %q: status %d", shard, ref.Phrase, res.status)
	}
	var parsed shardNodeDetail
	if err := json.Unmarshal(res.body, &parsed); err != nil {
		return nil, fmt.Errorf("shard %d: bad node response: %w", shard, err)
	}
	return parsed.IsAParents, nil
}

// handleStats fans /v1/stats out and reassembles the in-process sharded
// stats shape: exact whole-world counts from each shard's owned slice and
// the per-shard generation list verbatim.
func (rt *Router) handleStats(r *http.Request) (int, any) {
	results := rt.fanout(r.Context(), http.MethodGet, "/v1/stats", nil)
	failed := failedShards(results)
	if len(failed) > 0 && !rt.opts.FailOpen {
		return http.StatusServiceUnavailable, errorBody{Error: fmt.Sprintf("shards %v unavailable (fail-closed)", failed)}
	}
	type shardBlock struct {
		Shard       int            `json:"shard"`
		Shards      int            `json:"shards"`
		Generation  uint64         `json:"generation"`
		Nodes       int            `json:"nodes"`
		Edges       int            `json:"edges"`
		OwnedEdges  int            `json:"owned_edges"`
		NodesByType map[string]int `json:"nodes_by_type"`
		EdgesByType map[string]int `json:"edges_by_type"`
	}
	nodes, edges := 0, 0
	nodesByType, edgesByType := map[string]int{}, map[string]int{}
	shards := make([]shardSummary, 0, rt.k)
	for i := range results {
		if !results[i].ok() {
			continue
		}
		var parsed struct {
			Shard *shardBlock `json:"shard"`
		}
		if err := json.Unmarshal(results[i].body, &parsed); err != nil || parsed.Shard == nil {
			return http.StatusBadGateway, errorBody{Error: fmt.Sprintf("shard %d: not a per-shard stats response (is the backend running with -shard?)", i)}
		}
		sb := parsed.Shard
		if sb.Shard != i || sb.Shards != rt.k {
			return http.StatusBadGateway, errorBody{Error: fmt.Sprintf("backend %d serves shard %d/%d, want %d/%d (check -backends order)", i, sb.Shard, sb.Shards, i, rt.k)}
		}
		nodes += sb.Nodes
		edges += sb.OwnedEdges
		for k, v := range sb.NodesByType {
			nodesByType[k] += v
		}
		for k, v := range sb.EdgesByType {
			edgesByType[k] += v
		}
		shards = append(shards, shardSummary{Shard: i, Generation: sb.Generation, Nodes: sb.Nodes, Edges: sb.Edges})
	}
	resp := map[string]any{
		"nodes":         nodes,
		"edges":         edges,
		"nodes_by_type": nodesByType,
		"edges_by_type": edgesByType,
		"shards":        shards,
	}
	if len(failed) > 0 {
		resp["partial"] = true
		resp["missing_shards"] = failed
	}
	return http.StatusOK, resp
}

func (rt *Router) handleMetrics(r *http.Request) (int, any) {
	results := rt.fanout(r.Context(), http.MethodGet, "/v1/metrics", nil)
	backends := make([]any, rt.k)
	for i := range results {
		if results[i].ok() {
			var m json.RawMessage = results[i].body
			backends[i] = m
		} else {
			backends[i] = map[string]any{"shard": i, "error": "unavailable"}
		}
	}
	return http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(rt.metrics.start).Seconds(),
		"endpoints":      rt.metrics.snapshot(),
		"backends":       backends,
	}
}

// handleIngest broadcasts the batch to every backend — each holds the full
// mining system and republishes only its own shard — with all-or-nothing
// generation accounting: the merged generation report is returned only
// when every backend applied the batch; a partial application surfaces as
// 502 naming the shards that diverged. Writes are always fail-closed.
func (rt *Router) handleIngest(r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errorBody{Error: "use POST"}
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return http.StatusBadRequest, errorBody{Error: "read body: " + err.Error()}
	}
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	results := rt.broadcast(r.Context(), http.MethodPost, "/v1/ingest", body)
	status, resp := rt.mergeBroadcast(results, "ingest")
	rt.invalidateAfterIngest(status, resp)
	return status, resp
}

// invalidateAfterIngest applies the search invalidation rules to a merged
// ingest outcome. A clean apply whose delta is append-only clears only the
// touched shards' partials (an untouched backend's answers cannot have
// changed); a delta that retired nodes clears everything — dense union-ID
// renumbering refreshes every backend's rendered IDs without bumping
// untouched generations, which is exactly the staleness generation keys
// cannot see. A uniform 4xx rejection changed nothing; any murkier
// outcome (partial application) clears everything.
func (rt *Router) invalidateAfterIngest(status int, resp any) {
	if status >= 400 && status < 500 {
		return
	}
	m, ok := resp.(map[string]any)
	if status != http.StatusOK || !ok {
		rt.invalidateSearch(nil, true)
		return
	}
	touched, _ := m["touched_shards"].([]int)
	delta, haveDelta := m["delta"].(map[string]any)
	clearAll := !haveDelta
	if haveDelta {
		if retired, ok := delta["retired"].(float64); !ok || retired > 0 {
			clearAll = true
		}
	}
	rt.invalidateSearch(touched, clearAll)
}

// handleReload broadcasts /v1/reload with the same all-or-nothing
// accounting as ingest.
func (rt *Router) handleReload(r *http.Request) (int, any) {
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errorBody{Error: "use POST"}
	}
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	results := rt.broadcast(r.Context(), http.MethodPost, "/v1/reload", nil)
	status, resp := rt.mergeBroadcast(results, "reload")
	// A reload replaces whole worlds: drop the routing index and every
	// cached partial whenever any backend may have applied it.
	if status < 400 || status >= 500 {
		rt.invalidateSearch(nil, true)
	}
	return status, resp
}

// shardWriteResp is the slice of a backend write response the router
// aggregates.
type shardWriteResp struct {
	Generation    uint64         `json:"generation"`
	TouchedShards []int          `json:"touched_shards"`
	HomeNodes     int            `json:"home_nodes"`
	Delta         map[string]any `json:"delta"`
}

// mergeBroadcast aggregates a write broadcast. Every backend succeeded →
// merged 200. Every backend rejected with the same 4xx (deterministic
// validation) → that status with the first body, so client-fault statuses
// (400/422) survive the fan-out. Anything else → 502 with per-shard
// status detail: the fleet's generations may have diverged and the
// operator must reconcile (the response names exactly which shards
// applied).
func (rt *Router) mergeBroadcast(results []backendResult, what string) (int, any) {
	allOK, all4xx := true, true
	first4xx := 0
	for i := range results {
		if results[i].ok() {
			all4xx = false
			continue
		}
		allOK = false
		if results[i].err != nil || results[i].status < 400 || results[i].status >= 500 {
			all4xx = false
		} else if first4xx == 0 {
			first4xx = results[i].status
		} else if results[i].status != first4xx {
			all4xx = false
		}
	}
	if all4xx && first4xx != 0 {
		return first4xx, results[0].body
	}
	parsed := make([]shardWriteResp, rt.k)
	for i := range results {
		if results[i].ok() {
			if err := json.Unmarshal(results[i].body, &parsed[i]); err != nil {
				allOK = false
			}
		}
	}
	if !allOK {
		type shardStatus struct {
			Shard   int    `json:"shard"`
			Applied bool   `json:"applied"`
			Status  int    `json:"status,omitempty"`
			Error   string `json:"error,omitempty"`
		}
		detail := make([]shardStatus, rt.k)
		for i := range results {
			detail[i] = shardStatus{Shard: i, Applied: results[i].ok(), Status: results[i].status}
			if results[i].err != nil {
				detail[i].Error = results[i].err.Error()
			}
		}
		return http.StatusBadGateway, map[string]any{
			"error":  fmt.Sprintf("partial %s application: generations may have diverged; reconcile the shards marked applied=false", what),
			"shards": detail,
		}
	}
	gens := make([]uint64, rt.k)
	nodes := 0
	for i := range parsed {
		gens[i] = parsed[i].Generation
		nodes += parsed[i].HomeNodes
	}
	resp := map[string]any{
		"shards":            rt.k,
		"shard_generations": gens,
		"nodes":             nodes,
	}
	if what == "ingest" {
		// Touched flags are deterministic across backends; report the
		// first one's view.
		ts := parsed[0].TouchedShards
		if ts == nil {
			ts = []int{}
		}
		resp["touched_shards"] = ts
		if parsed[0].Delta != nil {
			resp["delta"] = parsed[0].Delta
		}
	}
	return http.StatusOK, resp
}
