package serve

// Delta-log replicas: a per-shard server (NewShard) that never accepts
// direct writes and instead tails its shard's append-only wal.Log,
// applying each delta.Batch through the same ingestBatch path a direct
// POST /v1/ingest would take. Because delta mining is deterministic,
// every replica of a shard that has consumed the same log prefix serves
// the exact same projection at the exact same generation — which is what
// lets the router treat replicas as interchangeable for reads and ack an
// ingest at a quorum of apply confirmations.
//
// The replica's progress is observable three ways, all fed from one
// walState: the X-Giant-Wal-Gen header on every response, the
// wal_gen/replica/checkpoint_gen fields of /healthz, and GET /v1/wal —
// which can block (?wait=G&timeout_ms=) until generation G has been
// applied, the router's quorum-ack primitive.
//
// Checkpointing bounds catch-up: every Options.CheckpointEvery applied
// generations the follower captures the host's full apply state (union
// snapshot + opaque host blob), encodes it off the apply path, and
// publishes a GIANTCKP artifact beside the log. A restarting replica
// walks the recovery ladder — primary checkpoint, previous checkpoint,
// full replay (HydrateShard) — and then tails only the log suffix past
// the artifact it hydrated; the router is then free to truncate the log
// below the fleet-wide applied floor, bounded by the covered position
// of the published checkpoint.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"giant/internal/delta"
	"giant/internal/ontology"
	"giant/internal/wal"
)

// walState tracks a replica's position in its shard's delta log. It is
// attached to the Server by NewFollower and advanced by Follower.Run;
// handlers only read it (or block on changed).
type walState struct {
	replica int // replica ordinal, for /healthz and log lines

	mu      sync.Mutex
	gen     uint64        // last consumed log generation
	ckpt    uint64        // log position covered by the last published checkpoint
	status  int           // HTTP-equivalent status of the last apply
	result  any           // last apply's response payload
	changed chan struct{} // closed and replaced on every advance

	// force carries POST /v1/checkpoint requests into the follower
	// goroutine, which services them between applies (nil when the
	// follower has no CheckpointSave configured).
	force chan chan error
}

func newWALState(replica int, startGen uint64) *walState {
	return &walState{replica: replica, gen: startGen, ckpt: startGen, changed: make(chan struct{})}
}

// position returns the last consumed log generation.
func (ws *walState) position() uint64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.gen
}

// checkpointGen returns the log position covered by the newest
// checkpoint this replica has published or booted from (0 when none).
func (ws *walState) checkpointGen() uint64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.ckpt
}

// setCheckpoint records a published checkpoint's covered position.
func (ws *walState) setCheckpoint(gen uint64) {
	ws.mu.Lock()
	if gen > ws.ckpt {
		ws.ckpt = gen
	}
	ws.mu.Unlock()
}

// advance records one consumed record's outcome and wakes waiters.
func (ws *walState) advance(gen uint64, status int, result any) {
	ws.mu.Lock()
	ws.gen, ws.status, ws.result = gen, status, result
	close(ws.changed)
	ws.changed = make(chan struct{})
	ws.mu.Unlock()
}

// report snapshots the last apply.
func (ws *walState) report() (gen uint64, status int, result any) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.gen, ws.status, ws.result
}

// waitFor blocks until generation gen has been consumed or the timeout
// elapses, reporting whether it was reached.
func (ws *walState) waitFor(gen uint64, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ws.mu.Lock()
		if ws.gen >= gen {
			ws.mu.Unlock()
			return true
		}
		ch := ws.changed
		ws.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return false
		}
	}
}

// FollowerOptions configures delta-log following for one replica.
type FollowerOptions struct {
	// Path is the shard's .wal file.
	Path string
	// Replica is the ordinal reported in /healthz.
	Replica int
	// Poll bounds the idle re-check interval (0 means 100ms).
	Poll time.Duration
	// Logf receives progress lines (nil silences them).
	Logf func(format string, args ...any)
	// StartGen is the log position already covered by the state the
	// server booted from — the hydrated checkpoint's WALGen, or 0 for a
	// full replay. The follower tails only records past it.
	StartGen uint64
	// CheckpointEvery rolls a new checkpoint artifact each time this
	// many log generations have been applied since the last roll. 0
	// disables cadence checkpointing (POST /v1/checkpoint still works
	// when the server has a CheckpointSave).
	CheckpointEvery uint64
	// CheckpointDir is where artifacts are published (default: the
	// directory of Path, shared with the log so every replica of the
	// shard — and the router — sees them).
	CheckpointDir string
}

// Follower tails a shard's delta log and applies each record to its
// Server. One Follower per replica process (cmd/giantd -wal).
type Follower struct {
	srv  *Server
	opts FollowerOptions
	ws   *walState

	// lastCkpt is the log position at which the last checkpoint roll was
	// initiated; ckptBusy guards the single in-flight encode+publish, and
	// publishWG lets Run drain it before returning (a cancelled follower
	// must not leave a half-published artifact racing process shutdown).
	lastCkpt  atomic.Uint64
	ckptBusy  atomic.Bool
	publishWG sync.WaitGroup
}

// NewFollower attaches delta-log following to a per-shard server built
// with NewShard/NewShardAt and a ShardIngest callback (the replica
// re-mines each batch exactly like a directly-written backend would,
// which is what keeps replica generations identical across the fleet).
// The server immediately turns read-only: direct /v1/ingest and
// /v1/reload answer 503 read_only_replica, and /v1/wal starts reporting
// (StartGen until Run consumes the first suffix record).
func NewFollower(srv *Server, opts FollowerOptions) (*Follower, error) {
	if !srv.shardMode {
		return nil, errors.New("serve: follower needs a per-shard server (NewShard)")
	}
	if srv.opts.ShardIngest == nil {
		return nil, errors.New("serve: follower needs Options.ShardIngest (the replica applies batches by re-mining them)")
	}
	if opts.Poll <= 0 {
		opts.Poll = 100 * time.Millisecond
	}
	if opts.CheckpointDir == "" {
		opts.CheckpointDir = filepath.Dir(opts.Path)
	}
	ws := newWALState(opts.Replica, opts.StartGen)
	if srv.opts.CheckpointSave != nil {
		ws.force = make(chan chan error, 1)
	}
	if !srv.wal.CompareAndSwap(nil, ws) {
		return nil, errors.New("serve: server already has a follower attached")
	}
	f := &Follower{srv: srv, opts: opts, ws: ws}
	f.lastCkpt.Store(opts.StartGen)
	return f, nil
}

// Run tails the log until ctx is cancelled. The log file may not exist
// yet (the router creates it on its first ingest); Run waits for it. A
// corrupt log (mid-log checksum failure, generation gap) stops the
// follower with the error — serving continues at the last applied
// generation, but the replica will never ack past it, which is the
// operator's signal to restore the log and restart. ErrCompacted (the
// log was truncated past this replica's position while it was away)
// also stops the follower: the fix is a restart, which rehydrates the
// newer checkpoint the truncation was bounded by.
func (f *Follower) Run(ctx context.Context) error {
	var rd *wal.Reader
	defer func() {
		f.publishWG.Wait()
		if rd != nil {
			rd.Close()
		}
	}()
	shard := f.srv.cur.Load().proj
	wait := func() bool {
		select {
		case <-ctx.Done():
			return false
		case reply := <-f.forceChan():
			reply <- f.rollCheckpoint(f.ws.position())
			return true
		case <-time.After(f.opts.Poll):
			return true
		}
	}
	for {
		if rd == nil {
			r, err := wal.OpenReaderAt(f.opts.Path, shard.Shard, shard.NumShards, f.ws.position())
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) || errors.Is(err, wal.ErrTruncated) {
					// Not written yet (or header mid-write): retry.
					if !wait() {
						return ctx.Err()
					}
					continue
				}
				if errors.Is(err, wal.ErrCompacted) {
					return fmt.Errorf("serve: follower at generation %d: %w (restart to hydrate the newer checkpoint)", f.ws.position(), err)
				}
				return err
			}
			rd = r
		}
		rec, err := rd.Next()
		if err != nil {
			return fmt.Errorf("serve: follower at generation %d: %w", f.ws.position(), err)
		}
		if rec == nil {
			if !wait() {
				return ctx.Err()
			}
			continue
		}
		f.apply(rec)
		f.maybeCheckpoint(rec.Gen)
		select {
		case reply := <-f.forceChan():
			reply <- f.rollCheckpoint(rec.Gen)
		default:
		}
	}
}

// forceChan returns the forced-roll channel, or a nil channel (blocks
// forever in select) when checkpointing is not configured.
func (f *Follower) forceChan() chan chan error {
	return f.ws.force
}

// apply consumes one log record. A batch the mining pipeline rejects
// deterministically (400/422) still advances the consumed position —
// every replica rejects it identically, so skipping it keeps the fleet
// converged — with the rejection recorded for the router to surface.
func (f *Follower) apply(rec *wal.Record) {
	var status int
	var result any
	var batch delta.Batch
	if err := json.Unmarshal(rec.Payload, &batch); err != nil {
		status = http.StatusBadRequest
		result = errBody(codeInvalidArgument, "decode batch: "+err.Error())
	} else {
		status, result = f.srv.ingestBatch(batch)
	}
	f.ws.advance(rec.Gen, status, result)
	if f.opts.Logf != nil {
		if status == http.StatusOK {
			f.opts.Logf("wal: applied generation %d (day %d) -> serving generation %d", rec.Gen, rec.Day, f.srv.Generation())
		} else {
			f.opts.Logf("wal: generation %d rejected with status %d", rec.Gen, status)
		}
	}
}

// maybeCheckpoint rolls a cadence checkpoint once CheckpointEvery
// generations have been applied since the last roll. The host state is
// captured synchronously (the follower goroutine is the only writer, so
// between applies it is quiescent); the encode and publish run in a
// background goroutine so catch-up is not stalled by artifact I/O, with
// a single roll in flight at a time.
func (f *Follower) maybeCheckpoint(walGen uint64) {
	every := f.opts.CheckpointEvery
	if every == 0 || f.srv.opts.CheckpointSave == nil {
		return
	}
	if walGen-f.lastCkpt.Load() < every {
		return
	}
	if !f.ckptBusy.CompareAndSwap(false, true) {
		return // a roll is still publishing; re-check at the next apply
	}
	ck, err := f.captureCheckpoint(walGen)
	if err != nil {
		f.ckptBusy.Store(false)
		if f.opts.Logf != nil {
			f.opts.Logf("wal: checkpoint capture at generation %d failed: %v", walGen, err)
		}
		return
	}
	f.lastCkpt.Store(walGen)
	f.publishWG.Add(1)
	go func() {
		defer f.publishWG.Done()
		defer f.ckptBusy.Store(false)
		if err := f.publishCheckpoint(ck); err != nil {
			if f.opts.Logf != nil {
				f.opts.Logf("wal: checkpoint publish at generation %d failed: %v", walGen, err)
			}
			return
		}
		if f.opts.Logf != nil {
			f.opts.Logf("wal: checkpoint published at log generation %d (serving generation %d)", ck.WALGen, ck.ServingGen)
		}
	}()
}

// rollCheckpoint is the synchronous (forced) variant: capture, encode,
// and publish inline, so the POST /v1/checkpoint caller learns the real
// outcome.
func (f *Follower) rollCheckpoint(walGen uint64) error {
	if f.srv.opts.CheckpointSave == nil {
		return errors.New("serve: checkpointing not configured (no CheckpointSave)")
	}
	for !f.ckptBusy.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond) // wait out an in-flight cadence publish
	}
	defer f.ckptBusy.Store(false)
	ck, err := f.captureCheckpoint(walGen)
	if err != nil {
		return err
	}
	if err := f.publishCheckpoint(ck); err != nil {
		return err
	}
	f.lastCkpt.Store(walGen)
	if f.opts.Logf != nil {
		f.opts.Logf("wal: checkpoint published at log generation %d (serving generation %d)", ck.WALGen, ck.ServingGen)
	}
	return nil
}

// captureCheckpoint snapshots the host state at the current position.
// The union snapshot is immutable, so only the opaque state blob and
// the generation stamps need to be taken synchronously.
func (f *Follower) captureCheckpoint(walGen uint64) (*wal.Checkpoint, error) {
	snap, hostState, err := f.srv.opts.CheckpointSave()
	if err != nil {
		return nil, err
	}
	shard := f.srv.cur.Load().proj
	var buf bytes.Buffer
	if err := ontology.EncodeSnapshotBinary(&buf, snap, f.srv.Generation()); err != nil {
		return nil, err
	}
	return &wal.Checkpoint{
		Shard:      shard.Shard,
		Shards:     shard.NumShards,
		WALGen:     walGen,
		ServingGen: f.srv.Generation(),
		Snapshot:   buf.Bytes(),
		State:      hostState,
	}, nil
}

// publishCheckpoint writes the artifact and records it in walState.
func (f *Follower) publishCheckpoint(ck *wal.Checkpoint) error {
	if err := wal.PublishCheckpoint(f.opts.CheckpointDir, ck); err != nil {
		return err
	}
	f.ws.setCheckpoint(ck.WALGen)
	return nil
}

// HydrateShard walks a shard's checkpoint recovery ladder — primary
// artifact, then the rotated previous one — and boots a per-shard
// server from the newest one that fully validates: checkpoint CRCs,
// GIANTBIN decode, and the host's CheckpointRestore must all succeed,
// otherwise the ladder falls through. It returns the server plus the
// log position the caller's follower should tail from. (nil, 0, nil)
// means no usable checkpoint: the caller boots a fresh server and
// replays the whole log, the ladder's final rung.
func HydrateShard(walDir string, shard, shards int, opts Options, logf func(format string, args ...any)) (*Server, uint64, error) {
	if opts.CheckpointRestore == nil {
		return nil, 0, errors.New("serve: HydrateShard needs Options.CheckpointRestore")
	}
	paths := []string{
		wal.CheckpointPath(walDir, shard, shards),
		wal.PrevCheckpointPath(walDir, shard, shards),
	}
	for _, p := range paths {
		ck, err := wal.ReadCheckpoint(p, shard, shards)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) && logf != nil {
				logf("wal: checkpoint %s unusable: %v", p, err)
			}
			continue
		}
		snap, gen, err := ontology.DecodeSnapshotBinaryWithGen(ck.Snapshot)
		if err != nil {
			if logf != nil {
				logf("wal: checkpoint %s snapshot undecodable: %v", p, err)
			}
			continue
		}
		if gen != ck.ServingGen {
			if logf != nil {
				logf("wal: checkpoint %s stamps serving generation %d but embeds %d; skipping", p, ck.ServingGen, gen)
			}
			continue
		}
		proj, err := opts.CheckpointRestore(snap, ck.State)
		if err != nil {
			if logf != nil {
				logf("wal: checkpoint %s state restore failed: %v", p, err)
			}
			continue
		}
		if logf != nil {
			logf("wal: hydrated checkpoint %s (log generation %d, serving generation %d)", p, ck.WALGen, ck.ServingGen)
		}
		return NewShardAt(proj, ck.ServingGen, opts), ck.WALGen, nil
	}
	return nil, 0, nil
}

// handleCheckpoint answers POST /v1/checkpoint on a replica: it forces
// the follower to roll a checkpoint artifact at its current applied
// position, synchronously, and reports the covered log position — the
// operator's lever (giantctl checkpoint) for bounding catch-up before a
// planned restart or truncation.
func (s *Server) handleCheckpoint(st *state, r *http.Request) (int, any) {
	ws := s.wal.Load()
	if ws == nil {
		return http.StatusNotFound, errBody(codeNotFound, "not a delta-log replica (start giantd with -wal)")
	}
	if r.Method != http.MethodPost {
		return http.StatusMethodNotAllowed, errBody(codeMethodNotAllowed, "POST required")
	}
	if ws.force == nil {
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "checkpointing not configured on this replica")
	}
	reply := make(chan error, 1)
	select {
	case ws.force <- reply:
	case <-time.After(30 * time.Second):
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "follower busy; checkpoint request timed out")
	}
	select {
	case err := <-reply:
		if err != nil {
			return http.StatusInternalServerError, errBody(codeInternal, "checkpoint failed: "+err.Error())
		}
	case <-time.After(120 * time.Second):
		return http.StatusServiceUnavailable, errBody(codeUnavailable, "checkpoint still in progress after 120s")
	}
	return http.StatusOK, map[string]any{
		"shard":          st.proj.Shard,
		"shards":         st.proj.NumShards,
		"replica":        ws.replica,
		"checkpoint_gen": ws.checkpointGen(),
		"generation":     s.cur.Load().gen,
	}
}

// handleWAL answers GET /v1/wal on a replica: its consumed log position,
// serving generation, and the last apply's outcome. ?wait=G blocks until
// generation G has been applied (?timeout_ms= bounds the wait, default
// 30s, max 120s) — the router's quorum-ack and catch-up primitive.
// "applied" reports whether the wait target (or, without ?wait=, the
// current head position) has been consumed.
func (s *Server) handleWAL(st *state, r *http.Request) (int, any) {
	ws := s.wal.Load()
	if ws == nil {
		return http.StatusNotFound, errBody(codeNotFound, "not a delta-log replica (start giantd with -wal)")
	}
	q := r.URL.Query()
	applied := true
	if wg := q.Get("wait"); wg != "" {
		g, err := strconv.ParseUint(wg, 10, 64)
		if err != nil {
			return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid wait: "+wg)
		}
		timeout := 30 * time.Second
		if ts := q.Get("timeout_ms"); ts != "" {
			ms, err := strconv.Atoi(ts)
			if err != nil || ms < 0 {
				return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid timeout_ms: "+ts)
			}
			if ms > 120_000 {
				ms = 120_000
			}
			timeout = time.Duration(ms) * time.Millisecond
		}
		applied = ws.waitFor(g, timeout)
	}
	gen, status, result := ws.report()
	// The wait may have outlived st: report the generation serving NOW.
	cur := s.cur.Load()
	resp := map[string]any{
		"shard":          st.proj.Shard,
		"shards":         st.proj.NumShards,
		"replica":        ws.replica,
		"wal_gen":        gen,
		"generation":     cur.gen,
		"applied":        applied,
		"checkpoint_gen": ws.checkpointGen(),
	}
	if result != nil {
		resp["last"] = map[string]any{"wal_gen": gen, "status": status, "result": result}
	}
	return http.StatusOK, resp
}
