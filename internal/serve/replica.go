package serve

// Delta-log replicas: a per-shard server (NewShard) that never accepts
// direct writes and instead tails its shard's append-only wal.Log,
// applying each delta.Batch through the same ingestBatch path a direct
// POST /v1/ingest would take. Because delta mining is deterministic,
// every replica of a shard that has consumed the same log prefix serves
// the exact same projection at the exact same generation — which is what
// lets the router treat replicas as interchangeable for reads and ack an
// ingest at a quorum of apply confirmations.
//
// The replica's progress is observable three ways, all fed from one
// walState: the X-Giant-Wal-Gen header on every response, the
// wal_gen/replica fields of /healthz, and GET /v1/wal — which can block
// (?wait=G&timeout_ms=) until generation G has been applied, the
// router's quorum-ack primitive.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"strconv"
	"sync"
	"time"

	"giant/internal/delta"
	"giant/internal/wal"
)

// walState tracks a replica's position in its shard's delta log. It is
// attached to the Server by NewFollower and advanced by Follower.Run;
// handlers only read it (or block on changed).
type walState struct {
	replica int // replica ordinal, for /healthz and log lines

	mu      sync.Mutex
	gen     uint64        // last consumed log generation
	status  int           // HTTP-equivalent status of the last apply
	result  any           // last apply's response payload
	changed chan struct{} // closed and replaced on every advance
}

func newWALState(replica int) *walState {
	return &walState{replica: replica, changed: make(chan struct{})}
}

// position returns the last consumed log generation.
func (ws *walState) position() uint64 {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.gen
}

// advance records one consumed record's outcome and wakes waiters.
func (ws *walState) advance(gen uint64, status int, result any) {
	ws.mu.Lock()
	ws.gen, ws.status, ws.result = gen, status, result
	close(ws.changed)
	ws.changed = make(chan struct{})
	ws.mu.Unlock()
}

// report snapshots the last apply.
func (ws *walState) report() (gen uint64, status int, result any) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.gen, ws.status, ws.result
}

// waitFor blocks until generation gen has been consumed or the timeout
// elapses, reporting whether it was reached.
func (ws *walState) waitFor(gen uint64, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ws.mu.Lock()
		if ws.gen >= gen {
			ws.mu.Unlock()
			return true
		}
		ch := ws.changed
		ws.mu.Unlock()
		select {
		case <-ch:
		case <-deadline.C:
			return false
		}
	}
}

// Follower tails a shard's delta log and applies each record to its
// Server. One Follower per replica process (cmd/giantd -wal).
type Follower struct {
	srv  *Server
	path string
	poll time.Duration
	logf func(format string, args ...any)
	ws   *walState
}

// NewFollower attaches delta-log following to a per-shard server built
// with NewShard and a ShardIngest callback (the replica re-mines each
// batch exactly like a directly-written backend would, which is what
// keeps replica generations identical across the fleet). The server
// immediately turns read-only: direct /v1/ingest and /v1/reload answer
// 503 read_only_replica, and /v1/wal starts reporting (0 until Run
// consumes the first record). replica is the ordinal reported in
// /healthz; poll bounds the idle re-check interval (0 means 100ms).
func NewFollower(srv *Server, path string, replica int, poll time.Duration, logf func(format string, args ...any)) (*Follower, error) {
	if !srv.shardMode {
		return nil, errors.New("serve: follower needs a per-shard server (NewShard)")
	}
	if srv.opts.ShardIngest == nil {
		return nil, errors.New("serve: follower needs Options.ShardIngest (the replica applies batches by re-mining them)")
	}
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	ws := newWALState(replica)
	if !srv.wal.CompareAndSwap(nil, ws) {
		return nil, errors.New("serve: server already has a follower attached")
	}
	return &Follower{srv: srv, path: path, poll: poll, logf: logf, ws: ws}, nil
}

// Run tails the log until ctx is cancelled. The log file may not exist
// yet (the router creates it on its first ingest); Run waits for it. A
// corrupt log (mid-log checksum failure, generation gap) stops the
// follower with the error — serving continues at the last applied
// generation, but the replica will never ack past it, which is the
// operator's signal to restore the log and restart.
func (f *Follower) Run(ctx context.Context) error {
	var rd *wal.Reader
	defer func() {
		if rd != nil {
			rd.Close()
		}
	}()
	shard := f.srv.cur.Load().proj
	wait := func() bool {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(f.poll):
			return true
		}
	}
	for {
		if rd == nil {
			r, err := wal.OpenReader(f.path, shard.Shard, shard.NumShards)
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) || errors.Is(err, wal.ErrTruncated) {
					// Not written yet (or header mid-write): retry.
					if !wait() {
						return ctx.Err()
					}
					continue
				}
				return err
			}
			rd = r
		}
		rec, err := rd.Next()
		if err != nil {
			return fmt.Errorf("serve: follower at generation %d: %w", f.ws.position(), err)
		}
		if rec == nil {
			if !wait() {
				return ctx.Err()
			}
			continue
		}
		f.apply(rec)
	}
}

// apply consumes one log record. A batch the mining pipeline rejects
// deterministically (400/422) still advances the consumed position —
// every replica rejects it identically, so skipping it keeps the fleet
// converged — with the rejection recorded for the router to surface.
func (f *Follower) apply(rec *wal.Record) {
	var status int
	var result any
	var batch delta.Batch
	if err := json.Unmarshal(rec.Payload, &batch); err != nil {
		status = http.StatusBadRequest
		result = errBody(codeInvalidArgument, "decode batch: "+err.Error())
	} else {
		status, result = f.srv.ingestBatch(batch)
	}
	f.ws.advance(rec.Gen, status, result)
	if f.logf != nil {
		if status == http.StatusOK {
			f.logf("wal: applied generation %d (day %d) -> serving generation %d", rec.Gen, rec.Day, f.srv.Generation())
		} else {
			f.logf("wal: generation %d rejected with status %d", rec.Gen, status)
		}
	}
}

// handleWAL answers GET /v1/wal on a replica: its consumed log position,
// serving generation, and the last apply's outcome. ?wait=G blocks until
// generation G has been applied (?timeout_ms= bounds the wait, default
// 30s, max 120s) — the router's quorum-ack and catch-up primitive.
// "applied" reports whether the wait target (or, without ?wait=, the
// current head position) has been consumed.
func (s *Server) handleWAL(st *state, r *http.Request) (int, any) {
	ws := s.wal.Load()
	if ws == nil {
		return http.StatusNotFound, errBody(codeNotFound, "not a delta-log replica (start giantd with -wal)")
	}
	q := r.URL.Query()
	applied := true
	if wg := q.Get("wait"); wg != "" {
		g, err := strconv.ParseUint(wg, 10, 64)
		if err != nil {
			return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid wait: "+wg)
		}
		timeout := 30 * time.Second
		if ts := q.Get("timeout_ms"); ts != "" {
			ms, err := strconv.Atoi(ts)
			if err != nil || ms < 0 {
				return http.StatusBadRequest, errBody(codeInvalidArgument, "invalid timeout_ms: "+ts)
			}
			if ms > 120_000 {
				ms = 120_000
			}
			timeout = time.Duration(ms) * time.Millisecond
		}
		applied = ws.waitFor(g, timeout)
	}
	gen, status, result := ws.report()
	// The wait may have outlived st: report the generation serving NOW.
	cur := s.cur.Load()
	resp := map[string]any{
		"shard":      st.proj.Shard,
		"shards":     st.proj.NumShards,
		"replica":    ws.replica,
		"wal_gen":    gen,
		"generation": cur.gen,
		"applied":    applied,
	}
	if result != nil {
		resp["last"] = map[string]any{"wal_gen": gen, "status": status, "result": result}
	}
	return http.StatusOK, resp
}
