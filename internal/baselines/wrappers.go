package baselines

import (
	"math/rand"
	"strings"

	"giant/internal/core"
	"giant/internal/nlp"
	"giant/internal/nn"
	"giant/internal/synth"
)

// PhraseExtractor is the interface every Table 5/6 method implements.
type PhraseExtractor interface {
	Name() string
	Extract(ex *synth.MiningExample) string
}

// --- TextRank / AutoPhrase adapters ---

// TextRankExtractor adapts TextRank to mining examples.
type TextRankExtractor struct{ TR *TextRank }

// Name implements PhraseExtractor.
func (t *TextRankExtractor) Name() string { return "TextRank" }

// Extract implements PhraseExtractor.
func (t *TextRankExtractor) Extract(ex *synth.MiningExample) string {
	return t.TR.Extract(ex.Queries, ex.Titles)
}

// AutoPhraseExtractor adapts AutoPhrase to mining examples.
type AutoPhraseExtractor struct{ AP *AutoPhrase }

// Name implements PhraseExtractor.
func (a *AutoPhraseExtractor) Name() string { return "AutoPhrase" }

// Extract implements PhraseExtractor.
func (a *AutoPhraseExtractor) Extract(ex *synth.MiningExample) string {
	return a.AP.Extract(ex.Queries, ex.Titles)
}

// --- Match / Align / MatchAlign ---

// MatchExtractor uses bootstrapped patterns only.
type MatchExtractor struct{ Patterns []string }

// NewMatchExtractor bootstraps patterns from the training split's queries.
func NewMatchExtractor(train []synth.MiningExample) *MatchExtractor {
	b := core.NewBootstrapper()
	var queries []string
	for i := range train {
		queries = append(queries, train[i].Queries...)
	}
	b.Run(queries)
	return &MatchExtractor{Patterns: b.Patterns}
}

// Name implements PhraseExtractor.
func (m *MatchExtractor) Name() string { return "Match" }

// Extract implements PhraseExtractor.
func (m *MatchExtractor) Extract(ex *synth.MiningExample) string {
	return core.MatchExtract(m.Patterns, ex.Queries)
}

// AlignExtractor uses query-title alignment only.
type AlignExtractor struct{}

// Name implements PhraseExtractor.
func (a *AlignExtractor) Name() string { return "Align" }

// Extract implements PhraseExtractor.
func (a *AlignExtractor) Extract(ex *synth.MiningExample) string {
	for _, q := range ex.Queries {
		if c := core.AlignExtract(q, ex.Titles); c != "" {
			return c
		}
	}
	return ""
}

// MatchAlignExtractor combines both.
type MatchAlignExtractor struct{ Patterns []string }

// Name implements PhraseExtractor.
func (m *MatchAlignExtractor) Name() string { return "MatchAlign" }

// Extract implements PhraseExtractor.
func (m *MatchAlignExtractor) Extract(ex *synth.MiningExample) string {
	return core.MatchAlignExtract(m.Patterns, ex.Queries, ex.Titles)
}

// --- CoverRank ---

// CoverRankExtractor ranks subtitles by covered non-stop query tokens.
type CoverRankExtractor struct {
	MinLen, MaxLen int
}

// NewCoverRankExtractor uses the paper's subtitle length filter.
func NewCoverRankExtractor() *CoverRankExtractor {
	return &CoverRankExtractor{MinLen: 3, MaxLen: 12}
}

// Name implements PhraseExtractor.
func (c *CoverRankExtractor) Name() string { return "CoverRank" }

// Extract implements PhraseExtractor.
func (c *CoverRankExtractor) Extract(ex *synth.MiningExample) string {
	return core.CoverRankExtract(ex.Queries, ex.Titles, ex.Clicks, c.MinLen, c.MaxLen)
}

// --- LSTM-CRF variants ---

// LSTMCRFMode selects the input the tagger sees.
type LSTMCRFMode int

// Input modes: the paper's Q-LSTM-CRF tags the query, T-LSTM-CRF tags
// titles, and the event variant tags each title and picks the top-clicked
// title's span after a length filter.
const (
	ModeQuery LSTMCRFMode = iota
	ModeTitle
	ModeEventTitle
)

// LSTMCRFExtractor is the LSTM-CRF phrase-mining baseline.
type LSTMCRFExtractor struct {
	Tagger *SeqTagger
	Mode   LSTMCRFMode
	label  string
}

// NewLSTMCRFExtractor trains the tagger on the training split.
func NewLSTMCRFExtractor(train []synth.MiningExample, mode LSTMCRFMode, useCRF bool, label string) *LSTMCRFExtractor {
	return NewLSTMCRFExtractorWithEpochs(train, mode, useCRF, label, 0)
}

// NewLSTMCRFExtractorWithEpochs is NewLSTMCRFExtractor with an explicit
// epoch budget (0 keeps the default).
func NewLSTMCRFExtractorWithEpochs(train []synth.MiningExample, mode LSTMCRFMode, useCRF bool, label string, epochs int) *LSTMCRFExtractor {
	cfg := DefaultSeqTaggerConfig(NumBIOTags, useCRF)
	if epochs > 0 {
		cfg.Epochs = epochs
	}
	tagger := NewSeqTagger(cfg)
	var seqs [][]string
	var labels [][]int
	for i := range train {
		ex := &train[i]
		switch mode {
		case ModeQuery:
			for _, q := range ex.Queries {
				toks := nlp.Tokenize(q)
				seqs = append(seqs, toks)
				labels = append(labels, BIOLabels(toks, ex.GoldTokens))
			}
		default:
			for _, t := range ex.Titles {
				toks := nlp.Tokenize(t)
				seqs = append(seqs, toks)
				labels = append(labels, BIOLabels(toks, ex.GoldTokens))
			}
		}
	}
	tagger.Train(seqs, labels)
	return &LSTMCRFExtractor{Tagger: tagger, Mode: mode, label: label}
}

// Name implements PhraseExtractor.
func (l *LSTMCRFExtractor) Name() string { return l.label }

// Extract implements PhraseExtractor.
func (l *LSTMCRFExtractor) Extract(ex *synth.MiningExample) string {
	switch l.Mode {
	case ModeQuery:
		if len(ex.Queries) == 0 {
			return ""
		}
		toks := nlp.Tokenize(ex.Queries[0])
		return DecodeBIO(toks, l.Tagger.Predict(toks))
	case ModeTitle:
		if len(ex.Titles) == 0 {
			return ""
		}
		toks := nlp.Tokenize(ex.Titles[0])
		return DecodeBIO(toks, l.Tagger.Predict(toks))
	default:
		// Event protocol: tag every title, filter by length, prefer the
		// top-clicked title's output.
		for _, t := range ex.Titles {
			toks := nlp.Tokenize(t)
			out := DecodeBIO(toks, l.Tagger.Predict(toks))
			n := len(strings.Fields(out))
			if n >= 3 && n <= 12 {
				return out
			}
		}
		return ""
	}
}

// --- TextSummary (seq2seq) ---

// TextSummaryExtractor is the encoder-decoder summarization baseline of
// Table 6: the concatenated queries and titles are fed to an attention
// seq2seq which generates the phrase.
type TextSummaryExtractor struct {
	Model  *nn.Seq2Seq
	MaxSrc int
	MaxOut int
}

// NewTextSummaryExtractor trains the seq2seq on the training split.
func NewTextSummaryExtractor(train []synth.MiningExample, epochs int, seed int64) *TextSummaryExtractor {
	vocab := nn.NewVocab()
	type pair struct{ src, tgt []int }
	var pairs []pair
	maxSrc := 60
	for i := range train {
		ex := &train[i]
		srcToks := exampleSource(ex, maxSrc)
		src := make([]int, 0, len(srcToks))
		for _, w := range srcToks {
			src = append(src, vocab.Learn(w))
		}
		tgt := make([]int, 0, len(ex.GoldTokens))
		for _, w := range ex.GoldTokens {
			tgt = append(tgt, vocab.Learn(w))
		}
		pairs = append(pairs, pair{src, tgt})
	}
	rng := rand.New(rand.NewSource(seed))
	model := nn.NewSeq2Seq(vocab, 24, 24, rng)
	adam := nn.NewAdam(0.01, model.Params())
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		for _, p := range pairs {
			model.TrainStep(p.src, p.tgt)
			adam.Step()
		}
	}
	return &TextSummaryExtractor{Model: model, MaxSrc: maxSrc, MaxOut: 12}
}

// Name implements PhraseExtractor.
func (t *TextSummaryExtractor) Name() string { return "TextSummary" }

// Extract implements PhraseExtractor.
func (t *TextSummaryExtractor) Extract(ex *synth.MiningExample) string {
	srcToks := exampleSource(ex, t.MaxSrc)
	src := make([]int, 0, len(srcToks))
	for _, w := range srcToks {
		src = append(src, t.Model.Vocab.ID(w))
	}
	ids := t.Model.Generate(src, t.MaxOut)
	words := make([]string, 0, len(ids))
	for _, id := range ids {
		words = append(words, t.Model.Vocab.Word(id))
	}
	return strings.Join(words, " ")
}

func exampleSource(ex *synth.MiningExample, maxLen int) []string {
	var toks []string
	for _, q := range ex.Queries {
		toks = append(toks, nlp.Tokenize(q)...)
	}
	for _, t := range ex.Titles {
		toks = append(toks, nlp.Tokenize(t)...)
	}
	if len(toks) > maxLen {
		toks = toks[:maxLen]
	}
	return toks
}
