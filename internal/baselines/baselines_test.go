package baselines

import (
	"strings"
	"testing"

	"giant/internal/synth"
)

func TestTextRankKeywords(t *testing.T) {
	tr := NewTextRank()
	texts := []string{
		"economy cars for families",
		"best economy cars this year",
		"economy cars roundup",
	}
	kws := tr.Keywords(texts)
	if len(kws) == 0 {
		t.Fatal("no keywords")
	}
	// "economy" and "cars" dominate the co-occurrence graph.
	top2 := map[string]bool{kws[0]: true, kws[1]: true}
	if !top2["economy"] || !top2["cars"] {
		t.Fatalf("top keywords = %v", kws)
	}
	if tr.Keywords(nil) != nil {
		t.Fatal("empty corpus")
	}
}

func TestTextRankExtractOrdersByAppearance(t *testing.T) {
	tr := NewTextRank()
	out := tr.Extract([]string{"economy cars list"}, []string{"economy cars guide"})
	if !strings.HasPrefix(out, "economy cars") {
		t.Fatalf("Extract = %q", out)
	}
}

func TestAutoPhraseSegmentation(t *testing.T) {
	segs := segment([]string{"best", "economy", "cars", ",", "really"})
	// "best" is a stop word and "," punctuation → two segments.
	if len(segs) != 2 || segs[0][0] != "economy" {
		t.Fatalf("segments = %v", segs)
	}
}

func TestAutoPhraseExtract(t *testing.T) {
	ap := NewAutoPhrase(nil)
	out := ap.Extract(
		[]string{"economy cars list", "best economy cars"},
		[]string{"economy cars roundup for buyers"},
	)
	if !strings.Contains(out, "economy") || !strings.Contains(out, "cars") {
		t.Fatalf("AutoPhrase Extract = %q", out)
	}
}

func TestBIOLabelsAndDecode(t *testing.T) {
	seq := []string{"best", "economy", "cars", "today"}
	labels := BIOLabels(seq, []string{"economy", "cars"})
	want := []int{TagO, TagB, TagI, TagO}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v", labels)
		}
	}
	if got := DecodeBIO(seq, labels); got != "economy cars" {
		t.Fatalf("DecodeBIO = %q", got)
	}
	// Duplicate tokens decoded once.
	if got := DecodeBIO([]string{"a", "a"}, []int{TagB, TagI}); got != "a" {
		t.Fatalf("dedup decode = %q", got)
	}
}

func TestSeqTaggerLearnsToggle(t *testing.T) {
	cfg := DefaultSeqTaggerConfig(NumBIOTags, true)
	cfg.Epochs = 12
	tg := NewSeqTagger(cfg)
	// Tiny synthetic rule: token "x" is always B, everything else O.
	var seqs [][]string
	var labels [][]int
	for i := 0; i < 30; i++ {
		seqs = append(seqs, []string{"a", "x", "b"})
		labels = append(labels, []int{TagO, TagB, TagO})
		seqs = append(seqs, []string{"x", "c"})
		labels = append(labels, []int{TagB, TagO})
	}
	tg.Train(seqs, labels)
	got := tg.Predict([]string{"b", "x", "a"})
	if got[1] != TagB || got[0] != TagO {
		t.Fatalf("tagger failed to learn: %v", got)
	}
}

func TestExtractorsOnDataset(t *testing.T) {
	w := synth.GenWorld(synth.TinyConfig())
	train := w.ConceptExamples(24, 1)
	test := w.ConceptExamples(6, 2)
	match := NewMatchExtractor(train)
	if len(match.Patterns) < 5 {
		t.Fatalf("patterns = %d", len(match.Patterns))
	}
	extractors := []PhraseExtractor{
		&TextRankExtractor{TR: NewTextRank()},
		&AutoPhraseExtractor{AP: NewAutoPhrase(w.Lexicon)},
		match,
		&AlignExtractor{},
		&MatchAlignExtractor{Patterns: match.Patterns},
		NewCoverRankExtractor(),
	}
	for _, e := range extractors {
		if e.Name() == "" {
			t.Fatal("empty extractor name")
		}
		nonEmpty := 0
		for i := range test {
			if e.Extract(&test[i]) != "" {
				nonEmpty++
			}
		}
		if nonEmpty == 0 && e.Name() != "Match" {
			t.Fatalf("%s produced no output at all", e.Name())
		}
	}
}

func TestLSTMCRFExtractorEndToEnd(t *testing.T) {
	w := synth.GenWorld(synth.TinyConfig())
	train := w.ConceptExamples(24, 3)
	test := w.ConceptExamples(4, 4)
	ex := NewLSTMCRFExtractorWithEpochs(train, ModeQuery, true, "Q-LSTM-CRF", 3)
	if ex.Name() != "Q-LSTM-CRF" {
		t.Fatal("name")
	}
	for i := range test {
		_ = ex.Extract(&test[i]) // must not panic; quality checked in experiments
	}
}

func TestTextSummaryExtractorRuns(t *testing.T) {
	w := synth.GenWorld(synth.TinyConfig())
	train := w.EventExamples(10, 5)
	test := w.EventExamples(2, 6)
	ts := NewTextSummaryExtractor(train, 1, 7)
	for i := range test {
		out := ts.Extract(&test[i])
		if strings.Contains(out, "<sos>") || strings.Contains(out, "<eos>") {
			t.Fatalf("reserved tokens leaked: %q", out)
		}
	}
}

func TestKeyTaggerCoverage(t *testing.T) {
	w := synth.GenWorld(synth.TinyConfig())
	train := w.EventExamples(20, 8)
	test := w.EventExamples(3, 9)
	tg := NewLSTMKeyTaggerWithEpochs(train, true, "LSTM-CRF", 2)
	for i := range test {
		ex := &test[i]
		classes := tg.TagKeyElements(ex)
		toks := KeyElementTokens(ex)
		if len(toks) == 0 {
			t.Fatal("no evaluation tokens")
		}
		// Every input-visible token must get a class.
		for _, tok := range keyElementInput(ex) {
			if _, ok := classes[tok]; !ok {
				t.Fatalf("token %q unclassified", tok)
			}
		}
	}
}
