// Package baselines implements every comparison method from Tables 5–7:
// TextRank, AutoPhrase(-lite), Match, Align, MatchAlign, LSTM-CRF (query and
// title variants), CoverRank, TextSummary (attention seq2seq) and a plain
// LSTM tagger. Each exposes the same Extract-style interface the experiment
// harness drives.
package baselines

import (
	"sort"
	"strings"

	"giant/internal/nlp"
)

// TextRank extracts keywords by PageRank over a token co-occurrence window
// graph (Mihalcea & Tarau), then — following the paper's protocol — the top
// K keywords are concatenated in the order they appear in the query/title to
// form the output phrase.
type TextRank struct {
	Window     int
	Damping    float64
	Iterations int
	TopK       int
}

// NewTextRank returns the configuration used in the experiments.
func NewTextRank() *TextRank {
	return &TextRank{Window: 3, Damping: 0.85, Iterations: 30, TopK: 5}
}

// Keywords ranks unique non-stop tokens of the texts.
func (t *TextRank) Keywords(texts []string) []string {
	idx := map[string]int{}
	var words []string
	adj := map[int]map[int]float64{}
	add := func(w string) int {
		if i, ok := idx[w]; ok {
			return i
		}
		i := len(words)
		idx[w] = i
		words = append(words, w)
		adj[i] = map[int]float64{}
		return i
	}
	for _, text := range texts {
		toks := nlp.Tokenize(text)
		var content []int
		for _, tok := range toks {
			if nlp.IsStopWord(tok) || len(tok) == 0 {
				content = append(content, -1)
				continue
			}
			content = append(content, add(tok))
		}
		for i, a := range content {
			if a < 0 {
				continue
			}
			for j := i + 1; j < len(content) && j <= i+t.Window; j++ {
				b := content[j]
				if b < 0 || b == a {
					continue
				}
				adj[a][b]++
				adj[b][a]++
			}
		}
	}
	n := len(words)
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < t.Iterations; it++ {
		next := make([]float64, n)
		for v := 0; v < n; v++ {
			next[v] = (1 - t.Damping) / float64(n)
		}
		for v := 0; v < n; v++ {
			var out float64
			for _, w := range adj[v] {
				out += w
			}
			if out == 0 {
				continue
			}
			for u, w := range adj[v] {
				next[u] += t.Damping * rank[v] * w / out
			}
		}
		rank = next
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if rank[order[i]] != rank[order[j]] {
			return rank[order[i]] > rank[order[j]]
		}
		return words[order[i]] < words[order[j]]
	})
	k := t.TopK
	if k > n {
		k = n
	}
	out := make([]string, 0, k)
	for _, i := range order[:k] {
		out = append(out, words[i])
	}
	return out
}

// Extract returns the top-K keywords re-ordered by first appearance in the
// concatenated inputs (paper: "concatenate them in the same order with the
// query/title").
func (t *TextRank) Extract(queries, titles []string) string {
	texts := append(append([]string{}, queries...), titles...)
	kws := t.Keywords(texts)
	return orderByAppearance(kws, texts)
}

func orderByAppearance(words []string, texts []string) string {
	pos := map[string]int{}
	p := 0
	for _, text := range texts {
		for _, tok := range nlp.Tokenize(text) {
			if _, ok := pos[tok]; !ok {
				pos[tok] = p
			}
			p++
		}
	}
	sort.SliceStable(words, func(i, j int) bool { return pos[words[i]] < pos[words[j]] })
	return strings.Join(words, " ")
}
