package baselines

import (
	"math/rand"
	"strings"

	"giant/internal/nlp"
	"giant/internal/nn"
)

// BIO tag ids for phrase tagging.
const (
	TagO = 0
	TagB = 1
	TagI = 2
	// NumBIOTags is the tag-set size for BIO phrase tagging.
	NumBIOTags = 3
)

// SeqTagger is a (Bi)LSTM token tagger with an optional CRF output layer —
// the LSTM / LSTM-CRF baselines of Tables 5–7. With UseCRF=false the output
// layer is a per-token softmax.
type SeqTagger struct {
	Vocab  *nn.Vocab
	Emb    *nn.Embedding
	Rnn    *nn.BiLSTM
	Out    *nn.Dense
	Crf    *nn.CRF
	K      int
	UseCRF bool

	params      []*nn.Param
	deferredCfg SeqTaggerConfig
	rng         *rand.Rand
}

// SeqTaggerConfig controls model size and training.
type SeqTaggerConfig struct {
	EmbDim int
	Hidden int
	K      int
	UseCRF bool
	Epochs int
	LR     float64
	Seed   int64
}

// DefaultSeqTaggerConfig mirrors the paper's baseline setup at laptop scale
// (paper: 200-d embeddings, 25 hidden per direction).
func DefaultSeqTaggerConfig(k int, useCRF bool) SeqTaggerConfig {
	return SeqTaggerConfig{EmbDim: 32, Hidden: 25, K: k, UseCRF: useCRF, Epochs: 6, LR: 0.01, Seed: 3}
}

// NewSeqTagger builds the model with a vocabulary learned later via Train.
func NewSeqTagger(cfg SeqTaggerConfig) *SeqTagger {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := nn.NewVocab()
	t := &SeqTagger{
		Vocab:  vocab,
		K:      cfg.K,
		UseCRF: cfg.UseCRF,
	}
	// The embedding table is sized after vocabulary building in Train; keep
	// config for deferred construction.
	t.deferredCfg = cfg
	t.rng = rng
	return t
}

// Train fits the tagger on token sequences with per-token integer labels.
func (t *SeqTagger) Train(seqs [][]string, labels [][]int) {
	cfg := t.deferredCfg
	for _, s := range seqs {
		for _, w := range s {
			t.Vocab.Learn(w)
		}
	}
	t.Emb = nn.NewEmbedding("tag.emb", t.Vocab.Size(), cfg.EmbDim, t.rng)
	t.Rnn = nn.NewBiLSTM("tag.rnn", cfg.EmbDim, cfg.Hidden, t.rng)
	t.Out = nn.NewDense("tag.out", 2*cfg.Hidden, t.K, t.rng)
	t.params = append(t.params, t.Emb.Params()...)
	t.params = append(t.params, t.Rnn.Params()...)
	t.params = append(t.params, t.Out.Params()...)
	if t.UseCRF {
		t.Crf = nn.NewCRF("tag.crf", t.K, t.rng)
		t.params = append(t.params, t.Crf.Params()...)
	}
	adam := nn.NewAdam(cfg.LR, t.params)
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		t.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			if len(seqs[i]) == 0 {
				continue
			}
			t.trainOne(seqs[i], labels[i], adam)
		}
	}
}

func (t *SeqTagger) trainOne(seq []string, gold []int, adam *nn.Adam) {
	ids := make([]int, len(seq))
	for i, w := range seq {
		ids[i] = t.Vocab.ID(w)
	}
	emb := t.Emb.Forward(ids)
	h := t.Rnn.Forward(emb)
	logits := t.Out.Forward(h)
	var dLogits *nn.Mat
	if t.UseCRF {
		_, dLogits = t.Crf.NegLogLikelihood(logits, gold)
	} else {
		_, dLogits = nn.SoftmaxCE(logits, gold)
	}
	dh := t.Out.Backward(dLogits)
	dEmb := t.Rnn.Backward(dh)
	t.Emb.Backward(dEmb)
	adam.Step()
}

// Predict tags one sequence.
func (t *SeqTagger) Predict(seq []string) []int {
	if len(seq) == 0 || t.Emb == nil {
		return nil
	}
	ids := make([]int, len(seq))
	for i, w := range seq {
		ids[i] = t.Vocab.ID(w)
	}
	emb := t.Emb.Forward(ids)
	h := t.Rnn.Forward(emb)
	logits := t.Out.Forward(h)
	if t.UseCRF {
		return t.Crf.Decode(logits)
	}
	out := make([]int, len(seq))
	for i := 0; i < logits.R; i++ {
		row := logits.Row(i)
		best, arg := row[0], 0
		for j, v := range row {
			if v > best {
				best, arg = v, j
			}
		}
		out[i] = arg
	}
	return out
}

// BIOLabels derives BIO labels for a token sequence given the gold phrase's
// token set: tokens present in the gold set are tagged B (first of a run) or
// I.
func BIOLabels(seq []string, goldTokens []string) []int {
	gold := map[string]bool{}
	for _, g := range goldTokens {
		gold[g] = true
	}
	out := make([]int, len(seq))
	inRun := false
	for i, w := range seq {
		if gold[w] {
			if inRun {
				out[i] = TagI
			} else {
				out[i] = TagB
				inRun = true
			}
		} else {
			out[i] = TagO
			inRun = false
		}
	}
	return out
}

// DecodeBIO extracts the tagged phrase from a BIO tag sequence (all B/I
// tokens, in order, deduplicated).
func DecodeBIO(seq []string, tags []int) string {
	var words []string
	seen := map[string]bool{}
	for i, tag := range tags {
		if tag == TagB || tag == TagI {
			if !seen[seq[i]] {
				seen[seq[i]] = true
				words = append(words, seq[i])
			}
		}
	}
	return strings.Join(words, " ")
}

// TokenizeAll tokenizes a batch of strings.
func TokenizeAll(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = nlp.Tokenize(t)
	}
	return out
}
