package baselines

import (
	"giant/internal/nlp"
	"giant/internal/synth"
)

// KeyElementTagger is the interface shared by the Table 7 baselines and
// GCTSP-Net's key-element mode: classify every unique cluster token into
// entity/trigger/location/other.
type KeyElementTagger interface {
	Name() string
	TagKeyElements(ex *synth.MiningExample) map[string]synth.KeyClass
}

// LSTMKeyTagger is the LSTM / LSTM-CRF key-element baseline: tag the
// concatenation of the cluster's queries and top title token-by-token, then
// reduce to unique tokens by first occurrence.
type LSTMKeyTagger struct {
	Tagger *SeqTagger
	label  string
}

// NewLSTMKeyTagger trains the baseline (useCRF selects LSTM-CRF vs LSTM).
func NewLSTMKeyTagger(train []synth.MiningExample, useCRF bool, label string) *LSTMKeyTagger {
	return NewLSTMKeyTaggerWithEpochs(train, useCRF, label, 0)
}

// NewLSTMKeyTaggerWithEpochs is NewLSTMKeyTagger with an explicit epoch
// budget (0 keeps the default).
func NewLSTMKeyTaggerWithEpochs(train []synth.MiningExample, useCRF bool, label string, epochs int) *LSTMKeyTagger {
	cfg := DefaultSeqTaggerConfig(int(synth.NumKeyClasses), useCRF)
	if epochs > 0 {
		cfg.Epochs = epochs
	}
	tagger := NewSeqTagger(cfg)
	var seqs [][]string
	var labels [][]int
	for i := range train {
		ex := &train[i]
		toks := keyElementInput(ex)
		lab := make([]int, len(toks))
		for j, t := range toks {
			lab[j] = int(ex.KeyLabelOf(t))
		}
		seqs = append(seqs, toks)
		labels = append(labels, lab)
	}
	tagger.Train(seqs, labels)
	return &LSTMKeyTagger{Tagger: tagger, label: label}
}

// Name implements KeyElementTagger.
func (l *LSTMKeyTagger) Name() string { return l.label }

// TagKeyElements implements KeyElementTagger.
func (l *LSTMKeyTagger) TagKeyElements(ex *synth.MiningExample) map[string]synth.KeyClass {
	toks := keyElementInput(ex)
	tags := l.Tagger.Predict(toks)
	out := make(map[string]synth.KeyClass, len(toks))
	for i, t := range toks {
		if _, ok := out[t]; !ok {
			out[t] = synth.KeyClass(tags[i])
		}
	}
	return out
}

// maxLSTMInput caps the linearized sequence the LSTM baselines consume. The
// QTIG-based GCTSP-Net covers the whole cluster as a token-merged graph; a
// sequence tagger must linearize the cluster, and recurrent models degrade
// on long concatenations — this cap mirrors the input budget of the paper's
// LSTM baselines (which tag individual queries/titles, not the cluster).
const maxLSTMInput = 48

// keyElementInput is the baselines' input view: queries then titles,
// linearized and truncated.
func keyElementInput(ex *synth.MiningExample) []string {
	var toks []string
	for _, q := range ex.Queries {
		toks = append(toks, nlp.Tokenize(q)...)
	}
	for _, t := range ex.Titles {
		toks = append(toks, nlp.Tokenize(t)...)
	}
	if len(toks) > maxLSTMInput {
		toks = toks[:maxLSTMInput]
	}
	return toks
}

// KeyElementTokens lists the unique evaluation tokens of an example: every
// distinct token of the full cluster (queries plus ALL titles) — the node
// set GCTSP-Net classifies. Tokens a sequence baseline never saw score as
// KeyOther for it.
func KeyElementTokens(ex *synth.MiningExample) []string {
	seen := map[string]bool{}
	var out []string
	for _, q := range ex.Queries {
		for _, t := range nlp.Tokenize(q) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	for _, title := range ex.Titles {
		for _, t := range nlp.Tokenize(title) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}
