package baselines

import (
	"sort"
	"strings"

	"giant/internal/nlp"
)

// AutoPhrase is a lightweight reimplementation of the quality-phrase-mining
// idea behind Shang et al.'s AutoPhrase: candidate n-grams are generated
// under POS-guided segmentation (no phrase may cross a stop word or
// punctuation), scored by frequency, completeness (how often the n-gram
// appears as a maximal unit) and POS-shape quality, and the top phrases are
// concatenated in input order. Its corpus is just the cluster at hand, which
// is exactly why — like the original on short queries — it underperforms
// here (Table 5).
type AutoPhrase struct {
	MaxN int
	TopK int
	Lex  *nlp.Lexicon
}

// NewAutoPhrase builds the baseline (lex may be nil).
func NewAutoPhrase(lex *nlp.Lexicon) *AutoPhrase {
	return &AutoPhrase{MaxN: 4, TopK: 5, Lex: lex}
}

type apCand struct {
	gram  string
	score float64
}

// Extract mines quality phrases from the cluster and returns the top-K
// concatenated in appearance order.
func (a *AutoPhrase) Extract(queries, titles []string) string {
	texts := append(append([]string{}, queries...), titles...)
	freq := map[string]int{}
	longerFreq := map[string]int{}
	for _, text := range texts {
		toks := nlp.Tokenize(text)
		segs := segment(toks)
		for _, seg := range segs {
			for n := 1; n <= a.MaxN; n++ {
				for i := 0; i+n <= len(seg); i++ {
					g := strings.Join(seg[i:i+n], " ")
					freq[g]++
					if n < a.MaxN && i+n < len(seg) {
						longerFreq[g]++
					}
				}
			}
		}
	}
	var cands []apCand
	for g, f := range freq {
		toks := strings.Fields(g)
		quality := posQuality(toks, a.Lex)
		if quality == 0 {
			continue
		}
		completeness := 1.0
		if lf, ok := longerFreq[g]; ok && f > 0 {
			completeness = 1 - float64(lf)/float64(f+1)
		}
		score := float64(f) * float64(len(toks)) * quality * completeness
		cands = append(cands, apCand{g, score})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].gram < cands[j].gram
	})
	k := a.TopK
	if k > len(cands) {
		k = len(cands)
	}
	// Keep top-K phrases but drop sub-grams of already selected phrases.
	var kept []string
	for _, c := range cands {
		if len(kept) >= k {
			break
		}
		sub := false
		for _, s := range kept {
			if strings.Contains(" "+s+" ", " "+c.gram+" ") {
				sub = true
				break
			}
		}
		if !sub {
			kept = append(kept, c.gram)
		}
	}
	var words []string
	seen := map[string]bool{}
	for _, p := range kept {
		for _, w := range strings.Fields(p) {
			if !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	return orderByAppearance(words, texts)
}

// segment splits a token sequence at stop words and punctuation (POS-guided
// segmentation).
func segment(toks []string) [][]string {
	var segs [][]string
	var cur []string
	for _, t := range toks {
		if nlp.IsStopWord(t) || nlp.GuessPOS(t) == nlp.PosPunct {
			if len(cur) > 0 {
				segs = append(segs, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, t)
	}
	if len(cur) > 0 {
		segs = append(segs, cur)
	}
	return segs
}

// posQuality scores the POS shape: noun-ended n-grams with adjective/noun
// bodies score highest; anything containing a verb or punctuation scores 0.
func posQuality(toks []string, lex *nlp.Lexicon) float64 {
	posOf := nlp.GuessPOS
	if lex != nil {
		posOf = lex.POSOf
	}
	q := 1.0
	for i, t := range toks {
		p := posOf(t)
		switch p {
		case nlp.PosPunct, nlp.PosVerb:
			return 0
		case nlp.PosNoun, nlp.PosPropn:
			// fine anywhere
		case nlp.PosAdj:
			if i == len(toks)-1 {
				q *= 0.5 // adjective-final phrases are lower quality
			}
		default:
			q *= 0.3
		}
	}
	last := posOf(toks[len(toks)-1])
	if last != nlp.PosNoun && last != nlp.PosPropn {
		q *= 0.4
	}
	return q
}
