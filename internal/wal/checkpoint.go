// Checkpoint sidecar: a per-shard-log artifact that pins a full shard
// world at a log position, so a restarting replica hydrates the
// checkpoint and tails only the log suffix instead of re-mining the
// whole history. Checkpoints are what make TruncateBelow safe — the
// router never drops records that are not covered by a published
// checkpoint.
//
// Layout (all integers little-endian):
//
//	header (56 bytes)
//	  0   magic "GIANTCKP"     (8 bytes)
//	  8   format version       (uint32, currently 1)
//	  12  shard index i        (int32)
//	  16  shard count k        (int32)
//	  20  wal generation       (uint64: log position this covers)
//	  28  serving generation   (uint64: the shard server's generation
//	                            at that position)
//	  36  snapshot length      (uint64)
//	  44  state length         (uint64)
//	  52  header CRC32C        (over bytes [0,52))
//	snapshot bytes (GIANTBIN union snapshot) + CRC32C (uint32)
//	state bytes (opaque host blob)           + CRC32C (uint32)
//
// Publication is a two-step rotation under the same atomic-rename
// discipline as the log itself: the current checkpoint (if any) is
// renamed to its ".prev" name, then the new artifact is written to a
// temp file, fsynced, and renamed into place. A crash at any point
// leaves at least one fully intact artifact, and readers walk the
// ladder newest-first: primary checkpoint, previous checkpoint, full
// log replay.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// CheckpointMagic is the 8-byte tag every checkpoint artifact starts
// with.
const CheckpointMagic = "GIANTCKP"

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

const (
	ckptHeaderSize = 56
	ckptTrailSize  = 4
)

// Checkpoint is one published artifact: the shard's union snapshot in
// GIANTBIN encoding plus an opaque host-state blob, stamped with the
// log position it covers and the serving generation a replica must
// resume at.
type Checkpoint struct {
	Shard      int
	Shards     int
	WALGen     uint64 // last log generation whose effects are included
	ServingGen uint64 // shard server generation at that log position
	Snapshot   []byte // GIANTBIN-encoded union snapshot
	State      []byte // opaque host state (mining context, click log tail)
}

// CheckpointMeta is the header-only view of an artifact — enough for
// the router to learn the covered log position without decoding
// megabytes of snapshot.
type CheckpointMeta struct {
	Shard      int
	Shards     int
	WALGen     uint64
	ServingGen uint64
}

// CheckpointPath returns the canonical primary checkpoint path for a
// shard log directory, alongside the shard's .wal file.
func CheckpointPath(dir string, shard, shards int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.ckpt", shard, shards))
}

// PrevCheckpointPath returns the rotation slot the previous primary is
// moved to when a new checkpoint is published.
func PrevCheckpointPath(dir string, shard, shards int) string {
	return CheckpointPath(dir, shard, shards) + ".prev"
}

// encodeCheckpoint renders the full artifact bytes.
func encodeCheckpoint(ck *Checkpoint) []byte {
	buf := make([]byte, ckptHeaderSize+len(ck.Snapshot)+ckptTrailSize+len(ck.State)+ckptTrailSize)
	copy(buf[0:8], CheckpointMagic)
	binary.LittleEndian.PutUint32(buf[8:], CheckpointVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(ck.Shard)))
	binary.LittleEndian.PutUint32(buf[16:], uint32(int32(ck.Shards)))
	binary.LittleEndian.PutUint64(buf[20:], ck.WALGen)
	binary.LittleEndian.PutUint64(buf[28:], ck.ServingGen)
	binary.LittleEndian.PutUint64(buf[36:], uint64(len(ck.Snapshot)))
	binary.LittleEndian.PutUint64(buf[44:], uint64(len(ck.State)))
	binary.LittleEndian.PutUint32(buf[52:], crc32.Checksum(buf[:52], crcTable))
	off := ckptHeaderSize
	copy(buf[off:], ck.Snapshot)
	off += len(ck.Snapshot)
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(ck.Snapshot, crcTable))
	off += ckptTrailSize
	copy(buf[off:], ck.State)
	off += len(ck.State)
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(ck.State, crcTable))
	return buf
}

// PublishCheckpoint writes ck as the primary checkpoint for its shard
// in dir, rotating any existing primary to the ".prev" slot first. Both
// steps are atomic renames: a crash between them leaves only the
// previous artifact, which the read ladder falls back to. Concurrent
// publishers (two replicas of the same shard checkpointing the same
// directory) are harmless — mining is deterministic, so artifacts for
// the same wal generation are interchangeable.
func PublishCheckpoint(dir string, ck *Checkpoint) error {
	primary := CheckpointPath(dir, ck.Shard, ck.Shards)
	if _, err := os.Stat(primary); err == nil {
		if err := os.Rename(primary, PrevCheckpointPath(dir, ck.Shard, ck.Shards)); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, "ckpt.tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(encodeCheckpoint(ck)); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, primary); err != nil {
		return err
	}
	committed = true
	return nil
}

// readCheckpointHeader validates the fixed header and returns its
// fields plus the expected total artifact size.
func readCheckpointHeader(data []byte) (meta CheckpointMeta, snapLen, stateLen uint64, err error) {
	if len(data) < ckptHeaderSize {
		return meta, 0, 0, fmt.Errorf("%w: checkpoint shorter than its header", ErrTruncated)
	}
	if string(data[0:8]) != CheckpointMagic {
		return meta, 0, 0, fmt.Errorf("%w: not a GIANTCKP checkpoint", ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != CheckpointVersion {
		return meta, 0, 0, fmt.Errorf("%w: checkpoint version %d", ErrFormatVersion, v)
	}
	if sum := binary.LittleEndian.Uint32(data[52:]); sum != crc32.Checksum(data[:52], crcTable) {
		return meta, 0, 0, fmt.Errorf("%w: checkpoint header", ErrChecksum)
	}
	meta.Shard = int(int32(binary.LittleEndian.Uint32(data[12:])))
	meta.Shards = int(int32(binary.LittleEndian.Uint32(data[16:])))
	meta.WALGen = binary.LittleEndian.Uint64(data[20:])
	meta.ServingGen = binary.LittleEndian.Uint64(data[28:])
	snapLen = binary.LittleEndian.Uint64(data[36:])
	stateLen = binary.LittleEndian.Uint64(data[44:])
	if snapLen > MaxPayload || stateLen > MaxPayload {
		return meta, 0, 0, fmt.Errorf("%w: checkpoint claims %d-byte snapshot, %d-byte state", ErrCorrupt, snapLen, stateLen)
	}
	return meta, snapLen, stateLen, nil
}

// ReadCheckpoint loads and fully validates the checkpoint at path:
// header CRC, section CRCs, exact length, and shard identity. Every
// corruption mode maps onto the same typed errors as the log itself so
// callers can ladder with errors.Is.
func ReadCheckpoint(path string, shard, shards int) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	meta, snapLen, stateLen, err := readCheckpointHeader(data)
	if err != nil {
		return nil, err
	}
	if meta.Shard != shard || meta.Shards != shards {
		return nil, fmt.Errorf("%w: checkpoint is shard %d/%d, want %d/%d", ErrShardMismatch, meta.Shard, meta.Shards, shard, shards)
	}
	want := ckptHeaderSize + int(snapLen) + ckptTrailSize + int(stateLen) + ckptTrailSize
	if len(data) != want {
		return nil, fmt.Errorf("%w: checkpoint is %d bytes, header promises %d", ErrTruncated, len(data), want)
	}
	off := ckptHeaderSize
	snap := data[off : off+int(snapLen)]
	off += int(snapLen)
	if sum := binary.LittleEndian.Uint32(data[off:]); sum != crc32.Checksum(snap, crcTable) {
		return nil, fmt.Errorf("%w: checkpoint snapshot section", ErrChecksum)
	}
	off += ckptTrailSize
	state := data[off : off+int(stateLen)]
	off += int(stateLen)
	if sum := binary.LittleEndian.Uint32(data[off:]); sum != crc32.Checksum(state, crcTable) {
		return nil, fmt.Errorf("%w: checkpoint state section", ErrChecksum)
	}
	return &Checkpoint{
		Shard:      meta.Shard,
		Shards:     meta.Shards,
		WALGen:     meta.WALGen,
		ServingGen: meta.ServingGen,
		Snapshot:   snap,
		State:      state,
	}, nil
}

// ReadCheckpointMeta reads and header-CRC-validates only the fixed
// header — the cheap probe the router uses to learn what log position a
// published checkpoint covers before truncating below it. The section
// payloads are NOT verified; use ReadCheckpoint before trusting the
// contents.
func ReadCheckpointMeta(path string) (CheckpointMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return CheckpointMeta{}, err
	}
	defer f.Close()
	var hdr [ckptHeaderSize]byte
	if _, err := readFull(f, hdr[:]); err != nil {
		return CheckpointMeta{}, fmt.Errorf("%w: checkpoint shorter than its header", ErrTruncated)
	}
	meta, _, _, err := readCheckpointHeader(hdr[:])
	return meta, err
}

// readFull reads exactly len(buf) bytes from the start of f.
func readFull(f *os.File, buf []byte) (int, error) {
	n, err := f.ReadAt(buf, 0)
	if n == len(buf) {
		return n, nil
	}
	if err == nil {
		err = errors.New("wal: short read")
	}
	return n, err
}
