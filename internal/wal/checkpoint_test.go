package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Shard:      1,
		Shards:     2,
		WALGen:     7,
		ServingGen: 9,
		Snapshot:   []byte("GIANTBIN-pretend-snapshot-bytes"),
		State:      []byte(`{"docs":[],"records":[]}`),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := sampleCheckpoint()
	if err := PublishCheckpoint(dir, ck); err != nil {
		t.Fatalf("PublishCheckpoint: %v", err)
	}
	path := CheckpointPath(dir, 1, 2)
	got, err := ReadCheckpoint(path, 1, 2)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if got.WALGen != 7 || got.ServingGen != 9 {
		t.Fatalf("generations = %d/%d, want 7/9", got.WALGen, got.ServingGen)
	}
	if !bytes.Equal(got.Snapshot, ck.Snapshot) || !bytes.Equal(got.State, ck.State) {
		t.Fatal("sections did not round-trip byte-identical")
	}
	meta, err := ReadCheckpointMeta(path)
	if err != nil {
		t.Fatalf("ReadCheckpointMeta: %v", err)
	}
	if meta.WALGen != 7 || meta.ServingGen != 9 || meta.Shard != 1 || meta.Shards != 2 {
		t.Fatalf("meta = %+v, want shard 1/2 gens 7/9", meta)
	}
}

func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	first := sampleCheckpoint()
	if err := PublishCheckpoint(dir, first); err != nil {
		t.Fatalf("publish first: %v", err)
	}
	second := sampleCheckpoint()
	second.WALGen, second.ServingGen = 12, 14
	if err := PublishCheckpoint(dir, second); err != nil {
		t.Fatalf("publish second: %v", err)
	}
	cur, err := ReadCheckpoint(CheckpointPath(dir, 1, 2), 1, 2)
	if err != nil {
		t.Fatalf("read primary: %v", err)
	}
	if cur.WALGen != 12 {
		t.Fatalf("primary covers generation %d, want 12", cur.WALGen)
	}
	prev, err := ReadCheckpoint(PrevCheckpointPath(dir, 1, 2), 1, 2)
	if err != nil {
		t.Fatalf("read rotated previous: %v", err)
	}
	if prev.WALGen != 7 {
		t.Fatalf("previous covers generation %d, want 7", prev.WALGen)
	}
}

func TestCheckpointShardMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := PublishCheckpoint(dir, sampleCheckpoint()); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, err := ReadCheckpoint(CheckpointPath(dir, 1, 2), 0, 2); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("wrong shard: err = %v, want ErrShardMismatch", err)
	}
}

// TestCheckpointBitFlipMatrix mirrors the WAL corruption matrix: a bit
// flip in every region of the artifact (magic, version, header fields,
// snapshot payload, snapshot CRC, state payload, state CRC) must be
// rejected with a typed error — never silently accepted.
func TestCheckpointBitFlipMatrix(t *testing.T) {
	dir := t.TempDir()
	ck := sampleCheckpoint()
	if err := PublishCheckpoint(dir, ck); err != nil {
		t.Fatalf("publish: %v", err)
	}
	clean, err := os.ReadFile(CheckpointPath(dir, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	snapEnd := ckptHeaderSize + len(ck.Snapshot)
	regions := []struct {
		name string
		off  int64
	}{
		{"magic", 0},
		{"version", 8},
		{"shard", 12},
		{"wal-gen", 20},
		{"serving-gen", 28},
		{"snap-len", 36},
		{"state-len", 44},
		{"header-crc", 52},
		{"snapshot-payload", ckptHeaderSize + 3},
		{"snapshot-crc", int64(snapEnd)},
		{"state-payload", int64(snapEnd) + ckptTrailSize + 2},
		{"state-crc", int64(snapEnd) + ckptTrailSize + int64(len(ck.State))},
	}
	for _, rg := range regions {
		p := filepath.Join(t.TempDir(), "flipped.ckpt")
		damaged := append([]byte(nil), clean...)
		damaged[rg.off] ^= 0x10
		if err := os.WriteFile(p, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(p, 1, 2); err == nil {
			t.Fatalf("bit flip in %s (offset %d) was accepted", rg.name, rg.off)
		}
	}
}

// TestCheckpointTruncationMatrix cuts the artifact at every boundary
// and a few interior bytes; every cut must be rejected.
func TestCheckpointTruncationMatrix(t *testing.T) {
	dir := t.TempDir()
	ck := sampleCheckpoint()
	if err := PublishCheckpoint(dir, ck); err != nil {
		t.Fatalf("publish: %v", err)
	}
	clean, err := os.ReadFile(CheckpointPath(dir, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 7, ckptHeaderSize - 1, ckptHeaderSize,
		ckptHeaderSize + len(ck.Snapshot)/2,
		len(clean) - ckptTrailSize - 1, len(clean) - 1}
	for _, cut := range cuts {
		p := filepath.Join(t.TempDir(), "cut.ckpt")
		if err := os.WriteFile(p, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(p, 1, 2); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("cut at %d bytes: err = %v, want a typed corruption error", cut, err)
		}
	}
	// Trailing garbage (a torn copy landing long) is rejected too.
	p := filepath.Join(t.TempDir(), "long.ckpt")
	if err := os.WriteFile(p, append(append([]byte(nil), clean...), 0xEE), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(p, 1, 2); !errors.Is(err, ErrTruncated) {
		t.Fatalf("over-long artifact: err = %v, want ErrTruncated", err)
	}
}

// TestCheckpointMetaDoesNotReadSections asserts the router's cheap
// header probe succeeds even when a section is damaged — it must only
// promise header integrity.
func TestCheckpointMetaDoesNotReadSections(t *testing.T) {
	dir := t.TempDir()
	if err := PublishCheckpoint(dir, sampleCheckpoint()); err != nil {
		t.Fatalf("publish: %v", err)
	}
	path := CheckpointPath(dir, 1, 2)
	flipBit(t, path, ckptHeaderSize+1) // damage the snapshot section
	if _, err := ReadCheckpointMeta(path); err != nil {
		t.Fatalf("ReadCheckpointMeta with damaged section: %v", err)
	}
	if _, err := ReadCheckpoint(path, 1, 2); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadCheckpoint with damaged section: err = %v, want ErrChecksum", err)
	}
}
