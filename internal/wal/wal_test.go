package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSample appends n records to a fresh log and returns its path
// plus the byte offsets of every record boundary (including the header
// boundary and final EOF), for surgical truncation.
func writeSample(t *testing.T, n int) (path string, bounds []int64, payloads [][]byte) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "shard-0-of-2.wal")
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer lg.Close()
	bounds = append(bounds, headerSize)
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf(`{"day":%d,"docs":[{"title":"doc %d"}]}`, i+1, i))
		gen, err := lg.Append(i+1, p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if gen != uint64(i+1) {
			t.Fatalf("Append %d assigned generation %d, want %d", i, gen, i+1)
		}
		payloads = append(payloads, p)
		bounds = append(bounds, bounds[len(bounds)-1]+int64(recPrefixSize+len(p)+recTrailSize))
	}
	return path, bounds, payloads
}

func TestRoundTrip(t *testing.T) {
	path, _, payloads := writeSample(t, 5)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer lg.Close()
	if lg.Head() != 5 {
		t.Fatalf("Head = %d, want 5", lg.Head())
	}
	for after := uint64(0); after <= 5; after++ {
		recs, err := lg.TailFrom(after)
		if err != nil {
			t.Fatalf("TailFrom(%d): %v", after, err)
		}
		if len(recs) != int(5-after) {
			t.Fatalf("TailFrom(%d) returned %d records, want %d", after, len(recs), 5-after)
		}
		for i, rec := range recs {
			wantGen := after + uint64(i) + 1
			if rec.Gen != wantGen {
				t.Fatalf("TailFrom(%d)[%d].Gen = %d, want %d", after, i, rec.Gen, wantGen)
			}
			if string(rec.Payload) != string(payloads[wantGen-1]) {
				t.Fatalf("TailFrom(%d)[%d] payload = %q, want %q", after, i, rec.Payload, payloads[wantGen-1])
			}
			if rec.Day != int(wantGen) {
				t.Fatalf("TailFrom(%d)[%d].Day = %d, want %d", after, i, rec.Day, wantGen)
			}
		}
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path, _, _ := writeSample(t, 3)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	gen, err := lg.Append(9, []byte(`{"day":9}`))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if gen != 4 {
		t.Fatalf("generation after reopen = %d, want 4", gen)
	}
	lg.Close()
	lg, err = Open(path, 0, 2)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer lg.Close()
	if lg.Head() != 4 {
		t.Fatalf("Head after reopen = %d, want 4", lg.Head())
	}
}

// TestTruncationAtEveryBoundary cuts the file at every record boundary
// and asserts the log reopens cleanly with exactly the surviving prefix.
func TestTruncationAtEveryBoundary(t *testing.T) {
	const n = 5
	for cut := 0; cut <= n; cut++ {
		path, bounds, payloads := writeSample(t, n)
		if err := os.Truncate(path, bounds[cut]); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		lg, err := Open(path, 0, 2)
		if err != nil {
			t.Fatalf("cut at boundary %d: Open: %v", cut, err)
		}
		if lg.Head() != uint64(cut) {
			t.Fatalf("cut at boundary %d: Head = %d, want %d", cut, lg.Head(), cut)
		}
		recs, err := lg.TailFrom(0)
		if err != nil {
			t.Fatalf("cut at boundary %d: TailFrom: %v", cut, err)
		}
		for i, rec := range recs {
			if string(rec.Payload) != string(payloads[i]) {
				t.Fatalf("cut at boundary %d: record %d payload mismatch", cut, i)
			}
		}
		lg.Close()
	}
}

// TestTornTailDropped truncates mid-record at every interior byte
// offset of the final record and asserts Open drops exactly that
// record, keeps the prefix, and the next append reuses its generation.
func TestTornTailDropped(t *testing.T) {
	path, bounds, _ := writeSample(t, 3)
	last := bounds[len(bounds)-1]
	prev := bounds[len(bounds)-2]
	for cut := prev + 1; cut < last; cut++ {
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatalf("write torn copy: %v", err)
		}
		lg, err := Open(torn, 0, 2)
		if err != nil {
			t.Fatalf("cut at byte %d: Open: %v", cut, err)
		}
		if lg.Head() != 2 {
			t.Fatalf("cut at byte %d: Head = %d, want 2", cut, lg.Head())
		}
		gen, err := lg.Append(7, []byte(`{"day":7}`))
		if err != nil {
			t.Fatalf("cut at byte %d: Append: %v", cut, err)
		}
		if gen != 3 {
			t.Fatalf("cut at byte %d: reassigned generation %d, want 3", cut, gen)
		}
		lg.Close()
	}
}

// TestBitFlipMidLog flips one bit in a non-final record and asserts
// Open refuses with ErrChecksum (never silent truncation of good data
// behind the damage).
func TestBitFlipMidLog(t *testing.T) {
	path, bounds, _ := writeSample(t, 3)
	// Flip a payload bit of record 2 (records 1..3 exist).
	target := bounds[1] + recPrefixSize + 2
	flipBit(t, path, target)
	if _, err := Open(path, 0, 2); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Open after mid-log bit flip: err = %v, want ErrChecksum", err)
	}
}

// TestBitFlipTailDropped flips a bit in the FINAL record: on disk this
// is indistinguishable from a torn append, so Open drops it.
func TestBitFlipTailDropped(t *testing.T) {
	path, bounds, _ := writeSample(t, 3)
	target := bounds[2] + recPrefixSize + 2
	flipBit(t, path, target)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("Open after tail bit flip: %v", err)
	}
	defer lg.Close()
	if lg.Head() != 2 {
		t.Fatalf("Head after dropped tail = %d, want 2", lg.Head())
	}
}

func TestHeaderCorruption(t *testing.T) {
	path, _, _ := writeSample(t, 1)
	flipBit(t, path, 9) // version field
	if _, err := Open(path, 0, 2); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("Open with corrupt header: err = %v, want ErrChecksum or ErrFormatVersion", err)
	}

	path2, _, _ := writeSample(t, 1)
	flipBit(t, path2, 0) // magic
	if _, err := Open(path2, 0, 2); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Open with bad magic: err = %v, want ErrBadMagic", err)
	}

	short := filepath.Join(t.TempDir(), "short.wal")
	if err := os.WriteFile(short, []byte(Magic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short, 0, 2); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Open short header: err = %v, want ErrTruncated", err)
	}
}

func TestShardMismatch(t *testing.T) {
	path, _, _ := writeSample(t, 1)
	if _, err := Open(path, 1, 2); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("Open with wrong shard: err = %v, want ErrShardMismatch", err)
	}
	if _, err := OpenReader(path, 0, 4); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("OpenReader with wrong shard count: err = %v, want ErrShardMismatch", err)
	}
}

// TestReaderFollowsWriter interleaves appends with a live reader and
// asserts the reader sees every record exactly once, in order, and
// reports "nothing yet" at the tail instead of erroring.
func TestReaderFollowsWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-1-of-2.wal")
	lg, err := Open(path, 1, 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer lg.Close()
	rd, err := OpenReader(path, 1, 2)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer rd.Close()

	if rec, err := rd.Next(); err != nil || rec != nil {
		t.Fatalf("Next on empty log = (%v, %v), want (nil, nil)", rec, err)
	}
	var seen uint64
	for i := 0; i < 4; i++ {
		if _, err := lg.Append(i, []byte(fmt.Sprintf(`{"day":%d}`, i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		for {
			rec, err := rd.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if rec == nil {
				break
			}
			seen++
			if rec.Gen != seen {
				t.Fatalf("reader saw generation %d, want %d", rec.Gen, seen)
			}
		}
	}
	if seen != 4 {
		t.Fatalf("reader saw %d records, want 4", seen)
	}
}

func flipBit(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
