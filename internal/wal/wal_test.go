package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSample appends n records to a fresh log and returns its path
// plus the byte offsets of every record boundary (including the header
// boundary and final EOF), for surgical truncation.
func writeSample(t *testing.T, n int) (path string, bounds []int64, payloads [][]byte) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "shard-0-of-2.wal")
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer lg.Close()
	bounds = append(bounds, headerSize)
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf(`{"day":%d,"docs":[{"title":"doc %d"}]}`, i+1, i))
		gen, err := lg.Append(i+1, p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if gen != uint64(i+1) {
			t.Fatalf("Append %d assigned generation %d, want %d", i, gen, i+1)
		}
		payloads = append(payloads, p)
		bounds = append(bounds, bounds[len(bounds)-1]+int64(recPrefixSize+len(p)+recTrailSize))
	}
	return path, bounds, payloads
}

// tailAll collects a TailFrom stream into a slice for assertions.
func tailAll(t *testing.T, lg *Log, after uint64) []Record {
	t.Helper()
	var recs []Record
	if err := lg.TailFrom(after, func(rec Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatalf("TailFrom(%d): %v", after, err)
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	path, _, payloads := writeSample(t, 5)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer lg.Close()
	if lg.Head() != 5 {
		t.Fatalf("Head = %d, want 5", lg.Head())
	}
	for after := uint64(0); after <= 5; after++ {
		recs := tailAll(t, lg, after)
		if len(recs) != int(5-after) {
			t.Fatalf("TailFrom(%d) returned %d records, want %d", after, len(recs), 5-after)
		}
		for i, rec := range recs {
			wantGen := after + uint64(i) + 1
			if rec.Gen != wantGen {
				t.Fatalf("TailFrom(%d)[%d].Gen = %d, want %d", after, i, rec.Gen, wantGen)
			}
			if string(rec.Payload) != string(payloads[wantGen-1]) {
				t.Fatalf("TailFrom(%d)[%d] payload = %q, want %q", after, i, rec.Payload, payloads[wantGen-1])
			}
			if rec.Day != int(wantGen) {
				t.Fatalf("TailFrom(%d)[%d].Day = %d, want %d", after, i, rec.Day, wantGen)
			}
		}
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path, _, _ := writeSample(t, 3)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	gen, err := lg.Append(9, []byte(`{"day":9}`))
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if gen != 4 {
		t.Fatalf("generation after reopen = %d, want 4", gen)
	}
	lg.Close()
	lg, err = Open(path, 0, 2)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer lg.Close()
	if lg.Head() != 4 {
		t.Fatalf("Head after reopen = %d, want 4", lg.Head())
	}
}

// TestTruncationAtEveryBoundary cuts the file at every record boundary
// and asserts the log reopens cleanly with exactly the surviving prefix.
func TestTruncationAtEveryBoundary(t *testing.T) {
	const n = 5
	for cut := 0; cut <= n; cut++ {
		path, bounds, payloads := writeSample(t, n)
		if err := os.Truncate(path, bounds[cut]); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		lg, err := Open(path, 0, 2)
		if err != nil {
			t.Fatalf("cut at boundary %d: Open: %v", cut, err)
		}
		if lg.Head() != uint64(cut) {
			t.Fatalf("cut at boundary %d: Head = %d, want %d", cut, lg.Head(), cut)
		}
		recs := tailAll(t, lg, 0)
		for i, rec := range recs {
			if string(rec.Payload) != string(payloads[i]) {
				t.Fatalf("cut at boundary %d: record %d payload mismatch", cut, i)
			}
		}
		lg.Close()
	}
}

// TestTornTailDropped truncates mid-record at every interior byte
// offset of the final record and asserts Open drops exactly that
// record, keeps the prefix, and the next append reuses its generation.
func TestTornTailDropped(t *testing.T) {
	path, bounds, _ := writeSample(t, 3)
	last := bounds[len(bounds)-1]
	prev := bounds[len(bounds)-2]
	for cut := prev + 1; cut < last; cut++ {
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatalf("write torn copy: %v", err)
		}
		lg, err := Open(torn, 0, 2)
		if err != nil {
			t.Fatalf("cut at byte %d: Open: %v", cut, err)
		}
		if lg.Head() != 2 {
			t.Fatalf("cut at byte %d: Head = %d, want 2", cut, lg.Head())
		}
		gen, err := lg.Append(7, []byte(`{"day":7}`))
		if err != nil {
			t.Fatalf("cut at byte %d: Append: %v", cut, err)
		}
		if gen != 3 {
			t.Fatalf("cut at byte %d: reassigned generation %d, want 3", cut, gen)
		}
		lg.Close()
	}
}

// TestBitFlipMidLog flips one bit in a non-final record and asserts
// Open refuses with ErrChecksum (never silent truncation of good data
// behind the damage).
func TestBitFlipMidLog(t *testing.T) {
	path, bounds, _ := writeSample(t, 3)
	// Flip a payload bit of record 2 (records 1..3 exist).
	target := bounds[1] + recPrefixSize + 2
	flipBit(t, path, target)
	if _, err := Open(path, 0, 2); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Open after mid-log bit flip: err = %v, want ErrChecksum", err)
	}
}

// TestBitFlipTailDropped flips a bit in the FINAL record: on disk this
// is indistinguishable from a torn append, so Open drops it.
func TestBitFlipTailDropped(t *testing.T) {
	path, bounds, _ := writeSample(t, 3)
	target := bounds[2] + recPrefixSize + 2
	flipBit(t, path, target)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("Open after tail bit flip: %v", err)
	}
	defer lg.Close()
	if lg.Head() != 2 {
		t.Fatalf("Head after dropped tail = %d, want 2", lg.Head())
	}
}

func TestHeaderCorruption(t *testing.T) {
	path, _, _ := writeSample(t, 1)
	flipBit(t, path, 9) // version field
	if _, err := Open(path, 0, 2); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("Open with corrupt header: err = %v, want ErrChecksum or ErrFormatVersion", err)
	}

	path2, _, _ := writeSample(t, 1)
	flipBit(t, path2, 0) // magic
	if _, err := Open(path2, 0, 2); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Open with bad magic: err = %v, want ErrBadMagic", err)
	}

	short := filepath.Join(t.TempDir(), "short.wal")
	if err := os.WriteFile(short, []byte(Magic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short, 0, 2); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Open short header: err = %v, want ErrTruncated", err)
	}
}

func TestShardMismatch(t *testing.T) {
	path, _, _ := writeSample(t, 1)
	if _, err := Open(path, 1, 2); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("Open with wrong shard: err = %v, want ErrShardMismatch", err)
	}
	if _, err := OpenReader(path, 0, 4); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("OpenReader with wrong shard count: err = %v, want ErrShardMismatch", err)
	}
}

// TestReaderFollowsWriter interleaves appends with a live reader and
// asserts the reader sees every record exactly once, in order, and
// reports "nothing yet" at the tail instead of erroring.
func TestReaderFollowsWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-1-of-2.wal")
	lg, err := Open(path, 1, 2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer lg.Close()
	rd, err := OpenReader(path, 1, 2)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer rd.Close()

	if rec, err := rd.Next(); err != nil || rec != nil {
		t.Fatalf("Next on empty log = (%v, %v), want (nil, nil)", rec, err)
	}
	var seen uint64
	for i := 0; i < 4; i++ {
		if _, err := lg.Append(i, []byte(fmt.Sprintf(`{"day":%d}`, i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
		for {
			rec, err := rd.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if rec == nil {
				break
			}
			seen++
			if rec.Gen != seen {
				t.Fatalf("reader saw generation %d, want %d", rec.Gen, seen)
			}
		}
	}
	if seen != 4 {
		t.Fatalf("reader saw %d records, want 4", seen)
	}
}

// TestTruncateBelow compacts a log at an interior floor and asserts the
// suffix survives byte-identical, the dropped prefix reports
// ErrCompacted, and the compacted file reopens with the same state.
func TestTruncateBelow(t *testing.T) {
	path, _, payloads := writeSample(t, 10)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := lg.TruncateBelow(4); err != nil {
		t.Fatalf("TruncateBelow(4): %v", err)
	}
	if lg.BaseGen() != 4 || lg.Head() != 10 {
		t.Fatalf("after TruncateBelow(4): base=%d head=%d, want 4/10", lg.BaseGen(), lg.Head())
	}
	recs := tailAll(t, lg, 4)
	if len(recs) != 6 {
		t.Fatalf("TailFrom(4) after truncation returned %d records, want 6", len(recs))
	}
	for i, rec := range recs {
		wantGen := uint64(5 + i)
		if rec.Gen != wantGen || string(rec.Payload) != string(payloads[wantGen-1]) {
			t.Fatalf("surviving record %d: gen=%d payload=%q, want gen=%d payload=%q", i, rec.Gen, rec.Payload, wantGen, payloads[wantGen-1])
		}
	}
	if err := lg.TailFrom(3, func(Record) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("TailFrom(3) on compacted log: err = %v, want ErrCompacted", err)
	}
	// Appends continue against the swapped file with dense generations.
	gen, err := lg.Append(11, []byte(`{"day":11}`))
	if err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	if gen != 11 {
		t.Fatalf("Append after truncation assigned generation %d, want 11", gen)
	}
	lg.Close()

	// The compacted file must recover to the identical state on reopen.
	lg2, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen compacted: %v", err)
	}
	defer lg2.Close()
	if lg2.BaseGen() != 4 || lg2.Head() != 11 {
		t.Fatalf("reopened compacted log: base=%d head=%d, want 4/11", lg2.BaseGen(), lg2.Head())
	}
	if got := tailAll(t, lg2, 4); len(got) != 7 {
		t.Fatalf("reopened TailFrom(4) returned %d records, want 7", len(got))
	}
}

// TestTruncateBelowEdges covers clamping above the head, the everything
// case, and the at-or-below-base no-op.
func TestTruncateBelowEdges(t *testing.T) {
	path, _, _ := writeSample(t, 3)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer lg.Close()
	if err := lg.TruncateBelow(99); err != nil { // clamps to head=3
		t.Fatalf("TruncateBelow(99): %v", err)
	}
	if lg.BaseGen() != 3 || lg.Head() != 3 {
		t.Fatalf("after full truncation: base=%d head=%d, want 3/3", lg.BaseGen(), lg.Head())
	}
	if recs := tailAll(t, lg, 3); len(recs) != 0 {
		t.Fatalf("TailFrom(3) on fully truncated log returned %d records, want 0", len(recs))
	}
	if err := lg.TruncateBelow(2); err != nil { // below base: no-op
		t.Fatalf("TruncateBelow(2) no-op: %v", err)
	}
	if lg.BaseGen() != 3 {
		t.Fatalf("no-op truncation moved base to %d", lg.BaseGen())
	}
	gen, err := lg.Append(4, []byte(`{"day":4}`))
	if err != nil || gen != 4 {
		t.Fatalf("Append on fully truncated log = (%d, %v), want (4, nil)", gen, err)
	}
}

// TestOpenReaderAtSkipsFloor opens a cursor with a skip floor and
// asserts only the suffix is yielded.
func TestOpenReaderAtSkipsFloor(t *testing.T) {
	path, _, payloads := writeSample(t, 6)
	rd, err := OpenReaderAt(path, 0, 2, 4)
	if err != nil {
		t.Fatalf("OpenReaderAt: %v", err)
	}
	defer rd.Close()
	var got []uint64
	for {
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if rec == nil {
			break
		}
		if string(rec.Payload) != string(payloads[rec.Gen-1]) {
			t.Fatalf("record %d payload mismatch", rec.Gen)
		}
		got = append(got, rec.Gen)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("OpenReaderAt(4) yielded %v, want [5 6]", got)
	}
}

// TestReaderCompactedErrors pins the replay-impossible cases: a full
// replay of a compacted log, and a floor below the log's base.
func TestReaderCompactedErrors(t *testing.T) {
	path, _, _ := writeSample(t, 6)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := lg.TruncateBelow(4); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	lg.Close()
	if _, err := OpenReader(path, 0, 2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("OpenReader on compacted log: err = %v, want ErrCompacted", err)
	}
	if _, err := OpenReaderAt(path, 0, 2, 3); !errors.Is(err, ErrCompacted) {
		t.Fatalf("OpenReaderAt(3) below base 4: err = %v, want ErrCompacted", err)
	}
	rd, err := OpenReaderAt(path, 0, 2, 4)
	if err != nil {
		t.Fatalf("OpenReaderAt(4) at base: %v", err)
	}
	rd.Close()
}

// TestReaderFollowsTruncation drives a live cursor across a compaction
// swap: the reader drains the frozen old inode, detects the rename, and
// continues seamlessly in the new file — including records appended
// after the swap.
func TestReaderFollowsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0-of-1.wal")
	lg, err := Open(path, 0, 1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer lg.Close()
	rd, err := OpenReader(path, 0, 1)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer rd.Close()
	for i := 1; i <= 6; i++ {
		if _, err := lg.Append(i, []byte(fmt.Sprintf(`{"day":%d}`, i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// Read only the first two, so the cursor is mid-stream at the swap.
	for want := uint64(1); want <= 2; want++ {
		rec, err := rd.Next()
		if err != nil || rec == nil || rec.Gen != want {
			t.Fatalf("Next = (%v, %v), want generation %d", rec, err, want)
		}
	}
	if err := lg.TruncateBelow(4); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	for i := 7; i <= 8; i++ {
		if _, err := lg.Append(i, []byte(fmt.Sprintf(`{"day":%d}`, i))); err != nil {
			t.Fatalf("Append %d after truncation: %v", i, err)
		}
	}
	// The reader must surface 3..8 exactly once, in order: 3..6 from
	// the frozen pre-swap inode, 7..8 from the compacted file.
	for want := uint64(3); want <= 8; want++ {
		var rec *Record
		for rec == nil {
			var err error
			rec, err = rd.Next()
			if err != nil {
				t.Fatalf("Next while following truncation: %v", err)
			}
		}
		if rec.Gen != want {
			t.Fatalf("reader saw generation %d, want %d", rec.Gen, want)
		}
	}
	if rec, err := rd.Next(); err != nil || rec != nil {
		t.Fatalf("Next at caught-up tail = (%v, %v), want (nil, nil)", rec, err)
	}
}

// TestCompactedHeaderCorruption flips bits in the version-2 header and
// asserts the checksum catches them.
func TestCompactedHeaderCorruption(t *testing.T) {
	path, _, _ := writeSample(t, 5)
	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := lg.TruncateBelow(3); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	lg.Close()
	flipBit(t, path, 21) // base-generation field
	if _, err := Open(path, 0, 2); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Open with corrupt base generation: err = %v, want ErrChecksum", err)
	}
}

// TestTruncateCrashLeftoverTemp simulates a crash in the middle of
// TruncateBelow: the rewrite died before the rename, leaving the original
// log untouched and a stray temp file beside it. The log must open and
// replay exactly as before, and a retried truncation must succeed.
func TestTruncateCrashLeftoverTemp(t *testing.T) {
	path, _, payloads := writeSample(t, 6)
	stray := filepath.Join(filepath.Dir(path), "wal.tmp-crashed")
	if err := os.WriteFile(stray, []byte("half-written suffix garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	lg, err := Open(path, 0, 2)
	if err != nil {
		t.Fatalf("Open with stray temp: %v", err)
	}
	defer lg.Close()
	recs := tailAll(t, lg, 0)
	if len(recs) != len(payloads) {
		t.Fatalf("replayed %d records with stray temp present, want %d", len(recs), len(payloads))
	}

	// The interrupted truncation retries cleanly.
	if err := lg.TruncateBelow(3); err != nil {
		t.Fatalf("TruncateBelow after crash: %v", err)
	}
	if lg.BaseGen() != 3 || lg.Head() != 6 {
		t.Fatalf("after retried truncation: base %d head %d, want 3/6", lg.BaseGen(), lg.Head())
	}
	recs = tailAll(t, lg, 3)
	if len(recs) != 3 {
		t.Fatalf("suffix has %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if string(rec.Payload) != string(payloads[3+i]) {
			t.Fatalf("suffix record %d payload diverges", i)
		}
	}
}

func flipBit(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
