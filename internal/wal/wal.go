// Package wal implements the per-shard streaming delta log: an
// append-only, CRC32C-checksummed record log of delta.Batch payloads
// that replicated giantd backends tail to stay current.
//
// One log file carries one shard's ingest stream. The router appends
// every accepted batch exactly once per shard log, stamping each record
// with a dense, monotonically increasing log generation (1, 2, 3, ...);
// replicas apply records in order through their own mining systems,
// which — because mining is deterministic — reproduces the exact
// serving generations of every peer at the same log position.
//
// Layout (all integers little-endian):
//
//	header, version 1 (24 bytes — fresh logs)
//	  0   magic "GIANTWAL" (8 bytes)
//	  8   format version   (uint32, 1)
//	  12  shard index i    (int32)
//	  16  shard count k    (int32)
//	  20  header CRC32C    (over bytes [0,20))
//	header, version 2 (32 bytes — compacted logs)
//	  0   magic "GIANTWAL" (8 bytes)
//	  8   format version   (uint32, 2)
//	  12  shard index i    (int32)
//	  16  shard count k    (int32)
//	  20  base generation  (uint64: records 1..base were compacted away)
//	  28  header CRC32C    (over bytes [0,28))
//	record (16-byte prefix + payload + trailer)
//	  0   log generation   (uint64, dense from base+1)
//	  8   batch day        (int32, informational)
//	  12  payload length   (uint32)
//	  16  payload          (delta.Batch JSON)
//	  16+len  record CRC32C (uint32, over bytes [0, 16+len))
//
// Recovery is truncation-safe in the GIANTBIN style: the file is
// created via write-temp-fsync-rename so a crash can never surface a
// half-written header, every append is a single write followed by
// fsync, and Open drops a torn final record (short bytes, or a bad
// checksum, at EOF) by truncating back to the last intact boundary. A
// mid-log record that fails its checksum is bit rot, not a torn write,
// and is rejected with ErrChecksum rather than silently dropped.
//
// Compaction (TruncateBelow) rewrites the log as a version-2 file whose
// header records the dropped prefix's last generation, copying only the
// surviving suffix byte-for-byte and publishing it with the same atomic
// rename, so a crash mid-truncation leaves the old log fully intact.
// Records at or below a log's base generation are gone; a reader that
// still needs them gets ErrCompacted and must rehydrate from a
// checkpoint instead (see checkpoint.go).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Magic is the 8-byte tag every delta log starts with.
const Magic = "GIANTWAL"

// Version is the format version of a fresh (never-compacted) log.
const Version = 1

// VersionCompacted is the format version written by TruncateBelow: the
// header grows a base-generation field recording the compacted prefix.
const VersionCompacted = 2

const (
	headerSize    = 24
	header2Size   = 32
	recPrefixSize = 16
	recTrailSize  = 4
	// MaxPayload bounds a single record's payload so a corrupt length
	// field cannot provoke a multi-gigabyte allocation.
	MaxPayload = 1 << 30
)

// Typed log errors. Callers branch with errors.Is.
var (
	// ErrBadMagic reports a file that does not start with the GIANTWAL
	// magic.
	ErrBadMagic = errors.New("wal: not a GIANTWAL log (bad magic)")
	// ErrTruncated reports a log shorter than its header — the
	// signature of a partially copied file (a torn header can not occur:
	// the header is published by atomic rename).
	ErrTruncated = errors.New("wal: truncated GIANTWAL log")
	// ErrChecksum reports a header, or a mid-log record, whose CRC32C
	// does not match its bytes — bit rot or in-place tampering. A
	// checksum failure on the FINAL record is indistinguishable from a
	// torn append and is dropped by Open instead.
	ErrChecksum = errors.New("wal: GIANTWAL checksum mismatch")
	// ErrFormatVersion reports a log written by a newer format version
	// than this reader understands.
	ErrFormatVersion = errors.New("wal: unsupported GIANTWAL format version")
	// ErrCorrupt reports a log whose checksums pass but whose contents
	// violate a structural invariant (non-dense generations, absurd
	// payload length).
	ErrCorrupt = errors.New("wal: corrupt GIANTWAL log")
	// ErrShardMismatch reports a log stamped for a different shard
	// identity than the opener expected — the classic misconfiguration
	// of pointing replica i at shard j's stream.
	ErrShardMismatch = errors.New("wal: log belongs to a different shard")
	// ErrCompacted reports a request for generations at or below a
	// compacted log's base: those records were truncated away and can
	// only be recovered through a checkpoint.
	ErrCompacted = errors.New("wal: generation compacted away")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one appended batch: the payload bytes exactly as handed to
// Append, stamped with the dense log generation assigned at append time.
type Record struct {
	Gen     uint64
	Day     int
	Payload []byte
}

// Log is the writer's handle on a shard's delta log. A Log is safe for
// concurrent use; appends are serialized internally.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	shard  int
	shards int
	base   uint64  // last compacted-away generation (0 for fresh logs)
	hdrLen int64   // 24 for version-1 headers, 32 for compacted logs
	head   uint64  // generation of the last intact record
	size   int64   // file offset past the last intact record
	offs   []int64 // offs[g-base-1] = file offset of record g's prefix
}

// Create writes an empty log for shard/shards at path via the atomic
// temp-fsync-rename idiom, failing if path already exists.
func Create(path string, shard, shards int) (*Log, error) {
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("wal: %s already exists", path)
	}
	if err := writeHeaderAtomic(path, shard, shards); err != nil {
		return nil, err
	}
	return Open(path, shard, shards)
}

// Open opens (creating if absent) the delta log for shard/shards at
// path, recovering a torn final record by truncating back to the last
// intact boundary. A checksum failure on a fully present record is
// reported as ErrChecksum, and a log stamped for a different shard
// identity as ErrShardMismatch.
func Open(path string, shard, shards int) (*Log, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		if err := writeHeaderAtomic(path, shard, shards); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	lg := &Log{f: f, path: path, shard: shard, shards: shards}
	if err := lg.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return lg, nil
}

// recover validates the header, scans every record, and truncates a
// torn tail.
func (l *Log) recover() error {
	base, hdrLen, err := checkHeader(l.f, l.shard, l.shards)
	if err != nil {
		return err
	}
	l.base, l.hdrLen = base, hdrLen
	l.head = base
	fi, err := l.f.Stat()
	if err != nil {
		return err
	}
	fileSize := fi.Size()
	off := hdrLen
	for off < fileSize {
		rec, end, err := readRecordAt(l.f, off, fileSize)
		if err != nil {
			if errors.Is(err, errShortRecord) || errors.Is(err, errPendingTail) {
				// Torn final append: drop it. A full-length final record
				// with a bad checksum is torn too — a crash mid-write can
				// extend the file before every page lands.
				if terr := l.f.Truncate(off); terr != nil {
					return terr
				}
				if terr := l.f.Sync(); terr != nil {
					return terr
				}
				break
			}
			return err
		}
		if rec.Gen != l.head+1 {
			return fmt.Errorf("%w: record at offset %d has generation %d, want %d", ErrCorrupt, off, rec.Gen, l.head+1)
		}
		l.offs = append(l.offs, off)
		l.head = rec.Gen
		off = end
	}
	l.size = hdrLen
	if n := len(l.offs); n > 0 {
		last, _, err := recordSpanAt(l.f, l.offs[n-1])
		if err != nil {
			return err
		}
		l.size = last
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Head returns the generation of the last intact record (0 when the
// log is empty).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// BaseGen returns the last compacted-away generation: every surviving
// record has a strictly greater generation. 0 means nothing was ever
// truncated.
func (l *Log) BaseGen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Shard returns the shard identity stamped in the log header.
func (l *Log) Shard() (shard, shards int) { return l.shard, l.shards }

// Append durably appends payload as the next record and returns the
// log generation it was assigned. The record is written with a single
// write call and fsynced before Append returns.
func (l *Log) Append(day int, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record bound", len(payload), MaxPayload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	gen := l.head + 1
	buf := make([]byte, recPrefixSize+len(payload)+recTrailSize)
	binary.LittleEndian.PutUint64(buf[0:], gen)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(day)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(payload)))
	copy(buf[recPrefixSize:], payload)
	sum := crc32.Checksum(buf[:recPrefixSize+len(payload)], crcTable)
	binary.LittleEndian.PutUint32(buf[recPrefixSize+len(payload):], sum)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	l.offs = append(l.offs, l.size)
	l.size += int64(len(buf))
	l.head = gen
	return gen, nil
}

// TailFrom streams every record with generation strictly greater than
// afterGen, in order, to fn. Payloads are fresh copies the callback
// owns. Records are read one at a time — the whole suffix is never
// materialized. Asking for generations below the log's base (already
// truncated away) yields ErrCompacted. A non-nil error from fn stops
// the stream and is returned verbatim.
func (l *Log) TailFrom(afterGen uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if afterGen < l.base {
		return fmt.Errorf("%w: tail after generation %d, but records at or below %d were truncated", ErrCompacted, afterGen, l.base)
	}
	for g := afterGen + 1; g <= l.head; g++ {
		rec, _, err := readRecordAt(l.f, l.offs[g-l.base-1], l.size)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// TruncateBelow drops every record with generation at or below floor by
// rewriting the log as a compacted (version-2) file whose header
// carries the new base generation. Only the surviving suffix is copied
// — O(suffix), not O(history) — and the result is published with the
// same temp-fsync-rename idiom as log creation, so a crash mid-way
// leaves the old log fully intact. The writer's handle is swapped to
// the new file under the log mutex; cross-process readers detect the
// inode swap once they drain the old file and reopen at their position
// (see Reader.Next). Floors above the head are clamped; floors at or
// below the current base are a no-op.
func (l *Log) TruncateBelow(floor uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if floor > l.head {
		floor = l.head
	}
	if floor <= l.base {
		return nil
	}
	start := l.size
	if floor < l.head {
		start = l.offs[floor-l.base]
	}
	tmp, err := os.CreateTemp(dirOf(l.path), "wal.tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	var hdr [header2Size]byte
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], VersionCompacted)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(int32(l.shard)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(int32(l.shards)))
	binary.LittleEndian.PutUint64(hdr[20:], floor)
	binary.LittleEndian.PutUint32(hdr[28:], crc32.Checksum(hdr[:28], crcTable))
	if _, err := tmp.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.Copy(tmp, io.NewSectionReader(l.f, start, l.size-start)); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// Open the writer's new handle through the temp name BEFORE the
	// rename: same inode either way, and it keeps the rename the final
	// fallible step — any earlier failure leaves the old log untouched.
	newSize := l.size - start + header2Size
	nf, err := os.OpenFile(tmpName, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(newSize, io.SeekStart); err != nil {
		nf.Close()
		return err
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		nf.Close()
		return err
	}
	committed = true
	newOffs := make([]int64, 0, l.head-floor)
	for g := floor + 1; g <= l.head; g++ {
		newOffs = append(newOffs, l.offs[g-l.base-1]-start+header2Size)
	}
	l.f.Close()
	l.f = nf
	l.base = floor
	l.hdrLen = header2Size
	l.offs = newOffs
	l.size = newSize
	return nil
}

// Close releases the file handle. The log stays replayable on disk.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Reader is a follower's cursor over a (possibly still growing) delta
// log, typically in another process than the writer. Next returns
// records in order and reports "nothing new yet" — a short or
// checksum-failing tail is treated as an append in flight, since the
// writer fsyncs whole records and repairs genuinely torn tails on its
// own next Open.
//
// A Reader opened with OpenReaderAt carries a skip floor: records at or
// below it are hopped over structurally (prefix-only reads — no payload
// copy, no checksum) because their effects are already covered by the
// caller's checkpoint; the next record's dense-generation check
// re-validates the file alignment.
type Reader struct {
	f       *os.File
	fi      os.FileInfo // identity at open time, to detect compaction swaps
	path    string
	shard   int
	shards  int
	off     int64
	lastGen uint64
	floor   uint64 // records with gen <= floor are skipped without copying
}

// OpenReader opens a read-only cursor positioned before the first
// record. The caller should retry on os.ErrNotExist until the writer
// has created the log. Opening a compacted log this way yields
// ErrCompacted: a full replay is impossible once records were
// truncated, so the caller must hydrate a checkpoint and use
// OpenReaderAt instead.
func OpenReader(path string, shard, shards int) (*Reader, error) {
	return OpenReaderAt(path, shard, shards, 0)
}

// OpenReaderAt opens a read-only cursor that yields only records with
// generation strictly greater than afterGen, structurally skipping the
// prefix at or below it. If the log was truncated past afterGen (its
// base generation exceeds it), the requested records no longer exist
// and OpenReaderAt reports ErrCompacted.
func OpenReaderAt(path string, shard, shards int, afterGen uint64) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	base, hdrLen, err := checkHeader(f, shard, shards)
	if err != nil {
		f.Close()
		return nil, err
	}
	if base > afterGen {
		f.Close()
		return nil, fmt.Errorf("%w: reader wants records after generation %d, but the log starts after %d", ErrCompacted, afterGen, base)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Reader{
		f:       f,
		fi:      fi,
		path:    path,
		shard:   shard,
		shards:  shards,
		off:     hdrLen,
		lastGen: base,
		floor:   afterGen,
	}, nil
}

// Next returns the next record past the skip floor, or nil when the log
// has no complete record past the cursor yet. A record that is fully
// present but fails its checksum while further records exist behind it
// is reported as ErrChecksum. When the cursor idles at the end of a
// file the writer has since compacted (rename swapped a new inode into
// place), Next transparently reopens the new file at its position —
// safe because the old inode is frozen at the swap and fully drained
// first — and yields ErrCompacted only if the truncation outran this
// reader.
func (r *Reader) Next() (*Record, error) {
	rec, idle, err := r.advance()
	if err != nil || rec != nil {
		return rec, err
	}
	if !idle {
		return nil, nil
	}
	fi, err := os.Stat(r.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	if os.SameFile(r.fi, fi) {
		return nil, nil
	}
	if err := r.reopen(); err != nil {
		return nil, err
	}
	rec, _, err = r.advance()
	return rec, err
}

// advance reads (or structurally skips, below the floor) the next
// record in the currently open file. idle reports a clean "nothing
// complete yet" tail.
func (r *Reader) advance() (rec *Record, idle bool, err error) {
	fi, err := r.f.Stat()
	if err != nil {
		return nil, false, err
	}
	fileSize := fi.Size()
	for r.lastGen < r.floor {
		gen, end, err := skipRecordAt(r.f, r.off, fileSize)
		if err != nil {
			if errors.Is(err, errShortRecord) {
				return nil, true, nil
			}
			return nil, false, err
		}
		if gen != r.lastGen+1 {
			return nil, false, fmt.Errorf("%w: record at offset %d has generation %d, want %d", ErrCorrupt, r.off, gen, r.lastGen+1)
		}
		r.off = end
		r.lastGen = gen
	}
	full, end, err := readRecordAt(r.f, r.off, fileSize)
	if err != nil {
		if errors.Is(err, errShortRecord) || errors.Is(err, errPendingTail) {
			return nil, true, nil
		}
		return nil, false, err
	}
	if full.Gen != r.lastGen+1 {
		return nil, false, fmt.Errorf("%w: record at offset %d has generation %d, want %d", ErrCorrupt, r.off, full.Gen, r.lastGen+1)
	}
	r.off = end
	r.lastGen = full.Gen
	return &full, false, nil
}

// reopen follows a compaction swap: open the file now at path, verify
// its identity, and structurally skip to this reader's position.
func (r *Reader) reopen() error {
	f, err := os.Open(r.path)
	if err != nil {
		return err
	}
	base, hdrLen, err := checkHeader(f, r.shard, r.shards)
	if err != nil {
		f.Close()
		return err
	}
	if base > r.lastGen {
		f.Close()
		return fmt.Errorf("%w: log was truncated past generation %d (new base %d); rehydrate from a checkpoint", ErrCompacted, r.lastGen, base)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	off := hdrLen
	fileSize := fi.Size()
	for g := base; g < r.lastGen; g++ {
		gen, end, err := skipRecordAt(f, off, fileSize)
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: repositioning after compaction: %w", err)
		}
		if gen != g+1 {
			f.Close()
			return fmt.Errorf("%w: record at offset %d has generation %d, want %d", ErrCorrupt, off, gen, g+1)
		}
		off = end
	}
	r.f.Close()
	r.f = f
	r.fi = fi
	r.off = off
	return nil
}

// Close releases the cursor's file handle.
func (r *Reader) Close() error { return r.f.Close() }

// errShortRecord reports a record whose bytes end before its trailer —
// at EOF this is a torn (or in-flight) append.
var errShortRecord = errors.New("wal: short record")

// errPendingTail reports a checksum-failing final record with no bytes
// behind it — readers treat it as an append still being flushed.
var errPendingTail = errors.New("wal: unflushed tail record")

// writeHeaderAtomic publishes a fresh (version-1) log header via
// temp-fsync-rename so no reader can ever observe a partial header.
func writeHeaderAtomic(path string, shard, shards int) (err error) {
	tmp, err := os.CreateTemp(dirOf(path), "wal.tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [headerSize]byte
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(int32(shard)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(int32(shards)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], crcTable))
	if _, err = tmp.Write(hdr[:]); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}

// checkHeader validates magic, version, checksum, and shard identity,
// and returns the log's base generation (0 for version-1 headers) plus
// the header length records start after.
func checkHeader(f *os.File, shard, shards int) (base uint64, hdrLen int64, err error) {
	var hdr [header2Size]byte
	n, err := f.ReadAt(hdr[:], 0)
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return 0, 0, err
	}
	if n < headerSize {
		return 0, 0, ErrTruncated
	}
	if string(hdr[0:8]) != Magic {
		return 0, 0, ErrBadMagic
	}
	switch v := binary.LittleEndian.Uint32(hdr[8:]); v {
	case Version:
		if sum := binary.LittleEndian.Uint32(hdr[20:]); sum != crc32.Checksum(hdr[:20], crcTable) {
			return 0, 0, fmt.Errorf("%w: header", ErrChecksum)
		}
		hdrLen = headerSize
	case VersionCompacted:
		if n < header2Size {
			return 0, 0, ErrTruncated
		}
		if sum := binary.LittleEndian.Uint32(hdr[28:]); sum != crc32.Checksum(hdr[:28], crcTable) {
			return 0, 0, fmt.Errorf("%w: header", ErrChecksum)
		}
		base = binary.LittleEndian.Uint64(hdr[20:])
		hdrLen = header2Size
	default:
		return 0, 0, fmt.Errorf("%w: version %d", ErrFormatVersion, v)
	}
	gotShard := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
	gotShards := int(int32(binary.LittleEndian.Uint32(hdr[16:])))
	if gotShard != shard || gotShards != shards {
		return 0, 0, fmt.Errorf("%w: log is shard %d/%d, want %d/%d", ErrShardMismatch, gotShard, gotShards, shard, shards)
	}
	return base, hdrLen, nil
}

// recordSpanAt returns the end offset of the record starting at off,
// trusting its (already validated) length field.
func recordSpanAt(f *os.File, off int64) (end int64, n uint32, err error) {
	var pre [recPrefixSize]byte
	if _, err := f.ReadAt(pre[:], off); err != nil {
		return 0, 0, err
	}
	n = binary.LittleEndian.Uint32(pre[12:])
	return off + int64(recPrefixSize) + int64(n) + recTrailSize, n, nil
}

// skipRecordAt structurally parses the record prefix at off without
// copying the payload or verifying its checksum — used to hop over
// records whose effects are already covered by a checkpoint. Alignment
// stays validated: the caller checks the returned generation is dense,
// and the first fully-read record past the floor re-anchors the CRC
// chain.
func skipRecordAt(f *os.File, off, fileSize int64) (gen uint64, end int64, err error) {
	if off+recPrefixSize > fileSize {
		return 0, 0, errShortRecord
	}
	var pre [recPrefixSize]byte
	if _, err := f.ReadAt(pre[:], off); err != nil {
		return 0, 0, err
	}
	gen = binary.LittleEndian.Uint64(pre[0:])
	n := binary.LittleEndian.Uint32(pre[12:])
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("%w: record at offset %d claims %d-byte payload", ErrCorrupt, off, n)
	}
	end = off + int64(recPrefixSize) + int64(n) + recTrailSize
	if end > fileSize {
		return 0, 0, errShortRecord
	}
	return gen, end, nil
}

// readRecordAt parses and checksums the record starting at off in a
// file of fileSize bytes. A record whose bytes end before its trailer
// yields errShortRecord; a fully present record with a bad checksum
// yields ErrChecksum when further bytes follow it (provably not a torn
// append) and errPendingTail when it sits at EOF.
func readRecordAt(f *os.File, off, fileSize int64) (Record, int64, error) {
	if off+recPrefixSize > fileSize {
		return Record{}, 0, errShortRecord
	}
	var pre [recPrefixSize]byte
	if _, err := f.ReadAt(pre[:], off); err != nil {
		return Record{}, 0, err
	}
	gen := binary.LittleEndian.Uint64(pre[0:])
	day := int(int32(binary.LittleEndian.Uint32(pre[8:])))
	n := binary.LittleEndian.Uint32(pre[12:])
	if n > MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: record at offset %d claims %d-byte payload", ErrCorrupt, off, n)
	}
	end := off + int64(recPrefixSize) + int64(n) + recTrailSize
	if end > fileSize {
		return Record{}, 0, errShortRecord
	}
	body := make([]byte, recPrefixSize+int(n)+recTrailSize)
	if _, err := f.ReadAt(body, off); err != nil {
		return Record{}, 0, err
	}
	want := binary.LittleEndian.Uint32(body[recPrefixSize+int(n):])
	if got := crc32.Checksum(body[:recPrefixSize+int(n)], crcTable); got != want {
		if end == fileSize {
			return Record{}, 0, errPendingTail
		}
		return Record{}, 0, fmt.Errorf("%w: record at offset %d", ErrChecksum, off)
	}
	payload := make([]byte, n)
	copy(payload, body[recPrefixSize:recPrefixSize+int(n)])
	return Record{Gen: gen, Day: day, Payload: payload}, end, nil
}
