// Package wal implements the per-shard streaming delta log: an
// append-only, CRC32C-checksummed record log of delta.Batch payloads
// that replicated giantd backends tail to stay current.
//
// One log file carries one shard's ingest stream. The router appends
// every accepted batch exactly once per shard log, stamping each record
// with a dense, monotonically increasing log generation (1, 2, 3, ...);
// replicas apply records in order through their own mining systems,
// which — because mining is deterministic — reproduces the exact
// serving generations of every peer at the same log position.
//
// Layout (all integers little-endian):
//
//	header (24 bytes)
//	  0   magic "GIANTWAL" (8 bytes)
//	  8   format version   (uint32, currently 1)
//	  12  shard index i    (int32)
//	  16  shard count k    (int32)
//	  20  header CRC32C    (over bytes [0,20))
//	record (16-byte prefix + payload + trailer)
//	  0   log generation   (uint64, dense from 1)
//	  8   batch day        (int32, informational)
//	  12  payload length   (uint32)
//	  16  payload          (delta.Batch JSON)
//	  16+len  record CRC32C (uint32, over bytes [0, 16+len))
//
// Recovery is truncation-safe in the GIANTBIN style: the file is
// created via write-temp-fsync-rename so a crash can never surface a
// half-written header, every append is a single write followed by
// fsync, and Open drops a torn final record (short bytes, or a bad
// checksum, at EOF) by truncating back to the last intact boundary. A
// mid-log record that fails its checksum is bit rot, not a torn write,
// and is rejected with ErrChecksum rather than silently dropped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Magic is the 8-byte tag every delta log starts with.
const Magic = "GIANTWAL"

// Version is the current log format version. Readers reject newer
// versions with ErrFormatVersion.
const Version = 1

const (
	headerSize    = 24
	recPrefixSize = 16
	recTrailSize  = 4
	// MaxPayload bounds a single record's payload so a corrupt length
	// field cannot provoke a multi-gigabyte allocation.
	MaxPayload = 1 << 30
)

// Typed log errors. Callers branch with errors.Is.
var (
	// ErrBadMagic reports a file that does not start with the GIANTWAL
	// magic.
	ErrBadMagic = errors.New("wal: not a GIANTWAL log (bad magic)")
	// ErrTruncated reports a log shorter than its 24-byte header — the
	// signature of a partially copied file (a torn header can not occur:
	// the header is published by atomic rename).
	ErrTruncated = errors.New("wal: truncated GIANTWAL log")
	// ErrChecksum reports a header, or a mid-log record, whose CRC32C
	// does not match its bytes — bit rot or in-place tampering. A
	// checksum failure on the FINAL record is indistinguishable from a
	// torn append and is dropped by Open instead.
	ErrChecksum = errors.New("wal: GIANTWAL checksum mismatch")
	// ErrFormatVersion reports a log written by a newer format version
	// than this reader understands.
	ErrFormatVersion = errors.New("wal: unsupported GIANTWAL format version")
	// ErrCorrupt reports a log whose checksums pass but whose contents
	// violate a structural invariant (non-dense generations, absurd
	// payload length).
	ErrCorrupt = errors.New("wal: corrupt GIANTWAL log")
	// ErrShardMismatch reports a log stamped for a different shard
	// identity than the opener expected — the classic misconfiguration
	// of pointing replica i at shard j's stream.
	ErrShardMismatch = errors.New("wal: log belongs to a different shard")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one appended batch: the payload bytes exactly as handed to
// Append, stamped with the dense log generation assigned at append time.
type Record struct {
	Gen     uint64
	Day     int
	Payload []byte
}

// Log is the writer's handle on a shard's delta log. A Log is safe for
// concurrent use; appends are serialized internally.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	shard  int
	shards int
	head   uint64  // generation of the last intact record
	size   int64   // file offset past the last intact record
	offs   []int64 // offs[g-1] = file offset of record g's prefix
}

// Create writes an empty log for shard/shards at path via the atomic
// temp-fsync-rename idiom, failing if path already exists.
func Create(path string, shard, shards int) (*Log, error) {
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("wal: %s already exists", path)
	}
	if err := writeHeaderAtomic(path, shard, shards); err != nil {
		return nil, err
	}
	return Open(path, shard, shards)
}

// Open opens (creating if absent) the delta log for shard/shards at
// path, recovering a torn final record by truncating back to the last
// intact boundary. A checksum failure on a fully present record is
// reported as ErrChecksum, and a log stamped for a different shard
// identity as ErrShardMismatch.
func Open(path string, shard, shards int) (*Log, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		if err := writeHeaderAtomic(path, shard, shards); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	lg := &Log{f: f, path: path, shard: shard, shards: shards}
	if err := lg.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return lg, nil
}

// recover validates the header, scans every record, and truncates a
// torn tail.
func (l *Log) recover() error {
	if err := checkHeader(l.f, l.shard, l.shards); err != nil {
		return err
	}
	fi, err := l.f.Stat()
	if err != nil {
		return err
	}
	fileSize := fi.Size()
	off := int64(headerSize)
	for off < fileSize {
		rec, end, err := readRecordAt(l.f, off, fileSize)
		if err != nil {
			if errors.Is(err, errShortRecord) || errors.Is(err, errPendingTail) {
				// Torn final append: drop it. A full-length final record
				// with a bad checksum is torn too — a crash mid-write can
				// extend the file before every page lands.
				if terr := l.f.Truncate(off); terr != nil {
					return terr
				}
				if terr := l.f.Sync(); terr != nil {
					return terr
				}
				break
			}
			return err
		}
		if rec.Gen != l.head+1 {
			return fmt.Errorf("%w: record at offset %d has generation %d, want %d", ErrCorrupt, off, rec.Gen, l.head+1)
		}
		l.offs = append(l.offs, off)
		l.head = rec.Gen
		off = end
	}
	l.size = int64(headerSize)
	if n := len(l.offs); n > 0 {
		last, _, err := recordSpanAt(l.f, l.offs[n-1])
		if err != nil {
			return err
		}
		l.size = last
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Head returns the generation of the last intact record (0 when the
// log is empty).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Shard returns the shard identity stamped in the log header.
func (l *Log) Shard() (shard, shards int) { return l.shard, l.shards }

// Append durably appends payload as the next record and returns the
// log generation it was assigned. The record is written with a single
// write call and fsynced before Append returns.
func (l *Log) Append(day int, payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record bound", len(payload), MaxPayload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	gen := l.head + 1
	buf := make([]byte, recPrefixSize+len(payload)+recTrailSize)
	binary.LittleEndian.PutUint64(buf[0:], gen)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(day)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(payload)))
	copy(buf[recPrefixSize:], payload)
	sum := crc32.Checksum(buf[:recPrefixSize+len(payload)], crcTable)
	binary.LittleEndian.PutUint32(buf[recPrefixSize+len(payload):], sum)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	l.offs = append(l.offs, l.size)
	l.size += int64(len(buf))
	l.head = gen
	return gen, nil
}

// TailFrom returns every record with generation strictly greater than
// afterGen, in order. Payloads are fresh copies the caller owns.
func (l *Log) TailFrom(afterGen uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if afterGen >= l.head {
		return nil, nil
	}
	var recs []Record
	for g := afterGen + 1; g <= l.head; g++ {
		rec, _, err := readRecordAt(l.f, l.offs[g-1], l.size)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// Close releases the file handle. The log stays replayable on disk.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Reader is a follower's cursor over a (possibly still growing) delta
// log, typically in another process than the writer. Next returns
// records in order and reports "nothing new yet" — a short or
// checksum-failing tail is treated as an append in flight, since the
// writer fsyncs whole records and repairs genuinely torn tails on its
// own next Open.
type Reader struct {
	f       *os.File
	off     int64
	lastGen uint64
}

// OpenReader opens a read-only cursor positioned before the first
// record. The caller should retry on os.ErrNotExist until the writer
// has created the log.
func OpenReader(path string, shard, shards int) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if err := checkHeader(f, shard, shards); err != nil {
		f.Close()
		return nil, err
	}
	return &Reader{f: f, off: headerSize}, nil
}

// Next returns the next record, or nil when the log has no complete
// record past the cursor yet. A record that is fully present but fails
// its checksum while further records exist behind it is reported as
// ErrChecksum.
func (r *Reader) Next() (*Record, error) {
	fi, err := r.f.Stat()
	if err != nil {
		return nil, err
	}
	rec, end, err := readRecordAt(r.f, r.off, fi.Size())
	if err != nil {
		if errors.Is(err, errShortRecord) || errors.Is(err, errPendingTail) {
			return nil, nil
		}
		return nil, err
	}
	if rec.Gen != r.lastGen+1 {
		return nil, fmt.Errorf("%w: record at offset %d has generation %d, want %d", ErrCorrupt, r.off, rec.Gen, r.lastGen+1)
	}
	r.off = end
	r.lastGen = rec.Gen
	return &rec, nil
}

// Close releases the cursor's file handle.
func (r *Reader) Close() error { return r.f.Close() }

// errShortRecord reports a record whose bytes end before its trailer —
// at EOF this is a torn (or in-flight) append.
var errShortRecord = errors.New("wal: short record")

// errPendingTail reports a checksum-failing final record with no bytes
// behind it — readers treat it as an append still being flushed.
var errPendingTail = errors.New("wal: unflushed tail record")

// writeHeaderAtomic publishes a fresh log header via temp-fsync-rename
// so no reader can ever observe a partial header.
func writeHeaderAtomic(path string, shard, shards int) (err error) {
	tmp, err := os.CreateTemp(dirOf(path), "wal.tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [headerSize]byte
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(int32(shard)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(int32(shards)))
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], crcTable))
	if _, err = tmp.Write(hdr[:]); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}

// checkHeader validates magic, version, checksum, and shard identity.
func checkHeader(f *os.File, shard, shards int) error {
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrTruncated
		}
		return err
	}
	if string(hdr[0:8]) != Magic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return fmt.Errorf("%w: version %d", ErrFormatVersion, v)
	}
	if sum := binary.LittleEndian.Uint32(hdr[20:]); sum != crc32.Checksum(hdr[:20], crcTable) {
		return fmt.Errorf("%w: header", ErrChecksum)
	}
	gotShard := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
	gotShards := int(int32(binary.LittleEndian.Uint32(hdr[16:])))
	if gotShard != shard || gotShards != shards {
		return fmt.Errorf("%w: log is shard %d/%d, want %d/%d", ErrShardMismatch, gotShard, gotShards, shard, shards)
	}
	return nil
}

// recordSpanAt returns the end offset of the record starting at off,
// trusting its (already validated) length field.
func recordSpanAt(f *os.File, off int64) (end int64, n uint32, err error) {
	var pre [recPrefixSize]byte
	if _, err := f.ReadAt(pre[:], off); err != nil {
		return 0, 0, err
	}
	n = binary.LittleEndian.Uint32(pre[12:])
	return off + int64(recPrefixSize) + int64(n) + recTrailSize, n, nil
}

// readRecordAt parses and checksums the record starting at off in a
// file of fileSize bytes. A record whose bytes end before its trailer
// yields errShortRecord; a fully present record with a bad checksum
// yields ErrChecksum when further bytes follow it (provably not a torn
// append) and errPendingTail when it sits at EOF.
func readRecordAt(f *os.File, off, fileSize int64) (Record, int64, error) {
	if off+recPrefixSize > fileSize {
		return Record{}, 0, errShortRecord
	}
	var pre [recPrefixSize]byte
	if _, err := f.ReadAt(pre[:], off); err != nil {
		return Record{}, 0, err
	}
	gen := binary.LittleEndian.Uint64(pre[0:])
	day := int(int32(binary.LittleEndian.Uint32(pre[8:])))
	n := binary.LittleEndian.Uint32(pre[12:])
	if n > MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: record at offset %d claims %d-byte payload", ErrCorrupt, off, n)
	}
	end := off + int64(recPrefixSize) + int64(n) + recTrailSize
	if end > fileSize {
		return Record{}, 0, errShortRecord
	}
	body := make([]byte, recPrefixSize+int(n)+recTrailSize)
	if _, err := f.ReadAt(body, off); err != nil {
		return Record{}, 0, err
	}
	want := binary.LittleEndian.Uint32(body[recPrefixSize+int(n):])
	if got := crc32.Checksum(body[:recPrefixSize+int(n)], crcTable); got != want {
		if end == fileSize {
			return Record{}, 0, errPendingTail
		}
		return Record{}, 0, fmt.Errorf("%w: record at offset %d", ErrChecksum, off)
	}
	payload := make([]byte, n)
	copy(payload, body[recPrefixSize:recPrefixSize+int(n)])
	return Record{Gen: gen, Day: day, Payload: payload}, end, nil
}
