package rec

import (
	"testing"

	"giant/internal/synth"
)

func sim(t *testing.T) *Simulator {
	t.Helper()
	w := synth.GenWorld(synth.TinyConfig())
	cfg := DefaultConfig()
	cfg.NumUsers = 80
	return NewSimulator(w, cfg)
}

func TestStrategyProducesDailyStats(t *testing.T) {
	s := sim(t)
	stats := s.RunStrategy([]TagType{TagTopic})
	if len(stats) != s.World.Config.Days {
		t.Fatalf("days = %d", len(stats))
	}
	for _, d := range stats {
		if d.Recs < 0 || d.Clicks > d.Recs {
			t.Fatalf("invalid day stat %+v", d)
		}
		if d.Date == "" {
			t.Fatal("missing date")
		}
	}
}

func TestCTRBounds(t *testing.T) {
	s := sim(t)
	for tt := TagType(0); tt < NumTagTypes; tt++ {
		stats := s.RunStrategy([]TagType{tt})
		m := MeanCTR(stats)
		if m < 0 || m > 100 {
			t.Fatalf("%v CTR out of range: %v", tt, m)
		}
	}
}

func TestPaperOrderingEmerges(t *testing.T) {
	s := sim(t)
	byType := s.RunPerTagType()
	topic := MeanCTR(byType[TagTopic])
	event := MeanCTR(byType[TagEvent])
	entity := MeanCTR(byType[TagEntity])
	concept := MeanCTR(byType[TagConcept])
	category := MeanCTR(byType[TagCategory])
	if !(topic > event && event > concept && entity > concept && concept > category) {
		t.Fatalf("CTR ordering broken: topic %.2f event %.2f entity %.2f concept %.2f category %.2f",
			topic, event, entity, concept, category)
	}
}

func TestAllTagsBeatCategoryEntity(t *testing.T) {
	s := sim(t)
	all := s.RunStrategy([]TagType{TagCategory, TagEntity, TagConcept, TagEvent, TagTopic})
	base := s.RunStrategy([]TagType{TagCategory, TagEntity})
	if MeanCTR(all) <= MeanCTR(base) {
		t.Fatalf("all-tags CTR %.2f <= category+entity %.2f", MeanCTR(all), MeanCTR(base))
	}
}

func TestEventMoreVolatileThanCategory(t *testing.T) {
	s := sim(t)
	byType := s.RunPerTagType()
	if StdCTR(byType[TagEvent]) <= StdCTR(byType[TagCategory]) {
		t.Fatalf("event std %.2f should exceed category std %.2f",
			StdCTR(byType[TagEvent]), StdCTR(byType[TagCategory]))
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	w := synth.GenWorld(synth.TinyConfig())
	cfg := DefaultConfig()
	cfg.NumUsers = 40
	a := NewSimulator(w, cfg).RunStrategy([]TagType{TagTopic})
	b := NewSimulator(w, cfg).RunStrategy([]TagType{TagTopic})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestTagTypeString(t *testing.T) {
	if TagTopic.String() != "topic" || TagCategory.String() != "category" {
		t.Fatal("TagType String broken")
	}
}

func TestMeanStdEdgeCases(t *testing.T) {
	if MeanCTR(nil) != 0 || StdCTR(nil) != 0 {
		t.Fatal("empty stats")
	}
	one := []DayStat{{Recs: 10, Clicks: 1}}
	if StdCTR(one) != 0 {
		t.Fatal("single-day std should be 0")
	}
	if (DayStat{}).CTR() != 0 {
		t.Fatal("zero recs CTR")
	}
}
