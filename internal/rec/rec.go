// Package rec is the online-recommendation testbed standing in for the
// paper's A/B test on Tencent QQ Browser news feeds (§5.4, Figures 6–7).
// It simulates users with latent interests drawn from the generative world,
// a daily article stream tagged with attention-ontology nodes, a
// content-based recommender that matches users to articles through shared
// tags, and a click model in which the probability of a click depends on how
// precisely the matching tag type captures the user's true interest.
//
// The paper's qualitative findings are emergent here, not hard-coded per
// day: topic matches are almost always truly relevant (the user's interest
// IS the topic), event matches inherit topical relevance but are modulated
// by a per-event daily "attractiveness" draw (hence the volatility of the
// event curve), entity matches are relevant only when the specific entity is
// followed, concept matches suffer isA-inference noise, and category matches
// are too coarse to be precise.
package rec

import (
	"math"
	"math/rand"

	"giant/internal/synth"
)

// TagType enumerates the five attention tag types.
type TagType int

// Tag types in Figure 7's legend order.
const (
	TagCategory TagType = iota
	TagEntity
	TagConcept
	TagEvent
	TagTopic
	NumTagTypes = 5
)

// String names the tag type.
func (t TagType) String() string {
	switch t {
	case TagCategory:
		return "category"
	case TagEntity:
		return "entity"
	case TagConcept:
		return "concept"
	case TagEvent:
		return "event"
	case TagTopic:
		return "topic"
	default:
		return "unknown"
	}
}

// Config controls the simulation scale.
type Config struct {
	Seed            int64
	NumUsers        int
	TopicsPerUser   int
	EntitiesPerUser int
	ArticlesPerDay  int // concept articles per day, in addition to event articles
	RecsPerUserDay  int
	// BaseClick is the click probability for a perfectly relevant
	// recommendation; relevance multiplies it down.
	BaseClick float64
	// ConceptNoise is the probability that an inferred concept interest is
	// wrong (isA-inference noise, §5.4's explanation for concept CTR).
	ConceptNoise float64
}

// DefaultConfig is laptop scale.
func DefaultConfig() Config {
	return Config{
		Seed: 23, NumUsers: 300, TopicsPerUser: 3, EntitiesPerUser: 10,
		ArticlesPerDay: 30, RecsPerUserDay: 6,
		BaseClick: 0.20, ConceptNoise: 0.25,
	}
}

// user holds ground-truth latent interests plus the noisy inferred profile
// the recommender actually matches on.
type user struct {
	topics     map[int]bool // true interests (topic IDs)
	entities   map[int]bool // followed entities
	concepts   map[int]bool // inferred concept interests (noisy)
	categories map[int]bool
}

// article is one feed item with its ontology tags.
type article struct {
	day      int
	event    int // event ID or -1
	topic    int // topic ID or -1
	concept  int // concept ID or -1
	entities []int
	category int
	// attract is the event's attractiveness on its day (drives event-curve
	// volatility).
	attract float64
}

// Simulator runs Figure 6/7 style experiments.
type Simulator struct {
	World *synth.World
	Cfg   Config

	users    []user
	articles [][]article // per day
	rng      *rand.Rand
}

// NewSimulator samples users and the article stream.
func NewSimulator(w *synth.World, cfg Config) *Simulator {
	s := &Simulator{World: w, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	days := w.Config.Days
	s.articles = make([][]article, days)

	// Event articles on their day.
	for _, evt := range w.Events {
		if evt.Day < 0 || evt.Day >= days {
			continue
		}
		s.articles[evt.Day] = append(s.articles[evt.Day], article{
			day: evt.Day, event: evt.ID, topic: evt.Topic, concept: -1,
			entities: append([]int(nil), evt.Entities...),
			category: evt.Category,
			attract:  0.55 + s.rng.Float64()*0.6, // U(0.55, 1.15)
		})
	}
	// Concept articles spread across days.
	for d := 0; d < days; d++ {
		for k := 0; k < cfg.ArticlesPerDay; k++ {
			c := &w.Concepts[s.rng.Intn(len(w.Concepts))]
			var ents []int
			if len(c.Entities) > 0 {
				ents = append(ents, c.Entities[s.rng.Intn(len(c.Entities))])
				if len(c.Entities) > 1 && s.rng.Float64() < 0.5 {
					ents = append(ents, c.Entities[s.rng.Intn(len(c.Entities))])
				}
			}
			s.articles[d] = append(s.articles[d], article{
				day: d, event: -1, topic: -1, concept: c.ID,
				entities: ents, category: c.Category, attract: 1,
			})
		}
	}

	// Users: true topic interests plus followed entities; inferred concept
	// profile adds isA noise; categories derive from interests.
	for u := 0; u < cfg.NumUsers; u++ {
		usr := user{
			topics: map[int]bool{}, entities: map[int]bool{},
			concepts: map[int]bool{}, categories: map[int]bool{},
		}
		for len(usr.topics) < cfg.TopicsPerUser && len(w.Topics) > 0 {
			usr.topics[s.rng.Intn(len(w.Topics))] = true
		}
		for len(usr.entities) < cfg.EntitiesPerUser && len(w.Entities) > 0 {
			usr.entities[s.rng.Intn(len(w.Entities))] = true
		}
		for e := range usr.entities {
			ent := &w.Entities[e]
			usr.categories[ent.Category] = true
			for _, c := range ent.Concepts {
				if s.rng.Float64() < cfg.ConceptNoise {
					// Noisy inference: a random concept instead.
					usr.concepts[s.rng.Intn(len(w.Concepts))] = true
				} else {
					usr.concepts[c] = true
				}
			}
		}
		for t := range usr.topics {
			usr.categories[w.Classes[w.Topics[t].Class].Category] = true
		}
		s.users = append(s.users, usr)
	}
	return s
}

// matchRelevance reports whether article a matches user u under tag type t,
// and the relevance multiplier of that match (0 when no match).
func (s *Simulator) matchRelevance(u *user, a *article, t TagType) (bool, float64) {
	switch t {
	case TagTopic:
		if a.topic >= 0 && u.topics[a.topic] {
			// The user's interest is literally this topic.
			return true, 0.95
		}
	case TagEvent:
		if a.event >= 0 && a.topic >= 0 && u.topics[a.topic] {
			// Follow-up event of an interesting topic; clickiness depends on
			// the event's daily attractiveness.
			return true, 0.92 * a.attract
		}
	case TagEntity:
		for _, e := range a.entities {
			if u.entities[e] {
				// Followed entity, but the article's angle may not match why
				// the user follows it.
				return true, 0.66
			}
		}
	case TagConcept:
		if a.concept >= 0 && u.concepts[a.concept] {
			// Inferred (noisy) concept interest.
			return true, 0.60
		}
		for _, e := range a.entities {
			ent := &s.World.Entities[e]
			for _, c := range ent.Concepts {
				if u.concepts[c] {
					return true, 0.57
				}
			}
		}
	case TagCategory:
		if u.categories[a.category] {
			// Category is far too coarse to predict a click.
			return true, 0.46
		}
	}
	return false, 0
}

// DayStat is one day's aggregate CTR.
type DayStat struct {
	Day    int
	Date   string
	Recs   int
	Clicks int
}

// CTR returns the day's click-through rate in percent.
func (d DayStat) CTR() float64 {
	if d.Recs == 0 {
		return 0
	}
	return 100 * float64(d.Clicks) / float64(d.Recs)
}

// RunStrategy simulates the feed with the given enabled tag types and
// returns per-day CTR (Figure 6: all five types vs category+entity).
func (s *Simulator) RunStrategy(types []TagType) []DayStat {
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 1000))
	out := make([]DayStat, len(s.articles))
	for d := range s.articles {
		stat := DayStat{Day: d, Date: synth.DateOf(d)}
		for ui := range s.users {
			u := &s.users[ui]
			recs := 0
			for ai := range s.articles[d] {
				if recs >= s.Cfg.RecsPerUserDay {
					break
				}
				a := &s.articles[d][ai]
				bestRel := 0.0
				for _, t := range types {
					if ok, rel := s.matchRelevance(u, a, t); ok && rel > bestRel {
						bestRel = rel
					}
				}
				if bestRel == 0 {
					continue
				}
				recs++
				stat.Recs++
				if rng.Float64() < s.Cfg.BaseClick*bestRel {
					stat.Clicks++
				}
			}
		}
		out[d] = stat
	}
	return out
}

// RunPerTagType simulates each tag type as the sole recommendation signal
// and returns per-type daily CTR (Figure 7).
func (s *Simulator) RunPerTagType() map[TagType][]DayStat {
	out := make(map[TagType][]DayStat, NumTagTypes)
	for t := TagType(0); t < NumTagTypes; t++ {
		out[t] = s.RunStrategy([]TagType{t})
	}
	return out
}

// MeanCTR averages daily CTRs.
func MeanCTR(stats []DayStat) float64 {
	if len(stats) == 0 {
		return 0
	}
	s := 0.0
	for _, d := range stats {
		s += d.CTR()
	}
	return s / float64(len(stats))
}

// StdCTR is the standard deviation of daily CTRs (event-vs-topic stability).
func StdCTR(stats []DayStat) float64 {
	if len(stats) < 2 {
		return 0
	}
	m := MeanCTR(stats)
	v := 0.0
	for _, d := range stats {
		dv := d.CTR() - m
		v += dv * dv
	}
	v /= float64(len(stats) - 1)
	return math.Sqrt(v)
}
